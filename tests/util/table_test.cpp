#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t({"a", "b"});
  t.add_row({"x", "longvalue"});
  t.add_row({"longer", "y"});
  const std::string out = t.to_string();
  // All lines have equal width.
  std::size_t line_len = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    const std::size_t len = nl - pos;
    if (line_len == 0) line_len = len;
    EXPECT_EQ(len, line_len);
    pos = nl + 1;
  }
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-1.0, 0), "-1");
  EXPECT_EQ(Table::num(2.5, 3), "2.500");
}

TEST(Table, PctFormatting) {
  EXPECT_EQ(Table::pct(0.5), "50.00%");
  EXPECT_EQ(Table::pct(0.12345, 1), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, DurationFormatting) {
  EXPECT_EQ(Table::duration(30.0), "0m 30s");
  EXPECT_EQ(Table::duration(90.0), "1m 30s");
  EXPECT_EQ(Table::duration(3660.0), "1h 01m");
  // The paper's Fig-5 anchor: 1 day 16 hours.
  EXPECT_EQ(Table::duration(40.0 * 3600.0), "1d 16h 00m");
  EXPECT_EQ(Table::duration(-3660.0), "-1h 01m");
}

}  // namespace
}  // namespace mpleo::util
