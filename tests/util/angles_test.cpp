#include "util/angles.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace mpleo::util {
namespace {

TEST(Angles, WrapTwoPiBasics) {
  EXPECT_NEAR(wrap_two_pi(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_two_pi(kTwoPi), 0.0, 1e-15);
  EXPECT_NEAR(wrap_two_pi(kTwoPi + 1.0), 1.0, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-1.0), kTwoPi - 1.0, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-5.0 * kTwoPi - 0.5), kTwoPi - 0.5, 1e-9);
}

TEST(Angles, WrapPiBasics) {
  EXPECT_NEAR(wrap_pi(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_pi(kPi + 0.25), -kPi + 0.25, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-15);  // pi maps to +pi by convention
}

TEST(Angles, AngularSeparation) {
  EXPECT_NEAR(angular_separation(0.1, 0.1), 0.0, 1e-15);
  EXPECT_NEAR(angular_separation(0.0, kPi / 2.0), kPi / 2.0, 1e-12);
  // Wraparound: 350 deg and 10 deg are 20 deg apart.
  EXPECT_NEAR(angular_separation(deg_to_rad(350.0), deg_to_rad(10.0)), deg_to_rad(20.0),
              1e-12);
}

class WrapRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(WrapRoundTrip, WrapTwoPiIsIdempotentAndInRange) {
  const double angle = GetParam();
  const double wrapped = wrap_two_pi(angle);
  EXPECT_GE(wrapped, 0.0);
  EXPECT_LT(wrapped, kTwoPi);
  EXPECT_NEAR(wrap_two_pi(wrapped), wrapped, 1e-12);
  // Difference from the input is a multiple of 2*pi.
  const double k = (angle - wrapped) / kTwoPi;
  EXPECT_NEAR(k, std::round(k), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WrapRoundTrip,
                         ::testing::Values(-100.0, -7.5, -kPi, -0.001, 0.0, 0.001, 1.0, kPi,
                                           6.0, 12.7, 200.0));

}  // namespace
}  // namespace mpleo::util
