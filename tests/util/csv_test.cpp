#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mpleo::util {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, MultipleRows) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"x", "y"});
  writer.write_row({"1,5", "2"});
  EXPECT_EQ(os.str(), "x,y\n\"1,5\",2\n");
}

TEST(Csv, EmptyRowIsBlankLine) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace mpleo::util
