#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mpleo::util {
namespace {

TEST(ThreadPool, ReportsAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
  ThreadPool solo(1);
  EXPECT_EQ(solo.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t count = 10'000;
  std::vector<std::atomic<int>> visits(count);
  pool.parallel_for(count, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForChunksCoversRangeWithoutOverlap) {
  ThreadPool pool(3);
  const std::size_t count = 4'097;
  std::vector<std::atomic<int>> visits(count);
  pool.parallel_for_chunks(count, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, count);
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool solo(1);
  std::vector<int> order;
  solo.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  const std::vector<int> expected{0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exceptional job.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Re-entering the same pool from a worker must not deadlock; the nested
    // loop simply runs on the calling thread.
    pool.parallel_for(10, [&](std::size_t j) { total.fetch_add(j); });
  });
  EXPECT_EQ(total.load(), 8u * 45u);
}

TEST(ThreadPool, SharedPoolIsStable) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<std::size_t> sum{0};
  a.parallel_for(1'000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 499'500u);
}

}  // namespace
}  // namespace mpleo::util
