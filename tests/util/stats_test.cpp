#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace mpleo::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 5.0);
  EXPECT_EQ(rs.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256PlusPlus rng(5);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, Basics) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(values, 62.5), 3.5);  // interpolation
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 13.0), 7.0);
}

TEST(Percentile, Errors) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(MeanStddevOf, MatchRunningStats) {
  const std::vector<double> values{1.5, 2.5, 3.5, 10.0};
  RunningStats rs;
  for (double v : values) rs.add(v);
  EXPECT_NEAR(mean_of(values), rs.mean(), 1e-12);
  EXPECT_NEAR(stddev_of(values), rs.stddev(), 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::util
