#include "util/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpleo::util {
namespace {

TEST(Vec3, DefaultIsZero) {
  const Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
  EXPECT_EQ(v.norm(), 0.0);
}

TEST(Vec3, AdditionAndSubtraction) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -5.0, 6.0};
  const Vec3 sum = a + b;
  EXPECT_EQ(sum.x, 5.0);
  EXPECT_EQ(sum.y, -3.0);
  EXPECT_EQ(sum.z, 9.0);
  const Vec3 diff = sum - b;
  EXPECT_DOUBLE_EQ(diff.x, a.x);
  EXPECT_DOUBLE_EQ(diff.y, a.y);
  EXPECT_DOUBLE_EQ(diff.z, a.z);
}

TEST(Vec3, ScalarOps) {
  const Vec3 v{1.0, -2.0, 0.5};
  const Vec3 scaled = 2.0 * v;
  EXPECT_EQ(scaled.x, 2.0);
  EXPECT_EQ(scaled.y, -4.0);
  EXPECT_EQ(scaled.z, 1.0);
  const Vec3 halved = scaled / 2.0;
  EXPECT_DOUBLE_EQ(halved.y, v.y);
  const Vec3 negated = -v;
  EXPECT_EQ(negated.x, -1.0);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_EQ(dot(x, y), 0.0);
  const Vec3 z = cross(x, y);
  EXPECT_EQ(z.x, 0.0);
  EXPECT_EQ(z.y, 0.0);
  EXPECT_EQ(z.z, 1.0);
  // Anti-commutativity.
  const Vec3 mz = cross(y, x);
  EXPECT_EQ(mz.z, -1.0);
}

TEST(Vec3, NormAndNormalized) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_squared(), 25.0);
  const Vec3 unit = v.normalized();
  EXPECT_NEAR(unit.norm(), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(unit.x, 0.6);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {0, 3, 4}), 5.0);
}

TEST(Vec3, CrossProductOrthogonality) {
  const Vec3 a{1.5, -2.25, 0.75};
  const Vec3 b{-0.5, 4.0, 2.0};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3, LagrangeIdentity) {
  // |a x b|^2 + (a.b)^2 == |a|^2 |b|^2.
  const Vec3 a{2.0, -1.0, 3.5};
  const Vec3 b{0.25, 5.0, -2.0};
  const double lhs = cross(a, b).norm_squared() + dot(a, b) * dot(a, b);
  const double rhs = a.norm_squared() * b.norm_squared();
  EXPECT_NEAR(lhs, rhs, 1e-9 * rhs);
}

}  // namespace
}  // namespace mpleo::util
