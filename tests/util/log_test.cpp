#include "util/log.hpp"

#include <gtest/gtest.h>

namespace mpleo::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, MacrosCompileAndStream) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // suppress output while exercising paths
  MPLEO_LOG_DEBUG << "debug " << 1;
  MPLEO_LOG_INFO << "info " << 2.5;
  MPLEO_LOG_WARN << "warn " << "text";
  MPLEO_LOG_ERROR << "error";
  SUCCEED();
}

TEST(Log, MessagesBelowLevelDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // These produce no output (manually verified via stderr capture elsewhere);
  // here we only assert no crash and level filtering API behaves.
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kWarn, "dropped");
  SUCCEED();
}

TEST(Log, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "silent");
  SUCCEED();
}

}  // namespace
}  // namespace mpleo::util
