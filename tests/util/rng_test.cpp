#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mpleo::util {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256PlusPlus a(123);
  Xoshiro256PlusPlus b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256PlusPlus a(1);
  Xoshiro256PlusPlus b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256PlusPlus rng(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256PlusPlus rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Xoshiro, UniformIndexCoversAllValues) {
  Xoshiro256PlusPlus rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Xoshiro, UniformIndexApproximatelyUniform) {
  Xoshiro256PlusPlus rng(13);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, kN / 10, kN / 100);
}

TEST(Xoshiro, NormalMomentsApproximatelyStandard) {
  Xoshiro256PlusPlus rng(17);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Xoshiro, NormalScalesMeanAndStddev) {
  Xoshiro256PlusPlus rng(19);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Xoshiro, SplitStreamsAreIndependentAndStable) {
  Xoshiro256PlusPlus parent(42);
  Xoshiro256PlusPlus child_a = parent.split(0);
  Xoshiro256PlusPlus child_a_again = parent.split(0);
  Xoshiro256PlusPlus child_b = parent.split(1);
  EXPECT_EQ(child_a.next(), child_a_again.next());
  EXPECT_NE(child_a.next(), child_b.next());
  // Splitting does not advance the parent.
  Xoshiro256PlusPlus fresh(42);
  EXPECT_EQ(parent.next(), fresh.next());
}

TEST(Xoshiro, SampleWithoutReplacementIsDistinct) {
  Xoshiro256PlusPlus rng(23);
  const auto sample = rng.sample_without_replacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Xoshiro, SampleWholePopulationIsPermutation) {
  Xoshiro256PlusPlus rng(29);
  const auto sample = rng.sample_without_replacement(50, 50);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Xoshiro, SampleZeroIsEmpty) {
  Xoshiro256PlusPlus rng(31);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

class UniformIndexSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexSweep, AlwaysBelowBound) {
  const std::uint64_t n = GetParam();
  Xoshiro256PlusPlus rng(n);
  for (int i = 0; i < 2000; ++i) ASSERT_LT(rng.uniform_index(n), n);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIndexSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 10ULL, 63ULL, 64ULL, 65ULL,
                                           1000ULL, 6088ULL));

}  // namespace
}  // namespace mpleo::util
