#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpleo::util {
namespace {

TEST(Units, AngleConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2.0), 90.0);
  for (double deg : {-270.0, -1.0, 0.0, 53.0, 97.6, 360.0}) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(deg)), deg, 1e-12);
  }
}

TEST(Units, LengthConversions) {
  EXPECT_DOUBLE_EQ(km_to_m(550.0), 550e3);
  EXPECT_DOUBLE_EQ(m_to_km(6371008.8), 6371.0088);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(hours_to_sec(1.5), 5400.0);
  EXPECT_DOUBLE_EQ(sec_to_hours(7200.0), 2.0);
  EXPECT_DOUBLE_EQ(days_to_sec(7.0), kSecondsPerWeek);
}

TEST(Units, PhysicalConstantsSane) {
  // Orbital velocity at 550 km from mu and radius: ~7.59 km/s.
  const double r = kEarthMeanRadiusM + 550e3;
  const double v = std::sqrt(kMuEarth / r);
  EXPECT_NEAR(v, 7585.0, 15.0);
  // Sidereal rate x sidereal day ~ 2 pi.
  EXPECT_NEAR(kEarthRotationRateRadPerSec * 86164.0905, kTwoPi, 1e-6);
  // WGS-84 flattening denominator.
  EXPECT_NEAR(1.0 / kEarthFlattening, 298.257223563, 1e-9);
}

}  // namespace
}  // namespace mpleo::util
