// ChunkStream / stream_chunks: the bounded-queue pipeline under the
// mega-scale scheduler. The contracts that keep streamed scheduling
// bit-identical to fill-then-drain: consumption is strictly in chunk order,
// at most slot_count chunks are ever in flight, serial and pooled execution
// produce the same outputs, and errors on either side abort the stream
// without deadlocking the driver.
#include "util/stream_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace mpleo::util {
namespace {

TEST(StreamChunks, ConsumesEveryChunkStrictlyInOrder) {
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  for (ThreadPool* handle : {static_cast<ThreadPool*>(nullptr), &pool2, &pool4}) {
    constexpr std::size_t kChunks = 97;
    constexpr std::size_t kSlots = 3;
    std::vector<std::size_t> slot_payload(kSlots, 0);
    std::vector<std::size_t> consumed;
    consumed.reserve(kChunks);
    stream_chunks(
        handle, kChunks, kSlots,
        [&](std::size_t chunk, std::size_t slot) {
          // Pooled runs cycle the slot ring; the serial path degenerates to
          // produce-then-consume in slot 0. Either way slots stay in range.
          ASSERT_LT(slot, kSlots);
          slot_payload[slot] = chunk * chunk + 1;
        },
        [&](std::size_t chunk, std::size_t slot) {
          ASSERT_LT(slot, kSlots);
          // The producer's payload for exactly this chunk must be in the
          // slot — the slot cannot have been recycled early.
          ASSERT_EQ(slot_payload[slot], chunk * chunk + 1);
          consumed.push_back(chunk);
        });
    std::vector<std::size_t> expected(kChunks);
    std::iota(expected.begin(), expected.end(), std::size_t{0});
    EXPECT_EQ(consumed, expected)
        << "threads=" << (handle == nullptr ? 1 : handle->thread_count());
  }
}

TEST(StreamChunks, NeverExceedsSlotCountInFlight) {
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 64;
  constexpr std::size_t kSlots = 2;
  std::atomic<long> in_flight{0};
  std::atomic<long> peak{0};
  stream_chunks(
      &pool, kChunks, kSlots,
      [&](std::size_t, std::size_t) {
        const long now = in_flight.fetch_add(1) + 1;
        long prev = peak.load();
        while (prev < now && !peak.compare_exchange_weak(prev, now)) {
        }
      },
      [&](std::size_t, std::size_t) { in_flight.fetch_sub(1); });
  EXPECT_EQ(in_flight.load(), 0);
  EXPECT_LE(peak.load(), static_cast<long>(kSlots));
  EXPECT_GE(peak.load(), 1);
}

TEST(StreamChunks, SerialAndPooledRunsProduceIdenticalResults) {
  constexpr std::size_t kChunks = 41;
  const auto run = [&](ThreadPool* pool, std::size_t slots) {
    std::vector<std::size_t> scratch(slots, 0);
    std::vector<std::size_t> out;
    out.reserve(kChunks);
    stream_chunks(
        pool, kChunks, slots,
        [&](std::size_t chunk, std::size_t slot) { scratch[slot] = 3 * chunk + 7; },
        [&](std::size_t chunk, std::size_t slot) {
          (void)chunk;
          out.push_back(scratch[slot]);
        });
    return out;
  };
  const std::vector<std::size_t> serial = run(nullptr, 1);
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  EXPECT_EQ(run(&pool2, 2), serial);
  EXPECT_EQ(run(&pool4, 3), serial);
  EXPECT_EQ(run(&pool4, 8), serial);
}

TEST(StreamChunks, ProducerErrorPropagatesWithoutDeadlock) {
  ThreadPool pool(3);
  for (ThreadPool* handle : {static_cast<ThreadPool*>(nullptr), &pool}) {
    EXPECT_THROW(
        stream_chunks(
            handle, 32, 2,
            [&](std::size_t chunk, std::size_t) {
              if (chunk == 5) throw std::runtime_error("producer boom");
            },
            [&](std::size_t, std::size_t) {}),
        std::runtime_error);
  }
}

TEST(StreamChunks, ProducerThrowAgainstBlockedSlotRingDoesNotDeadlock) {
  // The nasty variant: a slow consumer keeps the bounded slot ring full, so
  // producers are blocked in begin_produce() when one of them throws. The
  // stream must abort (waking the blocked producers), rethrow exactly the
  // first producer's error, and leave the pool reusable for a fresh stream.
  ThreadPool pool(3);
  std::atomic<int> consumed{0};
  try {
    stream_chunks(
        &pool, 64, 2,
        [&](std::size_t chunk, std::size_t) {
          if (chunk == 7) throw std::runtime_error("late producer boom");
        },
        [&](std::size_t, std::size_t) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          ++consumed;
        });
    FAIL() << "producer error did not propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "late producer boom");
  }
  EXPECT_LT(consumed.load(), 64);
  int after = 0;
  stream_chunks(
      &pool, 8, 2, [](std::size_t, std::size_t) {},
      [&](std::size_t, std::size_t) { ++after; });
  EXPECT_EQ(after, 8);
}

TEST(StreamChunks, ConsumerErrorPropagatesWithoutDeadlock) {
  ThreadPool pool(3);
  for (ThreadPool* handle : {static_cast<ThreadPool*>(nullptr), &pool}) {
    EXPECT_THROW(
        stream_chunks(
            handle, 32, 2, [&](std::size_t, std::size_t) {},
            [&](std::size_t chunk, std::size_t) {
              if (chunk == 3) throw std::runtime_error("consumer boom");
            }),
        std::runtime_error);
  }
}

TEST(StreamChunks, HandlesDegenerateShapes) {
  // Zero chunks: nothing runs, no hang.
  stream_chunks(
      nullptr, 0, 4, [&](std::size_t, std::size_t) { FAIL(); },
      [&](std::size_t, std::size_t) { FAIL(); });
  // One chunk, oversized slot request (clamped to chunk count).
  int produced = 0;
  int consumed = 0;
  stream_chunks(
      nullptr, 1, 100, [&](std::size_t, std::size_t) { ++produced; },
      [&](std::size_t, std::size_t) { ++consumed; });
  EXPECT_EQ(produced, 1);
  EXPECT_EQ(consumed, 1);
}

TEST(ChunkStream, AbortWakesBothSides) {
  ChunkStream stream(8, 2);
  stream.abort();
  EXPECT_THROW((void)stream.begin_produce(0), ChunkStreamAborted);
  EXPECT_FALSE(stream.wait_ready(0));
}

}  // namespace
}  // namespace mpleo::util
