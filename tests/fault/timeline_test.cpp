#include "fault/timeline.hpp"

#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <stdexcept>

namespace mpleo::fault {
namespace {

orbit::TimeGrid make_grid(double duration_s = 600.0, double step_s = 60.0) {
  return orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), duration_s, step_s);
}

TEST(FaultTimeline, DefaultConstructedIsPermanentlyHealthy) {
  const FaultTimeline timeline;
  EXPECT_TRUE(timeline.empty());
  EXPECT_TRUE(timeline.satellite_available(0, 0));
  EXPECT_TRUE(timeline.station_available(7, 123));
  EXPECT_DOUBLE_EQ(timeline.satellite_capacity_factor(0, 0), 1.0);
  EXPECT_EQ(timeline.degraded_beam_count(0, 0, 8), 8);
  EXPECT_EQ(timeline.satellite_outage_steps(0), nullptr);
  EXPECT_EQ(timeline.station_outage_steps(0), nullptr);
}

TEST(FaultTimeline, OutageAffectsStepsWhoseInstantFallsInside) {
  // Steps sample t = k * 60 s; [120, 300) therefore hits steps 2, 3, 4 and
  // nothing else (step 5 samples t = 300, which is past the exclusive end).
  FaultTimeline timeline(make_grid(), 2, 0);
  timeline.add_satellite_outage(0, 120.0, 300.0);
  EXPECT_FALSE(timeline.empty());
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(timeline.satellite_available(0, k), k < 2 || k > 4) << "step " << k;
    EXPECT_TRUE(timeline.satellite_available(1, k)) << "step " << k;
  }
  const cov::StepMask* out = timeline.satellite_outage_steps(0);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->count(), 3u);
  // Satellite 1 never faulted: no mask at all.
  EXPECT_EQ(timeline.satellite_outage_steps(1), nullptr);
}

TEST(FaultTimeline, OffGridBoundariesRoundInward) {
  // [90, 150): only step 2 (t=120) falls inside — 90 rounds up to step 2,
  // and t=60 (step 1) is before the start.
  FaultTimeline timeline(make_grid(), 1, 0);
  timeline.add_satellite_outage(0, 90.0, 150.0);
  EXPECT_TRUE(timeline.satellite_available(0, 1));
  EXPECT_FALSE(timeline.satellite_available(0, 2));
  EXPECT_TRUE(timeline.satellite_available(0, 3));
}

TEST(FaultTimeline, OutagePastWindowEndIsClamped) {
  FaultTimeline timeline(make_grid(600.0, 60.0), 1, 1);
  timeline.add_satellite_outage(0, 480.0, 1e9);
  timeline.add_station_outage(0, 0.0, 1e9);
  const cov::StepMask* sat_out = timeline.satellite_outage_steps(0);
  ASSERT_NE(sat_out, nullptr);
  EXPECT_EQ(sat_out->count(), timeline.grid().count - 8);
  const cov::StepMask* gs_out = timeline.station_outage_steps(0);
  ASSERT_NE(gs_out, nullptr);
  EXPECT_EQ(gs_out->count(), timeline.grid().count);  // out the whole window
  for (std::size_t k = 0; k < timeline.grid().count; ++k) {
    EXPECT_FALSE(timeline.station_available(0, k));
  }
}

TEST(FaultTimeline, OverlappingOutagesUnion) {
  FaultTimeline timeline(make_grid(), 1, 0);
  timeline.add_satellite_outage(0, 60.0, 180.0);
  timeline.add_satellite_outage(0, 120.0, 240.0);
  const cov::StepMask* out = timeline.satellite_outage_steps(0);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->count(), 3u);  // steps 1, 2, 3
  EXPECT_EQ(timeline.outages().size(), 2u);  // but both records are kept
}

TEST(FaultTimeline, OutOfRangeIndicesReportFullHealth) {
  FaultTimeline timeline(make_grid(), 2, 1);
  timeline.add_satellite_outage(0, 0.0, 600.0);
  EXPECT_TRUE(timeline.satellite_available(99, 0));
  EXPECT_TRUE(timeline.station_available(99, 0));
  EXPECT_DOUBLE_EQ(timeline.satellite_capacity_factor(99, 0), 1.0);
  EXPECT_EQ(timeline.satellite_outage_steps(99), nullptr);
  // Steps beyond the grid also report health rather than reading off the end.
  EXPECT_TRUE(timeline.satellite_available(0, 100000));
}

TEST(FaultTimeline, DegradationScalesBeamsAndCapacity) {
  FaultTimeline timeline(make_grid(), 1, 0);
  timeline.add_transponder_degradation(0, 0.0, 300.0, 0.5);
  EXPECT_FALSE(timeline.empty());
  // Degradation is not an outage: the satellite stays available.
  EXPECT_TRUE(timeline.satellite_available(0, 2));
  EXPECT_DOUBLE_EQ(timeline.satellite_capacity_factor(0, 2), 0.5);
  EXPECT_EQ(timeline.degraded_beam_count(0, 2, 8), 4);
  // After the degradation window: nominal again, exactly.
  EXPECT_DOUBLE_EQ(timeline.satellite_capacity_factor(0, 6), 1.0);
  EXPECT_EQ(timeline.degraded_beam_count(0, 6, 8), 8);
}

TEST(FaultTimeline, OverlappingDegradationsMultiplyAndOutageWinsOutright) {
  FaultTimeline timeline(make_grid(), 1, 0);
  timeline.add_transponder_degradation(0, 0.0, 600.0, 0.5);
  timeline.add_transponder_degradation(0, 0.0, 600.0, 0.5);
  EXPECT_DOUBLE_EQ(timeline.satellite_capacity_factor(0, 1), 0.25);
  EXPECT_EQ(timeline.degraded_beam_count(0, 1, 8), 2);
  timeline.add_satellite_outage(0, 60.0, 120.0);
  EXPECT_DOUBLE_EQ(timeline.satellite_capacity_factor(0, 1), 0.0);
  EXPECT_EQ(timeline.degraded_beam_count(0, 1, 8), 0);
}

TEST(FaultTimeline, AvailabilityMaskIsComplementOfOutageMask) {
  FaultTimeline timeline(make_grid(), 2, 0);
  timeline.add_satellite_outage(0, 120.0, 300.0);
  const cov::StepMask avail = timeline.satellite_availability(0);
  EXPECT_EQ(avail.step_count(), timeline.grid().count);
  for (std::size_t k = 0; k < avail.step_count(); ++k) {
    EXPECT_EQ(avail.test(k), timeline.satellite_available(0, k)) << "step " << k;
  }
  // A never-faulted satellite still gets a fully set availability mask.
  EXPECT_EQ(timeline.satellite_availability(1).count(), timeline.grid().count);
}

TEST(FaultTimeline, EventsAreSortedAndClamped) {
  FaultTimeline timeline(make_grid(), 2, 1);
  timeline.add_satellite_outage(1, 300.0, 1e9);  // repair beyond the window
  timeline.add_satellite_outage(0, 60.0, 120.0);
  timeline.add_station_outage(0, 240.0, 360.0);
  const std::vector<FaultEvent> events = timeline.events();
  // Every fail edge has a matching repair edge; sat 1's repair is clamped to
  // the window end so SimEngine consumers always see balanced pairs.
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time_s, events[i].time_s);
  }
  EXPECT_EQ(events.front().asset_index, 0u);
  EXPECT_TRUE(events.front().failed);
  EXPECT_EQ(events[1].failed, false);  // sat 0 repaired at 120
  EXPECT_EQ(events[2].kind, AssetKind::kGroundStation);
  EXPECT_FALSE(events.back().failed);
  EXPECT_EQ(events.back().asset_index, 1u);
  EXPECT_DOUBLE_EQ(events.back().time_s, timeline.grid().duration_seconds());
}

TEST(FaultTimeline, OutageSecondsByParty) {
  FaultTimeline timeline(make_grid(3600.0, 60.0), 3, 2);
  timeline.add_satellite_outage(0, 0.0, 600.0);     // party 0
  timeline.add_satellite_outage(1, 0.0, 300.0);     // party 1
  timeline.add_satellite_outage(2, 100.0, 200.0);   // unowned -> skipped
  timeline.add_station_outage(1, 0.0, 120.0);       // party 1
  const std::vector<std::uint32_t> sat_owner{0, 1, 0xFFFFFFFFu};
  const std::vector<std::uint32_t> gs_owner{0, 1};
  const std::vector<double> by_party =
      timeline.outage_seconds_by_party(sat_owner, gs_owner, 2);
  ASSERT_EQ(by_party.size(), 2u);
  EXPECT_DOUBLE_EQ(by_party[0], 600.0);
  EXPECT_DOUBLE_EQ(by_party[1], 420.0);
}

TEST(FaultTimeline, RejectsInvalidArguments) {
  FaultTimeline timeline(make_grid(), 1, 1);
  EXPECT_THROW(timeline.add_satellite_outage(1, 0.0, 60.0), std::invalid_argument);
  EXPECT_THROW(timeline.add_station_outage(1, 0.0, 60.0), std::invalid_argument);
  EXPECT_THROW(timeline.add_satellite_outage(0, -1.0, 60.0), std::invalid_argument);
  EXPECT_THROW(timeline.add_satellite_outage(0, 60.0, 60.0), std::invalid_argument);
  EXPECT_THROW(timeline.add_transponder_degradation(0, 0.0, 60.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(timeline.add_transponder_degradation(0, 0.0, 60.0, 1.5),
               std::invalid_argument);
}

TEST(FaultTimeline, NormalizeMergesOverlappingAndTouchingRecords) {
  FaultTimeline timeline(make_grid(600.0, 60.0), 2, 1);
  // Inserted deliberately out of order and overlapping: [180,300) then
  // [60,200), plus a touching [300,360) — one merged [60,360) must survive.
  timeline.add_satellite_outage(0, 180.0, 300.0);
  timeline.add_satellite_outage(0, 60.0, 200.0);
  timeline.add_satellite_outage(0, 300.0, 360.0);
  timeline.add_satellite_outage(1, 0.0, 60.0);  // a different asset: untouched
  timeline.add_station_outage(0, 60.0, 120.0);
  ASSERT_EQ(timeline.outages().size(), 5u);

  // Pin the mask BEFORE normalizing: normalize() canonicalizes the record
  // list only, the step masks (which already union) must not move.
  const std::size_t mask_bits = timeline.satellite_outage_steps(0)->count();
  timeline.normalize();
  EXPECT_EQ(timeline.satellite_outage_steps(0)->count(), mask_bits);

  ASSERT_EQ(timeline.outages().size(), 3u);
  const OutageRecord& merged = timeline.outages()[0];
  EXPECT_EQ(merged.kind, AssetKind::kSatellite);
  EXPECT_EQ(merged.asset_index, 0u);
  EXPECT_DOUBLE_EQ(merged.start_offset_s, 60.0);
  EXPECT_DOUBLE_EQ(merged.end_offset_s, 360.0);
  EXPECT_EQ(timeline.outages()[1].asset_index, 1u);
  EXPECT_EQ(timeline.outages()[2].kind, AssetKind::kGroundStation);

  // events() now emits one balanced fail/repair pair per merged record, and
  // party attribution stops double-counting the overlap.
  std::size_t sat0_edges = 0;
  for (const FaultEvent& e : timeline.events()) {
    if (e.kind == AssetKind::kSatellite && e.asset_index == 0) ++sat0_edges;
  }
  EXPECT_EQ(sat0_edges, 2u);
  const std::vector<std::uint32_t> sat_owner{0, 0};
  const std::vector<std::uint32_t> gs_owner{0};
  EXPECT_DOUBLE_EQ(timeline.outage_seconds_by_party(sat_owner, gs_owner, 1)[0],
                   300.0 + 60.0 + 60.0);
}

TEST(FaultTimeline, NormalizeClipsToWindowAndDropsOutsideRecords) {
  FaultTimeline timeline(make_grid(600.0, 60.0), 2, 0);
  timeline.add_satellite_outage(0, 480.0, 1e9);  // runs past the window end
  timeline.add_satellite_outage(1, 700.0, 900.0);  // entirely outside
  timeline.normalize();
  ASSERT_EQ(timeline.outages().size(), 1u);
  EXPECT_EQ(timeline.outages()[0].asset_index, 0u);
  EXPECT_DOUBLE_EQ(timeline.outages()[0].end_offset_s,
                   timeline.grid().duration_seconds());
}

TEST(FaultTimeline, NormalizeIsInsertionOrderIndependent) {
  const auto build = [](bool reversed) {
    FaultTimeline timeline(make_grid(600.0, 60.0), 2, 0);
    const std::vector<std::array<double, 2>> windows = {
        {60.0, 180.0}, {120.0, 240.0}, {300.0, 420.0}};
    if (reversed) {
      for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
        timeline.add_satellite_outage(0, (*it)[0], (*it)[1]);
      }
    } else {
      for (const auto& w : windows) timeline.add_satellite_outage(0, w[0], w[1]);
    }
    timeline.normalize();
    return timeline;
  };
  const FaultTimeline a = build(false);
  const FaultTimeline b = build(true);
  ASSERT_EQ(a.outages().size(), b.outages().size());
  ASSERT_EQ(a.outages().size(), 2u);
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outages()[i].start_offset_s, b.outages()[i].start_offset_s);
    EXPECT_DOUBLE_EQ(a.outages()[i].end_offset_s, b.outages()[i].end_offset_s);
  }
}

TEST(FaultTimeline, ValidateWindowReportsStructuredIssues) {
  EXPECT_TRUE(FaultTimeline::validate_window(0.0, 60.0).empty());
  const auto inverted = FaultTimeline::validate_window(60.0, 60.0);
  ASSERT_FALSE(inverted.empty());
  EXPECT_EQ(inverted[0].component, "fault.timeline");
  EXPECT_FALSE(FaultTimeline::validate_window(-1.0, 60.0).empty());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(FaultTimeline::validate_window(nan, 60.0).empty());
  EXPECT_FALSE(FaultTimeline::validate_window(0.0, nan).empty());
}

TEST(FaultTimelineStochastic, SameSeedReproducesExactly) {
  const orbit::TimeGrid grid = make_grid(7.0 * 86400.0, 600.0);
  const MtbfMttr sat_model{2.0 * 86400.0, 6.0 * 3600.0};
  const MtbfMttr gs_model{5.0 * 86400.0, 3600.0};
  const FaultTimeline a = FaultTimeline::stochastic(grid, 20, 4, sat_model, gs_model, 7);
  const FaultTimeline b = FaultTimeline::stochastic(grid, 20, 4, sat_model, gs_model, 7);
  ASSERT_EQ(a.outages().size(), b.outages().size());
  EXPECT_GT(a.outages().size(), 0u);  // 2-day MTBF over a week: faults happen
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_EQ(a.outages()[i].kind, b.outages()[i].kind);
    EXPECT_EQ(a.outages()[i].asset_index, b.outages()[i].asset_index);
    EXPECT_DOUBLE_EQ(a.outages()[i].start_offset_s, b.outages()[i].start_offset_s);
    EXPECT_DOUBLE_EQ(a.outages()[i].end_offset_s, b.outages()[i].end_offset_s);
  }
  const FaultTimeline c = FaultTimeline::stochastic(grid, 20, 4, sat_model, gs_model, 8);
  bool identical = a.outages().size() == c.outages().size();
  for (std::size_t i = 0; identical && i < a.outages().size(); ++i) {
    identical = a.outages()[i].start_offset_s == c.outages()[i].start_offset_s;
  }
  EXPECT_FALSE(identical);  // a different seed produces a different history
}

TEST(FaultTimelineStochastic, AssetHistoryStableUnderOtherCounts) {
  // Satellite 3's fault history must depend only on (seed, index 3) — adding
  // more satellites or stations must not perturb it.
  const orbit::TimeGrid grid = make_grid(7.0 * 86400.0, 600.0);
  const MtbfMttr model{86400.0, 3600.0};
  const FaultTimeline small = FaultTimeline::stochastic(grid, 4, 0, model, model, 42);
  const FaultTimeline large = FaultTimeline::stochastic(grid, 64, 16, model, model, 42);
  std::vector<OutageRecord> small_sat3, large_sat3;
  for (const OutageRecord& r : small.outages()) {
    if (r.kind == AssetKind::kSatellite && r.asset_index == 3) small_sat3.push_back(r);
  }
  for (const OutageRecord& r : large.outages()) {
    if (r.kind == AssetKind::kSatellite && r.asset_index == 3) large_sat3.push_back(r);
  }
  ASSERT_EQ(small_sat3.size(), large_sat3.size());
  ASSERT_GT(small_sat3.size(), 0u);
  for (std::size_t i = 0; i < small_sat3.size(); ++i) {
    EXPECT_DOUBLE_EQ(small_sat3[i].start_offset_s, large_sat3[i].start_offset_s);
    EXPECT_DOUBLE_EQ(small_sat3[i].end_offset_s, large_sat3[i].end_offset_s);
  }
}

TEST(FaultTimelineStochastic, ZeroMtbfDisablesClass) {
  const orbit::TimeGrid grid = make_grid(7.0 * 86400.0, 600.0);
  const FaultTimeline timeline = FaultTimeline::stochastic(
      grid, 16, 4, MtbfMttr{0.0, 3600.0}, MtbfMttr{0.0, 3600.0}, 42);
  EXPECT_TRUE(timeline.empty());
}

}  // namespace
}  // namespace mpleo::fault
