// Degraded operations: the fault layer threaded through scheduling, handover
// analysis, SLA evaluation, and settlement. SLA evaluation runs through a
// sim::RunContext carrying the timeline; pool-size identity is pinned by
// run_context_identity_test.
#include <gtest/gtest.h>

#include "core/ledger.hpp"
#include "core/sla.hpp"
#include "coverage/engine.hpp"
#include "fault/timeline.hpp"
#include "net/handover.hpp"
#include "net/scheduler.hpp"
#include "orbit/geodesy.hpp"
#include "sim/run_context.hpp"

namespace mpleo {
namespace {

using constellation::Satellite;
using util::Vec3;

net::Terminal make_terminal(double lat, double lon, std::uint32_t party,
                            net::TerminalId id = 0) {
  net::Terminal t;
  t.id = id;
  t.name = "T" + std::to_string(id);
  t.location = orbit::Geodetic::from_degrees(lat, lon);
  t.owner_party = party;
  t.radio = net::default_user_terminal();
  return t;
}

net::GroundStation make_station(double lat, double lon, std::uint32_t party,
                                net::GroundStationId id = 0) {
  net::GroundStation gs;
  gs.id = id;
  gs.name = "G" + std::to_string(id);
  gs.location = orbit::Geodetic::from_degrees(lat, lon);
  gs.owner_party = party;
  gs.radio = net::default_ground_station();
  return gs;
}

Satellite owned_satellite(std::uint32_t party) {
  Satellite sat;
  sat.owner_party = party;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 0.0, 0.0);
  return sat;
}

Vec3 overhead_of(double lat, double lon) {
  return orbit::geodetic_to_ecef(orbit::Geodetic::from_degrees(lat, lon, 550e3));
}

orbit::TimeGrid make_grid(double duration_s = 600.0, double step_s = 60.0) {
  return orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), duration_s, step_s);
}

TEST(DegradedScheduleStep, SatelliteOutageRemovesService) {
  net::SchedulerConfig cfg;
  const net::BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                         {make_terminal(10.0, 20.0, 0)},
                                         {make_station(10.5, 20.5, 0)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};

  fault::FaultTimeline faults(make_grid(), 1, 0);
  faults.add_satellite_outage(0, 0.0, 120.0);  // steps 0 and 1

  EXPECT_TRUE(scheduler.schedule_step(positions, 0, &faults).links.empty());
  EXPECT_EQ(scheduler.schedule_step(positions, 0, &faults).unserved_terminals.size(), 1u);
  // After the repair the same geometry serves again.
  EXPECT_EQ(scheduler.schedule_step(positions, 2, &faults).links.size(), 1u);
}

TEST(DegradedScheduleStep, StationOutageBlocksBentPipe) {
  // Bent-pipe needs both legs: a healthy satellite cannot serve through a
  // failed ground station.
  net::SchedulerConfig cfg;
  const net::BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                         {make_terminal(10.0, 20.0, 0)},
                                         {make_station(10.5, 20.5, 0)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};

  fault::FaultTimeline faults(make_grid(), 1, 1);
  faults.add_station_outage(0, 0.0, 60.0);
  EXPECT_TRUE(scheduler.schedule_step(positions, 0, &faults).links.empty());
  EXPECT_EQ(scheduler.schedule_step(positions, 1, &faults).links.size(), 1u);
}

TEST(DegradedScheduleStep, DegradationReducesOfferedBeams) {
  net::SchedulerConfig cfg;
  cfg.beams_per_satellite = 2;
  std::vector<net::Terminal> terminals{make_terminal(10.0, 20.0, 0, 0),
                                       make_terminal(10.3, 20.3, 0, 1)};
  const net::BentPipeScheduler scheduler(cfg, {owned_satellite(0)}, terminals,
                                         {make_station(10.5, 20.5, 0)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};

  // Healthy: both terminals get a beam.
  EXPECT_EQ(scheduler.schedule_step(positions, 0).links.size(), 2u);

  // Half the transponder is gone: floor(2 * 0.5) = 1 beam survives.
  fault::FaultTimeline half(make_grid(), 1, 0);
  half.add_transponder_degradation(0, 0.0, 600.0, 0.5);
  const net::StepSchedule degraded = scheduler.schedule_step(positions, 0, &half);
  EXPECT_EQ(degraded.links.size(), 1u);
  EXPECT_EQ(degraded.unserved_terminals.size(), 1u);

  // Degraded below one beam: the satellite is effectively off the air.
  fault::FaultTimeline crippled(make_grid(), 1, 0);
  crippled.add_transponder_degradation(0, 0.0, 600.0, 0.1);
  EXPECT_TRUE(scheduler.schedule_step(positions, 0, &crippled).links.empty());
}

TEST(DegradedScheduleStep, BlockedTerminalTakesNoService) {
  net::SchedulerConfig cfg;
  std::vector<net::Terminal> terminals{make_terminal(10.0, 20.0, 0, 0),
                                       make_terminal(10.3, 20.3, 0, 1)};
  const net::BentPipeScheduler scheduler(cfg, {owned_satellite(0)}, terminals,
                                         {make_station(10.5, 20.5, 0)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  fault::FaultTimeline faults(make_grid(), 1, 0);
  faults.add_satellite_outage(0, 590.0, 600.0);  // non-empty, but step 0 healthy

  const std::vector<std::uint8_t> blocked{1, 0};
  const net::StepSchedule schedule =
      scheduler.schedule_step(positions, 0, &faults, blocked);
  ASSERT_EQ(schedule.links.size(), 1u);
  EXPECT_EQ(schedule.links.front().terminal_index, 1u);
  ASSERT_EQ(schedule.unserved_terminals.size(), 1u);
  EXPECT_EQ(schedule.unserved_terminals.front(), 0u);
}

// An 8-satellite fleet over Taipei: enough geometry for real service windows.
net::BentPipeScheduler taipei_scheduler(net::SchedulerConfig cfg) {
  std::vector<Satellite> sats;
  for (double raan : {0.0, 45.0, 90.0, 135.0, 180.0, 225.0, 270.0, 315.0}) {
    Satellite s = owned_satellite(0);
    s.elements = orbit::ClassicalElements::circular(550e3, 53.0, raan, raan);
    s.epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
    sats.push_back(s);
  }
  return net::BentPipeScheduler(cfg, sats, {make_terminal(25.0, 121.5, 0, 0)},
                                {make_station(24.9, 121.4, 0, 0)});
}

TEST(DegradedRun, FullWindowOutageServesNothing) {
  const net::BentPipeScheduler scheduler = taipei_scheduler({});
  const orbit::TimeGrid grid = make_grid(86400.0, 120.0);

  fault::FaultTimeline faults(grid, 8, 0);
  for (std::size_t i = 0; i < 8; ++i) faults.add_satellite_outage(i, 0.0, 86400.0);

  const net::ScheduleResult result = scheduler.run(grid, 1, &faults);
  EXPECT_DOUBLE_EQ(result.total_served_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.total_unserved_seconds, grid.duration_seconds());
  // The terminal never attached, so nothing was ever force-detached.
  EXPECT_EQ(result.failure_forced_detaches, 0u);
  EXPECT_DOUBLE_EQ(result.reacquisition_wait_seconds, 0.0);
}

TEST(DegradedRun, AlternatingOutageForcesDetachesAndBackoffCostsService) {
  // Every odd step the entire fleet blinks out, so any link alive at an even
  // step is failure-force-detached at the next step. The 30 s step keeps a
  // pass several steps long, so with a re-acquisition backoff the terminal
  // also sits out healthy even steps mid-pass — backoff strictly costs
  // served seconds.
  const orbit::TimeGrid grid = make_grid(86400.0, 30.0);
  fault::FaultTimeline faults(grid, 8, 0);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t k = 1; k < grid.count; k += 2) {
      const double t = static_cast<double>(k) * grid.step_seconds;
      faults.add_satellite_outage(i, t, t + grid.step_seconds);
    }
  }

  net::SchedulerConfig instant;
  instant.reacquisition_backoff_steps = 0;
  const net::ScheduleResult no_backoff = taipei_scheduler(instant).run(grid, 1, &faults);

  net::SchedulerConfig slow;
  slow.reacquisition_backoff_steps = 4;
  const net::ScheduleResult with_backoff = taipei_scheduler(slow).run(grid, 1, &faults);

  const net::ScheduleResult healthy = taipei_scheduler(instant).run(grid, 1);
  EXPECT_GT(healthy.total_served_seconds, 0.0);
  EXPECT_GT(no_backoff.failure_forced_detaches, 0u);
  EXPECT_EQ(no_backoff.reacquisition_wait_seconds, 0.0);
  EXPECT_LT(no_backoff.total_served_seconds, healthy.total_served_seconds);

  EXPECT_GT(with_backoff.failure_forced_detaches, 0u);
  EXPECT_GT(with_backoff.reacquisition_wait_seconds, 0.0);
  EXPECT_LT(with_backoff.total_served_seconds, no_backoff.total_served_seconds);

  // Conservation still holds on the degraded path.
  EXPECT_NEAR(with_backoff.total_served_seconds + with_backoff.total_unserved_seconds,
              grid.duration_seconds(), 1e-6);
}

TEST(FaultHandover, FailureForcedTransitionsAreAttributed) {
  const orbit::TimeGrid grid = make_grid(600.0, 60.0);
  fault::FaultTimeline faults(grid, 3, 0);
  faults.add_satellite_outage(0, 120.0, 180.0);  // sat 0 down at step 2
  faults.add_satellite_outage(1, 240.0, 300.0);  // sat 1 down at step 4

  // Serving timeline: 0,0 -> 1 (forced: sat 0 died), 1 -> gap (forced: sat 1
  // died), then 2 picks up (reconnection, not a handover).
  const std::uint32_t gap = net::kNoSatellite;
  const std::vector<std::uint32_t> timeline{0, 0, 1, 1, gap, 2};

  const net::HandoverStats plain = net::handover_stats(timeline, 60.0);
  EXPECT_EQ(plain.handover_count, 1u);
  EXPECT_EQ(plain.outage_count, 1u);
  EXPECT_EQ(plain.failure_handover_count, 0u);
  EXPECT_EQ(plain.failure_outage_count, 0u);

  const net::HandoverStats attributed = net::handover_stats(timeline, 60.0, &faults);
  EXPECT_EQ(attributed.handover_count, 1u);
  EXPECT_EQ(attributed.outage_count, 1u);
  EXPECT_EQ(attributed.failure_handover_count, 1u);
  EXPECT_EQ(attributed.failure_outage_count, 1u);
  // The non-fault fields are untouched by attribution.
  EXPECT_DOUBLE_EQ(attributed.connected_fraction, plain.connected_fraction);
  EXPECT_DOUBLE_EQ(attributed.mean_dwell_seconds, plain.mean_dwell_seconds);
}

TEST(FaultHandover, FaultedSatelliteNeverServes) {
  std::vector<Satellite> sats;
  for (double raan : {0.0, 90.0, 180.0, 270.0}) {
    Satellite s = owned_satellite(0);
    s.elements = orbit::ClassicalElements::circular(550e3, 53.0, raan, raan);
    s.epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
    sats.push_back(s);
  }
  const orbit::TimeGrid grid = make_grid(86400.0, 120.0);
  const cov::CoverageEngine engine(grid, 25.0);
  const orbit::TopocentricFrame terminal(orbit::Geodetic::from_degrees(25.0, 121.5));

  const fault::FaultTimeline faults =
      fault::FaultTimeline::stochastic(grid, sats.size(), 0,
                                       {6.0 * 3600.0, 2.0 * 3600.0}, {}, 99);
  ASSERT_FALSE(faults.empty());
  const std::vector<std::uint32_t> timeline =
      net::serving_satellite_timeline(engine, sats, terminal, faults);
  ASSERT_EQ(timeline.size(), grid.count);
  for (std::size_t k = 0; k < timeline.size(); ++k) {
    if (timeline[k] == net::kNoSatellite) continue;
    EXPECT_TRUE(faults.satellite_available(timeline[k], k)) << "step " << k;
  }

  // All satellites out for the whole window: nobody may serve.
  fault::FaultTimeline total(grid, sats.size(), 0);
  for (std::size_t i = 0; i < sats.size(); ++i) {
    total.add_satellite_outage(i, 0.0, grid.duration_seconds() + grid.step_seconds);
  }
  for (const std::uint32_t serving :
       net::serving_satellite_timeline(engine, sats, terminal, total)) {
    EXPECT_EQ(serving, net::kNoSatellite);
  }
}

TEST(FaultSla, OutageLongerThanMaxGapViolatesAndSettles) {
  // A 36-satellite shell gives the site regular passes; the SLA's gap clause
  // is calibrated just above the healthy worst gap, so only the injected
  // outage can break it — and the penalty must settle on the ledger.
  constellation::WalkerShell shell;
  shell.plane_count = 6;
  shell.sats_per_plane = 6;
  shell.phasing_factor = 1;
  const std::vector<Satellite> sats =
      shell.build(orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"));
  const orbit::TimeGrid grid = make_grid(86400.0, 300.0);
  const cov::CoverageEngine engine(grid, 25.0);
  const std::vector<cov::GroundSite> sites{
      {"Taipei", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(25.0, 121.5)), 1.0}};
  cov::VisibilityCache cache(engine, sats, sites);

  std::vector<std::size_t> fleet(sats.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) fleet[i] = i;

  const cov::CoverageStats healthy = engine.stats(cache.union_mask(fleet, 0));
  ASSERT_GT(healthy.covered_fraction, 0.0);
  ASSERT_LT(healthy.max_gap_seconds, 0.25 * grid.duration_seconds());

  core::SlaTerms terms;
  terms.min_coverage_fraction = 0.0;  // isolate the gap clause
  terms.max_gap_seconds = healthy.max_gap_seconds + grid.step_seconds;
  terms.penalty_per_violation = 25.0;

  // Healthy geometry complies; bit-identically so through an empty timeline.
  EXPECT_TRUE(core::evaluate_sla(terms, healthy).compliant);
  const fault::FaultTimeline no_faults;
  sim::RunContext healthy_context;
  healthy_context.use_faults(&no_faults);
  EXPECT_TRUE(core::evaluate_sla(terms, cache, fleet, 0, healthy_context).compliant);

  // Everybody out for longer than the allowed gap.
  const double outage_s = terms.max_gap_seconds + 20.0 * grid.step_seconds;
  fault::FaultTimeline faults(grid, sats.size(), 0);
  for (std::size_t i : fleet) faults.add_satellite_outage(i, 0.0, outage_s);

  sim::RunContext faulted_context;
  faulted_context.use_faults(&faults);
  const core::SlaReport report =
      core::evaluate_sla(terms, cache, fleet, 0, faulted_context);
  EXPECT_FALSE(report.compliant);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front().clause, core::SlaClause::kMaxGap);
  EXPECT_GT(report.violations.front().delivered, terms.max_gap_seconds);

  core::Ledger ledger;
  const core::AccountId provider = ledger.open_account("provider");
  const core::AccountId customer = ledger.open_account("customer");
  ledger.mint(100.0);
  ASSERT_TRUE(ledger.reward(provider, 100.0));
  ASSERT_TRUE(core::settle_sla_penalty(report, ledger, provider, customer));
  EXPECT_DOUBLE_EQ(ledger.balance(customer), report.total_penalty);
  EXPECT_DOUBLE_EQ(ledger.balance(provider), 100.0 - report.total_penalty);
}

}  // namespace
}  // namespace mpleo
