// fault::EventBook: correlated failure events compiling down to the
// FaultTimeline representation. The contracts pinned here are the ones the
// chaos bench stands on: an empty book is a strict no-op, compilation is
// deterministic in the seed, storm draws are CRN-stable under fleet growth
// (satellite i's draw depends only on seed + indices), the blackout mask
// agrees bit-for-bit with the exposed inside_circle geo-predicate over
// PopulationSampler-drawn sites, withdrawals honour the rejoin window, and
// debris cascades cluster by orbital-element proximity with staggered,
// permanent losses.
#include "fault/event_book.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "constellation/population.hpp"
#include "net/bent_pipe.hpp"
#include "orbit/elements.hpp"

namespace mpleo::fault {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

orbit::TimeGrid make_grid(double duration_s = 7200.0, double step_s = 60.0) {
  return orbit::TimeGrid::over_duration(kEpoch, duration_s, step_s);
}

constellation::Satellite make_satellite(std::size_t index, double altitude_m,
                                        double inclination_deg, double raan_deg = 0.0,
                                        std::uint32_t party = 0) {
  constellation::Satellite sat;
  sat.id = static_cast<constellation::SatelliteId>(index);
  sat.owner_party = party;
  sat.elements = orbit::ClassicalElements::circular(altitude_m, inclination_deg,
                                                    raan_deg, 0.0);
  sat.epoch = kEpoch;
  return sat;
}

net::GroundStation make_station(std::size_t index, double lat_deg, double lon_deg) {
  net::GroundStation gs;
  gs.id = static_cast<net::GroundStationId>(index);
  gs.owner_party = 0;
  gs.location = orbit::Geodetic::from_degrees(lat_deg, lon_deg);
  gs.radio = net::default_ground_station();
  return gs;
}

std::vector<OutageRecord> satellite_records(const FaultTimeline& timeline) {
  std::vector<OutageRecord> out;
  for (const OutageRecord& r : timeline.outages()) {
    if (r.kind == AssetKind::kSatellite) out.push_back(r);
  }
  return out;
}

TEST(EventBook, EmptyBookCompileIsANoOp) {
  const std::vector<constellation::Satellite> sats = {
      make_satellite(0, 550e3, 53.0), make_satellite(1, 550e3, 53.0, 30.0)};
  const std::vector<net::GroundStation> stations = {make_station(0, 40.0, -74.0)};

  const EventBook book(7);
  EXPECT_TRUE(book.empty());
  const FaultTimeline compiled = book.compile(make_grid(), sats, stations);
  EXPECT_TRUE(compiled.empty());

  // In-place compile into a pre-populated timeline must also change nothing.
  FaultTimeline seeded(make_grid(), sats.size(), stations.size());
  seeded.add_satellite_outage(0, 60.0, 120.0);
  const std::size_t before = seeded.outages().size();
  book.compile(seeded, sats, stations);
  EXPECT_EQ(seeded.outages().size(), before);

  EXPECT_TRUE(EventBook::preset(EventProfile::kOff, 7200.0, 7).empty());
}

TEST(EventBook, SameSeedReproducesIdenticalTimeline) {
  std::vector<constellation::Satellite> sats;
  for (std::size_t i = 0; i < 12; ++i) {
    sats.push_back(make_satellite(i, 550e3 + 10e3 * static_cast<double>(i % 3), 53.0,
                                  30.0 * static_cast<double>(i),
                                  static_cast<std::uint32_t>(i % 4)));
  }
  const std::vector<net::GroundStation> stations = {make_station(0, 40.7, -74.0),
                                                    make_station(1, -33.9, 151.2)};
  const orbit::TimeGrid grid = make_grid(6.0 * 3600.0);

  const EventBook book =
      EventBook::preset(EventProfile::kMixed, grid.duration_seconds(), 2042);
  const FaultTimeline a = book.compile(grid, sats, stations);
  const FaultTimeline b = book.compile(grid, sats, stations);
  ASSERT_EQ(a.outages().size(), b.outages().size());
  ASSERT_GT(a.outages().size(), 0u);
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_EQ(a.outages()[i].asset_index, b.outages()[i].asset_index);
    EXPECT_EQ(a.outages()[i].start_offset_s, b.outages()[i].start_offset_s);
    EXPECT_EQ(a.outages()[i].end_offset_s, b.outages()[i].end_offset_s);
  }
  ASSERT_EQ(a.degradations().size(), b.degradations().size());
  for (std::size_t i = 0; i < a.degradations().size(); ++i) {
    EXPECT_EQ(a.degradations()[i].satellite_index, b.degradations()[i].satellite_index);
    EXPECT_EQ(a.degradations()[i].end_offset_s, b.degradations()[i].end_offset_s);
  }

  // A different seed redraws the storm's per-satellite durations.
  const EventBook other =
      EventBook::preset(EventProfile::kMixed, grid.duration_seconds(), 2043);
  const FaultTimeline c = other.compile(grid, sats, stations);
  bool identical = a.outages().size() == c.outages().size() &&
                   a.degradations().size() == c.degradations().size();
  for (std::size_t i = 0; identical && i < a.degradations().size(); ++i) {
    identical = a.degradations()[i].end_offset_s == c.degradations()[i].end_offset_s;
  }
  EXPECT_FALSE(identical);
}

TEST(EventBook, StormTargetsAltitudeAndInclinationBand) {
  // Sat 0 sits inside both bands; sat 1 fails the altitude band, sat 2 the
  // inclination band. Only sat 0 may be touched.
  const std::vector<constellation::Satellite> sats = {
      make_satellite(0, 550e3, 53.0), make_satellite(1, 1200e3, 53.0),
      make_satellite(2, 550e3, 87.0)};
  StormEvent storm;
  storm.start_offset_s = 600.0;
  storm.mean_duration_s = 1200.0;
  storm.duration_jitter = 0.0;
  storm.min_altitude_m = 400e3;
  storm.max_altitude_m = 700e3;
  storm.min_inclination_deg = 40.0;
  storm.max_inclination_deg = 60.0;
  storm.outage_fraction = 1.0;  // every targeted satellite goes fully out

  EventBook book(11);
  book.add_storm(storm);
  const FaultTimeline timeline = book.compile(make_grid(), sats, {});
  const std::vector<OutageRecord> records = satellite_records(timeline);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].asset_index, 0u);
  // Jitter 0: duration is exactly the mean.
  EXPECT_DOUBLE_EQ(records[0].start_offset_s, 600.0);
  EXPECT_DOUBLE_EQ(records[0].end_offset_s, 1800.0);
  EXPECT_EQ(timeline.satellite_outage_steps(1), nullptr);
  EXPECT_EQ(timeline.satellite_outage_steps(2), nullptr);
}

TEST(EventBook, StormDrawsStableUnderFleetGrowth) {
  // CRN contract: satellite i's storm draw is keyed by (seed, storm index,
  // i) — adding more satellites to the fleet must not perturb it. This is
  // what lets the chaos bench share draws between topologies.
  StormEvent storm;
  storm.start_offset_s = 300.0;
  storm.mean_duration_s = 2400.0;
  storm.duration_jitter = 0.8;
  storm.outage_fraction = 0.5;
  EventBook book(1234);
  book.add_storm(storm);

  std::vector<constellation::Satellite> small;
  for (std::size_t i = 0; i < 2; ++i) small.push_back(make_satellite(i, 550e3, 53.0));
  std::vector<constellation::Satellite> large = small;
  for (std::size_t i = 2; i < 10; ++i) large.push_back(make_satellite(i, 550e3, 53.0));

  const orbit::TimeGrid grid = make_grid(4.0 * 3600.0);
  const FaultTimeline ts = book.compile(grid, small, {});
  const FaultTimeline tl = book.compile(grid, large, {});
  for (std::size_t si = 0; si < 2; ++si) {
    EXPECT_EQ(ts.satellite_capacity_factor(si, 10), tl.satellite_capacity_factor(si, 10))
        << "sat " << si;
    const cov::StepMask* ms = ts.satellite_outage_steps(si);
    const cov::StepMask* ml = tl.satellite_outage_steps(si);
    ASSERT_EQ(ms == nullptr, ml == nullptr) << "sat " << si;
    if (ms != nullptr) EXPECT_EQ(ms->count(), ml->count()) << "sat " << si;
  }
}

TEST(EventBook, StormSurvivorsDegradeInsteadOfDying) {
  StormEvent storm;
  storm.start_offset_s = 0.0;
  storm.mean_duration_s = 3600.0;
  storm.duration_jitter = 0.0;
  storm.outage_fraction = 0.0;  // nobody latches up...
  storm.capacity_factor = 0.5;  // ...everyone throttles
  EventBook book(3);
  book.add_storm(storm);
  const std::vector<constellation::Satellite> sats = {make_satellite(0, 550e3, 53.0),
                                                      make_satellite(1, 550e3, 53.0)};
  const FaultTimeline timeline = book.compile(make_grid(), sats, {});
  EXPECT_TRUE(satellite_records(timeline).empty());
  ASSERT_EQ(timeline.degradations().size(), 2u);
  EXPECT_DOUBLE_EQ(timeline.satellite_capacity_factor(0, 0), 0.5);
  EXPECT_TRUE(timeline.satellite_available(0, 0));  // degraded, not out
  EXPECT_EQ(timeline.degraded_beam_count(0, 0, 8), 4);
}

TEST(EventBook, BlackoutMasksExactlyTheInsideCircleSites) {
  // Satellite task: PopulationSampler + blackout geo-predicate agreement.
  // Stations sampled from the population density grid are masked iff the
  // exposed inside_circle predicate says they are inside the event circle —
  // bit-for-bit, no station-by-station re-derivation of the haversine.
  const constellation::PopulationSampler sampler;
  const std::vector<orbit::Geodetic> sites = sampler.sample(64, 99);
  std::vector<net::GroundStation> stations;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    net::GroundStation gs;
    gs.id = static_cast<net::GroundStationId>(i);
    gs.location = sites[i];
    gs.radio = net::default_ground_station();
    stations.push_back(gs);
  }

  RegionalBlackoutEvent blackout;
  blackout.start_offset_s = 600.0;
  blackout.duration_s = 1800.0;
  blackout.center_latitude_deg = 40.7;
  blackout.center_longitude_deg = -74.0;
  blackout.radius_km = 3000.0;  // wide enough to catch a population cluster
  EventBook book(5);
  book.add_blackout(blackout);
  const FaultTimeline timeline = book.compile(make_grid(), {}, stations);

  std::size_t inside = 0;
  for (std::size_t gi = 0; gi < stations.size(); ++gi) {
    const bool in = EventBook::inside_circle(stations[gi].location, 40.7, -74.0, 3000.0);
    inside += in ? 1 : 0;
    EXPECT_EQ(timeline.station_outage_steps(gi) != nullptr, in) << "station " << gi;
    EXPECT_EQ(!timeline.station_available(gi, 15), in) << "station " << gi;
  }
  // The paper's 21-city density grid puts mass near the US north-east, so a
  // 3000 km circle there must split the sample (the test is vacuous if the
  // predicate never fires or always fires).
  EXPECT_GT(inside, 0u);
  EXPECT_LT(inside, stations.size());
}

TEST(EventBook, WithdrawalHitsOnePartyAndHonoursRejoin) {
  const std::vector<constellation::Satellite> sats = {
      make_satellite(0, 550e3, 53.0, 0.0, /*party=*/0),
      make_satellite(1, 550e3, 53.0, 30.0, /*party=*/1),
      make_satellite(2, 550e3, 53.0, 60.0, /*party=*/0)};
  PartyWithdrawalEvent withdrawal;
  withdrawal.party = 0;
  withdrawal.start_offset_s = 600.0;
  withdrawal.rejoin_offset_s = 1200.0;
  EventBook book(9);
  book.add_withdrawal(withdrawal);
  const FaultTimeline timeline = book.compile(make_grid(), sats, {});
  const std::vector<OutageRecord> records = satellite_records(timeline);
  ASSERT_EQ(records.size(), 2u);
  for (const OutageRecord& r : records) {
    EXPECT_TRUE(r.asset_index == 0 || r.asset_index == 2);
    EXPECT_DOUBLE_EQ(r.start_offset_s, 600.0);
    EXPECT_DOUBLE_EQ(r.end_offset_s, 1200.0);
  }
  EXPECT_EQ(timeline.satellite_outage_steps(1), nullptr);
}

TEST(EventBook, WithdrawalWithoutRejoinLastsToWindowEnd) {
  const std::vector<constellation::Satellite> sats = {
      make_satellite(0, 550e3, 53.0, 0.0, /*party=*/2)};
  PartyWithdrawalEvent withdrawal;
  withdrawal.party = 2;
  withdrawal.start_offset_s = 600.0;
  withdrawal.rejoin_offset_s = std::numeric_limits<double>::infinity();
  EventBook book(9);
  book.add_withdrawal(withdrawal);
  const orbit::TimeGrid grid = make_grid(7200.0);
  const FaultTimeline timeline = book.compile(grid, sats, {});
  const std::vector<OutageRecord> records = satellite_records(timeline);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].end_offset_s, grid.duration_seconds());
}

TEST(EventBook, DebrisCascadeClustersByOrbitalProximityAndStaggers) {
  // Two well-separated shells; whichever shell the seeded epicenter lands
  // in, all four losses must stay inside it — a cascade is a neighbourhood
  // event, not an independent sprinkle — and losses are staggered by the
  // inter-loss spacing, each permanent (end = window end).
  std::vector<constellation::Satellite> sats;
  for (std::size_t i = 0; i < 4; ++i) {
    sats.push_back(make_satellite(i, 550e3, 53.0, 5.0 * static_cast<double>(i)));
  }
  for (std::size_t i = 4; i < 8; ++i) {
    sats.push_back(
        make_satellite(i, 1150e3, 87.0, 5.0 * static_cast<double>(i - 4)));
  }
  DebrisCascadeEvent cascade;
  cascade.start_offset_s = 300.0;
  cascade.loss_count = 4;
  cascade.inter_loss_spacing_s = 120.0;
  EventBook book(21);
  book.add_debris_cascade(cascade);
  const orbit::TimeGrid grid = make_grid(7200.0);
  const FaultTimeline timeline = book.compile(grid, sats, {});

  std::vector<OutageRecord> records = satellite_records(timeline);
  ASSERT_EQ(records.size(), 4u);
  std::sort(records.begin(), records.end(),
            [](const OutageRecord& a, const OutageRecord& b) {
              return a.start_offset_s < b.start_offset_s;
            });
  const bool low_shell = records[0].asset_index < 4;
  for (std::size_t k = 0; k < records.size(); ++k) {
    EXPECT_EQ(records[k].asset_index < 4, low_shell) << "loss " << k;
    EXPECT_DOUBLE_EQ(records[k].start_offset_s,
                     300.0 + 120.0 * static_cast<double>(k));
    EXPECT_DOUBLE_EQ(records[k].end_offset_s, grid.duration_seconds());
  }
}

TEST(EventBook, PresetProfilesPopulateTheExpectedEvents) {
  EXPECT_EQ(EventBook::preset(EventProfile::kStorm, 7200.0, 1).storms().size(), 1u);
  EXPECT_EQ(EventBook::preset(EventProfile::kBlackout, 7200.0, 1).blackouts().size(),
            1u);
  EXPECT_EQ(
      EventBook::preset(EventProfile::kWithdrawal, 7200.0, 1).withdrawals().size(),
      1u);
  EXPECT_EQ(EventBook::preset(EventProfile::kDebris, 7200.0, 1).cascades().size(), 1u);
  const EventBook mixed = EventBook::preset(EventProfile::kMixed, 7200.0, 1);
  EXPECT_EQ(mixed.event_count(), 4u);
  // Intensity scales severity monotonically: a harsher storm degrades
  // further and latches up a larger fraction.
  const EventBook mild = EventBook::preset(EventProfile::kStorm, 7200.0, 1, 0.5);
  const EventBook harsh = EventBook::preset(EventProfile::kStorm, 7200.0, 1, 1.5);
  EXPECT_GT(mild.storms()[0].capacity_factor, harsh.storms()[0].capacity_factor);
  EXPECT_LT(mild.storms()[0].outage_fraction, harsh.storms()[0].outage_fraction);
}

TEST(EventBook, ProfileNamesRoundTrip) {
  for (const EventProfile profile :
       {EventProfile::kOff, EventProfile::kStorm, EventProfile::kBlackout,
        EventProfile::kWithdrawal, EventProfile::kDebris, EventProfile::kMixed}) {
    const auto parsed = event_profile_from_string(to_string(profile));
    ASSERT_TRUE(parsed.has_value()) << to_string(profile);
    EXPECT_EQ(*parsed, profile);
  }
  EXPECT_EQ(event_profile_from_string("withdraw"), EventProfile::kWithdrawal);
  EXPECT_FALSE(event_profile_from_string("kessler").has_value());
}

TEST(EventBook, MalformedEventsThrowStructuredIssues) {
  EventBook book(1);
  StormEvent storm;
  storm.capacity_factor = 0.0;
  EXPECT_THROW(book.add_storm(storm), std::invalid_argument);
  storm.capacity_factor = 0.5;
  storm.min_altitude_m = 700e3;
  storm.max_altitude_m = 400e3;  // inverted band
  EXPECT_THROW(book.add_storm(storm), std::invalid_argument);

  RegionalBlackoutEvent blackout;
  blackout.radius_km = -10.0;
  EXPECT_THROW(book.add_blackout(blackout), std::invalid_argument);
  blackout.radius_km = 100.0;
  blackout.center_latitude_deg = 95.0;
  EXPECT_THROW(book.add_blackout(blackout), std::invalid_argument);

  PartyWithdrawalEvent withdrawal;
  withdrawal.start_offset_s = 600.0;
  withdrawal.rejoin_offset_s = 600.0;  // rejoin must be strictly later
  EXPECT_THROW(book.add_withdrawal(withdrawal), std::invalid_argument);

  DebrisCascadeEvent cascade;
  cascade.loss_count = 0;
  EXPECT_THROW(book.add_debris_cascade(cascade), std::invalid_argument);

  EXPECT_TRUE(book.empty());  // nothing slipped in past validation
  EXPECT_THROW(EventBook::preset(EventProfile::kStorm, -1.0, 7),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::fault
