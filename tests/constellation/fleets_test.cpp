#include "constellation/fleets.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/units.hpp"

namespace mpleo::constellation {
namespace {

TEST(Fleets, OneWebGeometry) {
  const auto shells = oneweb_shells();
  ASSERT_EQ(shells.size(), 1u);
  EXPECT_EQ(shells[0].total_count(), 588);
  EXPECT_DOUBLE_EQ(shells[0].raan_spread_deg, 180.0);
  EXPECT_NEAR(shells[0].inclination_deg, 87.9, 1e-12);
  EXPECT_NEAR(shells[0].altitude_m, 1200e3, 1e-6);
}

TEST(Fleets, KuiperTotals) {
  const auto shells = kuiper_shells();
  ASSERT_EQ(shells.size(), 3u);
  int total = 0;
  for (const WalkerShell& s : shells) total += s.total_count();
  EXPECT_EQ(total, 34 * 34 + 36 * 36 + 28 * 28);  // 3236
}

TEST(Fleets, WalkerStarPlanesSpanHalfCircle) {
  WalkerShell star = oneweb_shells()[0];
  star.raan_offset_deg = 0.0;
  const auto sats = star.build(orbit::TimePoint{});
  double max_raan = 0.0;
  for (const Satellite& s : sats) {
    max_raan = std::max(max_raan, util::rad_to_deg(s.elements.raan_rad));
  }
  // 12 planes over 180 deg: last plane at 165 deg.
  EXPECT_LT(max_raan, 180.0);
  EXPECT_NEAR(max_raan, 165.0, 1e-9);
}

TEST(Fleets, WalkerStarRejectsBadSpread) {
  WalkerShell shell;
  shell.raan_spread_deg = 0.0;
  EXPECT_THROW(shell.build(orbit::TimePoint{}), std::invalid_argument);
  shell.raan_spread_deg = 400.0;
  EXPECT_THROW(shell.build(orbit::TimePoint{}), std::invalid_argument);
}

TEST(Fleets, BuildCatalogContiguousIds) {
  const auto catalog = build_catalog(kuiper_shells(), orbit::TimePoint{});
  EXPECT_EQ(catalog.size(), 3236u);
  std::set<SatelliteId> ids;
  for (const Satellite& s : catalog) ids.insert(s.id);
  EXPECT_EQ(ids.size(), catalog.size());
  EXPECT_EQ(*ids.begin(), 0u);
}

TEST(Fleets, BuildCatalogDeterministicJitter) {
  const auto a = build_catalog(oneweb_shells(), orbit::TimePoint{});
  const auto b = build_catalog(oneweb_shells(), orbit::TimePoint{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 37) {
    EXPECT_EQ(a[i].elements.raan_rad, b[i].elements.raan_rad);
  }
}

TEST(Fleets, KuiperInclinationsMixed) {
  const auto catalog = build_catalog(kuiper_shells(), orbit::TimePoint{});
  std::set<int> inclinations;
  for (const Satellite& s : catalog) {
    inclinations.insert(static_cast<int>(util::rad_to_deg(s.elements.inclination_rad) + 0.5));
  }
  EXPECT_TRUE(inclinations.contains(52));
  EXPECT_TRUE(inclinations.contains(42));
  EXPECT_TRUE(inclinations.contains(33));
}

}  // namespace
}  // namespace mpleo::constellation
