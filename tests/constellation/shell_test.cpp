#include "constellation/shell.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::constellation {
namespace {

TEST(WalkerShell, TotalCountAndIds) {
  WalkerShell shell;
  shell.label = "TEST";
  shell.plane_count = 6;
  shell.sats_per_plane = 4;
  shell.phasing_factor = 1;
  const auto sats = shell.build(orbit::TimePoint{}, 100);
  ASSERT_EQ(sats.size(), 24u);
  EXPECT_EQ(shell.total_count(), 24);
  EXPECT_EQ(sats.front().id, 100u);
  EXPECT_EQ(sats.back().id, 123u);
  std::set<SatelliteId> ids;
  for (const Satellite& s : sats) ids.insert(s.id);
  EXPECT_EQ(ids.size(), 24u);
}

TEST(WalkerShell, PlanesEquallySpacedInRaan) {
  WalkerShell shell;
  shell.plane_count = 8;
  shell.sats_per_plane = 2;
  shell.phasing_factor = 0;
  const auto sats = shell.build(orbit::TimePoint{});
  // First satellite of each plane.
  for (int p = 0; p < shell.plane_count; ++p) {
    const auto& sat = sats[static_cast<std::size_t>(p * shell.sats_per_plane)];
    EXPECT_NEAR(util::rad_to_deg(sat.elements.raan_rad), 45.0 * p, 1e-9);
  }
}

TEST(WalkerShell, InPlanePhasingUniform) {
  WalkerShell shell;
  shell.plane_count = 1;
  shell.sats_per_plane = 12;
  shell.phasing_factor = 0;
  const auto sats = shell.build(orbit::TimePoint{});
  for (int s = 0; s < 12; ++s) {
    EXPECT_NEAR(util::rad_to_deg(sats[static_cast<std::size_t>(s)].elements.mean_anomaly_rad),
                30.0 * s, 1e-9);
  }
}

TEST(WalkerShell, PhasingFactorShiftsAdjacentPlanes) {
  WalkerShell shell;
  shell.plane_count = 4;
  shell.sats_per_plane = 5;
  shell.phasing_factor = 2;
  const auto sats = shell.build(orbit::TimePoint{});
  const double expected_shift_deg = 2.0 * 360.0 / 20.0;  // F * 360 / T
  const double p0 = util::rad_to_deg(sats[0].elements.mean_anomaly_rad);
  const double p1 = util::rad_to_deg(sats[5].elements.mean_anomaly_rad);
  EXPECT_NEAR(p1 - p0, expected_shift_deg, 1e-9);
}

TEST(WalkerShell, AltitudeAndInclinationApplied) {
  WalkerShell shell;
  shell.altitude_m = 546e3;
  shell.inclination_deg = 53.0;
  shell.plane_count = 2;
  shell.sats_per_plane = 2;
  shell.phasing_factor = 0;
  for (const Satellite& sat : shell.build(orbit::TimePoint{})) {
    EXPECT_NEAR(sat.elements.semi_major_axis_m, util::kEarthMeanRadiusM + 546e3, 1e-6);
    EXPECT_NEAR(util::rad_to_deg(sat.elements.inclination_rad), 53.0, 1e-12);
    EXPECT_EQ(sat.elements.eccentricity, 0.0);
  }
}

TEST(WalkerShell, RejectsInvalidParameters) {
  WalkerShell shell;
  shell.plane_count = 0;
  EXPECT_THROW(shell.build(orbit::TimePoint{}), std::invalid_argument);
  shell.plane_count = 4;
  shell.phasing_factor = 4;  // must be < plane_count
  EXPECT_THROW(shell.build(orbit::TimePoint{}), std::invalid_argument);
}

TEST(SinglePlane, PaperFig4bConstellation) {
  // 12 satellites, 30 deg apart, 53 deg inclination, 546 km altitude.
  const auto sats = single_plane(546e3, 53.0, 0.0, 12, orbit::TimePoint{});
  ASSERT_EQ(sats.size(), 12u);
  for (std::size_t i = 1; i < sats.size(); ++i) {
    const double gap = util::rad_to_deg(sats[i].elements.mean_anomaly_rad) -
                       util::rad_to_deg(sats[i - 1].elements.mean_anomaly_rad);
    EXPECT_NEAR(gap, 30.0, 1e-9);
  }
  // Same plane: identical RAAN and inclination.
  for (const Satellite& s : sats) {
    EXPECT_EQ(s.elements.raan_rad, sats[0].elements.raan_rad);
    EXPECT_EQ(s.elements.inclination_rad, sats[0].elements.inclination_rad);
  }
}

TEST(SinglePlane, PhaseOffsetShiftsAll) {
  const auto base = single_plane(550e3, 53.0, 0.0, 4, orbit::TimePoint{});
  const auto shifted = single_plane(550e3, 53.0, 0.0, 4, orbit::TimePoint{}, 15.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(util::rad_to_deg(shifted[i].elements.mean_anomaly_rad) -
                    util::rad_to_deg(base[i].elements.mean_anomaly_rad),
                15.0, 1e-9);
  }
}

TEST(SinglePlane, RejectsNonPositiveCount) {
  EXPECT_THROW(single_plane(550e3, 53.0, 0.0, 0, orbit::TimePoint{}), std::invalid_argument);
}

TEST(Satellite, DefaultsUnowned) {
  Satellite sat;
  EXPECT_EQ(sat.owner_party, Satellite::kUnowned);
}

}  // namespace
}  // namespace mpleo::constellation
