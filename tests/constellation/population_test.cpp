// PopulationSampler: the mega-workload terminal sampler must be
// deterministic (same seed, same sites — the bench's bit-identity depends on
// it), stay inside the configured latitude belt, and actually concentrate
// mass around the paper's metro areas instead of sampling a uniform sphere.
#include "constellation/population.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "coverage/cities.hpp"
#include "orbit/geodesy.hpp"
#include "util/units.hpp"

namespace mpleo::constellation {
namespace {

double angular_distance_rad(const orbit::Geodetic& a, const orbit::Geodetic& b) {
  const double s = std::sin(a.latitude_rad) * std::sin(b.latitude_rad) +
                   std::cos(a.latitude_rad) * std::cos(b.latitude_rad) *
                       std::cos(a.longitude_rad - b.longitude_rad);
  return std::acos(std::clamp(s, -1.0, 1.0));
}

TEST(PopulationSampler, SameSeedSameSites) {
  const PopulationSampler sampler;
  const std::vector<orbit::Geodetic> a = sampler.sample(500, 42);
  const std::vector<orbit::Geodetic> b = sampler.sample(500, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].latitude_rad, b[i].latitude_rad);
    EXPECT_EQ(a[i].longitude_rad, b[i].longitude_rad);
    EXPECT_EQ(a[i].altitude_m, b[i].altitude_m);
  }
  // A different seed must not reproduce the same stream.
  const std::vector<orbit::Geodetic> c = sampler.sample(500, 43);
  bool any_different = false;
  for (std::size_t i = 0; i < c.size() && !any_different; ++i) {
    any_different = a[i].latitude_rad != c[i].latitude_rad ||
                    a[i].longitude_rad != c[i].longitude_rad;
  }
  EXPECT_TRUE(any_different);
}

TEST(PopulationSampler, SitesStayInsideTheLatitudeBelt) {
  PopulationSamplerConfig config;
  config.max_latitude_deg = 60.0;
  const PopulationSampler sampler(config);
  const double max_lat = util::deg_to_rad(config.max_latitude_deg) + 1e-9;
  for (const orbit::Geodetic& g : sampler.sample(2000, 7)) {
    EXPECT_LE(std::abs(g.latitude_rad), max_lat);
    EXPECT_GT(g.longitude_rad, -util::kPi - 1e-9);
    EXPECT_LE(g.longitude_rad, util::kPi + 1e-9);
    EXPECT_EQ(g.altitude_m, 0.0);
  }
}

TEST(PopulationSampler, ConcentratesMassAroundCities) {
  const PopulationSampler sampler;
  ASSERT_GT(sampler.cell_count(), 0u);

  // Cell mass right at a metro centre must dwarf an empty-ocean cell (the
  // south Pacific point below is far from every city in the paper's list).
  const orbit::Geodetic tokyo = orbit::Geodetic::from_degrees(35.7, 139.7);
  const orbit::Geodetic ocean = orbit::Geodetic::from_degrees(-45.0, -120.0);
  const double city_mass = sampler.cell_mass(tokyo.latitude_rad, tokyo.longitude_rad);
  const double ocean_mass = sampler.cell_mass(ocean.latitude_rad, ocean.longitude_rad);
  EXPECT_GT(city_mass, 0.0);
  EXPECT_GT(ocean_mass, 0.0);  // uniform floor: oceans get a trickle, not zero
  EXPECT_GT(city_mass, 10.0 * ocean_mass);

  // Sampled sites land near cities far more often than an area-uniform draw
  // would. The 21 splat disks cover a small fraction of the sphere, yet most
  // of the mass (1 - uniform_floor_fraction) lives inside them.
  const std::vector<orbit::Geodetic> sites = sampler.sample(5000, 11);
  const std::vector<cov::City>& cities = cov::paper_cities();
  const double radius = util::deg_to_rad(8.0);
  std::size_t near_city = 0;
  for (const orbit::Geodetic& g : sites) {
    for (const cov::City& city : cities) {
      if (angular_distance_rad(g, city.location) <= radius) {
        ++near_city;
        break;
      }
    }
  }
  EXPECT_GT(near_city, sites.size() / 2);
}

TEST(PopulationSampler, StreamApiMatchesBulkApi) {
  const PopulationSampler sampler;
  const std::vector<orbit::Geodetic> bulk = sampler.sample(64, 99);
  util::Xoshiro256PlusPlus rng(99);
  for (const orbit::Geodetic& expected : bulk) {
    const orbit::Geodetic got = sampler.sample(rng);
    EXPECT_EQ(got.latitude_rad, expected.latitude_rad);
    EXPECT_EQ(got.longitude_rad, expected.longitude_rad);
  }
}

TEST(PopulationSampler, RejectsOutOfRangeConfig) {
  PopulationSamplerConfig bad_band;
  bad_band.band_height_deg = 0.0;
  EXPECT_THROW(PopulationSampler{bad_band}, std::invalid_argument);

  PopulationSamplerConfig bad_lat;
  bad_lat.max_latitude_deg = 95.0;
  EXPECT_THROW(PopulationSampler{bad_lat}, std::invalid_argument);

  PopulationSamplerConfig bad_floor;
  bad_floor.uniform_floor_fraction = 1.5;
  EXPECT_THROW(PopulationSampler{bad_floor}, std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::constellation
