#include "constellation/designer.hpp"

#include <gtest/gtest.h>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::constellation {
namespace {

orbit::ClassicalElements reference() {
  return orbit::ClassicalElements::circular(546e3, 53.0, 0.0, 0.0);
}

TEST(Designer, PhaseOffsetCandidates) {
  const auto slots = phase_offset_candidates(reference(), {1.0, 15.0, 29.0});
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_NEAR(util::rad_to_deg(slots[0].elements.mean_anomaly_rad), 1.0, 1e-9);
  EXPECT_NEAR(util::rad_to_deg(slots[1].elements.mean_anomaly_rad), 15.0, 1e-9);
  EXPECT_NEAR(util::rad_to_deg(slots[2].elements.mean_anomaly_rad), 29.0, 1e-9);
  // Everything else unchanged.
  for (const CandidateSlot& s : slots) {
    EXPECT_EQ(s.elements.semi_major_axis_m, reference().semi_major_axis_m);
    EXPECT_EQ(s.elements.inclination_rad, reference().inclination_rad);
    EXPECT_EQ(s.elements.raan_rad, reference().raan_rad);
  }
}

TEST(Designer, PhaseOffsetWrapsNegative) {
  const auto slots = phase_offset_candidates(reference(), {-10.0});
  EXPECT_NEAR(util::rad_to_deg(slots[0].elements.mean_anomaly_rad), 350.0, 1e-9);
}

TEST(Designer, FactorCandidatesCategories) {
  const auto slots = factor_candidates(reference(), 43.0, 25e3, 45.0);
  ASSERT_EQ(slots.size(), 3u);

  // Category 1: inclination change only.
  EXPECT_NEAR(util::rad_to_deg(slots[0].elements.inclination_rad), 43.0, 1e-9);
  EXPECT_EQ(slots[0].elements.semi_major_axis_m, reference().semi_major_axis_m);
  EXPECT_EQ(slots[0].elements.mean_anomaly_rad, reference().mean_anomaly_rad);

  // Category 2: altitude change only.
  EXPECT_NEAR(slots[1].elements.semi_major_axis_m,
              reference().semi_major_axis_m + 25e3, 1e-6);
  EXPECT_EQ(slots[1].elements.inclination_rad, reference().inclination_rad);

  // Category 3: phase change only.
  EXPECT_NEAR(util::rad_to_deg(slots[2].elements.mean_anomaly_rad), 45.0, 1e-9);
  EXPECT_EQ(slots[2].elements.inclination_rad, reference().inclination_rad);
  EXPECT_EQ(slots[2].elements.semi_major_axis_m, reference().semi_major_axis_m);
}

TEST(Designer, LabelsAreDescriptive) {
  const auto slots = factor_candidates(reference(), 43.0, 25e3, 45.0);
  EXPECT_NE(slots[0].label.find("inclination"), std::string::npos);
  EXPECT_NE(slots[1].label.find("altitude"), std::string::npos);
  EXPECT_NE(slots[2].label.find("phase"), std::string::npos);
}

TEST(Designer, CoarseGridDimensions) {
  const SlotGrid grid = SlotGrid::coarse_leo();
  EXPECT_EQ(grid.raan_values_deg.size(), 12u);
  EXPECT_EQ(grid.phase_values_deg.size(), 12u);
  EXPECT_EQ(grid.inclination_values_deg.size(), 4u);
  EXPECT_EQ(grid.altitude_values_m.size(), 3u);
  const auto slots = enumerate_slots(grid);
  EXPECT_EQ(slots.size(), 12u * 12u * 4u * 3u);
}

TEST(Designer, EnumerateEmptyGridIsEmpty) {
  EXPECT_TRUE(enumerate_slots(SlotGrid{}).empty());
}

TEST(Designer, EnumerateAppliesAllValues) {
  SlotGrid grid;
  grid.raan_values_deg = {10.0};
  grid.phase_values_deg = {20.0};
  grid.inclination_values_deg = {53.0};
  grid.altitude_values_m = {550e3};
  const auto slots = enumerate_slots(grid);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_NEAR(util::rad_to_deg(slots[0].elements.raan_rad), 10.0, 1e-9);
  EXPECT_NEAR(util::rad_to_deg(slots[0].elements.mean_anomaly_rad), 20.0, 1e-9);
  EXPECT_NEAR(util::rad_to_deg(slots[0].elements.inclination_rad), 53.0, 1e-9);
}

}  // namespace
}  // namespace mpleo::constellation
