#include "constellation/sampler.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "constellation/starlink.hpp"

namespace mpleo::constellation {
namespace {

std::vector<Satellite> small_catalog() {
  WalkerShell shell;
  shell.label = "S";
  shell.plane_count = 10;
  shell.sats_per_plane = 10;
  shell.phasing_factor = 1;
  return shell.build(orbit::TimePoint{});
}

TEST(Sampler, IndicesDistinctAndInRange) {
  util::Xoshiro256PlusPlus rng(5);
  const auto indices = sample_indices(100, 30, rng);
  EXPECT_EQ(indices.size(), 30u);
  std::set<std::size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : indices) EXPECT_LT(i, 100u);
}

TEST(Sampler, CountExceedingCatalogThrows) {
  util::Xoshiro256PlusPlus rng(5);
  EXPECT_THROW(sample_indices(10, 11, rng), std::invalid_argument);
}

TEST(Sampler, FullCatalogIsPermutation) {
  util::Xoshiro256PlusPlus rng(5);
  const auto indices = sample_indices(50, 50, rng);
  std::set<std::size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Sampler, GatherPreservesOrderAndContent) {
  const auto catalog = small_catalog();
  const std::vector<std::size_t> indices{5, 0, 99};
  const auto picked = gather(catalog, indices);
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0].id, catalog[5].id);
  EXPECT_EQ(picked[1].id, catalog[0].id);
  EXPECT_EQ(picked[2].id, catalog[99].id);
}

TEST(Sampler, SampleSatellitesMatchesIndices) {
  const auto catalog = small_catalog();
  util::Xoshiro256PlusPlus rng_a(9);
  util::Xoshiro256PlusPlus rng_b(9);
  const auto indices = sample_indices(catalog.size(), 20, rng_a);
  const auto sats = sample_satellites(catalog, 20, rng_b);
  ASSERT_EQ(sats.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(sats[i].id, catalog[indices[i]].id);
  }
}

TEST(Sampler, DifferentSeedsProduceDifferentSamples) {
  util::Xoshiro256PlusPlus rng_a(1);
  util::Xoshiro256PlusPlus rng_b(2);
  const auto a = sample_indices(1000, 100, rng_a);
  const auto b = sample_indices(1000, 100, rng_b);
  EXPECT_NE(a, b);
}

TEST(Sampler, ApproximatelyUniformOverCatalog) {
  // Each index should be picked with probability k/n.
  util::Xoshiro256PlusPlus rng(13);
  constexpr std::size_t kN = 50;
  constexpr std::size_t kK = 10;
  constexpr int kTrials = 5000;
  std::vector<int> hits(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (std::size_t idx : sample_indices(kN, kK, rng)) ++hits[idx];
  }
  const double expected = kTrials * static_cast<double>(kK) / kN;
  for (int h : hits) EXPECT_NEAR(h, expected, expected * 0.15);
}

}  // namespace
}  // namespace mpleo::constellation
