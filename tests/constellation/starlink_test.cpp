#include "constellation/starlink.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/units.hpp"

namespace mpleo::constellation {
namespace {

TEST(Starlink, Gen1ShellSizes) {
  const auto shells = starlink_shells(/*include_gen2=*/false);
  ASSERT_EQ(shells.size(), 5u);
  int total = 0;
  for (const WalkerShell& s : shells) total += s.total_count();
  // FCC Gen-1 filing: 1584 + 1584 + 720 + 348 + 172 = 4408.
  EXPECT_EQ(total, 4408);
}

TEST(Starlink, CatalogSizeWithGen2) {
  const auto catalog = build_starlink_catalog(orbit::TimePoint{});
  // 4408 + 28*60 = 6088 — "nearly 6000 satellites" as the paper says.
  EXPECT_EQ(catalog.size(), 6088u);
}

TEST(Starlink, IdsAreContiguousAndUnique) {
  const auto catalog = build_starlink_catalog(orbit::TimePoint{});
  std::set<SatelliteId> ids;
  for (const Satellite& s : catalog) ids.insert(s.id);
  EXPECT_EQ(ids.size(), catalog.size());
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), catalog.size() - 1);
}

TEST(Starlink, InclinationMixMatchesFiling) {
  const auto catalog = build_starlink_catalog(orbit::TimePoint{});
  int incl53 = 0, incl70 = 0, sso = 0;
  for (const Satellite& s : catalog) {
    const double incl = util::rad_to_deg(s.elements.inclination_rad);
    if (incl < 55.0) ++incl53;
    else if (incl < 80.0) ++incl70;
    else ++sso;
  }
  EXPECT_EQ(incl53, 1584 + 1584 + 1680);  // 53.0 + 53.2 + Gen2 53.0
  EXPECT_EQ(incl70, 720);
  EXPECT_EQ(sso, 348 + 172);
}

TEST(Starlink, AltitudesWithinLeoBand) {
  for (const Satellite& s : build_starlink_catalog(orbit::TimePoint{})) {
    const double alt = s.elements.semi_major_axis_m - util::kEarthMeanRadiusM;
    EXPECT_GE(alt, 500e3);
    EXPECT_LE(alt, 600e3);
  }
}

TEST(Starlink, JitterIsDeterministicPerSeed) {
  const auto a = build_starlink_catalog(orbit::TimePoint{});
  const auto b = build_starlink_catalog(orbit::TimePoint{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].elements.raan_rad, b[i].elements.raan_rad);
    EXPECT_EQ(a[i].elements.mean_anomaly_rad, b[i].elements.mean_anomaly_rad);
  }
}

TEST(Starlink, JitterChangesWithSeed) {
  StarlinkCatalogOptions opts;
  opts.jitter_seed = 111;
  const auto a = build_starlink_catalog(orbit::TimePoint{}, opts);
  opts.jitter_seed = 222;
  const auto b = build_starlink_catalog(orbit::TimePoint{}, opts);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].elements.raan_rad != b[i].elements.raan_rad) ++differing;
  }
  EXPECT_GT(differing, static_cast<int>(a.size() / 2));
}

TEST(Starlink, ZeroJitterGivesExactGrid) {
  StarlinkCatalogOptions opts;
  opts.jitter_deg = 0.0;
  opts.include_gen2 = false;
  const auto catalog = build_starlink_catalog(orbit::TimePoint{}, opts);
  // First shell, first plane, first two satellites are 360/22 deg apart.
  const double gap = util::rad_to_deg(catalog[1].elements.mean_anomaly_rad) -
                     util::rad_to_deg(catalog[0].elements.mean_anomaly_rad);
  EXPECT_NEAR(gap, 360.0 / 22.0, 1e-9);
}

TEST(Starlink, Gen2ScaleCatalogMatchesShellTable) {
  const auto shells = starlink_gen2_shells();
  ASSERT_EQ(shells.size(), 7u);
  int total = 0;
  for (const WalkerShell& s : shells) total += s.total_count();
  // 3 x (48*110) + 30*120 + 3 x (28*120) = 15840 + 3600 + 10080 = 29520.
  EXPECT_EQ(total, 29520);

  const auto catalog = build_starlink_gen2_catalog(orbit::TimePoint{});
  EXPECT_EQ(catalog.size(), 29520u);

  // The catalog is shell-contiguous: shard detection recovers exactly the
  // seven shells, in order, covering every satellite — the invariant the
  // scheduler's shard-outer candidate walk (globally ascending satellite
  // index) rests on.
  const auto shards = shell_partition(catalog);
  ASSERT_EQ(shards.size(), shells.size());
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].begin, cursor);
    EXPECT_EQ(shards[i].size(), static_cast<std::size_t>(shells[i].total_count()));
    EXPECT_NEAR(util::rad_to_deg(shards[i].inclination_rad),
                shells[i].inclination_deg, 0.01);
    cursor = shards[i].end;
  }
  EXPECT_EQ(cursor, catalog.size());
}

TEST(Starlink, Gen2CatalogIdsAndEpoch) {
  const auto epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const auto catalog = build_starlink_gen2_catalog(epoch);
  std::set<SatelliteId> ids;
  for (const Satellite& s : catalog) {
    ids.insert(s.id);
    EXPECT_EQ(s.epoch.julian_date(), epoch.julian_date());
  }
  EXPECT_EQ(ids.size(), catalog.size());
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), catalog.size() - 1);
}

TEST(Starlink, EpochStampedOnAllSatellites) {
  const auto epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  for (const Satellite& s : build_starlink_catalog(epoch)) {
    EXPECT_EQ(s.epoch.julian_date(), epoch.julian_date());
  }
}

}  // namespace
}  // namespace mpleo::constellation
