#include "coverage/visibility.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace mpleo::cov {
namespace {

TEST(Footprint, HalfAngleMatchesHandComputation) {
  // 550 km, 25 deg mask: lambda = acos(Re/(Re+h) cos25) - 25deg ~ 8.45 deg.
  const double lambda = footprint_half_angle_rad(550e3, 25.0);
  EXPECT_NEAR(util::rad_to_deg(lambda), 8.45, 0.1);
}

TEST(Footprint, ZeroMaskIsHorizonLimit) {
  // lambda = acos(Re/(Re+h)) at the horizon.
  const double lambda = footprint_half_angle_rad(550e3, 0.0);
  const double expected =
      std::acos(util::kEarthMeanRadiusM / (util::kEarthMeanRadiusM + 550e3));
  EXPECT_NEAR(lambda, expected, 1e-12);
}

TEST(Footprint, HigherMaskShrinksFootprint) {
  EXPECT_GT(footprint_half_angle_rad(550e3, 15.0), footprint_half_angle_rad(550e3, 25.0));
  EXPECT_GT(footprint_half_angle_rad(550e3, 25.0), footprint_half_angle_rad(550e3, 40.0));
}

TEST(Footprint, HigherAltitudeGrowsFootprint) {
  EXPECT_GT(footprint_area_fraction(1200e3, 25.0), footprint_area_fraction(550e3, 25.0));
}

TEST(Footprint, AreaFractionAnchorsPaperNumbers) {
  // ~0.54% of Earth per satellite at Starlink geometry: the arithmetic
  // behind "idle 99% of the time over a single city".
  EXPECT_NEAR(footprint_area_fraction(550e3, 25.0), 0.0054, 0.0005);
}

TEST(FindPasses, OverheadPlaneProducesPasses) {
  // Equatorial site + equatorial orbit: the satellite passes overhead every
  // orbit but Earth rotation shifts the longitude each revolution; over a
  // day at least some passes occur.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 30.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);
  sat.epoch = grid.start;
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(0.0, 0.0));
  const auto passes = find_passes(sat, site, grid, 25.0);
  ASSERT_FALSE(passes.empty());
  for (const Pass& p : passes) {
    EXPECT_GT(p.duration_s(), 0.0);
    EXPECT_LT(p.duration_s(), 15.0 * 60.0);  // LEO passes are minutes long
    EXPECT_GE(p.max_elevation_rad, util::deg_to_rad(25.0));
    EXPECT_LE(p.max_elevation_rad, util::kPi / 2.0 + 1e-9);
  }
}

TEST(FindPasses, HighLatitudeSiteNeverSeesEquatorialOrbit) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 60.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);
  sat.epoch = grid.start;
  const orbit::TopocentricFrame oslo(orbit::Geodetic::from_degrees(59.9, 10.7));
  EXPECT_TRUE(find_passes(sat, oslo, grid, 25.0).empty());
}

TEST(FindPasses, PassesAreOrderedAndDisjoint) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 2.0 * 86400.0, 30.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 120.0, 40.0);
  sat.epoch = grid.start;
  const orbit::TopocentricFrame taipei_frame(
      orbit::Geodetic::from_degrees(25.033, 121.565));
  const auto passes = find_passes(sat, taipei_frame, grid, 25.0);
  for (std::size_t i = 1; i < passes.size(); ++i) {
    EXPECT_GE(passes[i].start_offset_s, passes[i - 1].end_offset_s);
  }
}

TEST(FindPasses, LowerMaskGivesLongerOrEqualCoverage) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 30.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 30.0, 10.0);
  sat.epoch = grid.start;
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  auto total = [&](double mask) {
    double sum = 0.0;
    for (const Pass& p : find_passes(sat, site, grid, mask)) sum += p.duration_s();
    return sum;
  };
  EXPECT_GE(total(10.0), total(25.0));
  EXPECT_GE(total(25.0), total(40.0));
}

}  // namespace
}  // namespace mpleo::cov
