#include "coverage/doppler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace mpleo::cov {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

constellation::Satellite overhead_sat() {
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 121.0, 25.0);
  sat.epoch = kEpoch;
  return sat;
}

TEST(Doppler, MaxBoundIsOrbitalVelocityScaled) {
  // 550 km: v ~ 7.59 km/s -> at 11.7 GHz, ~296 kHz.
  const double bound = max_doppler_bound_hz(550e3, 11.7e9);
  EXPECT_NEAR(bound, 296e3, 5e3);
}

TEST(Doppler, ProfileWithinBoundAndSignFlips) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 10.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const double carrier = 11.7e9;
  const auto profile = doppler_profile(overhead_sat(), site, grid, 10.0, carrier);
  ASSERT_GT(profile.size(), 10u);

  const double bound = max_doppler_bound_hz(550e3, carrier);
  bool saw_positive = false, saw_negative = false;
  for (const DopplerSample& s : profile) {
    EXPECT_LE(std::fabs(s.doppler_shift_hz), bound * 1.05);
    if (s.doppler_shift_hz > 0.0) saw_positive = true;
    if (s.doppler_shift_hz < 0.0) saw_negative = true;
    EXPECT_GE(s.elevation_rad, util::deg_to_rad(10.0) - 1e-9);
    EXPECT_GT(s.range_m, 500e3);
  }
  // An overhead pass approaches (positive shift) then recedes (negative).
  EXPECT_TRUE(saw_positive);
  EXPECT_TRUE(saw_negative);
}

TEST(Doppler, ZeroCrossingNearClosestApproach) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 5.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const auto profile = doppler_profile(overhead_sat(), site, grid, 10.0, 11.7e9);
  ASSERT_GT(profile.size(), 10u);

  // Find the minimum-range sample of the first contiguous pass.
  std::size_t pass_end = 1;
  while (pass_end < profile.size() &&
         profile[pass_end].offset_seconds - profile[pass_end - 1].offset_seconds < 10.0) {
    ++pass_end;
  }
  std::size_t min_index = 0;
  for (std::size_t i = 1; i < pass_end; ++i) {
    if (profile[i].range_m < profile[min_index].range_m) min_index = i;
  }
  // Range-rate is near zero at closest approach (within one 5 s step of
  // slewing, the rate magnitude stays small vs the 7.6 km/s orbital speed).
  EXPECT_LT(std::fabs(profile[min_index].range_rate_m_per_s), 700.0);
}

TEST(Doppler, RangeRateConsistentWithFiniteDifference) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 2.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const auto profile = doppler_profile(overhead_sat(), site, grid, 15.0, 11.7e9);
  ASSERT_GT(profile.size(), 5u);
  for (std::size_t i = 1; i + 1 < profile.size(); ++i) {
    if (profile[i + 1].offset_seconds - profile[i - 1].offset_seconds > 4.5) continue;
    const double fd = (profile[i + 1].range_m - profile[i - 1].range_m) / 4.0;
    EXPECT_NEAR(profile[i].range_rate_m_per_s, fd, 30.0);
  }
}

TEST(Doppler, EmptyWhenNeverVisible) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 3600.0, 10.0);
  const orbit::TopocentricFrame oslo(orbit::Geodetic::from_degrees(59.9, 10.7));
  constellation::Satellite equatorial;
  equatorial.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);
  equatorial.epoch = kEpoch;
  EXPECT_TRUE(doppler_profile(equatorial, oslo, grid, 25.0, 11.7e9).empty());
}

TEST(Doppler, TableOverloadMatchesSatelliteOverload) {
  // The satellite form builds its table through the same shared kernel, so a
  // caller-precomputed table reproduces the profile sample for sample.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 10.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const constellation::Satellite sat = overhead_sat();
  const orbit::KeplerianPropagator prop(sat.elements, sat.epoch);
  const orbit::EphemerisTable table = orbit::EphemerisTable::compute(prop, grid);

  const auto from_table = doppler_profile(sat, table, site, grid, 10.0, 11.7e9);
  const auto from_satellite = doppler_profile(sat, site, grid, 10.0, 11.7e9);
  ASSERT_EQ(from_table.size(), from_satellite.size());
  for (std::size_t i = 0; i < from_table.size(); ++i) {
    EXPECT_EQ(from_table[i].offset_seconds, from_satellite[i].offset_seconds);
    EXPECT_EQ(from_table[i].range_m, from_satellite[i].range_m);
    EXPECT_EQ(from_table[i].doppler_shift_hz, from_satellite[i].doppler_shift_hz);
  }
}

TEST(Doppler, HigherCarrierScalesShift) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 10.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const auto ku = doppler_profile(overhead_sat(), site, grid, 10.0, 11.7e9);
  const auto ka = doppler_profile(overhead_sat(), site, grid, 10.0, 23.4e9);
  ASSERT_EQ(ku.size(), ka.size());
  for (std::size_t i = 0; i < ku.size(); ++i) {
    EXPECT_NEAR(ka[i].doppler_shift_hz, 2.0 * ku[i].doppler_shift_hz,
                std::fabs(ku[i].doppler_shift_hz) * 1e-9 + 1e-6);
  }
}

}  // namespace
}  // namespace mpleo::cov
