// Property tests for the mega-scale footprint pruning chain: the spatial
// index, the family cone, and the latitude-band reachability test may only
// ever SKIP (satellite, site, step) work — any pruned combination must be
// provably invisible, so masks built through the pruned chain stay
// bit-identical to the exhaustive pair scan.
#include "coverage/footprint_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "coverage/step_mask.hpp"
#include "orbit/elements.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/propagator.hpp"
#include "orbit/time.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "util/vec3.hpp"

namespace mpleo::cov {
namespace {

constexpr double kMaskDeg = 25.0;

orbit::TimeGrid test_grid() {
  // Six hours at 60 s: enough revolutions for every fleet member to sweep
  // its full latitude range while keeping the exhaustive reference cheap.
  return orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 6.0 * 3600.0, 60.0);
}

// Random sites across the inhabited latitudes, plus pinned polar edge cases
// (the latitude-band math is most fragile at the caps).
std::vector<orbit::TopocentricFrame> make_sites(std::uint64_t seed,
                                                std::size_t count) {
  util::Xoshiro256PlusPlus rng(seed);
  std::vector<orbit::TopocentricFrame> frames;
  frames.reserve(count + 4);
  for (std::size_t i = 0; i < count; ++i) {
    frames.emplace_back(orbit::Geodetic::from_degrees(rng.uniform(-80.0, 80.0),
                                                      rng.uniform(-180.0, 180.0)));
  }
  frames.emplace_back(orbit::Geodetic::from_degrees(89.5, 0.0));
  frames.emplace_back(orbit::Geodetic::from_degrees(-89.5, 123.0));
  frames.emplace_back(orbit::Geodetic::from_degrees(85.0, -179.9));
  frames.emplace_back(orbit::Geodetic::from_degrees(-85.0, 179.9));
  return frames;
}

// Randomised fleet spanning the cull's hard cases: circular LEO at mixed
// inclinations, eccentric orbits (r varies, so the family cone must bound
// with extremes), and a polar pass.
std::vector<orbit::EphemerisTable> make_tables(std::uint64_t seed,
                                               const orbit::TimeGrid& grid) {
  util::Xoshiro256PlusPlus rng(seed);
  std::vector<orbit::ClassicalElements> elements;
  for (int i = 0; i < 4; ++i) {
    elements.push_back(orbit::ClassicalElements::circular(
        rng.uniform(400e3, 1200e3), rng.uniform(0.0, 98.0),
        rng.uniform(0.0, 360.0), rng.uniform(0.0, 360.0)));
  }
  for (int i = 0; i < 2; ++i) {
    orbit::ClassicalElements el;
    el.semi_major_axis_m = rng.uniform(7100e3, 7600e3);
    el.eccentricity = rng.uniform(0.02, 0.06);  // perigee stays above ~400 km
    el.inclination_rad = util::deg_to_rad(rng.uniform(20.0, 97.0));
    el.raan_rad = rng.uniform(0.0, 2.0 * util::kPi);
    el.arg_perigee_rad = rng.uniform(0.0, 2.0 * util::kPi);
    el.mean_anomaly_rad = rng.uniform(0.0, 2.0 * util::kPi);
    elements.push_back(el);
  }
  elements.push_back(orbit::ClassicalElements::circular(
      550e3, 90.0, rng.uniform(0.0, 360.0), rng.uniform(0.0, 360.0)));

  std::vector<orbit::EphemerisTable> tables;
  tables.reserve(elements.size());
  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);
  for (const orbit::ClassicalElements& el : elements) {
    const orbit::KeplerianPropagator prop(el, grid.start);
    tables.push_back(orbit::EphemerisTable::compute(prop, grid, gmst));
  }
  return tables;
}

StepMask exhaustive_mask(const orbit::EphemerisTable& table,
                         const orbit::TopocentricFrame& frame, double sin_mask) {
  StepMask mask(table.size());
  for (std::size_t s = 0; s < table.size(); ++s) {
    if (frame.visible_above(table.position_ecef(s), sin_mask)) mask.set(s);
  }
  return mask;
}

class FootprintIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FootprintIndexProperty, PrunedMasksBitIdenticalToExhaustive) {
  const std::uint64_t seed = GetParam();
  const orbit::TimeGrid grid = test_grid();
  const std::vector<orbit::TopocentricFrame> frames = make_sites(seed, 60);
  const std::vector<orbit::EphemerisTable> tables = make_tables(seed, grid);
  const FootprintIndex index(frames);
  const double sin_mask = std::sin(util::deg_to_rad(kMaskDeg));

  std::vector<FootprintIndex::Range> ranges;
  for (const orbit::EphemerisTable& table : tables) {
    const FootprintCone cone =
        FootprintCone::make(table.min_radius_m(), table.max_radius_m(),
                            index.min_site_radius_m(), kMaskDeg);
    ASSERT_FALSE(cone.exhaustive);

    // The pruned chain, exactly as the scheduler's footprint-stream path
    // walks it: cap query -> cone dot test -> exact visible_above.
    std::vector<StepMask> pruned(frames.size(), StepMask(table.size()));
    for (std::size_t s = 0; s < table.size(); ++s) {
      const util::Vec3 pos = table.position_ecef(s);
      ranges.clear();
      index.query_cap(pos, cone.psi_rad, ranges);
      for (const FootprintIndex::Range& r : ranges) {
        for (std::uint32_t j = r.begin; j < r.end; ++j) {
          const double dot = index.unit_x()[j] * pos.x +
                             index.unit_y()[j] * pos.y +
                             index.unit_z()[j] * pos.z;
          if (dot < cone.dot_threshold) continue;
          const std::uint32_t site = index.site_ids()[j];
          if (frames[site].visible_above(pos, sin_mask)) pruned[site].set(s);
        }
      }
    }

    const double max_sin_lat = max_abs_sin_latitude(table);
    std::size_t total_visible = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const StepMask expected = exhaustive_mask(table, frames[i], sin_mask);
      EXPECT_EQ(pruned[i], expected) << "seed " << seed << " site " << i;
      total_visible += expected.count();

      // Latitude reachability is the coarser prune layer the coverage
      // engine uses: false must imply a provably empty mask.
      const util::Vec3& origin = frames[i].origin_ecef();
      const double r = origin.norm();
      const double site_sin_lat = r > 0.0 ? origin.z / r : 0.0;
      if (!latitude_reachable(max_sin_lat, cone.psi_rad, site_sin_lat)) {
        EXPECT_EQ(expected.count(), 0u) << "seed " << seed << " site " << i;
      }
    }
    // The fleet geometry must actually exercise visibility, or the
    // bit-identity assertion above is vacuous.
    EXPECT_GT(total_visible, 0u) << "seed " << seed;
  }
}

TEST_P(FootprintIndexProperty, QueryCapIsSupersetOfCapMembership) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256PlusPlus rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const std::vector<orbit::TopocentricFrame> frames = make_sites(seed, 80);
  const FootprintIndex index(frames);
  ASSERT_EQ(index.site_count(), frames.size());

  std::vector<FootprintIndex::Range> ranges;
  for (int trial = 0; trial < 50; ++trial) {
    // Random cap centre on the sphere (area-uniform) at LEO-ish radius.
    const double z = rng.uniform(-1.0, 1.0);
    const double lon = rng.uniform(0.0, 2.0 * util::kPi);
    const double rho = std::sqrt(std::max(0.0, 1.0 - z * z));
    const double radius = rng.uniform(6.8e6, 7.5e6);
    const util::Vec3 center{radius * rho * std::cos(lon),
                            radius * rho * std::sin(lon), radius * z};
    const double psi = rng.uniform(0.02, 1.2);

    ranges.clear();
    index.query_cap(center, psi, ranges);
    std::vector<bool> returned(frames.size(), false);
    std::uint32_t prev_end = 0;
    for (const FootprintIndex::Range& r : ranges) {
      ASSERT_LE(prev_end, r.begin);  // disjoint, ascending
      ASSERT_LT(r.begin, r.end);
      ASSERT_LE(r.end, index.site_count());
      prev_end = r.end;
      for (std::uint32_t j = r.begin; j < r.end; ++j) {
        returned[index.site_ids()[j]] = true;
      }
    }

    const double inv_norm = 1.0 / center.norm();
    const double cos_psi = std::cos(psi);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const util::Vec3& origin = frames[i].origin_ecef();
      const double r = origin.norm();
      if (!(r > 0.0)) continue;
      const double cos_angle = (origin.x * center.x + origin.y * center.y +
                                origin.z * center.z) *
                               inv_norm / r;
      // Strictly inside the cap (with margin) must be in the superset.
      if (cos_angle > cos_psi + 1e-9) {
        EXPECT_TRUE(returned[i]) << "seed " << seed << " trial " << trial
                                 << " site " << i;
      }
    }
  }
}

TEST_P(FootprintIndexProperty, LatitudeBandQueryCoversRequestedSites) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256PlusPlus rng(seed ^ 0xdeadbeefULL);
  const std::vector<orbit::TopocentricFrame> frames = make_sites(seed, 80);
  const FootprintIndex index(frames);

  std::vector<std::uint32_t> out;
  for (int trial = 0; trial < 20; ++trial) {
    double lo = rng.uniform(-1.0, 1.0);
    double hi = rng.uniform(-1.0, 1.0);
    if (lo > hi) std::swap(lo, hi);
    out.clear();
    index.query_latitude_band(lo, hi, out);
    std::vector<bool> returned(frames.size(), false);
    for (const std::uint32_t id : out) {
      ASSERT_LT(id, frames.size());
      returned[id] = true;
    }
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const util::Vec3& origin = frames[i].origin_ecef();
      const double r = origin.norm();
      const double sin_lat = r > 0.0 ? origin.z / r : 0.0;
      if (sin_lat >= lo + 1e-9 && sin_lat <= hi - 1e-9) {
        EXPECT_TRUE(returned[i]) << "seed " << seed << " site " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FootprintIndexProperty,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(FootprintCone, DegenerateGeometryFallsBackToExhaustive) {
  EXPECT_TRUE(FootprintCone::make(7e6, 7.5e6, 6.37e6, -1.0).exhaustive);
  EXPECT_TRUE(FootprintCone::make(7e6, 7.5e6, 6.37e6, 90.0).exhaustive);
  EXPECT_TRUE(FootprintCone::make(7e6, 7.5e6, 0.0, 25.0).exhaustive);
  EXPECT_TRUE(FootprintCone::make(0.0, 7.5e6, 6.37e6, 25.0).exhaustive);
  // Satellite family not safely above the sites.
  EXPECT_TRUE(FootprintCone::make(6.3e6, 6.37e6, 6.37e6, 25.0).exhaustive);
  // Healthy LEO geometry prunes.
  const FootprintCone cone = FootprintCone::make(6.92e6, 6.93e6, 6.37e6, 25.0);
  EXPECT_FALSE(cone.exhaustive);
  EXPECT_GT(cone.psi_rad, 0.0);
  EXPECT_LT(cone.psi_rad, util::kPi / 2.0);
}

TEST(FootprintCone, FamilyConeContainsMemberCones) {
  // Widening the radius family can only widen the cone.
  const FootprintCone tight = FootprintCone::make(6.92e6, 6.93e6, 6.37e6, 25.0);
  const FootprintCone wide = FootprintCone::make(6.80e6, 7.40e6, 6.35e6, 25.0);
  EXPECT_GE(wide.psi_rad, tight.psi_rad);
}

TEST(FootprintIndex, EmptyIndexYieldsNothing) {
  const FootprintIndex index{std::span<const orbit::TopocentricFrame>{}};
  EXPECT_EQ(index.site_count(), 0u);
  EXPECT_EQ(index.min_site_radius_m(), 0.0);
  std::vector<FootprintIndex::Range> ranges;
  index.query_cap({7e6, 0.0, 0.0}, 0.3, ranges);
  EXPECT_TRUE(ranges.empty());
  std::vector<std::uint32_t> ids;
  index.query_latitude_band(-1.0, 1.0, ids);
  EXPECT_TRUE(ids.empty());
}

}  // namespace
}  // namespace mpleo::cov
