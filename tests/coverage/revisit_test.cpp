#include "coverage/revisit.hpp"

#include <gtest/gtest.h>

namespace mpleo::cov {
namespace {

StepMask mask_from_pattern(const char* pattern) {
  const std::string s(pattern);
  StepMask m(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') m.set(i);
  }
  return m;
}

TEST(Revisit, EmptyMaskIsOneBigGap) {
  const RevisitStats stats = revisit_stats(StepMask(100), 60.0);
  EXPECT_EQ(stats.pass_count, 0u);
  EXPECT_EQ(stats.gap_count, 1u);
  EXPECT_DOUBLE_EQ(stats.max_gap_seconds, 6000.0);
  EXPECT_DOUBLE_EQ(stats.covered_fraction, 0.0);
}

TEST(Revisit, FullMaskHasNoGaps) {
  StepMask full(50);
  for (std::size_t i = 0; i < 50; ++i) full.set(i);
  const RevisitStats stats = revisit_stats(full, 60.0);
  EXPECT_EQ(stats.gap_count, 0u);
  EXPECT_EQ(stats.pass_count, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_pass_seconds, 3000.0);
  EXPECT_DOUBLE_EQ(stats.covered_fraction, 1.0);
}

TEST(Revisit, PatternStats) {
  // Gaps: 2 (lead), 3 (middle), 1 (tail). Passes: 2 and 2 steps.
  const StepMask m = mask_from_pattern("0011000110");
  const RevisitStats stats = revisit_stats(m, 10.0);
  EXPECT_EQ(stats.pass_count, 2u);
  EXPECT_EQ(stats.gap_count, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_pass_seconds, 20.0);
  EXPECT_DOUBLE_EQ(stats.mean_gap_seconds, 20.0);
  EXPECT_DOUBLE_EQ(stats.max_gap_seconds, 30.0);
  EXPECT_DOUBLE_EQ(stats.p50_gap_seconds, 20.0);
}

TEST(Revisit, GapLengthsInOrder) {
  const auto gaps = gap_lengths(mask_from_pattern("0101001"), 5.0);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0], 5.0);
  EXPECT_DOUBLE_EQ(gaps[1], 5.0);
  EXPECT_DOUBLE_EQ(gaps[2], 10.0);
}

TEST(Revisit, GapsPlusPassesCoverWindow) {
  const StepMask m = mask_from_pattern("0110011100010");
  const RevisitStats stats = revisit_stats(m, 7.0);
  const double window = 7.0 * static_cast<double>(m.step_count());
  const double pass_time = stats.mean_pass_seconds * static_cast<double>(stats.pass_count);
  const double gap_time = stats.mean_gap_seconds * static_cast<double>(stats.gap_count);
  EXPECT_NEAR(pass_time + gap_time, window, 1e-9);
}

TEST(Revisit, P95AtLeastP50) {
  const StepMask m = mask_from_pattern("10010000100000001");
  const RevisitStats stats = revisit_stats(m, 1.0);
  EXPECT_GE(stats.p95_gap_seconds, stats.p50_gap_seconds);
  EXPECT_GE(stats.max_gap_seconds, stats.p95_gap_seconds);
}

}  // namespace
}  // namespace mpleo::cov
