#include "coverage/latency.hpp"

#include <gtest/gtest.h>

#include "coverage/cities.hpp"
#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace mpleo::cov {
namespace {

TEST(Latency, OneWayDelayIsLightTime) {
  EXPECT_NEAR(one_way_delay_ms(299792458.0), 1000.0, 1e-9);
  EXPECT_NEAR(one_way_delay_ms(550e3), 1.83, 0.01);
}

TEST(Latency, GeoReferenceValue) {
  // 35786 km -> ~119.4 ms one way.
  EXPECT_NEAR(geo_zenith_one_way_delay_ms(), 119.4, 0.3);
}

TEST(Latency, LeoOrdersOfMagnitudeBelowGeo) {
  // The paper's §2 claim: LEO latency is orders of magnitude below GEO.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 2.0 * 86400.0, 60.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 120.0, 40.0);
  sat.epoch = grid.start;
  const orbit::TopocentricFrame taipei_frame(taipei().location);

  const LatencyStats stats = propagation_latency_stats(sat, taipei_frame, grid, 25.0);
  ASSERT_GT(stats.visible_steps, 0u);
  // At 25 deg mask the slant range is 550..~1150 km: 1.8-4 ms one way.
  EXPECT_GE(stats.min_one_way_ms, one_way_delay_ms(550e3) - 0.05);
  EXPECT_LE(stats.max_one_way_ms, 4.5);
  EXPECT_GT(geo_zenith_one_way_delay_ms() / stats.mean_one_way_ms, 25.0);
  // Bent-pipe RTT stays well under the GEO single hop.
  EXPECT_LT(stats.mean_bent_pipe_rtt_ms(), 20.0);
}

TEST(Latency, MinAtMostMeanAtMostMax) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 30.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 0.0);
  sat.epoch = grid.start;
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const LatencyStats stats = propagation_latency_stats(sat, site, grid, 25.0);
  if (stats.visible_steps > 0) {
    EXPECT_LE(stats.min_one_way_ms, stats.mean_one_way_ms);
    EXPECT_LE(stats.mean_one_way_ms, stats.max_one_way_ms);
  }
}

TEST(Latency, NoVisibilityYieldsZeroStats) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 3600.0, 60.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);  // equatorial
  sat.epoch = grid.start;
  const orbit::TopocentricFrame oslo(orbit::Geodetic::from_degrees(59.9, 10.7));
  const LatencyStats stats = propagation_latency_stats(sat, oslo, grid, 25.0);
  EXPECT_EQ(stats.visible_steps, 0u);
  EXPECT_EQ(stats.mean_one_way_ms, 0.0);
}

TEST(Latency, LowerMaskAllowsLongerRanges) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 30.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 0.0);
  sat.epoch = grid.start;
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const LatencyStats tight = propagation_latency_stats(sat, site, grid, 40.0);
  const LatencyStats loose = propagation_latency_stats(sat, site, grid, 10.0);
  ASSERT_GT(tight.visible_steps, 0u);
  EXPECT_GE(loose.visible_steps, tight.visible_steps);
  EXPECT_GE(loose.max_one_way_ms, tight.max_one_way_ms);
}

TEST(Latency, TableOverloadMatchesSatelliteOverload) {
  // The satellite form propagates through the shared ephemeris kernel and
  // delegates, so a caller-precomputed table yields identical statistics.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 60.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 120.0, 40.0);
  sat.epoch = grid.start;
  const orbit::TopocentricFrame taipei_frame(taipei().location);

  const orbit::KeplerianPropagator prop(sat.elements, sat.epoch);
  const orbit::EphemerisTable table = orbit::EphemerisTable::compute(prop, grid);
  const LatencyStats from_table =
      propagation_latency_stats(table, taipei_frame, grid, 25.0);
  const LatencyStats from_satellite =
      propagation_latency_stats(sat, taipei_frame, grid, 25.0);
  ASSERT_GT(from_table.visible_steps, 0u);
  EXPECT_EQ(from_table.visible_steps, from_satellite.visible_steps);
  EXPECT_EQ(from_table.min_one_way_ms, from_satellite.min_one_way_ms);
  EXPECT_EQ(from_table.mean_one_way_ms, from_satellite.mean_one_way_ms);
  EXPECT_EQ(from_table.max_one_way_ms, from_satellite.max_one_way_ms);
}

}  // namespace
}  // namespace mpleo::cov
