#include "coverage/cities.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/units.hpp"

namespace mpleo::cov {
namespace {

TEST(Cities, TwentyOneCities) {
  EXPECT_EQ(paper_cities().size(), 21u);
}

TEST(Cities, OnePerCountry) {
  std::set<std::string> countries;
  for (const City& c : paper_cities()) countries.insert(c.country);
  EXPECT_EQ(countries.size(), paper_cities().size());
}

TEST(Cities, MelbourneIncludedForAustralia) {
  bool found = false;
  for (const City& c : paper_cities()) {
    if (c.name == "Melbourne") {
      found = true;
      EXPECT_EQ(c.country, "Australia");
      EXPECT_LT(c.location.latitude_rad, 0.0);  // southern hemisphere
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cities, TokyoIsLargest) {
  const City& first = paper_cities().front();
  EXPECT_EQ(first.name, "Tokyo");
  for (const City& c : paper_cities()) EXPECT_LE(c.population, first.population);
}

TEST(Cities, CoordinatesWithinBounds) {
  for (const City& c : paper_cities()) {
    EXPECT_GE(c.location.latitude_rad, -util::kPi / 2.0);
    EXPECT_LE(c.location.latitude_rad, util::kPi / 2.0);
    EXPECT_GE(c.location.longitude_rad, -util::kPi);
    EXPECT_LE(c.location.longitude_rad, util::kPi);
    EXPECT_GT(c.population, 1e6);
  }
}

TEST(Cities, TaipeiLocation) {
  const City& t = taipei();
  EXPECT_EQ(t.country, "Taiwan");
  EXPECT_NEAR(util::rad_to_deg(t.location.latitude_rad), 25.03, 0.01);
  EXPECT_NEAR(util::rad_to_deg(t.location.longitude_rad), 121.57, 0.01);
}

TEST(Cities, PopulationWeightsNormalised) {
  const auto weights = population_weights(paper_cities());
  ASSERT_EQ(weights.size(), 21u);
  double sum = 0.0;
  for (double w : weights) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Weights preserve ordering by population.
  EXPECT_GT(weights[0], weights[20]);
}

TEST(Cities, PopulationWeightsEmptyInput) {
  EXPECT_TRUE(population_weights({}).empty());
}

TEST(Cities, MajorContinentsRepresented) {
  // Spot-check hemispheric spread: at least 4 southern-hemisphere sites and
  // at least 5 western-hemisphere sites.
  int south = 0, west = 0;
  for (const City& c : paper_cities()) {
    if (c.location.latitude_rad < 0.0) ++south;
    if (c.location.longitude_rad < 0.0) ++west;
  }
  EXPECT_GE(south, 4);
  EXPECT_GE(west, 5);
}

}  // namespace
}  // namespace mpleo::cov
