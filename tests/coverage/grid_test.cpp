#include "coverage/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "constellation/shell.hpp"
#include "coverage/engine.hpp"
#include "util/units.hpp"

namespace mpleo::cov {
namespace {

orbit::TimeGrid short_grid() {
  return orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 6.0 * 3600.0, 120.0);
}

TEST(EarthGrid, WeightsSumToOne) {
  const EarthGrid grid(10.0);
  double total = 0.0;
  for (const auto& cell : grid.cells()) total += cell.area_weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(grid.size(), 100u);
}

TEST(EarthGrid, PolarBandsHaveFewerCells) {
  const EarthGrid grid(10.0, 80.0);
  std::size_t equator_cells = 0, polar_cells = 0;
  for (const auto& cell : grid.cells()) {
    const double lat = util::rad_to_deg(cell.center.latitude_rad);
    if (std::abs(lat) < 5.1) ++equator_cells;
    if (lat > 70.0) ++polar_cells;
  }
  EXPECT_GT(equator_cells, polar_cells);
  EXPECT_GT(polar_cells, 0u);
}

TEST(EarthGrid, LatitudeCapRespected) {
  const EarthGrid grid(10.0, 60.0);
  for (const auto& cell : grid.cells()) {
    EXPECT_LE(std::abs(util::rad_to_deg(cell.center.latitude_rad)), 60.0);
  }
}

TEST(EarthGrid, RejectsInvalidParameters) {
  EXPECT_THROW(EarthGrid(0.0), std::invalid_argument);
  EXPECT_THROW(EarthGrid(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(EarthGrid(10.0, 91.0), std::invalid_argument);
}

TEST(CellCoverage, EmptyConstellationIsZero) {
  const CoverageEngine engine(short_grid(), 25.0);
  const EarthGrid grid(20.0);
  const auto fractions = cell_coverage(engine, grid, {});
  ASSERT_EQ(fractions.size(), grid.size());
  for (double f : fractions) EXPECT_EQ(f, 0.0);
  EXPECT_EQ(global_coverage_fraction(grid, fractions), 0.0);
}

TEST(CellCoverage, PolarConstellationCoversHighLatitudes) {
  const CoverageEngine engine(short_grid(), 25.0);
  const EarthGrid grid(20.0);
  const auto sats = constellation::single_plane(
      550e3, 90.0, 0.0, 12, orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"));
  const auto fractions = cell_coverage(engine, grid, sats);

  // High-latitude cells should on average see more than equatorial ones for
  // a single polar plane.
  double high = 0.0, low = 0.0;
  std::size_t high_n = 0, low_n = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double lat = std::abs(util::rad_to_deg(grid.cells()[i].center.latitude_rad));
    if (lat > 60.0) {
      high += fractions[i];
      ++high_n;
    } else if (lat < 30.0) {
      low += fractions[i];
      ++low_n;
    }
  }
  EXPECT_GT(high / static_cast<double>(high_n), low / static_cast<double>(low_n));
  const double global = global_coverage_fraction(grid, fractions);
  EXPECT_GT(global, 0.0);
  EXPECT_LT(global, 1.0);
}

TEST(WorstCells, ReturnsWorstFirst) {
  const std::vector<double> coverage{0.9, 0.1, 0.5, 0.0, 0.7};
  const auto worst = worst_cells(coverage, 3);
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0], 3u);
  EXPECT_EQ(worst[1], 1u);
  EXPECT_EQ(worst[2], 2u);
}

TEST(WorstCells, ClampsK) {
  const std::vector<double> coverage{0.5, 0.6};
  EXPECT_EQ(worst_cells(coverage, 10).size(), 2u);
  EXPECT_TRUE(worst_cells(coverage, 0).empty());
}

TEST(AsciiMap, RendersOneRowPerBand) {
  const EarthGrid grid(30.0, 60.0);  // 4 bands
  const std::vector<double> fractions(grid.size(), 0.95);
  const std::string map = ascii_coverage_map(grid, fractions);
  std::size_t rows = 0;
  for (char ch : map) {
    if (ch == '\n') ++rows;
  }
  EXPECT_EQ(rows, 4u);
  EXPECT_NE(map.find('#'), std::string::npos);
  EXPECT_EQ(map.find(' '), std::string::npos);  // everything covered
}

TEST(AsciiMap, GlyphThresholds) {
  const EarthGrid grid(90.0, 45.0);  // single band
  ASSERT_GE(grid.size(), 4u);
  std::vector<double> fr(grid.size(), 0.0);
  fr[0] = 0.95;
  fr[1] = 0.65;
  fr[2] = 0.35;
  fr[3] = 0.05;
  const std::string map = ascii_coverage_map(grid, fr);
  EXPECT_EQ(map[0], '#');
  EXPECT_EQ(map[1], '+');
  EXPECT_EQ(map[2], '-');
  EXPECT_EQ(map[3], '.');
}

TEST(CellCoverage, ArityMismatchThrows) {
  const EarthGrid grid(30.0);
  const std::vector<double> wrong(grid.size() + 1, 0.0);
  EXPECT_THROW((void)global_coverage_fraction(grid, wrong), std::invalid_argument);
  EXPECT_THROW((void)ascii_coverage_map(grid, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::cov
