#include "coverage/interval_set.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpleo::cov {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_length(), 0.0);
  EXPECT_FALSE(set.contains(0.0));
}

TEST(IntervalSet, InsertAndContains) {
  IntervalSet set;
  set.insert(1.0, 3.0);
  EXPECT_FALSE(set.contains(0.9));
  EXPECT_TRUE(set.contains(1.0));   // inclusive start
  EXPECT_TRUE(set.contains(2.0));
  EXPECT_FALSE(set.contains(3.0));  // exclusive end
  EXPECT_DOUBLE_EQ(set.total_length(), 2.0);
}

TEST(IntervalSet, InsertIgnoresEmptyAndInverted) {
  IntervalSet set;
  set.insert(5.0, 5.0);
  set.insert(7.0, 6.0);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, OverlappingInsertsMerge) {
  IntervalSet set;
  set.insert(1.0, 3.0);
  set.insert(2.0, 5.0);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 4.0);
}

TEST(IntervalSet, AdjacentIntervalsMerge) {
  IntervalSet set;
  set.insert(1.0, 2.0);
  set.insert(2.0, 3.0);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 2.0);
}

TEST(IntervalSet, DisjointInsertsStaySeparate) {
  IntervalSet set;
  set.insert(5.0, 6.0);
  set.insert(1.0, 2.0);
  set.insert(10.0, 12.0);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set.total_length(), 4.0);
  // Sorted invariant.
  EXPECT_LT(set.intervals()[0].start, set.intervals()[1].start);
  EXPECT_LT(set.intervals()[1].start, set.intervals()[2].start);
}

TEST(IntervalSet, InsertBridgingManyIntervals) {
  IntervalSet set;
  set.insert(0.0, 1.0);
  set.insert(2.0, 3.0);
  set.insert(4.0, 5.0);
  set.insert(0.5, 4.5);  // bridges all three
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 5.0);
}

TEST(IntervalSet, ConstructorNormalises) {
  IntervalSet set({{3.0, 4.0}, {1.0, 2.5}, {2.0, 3.5}, {9.0, 8.0}});
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 3.0);
}

TEST(IntervalSet, UnionWith) {
  IntervalSet a({{0.0, 2.0}, {5.0, 6.0}});
  IntervalSet b({{1.0, 3.0}, {7.0, 8.0}});
  const IntervalSet u = a.union_with(b);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_DOUBLE_EQ(u.total_length(), 5.0);
}

TEST(IntervalSet, IntersectWith) {
  IntervalSet a({{0.0, 2.0}, {4.0, 8.0}});
  IntervalSet b({{1.0, 5.0}, {7.0, 9.0}});
  const IntervalSet i = a.intersect_with(b);
  // [1,2), [4,5), [7,8).
  EXPECT_EQ(i.size(), 3u);
  EXPECT_DOUBLE_EQ(i.total_length(), 3.0);
}

TEST(IntervalSet, IntersectDisjointIsEmpty) {
  IntervalSet a({{0.0, 1.0}});
  IntervalSet b({{2.0, 3.0}});
  EXPECT_TRUE(a.intersect_with(b).empty());
}

TEST(IntervalSet, DifferenceWith) {
  IntervalSet a({{0.0, 10.0}});
  IntervalSet b({{2.0, 3.0}, {5.0, 7.0}});
  const IntervalSet d = a.difference_with(b);
  EXPECT_DOUBLE_EQ(d.total_length(), 7.0);
  EXPECT_TRUE(d.contains(0.0));
  EXPECT_FALSE(d.contains(2.5));
  EXPECT_TRUE(d.contains(4.0));
  EXPECT_FALSE(d.contains(6.0));
  EXPECT_TRUE(d.contains(9.0));
}

TEST(IntervalSet, ComplementWithin) {
  IntervalSet set({{2.0, 3.0}, {5.0, 6.0}});
  const IntervalSet gaps = set.complement_within(0.0, 8.0);
  EXPECT_EQ(gaps.size(), 3u);  // [0,2) [3,5) [6,8)
  EXPECT_DOUBLE_EQ(gaps.total_length(), 6.0);
}

TEST(IntervalSet, ComplementOfEmptyIsWindow) {
  IntervalSet set;
  const IntervalSet gaps = set.complement_within(1.0, 4.0);
  EXPECT_EQ(gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(gaps.total_length(), 3.0);
}

TEST(IntervalSet, ComplementOfFullCoverIsEmpty) {
  IntervalSet set({{0.0, 10.0}});
  EXPECT_TRUE(set.complement_within(2.0, 8.0).empty());
}

TEST(IntervalSet, MaxGapWithin) {
  IntervalSet set({{2.0, 3.0}, {7.0, 8.0}});
  EXPECT_DOUBLE_EQ(set.max_gap_within(0.0, 10.0), 4.0);  // [3,7)
  EXPECT_DOUBLE_EQ(IntervalSet({{0.0, 10.0}}).max_gap_within(0.0, 10.0), 0.0);
}

// Property tests: algebraic identities on randomly generated sets.
class IntervalAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static IntervalSet random_set(util::Xoshiro256PlusPlus& rng) {
    IntervalSet set;
    const int n = static_cast<int>(rng.uniform_index(12));
    for (int i = 0; i < n; ++i) {
      const double start = rng.uniform(0.0, 100.0);
      set.insert(start, start + rng.uniform(0.0, 15.0));
    }
    return set;
  }
};

TEST_P(IntervalAlgebraProperty, UnionLengthBounds) {
  util::Xoshiro256PlusPlus rng(GetParam());
  const IntervalSet a = random_set(rng);
  const IntervalSet b = random_set(rng);
  const IntervalSet u = a.union_with(b);
  EXPECT_GE(u.total_length() + 1e-9, std::max(a.total_length(), b.total_length()));
  EXPECT_LE(u.total_length(), a.total_length() + b.total_length() + 1e-9);
}

TEST_P(IntervalAlgebraProperty, InclusionExclusion) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0xABCDEF);
  const IntervalSet a = random_set(rng);
  const IntervalSet b = random_set(rng);
  const double lhs = a.union_with(b).total_length() + a.intersect_with(b).total_length();
  const double rhs = a.total_length() + b.total_length();
  EXPECT_NEAR(lhs, rhs, 1e-7);
}

TEST_P(IntervalAlgebraProperty, ComplementPartitionsWindow) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0x123456);
  const IntervalSet a = random_set(rng);
  const IntervalSet clipped = a.intersect_with(IntervalSet({{0.0, 120.0}}));
  const IntervalSet gaps = a.complement_within(0.0, 120.0);
  EXPECT_NEAR(clipped.total_length() + gaps.total_length(), 120.0, 1e-7);
  EXPECT_TRUE(clipped.intersect_with(gaps).empty());
}

TEST_P(IntervalAlgebraProperty, UnionIsIdempotentAndCommutative) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0x777);
  const IntervalSet a = random_set(rng);
  const IntervalSet b = random_set(rng);
  EXPECT_EQ(a.union_with(a), a);
  EXPECT_EQ(a.union_with(b), b.union_with(a));
  EXPECT_EQ(a.intersect_with(b), b.intersect_with(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalAlgebraProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

}  // namespace
}  // namespace mpleo::cov
