#include "coverage/report.hpp"

#include <gtest/gtest.h>

namespace mpleo::cov {
namespace {

CoverageStats sample_stats() {
  CoverageStats stats;
  stats.covered_fraction = 0.9432;
  stats.covered_seconds = 0.9432 * 7.0 * 86400.0;
  stats.uncovered_seconds = 7.0 * 86400.0 - stats.covered_seconds;
  stats.max_gap_seconds = 4320.0;  // 1h 12m
  stats.pass_count = 214;
  return stats;
}

TEST(Report, SummaryContainsKeyNumbers) {
  const std::string summary = summarize(sample_stats());
  EXPECT_NE(summary.find("94.32%"), std::string::npos);
  EXPECT_NE(summary.find("1h 12m"), std::string::npos);
  EXPECT_NE(summary.find("214 passes"), std::string::npos);
}

TEST(Report, SiteReportIsMultiLineWithName) {
  const std::string report = site_report("Taipei", sample_stats());
  EXPECT_EQ(report.rfind("Taipei:", 0), 0u);
  EXPECT_NE(report.find("covered"), std::string::npos);
  EXPECT_NE(report.find("max gap"), std::string::npos);
  EXPECT_NE(report.find("passes"), std::string::npos);
  // Four indented stat lines.
  std::size_t lines = 0;
  for (char ch : report) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
}

TEST(Report, ZeroCoverageRendersCleanly) {
  CoverageStats empty;
  empty.uncovered_seconds = 86400.0;
  empty.max_gap_seconds = 86400.0;
  const std::string summary = summarize(empty);
  EXPECT_NE(summary.find("0.00%"), std::string::npos);
  EXPECT_NE(summary.find("0 passes"), std::string::npos);
}

}  // namespace
}  // namespace mpleo::cov
