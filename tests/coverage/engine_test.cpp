#include "coverage/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "constellation/starlink.hpp"
#include "coverage/visibility.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mpleo::cov {
namespace {

orbit::TimeGrid day_grid(double step = 60.0) {
  return orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, step);
}

constellation::Satellite make_sat(double alt, double incl, double raan, double phase,
                                  const orbit::TimePoint& epoch) {
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(alt, incl, raan, phase);
  sat.epoch = epoch;
  return sat;
}

TEST(CoverageEngine, RejectsBadConfig) {
  EXPECT_THROW(CoverageEngine(day_grid(), -1.0), std::invalid_argument);
  EXPECT_THROW(CoverageEngine(day_grid(), 90.0), std::invalid_argument);
  orbit::TimeGrid empty;
  EXPECT_THROW(CoverageEngine(empty, 25.0), std::invalid_argument);
}

TEST(CoverageEngine, VisibilityMaskMatchesPassFinder) {
  const orbit::TimeGrid grid = day_grid(30.0);
  const CoverageEngine engine(grid, 25.0);
  const auto sat = make_sat(550e3, 53.0, 10.0, 20.0, grid.start);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));

  const StepMask mask = engine.visibility_mask(sat, site);
  const double mask_seconds = static_cast<double>(mask.count()) * grid.step_seconds;

  double pass_seconds = 0.0;
  for (const Pass& p : find_passes(sat, site, grid, 25.0)) pass_seconds += p.duration_s();
  EXPECT_NEAR(mask_seconds, pass_seconds, 1e-6);
}

TEST(CoverageEngine, MultiSiteSweepMatchesSingleSite) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const auto sat = make_sat(550e3, 53.0, 77.0, 120.0, grid.start);

  const std::vector<GroundSite> sites = sites_from_cities(paper_cities());
  const auto multi = engine.visibility_masks(sat, sites);
  ASSERT_EQ(multi.size(), sites.size());
  for (std::size_t j = 0; j < sites.size(); j += 5) {
    EXPECT_EQ(multi[j], engine.visibility_mask(sat, sites[j].frame));
  }
}

TEST(CoverageEngine, CoverageMaskIsUnionOfSingles) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));

  std::vector<constellation::Satellite> sats;
  for (double raan : {0.0, 60.0, 120.0}) {
    sats.push_back(make_sat(550e3, 53.0, raan, raan * 2.0, grid.start));
  }
  StepMask expected(grid.count);
  for (const auto& sat : sats) expected |= engine.visibility_mask(sat, site);
  EXPECT_EQ(engine.coverage_mask(sats, site), expected);
}

TEST(CoverageEngine, MoreSatellitesNeverReduceCoverage) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));

  std::vector<constellation::Satellite> sats;
  double previous = 0.0;
  for (int i = 0; i < 8; ++i) {
    sats.push_back(make_sat(550e3, 53.0, 45.0 * i, 30.0 * i, grid.start));
    const double covered = engine.stats(engine.coverage_mask(sats, site)).covered_fraction;
    EXPECT_GE(covered, previous);
    previous = covered;
  }
}

TEST(CoverageEngine, StatsConsistency) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const auto sat = make_sat(550e3, 53.0, 10.0, 20.0, grid.start);

  const CoverageStats stats = engine.stats(engine.visibility_mask(sat, site));
  EXPECT_NEAR(stats.covered_seconds + stats.uncovered_seconds, grid.duration_seconds(),
              1e-6);
  EXPECT_GE(stats.max_gap_seconds, 0.0);
  EXPECT_LE(stats.max_gap_seconds, grid.duration_seconds());
  if (stats.covered_fraction > 0.0) EXPECT_GE(stats.pass_count, 1u);
}

TEST(CoverageEngine, SingleLeoSatelliteIsMostlyIdle) {
  // The paper's §2 anchor: one satellite serving one city is ~99% idle.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 3.0 * 86400.0, 60.0);
  const CoverageEngine engine(grid, 25.0);
  const auto sat = make_sat(550e3, 53.0, 121.0, 25.0, grid.start);
  const std::vector<GroundSite> one_city{GroundSite::from_city(taipei())};
  const double idle = engine.idle_fraction(sat, one_city);
  EXPECT_GT(idle, 0.97);
  EXPECT_LE(idle, 1.0);
}

TEST(CoverageEngine, IdleDecreasesWithMoreCities) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const auto sat = make_sat(550e3, 53.0, 10.0, 200.0, grid.start);
  const auto& cities = paper_cities();

  const std::vector<GroundSite> few = sites_from_cities(std::span(cities).subspan(0, 3));
  const std::vector<GroundSite> many = sites_from_cities(cities);
  EXPECT_GE(engine.idle_fraction(sat, few), engine.idle_fraction(sat, many));
}

TEST(CoverageEngine, WeightedCoverageBetweenMinAndMax) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const std::vector<GroundSite> sites = sites_from_cities(paper_cities());

  std::vector<constellation::Satellite> sats;
  for (double raan : {0.0, 90.0, 180.0, 270.0}) {
    sats.push_back(make_sat(550e3, 53.0, raan, raan, grid.start));
  }
  const double weighted = engine.weighted_coverage_seconds(sats, sites);

  double min_cov = grid.duration_seconds(), max_cov = 0.0;
  for (const GroundSite& site : sites) {
    const double c =
        engine.stats(engine.coverage_mask(sats, site.frame)).covered_seconds;
    min_cov = std::min(min_cov, c);
    max_cov = std::max(max_cov, c);
  }
  EXPECT_GE(weighted, min_cov - 1e-6);
  EXPECT_LE(weighted, max_cov + 1e-6);
}

TEST(CoverageEngine, LowerMaskNeverReducesCoverage) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine tight(grid, 40.0);
  const CoverageEngine loose(grid, 15.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));
  const auto sat = make_sat(550e3, 53.0, 10.0, 20.0, grid.start);
  EXPECT_GE(loose.visibility_mask(sat, site).count(),
            tight.visibility_mask(sat, site).count());
}

TEST(VisibilityCache, MatchesDirectComputation) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const std::vector<GroundSite> sites = sites_from_cities(paper_cities());

  std::vector<constellation::Satellite> catalog;
  for (double raan : {0.0, 30.0, 60.0, 90.0}) {
    catalog.push_back(make_sat(550e3, 53.0, raan, raan * 3.0, grid.start));
  }
  VisibilityCache cache(engine, catalog, sites);
  EXPECT_EQ(cache.satellite_count(), 4u);
  EXPECT_EQ(cache.site_count(), sites.size());

  for (std::size_t s = 0; s < catalog.size(); ++s) {
    EXPECT_EQ(cache.mask(s, 0), engine.visibility_mask(catalog[s], sites[0].frame));
  }

  const std::vector<std::size_t> all{0, 1, 2, 3};
  const double via_cache =
      cache.weighted_coverage_fraction(all) * grid.duration_seconds();
  const double direct = engine.weighted_coverage_seconds(catalog, sites);
  EXPECT_NEAR(via_cache, direct, 1e-6);
}

TEST(VisibilityCache, UnionMaskMatchesManualUnion) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const std::vector<GroundSite> sites{GroundSite::from_city(taipei())};

  std::vector<constellation::Satellite> catalog;
  for (double phase : {0.0, 120.0, 240.0}) {
    catalog.push_back(make_sat(550e3, 53.0, 50.0, phase, grid.start));
  }
  VisibilityCache cache(engine, catalog, sites);
  const std::vector<std::size_t> subset{0, 2};
  StepMask manual = cache.mask(0, 0);
  manual |= cache.mask(2, 0);
  EXPECT_EQ(cache.union_mask(subset, 0), manual);
}

TEST(VisibilityCache, ParallelPrecomputeIsBitIdenticalToSerial) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const std::vector<GroundSite> sites = sites_from_cities(paper_cities());

  std::vector<constellation::Satellite> catalog;
  for (double raan : {0.0, 24.0, 48.0, 72.0, 96.0, 120.0}) {
    catalog.push_back(make_sat(550e3, 53.0, raan, raan * 2.0, grid.start));
  }

  VisibilityCache serial(engine, catalog, sites);
  serial.precompute_all();

  util::ThreadPool pool(4);
  VisibilityCache parallel(engine, catalog, sites);
  parallel.precompute_all(&pool);

  for (std::size_t s = 0; s < catalog.size(); ++s) {
    for (std::size_t j = 0; j < sites.size(); ++j) {
      ASSERT_EQ(serial.mask(s, j), parallel.mask(s, j)) << "sat " << s << " site " << j;
    }
  }
}

TEST(VisibilityCache, PrecomputeMatchesLazyFill) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const std::vector<GroundSite> sites = sites_from_cities(paper_cities());

  std::vector<constellation::Satellite> catalog;
  for (double phase : {0.0, 90.0, 180.0, 270.0}) {
    catalog.push_back(make_sat(560e3, 70.0, 15.0, phase, grid.start));
  }

  util::ThreadPool pool(3);
  VisibilityCache eager(engine, catalog, sites);
  eager.precompute_all(&pool);
  VisibilityCache lazy(engine, catalog, sites);

  for (std::size_t s = 0; s < catalog.size(); ++s) {
    EXPECT_EQ(eager.mask(s, 2), lazy.mask(s, 2));
  }
}

TEST(CoverageEngine, DefaultBackendFlowsIntoEveryConsumer) {
  const orbit::TimeGrid grid = day_grid(60.0);
  const auto sat = make_sat(550e3, 53.0, 10.0, 20.0, grid.start);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));

  const CoverageEngine j2(grid, 25.0);
  const CoverageEngine sgp4(grid, 25.0, orbit::PropagatorBackend::kSgp4);
  EXPECT_EQ(j2.default_backend(), orbit::PropagatorBackend::kJ2Analytic);
  EXPECT_EQ(sgp4.default_backend(), orbit::PropagatorBackend::kSgp4);

  // The no-backend ephemeris entry point follows the engine default and
  // matches the explicit-backend overload exactly.
  const orbit::EphemerisTable via_default = sgp4.ephemeris(sat);
  const orbit::EphemerisTable via_explicit =
      sgp4.ephemeris(sat, orbit::PropagatorBackend::kSgp4);
  ASSERT_EQ(via_default.size(), via_explicit.size());
  for (std::size_t k = 0; k < via_default.size(); ++k) {
    EXPECT_EQ(via_default.x()[k], via_explicit.x()[k]);
  }
  // The two backends genuinely propagate differently.
  double max_delta = 0.0;
  const orbit::EphemerisTable j2_table = j2.ephemeris(sat);
  for (std::size_t k = 0; k < via_default.size(); ++k) {
    max_delta =
        std::max(max_delta, (via_default.position_ecef(k) - j2_table.position_ecef(k)).norm());
  }
  EXPECT_GT(max_delta, 1.0);

  // A catalog-level fill reports the backend that actually ran.
  const std::vector<constellation::Satellite> sats{sat};
  EXPECT_EQ(sgp4.ephemerides(sats).backend(0), orbit::PropagatorBackend::kSgp4);
  EXPECT_EQ(j2.ephemerides(sats).backend(0), orbit::PropagatorBackend::kJ2Analytic);
}

TEST(CoverageEngine, FindPassesTableOverloadMatchesSatelliteOverload) {
  const orbit::TimeGrid grid = day_grid(30.0);
  const CoverageEngine engine(grid, 25.0);
  const auto sat = make_sat(550e3, 53.0, 10.0, 20.0, grid.start);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(25.0, 121.5));

  const auto direct = find_passes(sat, site, grid, 25.0);
  const auto via_table = find_passes(engine.ephemeris(sat), site, grid, 25.0);
  ASSERT_EQ(direct.size(), via_table.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].start_offset_s, via_table[i].start_offset_s) << i;
    EXPECT_EQ(direct[i].end_offset_s, via_table[i].end_offset_s) << i;
    EXPECT_NEAR(direct[i].max_elevation_rad, via_table[i].max_elevation_rad, 1e-9) << i;
  }
}

TEST(CoverageEngine, EmptySatelliteSetHasZeroCoverage) {
  const orbit::TimeGrid grid = day_grid();
  const CoverageEngine engine(grid, 25.0);
  const std::vector<GroundSite> sites = sites_from_cities(paper_cities());
  EXPECT_EQ(engine.weighted_coverage_seconds({}, sites), 0.0);
}

}  // namespace
}  // namespace mpleo::cov
