#include "coverage/contact_plan.hpp"

#include <gtest/gtest.h>

namespace mpleo::cov {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

struct ContactPlanFixture : public ::testing::Test {
  ContactPlanFixture()
      : grid(orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0)), engine(grid, 25.0) {
    sats = constellation::single_plane(550e3, 53.0, 100.0, 6, kEpoch);
    sites.push_back({"taipei", orbit::TopocentricFrame(taipei().location), 1.0});
    sites.push_back(
        {"seoul",
         orbit::TopocentricFrame(orbit::Geodetic::from_degrees(37.57, 126.98)), 1.0});
  }

  orbit::TimeGrid grid;
  CoverageEngine engine;
  std::vector<constellation::Satellite> sats;
  std::vector<GroundSite> sites;
};

TEST_F(ContactPlanFixture, ContactsSortedAndWellFormed) {
  const auto contacts = build_contact_plan(engine, sats, sites);
  ASSERT_FALSE(contacts.empty());
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    EXPECT_GT(contacts[i].duration_s(), 0.0);
    EXPECT_GE(contacts[i].start_offset_s, 0.0);
    EXPECT_LE(contacts[i].end_offset_s, grid.duration_seconds() + 1e-9);
    if (i > 0) EXPECT_GE(contacts[i].start_offset_s, contacts[i - 1].start_offset_s);
  }
}

TEST_F(ContactPlanFixture, MatchesEngineMaskDurations) {
  const auto contacts = build_contact_plan(engine, sats, sites);
  // Sum of taipei contacts equals the sum of per-satellite mask durations
  // (contacts are per (sat, site), overlaps are NOT merged).
  double expected = 0.0;
  for (const auto& sat : sats) {
    expected += static_cast<double>(
                    engine.visibility_mask(sat, sites[0].frame).count()) *
                grid.step_seconds;
  }
  EXPECT_NEAR(total_contact_seconds(contacts, "taipei"), expected, 1e-6);
}

TEST_F(ContactPlanFixture, CsvHasHeaderAndOneLinePerContact) {
  const auto contacts = build_contact_plan(engine, sats, sites);
  const std::string csv = contact_plan_csv(contacts);
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, contacts.size() + 1);  // header + rows
  EXPECT_EQ(csv.rfind("satellite,site,start_s,end_s,duration_s", 0), 0u);
}

TEST_F(ContactPlanFixture, UnknownSiteHasZeroSeconds) {
  const auto contacts = build_contact_plan(engine, sats, sites);
  EXPECT_EQ(total_contact_seconds(contacts, "nowhere"), 0.0);
}

TEST_F(ContactPlanFixture, EmptyConstellationEmptyPlan) {
  const auto contacts = build_contact_plan(engine, {}, sites);
  EXPECT_TRUE(contacts.empty());
  EXPECT_EQ(contact_plan_csv(contacts),
            "satellite,site,start_s,end_s,duration_s\n");
}

}  // namespace
}  // namespace mpleo::cov
