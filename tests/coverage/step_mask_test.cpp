#include "coverage/step_mask.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpleo::cov {
namespace {

TEST(StepMask, EmptyMask) {
  StepMask m(100);
  EXPECT_EQ(m.step_count(), 100u);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.fraction(), 0.0);
  EXPECT_EQ(m.longest_zero_run(), 100u);
}

TEST(StepMask, ZeroStepMask) {
  StepMask m;
  EXPECT_EQ(m.step_count(), 0u);
  EXPECT_EQ(m.fraction(), 0.0);
}

TEST(StepMask, SetTestReset) {
  StepMask m(130);  // spans three words
  m.set(0);
  m.set(63);
  m.set(64);
  m.set(129);
  EXPECT_TRUE(m.test(0));
  EXPECT_TRUE(m.test(63));
  EXPECT_TRUE(m.test(64));
  EXPECT_TRUE(m.test(129));
  EXPECT_FALSE(m.test(1));
  EXPECT_EQ(m.count(), 4u);
  m.reset(63);
  EXPECT_FALSE(m.test(63));
  EXPECT_EQ(m.count(), 3u);
}

TEST(StepMask, FractionAndCount) {
  StepMask m(10);
  for (std::size_t i = 0; i < 10; i += 2) m.set(i);
  EXPECT_EQ(m.count(), 5u);
  EXPECT_DOUBLE_EQ(m.fraction(), 0.5);
}

TEST(StepMask, OrAndSubtract) {
  StepMask a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(2);
  b.set(65);
  const StepMask u = a | b;
  EXPECT_EQ(u.count(), 3u);
  const StepMask i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(65));
  StepMask d = a;
  d.subtract(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
  EXPECT_FALSE(d.test(65));
}

TEST(StepMask, LongestZeroRun) {
  StepMask m(20);
  m.set(3);
  m.set(10);
  // Runs: [0,2]=3, [4,9]=6, [11,19]=9.
  EXPECT_EQ(m.longest_zero_run(), 9u);
  StepMask full(5);
  for (std::size_t i = 0; i < 5; ++i) full.set(i);
  EXPECT_EQ(full.longest_zero_run(), 0u);
}

TEST(StepMask, ToIntervals) {
  StepMask m(10);
  m.set(0);
  m.set(1);
  m.set(5);
  m.set(9);
  const IntervalSet set = m.to_intervals(60.0);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(set.intervals()[0].end, 120.0);
  EXPECT_DOUBLE_EQ(set.intervals()[1].start, 300.0);
  EXPECT_DOUBLE_EQ(set.intervals()[2].end, 600.0);  // trailing run closes at end
}

TEST(StepMask, ToIntervalsEmptyAndFull) {
  StepMask empty(8);
  EXPECT_TRUE(empty.to_intervals(1.0).empty());
  StepMask full(8);
  for (std::size_t i = 0; i < 8; ++i) full.set(i);
  const IntervalSet set = full.to_intervals(2.0);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 16.0);
}

TEST(StepMask, EqualityOperator) {
  StepMask a(12), b(12);
  a.set(7);
  EXPECT_NE(a, b);
  b.set(7);
  EXPECT_EQ(a, b);
}

class StepMaskProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static StepMask random_mask(util::Xoshiro256PlusPlus& rng, std::size_t steps) {
    StepMask m(steps);
    for (std::size_t i = 0; i < steps; ++i) {
      if (rng.uniform() < 0.3) m.set(i);
    }
    return m;
  }
};

TEST_P(StepMaskProperty, CountMatchesIntervalLength) {
  util::Xoshiro256PlusPlus rng(GetParam());
  const StepMask m = random_mask(rng, 500);
  const IntervalSet set = m.to_intervals(1.0);
  EXPECT_NEAR(set.total_length(), static_cast<double>(m.count()), 1e-9);
}

TEST_P(StepMaskProperty, DeMorganOnMasks) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0xFEED);
  const StepMask a = random_mask(rng, 300);
  const StepMask b = random_mask(rng, 300);
  // |a| + |b| == |a|b| + |a&b|.
  EXPECT_EQ(a.count() + b.count(), (a | b).count() + (a & b).count());
  // subtract == a & ~b: |a - b| == |a| - |a & b|.
  StepMask d = a;
  d.subtract(b);
  EXPECT_EQ(d.count(), a.count() - (a & b).count());
}

TEST_P(StepMaskProperty, OrNeverShrinksCoverage) {
  // The physical monotonicity the paper relies on: adding satellites never
  // reduces coverage.
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0xBEE);
  StepMask acc(400);
  for (int sat = 0; sat < 8; ++sat) {
    const double before = acc.fraction();
    acc |= random_mask(rng, 400);
    EXPECT_GE(acc.fraction(), before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepMaskProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace mpleo::cov
