// Property tests: coverage-engine invariants over randomized constellations
// — the physical monotonicity and consistency properties every figure bench
// assumes.
#include <gtest/gtest.h>

#include "coverage/engine.hpp"
#include "coverage/revisit.hpp"
#include "util/rng.hpp"

namespace mpleo::cov {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

orbit::TimeGrid short_grid() {
  return orbit::TimeGrid::over_duration(kEpoch, 12.0 * 3600.0, 180.0);
}

std::vector<constellation::Satellite> random_constellation(util::Xoshiro256PlusPlus& rng,
                                                           std::size_t count) {
  std::vector<constellation::Satellite> sats;
  for (std::size_t i = 0; i < count; ++i) {
    constellation::Satellite sat;
    sat.id = static_cast<constellation::SatelliteId>(i);
    sat.elements = orbit::ClassicalElements::circular(
        rng.uniform(500e3, 600e3), rng.uniform(0.0, 98.0), rng.uniform(0.0, 360.0),
        rng.uniform(0.0, 360.0));
    sat.epoch = kEpoch;
    sats.push_back(sat);
  }
  return sats;
}

class CoverageProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverageProperty, AddingSatellitesIsMonotone) {
  util::Xoshiro256PlusPlus rng(GetParam());
  const CoverageEngine engine(short_grid(), 25.0);
  const auto sites = sites_from_cities(paper_cities());
  auto sats = random_constellation(rng, 6);

  double previous = 0.0;
  for (std::size_t n = 1; n <= sats.size(); ++n) {
    const double covered = engine.weighted_coverage_seconds(
        std::span(sats.data(), n), sites);
    EXPECT_GE(covered, previous - 1e-9);
    previous = covered;
  }
}

TEST_P(CoverageProperty, WeightedCoverageIsConvexCombination) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0x11);
  const CoverageEngine engine(short_grid(), 25.0);
  const auto sites = sites_from_cities(paper_cities());
  const auto sats = random_constellation(rng, 4);

  const double weighted = engine.weighted_coverage_seconds(sats, sites);
  double min_site = engine.grid().duration_seconds(), max_site = 0.0;
  for (const GroundSite& site : sites) {
    const double covered =
        engine.stats(engine.coverage_mask(sats, site.frame)).covered_seconds;
    min_site = std::min(min_site, covered);
    max_site = std::max(max_site, covered);
  }
  EXPECT_GE(weighted, min_site - 1e-6);
  EXPECT_LE(weighted, max_site + 1e-6);
}

TEST_P(CoverageProperty, MaskStatsRevisitConsistency) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0x22);
  const CoverageEngine engine(short_grid(), 25.0);
  const orbit::TopocentricFrame site(orbit::Geodetic::from_degrees(
      rng.uniform(-50.0, 50.0), rng.uniform(-180.0, 180.0)));
  const auto sats = random_constellation(rng, 3);

  const StepMask mask = engine.coverage_mask(sats, site);
  const CoverageStats stats = engine.stats(mask);
  const RevisitStats revisit = revisit_stats(mask, engine.grid().step_seconds);

  EXPECT_NEAR(stats.covered_fraction, revisit.covered_fraction, 1e-12);
  EXPECT_EQ(stats.pass_count, revisit.pass_count);
  EXPECT_NEAR(stats.max_gap_seconds, revisit.max_gap_seconds, 1e-9);
  // Covered + gap time partitions the window.
  const double pass_time =
      revisit.mean_pass_seconds * static_cast<double>(revisit.pass_count);
  const double gap_time =
      revisit.mean_gap_seconds * static_cast<double>(revisit.gap_count);
  EXPECT_NEAR(pass_time + gap_time, engine.grid().duration_seconds(), 1e-6);
}

TEST_P(CoverageProperty, CacheAgreesWithDirectEngine) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0x33);
  const CoverageEngine engine(short_grid(), 25.0);
  const auto sites = sites_from_cities(paper_cities());
  const auto sats = random_constellation(rng, 5);

  VisibilityCache cache(engine, sats, sites);
  std::vector<std::size_t> all(sats.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  const double via_cache =
      cache.weighted_coverage_fraction(all) * engine.grid().duration_seconds();
  const double direct = engine.weighted_coverage_seconds(sats, sites);
  EXPECT_NEAR(via_cache, direct, 1e-6);
}

TEST_P(CoverageProperty, SubsetCoverageNeverExceedsSuperset) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0x44);
  const CoverageEngine engine(short_grid(), 25.0);
  const auto sites = sites_from_cities(paper_cities());
  const auto sats = random_constellation(rng, 6);
  VisibilityCache cache(engine, sats, sites);

  std::vector<std::size_t> all(sats.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto subset_indices = rng.sample_without_replacement(sats.size(), 3);

  EXPECT_LE(cache.weighted_coverage_fraction(subset_indices),
            cache.weighted_coverage_fraction(all) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace mpleo::cov
