// Property tests for the shared ephemeris kernel: the batched EphemerisTable
// must agree with the pointwise KeplerianPropagator to well under a
// millimetre for arbitrary elements and grids, and the batched visibility
// kernel must reproduce the scalar reference scan bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>

#include "coverage/engine.hpp"
#include "orbit/ephemeris.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

const TimePoint kEpoch = TimePoint::from_iso8601("2024-11-18T00:00:00Z");

ClassicalElements random_elements(util::Xoshiro256PlusPlus& rng, bool eccentric) {
  ClassicalElements coe;
  coe.semi_major_axis_m = util::kEarthMeanRadiusM + rng.uniform(400e3, 1500e3);
  coe.eccentricity = eccentric ? rng.uniform(0.001, 0.3) : 0.0;
  coe.inclination_rad = rng.uniform(0.0, 3.1);
  coe.raan_rad = rng.uniform(0.0, 6.28);
  coe.arg_perigee_rad = rng.uniform(0.0, 6.28);
  coe.mean_anomaly_rad = rng.uniform(0.0, 6.28);
  return coe;
}

class EphemerisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EphemerisProperty, TableMatchesPropagatorUnderOneMillimetre) {
  util::Xoshiro256PlusPlus rng(GetParam());
  // Grids longer than the 64-step resync interval, with odd step sizes, so
  // the incremental rotations cross several resync boundaries.
  const double step = rng.uniform(7.0, 240.0);
  const std::size_t steps = 64 * 3 + rng.uniform_index(200);
  const TimeGrid grid =
      TimeGrid::over_duration(kEpoch, step * static_cast<double>(steps), step);
  ASSERT_GT(grid.count, 64u);

  for (bool eccentric : {false, true}) {
    const KeplerianPropagator prop(random_elements(rng, eccentric), kEpoch);
    const EphemerisTable table = EphemerisTable::compute(prop, grid);
    ASSERT_EQ(table.size(), grid.count);
    for (std::size_t k = 0; k < grid.count; ++k) {
      const util::Vec3 eci =
          prop.position_eci_at_offset(grid.step_seconds * static_cast<double>(k));
      const util::Vec3 expected = eci_to_ecef(eci, grid.at(k));
      const util::Vec3 got = table.position_ecef(k);
      EXPECT_NEAR(got.x, expected.x, 1e-3);
      EXPECT_NEAR(got.y, expected.y, 1e-3);
      EXPECT_NEAR(got.z, expected.z, 1e-3);
      EXPECT_NEAR(table.radius_m()[k], expected.norm(), 1e-3);
    }
  }
}

TEST_P(EphemerisProperty, RadiusBoundsBracketEveryStep) {
  util::Xoshiro256PlusPlus rng(GetParam());
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 6.0 * 3600.0, 45.0);
  const KeplerianPropagator prop(random_elements(rng, true), kEpoch);
  const EphemerisTable table = EphemerisTable::compute(prop, grid);
  for (std::size_t k = 0; k < grid.count; ++k) {
    EXPECT_GE(table.radius_m()[k], table.min_radius_m() - 1e-6);
    EXPECT_LE(table.radius_m()[k], table.max_radius_m() + 1e-6);
  }
}

TEST_P(EphemerisProperty, CircularLatitudeArgumentPredictsZ) {
  util::Xoshiro256PlusPlus rng(GetParam());
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 3.0 * 3600.0, 60.0);
  ClassicalElements coe = random_elements(rng, false);
  const KeplerianPropagator prop(coe, kEpoch);
  const EphemerisTable table = EphemerisTable::compute(prop, grid);
  const LinearLatitudeArgument& arg = table.latitude_argument();
  ASSERT_TRUE(arg.valid);
  for (std::size_t k = 0; k < grid.count; ++k) {
    const double u = arg.u0 + arg.du * static_cast<double>(k);
    EXPECT_NEAR(arg.radius_m * arg.sin_incl * std::sin(u), table.z()[k], 1e-3);
  }
}

TEST_P(EphemerisProperty, BatchedVisibilityMatchesReferenceBitForBit) {
  util::Xoshiro256PlusPlus rng(GetParam());
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 24.0 * 3600.0, 60.0);
  const cov::CoverageEngine engine(grid, rng.uniform(5.0, 40.0));

  std::vector<cov::GroundSite> sites;
  for (int i = 0; i < 12; ++i) {
    sites.push_back({"site",
                     TopocentricFrame(Geodetic::from_degrees(
                         rng.uniform(-85.0, 85.0), rng.uniform(-180.0, 180.0))),
                     1.0});
  }

  for (bool eccentric : {false, true}) {
    constellation::Satellite sat;
    sat.elements = random_elements(rng, eccentric);
    sat.epoch = kEpoch;
    const auto reference = engine.visibility_masks_reference(sat, sites);
    const auto batched = engine.visibility_masks(sat, sites);
    ASSERT_EQ(reference.size(), batched.size());
    for (std::size_t j = 0; j < sites.size(); ++j) {
      EXPECT_EQ(reference[j], batched[j]) << "site " << j << " eccentric=" << eccentric;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EphemerisProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u, 17u, 18u));

}  // namespace
}  // namespace mpleo::orbit
