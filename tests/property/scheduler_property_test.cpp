// Property tests: scheduler invariants under randomized fleets, ground
// segments and beam budgets. These are the guarantees the settlement layer
// silently depends on.
#include <gtest/gtest.h>

#include <set>

#include "net/scheduler.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mpleo::net {
namespace {

using constellation::Satellite;
using util::Vec3;

struct RandomScenario {
  SchedulerConfig config;
  std::vector<Satellite> satellites;
  std::vector<Terminal> terminals;
  std::vector<GroundStation> stations;
  std::vector<Vec3> positions;
  std::size_t party_count = 0;
};

RandomScenario make_scenario(std::uint64_t seed) {
  util::Xoshiro256PlusPlus rng(seed);
  RandomScenario s;
  s.party_count = 2 + rng.uniform_index(3);
  s.config.beams_per_satellite = 1 + static_cast<int>(rng.uniform_index(4));

  const std::size_t n_sats = 2 + rng.uniform_index(6);
  for (std::size_t i = 0; i < n_sats; ++i) {
    Satellite sat;
    sat.id = static_cast<constellation::SatelliteId>(i);
    sat.owner_party = static_cast<std::uint32_t>(rng.uniform_index(s.party_count));
    s.satellites.push_back(sat);
    // Position somewhere above a random point in a shared region so that
    // visibility outcomes are mixed.
    const double lat = rng.uniform(-30.0, 30.0);
    const double lon = rng.uniform(0.0, 40.0);
    s.positions.push_back(orbit::geodetic_to_ecef(
        orbit::Geodetic::from_degrees(lat, lon, rng.uniform(500e3, 600e3))));
  }

  const std::size_t n_terms = 1 + rng.uniform_index(6);
  for (std::size_t i = 0; i < n_terms; ++i) {
    Terminal t;
    t.id = static_cast<TerminalId>(i);
    t.owner_party = static_cast<std::uint32_t>(rng.uniform_index(s.party_count));
    t.location = orbit::Geodetic::from_degrees(rng.uniform(-25.0, 25.0),
                                               rng.uniform(0.0, 40.0));
    t.radio = default_user_terminal();
    s.terminals.push_back(t);
  }

  const std::size_t n_stations = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < n_stations; ++i) {
    GroundStation gs;
    gs.id = static_cast<GroundStationId>(i);
    gs.owner_party = static_cast<std::uint32_t>(rng.uniform_index(s.party_count));
    gs.location = orbit::Geodetic::from_degrees(rng.uniform(-25.0, 25.0),
                                                rng.uniform(0.0, 40.0));
    gs.radio = default_ground_station();
    s.stations.push_back(gs);
  }
  return s;
}

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, InvariantsHoldOnRandomScenarios) {
  const RandomScenario s = make_scenario(GetParam());
  const BentPipeScheduler scheduler(s.config, s.satellites, s.terminals, s.stations);
  const StepSchedule schedule = scheduler.schedule_step(s.positions, 0);

  // 1. No terminal appears twice (served at most once per step).
  std::set<std::size_t> served;
  for (const LinkAssignment& link : schedule.links) {
    EXPECT_TRUE(served.insert(link.terminal_index).second);
  }

  // 2. Served + unserved partitions the terminal set.
  EXPECT_EQ(served.size() + schedule.unserved_terminals.size(), s.terminals.size());
  for (std::size_t ti : schedule.unserved_terminals) {
    EXPECT_FALSE(served.contains(ti));
  }

  // 3. Beam budget per satellite respected.
  std::vector<int> beams(s.satellites.size(), 0);
  for (const LinkAssignment& link : schedule.links) {
    ++beams[link.satellite_index];
  }
  for (int b : beams) EXPECT_LE(b, s.config.beams_per_satellite);

  // 4. Spare flag is exactly owner mismatch; stations belong to the
  //    terminal's party; capacities are positive.
  for (const LinkAssignment& link : schedule.links) {
    const auto term_owner = s.terminals[link.terminal_index].owner_party;
    const auto sat_owner = s.satellites[link.satellite_index].owner_party;
    EXPECT_EQ(link.spare, term_owner != sat_owner);
    EXPECT_EQ(s.stations[link.station_index].owner_party, term_owner);
    EXPECT_GT(link.capacity_bps, 0.0);
  }
}

TEST_P(SchedulerProperty, OwnerPriorityNeverServesSpareWhenOwnBeamFree) {
  // If a terminal ended up on spare capacity, then every satellite of its
  // own party that could serve it must have been invisible (to terminal or
  // to all of the party's stations) — beams cannot be the excuse, because
  // owner links are assigned first.
  const RandomScenario s = make_scenario(GetParam() ^ 0xABCD);
  const BentPipeScheduler scheduler(s.config, s.satellites, s.terminals, s.stations);
  const StepSchedule schedule = scheduler.schedule_step(s.positions, 0);

  const double sin_mask = std::sin(util::deg_to_rad(s.config.elevation_mask_deg));
  for (const LinkAssignment& link : schedule.links) {
    if (!link.spare) continue;
    const Terminal& term = s.terminals[link.terminal_index];
    const orbit::TopocentricFrame term_frame(term.location);
    for (std::size_t si = 0; si < s.satellites.size(); ++si) {
      if (s.satellites[si].owner_party != term.owner_party) continue;
      if (!term_frame.visible_above(s.positions[si], sin_mask)) continue;
      // Satellite of own party visible to the terminal: no own station may
      // see it (otherwise the owner pass would have taken it — possibly via
      // another terminal of the same party using all beams, which the owner
      // pass fills first and is also "own" service).
      bool any_station = false;
      for (const GroundStation& gs : s.stations) {
        if (gs.owner_party != term.owner_party) continue;
        if (orbit::TopocentricFrame(gs.location)
                .visible_above(s.positions[si], sin_mask)) {
          any_station = true;
          break;
        }
      }
      if (any_station) {
        // The only legitimate reason: the satellite's beams were consumed by
        // own-party terminals in the first pass.
        int own_links_on_sat = 0;
        for (const LinkAssignment& other : schedule.links) {
          if (other.satellite_index == si && !other.spare) ++own_links_on_sat;
        }
        EXPECT_GE(own_links_on_sat, 1)
            << "terminal " << link.terminal_index << " on spare while own satellite "
            << si << " had free beams and full visibility";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// Re-acquisition backoff invariants under randomized parameters: the hold is
// monotone non-decreasing over consecutive failures, never exceeds the cap,
// and a clean horizon resets the machine to its first-failure hold. With
// initial steps == 0 the machine always returns 0 — the scheduler then falls
// back to its constant reacquisition_backoff_steps, pinning the pre-policy
// (PR 2) behavior.
class BackoffProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackoffProperty, MonotoneCappedAndResetsAfterCleanHorizon) {
  util::Xoshiro256PlusPlus rng(GetParam());
  const std::size_t initial = 1 + rng.uniform_index(8);
  const double multiplier = rng.uniform(1.0, 3.0);
  const std::size_t max_steps = initial + rng.uniform_index(64);
  const std::size_t horizon = 1 + rng.uniform_index(10);
  ReacquisitionBackoff backoff(initial, multiplier, max_steps, horizon);

  const std::size_t first = backoff.on_failure();
  EXPECT_EQ(first, initial);  // the first failure holds exactly initial steps
  std::size_t previous = first;
  for (std::size_t n = 2; n <= 24; ++n) {
    // Interleave clean steps strictly inside the horizon: they must never
    // shrink the next hold.
    const std::size_t quiet = rng.uniform_index(horizon);
    for (std::size_t q = 0; q < quiet; ++q) backoff.on_clean_step();
    const std::size_t hold = backoff.on_failure();
    EXPECT_GE(hold, previous) << "failure " << n << " shrank the hold";
    EXPECT_LE(hold, max_steps) << "failure " << n << " exceeded the cap";
    previous = hold;
  }

  // A full clean horizon resets the machine: the next failure pays the
  // first-failure hold again.
  for (std::size_t q = 0; q < horizon; ++q) backoff.on_clean_step();
  EXPECT_EQ(backoff.consecutive_failures(), 0u);
  EXPECT_EQ(backoff.on_failure(), first);

  ReacquisitionBackoff constant(0, multiplier, max_steps, horizon);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(constant.on_failure(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackoffProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace mpleo::net
