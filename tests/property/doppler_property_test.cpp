// Physical invariants of the Doppler kernel the RF receipt audit trusts:
//   * An overhead pass is time-symmetric — range-rate at closest approach
//     +/- dt is antisymmetric, so the fitted curve shape encodes the pass
//     geometry (what makes a time-mirrored replay detectable).
//   * The Doppler shift crosses zero exactly where the range bottoms out.
//   * The J2 and SGP4 backends agree within a documented envelope near
//     epoch, so a track predicted by one backend cannot falsely convict a
//     receipt measured under the other (DESIGN.md §12).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <map>

#include "coverage/doppler.hpp"
#include "orbit/propagator.hpp"

namespace mpleo::cov {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

// An equatorial satellite starting directly over an equatorial site: the
// relative motion is purely along-track, so the pass is symmetric about the
// epoch to grid precision.
constellation::Satellite equatorial_sat() {
  constellation::Satellite sat;
  sat.id = 1;
  sat.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);
  sat.epoch = kEpoch;
  return sat;
}

orbit::TopocentricFrame sub_satellite_site() {
  const orbit::KeplerianPropagator prop(equatorial_sat().elements, kEpoch);
  const auto ecef = orbit::eci_to_ecef(prop.state_at(kEpoch).position, kEpoch);
  const orbit::Geodetic below = orbit::ecef_to_geodetic(ecef);
  return orbit::TopocentricFrame({below.latitude_rad, below.longitude_rad, 0.0});
}

// First contiguous pass of a profile (samples closer than 1.5 grid steps).
std::size_t first_pass_end(const std::vector<DopplerSample>& profile, double step_s) {
  std::size_t end = 1;
  while (end < profile.size() &&
         profile[end].offset_seconds - profile[end - 1].offset_seconds < 1.5 * step_s) {
    ++end;
  }
  return end;
}

std::size_t min_range_index(const std::vector<DopplerSample>& profile,
                            std::size_t end) {
  std::size_t min_index = 0;
  for (std::size_t i = 1; i < end; ++i) {
    if (profile[i].range_m < profile[min_index].range_m) min_index = i;
  }
  return min_index;
}

TEST(DopplerProperty, RangeRateIsAntisymmetricAcrossThePass) {
  const double step_s = 2.0;
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch.plus_seconds(-900.0), 1800.0, step_s);
  const auto profile =
      doppler_profile(equatorial_sat(), sub_satellite_site(), grid, 10.0, 11.7e9);
  const std::size_t end = first_pass_end(profile, step_s);
  ASSERT_GT(end, 40u);
  const std::size_t ca = min_range_index(profile, end);
  ASSERT_GT(ca, 10u);
  ASSERT_LT(ca + 10, end);

  const std::size_t reach = std::min(ca, end - 1 - ca);
  for (std::size_t k = 1; k <= reach; ++k) {
    const double before = profile[ca - k].range_rate_m_per_s;
    const double after = profile[ca + k].range_rate_m_per_s;
    // Approaching before closest approach, receding after, with mirrored
    // magnitude. Tolerance covers the closest-approach sample landing up to
    // half a grid step off the true minimum (range-rate slews ~25 m/s per
    // second mid-pass).
    EXPECT_LT(before, 0.0) << "k=" << k;
    EXPECT_GT(after, 0.0) << "k=" << k;
    EXPECT_NEAR(before, -after, std::fabs(after) * 0.03 + 60.0) << "k=" << k;
    // Range itself is symmetric too.
    EXPECT_NEAR(profile[ca - k].range_m, profile[ca + k].range_m,
                profile[ca + k].range_m * 0.02 + 2000.0)
        << "k=" << k;
  }
}

TEST(DopplerProperty, ShiftCrossesZeroAtClosestApproach) {
  const double step_s = 2.0;
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch.plus_seconds(-900.0), 1800.0, step_s);
  const auto profile =
      doppler_profile(equatorial_sat(), sub_satellite_site(), grid, 10.0, 11.7e9);
  const std::size_t end = first_pass_end(profile, step_s);
  ASSERT_GT(end, 40u);
  const std::size_t ca = min_range_index(profile, end);

  // Positive shift (approaching) strictly before, negative strictly after —
  // the single zero crossing pins closest approach for the track fit.
  for (std::size_t i = 0; i + 1 < ca; ++i) {
    EXPECT_GT(profile[i].doppler_shift_hz, 0.0) << "sample " << i;
  }
  for (std::size_t i = ca + 2; i < end; ++i) {
    EXPECT_LT(profile[i].doppler_shift_hz, 0.0) << "sample " << i;
  }
  // At the crossing the shift is a sliver of the ~300 kHz pass swing.
  EXPECT_LT(std::fabs(profile[ca].doppler_shift_hz), 30e3);
}

TEST(DopplerProperty, BackendsAgreeWithinTheDocumentedEnvelope) {
  // The audit predicts tracks with the campaign's configured backend; a
  // verifier measuring the physical truth (closer to SGP4) must still fit.
  // DESIGN.md §12 documents the envelope: over the first ~2 h from epoch the
  // J2 and SGP4 Doppler curves at Ku stay within ~30 kHz of each other
  // (gated at 50 kHz) — well inside the ~600 kHz peak-to-peak swing of a
  // pass, but far OUTSIDE the 250 Hz audit tolerance, which is why the
  // audit must predict with the same backend the campaign runs.
  const double step_s = 10.0;
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 2.0 * 3600.0, step_s);
  const orbit::TopocentricFrame site = sub_satellite_site();
  const constellation::Satellite sat = equatorial_sat();

  const auto j2 = doppler_profile(sat, site, grid, 10.0, 11.7e9,
                                  orbit::PropagatorBackend::kJ2Analytic);
  const auto sgp4 = doppler_profile(sat, site, grid, 10.0, 11.7e9,
                                    orbit::PropagatorBackend::kSgp4);
  ASSERT_GT(j2.size(), 20u);
  ASSERT_GT(sgp4.size(), 20u);

  std::map<double, double> sgp4_by_offset;
  for (const DopplerSample& s : sgp4) sgp4_by_offset[s.offset_seconds] = s.doppler_shift_hz;

  std::size_t compared = 0;
  double worst_hz = 0.0;
  for (const DopplerSample& s : j2) {
    const auto it = sgp4_by_offset.find(s.offset_seconds);
    if (it == sgp4_by_offset.end()) continue;  // pass edges may differ a step
    ++compared;
    worst_hz = std::max(worst_hz, std::fabs(s.doppler_shift_hz - it->second));
  }
  ASSERT_GT(compared, 20u);
  EXPECT_LT(worst_hz, 50.0e3) << "J2-vs-SGP4 Doppler envelope exceeded";
  // The backends genuinely differ (SGP4 is not the analytic model in
  // disguise), the documented reason tracks predicted under one backend are
  // never audited against the other.
  EXPECT_GT(worst_hz, 1.0);
}

}  // namespace
}  // namespace mpleo::cov
