// Property tests: the capacity market under randomized books — token
// conservation, no overdrafts, price bounds, and quantity bounds.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/market.hpp"
#include "util/rng.hpp"

namespace mpleo::core {
namespace {

struct RandomBook {
  Ledger ledger;
  CapacityMarket market;
  std::vector<AccountId> accounts;
  double total_supply_gb = 0.0;
  double total_demand_gb = 0.0;
  double min_ask = 1e300;
  double max_bid = 0.0;
};

RandomBook make_book(std::uint64_t seed) {
  util::Xoshiro256PlusPlus rng(seed);
  RandomBook book;
  book.ledger.mint(1e6);
  const std::size_t parties = 2 + rng.uniform_index(6);
  for (std::size_t p = 0; p < parties; ++p) {
    book.accounts.push_back(book.ledger.open_account("p" + std::to_string(p)));
    // Some parties are poor on purpose to exercise unsettled trades.
    const double funding = rng.uniform() < 0.2 ? 0.0 : rng.uniform(10.0, 2000.0);
    if (funding > 0.0) EXPECT_TRUE(book.ledger.reward(book.accounts.back(), funding));
  }
  const std::size_t orders = 1 + rng.uniform_index(10);
  for (std::size_t i = 0; i < orders; ++i) {
    const auto party = static_cast<std::uint32_t>(rng.uniform_index(parties));
    if (rng.uniform() < 0.5) {
      Ask ask{party, book.accounts[party], rng.uniform(0.0, 50.0), rng.uniform(0.5, 10.0)};
      book.total_supply_gb += ask.capacity_gb;
      book.min_ask = std::min(book.min_ask, ask.price_per_gb);
      book.market.post_ask(ask);
    } else {
      Bid bid{party, book.accounts[party], rng.uniform(0.0, 50.0), rng.uniform(0.5, 10.0)};
      book.total_demand_gb += bid.demand_gb;
      book.max_bid = std::max(book.max_bid, bid.limit_price_per_gb);
      book.market.post_bid(bid);
    }
  }
  return book;
}

class MarketProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarketProperty, ConservationAndBounds) {
  RandomBook book = make_book(GetParam());
  const double minted_before = book.ledger.total_minted();
  const ClearingResult result = book.market.clear(book.ledger);

  // 1. Clearing mints nothing and conserves tokens.
  EXPECT_DOUBLE_EQ(book.ledger.total_minted(), minted_before);
  EXPECT_NEAR(book.ledger.sum_of_balances(), book.ledger.total_minted(), 1e-6);

  // 2. No account overdrawn.
  for (AccountId a : book.accounts) EXPECT_GE(book.ledger.balance(a), -1e-9);

  // 3. Cleared quantity bounded by both sides of the book.
  EXPECT_LE(result.cleared_gb, book.total_supply_gb + 1e-9);
  EXPECT_LE(result.cleared_gb, book.total_demand_gb + 1e-9);

  // 4. Every trade priced inside [min ask, max bid]; midpoint never leaves
  //    the crossing band.
  for (const Trade& trade : result.trades) {
    EXPECT_GE(trade.price_per_gb, book.min_ask - 1e-9);
    EXPECT_LE(trade.price_per_gb, book.max_bid + 1e-9);
    EXPECT_GE(trade.quantity_gb, 0.0);
  }

  // 5. Settled value matches reported total.
  double settled_value = 0.0;
  for (const Trade& trade : result.trades) {
    if (trade.settled) settled_value += trade.quantity_gb * trade.price_per_gb;
  }
  EXPECT_NEAR(settled_value, result.cleared_value, 1e-6);

  // 6. The book is emptied by clearing.
  EXPECT_TRUE(book.market.asks().empty());
  EXPECT_TRUE(book.market.bids().empty());
}

TEST_P(MarketProperty, QuantityAccounting) {
  RandomBook book = make_book(GetParam() ^ 0x51CA);
  const ClearingResult result = book.market.clear(book.ledger);
  // supply = cleared(settled) + unmatched_supply, demand likewise —
  // unsettled trade quantity returns to unmatched demand by design.
  double unsettled_quantity = 0.0;
  for (const Trade& trade : result.trades) {
    if (!trade.settled) unsettled_quantity += trade.quantity_gb;
  }
  EXPECT_NEAR(result.cleared_gb + unsettled_quantity + result.unmatched_supply_gb,
              book.total_supply_gb, 1e-6);
  EXPECT_NEAR(result.cleared_gb + result.unmatched_demand_gb, book.total_demand_gb,
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarketProperty, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace mpleo::core
