// Fault-layer contracts: an empty FaultTimeline is bit-identical to the
// no-fault code path everywhere it is accepted, seeded sweeps reproduce
// exactly, and coverage under common-random-numbers thinning is monotone in
// the failure rate.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/robustness.hpp"
#include "core/sla.hpp"
#include "fault/timeline.hpp"
#include "net/handover.hpp"
#include "net/scheduler.hpp"
#include "sim/run_context.hpp"
#include "util/thread_pool.hpp"

namespace mpleo {
namespace {

using constellation::Satellite;

orbit::TimePoint epoch() {
  return orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
}

std::vector<Satellite> small_shell() {
  constellation::WalkerShell shell;
  shell.plane_count = 4;
  shell.sats_per_plane = 4;
  shell.phasing_factor = 1;
  std::vector<Satellite> sats = shell.build(epoch());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    sats[i].owner_party = static_cast<std::uint32_t>(i % 2);
  }
  return sats;
}

std::vector<cov::GroundSite> two_sites() {
  return {{"Taipei", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(25.0, 121.5)),
           2.0},
          {"Nairobi", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(-1.3, 36.8)),
           1.0}};
}

void expect_same_usage(const net::PartyUsage& a, const net::PartyUsage& b) {
  EXPECT_DOUBLE_EQ(a.own_link_seconds, b.own_link_seconds);
  EXPECT_DOUBLE_EQ(a.spare_used_seconds, b.spare_used_seconds);
  EXPECT_DOUBLE_EQ(a.spare_provided_seconds, b.spare_provided_seconds);
  EXPECT_DOUBLE_EQ(a.bytes_carried_for_others, b.bytes_carried_for_others);
  EXPECT_DOUBLE_EQ(a.bytes_received_from_others, b.bytes_received_from_others);
  EXPECT_DOUBLE_EQ(a.unserved_terminal_seconds, b.unserved_terminal_seconds);
}

TEST(FaultProperty, EmptyTimelineLeavesSchedulerBitIdentical) {
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  for (std::uint32_t p = 0; p < 2; ++p) {
    net::Terminal t;
    t.id = p;
    t.location = orbit::Geodetic::from_degrees(25.0 + 0.2 * p, 121.5);
    t.owner_party = p;
    t.radio = net::default_user_terminal();
    terminals.push_back(t);
    net::GroundStation gs;
    gs.id = p;
    gs.location = orbit::Geodetic::from_degrees(24.8 - 0.2 * p, 121.3);
    gs.owner_party = p;
    gs.radio = net::default_ground_station();
    stations.push_back(gs);
  }
  net::SchedulerConfig cfg;
  cfg.reacquisition_backoff_steps = 5;  // must be inert without faults
  const net::BentPipeScheduler scheduler(cfg, small_shell(), terminals, stations);
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(epoch(), 6.0 * 3600.0, 120.0);

  const net::ScheduleResult plain = scheduler.run(grid, 2, /*keep_steps=*/true);
  const fault::FaultTimeline empty_constructed(grid, 16, 2);
  const fault::FaultTimeline default_constructed;
  for (const fault::FaultTimeline* faults :
       {&empty_constructed, &default_constructed}) {
    ASSERT_TRUE(faults->empty());
    const net::ScheduleResult gated = scheduler.run(grid, 2, faults, /*keep_steps=*/true);
    EXPECT_DOUBLE_EQ(gated.total_served_seconds, plain.total_served_seconds);
    EXPECT_DOUBLE_EQ(gated.total_unserved_seconds, plain.total_unserved_seconds);
    EXPECT_EQ(gated.failure_forced_detaches, 0u);
    EXPECT_DOUBLE_EQ(gated.reacquisition_wait_seconds, 0.0);
    ASSERT_EQ(gated.per_party.size(), plain.per_party.size());
    for (std::size_t p = 0; p < plain.per_party.size(); ++p) {
      expect_same_usage(gated.per_party[p], plain.per_party[p]);
    }
    ASSERT_EQ(gated.steps.size(), plain.steps.size());
    for (std::size_t k = 0; k < plain.steps.size(); ++k) {
      ASSERT_EQ(gated.steps[k].links.size(), plain.steps[k].links.size());
      for (std::size_t l = 0; l < plain.steps[k].links.size(); ++l) {
        EXPECT_EQ(gated.steps[k].links[l].terminal_index,
                  plain.steps[k].links[l].terminal_index);
        EXPECT_EQ(gated.steps[k].links[l].satellite_index,
                  plain.steps[k].links[l].satellite_index);
        EXPECT_EQ(gated.steps[k].links[l].station_index,
                  plain.steps[k].links[l].station_index);
        EXPECT_DOUBLE_EQ(gated.steps[k].links[l].capacity_bps,
                         plain.steps[k].links[l].capacity_bps);
      }
      EXPECT_EQ(gated.steps[k].unserved_terminals, plain.steps[k].unserved_terminals);
    }
  }
}

TEST(FaultProperty, EmptyTimelineLeavesCoverageAndSlaBitIdentical) {
  const std::vector<Satellite> sats = small_shell();
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(epoch(), 86400.0, 300.0);
  const cov::CoverageEngine engine(grid, 25.0);
  const std::vector<cov::GroundSite> sites = two_sites();
  cov::VisibilityCache cache(engine, sats, sites);
  std::vector<std::size_t> fleet(sats.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) fleet[i] = i;

  const fault::FaultTimeline empty;
  for (std::size_t j = 0; j < sites.size(); ++j) {
    // StepMask operator== : bit-identical, not merely statistically close.
    EXPECT_EQ(cache.union_mask(fleet, j, &empty), cache.union_mask(fleet, j));
    EXPECT_EQ(cache.union_mask(fleet, j, nullptr), cache.union_mask(fleet, j));
    EXPECT_EQ(engine.coverage_mask(sats, sites[j].frame, &empty),
              engine.coverage_mask(sats, sites[j].frame));
  }
  EXPECT_DOUBLE_EQ(cache.weighted_coverage_fraction(fleet, &empty),
                   cache.weighted_coverage_fraction(fleet));

  core::SlaTerms terms;
  terms.min_coverage_fraction = 0.3;
  terms.max_gap_seconds = 3600.0;
  const core::SlaReport plain =
      core::evaluate_sla(terms, engine.stats(cache.union_mask(fleet, 0)));
  sim::RunContext empty_context;
  empty_context.use_faults(&empty);
  const core::SlaReport gated =
      core::evaluate_sla(terms, cache, fleet, 0, empty_context);
  EXPECT_EQ(gated.compliant, plain.compliant);
  ASSERT_EQ(gated.violations.size(), plain.violations.size());
  for (std::size_t v = 0; v < plain.violations.size(); ++v) {
    EXPECT_EQ(gated.violations[v].clause, plain.violations[v].clause);
    EXPECT_DOUBLE_EQ(gated.violations[v].delivered, plain.violations[v].delivered);
  }
  EXPECT_DOUBLE_EQ(gated.total_penalty, plain.total_penalty);

  // Handover: fault-aware selection with an empty timeline is bit-identical.
  EXPECT_EQ(net::serving_satellite_timeline(engine, sats, sites[0].frame, empty),
            net::serving_satellite_timeline(engine, sats, sites[0].frame));
}

TEST(FaultProperty, ResilienceSweepReproducesAndIsMonotone) {
  const std::vector<Satellite> sats = small_shell();
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(epoch(), 6.0 * 3600.0, 300.0);
  const cov::CoverageEngine engine(grid, 25.0);
  cov::VisibilityCache cache(engine, sats, two_sites());
  std::vector<std::size_t> fleet(sats.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) fleet[i] = i;

  core::ResilienceConfig config;
  config.failure_rates_per_sat_day = {0.0, 1.0, 4.0, 16.0};
  config.mttr_seconds = 3600.0;
  config.runs = 4;
  config.seed = 7;

  util::ThreadPool pool;
  const std::vector<core::ResiliencePoint> serial =
      core::resilience_sweep(cache, fleet, config);
  const std::vector<core::ResiliencePoint> again =
      core::resilience_sweep(cache, fleet, config);
  const std::vector<core::ResiliencePoint> pooled =
      core::resilience_sweep(cache, fleet, config, &pool);

  ASSERT_EQ(serial.size(), config.failure_rates_per_sat_day.size());
  ASSERT_EQ(again.size(), serial.size());
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Same seed: exact reproduction, serial or pooled.
    EXPECT_DOUBLE_EQ(again[i].mean_coverage_fraction, serial[i].mean_coverage_fraction);
    EXPECT_DOUBLE_EQ(pooled[i].mean_coverage_fraction, serial[i].mean_coverage_fraction);
    EXPECT_DOUBLE_EQ(again[i].mean_worst_gap_seconds, serial[i].mean_worst_gap_seconds);
    EXPECT_DOUBLE_EQ(pooled[i].mean_worst_gap_seconds, serial[i].mean_worst_gap_seconds);
  }

  // Rate 0 is the healthy baseline; thereafter coverage and served fraction
  // never increase with the failure rate, and the worst gap never shrinks.
  EXPECT_DOUBLE_EQ(serial.front().mean_served_fraction, 1.0);
  for (std::size_t i = 1; i < serial.size(); ++i) {
    EXPECT_LE(serial[i].mean_coverage_fraction, serial[i - 1].mean_coverage_fraction);
    EXPECT_LE(serial[i].mean_served_fraction, serial[i - 1].mean_served_fraction);
    EXPECT_GE(serial[i].mean_worst_gap_seconds, serial[i - 1].mean_worst_gap_seconds);
  }
  // A different seed actually changes the draw.
  config.seed = 8;
  const std::vector<core::ResiliencePoint> other =
      core::resilience_sweep(cache, fleet, config);
  bool any_difference = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    any_difference |=
        other[i].mean_coverage_fraction != serial[i].mean_coverage_fraction;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultProperty, StochasticTimelineConvergesToConfiguredMtbfMttr) {
  // The exponential fail/repair model is only trustworthy if the empirical
  // statistics of a long draw converge to the configured means: mean outage
  // duration -> mttr, mean up-time between failures -> mtbf.
  const double mtbf_s = 2.0 * 86400.0;
  const double mttr_s = 6.0 * 3600.0;
  const double horizon_s = 60.0 * 86400.0;
  constexpr std::size_t kSatellites = 40;
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(epoch(), horizon_s, 600.0);
  const fault::FaultTimeline timeline = fault::FaultTimeline::stochastic(
      grid, kSatellites, 0, {mtbf_s, mttr_s}, {0.0, 0.0}, /*seed=*/1042);

  // Group outages per satellite in time order to measure up-gaps.
  std::vector<std::vector<fault::OutageRecord>> per_sat(kSatellites);
  for (const fault::OutageRecord& r : timeline.outages()) {
    ASSERT_EQ(r.kind, fault::AssetKind::kSatellite);
    ASSERT_LT(r.asset_index, kSatellites);
    per_sat[r.asset_index].push_back(r);
  }
  double down_sum = 0.0, up_sum = 0.0;
  std::size_t down_count = 0, up_count = 0;
  for (std::vector<fault::OutageRecord>& records : per_sat) {
    std::sort(records.begin(), records.end(),
              [](const fault::OutageRecord& a, const fault::OutageRecord& b) {
                return a.start_offset_s < b.start_offset_s;
              });
    double previous_end = 0.0;
    for (const fault::OutageRecord& r : records) {
      ASSERT_GT(r.duration_s(), 0.0);
      up_sum += r.start_offset_s - previous_end;
      ++up_count;
      previous_end = r.end_offset_s;
      // Truncated tail outages would bias the repair mean low; skip them.
      if (r.end_offset_s < horizon_s) {
        down_sum += r.duration_s();
        ++down_count;
      }
    }
  }
  // ~26 failure/repair cycles per satellite over 60 days -> ~1000 samples;
  // a 10% band is ~3 standard errors for an exponential.
  ASSERT_GT(down_count, 500u);
  ASSERT_GT(up_count, 500u);
  EXPECT_NEAR(down_sum / static_cast<double>(down_count), mttr_s, 0.10 * mttr_s);
  EXPECT_NEAR(up_sum / static_cast<double>(up_count), mtbf_s, 0.10 * mtbf_s);
}

TEST(FaultProperty, StochasticTimelineRespectsDisabledStations) {
  // A purely satellite-side stochastic model must never touch stations.
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(epoch(), 7.0 * 86400.0, 600.0);
  const fault::FaultTimeline timeline = fault::FaultTimeline::stochastic(
      grid, 12, 6, {86400.0, 3600.0}, {0.0, 3600.0}, 21);
  for (const fault::OutageRecord& r : timeline.outages()) {
    EXPECT_EQ(r.kind, fault::AssetKind::kSatellite);
  }
  for (std::size_t g = 0; g < 6; ++g) {
    EXPECT_EQ(timeline.station_outage_steps(g), nullptr);
  }
}

}  // namespace
}  // namespace mpleo
