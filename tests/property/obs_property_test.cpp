// Observability contracts: merged metrics are pool-size invariant whenever
// the observations themselves are deterministic. Integer counters and
// integer-valued histogram observations distribute across per-thread shards
// in arbitrary ways, but the merge must always sum to exactly the same
// snapshot — and the scheduler's own counters, recorded from inside the
// two-phase pipeline, must obey the same invariance end to end.
#include <gtest/gtest.h>

#include "net/scheduler.hpp"
#include "obs/metrics.hpp"
#include "orbit/geodesy.hpp"
#include "sim/run_context.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mpleo {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

// Deterministic integer workload: item i contributes delta (i % 17) + 1 to
// the counter and observes value i % 23 into the histogram, regardless of
// which worker runs it.
void run_workload(const obs::Counter& counter, const obs::Histogram& histogram,
                  std::size_t items, util::ThreadPool* pool) {
  const auto work = [&](std::size_t i) {
    counter.add(i % 17 + 1);
    histogram.observe(static_cast<double>(i % 23));
  };
  if (pool != nullptr) {
    pool->parallel_for(items, work);
  } else {
    for (std::size_t i = 0; i < items; ++i) work(i);
  }
}

TEST(ObsProperty, MergedCountersAndHistogramsArePoolSizeInvariant) {
  constexpr std::size_t kItems = 5000;

  obs::MetricsRegistry serial;
  run_workload(serial.counter("work"), serial.histogram("values", {4.0, 8.0, 16.0}),
               kItems, nullptr);
  const obs::MetricsSnapshot expected = serial.snapshot();
  ASSERT_EQ(expected.counters.size(), 1u);
  ASSERT_EQ(expected.histograms.size(), 1u);

  for (const std::size_t threads : {1u, 2u, 3u, 7u}) {
    util::ThreadPool pool(threads);
    obs::MetricsRegistry registry;
    run_workload(registry.counter("work"), registry.histogram("values", {4.0, 8.0, 16.0}),
                 kItems, &pool);
    const obs::MetricsSnapshot merged = registry.snapshot();

    ASSERT_EQ(merged.counters.size(), 1u) << "pool size " << threads;
    EXPECT_EQ(merged.counters[0].second, expected.counters[0].second)
        << "pool size " << threads;

    ASSERT_EQ(merged.histograms.size(), 1u) << "pool size " << threads;
    const obs::HistogramSnapshot& got = merged.histograms[0].second;
    const obs::HistogramSnapshot& want = expected.histograms[0].second;
    EXPECT_EQ(got.count, want.count) << "pool size " << threads;
    // Observations are small integers, so even the floating sum is exact.
    EXPECT_EQ(got.sum, want.sum) << "pool size " << threads;
    EXPECT_EQ(got.min, want.min) << "pool size " << threads;
    EXPECT_EQ(got.max, want.max) << "pool size " << threads;
    EXPECT_EQ(got.bucket_counts, want.bucket_counts) << "pool size " << threads;
  }
}

TEST(ObsProperty, RepeatedRunsAccumulateLinearly) {
  obs::MetricsRegistry registry;
  const obs::Counter c = registry.counter("work");
  const obs::Histogram h = registry.histogram("values", {4.0});
  util::ThreadPool pool(3);
  run_workload(c, h, 1000, &pool);
  const std::uint64_t once = registry.counter_value("work");
  run_workload(c, h, 1000, &pool);
  EXPECT_EQ(registry.counter_value("work"), 2 * once);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.histograms[0].second.count, 2000u);
}

// A small mixed-ownership fleet whose candidate lists exercise both the
// own-link and spare paths; the exact geometry does not matter, only that it
// is deterministic.
struct Fleet {
  net::SchedulerConfig config;
  std::vector<constellation::Satellite> satellites;
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  std::size_t party_count = 3;
};

Fleet make_fleet() {
  Fleet f;
  f.config.beams_per_satellite = 2;
  for (std::size_t i = 0; i < 12; ++i) {
    constellation::Satellite sat;
    sat.id = static_cast<constellation::SatelliteId>(i);
    sat.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    sat.elements = orbit::ClassicalElements::circular(
        550e3 + 10e3 * static_cast<double>(i % 4), 53.0,
        30.0 * static_cast<double>(i), 40.0 * static_cast<double>(i));
    sat.epoch = kEpoch;
    f.satellites.push_back(sat);
  }
  for (std::size_t i = 0; i < 6; ++i) {
    net::Terminal t;
    t.id = static_cast<net::TerminalId>(i);
    t.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    t.location = orbit::Geodetic::from_degrees(
        -30.0 + 12.0 * static_cast<double>(i), 10.0 + 8.0 * static_cast<double>(i));
    t.radio = net::default_user_terminal();
    t.demand_bps = 50e6;
    f.terminals.push_back(t);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    net::GroundStation gs;
    gs.id = static_cast<net::GroundStationId>(i);
    gs.owner_party = static_cast<std::uint32_t>(i);
    gs.location = orbit::Geodetic::from_degrees(
        -25.0 + 15.0 * static_cast<double>(i), 12.0 + 11.0 * static_cast<double>(i));
    gs.radio = net::default_ground_station();
    f.stations.push_back(gs);
  }
  return f;
}

TEST(ObsProperty, SchedulerCountersArePoolSizeInvariant) {
  const Fleet f = make_fleet();
  const net::BentPipeScheduler scheduler(f.config, f.satellites, f.terminals,
                                         f.stations);
  // 90 minutes at 60 s crosses a StepMask word boundary inside the pipeline.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 5400.0, 60.0);

  const auto counters_for = [&](std::size_t threads) {
    sim::Scenario scenario;
    scenario.threads = threads;
    sim::RunContext context(scenario);
    const net::ScheduleResult result =
        scheduler.run(grid, f.party_count, context, /*keep_steps=*/true);
    EXPECT_EQ(result.steps.size(), grid.count);
    obs::MetricsSnapshot snap = context.metrics().snapshot();
    // Wall-clock histograms and pool-shape gauges legitimately vary; strip
    // everything but the integer counters and the integer-valued
    // candidates-per-step distribution.
    std::erase_if(snap.histograms,
                  [](const auto& h) { return h.first != "sched.candidates_per_step"; });
    snap.gauges.clear();
    return snap;
  };

  const obs::MetricsSnapshot serial = counters_for(1);
  EXPECT_GT(serial.counters.size(), 0u);
  ASSERT_EQ(serial.histograms.size(), 1u);
  EXPECT_EQ(serial.histograms[0].second.count, grid.count);

  for (const std::size_t threads : {2u, 3u, 5u}) {
    const obs::MetricsSnapshot pooled = counters_for(threads);
    ASSERT_EQ(pooled.counters.size(), serial.counters.size()) << "pool size " << threads;
    for (std::size_t i = 0; i < serial.counters.size(); ++i) {
      EXPECT_EQ(pooled.counters[i].first, serial.counters[i].first);
      EXPECT_EQ(pooled.counters[i].second, serial.counters[i].second)
          << serial.counters[i].first << " with pool size " << threads;
    }
    ASSERT_EQ(pooled.histograms.size(), 1u);
    const obs::HistogramSnapshot& got = pooled.histograms[0].second;
    const obs::HistogramSnapshot& want = serial.histograms[0].second;
    EXPECT_EQ(got.count, want.count) << "pool size " << threads;
    EXPECT_EQ(got.sum, want.sum) << "pool size " << threads;
    EXPECT_EQ(got.min, want.min) << "pool size " << threads;
    EXPECT_EQ(got.max, want.max) << "pool size " << threads;
    EXPECT_EQ(got.bucket_counts, want.bucket_counts) << "pool size " << threads;
  }
}

}  // namespace
}  // namespace mpleo
