// Property tests for the propagator-backend facade and the lane-batched
// ephemeris fill:
//
//  * Cross-backend agreement: for the same mean elements, J2-analytic and
//    SGP4 trajectories stay inside a documented error envelope over one day.
//    The dominant term is along-track drift from the Kozai vs un-Kozai
//    mean-motion conventions (plus J4/drag terms only SGP4 carries), which
//    grows linearly to tens of kilometres per day at LEO — so the test also
//    asserts the backends do NOT agree to metres, proving SGP4 actually ran
//    instead of silently falling back to J2.
//
//  * Bit-identity: the SIMD lane-batched fill (satellites across AVX2
//    lanes) must reproduce the scalar per-satellite path exactly — every
//    coordinate, radius, bound, and latitude-argument field compares equal
//    with ==, for pure-circular fleets and for mixed fleets where only a
//    subset of entries is batchable.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "orbit/ephemeris.hpp"
#include "orbit/simd.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

const TimePoint kEpoch = TimePoint::from_iso8601("2024-11-18T00:00:00Z");

// Documented cross-backend envelope: max |r_sgp4 - r_j2| over one day for a
// circular LEO orbit propagated from the same mean elements. See
// DESIGN.md §11 — the bound is dominated by the un-Kozai mean-motion
// correction, whose relative size (3/2)k2(3cos^2 i - 1)/a^2 peaks near
// 1.4e-3 for near-equatorial orbits at 400 km; accumulated over ~15.6
// orbits that is up to ~1000 km of along-track separation per day
// (empirically ~800 km across random LEO catalogs; tens of km at the
// 53-degree inclinations real shells fly).
constexpr double kCrossBackendEnvelopeM = 1500e3;

ClassicalElements random_circular_leo(util::Xoshiro256PlusPlus& rng) {
  ClassicalElements coe;
  coe.semi_major_axis_m = util::kEarthMeanRadiusM + rng.uniform(400e3, 1500e3);
  coe.eccentricity = 0.0;
  coe.inclination_rad = rng.uniform(0.0, 3.1);
  coe.raan_rad = rng.uniform(0.0, 6.28);
  coe.arg_perigee_rad = rng.uniform(0.0, 6.28);
  coe.mean_anomaly_rad = rng.uniform(0.0, 6.28);
  return coe;
}

ClassicalElements random_eccentric_leo(util::Xoshiro256PlusPlus& rng) {
  ClassicalElements coe = random_circular_leo(rng);
  coe.eccentricity = rng.uniform(0.001, 0.3);
  coe.semi_major_axis_m += 3000e3;  // keep perigee above the atmosphere
  return coe;
}

// Exact (bitwise) equality of two tables, field by field.
void expect_tables_identical(const EphemerisTable& a, const EphemerisTable& b,
                             std::size_t sat) {
  ASSERT_EQ(a.size(), b.size()) << "sat " << sat;
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a.x()[k], b.x()[k]) << "sat " << sat << " step " << k;
    ASSERT_EQ(a.y()[k], b.y()[k]) << "sat " << sat << " step " << k;
    ASSERT_EQ(a.z()[k], b.z()[k]) << "sat " << sat << " step " << k;
    ASSERT_EQ(a.radius_m()[k], b.radius_m()[k]) << "sat " << sat << " step " << k;
  }
  EXPECT_EQ(a.min_radius_m(), b.min_radius_m()) << "sat " << sat;
  EXPECT_EQ(a.max_radius_m(), b.max_radius_m()) << "sat " << sat;
  EXPECT_EQ(a.latitude_argument().valid, b.latitude_argument().valid) << "sat " << sat;
  EXPECT_EQ(a.latitude_argument().u0, b.latitude_argument().u0) << "sat " << sat;
  EXPECT_EQ(a.latitude_argument().du, b.latitude_argument().du) << "sat " << sat;
  EXPECT_EQ(a.latitude_argument().sin_incl, b.latitude_argument().sin_incl)
      << "sat " << sat;
  EXPECT_EQ(a.latitude_argument().radius_m, b.latitude_argument().radius_m)
      << "sat " << sat;
}

// Restores the process-wide SIMD mode on scope exit; force_simd_mode is
// sticky, so every test that flips it must go through this guard.
class SimdModeGuard {
 public:
  SimdModeGuard() : prev_(active_simd_mode()) {}
  ~SimdModeGuard() { force_simd_mode(prev_); }

 private:
  SimdMode prev_;
};

class BackendProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackendProperty, CrossBackendErrorStaysInsideDailyEnvelope) {
  util::Xoshiro256PlusPlus rng(GetParam());
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 24.0 * 3600.0, 120.0);

  for (int trial = 0; trial < 3; ++trial) {
    EphemerisSpec j2{random_circular_leo(rng), kEpoch};
    EphemerisSpec sgp4 = j2;
    sgp4.backend = PropagatorBackend::kSgp4;

    const std::vector<EphemerisSpec> specs{j2, sgp4};
    const EphemerisSet set = EphemerisSet::compute(specs, grid);
    ASSERT_EQ(set.backend(0), PropagatorBackend::kJ2Analytic);
    ASSERT_EQ(set.backend(1), PropagatorBackend::kSgp4);

    double max_error = 0.0;
    for (std::size_t k = 0; k < grid.count; ++k) {
      const util::Vec3 d = set.table(0).position_ecef(k) - set.table(1).position_ecef(k);
      max_error = std::max(max_error, d.norm());
    }
    EXPECT_LT(max_error, kCrossBackendEnvelopeM) << "trial " << trial;
    // The models genuinely differ — SGP4 did not silently fall back to J2.
    EXPECT_GT(max_error, 1.0) << "trial " << trial;
  }
}

TEST_P(BackendProperty, BatchedFillIsBitIdenticalToScalar) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this machine";
  util::Xoshiro256PlusPlus rng(GetParam());
  // Odd satellite count exercises the padded tail lane group; a grid longer
  // than several resync intervals exercises block boundaries.
  std::vector<EphemerisSpec> specs;
  for (int i = 0; i < 9; ++i) specs.push_back({random_circular_leo(rng), kEpoch});
  const double step = rng.uniform(7.0, 120.0);
  const TimeGrid grid =
      TimeGrid::over_duration(kEpoch, step * (64.0 * 4 + 37.0), step);

  SimdModeGuard guard;
  force_simd_mode(SimdMode::kScalar);
  const EphemerisSet scalar = EphemerisSet::compute(specs, grid);
  force_simd_mode(SimdMode::kAvx2);
  const EphemerisSet batched = EphemerisSet::compute(specs, grid);

  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_tables_identical(scalar.table(i), batched.table(i), i);
    // Both modes agree the entry ran on the J2 backend.
    EXPECT_EQ(scalar.backend(i), PropagatorBackend::kJ2Analytic);
    EXPECT_EQ(batched.backend(i), PropagatorBackend::kJ2Analytic);
  }
}

TEST_P(BackendProperty, BatchedFillMatchesPerSatelliteTables) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this machine";
  util::Xoshiro256PlusPlus rng(GetParam());
  std::vector<EphemerisSpec> specs;
  for (int i = 0; i < 5; ++i) specs.push_back({random_circular_leo(rng), kEpoch});
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 3.0 * 3600.0, 30.0);

  SimdModeGuard guard;
  force_simd_mode(SimdMode::kAvx2);
  const EphemerisSet batched = EphemerisSet::compute(specs, grid);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const KeplerianPropagator prop(specs[i].elements, specs[i].epoch,
                                   specs[i].perturbation);
    const EphemerisTable reference = EphemerisTable::compute(prop, grid, batched.gmst());
    expect_tables_identical(reference, batched.table(i), i);
  }
}

TEST_P(BackendProperty, MixedFleetStaysBitIdenticalAcrossModes) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this machine";
  util::Xoshiro256PlusPlus rng(GetParam());
  // Interleave batchable (circular J2) entries with eccentric-J2 and SGP4
  // entries, so the lane partition has to skip non-batchable specs while
  // preserving output order.
  std::vector<EphemerisSpec> specs;
  for (int i = 0; i < 11; ++i) {
    if (i % 3 == 1) {
      specs.push_back({random_eccentric_leo(rng), kEpoch});
    } else if (i % 3 == 2) {
      EphemerisSpec spec{random_circular_leo(rng), kEpoch};
      spec.backend = PropagatorBackend::kSgp4;
      specs.push_back(spec);
    } else {
      specs.push_back({random_circular_leo(rng), kEpoch});
    }
  }
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 2.0 * 3600.0, 45.0);

  SimdModeGuard guard;
  force_simd_mode(SimdMode::kScalar);
  const EphemerisSet scalar = EphemerisSet::compute(specs, grid);
  force_simd_mode(SimdMode::kAvx2);
  const EphemerisSet batched = EphemerisSet::compute(specs, grid);

  ASSERT_EQ(scalar.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_tables_identical(scalar.table(i), batched.table(i), i);
    EXPECT_EQ(scalar.backend(i), batched.backend(i)) << "sat " << i;
    EXPECT_EQ(batched.backend(i), i % 3 == 2 ? PropagatorBackend::kSgp4
                                             : PropagatorBackend::kJ2Analytic)
        << "sat " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

}  // namespace
}  // namespace mpleo::orbit
