// Property/fuzz tests: TLE round-trips over randomized orbital elements, and
// parser robustness against corrupted lines.
#include <gtest/gtest.h>

#include "orbit/tle.hpp"
#include "util/angles.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

class TleRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TleRoundTripProperty, RandomElementsSurviveFormatParse) {
  util::Xoshiro256PlusPlus rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    ClassicalElements coe;
    coe.semi_major_axis_m = rng.uniform(6700e3, 8000e3);
    coe.eccentricity = rng.uniform(0.0, 0.2);
    coe.inclination_rad = util::deg_to_rad(rng.uniform(0.0, 180.0));
    coe.raan_rad = util::deg_to_rad(rng.uniform(0.0, 360.0));
    coe.arg_perigee_rad = util::deg_to_rad(rng.uniform(0.0, 360.0));
    coe.mean_anomaly_rad = util::deg_to_rad(rng.uniform(0.0, 360.0));
    const TimePoint epoch =
        TimePoint::from_iso8601("2024-01-01T00:00:00Z").plus_days(rng.uniform(0.0, 700.0));
    const int catalog = 1 + static_cast<int>(rng.uniform_index(99999));

    const Tle tle = Tle::from_elements(coe, epoch, catalog, "FUZZ");
    const TleLines lines = format_tle(tle);
    ASSERT_EQ(lines.line1.size(), 69u) << lines.line1;
    ASSERT_EQ(lines.line2.size(), 69u) << lines.line2;

    const TleParseResult parsed = parse_tle("FUZZ", lines.line1, lines.line2);
    ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << lines.line1 << "\n" << lines.line2;

    const ClassicalElements back = parsed.tle.to_elements();
    // TLE fields quantise: angles to 1e-4 deg, eccentricity to 1e-7, mean
    // motion to 1e-8 rev/day (~0.5 m in a).
    EXPECT_NEAR(back.semi_major_axis_m, coe.semi_major_axis_m, 5.0);
    EXPECT_NEAR(back.eccentricity, coe.eccentricity, 1e-7);
    EXPECT_NEAR(back.inclination_rad, coe.inclination_rad, util::deg_to_rad(1e-4));
    EXPECT_NEAR(util::angular_separation(back.raan_rad, coe.raan_rad),
                0.0, util::deg_to_rad(1e-4));
    EXPECT_NEAR(util::angular_separation(back.mean_anomaly_rad, coe.mean_anomaly_rad),
                0.0, util::deg_to_rad(1e-4));
    EXPECT_NEAR(parsed.tle.epoch.seconds_since(epoch), 0.0, 0.005);
    EXPECT_EQ(parsed.tle.catalog_number, catalog);
  }
}

TEST_P(TleRoundTripProperty, SingleCharacterCorruptionNeverCrashes) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0xF022);
  const Tle tle = Tle::from_elements(ClassicalElements::circular(550e3, 53.0, 10.0, 20.0),
                                     TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 7,
                                     "VICTIM");
  const TleLines lines = format_tle(tle);
  for (int trial = 0; trial < 50; ++trial) {
    std::string l1 = lines.line1;
    std::string l2 = lines.line2;
    std::string& target = rng.uniform() < 0.5 ? l1 : l2;
    const std::size_t pos = rng.uniform_index(target.size());
    target[pos] = static_cast<char>('!' + rng.uniform_index(94));
    // Must never throw; either parses (corruption hit an ignored column and
    // preserved the checksum) or reports an error.
    const TleParseResult result = parse_tle("VICTIM", l1, l2);
    if (!result.ok) EXPECT_FALSE(result.error.empty());
  }
}

TEST_P(TleRoundTripProperty, CatalogRoundTrip) {
  util::Xoshiro256PlusPlus rng(GetParam() ^ 0xCA7);
  std::vector<Tle> entries;
  const std::size_t count = 1 + rng.uniform_index(8);
  for (std::size_t i = 0; i < count; ++i) {
    entries.push_back(Tle::from_elements(
        ClassicalElements::circular(rng.uniform(500e3, 600e3), rng.uniform(0.0, 98.0),
                                    rng.uniform(0.0, 360.0), rng.uniform(0.0, 360.0)),
        TimePoint::from_iso8601("2024-11-18T00:00:00Z"),
        static_cast<int>(i) + 1, "SAT-" + std::to_string(i)));
  }
  const TleCatalog parsed = parse_tle_catalog(format_tle_catalog(entries));
  EXPECT_TRUE(parsed.errors.empty());
  ASSERT_EQ(parsed.entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].name, entries[i].name);
    EXPECT_EQ(parsed.entries[i].catalog_number, entries[i].catalog_number);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TleRoundTripProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace mpleo::orbit
