// Property tests: consortium membership invariants under random sequences
// of contribute / withdraw / fail operations.
#include <gtest/gtest.h>

#include <set>

#include "constellation/shell.hpp"
#include "core/consortium.hpp"
#include "util/rng.hpp"

namespace mpleo::core {
namespace {

std::vector<constellation::Satellite> some_sats(std::size_t n) {
  std::vector<constellation::Satellite> sats(n);
  for (std::size_t i = 0; i < n; ++i) {
    sats[i].elements = orbit::ClassicalElements::circular(
        550e3, 53.0, 3.0 * static_cast<double>(i), 7.0 * static_cast<double>(i));
  }
  return sats;
}

class ConsortiumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsortiumProperty, InvariantsUnderRandomOperations) {
  util::Xoshiro256PlusPlus rng(GetParam());
  Consortium consortium;
  std::vector<PartyId> parties;
  std::vector<constellation::SatelliteId> all_satellite_ids;

  const std::size_t n_parties = 2 + rng.uniform_index(5);
  for (std::size_t p = 0; p < n_parties; ++p) {
    Party party;
    party.name = "p" + std::to_string(p);
    parties.push_back(consortium.add_party(party));
  }

  for (int op = 0; op < 60; ++op) {
    const double roll = rng.uniform();
    const PartyId party = parties[rng.uniform_index(parties.size())];
    if (roll < 0.5) {
      if (consortium.parties()[party].active) {
        const auto ids =
            consortium.contribute(party, some_sats(1 + rng.uniform_index(5)));
        all_satellite_ids.insert(all_satellite_ids.end(), ids.begin(), ids.end());
      }
    } else if (roll < 0.7) {
      (void)consortium.withdraw_party(party);
    } else if (!all_satellite_ids.empty()) {
      (void)consortium.fail_satellite(
          all_satellite_ids[rng.uniform_index(all_satellite_ids.size())]);
    }

    // Invariant 1: per-party counts sum to the active total.
    std::size_t sum = 0;
    for (PartyId p : parties) sum += consortium.party_satellite_count(p);
    ASSERT_EQ(sum, consortium.active_satellite_count());

    // Invariant 2: stakes sum to 1 when anything is active, and each stake
    // matches its count share.
    if (consortium.active_satellite_count() > 0) {
      double stake_sum = 0.0;
      for (PartyId p : parties) stake_sum += consortium.stake(p);
      ASSERT_NEAR(stake_sum, 1.0, 1e-9);
    }

    // Invariant 3: active_satellites() agrees with the counters and owners
    // are active parties with unique ids.
    const auto active = consortium.active_satellites();
    ASSERT_EQ(active.size(), consortium.active_satellite_count());
    std::set<constellation::SatelliteId> seen;
    for (const auto& sat : active) {
      ASSERT_TRUE(seen.insert(sat.id).second);
      ASSERT_LT(sat.owner_party, parties.size());
    }

    // Invariant 4: withdrawn parties hold nothing.
    for (PartyId p : parties) {
      if (!consortium.parties()[p].active) {
        ASSERT_EQ(consortium.party_satellite_count(p), 0u);
      }
    }

    // Invariant 5: largest_party is consistent with counts.
    const PartyId largest = consortium.largest_party();
    if (largest != Consortium::kInvalidParty) {
      for (PartyId p : parties) {
        ASSERT_GE(consortium.party_satellite_count(largest),
                  consortium.party_satellite_count(p));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsortiumProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mpleo::core
