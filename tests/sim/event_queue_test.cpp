#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mpleo::sim {
namespace {

TEST(EventQueue, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW(q.run_next(), std::logic_error);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.5);
  EXPECT_DOUBLE_EQ(q.run_next(), 4.5);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(1.0);
    q.schedule(2.0, [&] { times.push_back(2.0); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1.0, EventCallback{}), std::invalid_argument);
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace mpleo::sim
