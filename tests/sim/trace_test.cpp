#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace mpleo::sim {
namespace {

TEST(Trace, RecordsEvents) {
  TraceRecorder trace;
  trace.record(1.0, "poc", "receipt verified");
  trace.record(2.0, "market", "trade cleared");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].category, "poc");
  EXPECT_EQ(trace.events()[1].time_s, 2.0);
}

TEST(Trace, FilterByCategory) {
  TraceRecorder trace;
  trace.record(1.0, "a", "x");
  trace.record(2.0, "b", "y");
  trace.record(3.0, "a", "z");
  EXPECT_EQ(trace.count("a"), 2u);
  EXPECT_EQ(trace.count("b"), 1u);
  EXPECT_EQ(trace.count("missing"), 0u);
  const auto only_a = trace.by_category("a");
  ASSERT_EQ(only_a.size(), 2u);
  EXPECT_EQ(only_a[1].message, "z");
}

TEST(Trace, ToStringFormatsLines) {
  TraceRecorder trace;
  trace.record(1.5, "withdrawal", "party 3 exits");
  const std::string out = trace.to_string();
  EXPECT_NE(out.find("t=1.5s"), std::string::npos);
  EXPECT_NE(out.find("[withdrawal]"), std::string::npos);
  EXPECT_NE(out.find("party 3 exits"), std::string::npos);
}

TEST(Trace, ClearResets) {
  TraceRecorder trace;
  trace.record(1.0, "a", "x");
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, ToJsonEmptyRecorder) {
  const TraceRecorder trace;
  EXPECT_EQ(trace.to_json(),
            "{\n"
            "  \"event_count\": 0,\n"
            "  \"events\": []\n"
            "}");
}

TEST(Trace, ToJsonEscapesAndIndents) {
  TraceRecorder trace;
  trace.record(1.5, "poc", "line\none \"quoted\"");
  const std::string json = trace.to_json(2);
  EXPECT_NE(json.find("\"event_count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"time_s\": 1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;       // newline escaped
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
  // base_indent prefixes every line after the first, so the object nests
  // inside an outer report at that depth.
  EXPECT_NE(json.find("\n    \"events\": ["), std::string::npos) << json;
}

}  // namespace
}  // namespace mpleo::sim
