#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mpleo::sim {
namespace {

TEST(SimEngine, ClockStartsAtZero) {
  SimEngine engine;
  EXPECT_EQ(engine.now(), 0.0);
}

TEST(SimEngine, RunUntilAdvancesClock) {
  SimEngine engine;
  std::vector<double> fired;
  engine.at(5.0, [&] { fired.push_back(5.0); });
  engine.at(15.0, [&] { fired.push_back(15.0); });
  engine.run_until(10.0);
  EXPECT_EQ(fired, (std::vector<double>{5.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_until(20.0);
  EXPECT_EQ(fired.size(), 2u);
}

TEST(SimEngine, AfterUsesRelativeDelay) {
  SimEngine engine;
  double fired_at = -1.0;
  engine.at(10.0, [&] { engine.after(5.0, [&] { fired_at = engine.now(); }); });
  engine.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SimEngine, EveryCreatesPeriodicEvents) {
  SimEngine engine;
  int count = 0;
  engine.every(10.0, 55.0, [&] { ++count; });
  engine.run_all();
  EXPECT_EQ(count, 5);  // t = 10,20,30,40,50
  EXPECT_DOUBLE_EQ(engine.now(), 50.0);
}

TEST(SimEngine, EveryFiresOnExactMultiplesWithoutDrift) {
  // Accumulating t += period drifts by an ulp per firing; 0.1 is the classic
  // non-representable period. Every firing must land on exactly now + k *
  // period, and the count must be exact even near until_s.
  SimEngine engine;
  std::vector<double> fired;
  engine.every(0.1, 10.0, [&] { fired.push_back(engine.now()); });
  engine.run_all();
  ASSERT_EQ(fired.size(), 99u);  // t = 0.1 .. 9.9; 10.0 is excluded
  for (std::size_t k = 0; k < fired.size(); ++k) {
    EXPECT_EQ(fired[k], 0.1 * static_cast<double>(k + 1)) << "firing " << k;
  }
}

TEST(SimEngine, EveryAnchorsAtCurrentTime) {
  SimEngine engine;
  std::vector<double> fired;
  engine.at(7.0, [&] {
    engine.every(2.0, 14.0, [&] { fired.push_back(engine.now()); });
  });
  engine.run_all();
  EXPECT_EQ(fired, (std::vector<double>{9.0, 11.0, 13.0}));
}

TEST(SimEngine, RejectsPastAndNegative) {
  SimEngine engine;
  engine.at(10.0, [] {});
  engine.run_until(10.0);
  EXPECT_THROW(engine.at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.every(0.0, 10.0, [] {}), std::invalid_argument);
}

TEST(SimEngine, RunUntilWithEmptyQueueStillAdvances) {
  SimEngine engine;
  engine.run_until(42.0);
  EXPECT_DOUBLE_EQ(engine.now(), 42.0);
}

}  // namespace
}  // namespace mpleo::sim
