// ScenarioBuilder: fluent programmatic construction funneled through the
// same unified core::ConfigIssue validation the flag parser uses — the two
// front-ends must produce identical scenarios and identical error reports.
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::sim {
namespace {

Scenario parse(std::initializer_list<const char*> args, Scenario defaults = {}) {
  std::vector<const char*> argv{"bench"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_scenario(static_cast<int>(argv.size()), argv.data(),
                        std::move(defaults));
}

TEST(ScenarioBuilder, FluentSettersCoverEveryKnob) {
  const Scenario s = ScenarioBuilder()
                         .epoch_iso8601("2025-01-01T00:00:00Z")
                         .duration_days(2.0)
                         .step_seconds(30.0)
                         .elevation_mask_deg(15.0)
                         .runs(50)
                         .seed(99)
                         .threads(4)
                         .include_gen2(false)
                         .propagator(orbit::PropagatorBackend::kSgp4)
                         .adversary(AdversaryMode::kForge)
                         .adversary_fraction(0.5)
                         .adversary_intensity(2.0)
                         .adversary_seed(7)
                         .rf(true)
                         .audit_doppler(true)
                         .build();
  EXPECT_EQ(s.epoch.to_civil().year, 2025);
  EXPECT_DOUBLE_EQ(s.duration_s, 2.0 * 86400.0);
  EXPECT_DOUBLE_EQ(s.step_s, 30.0);
  EXPECT_DOUBLE_EQ(s.elevation_mask_deg, 15.0);
  EXPECT_EQ(s.runs, 50u);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.threads, 4u);
  EXPECT_FALSE(s.include_gen2_catalog);
  EXPECT_EQ(s.propagator, orbit::PropagatorBackend::kSgp4);
  EXPECT_EQ(s.adversary_mode, AdversaryMode::kForge);
  EXPECT_DOUBLE_EQ(s.adversary_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.adversary_intensity, 2.0);
  EXPECT_EQ(s.adversary_seed, 7u);
  EXPECT_TRUE(s.rf);
  EXPECT_TRUE(s.audit_doppler);
}

TEST(ScenarioBuilder, BuildValidatesAndThrowsJoinedIssues) {
  ScenarioBuilder builder;
  builder.step_seconds(0.0).runs(0);
  const std::vector<core::ConfigIssue> issues = builder.issues();
  EXPECT_EQ(issues.size(), 2u);
  EXPECT_TRUE(core::has_errors(issues));
  try {
    (void)builder.build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("step_s"), std::string::npos);
    EXPECT_NE(msg.find("runs"), std::string::npos);
  }
}

TEST(ScenarioBuilder, ScalePresetPinsMegaWindowAndSizes) {
  const Scenario smoke = ScenarioBuilder().scale(ScalePreset::kMegaSmoke).build();
  EXPECT_EQ(smoke.scale, ScalePreset::kMegaSmoke);
  EXPECT_DOUBLE_EQ(smoke.duration_s, 86400.0);
  EXPECT_DOUBLE_EQ(smoke.step_s, 60.0);
  EXPECT_EQ(smoke.terminal_count, 50'000u);
  EXPECT_EQ(smoke.station_count, 128u);

  const Scenario mega = ScenarioBuilder().scale(ScalePreset::kMega).build();
  EXPECT_EQ(mega.terminal_count, 1'000'000u);

  // The preset applies immediately, so later setters can still override.
  const Scenario tweaked = ScenarioBuilder()
                               .scale(ScalePreset::kMegaSmoke)
                               .terminal_count(1234)
                               .build();
  EXPECT_EQ(tweaked.terminal_count, 1234u);

  // Back to reference wipes the workload sizes.
  const Scenario reference = ScenarioBuilder()
                                 .scale(ScalePreset::kMegaSmoke)
                                 .scale(ScalePreset::kReference)
                                 .build();
  EXPECT_EQ(reference.terminal_count, 0u);
  EXPECT_EQ(reference.station_count, 0u);
}

TEST(ScenarioBuilder, QuickAndFullMatchFlagPresets) {
  const Scenario quick = ScenarioBuilder().quick().build();
  EXPECT_EQ(quick.runs, 5u);
  EXPECT_DOUBLE_EQ(quick.duration_s, 2.0 * 86400.0);
  EXPECT_DOUBLE_EQ(quick.step_s, 120.0);
  EXPECT_EQ(ScenarioBuilder().full_fidelity().build().runs, 100u);
}

TEST(ScenarioBuilder, FlagParserIsAFrontEndOverTheBuilder) {
  // The same configuration expressed as flags and as fluent calls must be
  // indistinguishable. Both front-ends apply --scale / .scale() at the point
  // it appears, so later step/days overrides win in both — same order here.
  const Scenario via_flags =
      parse({"--runs=50", "--seed=99", "--threads=4", "--scale=mega-smoke",
             "--days=2", "--step=30", "--mask=15"});
  const Scenario via_builder = ScenarioBuilder()
                                   .runs(50)
                                   .seed(99)
                                   .threads(4)
                                   .scale(ScalePreset::kMegaSmoke)
                                   .duration_days(2.0)
                                   .step_seconds(30.0)
                                   .elevation_mask_deg(15.0)
                                   .build();
  EXPECT_EQ(via_flags.runs, via_builder.runs);
  EXPECT_EQ(via_flags.seed, via_builder.seed);
  EXPECT_EQ(via_flags.threads, via_builder.threads);
  EXPECT_EQ(via_flags.scale, via_builder.scale);
  EXPECT_EQ(via_flags.terminal_count, via_builder.terminal_count);
  EXPECT_EQ(via_flags.station_count, via_builder.station_count);
  EXPECT_DOUBLE_EQ(via_flags.duration_s, via_builder.duration_s);
  EXPECT_DOUBLE_EQ(via_flags.step_s, via_builder.step_s);
  EXPECT_DOUBLE_EQ(via_flags.elevation_mask_deg, via_builder.elevation_mask_deg);
}

TEST(ScenarioBuilder, ParserValidatesThroughTheSamePath) {
  // An invalid value reaching the parser surfaces as the same unified
  // ConfigIssue report ScenarioBuilder::build throws.
  EXPECT_THROW((void)parse({"--step=0"}), std::invalid_argument);
  EXPECT_THROW((void)parse({"--mask=95"}), std::invalid_argument);
  try {
    (void)parse({"--step=-5"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("step_s"), std::string::npos);
  }
}

TEST(ScenarioBuilder, ScaleFlagParsesAllPresets) {
  EXPECT_EQ(parse({"--scale=reference"}).scale, ScalePreset::kReference);
  EXPECT_EQ(parse({"--scale=mega-smoke"}).scale, ScalePreset::kMegaSmoke);
  EXPECT_EQ(parse({"--scale=mega"}).scale, ScalePreset::kMega);
  EXPECT_THROW((void)parse({"--scale=giga"}), std::invalid_argument);
}

TEST(ScenarioBuilder, DescribeMentionsScaleOnlyWhenNotReference) {
  EXPECT_EQ(describe(ScenarioBuilder().build()).find("scale="), std::string::npos);
  const std::string mega = describe(ScenarioBuilder().scale(ScalePreset::kMegaSmoke).build());
  EXPECT_NE(mega.find("scale=mega-smoke"), std::string::npos);
  EXPECT_NE(mega.find("terminals=50000"), std::string::npos);
}

TEST(ScenarioBuilder, SeedingFromExistingScenarioPreservesFields) {
  Scenario base;
  base.seed = 1234;
  base.threads = 8;
  const Scenario rebuilt = ScenarioBuilder(base).runs(3).build();
  EXPECT_EQ(rebuilt.seed, 1234u);
  EXPECT_EQ(rebuilt.threads, 8u);
  EXPECT_EQ(rebuilt.runs, 3u);
}

}  // namespace
}  // namespace mpleo::sim
