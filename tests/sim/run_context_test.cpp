// RunContext facade contracts: pool sizing from Scenario.threads, owned vs
// borrowed pools and fault timelines, and default-construction semantics.
#include "sim/run_context.hpp"

#include <gtest/gtest.h>

namespace mpleo::sim {
namespace {

TEST(RunContext, DefaultIsSerialHealthyAndEmpty) {
  RunContext context;
  EXPECT_EQ(context.pool(), nullptr);
  EXPECT_EQ(context.thread_count(), 1u);
  EXPECT_EQ(context.faults(), nullptr);
  EXPECT_TRUE(context.metrics().empty());
  EXPECT_TRUE(context.trace().events().empty());
  EXPECT_EQ(context.scenario().threads, 1u);
}

TEST(RunContext, ScenarioThreadsSizesThePool) {
  Scenario serial;
  serial.threads = 1;
  EXPECT_EQ(RunContext(serial).pool(), nullptr);

  Scenario three;
  three.threads = 3;
  RunContext pooled(three);
  ASSERT_NE(pooled.pool(), nullptr);
  EXPECT_EQ(pooled.thread_count(), 3u);

  Scenario hardware;
  hardware.threads = 0;
  RunContext hw(hardware);
  ASSERT_NE(hw.pool(), nullptr);
  EXPECT_GE(hw.thread_count(), 1u);
}

TEST(RunContext, GridComesFromScenario) {
  Scenario s;
  s.duration_s = 3600.0;
  s.step_s = 60.0;
  const RunContext context(s);
  EXPECT_EQ(context.grid().count, 61u);
}

TEST(RunContext, UseThreadsReplacesThePool) {
  RunContext context;
  context.use_threads(2);
  ASSERT_NE(context.pool(), nullptr);
  EXPECT_EQ(context.thread_count(), 2u);
  context.use_threads(1);  // back to serial tears the pool down
  EXPECT_EQ(context.pool(), nullptr);
  EXPECT_EQ(context.thread_count(), 1u);
}

TEST(RunContext, UsePoolBorrows) {
  util::ThreadPool external(2);
  RunContext context;
  context.use_pool(&external);
  EXPECT_EQ(context.pool(), &external);
  EXPECT_EQ(context.thread_count(), 2u);
  context.use_pool(nullptr);
  EXPECT_EQ(context.pool(), nullptr);
}

TEST(RunContext, FaultsOwnedByValue) {
  const orbit::TimeGrid grid = Scenario{}.grid();
  fault::FaultTimeline timeline(grid, 4, 0);
  timeline.add_satellite_outage(1, 0.0, 3600.0);

  RunContext context;
  context.use_faults(std::move(timeline));
  ASSERT_NE(context.faults(), nullptr);
  EXPECT_FALSE(context.faults()->satellite_available(1, 0));
  context.clear_faults();
  EXPECT_EQ(context.faults(), nullptr);
}

TEST(RunContext, FaultsBorrowedByPointer) {
  const orbit::TimeGrid grid = Scenario{}.grid();
  const fault::FaultTimeline timeline(grid, 4, 0);
  RunContext context;
  context.use_faults(&timeline);
  EXPECT_EQ(context.faults(), &timeline);
  context.use_faults(nullptr);
  EXPECT_EQ(context.faults(), nullptr);
}

TEST(RunContext, BorrowingReplacesOwnedFaults) {
  const orbit::TimeGrid grid = Scenario{}.grid();
  RunContext context;
  context.use_faults(fault::FaultTimeline(grid, 2, 0));
  const fault::FaultTimeline borrowed(grid, 3, 0);
  context.use_faults(&borrowed);  // borrowing releases the owned timeline
  EXPECT_EQ(context.faults(), &borrowed);
  context.use_faults(fault::FaultTimeline(grid, 5, 0));  // owning un-borrows
  ASSERT_NE(context.faults(), nullptr);
  EXPECT_NE(context.faults(), &borrowed);
  EXPECT_EQ(context.faults()->satellite_count(), 5u);
}

TEST(RunContext, MutatorsChain) {
  util::ThreadPool pool(2);
  RunContext context;
  context.use_pool(&pool).use_faults(nullptr).clear_faults();
  EXPECT_EQ(context.pool(), &pool);
}

TEST(RunContext, MetricsAndTraceAreLive) {
  RunContext context;
  context.metrics().counter("test.count").add(3);
  context.trace().record(1.0, "test", "hello");
  EXPECT_EQ(context.metrics().counter_value("test.count"), 3u);
  EXPECT_EQ(context.trace().count("test"), 1u);
}

}  // namespace
}  // namespace mpleo::sim
