#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::sim {
namespace {

Scenario parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"bench"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_scenario(static_cast<int>(argv.size()), argv.data());
}

TEST(Scenario, DefaultsMatchPaperSetup) {
  const Scenario s;
  EXPECT_DOUBLE_EQ(s.duration_s, 7.0 * 86400.0);
  EXPECT_DOUBLE_EQ(s.step_s, 60.0);
  EXPECT_DOUBLE_EQ(s.elevation_mask_deg, 25.0);
  EXPECT_EQ(s.epoch.to_civil().year, 2024);
  EXPECT_EQ(s.epoch.to_civil().month, 11);
  EXPECT_EQ(s.epoch.to_civil().day, 18);
}

TEST(Scenario, GridSpansWindow) {
  Scenario s;
  s.duration_s = 3600.0;
  s.step_s = 60.0;
  const orbit::TimeGrid grid = s.grid();
  EXPECT_EQ(grid.count, 61u);
}

TEST(Scenario, ParsesFlags) {
  const Scenario s = parse({"--runs=50", "--step=30", "--mask=15", "--seed=99", "--days=2"});
  EXPECT_EQ(s.runs, 50u);
  EXPECT_DOUBLE_EQ(s.step_s, 30.0);
  EXPECT_DOUBLE_EQ(s.elevation_mask_deg, 15.0);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_DOUBLE_EQ(s.duration_s, 2.0 * 86400.0);
}

TEST(Scenario, FullRestoresPaperRuns) {
  EXPECT_EQ(parse({"--full"}).runs, 100u);
}

TEST(Scenario, QuickReducesEverything) {
  const Scenario s = parse({"--quick"});
  EXPECT_EQ(s.runs, 5u);
  EXPECT_DOUBLE_EQ(s.duration_s, 2.0 * 86400.0);
  EXPECT_DOUBLE_EQ(s.step_s, 120.0);
}

TEST(Scenario, NoGen2Flag) {
  EXPECT_TRUE(parse({}).include_gen2_catalog);
  EXPECT_FALSE(parse({"--no-gen2"}).include_gen2_catalog);
}

TEST(Scenario, EpochFlag) {
  const Scenario s = parse({"--epoch=2025-01-01T00:00:00Z"});
  EXPECT_EQ(s.epoch.to_civil().year, 2025);
}

TEST(Scenario, RejectsUnknownAndInvalid) {
  EXPECT_THROW(parse({"--bogus"}), std::invalid_argument);
  EXPECT_THROW(parse({"--runs=abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--runs=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--step=-5"}), std::invalid_argument);
  EXPECT_THROW(parse({"--days=0"}), std::invalid_argument);
}

TEST(Scenario, AdversaryFlags) {
  EXPECT_EQ(Scenario{}.adversary_mode, AdversaryMode::kOff);  // default: bit-identical
  const Scenario s = parse({"--adversary=mixed", "--adversary-fraction=0.5",
                            "--adversary-intensity=2", "--adversary-seed=77"});
  EXPECT_EQ(s.adversary_mode, AdversaryMode::kMixed);
  EXPECT_DOUBLE_EQ(s.adversary_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.adversary_intensity, 2.0);
  EXPECT_EQ(s.adversary_seed, 77u);

  EXPECT_EQ(parse({"--adversary=off"}).adversary_mode, AdversaryMode::kOff);
  EXPECT_EQ(parse({"--adversary=forge"}).adversary_mode, AdversaryMode::kForge);
  EXPECT_EQ(parse({"--adversary=inflate"}).adversary_mode, AdversaryMode::kInflate);
  EXPECT_EQ(parse({"--adversary=withhold"}).adversary_mode, AdversaryMode::kWithhold);
  EXPECT_EQ(parse({"--adversary=misreport"}).adversary_mode, AdversaryMode::kMisreport);
  EXPECT_EQ(parse({"--adversary=collude"}).adversary_mode, AdversaryMode::kCollude);
  EXPECT_EQ(parse({"--adversary=jamming"}).adversary_mode, AdversaryMode::kJamming);
  EXPECT_EQ(parse({"--adversary=spectrum_squat"}).adversary_mode,
            AdversaryMode::kSpectrumSquat);
}

TEST(Scenario, RfFlags) {
  // Both default off: an RF-disabled run is bit-identical to the pre-RF path.
  EXPECT_FALSE(Scenario{}.rf);
  EXPECT_FALSE(Scenario{}.audit_doppler);
  const Scenario s = parse({"--rf=on", "--audit-doppler=on"});
  EXPECT_TRUE(s.rf);
  EXPECT_TRUE(s.audit_doppler);
  EXPECT_FALSE(parse({"--rf=off"}).rf);
  EXPECT_FALSE(parse({"--audit-doppler=off"}).audit_doppler);
}

TEST(Scenario, RfFlagsRejectUnknownValues) {
  EXPECT_THROW(parse({"--rf=maybe"}), std::invalid_argument);
  EXPECT_THROW(parse({"--audit-doppler=1"}), std::invalid_argument);
  try {
    parse({"--rf=maybe"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'maybe'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--rf"), std::string::npos) << msg;
  }
}

TEST(Scenario, FlagHelpListsRfFlags) {
  const std::string help = flag_help();
  EXPECT_NE(help.find("--rf="), std::string::npos);
  EXPECT_NE(help.find("--audit-doppler="), std::string::npos);
}

TEST(Scenario, DescribeMentionsRfOnlyWhenArmed) {
  EXPECT_EQ(describe(Scenario{}).find("rf="), std::string::npos);
  EXPECT_EQ(describe(Scenario{}).find("audit-doppler="), std::string::npos);
  const std::string armed = describe(parse({"--rf=on", "--audit-doppler=on"}));
  EXPECT_NE(armed.find("rf=on"), std::string::npos) << armed;
  EXPECT_NE(armed.find("audit-doppler=on"), std::string::npos) << armed;
}

TEST(Scenario, AdversaryFlagsValidated) {
  EXPECT_THROW(parse({"--adversary=sabotage"}), std::invalid_argument);
  EXPECT_THROW(parse({"--adversary-fraction=1.5"}), std::invalid_argument);
  EXPECT_THROW(parse({"--adversary-fraction=-0.1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--adversary-fraction=nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--adversary-intensity=-1"}), std::invalid_argument);

  // An unknown mode's error names the valid values and the full flag table.
  try {
    parse({"--adversary=sabotage"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'sabotage'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("misreport"), std::string::npos) << msg;
    EXPECT_NE(msg.find(flag_help()), std::string::npos) << msg;
  }
}

TEST(Scenario, DescribeMentionsAdversaryOnlyWhenArmed) {
  EXPECT_EQ(describe(Scenario{}).find("adversary="), std::string::npos);
  const std::string armed = describe(parse({"--adversary=forge"}));
  EXPECT_NE(armed.find("adversary=forge"), std::string::npos) << armed;
}

TEST(Scenario, ThreadsFlag) {
  EXPECT_EQ(Scenario{}.threads, 1u);  // default: serial, no pool
  EXPECT_EQ(parse({"--threads=4"}).threads, 4u);
  EXPECT_EQ(parse({"--threads=0"}).threads, 0u);  // hardware concurrency
  EXPECT_THROW(parse({"--threads=abc"}), std::invalid_argument);
}

TEST(Scenario, UnknownFlagErrorListsEveryValidFlag) {
  try {
    parse({"--bogus"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown flag: --bogus"), std::string::npos) << msg;
    // The message must render the same table flag_help() does, so the flag
    // list in errors can never drift from the parser's flag set.
    EXPECT_NE(msg.find(flag_help()), std::string::npos) << msg;
    for (const char* flag : {"--runs=", "--step=", "--mask=", "--seed=", "--days=",
                             "--epoch=", "--threads=", "--full", "--quick", "--no-gen2"}) {
      EXPECT_NE(msg.find(flag), std::string::npos) << "missing " << flag;
    }
  }
}

TEST(Scenario, DescribeMentionsThreadsOnlyWhenNotSerial) {
  Scenario s;
  EXPECT_EQ(describe(s).find("threads"), std::string::npos);
  s.threads = 0;
  EXPECT_NE(describe(s).find("threads=hw"), std::string::npos);
  s.threads = 6;
  EXPECT_NE(describe(s).find("threads=6"), std::string::npos);
}

TEST(Scenario, PropagatorFlag) {
  EXPECT_EQ(Scenario{}.propagator, orbit::PropagatorBackend::kJ2Analytic);
  EXPECT_EQ(parse({"--propagator=sgp4"}).propagator, orbit::PropagatorBackend::kSgp4);
  EXPECT_EQ(parse({"--propagator=j2"}).propagator,
            orbit::PropagatorBackend::kJ2Analytic);
  EXPECT_THROW(parse({"--propagator=sgp8"}), std::invalid_argument);
}

TEST(Scenario, DescribeMentionsPropagatorOnlyWhenNotDefault) {
  EXPECT_EQ(describe(Scenario{}).find("propagator"), std::string::npos);
  const std::string desc = describe(parse({"--propagator=sgp4"}));
  EXPECT_NE(desc.find("propagator=sgp4"), std::string::npos);
}

TEST(Scenario, DescribeMentionsKeyParameters) {
  const std::string desc = describe(Scenario{});
  EXPECT_NE(desc.find("2024-11-18"), std::string::npos);
  EXPECT_NE(desc.find("mask=25"), std::string::npos);
  EXPECT_NE(desc.find("runs=20"), std::string::npos);
}

}  // namespace
}  // namespace mpleo::sim
