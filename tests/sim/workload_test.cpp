// sim::build_workload: the one place scale presets turn into fleets. The
// mega presets must be deterministic (fixed site seeds), correctly sized,
// and carry the footprint-stream scheduler preset; the reference preset must
// reproduce the 500-satellite acceptance fleet the scheduler-compare bench
// has always used.
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::sim {
namespace {

Scenario smoke_scenario() {
  return ScenarioBuilder().scale(ScalePreset::kMegaSmoke).build();
}

TEST(Workload, MegaSmokeSizesAndOwners) {
  const Workload w = build_workload(smoke_scenario());
  EXPECT_EQ(w.satellites.size(), 3000u);
  EXPECT_EQ(w.terminals.size(), 50'000u);
  EXPECT_EQ(w.stations.size(), 128u);
  EXPECT_EQ(w.party_count, 4u);

  // Owners round-robin over the parties on every fleet axis.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(w.satellites[i].owner_party, i % 4);
    EXPECT_EQ(w.terminals[i].owner_party, i % 4);
    EXPECT_EQ(w.stations[i].owner_party, i % 4);
  }
  EXPECT_GT(w.terminals.front().demand_bps, 0.0);

  // The mega streaming preset rides in the workload's scheduler config.
  EXPECT_EQ(w.scheduler.visibility_mode, net::VisibilityMode::kFootprintStream);
  EXPECT_EQ(w.scheduler.stream_chunk_steps, 8u);
  EXPECT_EQ(w.scheduler.stream_slots, 2u);
  EXPECT_EQ(w.scheduler.max_candidates_per_terminal, 4u);
}

TEST(Workload, MegaSitesAreDeterministic) {
  const Workload a = build_workload(smoke_scenario());
  const Workload b = build_workload(smoke_scenario());
  ASSERT_EQ(a.terminals.size(), b.terminals.size());
  for (std::size_t i = 0; i < a.terminals.size(); i += 997) {
    EXPECT_EQ(a.terminals[i].location.latitude_rad,
              b.terminals[i].location.latitude_rad);
    EXPECT_EQ(a.terminals[i].location.longitude_rad,
              b.terminals[i].location.longitude_rad);
  }
  for (std::size_t i = 0; i < a.stations.size(); ++i) {
    EXPECT_EQ(a.stations[i].location.latitude_rad,
              b.stations[i].location.latitude_rad);
  }
}

TEST(Workload, MegaUsesFullGen2Catalog) {
  // Size only — actually scheduling 1M terminals is the bench's job.
  Scenario mega = ScenarioBuilder().scale(ScalePreset::kMega).build();
  mega.terminal_count = 1000;  // shrink sites; the catalog stays full-scale
  const Workload w = build_workload(mega);
  EXPECT_EQ(w.satellites.size(), 29'520u);
  EXPECT_EQ(w.terminals.size(), 1000u);
}

TEST(Workload, ReferenceReproducesAcceptanceFleet) {
  const Workload w = build_workload(ScenarioBuilder().build());
  EXPECT_EQ(w.satellites.size(), 500u);  // Walker 25 planes x 20 sats
  EXPECT_EQ(w.terminals.size(), 200u);
  EXPECT_EQ(w.stations.size(), 20u);
  // Reference scale keeps the scheduler on defaults (pair-mask auto mode).
  EXPECT_EQ(w.scheduler.visibility_mode, net::SchedulerConfig{}.visibility_mode);
  EXPECT_EQ(w.scheduler.max_candidates_per_terminal,
            net::SchedulerConfig{}.max_candidates_per_terminal);
}

TEST(Workload, InvalidScenarioThrowsUnifiedReport) {
  Scenario broken = smoke_scenario();
  broken.terminal_count = 0;
  try {
    (void)build_workload(broken);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("terminal_count"), std::string::npos);
  }
}

}  // namespace
}  // namespace mpleo::sim
