#include "net/link_budget.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

namespace mpleo::net {
namespace {

TEST(DbConversion, RoundTrips) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-9);
  EXPECT_NEAR(db_to_linear(3.0), 1.995, 0.01);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-9);
  for (double db : {-30.0, -3.0, 0.0, 7.5, 40.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}

TEST(Fspl, KnownValue) {
  // 1000 km at 11.7 GHz: FSPL = 20log10(4*pi*d*f/c) ~ 173.8 dB.
  EXPECT_NEAR(free_space_path_loss_db(1000e3, 11.7e9), 173.8, 0.1);
}

TEST(Fspl, ScalesWithDistanceAndFrequency) {
  const double base = free_space_path_loss_db(550e3, 14.0e9);
  // Doubling distance adds ~6.02 dB.
  EXPECT_NEAR(free_space_path_loss_db(1100e3, 14.0e9) - base, 6.0206, 1e-3);
  // Doubling frequency adds ~6.02 dB.
  EXPECT_NEAR(free_space_path_loss_db(550e3, 28.0e9) - base, 6.0206, 1e-3);
}

TEST(Fspl, RejectsNonPositive) {
  EXPECT_THROW(free_space_path_loss_db(0.0, 1e9), std::invalid_argument);
  EXPECT_THROW(free_space_path_loss_db(1e5, -1.0), std::invalid_argument);
}

TEST(Shannon, CapacityBehaviour) {
  EXPECT_NEAR(shannon_capacity_bps(1.0, 1e6), 1e6, 1.0);      // SNR 0 dB -> 1 bit/s/Hz
  EXPECT_NEAR(shannon_capacity_bps(3.0, 1e6), 2e6, 1.0);      // SNR ~4.8 dB -> 2 bit/s/Hz
  EXPECT_EQ(shannon_capacity_bps(0.0, 1e6), 0.0);
  EXPECT_THROW(shannon_capacity_bps(-0.5, 1e6), std::invalid_argument);
  EXPECT_THROW(shannon_capacity_bps(1.0, 0.0), std::invalid_argument);
}

TEST(RadioConfig, EirpIsPowerPlusGain) {
  RadioConfig cfg;
  cfg.transmit_power_dbw = 10.0;
  cfg.transmit_gain_dbi = 30.0;
  EXPECT_DOUBLE_EQ(cfg.eirp_dbw(), 40.0);
}

TEST(ComputeLink, BudgetChainsConsistently) {
  RadioConfig tx;
  tx.transmit_power_dbw = 3.0;
  tx.transmit_gain_dbi = 33.0;
  tx.frequency_hz = 14.0e9;
  tx.misc_losses_db = 2.0;
  RadioConfig rx;
  rx.receive_gain_dbi = 37.0;
  rx.system_noise_temp_k = 550.0;
  rx.bandwidth_hz = 62.5e6;

  const LinkBudget budget = compute_link(tx, rx, 800e3);
  EXPECT_DOUBLE_EQ(budget.eirp_dbw, 36.0);
  EXPECT_NEAR(budget.received_power_dbw,
              budget.eirp_dbw - budget.path_loss_db + 37.0 - 2.0, 1e-9);
  EXPECT_NEAR(budget.snr_db, budget.received_power_dbw - budget.noise_power_dbw, 1e-9);
  EXPECT_GT(budget.snr_db, 0.0);  // a sane LEO uplink closes the link
  EXPECT_GT(budget.shannon_capacity_bps, 0.0);
}

TEST(ComputeLink, LongerPathLowersSnr) {
  RadioConfig tx, rx;
  const LinkBudget near_budget = compute_link(tx, rx, 550e3);
  const LinkBudget far_budget = compute_link(tx, rx, 2000e3);
  EXPECT_GT(near_budget.snr_db, far_budget.snr_db);
  EXPECT_GT(near_budget.shannon_capacity_bps, far_budget.shannon_capacity_bps);
}

TEST(HopEvaluator, BitIdenticalToComputeLink) {
  // The pipelined scheduler's bit-identity contract rests on the hoisted hop
  // evaluation reproducing compute_link exactly, not just approximately.
  RadioConfig terminal, transponder_rx, station;
  terminal.transmit_power_dbw = 3.0;
  terminal.transmit_gain_dbi = 33.0;
  terminal.misc_losses_db = 2.0;
  terminal.frequency_hz = 14.0e9;
  transponder_rx.receive_gain_dbi = 37.0;
  transponder_rx.system_noise_temp_k = 550.0;
  transponder_rx.bandwidth_hz = 62.5e6;
  station.receive_gain_dbi = 45.0;
  station.system_noise_temp_k = 150.0;
  station.bandwidth_hz = 125e6;

  for (const auto& [tx, rx] : {std::pair{terminal, transponder_rx},
                               std::pair{transponder_rx, station},
                               std::pair{station, terminal}}) {
    const HopEvaluator hop = HopEvaluator::make(tx, rx);
    for (double distance_m = 400e3; distance_m < 3000e3; distance_m += 73e3) {
      const LinkBudget budget = compute_link(tx, rx, distance_m);
      const double snr = hop.snr_linear(distance_m);
      EXPECT_EQ(snr, budget.snr_linear) << "distance " << distance_m;
      EXPECT_EQ(hop.shannon_bps(snr), budget.shannon_capacity_bps)
          << "distance " << distance_m;
    }
  }
}

TEST(ComputeLink, HotterReceiverLowersSnr) {
  RadioConfig tx, cold, hot;
  cold.system_noise_temp_k = 150.0;
  hot.system_noise_temp_k = 600.0;
  EXPECT_GT(compute_link(tx, cold, 550e3).snr_db, compute_link(tx, hot, 550e3).snr_db);
  // 4x temperature = +6.02 dB noise.
  EXPECT_NEAR(compute_link(tx, cold, 550e3).snr_db - compute_link(tx, hot, 550e3).snr_db,
              6.0206, 1e-3);
}

}  // namespace
}  // namespace mpleo::net
