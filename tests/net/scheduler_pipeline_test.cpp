// Equivalence tests for the two-phase pipelined scheduler: on randomized
// fleets — mixed ownership (including unowned satellites), degraded beams,
// re-acquisition backoff, spare-priority weights, and parties with no ground
// stations — run() must reproduce run_reference() bit for bit, down to link
// ordering, faulted and unfaulted, for every thread-pool size.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/timeline.hpp"
#include "net/scheduler.hpp"
#include "orbit/geodesy.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mpleo::net {
namespace {

using constellation::Satellite;

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

struct RandomFleet {
  SchedulerConfig config;
  std::vector<Satellite> satellites;
  std::vector<Terminal> terminals;
  std::vector<GroundStation> stations;
  std::size_t party_count = 0;
};

RandomFleet make_fleet(std::uint64_t seed) {
  util::Xoshiro256PlusPlus rng(seed);
  RandomFleet f;
  f.party_count = 2 + rng.uniform_index(3);
  f.config.beams_per_satellite = 1 + static_cast<int>(rng.uniform_index(3));
  f.config.reacquisition_backoff_steps = rng.uniform_index(4);
  if (rng.uniform() < 0.5) {
    for (std::size_t p = 0; p < f.party_count; ++p) {
      f.config.spare_priority_by_party.push_back(rng.uniform(0.0, 5.0));
    }
  }

  const std::size_t n_sats = 3 + rng.uniform_index(6);
  for (std::size_t i = 0; i < n_sats; ++i) {
    Satellite sat;
    sat.id = static_cast<constellation::SatelliteId>(i);
    sat.owner_party = rng.uniform() < 0.15
                          ? Satellite::kUnowned
                          : static_cast<std::uint32_t>(rng.uniform_index(f.party_count));
    sat.elements = orbit::ClassicalElements::circular(
        rng.uniform(500e3, 700e3), rng.uniform(40.0, 70.0), rng.uniform(0.0, 360.0),
        rng.uniform(0.0, 360.0));
    sat.epoch = kEpoch;
    f.satellites.push_back(sat);
  }

  const std::size_t n_terms = 2 + rng.uniform_index(6);
  for (std::size_t i = 0; i < n_terms; ++i) {
    Terminal t;
    t.id = static_cast<TerminalId>(i);
    t.owner_party = static_cast<std::uint32_t>(rng.uniform_index(f.party_count));
    t.location = orbit::Geodetic::from_degrees(rng.uniform(-35.0, 35.0),
                                               rng.uniform(0.0, 60.0));
    t.radio = default_user_terminal();
    t.demand_bps = rng.uniform(10e6, 200e6);
    f.terminals.push_back(t);
  }

  // Stations never belong to the last party, so at least one party always
  // contends with an empty ground segment (its terminals must ride spare
  // capacity through other parties' stations — i.e. not at all, under the
  // same-party-station rule — and stay unserved).
  const std::size_t n_stations = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < n_stations; ++i) {
    GroundStation gs;
    gs.id = static_cast<GroundStationId>(i);
    gs.owner_party = static_cast<std::uint32_t>(rng.uniform_index(f.party_count - 1));
    gs.location = orbit::Geodetic::from_degrees(rng.uniform(-35.0, 35.0),
                                                rng.uniform(0.0, 60.0));
    gs.radio = default_ground_station();
    f.stations.push_back(gs);
  }
  return f;
}

fault::FaultTimeline make_faults(const orbit::TimeGrid& grid, const RandomFleet& fleet,
                                 std::uint64_t seed) {
  util::Xoshiro256PlusPlus rng(seed ^ 0x9e3779b97f4a7c15ULL);
  fault::FaultTimeline faults(grid, fleet.satellites.size(), fleet.stations.size());
  const double span = grid.duration_seconds();
  for (std::size_t si = 0; si < fleet.satellites.size(); ++si) {
    if (rng.uniform() < 0.4) {
      const double start = rng.uniform(0.0, 0.7 * span);
      faults.add_satellite_outage(si, start, start + rng.uniform(0.05, 0.3) * span);
    }
    if (rng.uniform() < 0.4) {
      const double start = rng.uniform(0.0, 0.7 * span);
      faults.add_transponder_degradation(si, start,
                                         start + rng.uniform(0.05, 0.3) * span,
                                         rng.uniform(0.2, 0.9));
    }
  }
  for (std::size_t gi = 0; gi < fleet.stations.size(); ++gi) {
    if (rng.uniform() < 0.4) {
      const double start = rng.uniform(0.0, 0.7 * span);
      faults.add_station_outage(gi, start, start + rng.uniform(0.05, 0.3) * span);
    }
  }
  return faults;
}

orbit::TimeGrid test_grid() {
  // 90 minutes at 60 s: one orbit's worth of rises and sets, and enough
  // steps (90) to cross a StepMask word boundary inside the pipeline.
  return orbit::TimeGrid::over_duration(kEpoch, 5400.0, 60.0);
}

class SchedulerPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerPipeline, MatchesReferenceBitForBit) {
  const RandomFleet f = make_fleet(GetParam());
  const BentPipeScheduler scheduler(f.config, f.satellites, f.terminals, f.stations);
  const orbit::TimeGrid grid = test_grid();

  const ScheduleResult reference =
      scheduler.run_reference(grid, f.party_count, nullptr, /*keep_steps=*/true);
  const ScheduleResult pipelined = scheduler.run(grid, f.party_count, /*keep_steps=*/true);
  EXPECT_TRUE(pipelined == reference);
}

TEST_P(SchedulerPipeline, FaultedMatchesReferenceBitForBit) {
  const RandomFleet f = make_fleet(GetParam());
  const BentPipeScheduler scheduler(f.config, f.satellites, f.terminals, f.stations);
  const orbit::TimeGrid grid = test_grid();
  const fault::FaultTimeline faults = make_faults(grid, f, GetParam());

  const ScheduleResult reference =
      scheduler.run_reference(grid, f.party_count, &faults, /*keep_steps=*/true);
  const ScheduleResult pipelined =
      scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true);
  EXPECT_TRUE(pipelined == reference);
}

TEST_P(SchedulerPipeline, PoolSizeNeverChangesResult) {
  const RandomFleet f = make_fleet(GetParam());
  const BentPipeScheduler scheduler(f.config, f.satellites, f.terminals, f.stations);
  const orbit::TimeGrid grid = test_grid();
  const fault::FaultTimeline faults = make_faults(grid, f, GetParam());

  const ScheduleResult serial = scheduler.run(grid, f.party_count, /*keep_steps=*/true);
  const ScheduleResult serial_faulted =
      scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true);
  for (const std::size_t threads : {1u, 2u, 3u}) {
    util::ThreadPool pool(threads);
    const ScheduleResult pooled =
        scheduler.run(grid, f.party_count, /*keep_steps=*/true, &pool);
    EXPECT_TRUE(pooled == serial) << "pool size " << threads;
    const ScheduleResult pooled_faulted =
        scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true, &pool);
    EXPECT_TRUE(pooled_faulted == serial_faulted) << "pool size " << threads;
  }
}

TEST(SchedulerPipeline, EmptyFaultTimelineMatchesPlainRun) {
  const RandomFleet f = make_fleet(7);
  const BentPipeScheduler scheduler(f.config, f.satellites, f.terminals, f.stations);
  const orbit::TimeGrid grid = test_grid();
  const fault::FaultTimeline empty;

  const ScheduleResult plain = scheduler.run(grid, f.party_count, /*keep_steps=*/true);
  const ScheduleResult with_empty =
      scheduler.run(grid, f.party_count, &empty, /*keep_steps=*/true);
  EXPECT_TRUE(with_empty == plain);
}

TEST(SchedulerPipeline, AggregatesMatchWithoutKeptSteps) {
  // keep_steps=false drops the per-step lists from both paths; the aggregate
  // comparison must still hold (and the steps vectors compare equal-empty).
  const RandomFleet f = make_fleet(11);
  const BentPipeScheduler scheduler(f.config, f.satellites, f.terminals, f.stations);
  const orbit::TimeGrid grid = test_grid();

  const ScheduleResult reference = scheduler.run_reference(grid, f.party_count);
  const ScheduleResult pipelined = scheduler.run(grid, f.party_count);
  EXPECT_TRUE(pipelined == reference);
  EXPECT_TRUE(pipelined.steps.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPipeline, ::testing::Range<std::uint64_t>(0, 12));

// The footprint-stream path (spatial index + shell shards + bounded-queue
// streaming) must be indistinguishable from the classic pair-mask path when
// the candidate cap is off — same grants, same link ordering, same metrics-
// bearing aggregates — regardless of chunk shape, slot count, or pool size.
class SchedulerFootprintStream : public ::testing::TestWithParam<std::uint64_t> {};

RandomFleet make_streamed_fleet(std::uint64_t seed) {
  RandomFleet f = make_fleet(seed);
  f.config.visibility_mode = VisibilityMode::kFootprintStream;
  return f;
}

TEST_P(SchedulerFootprintStream, MatchesReferenceBitForBit) {
  const RandomFleet f = make_streamed_fleet(GetParam());
  const BentPipeScheduler scheduler(f.config, f.satellites, f.terminals, f.stations);
  const orbit::TimeGrid grid = test_grid();

  const ScheduleResult reference =
      scheduler.run_reference(grid, f.party_count, nullptr, /*keep_steps=*/true);
  const ScheduleResult streamed = scheduler.run(grid, f.party_count, /*keep_steps=*/true);
  EXPECT_TRUE(streamed == reference);
}

TEST_P(SchedulerFootprintStream, FaultedMatchesReferenceBitForBit) {
  const RandomFleet f = make_streamed_fleet(GetParam());
  const BentPipeScheduler scheduler(f.config, f.satellites, f.terminals, f.stations);
  const orbit::TimeGrid grid = test_grid();
  const fault::FaultTimeline faults = make_faults(grid, f, GetParam());

  const ScheduleResult reference =
      scheduler.run_reference(grid, f.party_count, &faults, /*keep_steps=*/true);
  const ScheduleResult streamed =
      scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true);
  EXPECT_TRUE(streamed == reference);
}

TEST_P(SchedulerFootprintStream, ChunkSlotAndPoolShapeNeverChangeResult) {
  RandomFleet f = make_streamed_fleet(GetParam());
  const orbit::TimeGrid grid = test_grid();
  const fault::FaultTimeline faults = make_faults(grid, f, GetParam());

  const BentPipeScheduler baseline(f.config, f.satellites, f.terminals, f.stations);
  const ScheduleResult expected =
      baseline.run(grid, f.party_count, &faults, /*keep_steps=*/true);

  for (const std::size_t chunk_steps : {std::size_t{8}, std::size_t{16}}) {
    for (const std::size_t slots : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      SchedulerConfig config = f.config;
      config.stream_chunk_steps = chunk_steps;
      config.stream_slots = slots;
      const BentPipeScheduler scheduler(config, f.satellites, f.terminals, f.stations);
      const ScheduleResult serial =
          scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true);
      EXPECT_TRUE(serial == expected)
          << "chunk_steps=" << chunk_steps << " slots=" << slots;
      for (const std::size_t threads : {2u, 3u}) {
        util::ThreadPool pool(threads);
        const ScheduleResult pooled =
            scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true, &pool);
        EXPECT_TRUE(pooled == expected)
            << "chunk_steps=" << chunk_steps << " slots=" << slots
            << " pool=" << threads;
      }
    }
  }
}

TEST_P(SchedulerFootprintStream, CandidateCapIsDeterministicAcrossShapes) {
  // A finite cap may legitimately drop low-capacity candidates, so the result
  // is not compared against the exact path — but it must be a pure function
  // of the inputs: pool size, chunk shape, and slot count cannot change it.
  RandomFleet f = make_streamed_fleet(GetParam());
  f.config.max_candidates_per_terminal = 2;
  const orbit::TimeGrid grid = test_grid();

  const BentPipeScheduler baseline(f.config, f.satellites, f.terminals, f.stations);
  const ScheduleResult expected = baseline.run(grid, f.party_count, /*keep_steps=*/true);

  SchedulerConfig reshaped = f.config;
  reshaped.stream_chunk_steps = 8;
  reshaped.stream_slots = 3;
  const BentPipeScheduler scheduler(reshaped, f.satellites, f.terminals, f.stations);
  EXPECT_TRUE(scheduler.run(grid, f.party_count, /*keep_steps=*/true) == expected);
  for (const std::size_t threads : {2u, 3u}) {
    util::ThreadPool pool(threads);
    const ScheduleResult pooled =
        scheduler.run(grid, f.party_count, /*keep_steps=*/true, &pool);
    EXPECT_TRUE(pooled == expected) << "pool=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFootprintStream,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(SchedulerFootprintStreamConfig, RejectsBadStreamShapes) {
  const RandomFleet f = make_fleet(3);
  SchedulerConfig bad_chunk = f.config;
  bad_chunk.stream_chunk_steps = 12;  // not a power of two
  EXPECT_THROW(BentPipeScheduler(bad_chunk, f.satellites, f.terminals, f.stations),
               std::invalid_argument);
  SchedulerConfig huge_chunk = f.config;
  huge_chunk.stream_chunk_steps = 128;  // chunks must fit one mask word
  EXPECT_THROW(BentPipeScheduler(huge_chunk, f.satellites, f.terminals, f.stations),
               std::invalid_argument);
  SchedulerConfig big_cap = f.config;
  big_cap.max_candidates_per_terminal = 65;
  EXPECT_THROW(BentPipeScheduler(big_cap, f.satellites, f.terminals, f.stations),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::net
