#include "net/handover.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpleo::net {
namespace {

TEST(HandoverStats, EmptyTimeline) {
  const HandoverStats stats = handover_stats({}, 60.0);
  EXPECT_EQ(stats.handover_count, 0u);
  EXPECT_EQ(stats.connected_fraction, 0.0);
}

TEST(HandoverStats, SyntheticTimeline) {
  // 0 0 gap 1 1 2 gap gap 2 -> handovers: 1->2 within-connection (1);
  // dwell segments: [0,0], [1,1], [2], [2] = 4; outages: 2 (after 0s, after 2).
  const std::vector<std::uint32_t> timeline{0, 0, kNoSatellite, 1, 1, 2,
                                            kNoSatellite, kNoSatellite, 2};
  const HandoverStats stats = handover_stats(timeline, 10.0);
  EXPECT_EQ(stats.handover_count, 1u);
  EXPECT_EQ(stats.outage_count, 2u);
  EXPECT_NEAR(stats.connected_fraction, 6.0 / 9.0, 1e-12);
  EXPECT_NEAR(stats.mean_dwell_seconds, 60.0 / 4.0, 1e-9);
  EXPECT_NEAR(stats.handovers_per_hour, 1.0 / (60.0 / 3600.0), 1e-9);
}

TEST(HandoverStats, AllOutageTimelineIsFiniteAndZero) {
  // Never connected: every ratio that divides by connected time or dwell
  // segments must come out 0, not NaN/inf.
  const std::vector<std::uint32_t> timeline(16, kNoSatellite);
  const HandoverStats stats = handover_stats(timeline, 60.0);
  EXPECT_EQ(stats.handover_count, 0u);
  EXPECT_EQ(stats.outage_count, 0u);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_dwell_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.handovers_per_hour, 0.0);
  EXPECT_TRUE(std::isfinite(stats.mean_dwell_seconds));
  EXPECT_TRUE(std::isfinite(stats.handovers_per_hour));
}

TEST(HandoverStats, SingleStepTimelines) {
  const std::vector<std::uint32_t> connected{4u};
  const HandoverStats on = handover_stats(connected, 60.0);
  EXPECT_EQ(on.handover_count, 0u);
  EXPECT_DOUBLE_EQ(on.connected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(on.mean_dwell_seconds, 60.0);
  EXPECT_DOUBLE_EQ(on.handovers_per_hour, 0.0);

  const std::vector<std::uint32_t> disconnected{kNoSatellite};
  const HandoverStats off = handover_stats(disconnected, 60.0);
  EXPECT_DOUBLE_EQ(off.connected_fraction, 0.0);
  EXPECT_DOUBLE_EQ(off.mean_dwell_seconds, 0.0);
  EXPECT_DOUBLE_EQ(off.handovers_per_hour, 0.0);
}

TEST(HandoverStats, ContinuousSingleSatellite) {
  const std::vector<std::uint32_t> timeline(20, 3u);
  const HandoverStats stats = handover_stats(timeline, 30.0);
  EXPECT_EQ(stats.handover_count, 0u);
  EXPECT_EQ(stats.outage_count, 0u);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_dwell_seconds, 600.0);
}

TEST(ServingTimeline, PicksHighestElevationAndRespectsMask) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);
  const auto sats = constellation::single_plane(550e3, 53.0, 100.0, 8, grid.start);
  const orbit::TopocentricFrame terminal(cov::taipei().location);

  const auto timeline = serving_satellite_timeline(engine, sats, terminal);
  ASSERT_EQ(timeline.size(), grid.count);

  // Whenever the timeline says "connected", the union coverage mask agrees,
  // and vice versa.
  cov::StepMask covered(grid.count);
  for (const auto& sat : sats) covered |= engine.visibility_mask(sat, terminal);
  for (std::size_t i = 0; i < grid.count; ++i) {
    EXPECT_EQ(timeline[i] != kNoSatellite, covered.test(i)) << "step " << i;
    if (timeline[i] != kNoSatellite) EXPECT_LT(timeline[i], sats.size());
  }
}

TEST(ServingTimeline, DenserConstellationRaisesHandovers) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);
  const orbit::TopocentricFrame terminal(cov::taipei().location);

  const auto sparse = constellation::single_plane(550e3, 53.0, 100.0, 4, grid.start);
  constellation::WalkerShell dense_shell;
  dense_shell.plane_count = 12;
  dense_shell.sats_per_plane = 12;
  dense_shell.phasing_factor = 5;
  const auto dense = dense_shell.build(grid.start);

  const auto sparse_stats = handover_stats(
      serving_satellite_timeline(engine, sparse, terminal), grid.step_seconds);
  const auto dense_stats = handover_stats(
      serving_satellite_timeline(engine, dense, terminal), grid.step_seconds);

  EXPECT_GT(dense_stats.connected_fraction, sparse_stats.connected_fraction);
  EXPECT_GT(dense_stats.handover_count, sparse_stats.handover_count);
}

}  // namespace
}  // namespace mpleo::net
