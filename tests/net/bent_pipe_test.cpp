#include "net/bent_pipe.hpp"

#include <gtest/gtest.h>

namespace mpleo::net {
namespace {

RelayBudget default_relay(RelayMode mode, double up = 800e3, double down = 900e3) {
  return compute_relay(default_user_terminal(), default_transponder(),
                       default_ground_station(), up, down, mode);
}

TEST(BentPipe, TransparentSnrIsHarmonicCombination) {
  const RelayBudget budget = default_relay(RelayMode::kTransparent);
  const double expected =
      1.0 / (1.0 / budget.uplink.snr_linear + 1.0 / budget.downlink.snr_linear);
  EXPECT_NEAR(budget.end_to_end_snr_linear, expected, expected * 1e-12);
}

TEST(BentPipe, TransparentWorseThanEitherHop) {
  const RelayBudget budget = default_relay(RelayMode::kTransparent);
  EXPECT_LT(budget.end_to_end_snr_linear, budget.uplink.snr_linear);
  EXPECT_LT(budget.end_to_end_snr_linear, budget.downlink.snr_linear);
}

TEST(BentPipe, RegenerativeIsMinOfHops) {
  const RelayBudget budget = default_relay(RelayMode::kRegenerative);
  EXPECT_DOUBLE_EQ(budget.end_to_end_snr_linear,
                   std::min(budget.uplink.snr_linear, budget.downlink.snr_linear));
  EXPECT_DOUBLE_EQ(
      budget.end_to_end_capacity_bps,
      std::min(budget.uplink.shannon_capacity_bps, budget.downlink.shannon_capacity_bps));
}

TEST(BentPipe, RegenerativeBeatsTransparent) {
  // The paper's §4 trade-off: decoding on board avoids re-amplifying uplink
  // noise, so regenerative end-to-end SNR is strictly better.
  const RelayBudget transparent = default_relay(RelayMode::kTransparent);
  const RelayBudget regen = default_relay(RelayMode::kRegenerative);
  EXPECT_GT(regen.end_to_end_snr_linear, transparent.end_to_end_snr_linear);
  EXPECT_GT(regen.end_to_end_capacity_bps, transparent.end_to_end_capacity_bps);
}

TEST(BentPipe, TransparentPenaltyIsBoundedBy3dbWhenBalanced) {
  // With equal hop SNRs the transparent combination is exactly 3 dB worse.
  RadioConfig symmetric_terminal = default_user_terminal();
  TransponderConfig transponder = default_transponder();
  RadioConfig symmetric_gs = default_ground_station();
  // Force the two hops identical by making the downlink mirror the uplink.
  transponder.transmit = symmetric_terminal;
  symmetric_gs = transponder.receive;

  const RelayBudget budget = compute_relay(symmetric_terminal, transponder, symmetric_gs,
                                           700e3, 700e3, RelayMode::kTransparent);
  EXPECT_NEAR(budget.uplink.snr_db - budget.end_to_end_snr_db, 3.0103, 1e-3);
}

TEST(BentPipe, LongerUplinkDegradesEndToEnd) {
  const RelayBudget short_up = default_relay(RelayMode::kTransparent, 600e3, 900e3);
  const RelayBudget long_up = default_relay(RelayMode::kTransparent, 1800e3, 900e3);
  EXPECT_GT(short_up.end_to_end_snr_linear, long_up.end_to_end_snr_linear);
}

TEST(BentPipe, DefaultChainsCloseTheLink) {
  // Both modes should yield usable capacity at typical slant ranges.
  for (const RelayMode mode : {RelayMode::kTransparent, RelayMode::kRegenerative}) {
    const RelayBudget budget = default_relay(mode);
    EXPECT_GT(budget.end_to_end_snr_db, 0.0);
    EXPECT_GT(budget.end_to_end_capacity_bps, 10e6);  // at least 10 Mbit/s
  }
}

TEST(BentPipe, ModeRecordedInBudget) {
  EXPECT_EQ(default_relay(RelayMode::kTransparent).mode, RelayMode::kTransparent);
  EXPECT_EQ(default_relay(RelayMode::kRegenerative).mode, RelayMode::kRegenerative);
}

}  // namespace
}  // namespace mpleo::net
