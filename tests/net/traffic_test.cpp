#include "net/traffic.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace mpleo::net {
namespace {

const orbit::TimePoint kMidnightUtc = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

TEST(LocalSolarHour, GreenwichMatchesUtc) {
  EXPECT_NEAR(local_solar_hour(kMidnightUtc, 0.0), 0.0, 1e-9);
  EXPECT_NEAR(local_solar_hour(kMidnightUtc.plus_seconds(6 * 3600.0), 0.0), 6.0, 1e-9);
}

TEST(LocalSolarHour, LongitudeOffsets) {
  // +90 deg east = +6 hours local.
  EXPECT_NEAR(local_solar_hour(kMidnightUtc, util::deg_to_rad(90.0)), 6.0, 1e-9);
  // -90 deg = -6 hours -> wraps to 18.
  EXPECT_NEAR(local_solar_hour(kMidnightUtc, util::deg_to_rad(-90.0)), 18.0, 1e-9);
  // 180 deg at noon UTC wraps past midnight.
  EXPECT_NEAR(local_solar_hour(kMidnightUtc.plus_seconds(12 * 3600.0),
                               util::deg_to_rad(180.0)),
              0.0, 1e-9);
}

TEST(DiurnalDemand, PeaksAtPeakHour) {
  DiurnalProfile profile;
  // Find UTC time where local hour at lon 0 is the peak hour.
  const auto peak_time =
      kMidnightUtc.plus_seconds(profile.peak_local_hour * 3600.0);
  const double at_peak = diurnal_demand_bps(profile, peak_time, 0.0);
  EXPECT_NEAR(at_peak, profile.peak_bps, 1e-6);

  // 12 hours off-peak (8 am local vs an 8 pm peak) is near the base load.
  const auto off_time = kMidnightUtc.plus_seconds(8.0 * 3600.0);
  const double off_peak = diurnal_demand_bps(profile, off_time, 0.0);
  EXPECT_LT(off_peak, profile.base_bps * 1.3);
  EXPECT_GE(off_peak, profile.base_bps);
}

TEST(DiurnalDemand, BoundedBetweenBaseAndPeak) {
  DiurnalProfile profile;
  for (int h = 0; h < 24; ++h) {
    const double d = diurnal_demand_bps(profile, kMidnightUtc.plus_seconds(h * 3600.0),
                                        util::deg_to_rad(121.5));
    EXPECT_GE(d, profile.base_bps - 1e-6);
    EXPECT_LE(d, profile.peak_bps + 1e-6);
  }
}

TEST(DiurnalDemand, EveningInTokyoIsMorningInNewYork) {
  // Same UTC instant: Tokyo (139.7 E) at local evening peak, New York
  // (74 W, ~14 h earlier) far from peak — the time-zone offset MP-LEO
  // capacity sharing exploits.
  DiurnalProfile profile;
  const auto t = kMidnightUtc.plus_seconds(
      (profile.peak_local_hour - 139.6503 / 15.0) * 3600.0);
  const double tokyo = diurnal_demand_bps(profile, t, util::deg_to_rad(139.6503));
  const double nyc = diurnal_demand_bps(profile, t, util::deg_to_rad(-74.006));
  EXPECT_GT(tokyo, nyc * 2.0);
}

TEST(CityDemand, ScalesWithPopulation) {
  DiurnalProfile profile;
  const auto& cities = cov::paper_cities();
  const cov::City& tokyo = cities.front();     // 37.4M
  cov::City small = tokyo;
  small.population = tokyo.population / 10.0;  // same longitude, less demand
  const double big = city_demand_bps(profile, tokyo, kMidnightUtc);
  const double little = city_demand_bps(profile, small, kMidnightUtc);
  EXPECT_NEAR(big / little, 10.0, 1e-9);
}

}  // namespace
}  // namespace mpleo::net
