#include "net/queueing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mpleo::net {
namespace {

TEST(Queue, UnderloadedDeliversEverything) {
  const std::vector<double> offered(10, 10e6);
  const std::vector<double> capacity(10, 50e6);
  const QueueStats stats = simulate_fifo_queue(offered, capacity, 1.0);
  EXPECT_DOUBLE_EQ(stats.delivery_fraction(), 1.0);
  EXPECT_EQ(stats.dropped_bytes, 0.0);
  EXPECT_EQ(stats.max_backlog_bytes, 0.0);
  EXPECT_EQ(stats.mean_delay_s, 0.0);
}

TEST(Queue, OverloadBuildsBacklogThenDrops) {
  // 100 Mbit/s offered into a 10 Mbit/s link with a small buffer.
  const std::vector<double> offered(20, 100e6);
  const std::vector<double> capacity(20, 10e6);
  QueueConfig cfg;
  cfg.buffer_bytes = 20e6;
  const QueueStats stats = simulate_fifo_queue(offered, capacity, 1.0, cfg);
  EXPECT_GT(stats.dropped_bytes, 0.0);
  EXPECT_NEAR(stats.max_backlog_bytes, 20e6, 1.0);
  EXPECT_LT(stats.delivery_fraction(), 0.2);
  EXPECT_GT(stats.mean_delay_s, 0.0);
}

TEST(Queue, ConservationOfBytes) {
  const std::vector<double> offered{50e6, 80e6, 0.0, 0.0, 120e6, 5e6};
  const std::vector<double> capacity{20e6, 20e6, 20e6, 20e6, 20e6, 20e6};
  QueueConfig cfg;
  cfg.buffer_bytes = 5e6;
  const QueueStats stats = simulate_fifo_queue(offered, capacity, 2.0, cfg);
  // offered = delivered + dropped + final backlog (final backlog <= buffer).
  const double accounted = stats.delivered_bytes + stats.dropped_bytes;
  EXPECT_GE(stats.offered_bytes, accounted - 1e-6);
  EXPECT_LE(stats.offered_bytes - accounted, cfg.buffer_bytes + 1e-6);
}

TEST(Queue, BurstDrainsDuringIdle) {
  // A one-step burst followed by idle steps drains fully through a slower
  // link without drops if the buffer holds it.
  std::vector<double> offered(10, 0.0);
  offered[0] = 80e6;  // 10 MB in one second
  const std::vector<double> capacity(10, 16e6);  // 2 MB/s
  QueueConfig cfg;
  cfg.buffer_bytes = 10e6;
  const QueueStats stats = simulate_fifo_queue(offered, capacity, 1.0, cfg);
  EXPECT_DOUBLE_EQ(stats.delivery_fraction(), 1.0);
  EXPECT_EQ(stats.dropped_bytes, 0.0);
  EXPECT_GT(stats.mean_delay_s, 0.5);  // the burst queued for a while
}

TEST(Queue, ZeroCapacityDropsBeyondBuffer) {
  const std::vector<double> offered(5, 8e6);   // 1 MB/step
  const std::vector<double> capacity(5, 0.0);
  QueueConfig cfg;
  cfg.buffer_bytes = 2e6;
  const QueueStats stats = simulate_fifo_queue(offered, capacity, 1.0, cfg);
  EXPECT_EQ(stats.delivered_bytes, 0.0);
  EXPECT_NEAR(stats.dropped_bytes, 3e6, 1.0);
}

TEST(Queue, HigherCapacityNeverWorsensDelivery) {
  const std::vector<double> offered{90e6, 10e6, 70e6, 30e6, 50e6};
  double previous = 0.0;
  for (double cap : {10e6, 30e6, 60e6, 100e6}) {
    const std::vector<double> capacity(offered.size(), cap);
    const QueueStats stats = simulate_fifo_queue(offered, capacity, 1.0);
    EXPECT_GE(stats.delivery_fraction(), previous);
    previous = stats.delivery_fraction();
  }
}

TEST(Queue, InvalidInputsThrow) {
  const std::vector<double> a(3, 1.0), b(4, 1.0);
  EXPECT_THROW((void)simulate_fifo_queue(a, b, 1.0), std::invalid_argument);
  EXPECT_THROW((void)simulate_fifo_queue(a, a, 0.0), std::invalid_argument);
  QueueConfig cfg;
  cfg.buffer_bytes = -1.0;
  EXPECT_THROW((void)simulate_fifo_queue(a, a, 1.0, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::net
