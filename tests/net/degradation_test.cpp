// DegradationPolicy: validation, tier mapping, the backoff state machine,
// and the scheduler-level contracts — SLO observation never changes links,
// run() and run_reference() agree exactly with every mitigation armed, load
// shedding drops exactly the low tier, and a zero backoff_initial_steps
// preserves the constant-backoff behavior of the pre-policy scheduler.
#include "net/degradation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/timeline.hpp"
#include "net/scheduler.hpp"
#include "orbit/geodesy.hpp"

namespace mpleo::net {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

orbit::TimeGrid make_grid(double duration_s = 7200.0, double step_s = 60.0) {
  return orbit::TimeGrid::over_duration(kEpoch, duration_s, step_s);
}

struct Fleet {
  SchedulerConfig config;
  std::vector<constellation::Satellite> satellites;
  std::vector<Terminal> terminals;
  std::vector<GroundStation> stations;
  std::size_t party_count = 2;
};

Fleet make_fleet() {
  // Four ground sites in one region with terminals co-located next to the
  // stations, so satellite passes actually produce service (bent-pipe needs
  // both legs in one footprint). Terminal parties alternate by index, which
  // makes sites 1 and 3 junior-only — shedding effects are visible per site.
  Fleet f;
  f.config.beams_per_satellite = 2;
  f.config.elevation_mask_deg = 10.0;
  for (std::size_t i = 0; i < 12; ++i) {
    constellation::Satellite sat;
    sat.id = static_cast<constellation::SatelliteId>(i);
    sat.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    sat.elements = orbit::ClassicalElements::circular(
        550e3 + 10e3 * static_cast<double>(i % 2), 53.0,
        30.0 * static_cast<double>(i),
        120.0 * static_cast<double>(i % 3) + 30.0 * static_cast<double>(i));
    sat.epoch = kEpoch;
    f.satellites.push_back(sat);
  }
  const double site_lat[4] = {44.0, 46.0, 48.0, 50.0};
  const double site_lon[4] = {8.0, 12.0, 16.0, 20.0};
  for (std::size_t i = 0; i < 8; ++i) {
    Terminal t;
    t.id = static_cast<TerminalId>(i);
    t.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    t.location = orbit::Geodetic::from_degrees(
        site_lat[i % 4] + 0.5, site_lon[i % 4] + (i / 4 != 0 ? -0.5 : 0.5));
    t.radio = default_user_terminal();
    t.demand_bps = 40e6;
    f.terminals.push_back(t);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    GroundStation gs;
    gs.id = static_cast<GroundStationId>(i);
    gs.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    gs.location = orbit::Geodetic::from_degrees(site_lat[i], site_lon[i]);
    gs.radio = default_ground_station();
    f.stations.push_back(gs);
  }
  return f;
}

fault::FaultTimeline make_faults(const orbit::TimeGrid& grid, const Fleet& fleet) {
  fault::FaultTimeline faults(grid, fleet.satellites.size(), fleet.stations.size());
  const double span = grid.duration_seconds();
  faults.add_satellite_outage(0, 0.0, 0.4 * span);
  faults.add_satellite_outage(3, 0.2 * span, 0.6 * span);
  faults.add_transponder_degradation(1, 0.1 * span, 0.7 * span, 0.5);
  faults.add_station_outage(1, 0.3 * span, 0.8 * span);
  return faults;
}

TEST(DegradationPolicy, ValidateCatchesMalformedFields) {
  DegradationPolicy ok;
  EXPECT_TRUE(ok.validate().empty());
  ok.enabled = true;
  ok.party_tier = {0, 1};
  ok.shed_below = {0.0, 0.5};
  ok.spare_hysteresis_margin = 0.2;
  ok.backoff_initial_steps = 2;
  ok.slo_window_steps = 10;
  EXPECT_TRUE(ok.validate().empty());

  DegradationPolicy bad;
  bad.shed_below = {1.5};
  ASSERT_FALSE(bad.validate().empty());
  EXPECT_EQ(bad.validate()[0].component, "net.scheduler.degradation");

  bad = DegradationPolicy{};
  bad.shed_below = {0.6, 0.3};  // decreasing: tier 1 would shed *later*
  EXPECT_FALSE(bad.validate().empty());

  bad = DegradationPolicy{};
  bad.spare_hysteresis_margin = -0.1;
  EXPECT_FALSE(bad.validate().empty());

  bad = DegradationPolicy{};
  bad.backoff_multiplier = 0.5;
  EXPECT_FALSE(bad.validate().empty());

  bad = DegradationPolicy{};
  bad.backoff_initial_steps = 8;
  bad.backoff_max_steps = 4;
  EXPECT_FALSE(bad.validate().empty());

  // A scheduler config carrying a bad policy throws at construction.
  const Fleet f = make_fleet();
  SchedulerConfig config = f.config;
  config.degradation.spare_hysteresis_margin = -1.0;
  EXPECT_THROW(BentPipeScheduler(config, f.satellites, f.terminals, f.stations),
               std::invalid_argument);
}

TEST(DegradationPolicy, ShedThresholdMapsPartiesThroughTiers) {
  DegradationPolicy policy;
  EXPECT_DOUBLE_EQ(policy.shed_threshold(0), 0.0);  // empty: never shed
  policy.party_tier = {0, 1, 5};
  policy.shed_below = {0.0, 0.3};
  EXPECT_DOUBLE_EQ(policy.shed_threshold(0), 0.0);
  EXPECT_DOUBLE_EQ(policy.shed_threshold(1), 0.3);
  EXPECT_DOUBLE_EQ(policy.shed_threshold(2), 0.3);  // tier 5 clamps to last
  EXPECT_DOUBLE_EQ(policy.shed_threshold(9), 0.0);  // beyond vector: tier 0
}

TEST(ReacquisitionBackoff, GrowsExponentiallyAndSaturates) {
  ReacquisitionBackoff backoff(2, 2.0, 16, 3);
  EXPECT_EQ(backoff.on_failure(), 2u);
  EXPECT_EQ(backoff.on_failure(), 4u);
  EXPECT_EQ(backoff.on_failure(), 8u);
  EXPECT_EQ(backoff.on_failure(), 16u);
  EXPECT_EQ(backoff.on_failure(), 16u);  // capped, never beyond max
  EXPECT_EQ(backoff.consecutive_failures(), 5u);
}

TEST(ReacquisitionBackoff, ResetsOnlyAfterTheCleanHorizon) {
  ReacquisitionBackoff backoff(2, 2.0, 64, 3);
  EXPECT_EQ(backoff.on_failure(), 2u);
  backoff.on_clean_step();
  backoff.on_clean_step();  // two clean steps: still inside the horizon
  EXPECT_EQ(backoff.on_failure(), 4u);
  backoff.on_clean_step();
  backoff.on_clean_step();
  backoff.on_clean_step();  // horizon reached: consecutive count resets
  EXPECT_EQ(backoff.consecutive_failures(), 0u);
  EXPECT_EQ(backoff.on_failure(), 2u);
}

TEST(ReacquisitionBackoff, ZeroInitialStepsIsTheConstantPolicy) {
  ReacquisitionBackoff backoff(0, 2.0, 64, 3);
  EXPECT_EQ(backoff.on_failure(), 0u);
  EXPECT_EQ(backoff.on_failure(), 0u);
}

TEST(DegradationScheduler, SloObservationNeverChangesLinks) {
  const Fleet f = make_fleet();
  const orbit::TimeGrid grid = make_grid();
  const fault::FaultTimeline faults = make_faults(grid, f);

  const BentPipeScheduler plain(f.config, f.satellites, f.terminals, f.stations);
  SchedulerConfig observed_config = f.config;
  observed_config.degradation.slo_window_steps = 8;  // enabled stays false
  const BentPipeScheduler observed(observed_config, f.satellites, f.terminals,
                                   f.stations);

  const ScheduleResult base =
      plain.run(grid, f.party_count, &faults, /*keep_steps=*/true);
  const ScheduleResult with_slo =
      observed.run(grid, f.party_count, &faults, /*keep_steps=*/true);

  EXPECT_FALSE(base.slo.has_value());
  ASSERT_TRUE(with_slo.slo.has_value());
  // Everything except the SLO section is bit-identical.
  ScheduleResult stripped = with_slo;
  stripped.slo.reset();
  EXPECT_TRUE(stripped == base);

  const SloStats& slo = *with_slo.slo;
  EXPECT_EQ(slo.availability_by_party.size(), f.party_count);
  EXPECT_GE(slo.availability, 0.0);
  EXPECT_LE(slo.availability, 1.0);
  EXPECT_GE(slo.worst_window_availability, 0.0);
  EXPECT_LE(slo.worst_window_availability, 1.0);
  for (const double seconds : slo.recovery_seconds) EXPECT_GT(seconds, 0.0);
  // Every recovery episode (completed or not) began with a forced detach.
  EXPECT_LE(slo.recovery_seconds.size() + slo.unrecovered_terminals,
            with_slo.failure_forced_detaches);
  EXPECT_EQ(slo.shed_terminal_steps, 0u);  // no shedding configured
}

TEST(DegradationScheduler, RunMatchesReferenceWithEveryMitigationArmed) {
  // The PolicyDriver is shared by both run paths; this pins that the
  // streaming pipeline and the reference scheduler step shedding, sticky
  // hysteresis, exponential backoff and SLO accumulation identically.
  const Fleet f = make_fleet();
  const orbit::TimeGrid grid = make_grid();
  const fault::FaultTimeline faults = make_faults(grid, f);

  SchedulerConfig config = f.config;
  config.degradation.enabled = true;
  config.degradation.party_tier = {0, 1};
  config.degradation.shed_below = {0.0, 0.4};
  config.degradation.spare_hysteresis_margin = 0.25;
  config.degradation.backoff_initial_steps = 2;
  config.degradation.backoff_multiplier = 2.0;
  config.degradation.backoff_max_steps = 8;
  config.degradation.backoff_clean_horizon_steps = 4;
  config.degradation.slo_window_steps = 10;
  const BentPipeScheduler scheduler(config, f.satellites, f.terminals, f.stations);

  const ScheduleResult via_run =
      scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true);
  const ScheduleResult via_reference =
      scheduler.run_reference(grid, f.party_count, &faults, /*keep_steps=*/true);
  EXPECT_TRUE(via_run == via_reference);  // includes the SLO section

  // And on the fault-free path an armed policy still changes nothing
  // observable except carrying the SLO section.
  const ScheduleResult clean =
      scheduler.run(grid, f.party_count, nullptr, /*keep_steps=*/true);
  const ScheduleResult clean_reference =
      scheduler.run_reference(grid, f.party_count, nullptr, /*keep_steps=*/true);
  EXPECT_TRUE(clean == clean_reference);
}

TEST(DegradationScheduler, DisabledPolicyIsBitIdenticalRegardlessOfKnobs) {
  // enabled == false must neutralize every behavioral field.
  const Fleet f = make_fleet();
  const orbit::TimeGrid grid = make_grid();
  const fault::FaultTimeline faults = make_faults(grid, f);

  SchedulerConfig loaded = f.config;
  loaded.degradation.enabled = false;
  loaded.degradation.party_tier = {0, 1};
  loaded.degradation.shed_below = {0.0, 0.9};
  loaded.degradation.spare_hysteresis_margin = 0.5;
  loaded.degradation.backoff_initial_steps = 4;

  const BentPipeScheduler plain(f.config, f.satellites, f.terminals, f.stations);
  const BentPipeScheduler armed(loaded, f.satellites, f.terminals, f.stations);
  EXPECT_TRUE(armed.run(grid, f.party_count, &faults, true) ==
              plain.run(grid, f.party_count, &faults, true));
}

TEST(DegradationScheduler, ZeroInitialBackoffKeepsConstantBackoffBehavior) {
  // backoff_initial_steps == 0 with the policy enabled must fall back to the
  // scheduler's constant reacquisition_backoff_steps — the pre-policy
  // behavior this layer extends.
  const Fleet f = make_fleet();
  const orbit::TimeGrid grid = make_grid();
  const fault::FaultTimeline faults = make_faults(grid, f);

  SchedulerConfig constant = f.config;
  constant.reacquisition_backoff_steps = 3;
  SchedulerConfig enabled_zero = constant;
  enabled_zero.degradation.enabled = true;  // no backoff fields set

  const BentPipeScheduler a(constant, f.satellites, f.terminals, f.stations);
  const BentPipeScheduler b(enabled_zero, f.satellites, f.terminals, f.stations);
  EXPECT_TRUE(a.run(grid, f.party_count, &faults, true) ==
              b.run(grid, f.party_count, &faults, true));
}

TEST(DegradationScheduler, SheddingDropsExactlyTheLowTier) {
  const Fleet f = make_fleet();
  const orbit::TimeGrid grid = make_grid();
  // A storm-style shock: every satellite at half capacity for the first 40%
  // of the window — healthy-beam fraction 0.5 during the shock (below the
  // junior tier's 0.8 threshold), 1.0 afterwards.
  fault::FaultTimeline faults(grid, f.satellites.size(), f.stations.size());
  const double shock_end = 0.4 * grid.duration_seconds();
  for (std::size_t si = 0; si < f.satellites.size(); ++si) {
    faults.add_transponder_degradation(si, 0.0, shock_end, 0.5);
  }

  SchedulerConfig config = f.config;
  config.degradation.enabled = true;
  config.degradation.party_tier = {0, 1};  // party 1 is the junior tier
  config.degradation.shed_below = {0.0, 0.8};
  config.degradation.slo_window_steps = 10;
  const BentPipeScheduler scheduler(config, f.satellites, f.terminals, f.stations);
  const ScheduleResult shed =
      scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true);

  const BentPipeScheduler baseline(f.config, f.satellites, f.terminals, f.stations);
  const ScheduleResult base =
      baseline.run(grid, f.party_count, &faults, /*keep_steps=*/true);

  const std::size_t shock_steps =
      static_cast<std::size_t>(shock_end / grid.step_seconds);
  std::size_t base_junior_links = 0;
  for (const StepSchedule& step : base.steps) {
    if (step.step >= shock_steps) continue;
    for (const LinkAssignment& link : step.links) {
      if (f.terminals[link.terminal_index].owner_party == 1) ++base_junior_links;
    }
  }
  // Without shedding the junior tier IS served during the shock (otherwise
  // this test would be vacuous)...
  ASSERT_GT(base_junior_links, 0u);
  // ...and with shedding it never is, while tier 0 keeps whatever capacity
  // survives (identical service to the unshedded run for tier 0 or better).
  for (const StepSchedule& step : shed.steps) {
    if (step.step >= shock_steps) continue;
    for (const LinkAssignment& link : step.links) {
      EXPECT_EQ(f.terminals[link.terminal_index].owner_party, 0u)
          << "junior-tier terminal served during the shock at step " << step.step;
    }
  }
  ASSERT_TRUE(shed.slo.has_value());
  EXPECT_GT(shed.slo->shed_seconds_by_party[1], 0.0);
  EXPECT_DOUBLE_EQ(shed.slo->shed_seconds_by_party[0], 0.0);
  EXPECT_GT(shed.slo->shed_terminal_steps, 0u);
  // After the shock the fleet is whole again: shedding stops, both runs
  // serve the same links step for step.
  for (std::size_t s = 0; s < shed.steps.size(); ++s) {
    if (shed.steps[s].step < shock_steps) continue;
    EXPECT_EQ(shed.steps[s].links.size(), base.steps[s].links.size())
        << "step " << shed.steps[s].step;
  }
}

}  // namespace
}  // namespace mpleo::net
