#include "net/ground_station.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace mpleo::net {
namespace {

TEST(GreatCircle, ZeroForSamePoint) {
  const auto p = orbit::Geodetic::from_degrees(25.0, 121.5);
  EXPECT_NEAR(great_circle_distance_m(p, p), 0.0, 1e-6);
}

TEST(GreatCircle, QuarterMeridian) {
  const auto equator = orbit::Geodetic::from_degrees(0.0, 0.0);
  const auto pole = orbit::Geodetic::from_degrees(90.0, 0.0);
  EXPECT_NEAR(great_circle_distance_m(equator, pole),
              util::kEarthMeanRadiusM * util::kPi / 2.0, 1.0);
}

TEST(GreatCircle, KnownCityPair) {
  // London - New York ~ 5570 km.
  const auto london = orbit::Geodetic::from_degrees(51.5074, -0.1278);
  const auto nyc = orbit::Geodetic::from_degrees(40.7128, -74.0060);
  EXPECT_NEAR(great_circle_distance_m(london, nyc) / 1000.0, 5570.0, 60.0);
}

TEST(GreatCircle, Symmetric) {
  const auto a = orbit::Geodetic::from_degrees(35.0, 139.0);
  const auto b = orbit::Geodetic::from_degrees(-33.9, 151.2);
  EXPECT_DOUBLE_EQ(great_circle_distance_m(a, b), great_circle_distance_m(b, a));
}

TEST(Gsaas, GlobalDefaultHasListings) {
  const GsaasInventory inv = GsaasInventory::global_default();
  EXPECT_GE(inv.listings().size(), 10u);
  for (const TeleportListing& listing : inv.listings()) {
    EXPECT_GT(listing.price_per_minute, 0.0);
    EXPECT_GT(listing.station.antenna_count, 0);
  }
}

TEST(Gsaas, CheapestNearFindsRegionalTeleport) {
  const GsaasInventory inv = GsaasInventory::global_default();
  const auto near_taipei = inv.cheapest_near(orbit::Geodetic::from_degrees(25.0, 121.5),
                                             3000e3);
  ASSERT_TRUE(near_taipei.has_value());
  // Seoul is the closest default teleport to Taipei.
  EXPECT_EQ(near_taipei->station.name, "Teleport-Seoul");
}

TEST(Gsaas, CheapestNearRespectsRadius) {
  const GsaasInventory inv = GsaasInventory::global_default();
  // 100 km around the middle of the Pacific: nothing.
  const auto nowhere = inv.cheapest_near(orbit::Geodetic::from_degrees(-10.0, -140.0),
                                         100e3);
  EXPECT_FALSE(nowhere.has_value());
}

TEST(Gsaas, CheapestPrefersLowerPrice) {
  GsaasInventory inv;
  GroundStation a;
  a.id = 1;
  a.name = "expensive";
  a.location = orbit::Geodetic::from_degrees(10.0, 10.0);
  GroundStation b = a;
  b.id = 2;
  b.name = "cheap";
  b.location = orbit::Geodetic::from_degrees(10.5, 10.5);
  inv.add_listing({a, 9.0});
  inv.add_listing({b, 2.0});
  const auto best = inv.cheapest_near(orbit::Geodetic::from_degrees(10.0, 10.0), 500e3);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->station.name, "cheap");
}

TEST(GroundStation, FrameIsAtLocation) {
  GroundStation gs;
  gs.location = orbit::Geodetic::from_degrees(45.0, 7.0, 300.0);
  const auto frame = gs.frame();
  const auto back = orbit::ecef_to_geodetic(frame.origin_ecef());
  EXPECT_NEAR(back.latitude_rad, gs.location.latitude_rad, 1e-9);
  EXPECT_NEAR(back.altitude_m, 300.0, 1e-3);
}

}  // namespace
}  // namespace mpleo::net
