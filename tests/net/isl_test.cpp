#include "net/isl.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "constellation/shell.hpp"
#include "coverage/cities.hpp"

namespace mpleo::net {
namespace {

using util::Vec3;

TEST(IslTopology, LinksWithinRangeOnly) {
  const std::vector<Vec3> positions{
      {0.0, 0.0, 0.0}, {1000e3, 0.0, 0.0}, {10000e3, 0.0, 0.0}};
  IslConfig cfg;
  cfg.max_range_m = 2000e3;
  const IslTopology topo = IslTopology::build(positions, cfg);
  EXPECT_EQ(topo.link_count(), 1u);  // only 0-1
  EXPECT_EQ(topo.neighbors(0).size(), 1u);
  EXPECT_EQ(topo.neighbors(2).size(), 0u);
}

TEST(IslTopology, DegreeCapRespected) {
  // Five satellites clustered within range; cap of 2 links each.
  std::vector<Vec3> positions;
  for (int i = 0; i < 5; ++i) positions.push_back({i * 100e3, 0.0, 0.0});
  IslConfig cfg;
  cfg.max_range_m = 1000e3;
  cfg.max_links_per_satellite = 2;
  const IslTopology topo = IslTopology::build(positions, cfg);
  for (std::size_t s = 0; s < positions.size(); ++s) {
    EXPECT_LE(topo.neighbors(s).size(), 2u);
  }
  // Mutual selection keeps the chain connected: 0-1, 1-2, 2-3, 3-4.
  EXPECT_GE(topo.link_count(), 4u);
}

TEST(IslTopology, HopsBfs) {
  // A line: 0 - 1 - 2 - 3.
  std::vector<Vec3> positions;
  for (int i = 0; i < 4; ++i) positions.push_back({i * 900e3, 0.0, 0.0});
  IslConfig cfg;
  cfg.max_range_m = 1000e3;
  cfg.max_links_per_satellite = 2;
  const IslTopology topo = IslTopology::build(positions, cfg);

  const std::vector<std::size_t> sources{0};
  const auto hops = topo.hops_from(sources);
  EXPECT_EQ(hops[0], 0);
  EXPECT_EQ(hops[1], 1);
  EXPECT_EQ(hops[2], 2);
  EXPECT_EQ(hops[3], 3);
}

TEST(IslTopology, UnreachableComponents) {
  const std::vector<Vec3> positions{
      {0.0, 0.0, 0.0}, {500e3, 0.0, 0.0}, {9000e3, 0.0, 0.0}};
  IslConfig cfg;
  cfg.max_range_m = 1000e3;
  const IslTopology topo = IslTopology::build(positions, cfg);
  const std::vector<std::size_t> sources{0};
  const auto hops = topo.hops_from(sources);
  EXPECT_EQ(hops[2], IslTopology::kUnreachable);
}

TEST(IslTopology, MultipleSources) {
  std::vector<Vec3> positions;
  for (int i = 0; i < 5; ++i) positions.push_back({i * 900e3, 0.0, 0.0});
  IslConfig cfg;
  cfg.max_range_m = 1000e3;
  cfg.max_links_per_satellite = 2;
  const IslTopology topo = IslTopology::build(positions, cfg);
  const std::vector<std::size_t> sources{0, 4};
  const auto hops = topo.hops_from(sources);
  EXPECT_EQ(hops[2], 2);  // middle reached from either end
  EXPECT_EQ(hops[3], 1);
}

TEST(IslTopology, InvalidConfigThrows) {
  IslConfig cfg;
  cfg.max_range_m = -1.0;
  EXPECT_THROW(IslTopology::build({}, cfg), std::invalid_argument);
}

class IslCoverageFixture : public ::testing::Test {
 protected:
  IslCoverageFixture()
      : grid_(orbit::TimeGrid::over_duration(
            orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 6.0 * 3600.0, 120.0)),
        engine_(grid_, 25.0),
        terminal_(orbit::Geodetic::from_degrees(0.0, 121.5)) {
    // A dense equatorial ring: 24 satellites 15 deg apart give continuous
    // equator coverage (footprint half-width ~8.45 deg) and a connected ISL
    // ring (neighbour spacing ~1800 km < 3000 km laser reach).
    sats_ = constellation::single_plane(
        550e3, 0.0, 0.0, 24, orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"));
    // Gateway 90 deg of longitude away on the equator: no single satellite
    // ever sees both sites, so bent-pipe alone cannot serve the terminal.
    gateways_.push_back(
        {"gw", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(0.0, 31.5)), 1.0});
  }

  orbit::TimeGrid grid_;
  cov::CoverageEngine engine_;
  orbit::TopocentricFrame terminal_;
  std::vector<constellation::Satellite> sats_;
  std::vector<cov::GroundSite> gateways_;
};

TEST_F(IslCoverageFixture, ZeroHopsEqualsBentPipeRule) {
  IslConfig cfg;
  cfg.max_hops = 0;
  const cov::StepMask isl = isl_coverage_mask(engine_, sats_, terminal_, gateways_, cfg);

  // Bent-pipe rule computed directly: satellite must see both sides.
  cov::StepMask expected(grid_.count);
  for (const auto& sat : sats_) {
    const cov::StepMask term_mask = engine_.visibility_mask(sat, terminal_);
    const cov::StepMask gw_mask = engine_.visibility_mask(sat, gateways_[0].frame);
    expected |= (term_mask & gw_mask);
  }
  EXPECT_EQ(isl, expected);
}

TEST_F(IslCoverageFixture, MoreHopsNeverReduceCoverage) {
  std::size_t previous = 0;
  for (int hops : {0, 1, 3, 6}) {
    IslConfig cfg;
    cfg.max_hops = hops;
    const std::size_t covered =
        isl_coverage_mask(engine_, sats_, terminal_, gateways_, cfg).count();
    EXPECT_GE(covered, previous) << "hops=" << hops;
    previous = covered;
  }
}

TEST_F(IslCoverageFixture, IslsBridgeTerminalToRemoteGateway) {
  // §4's future-work claim in numbers: multi-hop ISLs let the terminal reach
  // a gateway a quarter of the planet away, which bent-pipe cannot.
  IslConfig cfg;
  cfg.max_hops = 10;
  cfg.max_range_m = 3000e3;
  const std::size_t with_isl =
      isl_coverage_mask(engine_, sats_, terminal_, gateways_, cfg).count();

  IslConfig no_hops = cfg;
  no_hops.max_hops = 0;
  const std::size_t bent_pipe =
      isl_coverage_mask(engine_, sats_, terminal_, gateways_, no_hops).count();
  EXPECT_EQ(bent_pipe, 0u);  // 90 deg apart: no shared footprint
  // The ring covers the whole equator continuously, so ISL service is
  // (nearly) continuous.
  EXPECT_GT(with_isl, grid_.count * 9 / 10);
}

}  // namespace
}  // namespace mpleo::net
