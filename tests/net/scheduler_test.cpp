#include "net/scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "orbit/geodesy.hpp"

namespace mpleo::net {
namespace {

using constellation::Satellite;
using util::Vec3;

Terminal make_terminal(double lat, double lon, std::uint32_t party, TerminalId id = 0) {
  Terminal t;
  t.id = id;
  t.name = "T" + std::to_string(id);
  t.location = orbit::Geodetic::from_degrees(lat, lon);
  t.owner_party = party;
  t.radio = default_user_terminal();
  return t;
}

GroundStation make_station(double lat, double lon, std::uint32_t party,
                           GroundStationId id = 0) {
  GroundStation gs;
  gs.id = id;
  gs.name = "G" + std::to_string(id);
  gs.location = orbit::Geodetic::from_degrees(lat, lon);
  gs.owner_party = party;
  gs.radio = default_ground_station();
  return gs;
}

Satellite owned_satellite(std::uint32_t party) {
  Satellite sat;
  sat.owner_party = party;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 0.0, 0.0);
  return sat;
}

// A satellite position 550 km above the given geodetic point.
Vec3 overhead_of(double lat, double lon) {
  return orbit::geodetic_to_ecef(orbit::Geodetic::from_degrees(lat, lon, 550e3));
}

TEST(ScheduleStep, AssignsVisibleSatellite) {
  SchedulerConfig cfg;
  const BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                    {make_terminal(10.0, 20.0, 0)},
                                    {make_station(10.5, 20.5, 0)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  ASSERT_EQ(schedule.links.size(), 1u);
  EXPECT_TRUE(schedule.unserved_terminals.empty());
  const LinkAssignment& link = schedule.links.front();
  EXPECT_EQ(link.terminal_index, 0u);
  EXPECT_EQ(link.satellite_index, 0u);
  EXPECT_FALSE(link.spare);
  EXPECT_GT(link.capacity_bps, 0.0);
}

TEST(ScheduleStep, NoLinkWithoutGroundStationVisibility) {
  // Bent-pipe requires simultaneous visibility; the GS is on the other side
  // of the planet.
  SchedulerConfig cfg;
  const BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                    {make_terminal(10.0, 20.0, 0)},
                                    {make_station(-10.0, -160.0, 0)});
  const std::vector<Vec3> positions{overhead_of(10.0, 20.0)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  EXPECT_TRUE(schedule.links.empty());
  ASSERT_EQ(schedule.unserved_terminals.size(), 1u);
}

TEST(ScheduleStep, ForeignGroundStationDoesNotServe) {
  // The only GS in range belongs to another party: a participant's terminals
  // connect to their *own* ground stations (§3.1).
  SchedulerConfig cfg;
  const BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                    {make_terminal(10.0, 20.0, 0)},
                                    {make_station(10.5, 20.5, /*party=*/1)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  EXPECT_TRUE(scheduler.schedule_step(positions, 0).links.empty());
}

TEST(ScheduleStep, SpareCapacityServesOtherParty) {
  // Party 1 has a terminal + GS but no satellite; party 0's satellite serves
  // it on spare capacity.
  SchedulerConfig cfg;
  const BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                    {make_terminal(10.0, 20.0, 1)},
                                    {make_station(10.5, 20.5, 1)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  ASSERT_EQ(schedule.links.size(), 1u);
  EXPECT_TRUE(schedule.links.front().spare);
}

TEST(ScheduleStep, SpareExcludedPartyTakesNothingFromCommons) {
  // Same single-satellite geometry as SpareCapacityServesOtherParty, but
  // party 1 is spare-banned: its terminal goes unserved even though capacity
  // is free.
  SchedulerConfig cfg;
  cfg.spare_exclude_party = {0, 1};
  const BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                    {make_terminal(10.0, 20.0, 1)},
                                    {make_station(10.5, 20.5, 1)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  EXPECT_TRUE(schedule.links.empty());
  ASSERT_EQ(schedule.unserved_terminals.size(), 1u);
}

TEST(ScheduleStep, SpareExcludedPartyOffersNothingButServesItself) {
  // The satellite owner is spare-banned: others get nothing from its beams,
  // while its own terminal keeps full service (graceful, not a blackout).
  SchedulerConfig cfg;
  cfg.spare_exclude_party = {1, 0};
  const BentPipeScheduler scheduler(
      cfg, {owned_satellite(0)},
      {make_terminal(10.0, 20.0, 1, 0), make_terminal(10.3, 20.3, 0, 1)},
      {make_station(10.5, 20.5, 0, 0), make_station(10.6, 20.6, 1, 1)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  ASSERT_EQ(schedule.links.size(), 1u);
  EXPECT_EQ(schedule.links.front().terminal_index, 1u);  // owner still served
  EXPECT_FALSE(schedule.links.front().spare);
  EXPECT_EQ(schedule.unserved_terminals.size(), 1u);  // party 1 shut out
}

TEST(ScheduleStep, AllZeroExclusionVectorChangesNothing) {
  SchedulerConfig plain;
  SchedulerConfig governed;
  governed.spare_exclude_party = {0, 0};
  governed.spare_withheld_fraction = {0.0, 0.0};
  const std::vector<Satellite> sats{owned_satellite(0)};
  const std::vector<Terminal> terminals{make_terminal(10.0, 20.0, 1)};
  const std::vector<GroundStation> stations{make_station(10.5, 20.5, 1)};
  const BentPipeScheduler a(plain, sats, terminals, stations);
  const BentPipeScheduler b(governed, sats, terminals, stations);
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule sa = a.schedule_step(positions, 0);
  const StepSchedule sb = b.schedule_step(positions, 0);
  ASSERT_EQ(sa.links.size(), sb.links.size());
  ASSERT_EQ(sa.links.size(), 1u);
  EXPECT_EQ(sa.links.front().terminal_index, sb.links.front().terminal_index);
  EXPECT_EQ(sa.unserved_terminals, sb.unserved_terminals);
}

TEST(ScheduleStep, WithheldFractionReservesSpareBeams) {
  // Party 0 withholds half its 2 beams: 1 beam stays reserved for its own
  // traffic, so of two foreign terminals in range only one rides spare.
  SchedulerConfig cfg;
  cfg.beams_per_satellite = 2;
  cfg.spare_withheld_fraction = {0.5, 0.0};
  const BentPipeScheduler scheduler(
      cfg, {owned_satellite(0)},
      {make_terminal(10.0, 20.0, 1, 0), make_terminal(10.3, 20.3, 1, 1)},
      {make_station(10.5, 20.5, 1)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  EXPECT_EQ(schedule.links.size(), 1u);
  EXPECT_EQ(schedule.unserved_terminals.size(), 1u);

  // Full withholding starves the commons entirely.
  cfg.spare_withheld_fraction = {1.0, 0.0};
  const BentPipeScheduler hoarder(
      cfg, {owned_satellite(0)},
      {make_terminal(10.0, 20.0, 1, 0), make_terminal(10.3, 20.3, 1, 1)},
      {make_station(10.5, 20.5, 1)});
  EXPECT_TRUE(hoarder.schedule_step(positions, 0).links.empty());
}

TEST(ScheduleStep, WithheldBeamsStayAvailableToOwner) {
  // Withholding reserves beams from the COMMONS, not from the owner: party
  // 0's own terminals still use all beams.
  SchedulerConfig cfg;
  cfg.beams_per_satellite = 2;
  cfg.spare_withheld_fraction = {1.0};
  const BentPipeScheduler scheduler(
      cfg, {owned_satellite(0)},
      {make_terminal(10.0, 20.0, 0, 0), make_terminal(10.3, 20.3, 0, 1)},
      {make_station(10.5, 20.5, 0)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  EXPECT_EQ(scheduler.schedule_step(positions, 0).links.size(), 2u);
}

TEST(Scheduler, RejectsInvalidWithheldFractions) {
  const std::vector<Satellite> sats{owned_satellite(0)};
  const std::vector<Terminal> terminals{make_terminal(10.0, 20.0, 0)};
  const std::vector<GroundStation> stations{make_station(10.5, 20.5, 0)};
  for (const double bad : {-0.1, 1.5, std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    SchedulerConfig cfg;
    cfg.spare_withheld_fraction = {bad};
    EXPECT_THROW(BentPipeScheduler(cfg, sats, terminals, stations),
                 std::invalid_argument);
  }
}

TEST(ScheduleStep, OwnerHasPriorityOverSpare) {
  // One beam, one satellite owned by party 0; both parties have a terminal
  // in range. The owner's terminal wins the beam.
  SchedulerConfig cfg;
  cfg.beams_per_satellite = 1;
  const BentPipeScheduler scheduler(
      cfg, {owned_satellite(0)},
      {make_terminal(10.0, 20.0, 1, 0), make_terminal(10.3, 20.3, 0, 1)},
      {make_station(10.5, 20.5, 0, 0), make_station(10.6, 20.6, 1, 1)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  ASSERT_EQ(schedule.links.size(), 1u);
  EXPECT_EQ(schedule.links.front().terminal_index, 1u);  // the owner's terminal
  EXPECT_FALSE(schedule.links.front().spare);
  ASSERT_EQ(schedule.unserved_terminals.size(), 1u);
  EXPECT_EQ(schedule.unserved_terminals.front(), 0u);
}

TEST(ScheduleStep, BeamLimitCapsAssignments) {
  SchedulerConfig cfg;
  cfg.beams_per_satellite = 2;
  std::vector<Terminal> terminals;
  for (int i = 0; i < 5; ++i) {
    terminals.push_back(make_terminal(10.0 + 0.1 * i, 20.0, 0, static_cast<TerminalId>(i)));
  }
  const BentPipeScheduler scheduler(cfg, {owned_satellite(0)}, terminals,
                                    {make_station(10.5, 20.5, 0)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  EXPECT_EQ(schedule.links.size(), 2u);
  EXPECT_EQ(schedule.unserved_terminals.size(), 3u);
}

TEST(Run, AggregatesOverGrid) {
  SchedulerConfig cfg;
  // Party 0: satellite + terminal + GS near Taipei. Party 1: terminal + GS
  // only (rides spare capacity).
  std::vector<Satellite> sats;
  for (double raan : {0.0, 45.0, 90.0, 135.0, 180.0, 225.0, 270.0, 315.0}) {
    Satellite s = owned_satellite(0);
    s.elements = orbit::ClassicalElements::circular(550e3, 53.0, raan, raan);
    s.epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
    sats.push_back(s);
  }
  const std::vector<Terminal> terminals{make_terminal(25.0, 121.5, 0, 0),
                                        make_terminal(25.1, 121.6, 1, 1)};
  const std::vector<GroundStation> stations{make_station(24.9, 121.4, 0, 0),
                                            make_station(25.2, 121.7, 1, 1)};
  const BentPipeScheduler scheduler(cfg, sats, terminals, stations);

  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 120.0);
  const ScheduleResult result = scheduler.run(grid, 2);

  ASSERT_EQ(result.per_party.size(), 2u);
  // Party 0 used its own satellites.
  EXPECT_GT(result.per_party[0].own_link_seconds, 0.0);
  // Party 1 rode spare capacity provided by party 0.
  EXPECT_GT(result.per_party[1].spare_used_seconds, 0.0);
  EXPECT_GT(result.per_party[0].spare_provided_seconds, 0.0);
  EXPECT_NEAR(result.per_party[0].spare_provided_seconds,
              result.per_party[1].spare_used_seconds, 1e-9);
  EXPECT_GT(result.per_party[1].bytes_received_from_others, 0.0);
  // With only 8 satellites most of the day is unserved.
  EXPECT_GT(result.total_unserved_seconds, 0.0);
  // Conservation: served + unserved = terminals * window.
  EXPECT_NEAR(result.total_served_seconds + result.total_unserved_seconds,
              2.0 * grid.duration_seconds(), 1e-6);
}

TEST(Run, KeepStepsRetainsSchedules) {
  SchedulerConfig cfg;
  const BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                    {make_terminal(25.0, 121.5, 0)},
                                    {make_station(24.9, 121.4, 0)});
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 3600.0, 60.0);
  const ScheduleResult result = scheduler.run(grid, 1, /*keep_steps=*/true);
  EXPECT_EQ(result.steps.size(), grid.count);
}

TEST(Run, RejectsOutOfRangeOwners) {
  SchedulerConfig cfg;
  const BentPipeScheduler scheduler(cfg, {owned_satellite(3)},
                                    {make_terminal(25.0, 121.5, 0)},
                                    {make_station(24.9, 121.4, 0)});
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 600.0, 60.0);
  EXPECT_THROW((void)scheduler.run(grid, 2), std::invalid_argument);
}

TEST(ScheduleStep, SparePriorityOrdersContention) {
  // One beam of spare capacity, two foreign terminals competing. Without
  // weights, the lower terminal index wins; with reputation weights, the
  // higher-weight party wins regardless of index.
  SchedulerConfig cfg;
  cfg.beams_per_satellite = 1;
  const std::vector<Satellite> sats{owned_satellite(0)};
  const std::vector<Terminal> terminals{make_terminal(10.0, 20.0, 1, 0),
                                        make_terminal(10.3, 20.3, 2, 1)};
  const std::vector<GroundStation> stations{make_station(10.5, 20.5, 1, 0),
                                            make_station(10.6, 20.6, 2, 1)};
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};

  const BentPipeScheduler fifo(cfg, sats, terminals, stations);
  const StepSchedule fifo_schedule = fifo.schedule_step(positions, 0);
  ASSERT_EQ(fifo_schedule.links.size(), 1u);
  EXPECT_EQ(fifo_schedule.links.front().terminal_index, 0u);

  cfg.spare_priority_by_party = {1.0, 0.2, 0.9};  // party 2 outranks party 1
  const BentPipeScheduler weighted(cfg, sats, terminals, stations);
  const StepSchedule weighted_schedule = weighted.schedule_step(positions, 0);
  ASSERT_EQ(weighted_schedule.links.size(), 1u);
  EXPECT_EQ(weighted_schedule.links.front().terminal_index, 1u);
  EXPECT_TRUE(weighted_schedule.links.front().spare);
}

TEST(ScheduleStep, SparePriorityNeverBlocksOwnService) {
  // Even with zero spare priority, a party's own satellites serve it.
  SchedulerConfig cfg;
  cfg.spare_priority_by_party = {0.0};
  const BentPipeScheduler scheduler(cfg, {owned_satellite(0)},
                                    {make_terminal(10.0, 20.0, 0)},
                                    {make_station(10.5, 20.5, 0)});
  const std::vector<Vec3> positions{overhead_of(10.2, 20.2)};
  const StepSchedule schedule = scheduler.schedule_step(positions, 0);
  ASSERT_EQ(schedule.links.size(), 1u);
  EXPECT_FALSE(schedule.links.front().spare);
}

TEST(Scheduler, RejectsInvalidSparePriorityWeights) {
  const std::vector<Satellite> sats{owned_satellite(0)};
  const std::vector<Terminal> terminals{make_terminal(10.0, 20.0, 0)};
  const std::vector<GroundStation> stations{make_station(10.5, 20.5, 0)};

  SchedulerConfig cfg;
  cfg.spare_priority_by_party = {std::nan("")};
  EXPECT_THROW(BentPipeScheduler(cfg, sats, terminals, stations), std::invalid_argument);

  cfg.spare_priority_by_party = {std::numeric_limits<double>::infinity()};
  EXPECT_THROW(BentPipeScheduler(cfg, sats, terminals, stations), std::invalid_argument);

  cfg.spare_priority_by_party = {-0.5};
  EXPECT_THROW(BentPipeScheduler(cfg, sats, terminals, stations), std::invalid_argument);
}

TEST(Scheduler, NonEmptySparePriorityMustCoverEveryParty) {
  SchedulerConfig cfg;
  cfg.spare_priority_by_party = {1.0, 0.5};  // covers parties 0 and 1 only

  // Terminal owned by party 2: uncovered.
  EXPECT_THROW(BentPipeScheduler(cfg, {owned_satellite(0)},
                                 {make_terminal(10.0, 20.0, 2)},
                                 {make_station(10.5, 20.5, 0)}),
               std::invalid_argument);

  // Satellite owned by party 2: uncovered.
  EXPECT_THROW(BentPipeScheduler(cfg, {owned_satellite(2)},
                                 {make_terminal(10.0, 20.0, 0)},
                                 {make_station(10.5, 20.5, 0)}),
               std::invalid_argument);

  // Unowned satellites are exempt from coverage, and an empty weight vector
  // (FIFO) never restricts party indices.
  EXPECT_NO_THROW(BentPipeScheduler(cfg, {owned_satellite(Satellite::kUnowned)},
                                    {make_terminal(10.0, 20.0, 1)},
                                    {make_station(10.5, 20.5, 1)}));
  cfg.spare_priority_by_party.clear();
  EXPECT_NO_THROW(BentPipeScheduler(cfg, {owned_satellite(7)},
                                    {make_terminal(10.0, 20.0, 5)},
                                    {make_station(10.5, 20.5, 5)}));
}

TEST(Scheduler, RejectsZeroBeams) {
  SchedulerConfig cfg;
  cfg.beams_per_satellite = 0;
  EXPECT_THROW(BentPipeScheduler(cfg, {}, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::net
