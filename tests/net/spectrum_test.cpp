#include "net/spectrum.hpp"

#include <gtest/gtest.h>

namespace mpleo::net {
namespace {

TEST(BandPlans, ThreePrimaryBands) {
  const auto& plans = standard_band_plans();
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans[0].band, Band::kX);
  EXPECT_EQ(plans[1].band, Band::kKu);
  EXPECT_EQ(plans[2].band, Band::kKa);
  for (const BandPlan& p : plans) {
    EXPECT_LT(p.uplink_lo_hz, p.uplink_hi_hz);
    EXPECT_LT(p.downlink_lo_hz, p.downlink_hi_hz);
  }
}

TEST(BandPlans, Names) {
  EXPECT_STREQ(band_name(Band::kX), "X");
  EXPECT_STREQ(band_name(Band::kKu), "Ku");
  EXPECT_STREQ(band_name(Band::kKa), "Ka");
}

TEST(ChannelTable, GrantsNonOverlappingChannels) {
  ChannelTable table(standard_band_plans()[1]);  // Ku
  const auto a = table.grant(62.5e6, 0);
  const auto b = table.grant(62.5e6, 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->id, b->id);
  EXPECT_FALSE(ChannelTable::conflicts(*a, *b));
}

TEST(ChannelTable, ExhaustsBand) {
  // Ku uplink span 500 MHz: 8 channels of 62.5 MHz fit; the 9th fails.
  ChannelTable table(standard_band_plans()[1]);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(table.grant(62.5e6, 0).has_value()) << "channel " << i;
  }
  EXPECT_FALSE(table.grant(62.5e6, 0).has_value());
}

TEST(ChannelTable, ReleaseFreesSpectrum) {
  ChannelTable table(standard_band_plans()[1]);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(table.grant(62.5e6, 0)->id);
  ASSERT_FALSE(table.grant(62.5e6, 0).has_value());
  EXPECT_TRUE(table.release(ids[3]));
  EXPECT_TRUE(table.grant(62.5e6, 1).has_value());  // reuses the freed slot
}

TEST(ChannelTable, ReleaseUnknownIsFalse) {
  ChannelTable table(standard_band_plans()[0]);
  EXPECT_FALSE(table.release(999));
}

TEST(ChannelTable, RejectsOversizedRequests) {
  ChannelTable table(standard_band_plans()[1]);
  EXPECT_FALSE(table.grant(10e9, 0).has_value());
  EXPECT_FALSE(table.grant(0.0, 0).has_value());
}

TEST(ChannelTable, ConflictDetection) {
  Channel a;
  a.uplink_center_hz = 14.1e9;
  a.downlink_center_hz = 11.0e9;
  a.bandwidth_hz = 100e6;
  Channel b = a;
  b.uplink_center_hz = 14.15e9;  // 50 MHz apart < 100 MHz width -> overlap
  EXPECT_TRUE(ChannelTable::conflicts(a, b));
  b.uplink_center_hz = 14.25e9;  // 150 MHz apart -> uplink clear
  b.downlink_center_hz = 11.25e9;
  EXPECT_FALSE(ChannelTable::conflicts(a, b));
  // Downlink overlap alone is still a conflict.
  b.downlink_center_hz = 11.05e9;
  EXPECT_TRUE(ChannelTable::conflicts(a, b));
}

TEST(ChannelTable, OwnerRecordedOnGrant) {
  ChannelTable table(standard_band_plans()[2]);
  const auto ch = table.grant(125e6, 7);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->owner_party, 7u);
  EXPECT_EQ(ch->band, Band::kKa);
}

}  // namespace
}  // namespace mpleo::net
