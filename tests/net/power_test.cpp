#include "net/power.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::net {
namespace {

cov::StepMask all_set(std::size_t n) {
  cov::StepMask m(n);
  for (std::size_t i = 0; i < n; ++i) m.set(i);
  return m;
}

TEST(Power, SunlitIdleChargesToFull) {
  PowerConfig cfg;
  cfg.initial_charge_fraction = 0.5;
  const auto result =
      simulate_power(cfg, all_set(100), cov::StepMask(100), 60.0);
  EXPECT_EQ(result.denied_steps, 0u);
  EXPECT_NEAR(result.charge_wh.back(), cfg.battery_capacity_wh, 1e-9);
}

TEST(Power, EclipseDrainsBattery) {
  PowerConfig cfg;
  const auto result =
      simulate_power(cfg, cov::StepMask(60), cov::StepMask(60), 60.0);
  // Bus load of 120 W for an hour = 120 Wh off the battery.
  EXPECT_NEAR(result.charge_wh.back(), cfg.battery_capacity_wh - 120.0, 1e-9);
}

TEST(Power, TransmitRequestsDeniedAtDodFloor) {
  PowerConfig cfg;
  cfg.battery_capacity_wh = 100.0;
  cfg.max_depth_of_discharge = 0.5;  // floor at 50 Wh
  cfg.solar_panel_w = 0.0;           // permanent eclipse
  cfg.bus_load_w = 0.0;
  cfg.transponder_load_w = 600.0;    // 10 Wh per minute step
  const auto result = simulate_power(cfg, cov::StepMask(20), all_set(20), 60.0);
  // 5 steps of transmitting drop 100 -> 50 Wh; the rest are denied.
  EXPECT_EQ(result.transmitted.count(), 5u);
  EXPECT_EQ(result.denied_steps, 15u);
  EXPECT_NEAR(result.min_charge_wh, 50.0, 1e-9);
  // The floor is never violated.
  for (double c : result.charge_wh) EXPECT_GE(c, 50.0 - 1e-9);
}

TEST(Power, ChargeNeverExceedsCapacity) {
  PowerConfig cfg;
  cfg.solar_panel_w = 10000.0;
  const auto result = simulate_power(cfg, all_set(50), all_set(50), 60.0);
  for (double c : result.charge_wh) EXPECT_LE(c, cfg.battery_capacity_wh + 1e-9);
  EXPECT_EQ(result.denied_steps, 0u);
  EXPECT_EQ(result.transmitted.count(), 50u);
}

TEST(Power, RecoversAfterEclipse) {
  PowerConfig cfg;
  cfg.battery_capacity_wh = 200.0;
  // 30 steps eclipse then 30 sunlit, transmit wanted throughout.
  cov::StepMask sunlit(60);
  for (std::size_t i = 30; i < 60; ++i) sunlit.set(i);
  const auto result = simulate_power(cfg, sunlit, all_set(60), 60.0);
  // Some transmission happens in both phases; battery ends higher than its
  // minimum.
  EXPECT_GT(result.transmitted.count(), 0u);
  EXPECT_GT(result.charge_wh.back(), result.min_charge_wh);
}

TEST(Power, InvalidInputsThrow) {
  PowerConfig cfg;
  EXPECT_THROW((void)simulate_power(cfg, cov::StepMask(5), cov::StepMask(6), 60.0),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_power(cfg, cov::StepMask(5), cov::StepMask(5), 0.0),
               std::invalid_argument);
  cfg.max_depth_of_discharge = 0.0;
  EXPECT_THROW((void)simulate_power(cfg, cov::StepMask(5), cov::StepMask(5), 60.0),
               std::invalid_argument);
}

TEST(Power, SustainableDutyBehaviour) {
  PowerConfig cfg;
  cfg.solar_panel_w = 400.0;
  cfg.bus_load_w = 120.0;
  cfg.transponder_load_w = 180.0;
  // At 65% sunlight: (400*0.65 - 120) / 180 = 0.777...
  EXPECT_NEAR(sustainable_transmit_duty(cfg, 0.65), 0.7778, 1e-3);
  // Full sun: capped at 1.
  EXPECT_DOUBLE_EQ(sustainable_transmit_duty(cfg, 1.0), 1.0);
  // Not enough sun to even run the bus: 0.
  EXPECT_DOUBLE_EQ(sustainable_transmit_duty(cfg, 0.25), 0.0);
  // Monotone in sunlight.
  EXPECT_GE(sustainable_transmit_duty(cfg, 0.8), sustainable_transmit_duty(cfg, 0.6));
}

}  // namespace
}  // namespace mpleo::net
