#include "core/governance.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::core {
namespace {

QuorumPolicy three_of_five() {
  QuorumPolicy policy;
  policy.council = {0, 1, 2, 3, 4};
  policy.required = 3;
  return policy;
}

TEST(Governance, InvalidPolicyRejected) {
  QuorumPolicy empty;
  empty.required = 1;
  EXPECT_THROW(CommandAuthority(empty, 1), std::invalid_argument);
  QuorumPolicy too_high;
  too_high.council = {0, 1};
  too_high.required = 3;
  EXPECT_THROW(CommandAuthority(too_high, 1), std::invalid_argument);
}

TEST(Governance, QuorumAuthorizesCommand) {
  CommandAuthority authority(three_of_five(), 42);
  const auto cmd = authority.propose(7, CommandAction::kBeamReconfigure);

  for (PartyId p : {0u, 1u}) {
    const auto approval = CommandAuthority::sign(cmd, 7, CommandAction::kBeamReconfigure,
                                                 p, authority.party_key(p));
    EXPECT_EQ(authority.approve(cmd, approval), CommandStatus::kPending);
  }
  const auto third = CommandAuthority::sign(cmd, 7, CommandAction::kBeamReconfigure, 2,
                                            authority.party_key(2));
  EXPECT_EQ(authority.approve(cmd, third), CommandStatus::kAuthorized);

  const auto record = authority.record(cmd);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->status, CommandStatus::kAuthorized);
  EXPECT_EQ(record->approvals.size(), 3u);
}

TEST(Governance, DuplicateApprovalsAreIdempotent) {
  CommandAuthority authority(three_of_five(), 42);
  const auto cmd = authority.propose(1, CommandAction::kSafeMode);
  const auto approval = CommandAuthority::sign(cmd, 1, CommandAction::kSafeMode, 0,
                                               authority.party_key(0));
  EXPECT_EQ(authority.approve(cmd, approval), CommandStatus::kPending);
  EXPECT_EQ(authority.approve(cmd, approval), CommandStatus::kPending);
  EXPECT_EQ(authority.record(cmd)->approvals.size(), 1u);
}

TEST(Governance, ForgedSignatureRejected) {
  CommandAuthority authority(three_of_five(), 42);
  const auto cmd = authority.propose(1, CommandAction::kDeorbit);
  Approval forged = CommandAuthority::sign(cmd, 1, CommandAction::kDeorbit, 0,
                                           authority.party_key(0));
  forged.signature ^= 1;
  EXPECT_EQ(authority.approve(cmd, forged), CommandStatus::kRejected);
  EXPECT_EQ(authority.record(cmd)->approvals.size(), 0u);
}

TEST(Governance, SignatureBoundToActionAndCommand) {
  CommandAuthority authority(three_of_five(), 42);
  const auto cmd_a = authority.propose(1, CommandAction::kSoftwareUpdate);
  const auto cmd_b = authority.propose(1, CommandAction::kDeorbit);
  // An approval signed for the benign update must not authorize the deorbit.
  const auto benign = CommandAuthority::sign(cmd_a, 1, CommandAction::kSoftwareUpdate, 0,
                                             authority.party_key(0));
  EXPECT_EQ(authority.approve(cmd_b, benign), CommandStatus::kRejected);
}

TEST(Governance, StolenKeyCannotSignForAnotherParty) {
  CommandAuthority authority(three_of_five(), 42);
  const auto cmd = authority.propose(1, CommandAction::kDeorbit);
  // Party 3's key used to craft an approval attributed to party 0.
  const auto impostor = CommandAuthority::sign(cmd, 1, CommandAction::kDeorbit, 0,
                                               authority.party_key(3));
  EXPECT_EQ(authority.approve(cmd, impostor), CommandStatus::kRejected);
}

TEST(Governance, NonCouncilApproverRejected) {
  CommandAuthority authority(three_of_five(), 42);
  const auto cmd = authority.propose(1, CommandAction::kSafeMode);
  Approval outsider;
  outsider.approver = 99;
  outsider.signature = 12345;
  EXPECT_EQ(authority.approve(cmd, outsider), CommandStatus::kRejected);
  EXPECT_THROW((void)authority.party_key(99), std::invalid_argument);
}

TEST(Governance, SinglePartyCannotDeorbitUnderQuorum) {
  // The paper's headline property: one party alone cannot execute a
  // destructive command on shared infrastructure.
  CommandAuthority authority(three_of_five(), 42);
  const auto cmd = authority.propose(5, CommandAction::kDeorbit);
  const auto only = CommandAuthority::sign(cmd, 5, CommandAction::kDeorbit, 4,
                                           authority.party_key(4));
  EXPECT_EQ(authority.approve(cmd, only), CommandStatus::kPending);
  EXPECT_NE(authority.record(cmd)->status, CommandStatus::kAuthorized);
}

TEST(Governance, UnknownCommandThrows) {
  CommandAuthority authority(three_of_five(), 42);
  Approval approval;
  EXPECT_THROW(authority.approve(999, approval), std::out_of_range);
  EXPECT_FALSE(authority.record(999).has_value());
}

TEST(Governance, AuditLogRecordsLifecycle) {
  CommandAuthority authority(three_of_five(), 42);
  const auto cmd = authority.propose(2, CommandAction::kSoftwareUpdate);
  for (PartyId p : {0u, 1u, 2u}) {
    (void)authority.approve(cmd, CommandAuthority::sign(
                                     cmd, 2, CommandAction::kSoftwareUpdate, p,
                                     authority.party_key(p)));
  }
  const auto& log = authority.audit_log();
  ASSERT_GE(log.size(), 5u);  // propose + 3 approvals + executed
  EXPECT_NE(log.front().find("proposed"), std::string::npos);
  EXPECT_NE(log.back().find("executed"), std::string::npos);
}

TEST(Governance, ActionNames) {
  EXPECT_STREQ(to_string(CommandAction::kBeamReconfigure), "beam-reconfigure");
  EXPECT_STREQ(to_string(CommandAction::kSoftwareUpdate), "software-update");
  EXPECT_STREQ(to_string(CommandAction::kSafeMode), "safe-mode");
  EXPECT_STREQ(to_string(CommandAction::kDeorbit), "deorbit");
}

}  // namespace
}  // namespace mpleo::core
