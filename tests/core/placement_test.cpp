#include "core/placement.hpp"

#include <gtest/gtest.h>

#include "constellation/designer.hpp"
#include "coverage/cities.hpp"

namespace mpleo::core {
namespace {

orbit::TimeGrid test_grid() {
  // One day at 120 s keeps these tests fast while preserving geometry.
  return orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 120.0);
}

std::vector<constellation::Satellite> plane_of(int count, double phase_offset = 0.0) {
  return constellation::single_plane(546e3, 53.0, 0.0, count,
                                     orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"),
                                     phase_offset);
}

class PlacementFixture : public ::testing::Test {
 protected:
  PlacementFixture()
      : engine_(test_grid(), 25.0),
        sites_(cov::sites_from_cities(cov::paper_cities())),
        optimizer_(engine_, sites_) {}

  cov::CoverageEngine engine_;
  std::vector<cov::GroundSite> sites_;
  PlacementOptimizer optimizer_;
};

TEST_F(PlacementFixture, MarginalGainIsPositiveForNewOrbit) {
  const auto base = plane_of(4);
  const auto candidate = orbit::ClassicalElements::circular(546e3, 97.6, 90.0, 45.0);
  const double gain =
      optimizer_.marginal_gain_seconds(base, candidate, base.front().epoch);
  EXPECT_GT(gain, 0.0);
}

TEST_F(PlacementFixture, DuplicateSatelliteAddsNothing) {
  const auto base = plane_of(4);
  const double gain = optimizer_.marginal_gain_seconds(base, base.front().elements,
                                                       base.front().epoch);
  EXPECT_NEAR(gain, 0.0, 1e-9);
}

TEST_F(PlacementFixture, MidpointPhaseBeatsAdjacentPhase) {
  // The Fig-4b mechanism: between two satellites 30 deg apart, the midpoint
  // (15 deg) gains more coverage than a slot right next to an existing one.
  const auto base = plane_of(12);
  const auto candidates =
      constellation::phase_offset_candidates(base.front().elements, {1.0, 15.0});
  const auto evals = optimizer_.evaluate(base, candidates, base.front().epoch);
  ASSERT_EQ(evals.size(), 2u);
  EXPECT_GT(evals[1].gained_weighted_seconds, evals[0].gained_weighted_seconds);
}

TEST_F(PlacementFixture, EvaluateReportsConsistentBase) {
  const auto base = plane_of(4);
  const auto candidates = constellation::factor_candidates(base.front().elements, 43.0,
                                                           25e3, 45.0);
  const auto evals = optimizer_.evaluate(base, candidates, base.front().epoch);
  ASSERT_EQ(evals.size(), 3u);
  for (const auto& e : evals) {
    EXPECT_DOUBLE_EQ(e.base_weighted_seconds, evals.front().base_weighted_seconds);
    EXPECT_GE(e.gained_weighted_seconds, 0.0);
  }
}

TEST_F(PlacementFixture, GreedyPlanImprovesMonotonically) {
  auto base = plane_of(3);
  constellation::SlotGrid grid;
  grid.raan_values_deg = {0.0, 90.0, 180.0, 270.0};
  grid.phase_values_deg = {0.0, 120.0, 240.0};
  grid.inclination_values_deg = {53.0, 97.6};
  grid.altitude_values_m = {550e3};
  const auto slots = constellation::enumerate_slots(grid);

  const auto picks = optimizer_.plan_incremental(base, slots, base.front().epoch, 3);
  ASSERT_EQ(picks.size(), 3u);
  // Base coverage grows with each pick.
  EXPECT_GT(picks[1].base_weighted_seconds, picks[0].base_weighted_seconds);
  EXPECT_GT(picks[2].base_weighted_seconds, picks[1].base_weighted_seconds);
  // Greedy property: each pick's gain is at least the next pick's gain
  // against a strictly larger base... not guaranteed in general, but each
  // gain must be positive here (plenty of uncovered sky).
  for (const auto& pick : picks) EXPECT_GT(pick.gained_weighted_seconds, 0.0);
}

TEST_F(PlacementFixture, GreedyNeverPicksSameSlotTwice) {
  auto base = plane_of(2);
  const auto slots =
      constellation::phase_offset_candidates(base.front().elements, {30.0, 90.0, 150.0});
  const auto picks = optimizer_.plan_incremental(base, slots, base.front().epoch, 3);
  ASSERT_EQ(picks.size(), 3u);
  EXPECT_NE(picks[0].slot.label, picks[1].slot.label);
  EXPECT_NE(picks[1].slot.label, picks[2].slot.label);
  EXPECT_NE(picks[0].slot.label, picks[2].slot.label);
}

TEST_F(PlacementFixture, PlanStopsWhenCandidatesExhausted) {
  auto base = plane_of(2);
  const auto slots =
      constellation::phase_offset_candidates(base.front().elements, {45.0});
  const auto picks = optimizer_.plan_incremental(base, slots, base.front().epoch, 5);
  EXPECT_EQ(picks.size(), 1u);
}

}  // namespace
}  // namespace mpleo::core
