#include "core/fairness.hpp"

#include <gtest/gtest.h>

namespace mpleo::core {
namespace {

net::ScheduleResult usage_of(std::initializer_list<net::PartyUsage> parties) {
  net::ScheduleResult usage;
  usage.per_party.assign(parties.begin(), parties.end());
  return usage;
}

net::PartyUsage party(double own, double spare_used, double spare_provided) {
  net::PartyUsage u;
  u.own_link_seconds = own;
  u.spare_used_seconds = spare_used;
  u.spare_provided_seconds = spare_provided;
  return u;
}

TEST(Jain, PerfectlyEqualIsOne) {
  const std::vector<double> equal{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(equal), 1.0);
}

TEST(Jain, SingleHogApproachesOneOverN) {
  const std::vector<double> hog{10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(hog), 0.25);
}

TEST(Jain, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(zeros), 1.0);
}

TEST(Jain, BoundedAndOrdered) {
  const std::vector<double> mild{4.0, 5.0, 6.0};
  const std::vector<double> skewed{1.0, 5.0, 12.0};
  const double mild_index = jain_fairness_index(mild);
  const double skewed_index = jain_fairness_index(skewed);
  EXPECT_GT(mild_index, skewed_index);
  EXPECT_LE(mild_index, 1.0);
  EXPECT_GE(skewed_index, 1.0 / 3.0);
}

TEST(Reciprocity, RatiosFromUsage) {
  const auto usage = usage_of({party(100.0, 50.0, 200.0), party(0.0, 300.0, 30.0)});
  const auto reciprocity = reciprocity_by_party(usage);
  ASSERT_EQ(reciprocity.size(), 2u);
  EXPECT_DOUBLE_EQ(reciprocity[0].ratio(), 4.0);
  EXPECT_DOUBLE_EQ(reciprocity[1].ratio(), 0.1);
  EXPECT_FALSE(reciprocity[0].is_pure_provider());
}

TEST(Reciprocity, PureProviderDetected) {
  const auto usage = usage_of({party(0.0, 0.0, 500.0)});
  const auto reciprocity = reciprocity_by_party(usage);
  EXPECT_TRUE(reciprocity[0].is_pure_provider());
  EXPECT_DOUBLE_EQ(reciprocity[0].ratio(), 500.0);
}

TEST(FreeRiders, FlagsHeavyConsumersWhoProvideNothing) {
  const auto usage = usage_of({
      party(100.0, 2000.0, 10.0),   // consumes a lot, provides ~nothing -> rider
      party(100.0, 2000.0, 1500.0), // heavy consumer but reciprocates -> ok
      party(100.0, 100.0, 0.0),     // small consumer below threshold -> ok
  });
  const auto riders = detect_free_riders(usage);
  ASSERT_EQ(riders.size(), 1u);
  EXPECT_EQ(riders[0], 0u);
}

TEST(FreeRiders, PolicyThresholdsRespected) {
  const auto usage = usage_of({party(0.0, 700.0, 100.0)});
  FreeRiderPolicy lax;
  lax.min_ratio = 0.1;  // 100/700 = 0.14 > 0.1 -> not a rider
  EXPECT_TRUE(detect_free_riders(usage, lax).empty());
  FreeRiderPolicy strict;
  strict.min_ratio = 0.5;
  EXPECT_EQ(detect_free_riders(usage, strict).size(), 1u);
}

TEST(ServiceFairness, EqualServiceIsFair) {
  const auto usage = usage_of({party(500.0, 100.0, 0.0), party(100.0, 500.0, 0.0)});
  EXPECT_DOUBLE_EQ(service_fairness(usage), 1.0);
}

TEST(ServiceFairness, SkewedServiceScoresLower) {
  const auto fair = usage_of({party(300.0, 0.0, 0.0), party(300.0, 0.0, 0.0)});
  const auto skewed = usage_of({party(590.0, 0.0, 0.0), party(10.0, 0.0, 0.0)});
  EXPECT_GT(service_fairness(fair), service_fairness(skewed));
}

}  // namespace
}  // namespace mpleo::core
