#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace mpleo::core {
namespace {

TEST(Ledger, TreasuryExistsAtStart) {
  Ledger ledger;
  EXPECT_EQ(ledger.account_count(), 1u);
  EXPECT_EQ(ledger.balance(Ledger::kTreasury), 0.0);
  EXPECT_EQ(ledger.account_name(Ledger::kTreasury), "treasury");
}

TEST(Ledger, OpenAccountsSequentially) {
  Ledger ledger;
  const AccountId a = ledger.open_account("alice");
  const AccountId b = ledger.open_account("bob");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(ledger.account_name(b), "bob");
  EXPECT_EQ(ledger.balance(a), 0.0);
}

TEST(Ledger, MintIncreasesTreasury) {
  Ledger ledger;
  ledger.mint(100.0);
  EXPECT_EQ(ledger.balance(Ledger::kTreasury), 100.0);
  EXPECT_EQ(ledger.total_minted(), 100.0);
  EXPECT_THROW(ledger.mint(-1.0), std::invalid_argument);
}

TEST(Ledger, TransferMovesValue) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  const AccountId b = ledger.open_account("b");
  ledger.mint(50.0);
  ASSERT_TRUE(ledger.reward(a, 30.0));
  ASSERT_TRUE(ledger.transfer(a, b, 12.5, "payment"));
  EXPECT_DOUBLE_EQ(ledger.balance(a), 17.5);
  EXPECT_DOUBLE_EQ(ledger.balance(b), 12.5);
}

TEST(Ledger, TransferRejectsOverdraft) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  const AccountId b = ledger.open_account("b");
  ledger.mint(10.0);
  ASSERT_TRUE(ledger.reward(a, 10.0));
  EXPECT_FALSE(ledger.transfer(a, b, 10.5));
  EXPECT_DOUBLE_EQ(ledger.balance(a), 10.0);  // unchanged
  EXPECT_DOUBLE_EQ(ledger.balance(b), 0.0);
}

TEST(Ledger, TransferRejectsUnknownAccounts) {
  Ledger ledger;
  ledger.mint(5.0);
  EXPECT_FALSE(ledger.transfer(Ledger::kTreasury, 42, 1.0));
  EXPECT_FALSE(ledger.transfer(42, Ledger::kTreasury, 1.0));
  EXPECT_THROW((void)ledger.transfer(Ledger::kTreasury, 1, -1.0), std::invalid_argument);
}

TEST(Ledger, RewardDrawsFromTreasury) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  EXPECT_FALSE(ledger.reward(a, 1.0));  // empty treasury
  ledger.mint(2.0);
  EXPECT_TRUE(ledger.reward(a, 1.5, "poc"));
  EXPECT_DOUBLE_EQ(ledger.balance(Ledger::kTreasury), 0.5);
}

TEST(Ledger, EntriesRecordHistory) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  ledger.mint(10.0, "genesis");
  ASSERT_TRUE(ledger.reward(a, 4.0, "hello"));
  ASSERT_EQ(ledger.entries().size(), 2u);
  EXPECT_EQ(ledger.entries()[0].memo, "genesis");
  EXPECT_EQ(ledger.entries()[1].from, Ledger::kTreasury);
  EXPECT_EQ(ledger.entries()[1].to, a);
  EXPECT_EQ(ledger.entries()[1].amount, 4.0);
  EXPECT_LT(ledger.entries()[0].sequence, ledger.entries()[1].sequence);
}

TEST(Ledger, BalanceOfUnknownAccountThrows) {
  Ledger ledger;
  EXPECT_THROW(ledger.balance(7), std::out_of_range);
  EXPECT_THROW(ledger.account_name(7), std::out_of_range);
}

TEST(Ledger, ConservationUnderRandomActivity) {
  // Property: sum of balances always equals total minted, regardless of the
  // transfer sequence (double-entry invariant).
  util::Xoshiro256PlusPlus rng(99);
  Ledger ledger;
  std::vector<AccountId> accounts;
  for (int i = 0; i < 8; ++i) accounts.push_back(ledger.open_account("acct"));
  ledger.mint(1000.0);

  for (int step = 0; step < 500; ++step) {
    const AccountId from =
        step % 7 == 0 ? Ledger::kTreasury
                      : accounts[rng.uniform_index(accounts.size())];
    const AccountId to = accounts[rng.uniform_index(accounts.size())];
    (void)ledger.transfer(from, to, rng.uniform(0.0, 50.0));
    ASSERT_NEAR(ledger.sum_of_balances(), ledger.total_minted(), 1e-6);
  }
  // And no account ever went negative.
  for (AccountId a : accounts) EXPECT_GE(ledger.balance(a), -1e-9);
}

TEST(Ledger, CreditReceiptPaysExactlyOncePerHash) {
  Ledger ledger;
  ledger.mint(10.0);
  const AccountId owner = ledger.open_account("owner");
  constexpr std::uint64_t kHash = 0xFEEDFACE;

  EXPECT_FALSE(ledger.receipt_credited(kHash));
  EXPECT_TRUE(ledger.credit_receipt(owner, 2.0, kHash, "poc"));
  EXPECT_TRUE(ledger.receipt_credited(kHash));
  EXPECT_DOUBLE_EQ(ledger.balance(owner), 2.0);

  // Resubmission of the same hash records nothing and pays nothing.
  EXPECT_FALSE(ledger.credit_receipt(owner, 2.0, kHash, "poc again"));
  EXPECT_DOUBLE_EQ(ledger.balance(owner), 2.0);
  EXPECT_EQ(ledger.credited_receipt_count(), 1u);

  // A different hash is a different receipt.
  EXPECT_TRUE(ledger.credit_receipt(owner, 2.0, kHash + 1, "poc"));
  EXPECT_DOUBLE_EQ(ledger.balance(owner), 4.0);
}

TEST(Ledger, CreditReceiptConsumesHashEvenWhenTreasuryCannotPay) {
  Ledger ledger;  // empty treasury
  const AccountId owner = ledger.open_account("owner");
  // First submission consumes the hash even though the payout fails.
  EXPECT_TRUE(ledger.credit_receipt(owner, 5.0, 42, "unfunded"));
  EXPECT_TRUE(ledger.receipt_credited(42));
  EXPECT_DOUBLE_EQ(ledger.balance(owner), 0.0);
  ledger.mint(10.0);
  // The receipt stays consumed: no retroactive double-claim window.
  EXPECT_FALSE(ledger.credit_receipt(owner, 5.0, 42, "retry"));
  EXPECT_DOUBLE_EQ(ledger.balance(owner), 0.0);
}

TEST(Ledger, SerializationRoundTripsBitExactly) {
  util::Xoshiro256PlusPlus rng(7);
  Ledger ledger;
  std::vector<AccountId> accounts;
  for (int i = 0; i < 4; ++i) {
    accounts.push_back(ledger.open_account("party " + std::to_string(i)));
  }
  ledger.mint(1.0 / 3.0, "genesis mint");  // non-representable amounts on purpose
  for (int step = 0; step < 50; ++step) {
    (void)ledger.transfer(step % 5 == 0 ? Ledger::kTreasury
                                        : accounts[rng.uniform_index(accounts.size())],
                          accounts[rng.uniform_index(accounts.size())],
                          rng.uniform(0.0, 0.01), "memo with spaces " + std::to_string(step));
  }
  (void)ledger.credit_receipt(accounts[0], 0.1, 0xDEADBEEF, "receipt");

  std::stringstream stream;
  ledger.serialize(stream);
  const Ledger restored = Ledger::deserialize(stream);
  EXPECT_EQ(restored, ledger);  // balances, entries, receipts — bit for bit
  EXPECT_TRUE(restored.receipt_credited(0xDEADBEEF));
  EXPECT_EQ(restored.account_name(accounts[2]), "party 2");
}

TEST(Ledger, DeserializeRejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW((void)Ledger::deserialize(empty), std::invalid_argument);

  std::stringstream wrong_header("not-a-ledger v9\n");
  EXPECT_THROW((void)Ledger::deserialize(wrong_header), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
