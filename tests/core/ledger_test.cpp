#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace mpleo::core {
namespace {

TEST(Ledger, TreasuryExistsAtStart) {
  Ledger ledger;
  EXPECT_EQ(ledger.account_count(), 1u);
  EXPECT_EQ(ledger.balance(Ledger::kTreasury), 0.0);
  EXPECT_EQ(ledger.account_name(Ledger::kTreasury), "treasury");
}

TEST(Ledger, OpenAccountsSequentially) {
  Ledger ledger;
  const AccountId a = ledger.open_account("alice");
  const AccountId b = ledger.open_account("bob");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(ledger.account_name(b), "bob");
  EXPECT_EQ(ledger.balance(a), 0.0);
}

TEST(Ledger, MintIncreasesTreasury) {
  Ledger ledger;
  ledger.mint(100.0);
  EXPECT_EQ(ledger.balance(Ledger::kTreasury), 100.0);
  EXPECT_EQ(ledger.total_minted(), 100.0);
  EXPECT_THROW(ledger.mint(-1.0), std::invalid_argument);
}

TEST(Ledger, TransferMovesValue) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  const AccountId b = ledger.open_account("b");
  ledger.mint(50.0);
  ASSERT_TRUE(ledger.reward(a, 30.0));
  ASSERT_TRUE(ledger.transfer(a, b, 12.5, "payment"));
  EXPECT_DOUBLE_EQ(ledger.balance(a), 17.5);
  EXPECT_DOUBLE_EQ(ledger.balance(b), 12.5);
}

TEST(Ledger, TransferRejectsOverdraft) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  const AccountId b = ledger.open_account("b");
  ledger.mint(10.0);
  ASSERT_TRUE(ledger.reward(a, 10.0));
  EXPECT_FALSE(ledger.transfer(a, b, 10.5));
  EXPECT_DOUBLE_EQ(ledger.balance(a), 10.0);  // unchanged
  EXPECT_DOUBLE_EQ(ledger.balance(b), 0.0);
}

TEST(Ledger, TransferRejectsUnknownAccounts) {
  Ledger ledger;
  ledger.mint(5.0);
  EXPECT_FALSE(ledger.transfer(Ledger::kTreasury, 42, 1.0));
  EXPECT_FALSE(ledger.transfer(42, Ledger::kTreasury, 1.0));
  EXPECT_THROW((void)ledger.transfer(Ledger::kTreasury, 1, -1.0), std::invalid_argument);
}

TEST(Ledger, RewardDrawsFromTreasury) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  EXPECT_FALSE(ledger.reward(a, 1.0));  // empty treasury
  ledger.mint(2.0);
  EXPECT_TRUE(ledger.reward(a, 1.5, "poc"));
  EXPECT_DOUBLE_EQ(ledger.balance(Ledger::kTreasury), 0.5);
}

TEST(Ledger, EntriesRecordHistory) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  ledger.mint(10.0, "genesis");
  ASSERT_TRUE(ledger.reward(a, 4.0, "hello"));
  ASSERT_EQ(ledger.entries().size(), 2u);
  EXPECT_EQ(ledger.entries()[0].memo, "genesis");
  EXPECT_EQ(ledger.entries()[1].from, Ledger::kTreasury);
  EXPECT_EQ(ledger.entries()[1].to, a);
  EXPECT_EQ(ledger.entries()[1].amount, 4.0);
  EXPECT_LT(ledger.entries()[0].sequence, ledger.entries()[1].sequence);
}

TEST(Ledger, BalanceOfUnknownAccountThrows) {
  Ledger ledger;
  EXPECT_THROW(ledger.balance(7), std::out_of_range);
  EXPECT_THROW(ledger.account_name(7), std::out_of_range);
}

TEST(Ledger, ConservationUnderRandomActivity) {
  // Property: sum of balances always equals total minted, regardless of the
  // transfer sequence (double-entry invariant).
  util::Xoshiro256PlusPlus rng(99);
  Ledger ledger;
  std::vector<AccountId> accounts;
  for (int i = 0; i < 8; ++i) accounts.push_back(ledger.open_account("acct"));
  ledger.mint(1000.0);

  for (int step = 0; step < 500; ++step) {
    const AccountId from =
        step % 7 == 0 ? Ledger::kTreasury
                      : accounts[rng.uniform_index(accounts.size())];
    const AccountId to = accounts[rng.uniform_index(accounts.size())];
    (void)ledger.transfer(from, to, rng.uniform(0.0, 50.0));
    ASSERT_NEAR(ledger.sum_of_balances(), ledger.total_minted(), 1e-6);
  }
  // And no account ever went negative.
  for (AccountId a : accounts) EXPECT_GE(ledger.balance(a), -1e-9);
}

}  // namespace
}  // namespace mpleo::core
