#include "core/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpleo::core {
namespace {

cov::StepMask mask_from_pattern(const char* pattern) {
  const std::string s(pattern);
  cov::StepMask m(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') m.set(i);
  }
  return m;
}

TEST(Emission, ConstantWithinHalvingPeriod) {
  EmissionSchedule schedule;
  schedule.initial_epoch_reward = 1000.0;
  schedule.epochs_per_halving = 12;
  for (std::size_t e = 0; e < 12; ++e) {
    EXPECT_DOUBLE_EQ(schedule.epoch_reward(e), 1000.0);
  }
  EXPECT_DOUBLE_EQ(schedule.epoch_reward(12), 500.0);
  EXPECT_DOUBLE_EQ(schedule.epoch_reward(24), 250.0);
}

TEST(Emission, EarlyAdoptersEarnLargerShare) {
  EmissionSchedule schedule;
  // First year's emission vs fifth year's.
  const double year1 = schedule.cumulative(12);
  const double year5 =
      schedule.cumulative(60) - schedule.cumulative(48);
  EXPECT_GT(year1, year5 * 10.0);
}

TEST(Emission, CumulativeApproachesTotalSupply) {
  EmissionSchedule schedule;
  const double limit = schedule.total_supply();
  EXPECT_DOUBLE_EQ(limit, 1000.0 * 12.0 / 0.5);
  EXPECT_LT(schedule.cumulative(240), limit);
  EXPECT_NEAR(schedule.cumulative(240), limit, limit * 1e-4);
}

TEST(Emission, NoDecayMeansInfiniteSupply) {
  EmissionSchedule schedule;
  schedule.decay = 1.0;
  EXPECT_TRUE(std::isinf(schedule.total_supply()));
  EXPECT_DOUBLE_EQ(schedule.epoch_reward(100), schedule.epoch_reward(0));
}

TEST(Dtn, SimplePickupAndDelivery) {
  // Message at step 0: uplink pass at step 2, downlink pass at step 5.
  const auto up = mask_from_pattern("0010000000");
  const auto down = mask_from_pattern("0000010000");
  const auto latencies = dtn_delivery_latencies(up, down, 60.0);
  // Messages created at steps 0,1,2 are picked up at step 2 and land at 5.
  ASSERT_GE(latencies.size(), 3u);
  EXPECT_DOUBLE_EQ(latencies[0], 300.0);  // 5 steps * 60 s
  EXPECT_DOUBLE_EQ(latencies[1], 240.0);
  EXPECT_DOUBLE_EQ(latencies[2], 180.0);
}

TEST(Dtn, DeliveryRequiresDownlinkAfterPickup) {
  // Downlink pass happens BEFORE the only uplink pass: nothing delivers.
  const auto up = mask_from_pattern("0000000100");
  const auto down = mask_from_pattern("0100000000");
  EXPECT_TRUE(dtn_delivery_latencies(up, down, 60.0).empty());
  const DtnStats stats = dtn_stats(up, down, 60.0);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.stranded, 10u);
}

TEST(Dtn, SimultaneousPassDeliversImmediately) {
  const auto up = mask_from_pattern("0001000");
  const auto down = mask_from_pattern("0001000");
  const auto latencies = dtn_delivery_latencies(up, down, 30.0);
  ASSERT_EQ(latencies.size(), 4u);        // created at steps 0..3
  EXPECT_DOUBLE_EQ(latencies[3], 0.0);    // created during the joint pass
}

TEST(Dtn, LateMessagesStrand) {
  const auto up = mask_from_pattern("1000000000");
  const auto down = mask_from_pattern("0100000000");
  const DtnStats stats = dtn_stats(up, down, 60.0);
  // Only the step-0 message catches the only uplink pass.
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.stranded, 9u);
  EXPECT_DOUBLE_EQ(stats.max_latency_s, 60.0);
}

TEST(Dtn, StatsOrderingInvariants) {
  const auto up = mask_from_pattern("10001000100010001000");
  const auto down = mask_from_pattern("01000100010001000100");
  const DtnStats stats = dtn_stats(up, down, 60.0);
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_LE(stats.p50_latency_s, stats.p95_latency_s);
  EXPECT_LE(stats.p95_latency_s, stats.max_latency_s);
  EXPECT_GT(stats.mean_latency_s, 0.0);
}

TEST(Dtn, MismatchedMasksReturnEmpty) {
  EXPECT_TRUE(dtn_delivery_latencies(cov::StepMask(5), cov::StepMask(6), 60.0).empty());
  EXPECT_TRUE(dtn_delivery_latencies(cov::StepMask(0), cov::StepMask(0), 60.0).empty());
}

TEST(Dtn, DenserDownlinksReduceLatency) {
  const auto up = mask_from_pattern("10000000001000000000");
  const auto sparse_down = mask_from_pattern("00000000010000000001");
  const auto dense_down = mask_from_pattern("00100100100100100100");
  const DtnStats sparse = dtn_stats(up, sparse_down, 60.0);
  const DtnStats dense = dtn_stats(up, dense_down, 60.0);
  EXPECT_LT(dense.mean_latency_s, sparse.mean_latency_s);
}

}  // namespace
}  // namespace mpleo::core
