#include "core/robustness.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>

#include "constellation/shell.hpp"
#include "coverage/cities.hpp"

namespace mpleo::core {
namespace {

orbit::TimeGrid test_grid() {
  return orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 86400.0, 120.0);
}

TEST(PartitionByRatio, EqualSplitMatchesPaper) {
  // 1000 satellites across 11 equal parties: 91 each (paper's Fig-6 anchor),
  // with the remainder folded into the largest.
  const auto sizes = partition_by_ratio(1000, 1, 10);
  ASSERT_EQ(sizes.size(), 11u);
  EXPECT_EQ(sizes.front(), 100u);  // 90 + remainder 10
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_EQ(sizes[i], 90u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 1000u);
}

TEST(PartitionByRatio, SkewedSplitMatchesPaper) {
  // Ratio 10:1:...:1 over 1000 -> largest 500, others 50 each.
  const auto sizes = partition_by_ratio(1000, 10, 10);
  ASSERT_EQ(sizes.size(), 11u);
  EXPECT_EQ(sizes.front(), 500u);
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_EQ(sizes[i], 50u);
}

TEST(PartitionByRatio, SumAlwaysEqualsTotal) {
  for (std::size_t ratio = 1; ratio <= 10; ++ratio) {
    const auto sizes = partition_by_ratio(997, ratio, 10);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 997u);
    // Largest party really is largest.
    for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GE(sizes.front(), sizes[i]);
  }
}

TEST(PartitionByRatio, RejectsDegenerateInputs) {
  EXPECT_THROW(partition_by_ratio(100, 0, 10), std::invalid_argument);
  EXPECT_THROW(partition_by_ratio(0, 1, 10), std::invalid_argument);
  EXPECT_THROW(partition_by_ratio(5, 10, 10), std::invalid_argument);  // unit would be 0
}

TEST(AssignToParties, SplitsInOrder) {
  const std::vector<std::size_t> indices{9, 8, 7, 6, 5};
  const std::vector<std::size_t> sizes{2, 3};
  const auto parties = assign_to_parties(indices, sizes);
  ASSERT_EQ(parties.size(), 2u);
  EXPECT_EQ(parties[0], (std::vector<std::size_t>{9, 8}));
  EXPECT_EQ(parties[1], (std::vector<std::size_t>{7, 6, 5}));
}

TEST(AssignToParties, RejectsSizeMismatch) {
  const std::vector<std::size_t> indices{1, 2, 3};
  const std::vector<std::size_t> sizes{2, 2};
  EXPECT_THROW(assign_to_parties(indices, sizes), std::invalid_argument);
}

class WithdrawalFixture : public ::testing::Test {
 protected:
  WithdrawalFixture()
      : engine_(test_grid(), 25.0),
        sites_(cov::sites_from_cities(cov::paper_cities())) {
    // Three orthogonal planes of 8 satellites each.
    for (double raan : {0.0, 60.0, 120.0}) {
      auto plane = constellation::single_plane(
          550e3, 53.0, raan, 8, orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"),
          raan / 2.0);
      catalog_.insert(catalog_.end(), plane.begin(), plane.end());
    }
    cache_ = std::make_unique<cov::VisibilityCache>(engine_, catalog_, sites_);
    base_.resize(catalog_.size());
    std::iota(base_.begin(), base_.end(), std::size_t{0});
  }

  cov::CoverageEngine engine_;
  std::vector<cov::GroundSite> sites_;
  std::vector<constellation::Satellite> catalog_;
  std::unique_ptr<cov::VisibilityCache> cache_;
  std::vector<std::size_t> base_;
};

TEST_F(WithdrawalFixture, NoWithdrawalNoDrop) {
  const WithdrawalImpact impact = withdrawal_impact(*cache_, base_, {});
  EXPECT_DOUBLE_EQ(impact.drop_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(impact.relative_drop(), 0.0);
}

TEST_F(WithdrawalFixture, FullWithdrawalDropsToZero) {
  const WithdrawalImpact impact = withdrawal_impact(*cache_, base_, base_);
  EXPECT_GT(impact.before_fraction, 0.0);
  EXPECT_DOUBLE_EQ(impact.after_fraction, 0.0);
  EXPECT_DOUBLE_EQ(impact.relative_drop(), 1.0);
}

TEST_F(WithdrawalFixture, DropGrowsWithWithdrawalSize) {
  const std::vector<std::size_t> few(base_.begin(), base_.begin() + 4);
  const std::vector<std::size_t> many(base_.begin(), base_.begin() + 16);
  const double drop_few = withdrawal_impact(*cache_, base_, few).drop_fraction();
  const double drop_many = withdrawal_impact(*cache_, base_, many).drop_fraction();
  EXPECT_GE(drop_many, drop_few);
  EXPECT_GE(drop_few, 0.0);
}

TEST_F(WithdrawalFixture, CoverageNeverIncreasesOnWithdrawal) {
  util::Xoshiro256PlusPlus rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const auto count = 1 + rng.uniform_index(base_.size() - 1);
    auto shuffled = rng.sample_without_replacement(base_.size(), count);
    const WithdrawalImpact impact = withdrawal_impact(*cache_, base_, shuffled);
    EXPECT_LE(impact.after_fraction, impact.before_fraction + 1e-12);
  }
}

TEST_F(WithdrawalFixture, NonSubsetWithdrawalThrows) {
  const std::vector<std::size_t> not_in_base{base_.size() + 5};
  EXPECT_THROW(withdrawal_impact(*cache_, base_, not_in_base), std::invalid_argument);
}

TEST_F(WithdrawalFixture, ResilienceSweepRejectsDegenerateConfigs) {
  ResilienceConfig config;
  config.failure_rates_per_sat_day.clear();
  EXPECT_THROW(resilience_sweep(*cache_, base_, config), std::invalid_argument);
  config.failure_rates_per_sat_day = {-1.0};
  EXPECT_THROW(resilience_sweep(*cache_, base_, config), std::invalid_argument);
  config = ResilienceConfig{};
  config.mttr_seconds = 0.0;
  EXPECT_THROW(resilience_sweep(*cache_, base_, config), std::invalid_argument);
  config = ResilienceConfig{};
  config.runs = 0;
  EXPECT_THROW(resilience_sweep(*cache_, base_, config), std::invalid_argument);
}

TEST_F(WithdrawalFixture, ResilienceSweepBaselineAndRateZero) {
  ResilienceConfig config;
  config.failure_rates_per_sat_day = {0.0, 8.0};
  config.mttr_seconds = 7200.0;
  config.runs = 2;
  const std::vector<ResiliencePoint> points = resilience_sweep(*cache_, base_, config);
  ASSERT_EQ(points.size(), 2u);
  // Rate zero is exactly the healthy constellation.
  EXPECT_DOUBLE_EQ(points[0].mean_coverage_fraction,
                   cache_->weighted_coverage_fraction(base_));
  EXPECT_DOUBLE_EQ(points[0].mean_served_fraction, 1.0);
  EXPECT_DOUBLE_EQ(points[0].mttr_seconds, 7200.0);
  // Eight failures per satellite-day with two-hour repairs must cost coverage
  // on a 24-satellite fleet.
  EXPECT_LT(points[1].mean_coverage_fraction, points[0].mean_coverage_fraction);
}

}  // namespace
}  // namespace mpleo::core
