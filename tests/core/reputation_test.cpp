#include "core/reputation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::core {
namespace {

TEST(Reputation, StartsAtInitial) {
  const ReputationTracker tracker(3);
  for (PartyId p = 0; p < 3; ++p) EXPECT_DOUBLE_EQ(tracker.score(p), 0.5);
}

TEST(Reputation, PocEvidenceMovesScore) {
  ReputationTracker tracker(2);
  tracker.record_poc(0, true);
  EXPECT_DOUBLE_EQ(tracker.score(0), 0.52);
  tracker.record_poc(1, false);
  EXPECT_DOUBLE_EQ(tracker.score(1), 0.4);
  // Trust is slow to build, fast to lose: one forgery erases five proofs.
  ReputationTracker asym(1);
  for (int i = 0; i < 5; ++i) asym.record_poc(0, true);
  asym.record_poc(0, false);
  EXPECT_DOUBLE_EQ(asym.score(0), 0.5);
}

TEST(Reputation, ReciprocityEvidence) {
  ReputationTracker tracker(2);
  tracker.record_reciprocity(0, 1.5);   // good citizen
  tracker.record_reciprocity(1, 0.05);  // free rider
  EXPECT_GT(tracker.score(0), 0.5);
  EXPECT_LT(tracker.score(1), 0.5);
}

TEST(Reputation, ScoresClampToBounds) {
  ReputationTracker tracker(1);
  for (int i = 0; i < 100; ++i) tracker.record_poc(0, true);
  EXPECT_DOUBLE_EQ(tracker.score(0), 1.0);
  for (int i = 0; i < 100; ++i) tracker.record_poc(0, false);
  EXPECT_DOUBLE_EQ(tracker.score(0), 0.0);
}

TEST(Reputation, PriorityWeightNeverStarves) {
  ReputationTracker tracker(1);
  for (int i = 0; i < 100; ++i) tracker.record_poc(0, false);
  // Even a zero-reputation party keeps 10% weight: degradation stays
  // proportional, not a blackout (the paper's §1 design goal).
  EXPECT_DOUBLE_EQ(tracker.priority_weight(0), 0.1);
  for (int i = 0; i < 200; ++i) tracker.record_poc(0, true);
  EXPECT_DOUBLE_EQ(tracker.priority_weight(0), 1.0);
}

TEST(Reputation, OutageSecondsErodeScore) {
  ReputationTracker tracker(2);
  // 10 asset-hours down at the default 0.005/hour: score drops by 0.05.
  tracker.record_outage(0, 10.0 * 3600.0);
  EXPECT_DOUBLE_EQ(tracker.score(0), 0.45);
  // Zero downtime is a no-op; the other party is untouched either way.
  tracker.record_outage(1, 0.0);
  EXPECT_DOUBLE_EQ(tracker.score(1), 0.5);
  // Massive downtime clamps at the floor instead of going negative.
  tracker.record_outage(0, 1e9);
  EXPECT_DOUBLE_EQ(tracker.score(0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.priority_weight(0), 0.1);
}

TEST(Reputation, OutageRejectsNegativeSeconds) {
  ReputationTracker tracker(1);
  EXPECT_THROW(tracker.record_outage(0, -1.0), std::invalid_argument);
}

TEST(Reputation, UnknownPartyThrows) {
  ReputationTracker tracker(2);
  EXPECT_THROW(tracker.record_poc(5, true), std::out_of_range);
  EXPECT_THROW((void)tracker.score(5), std::out_of_range);
  EXPECT_THROW(tracker.record_outage(5, 60.0), std::out_of_range);
}

TEST(Reputation, InvalidConfigRejected) {
  EXPECT_THROW(ReputationTracker(0), std::invalid_argument);
  ReputationTracker::Config bad;
  bad.initial = 2.0;
  EXPECT_THROW(ReputationTracker(1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
