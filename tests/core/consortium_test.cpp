#include "core/consortium.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "constellation/shell.hpp"
#include "core/validation.hpp"

namespace mpleo::core {
namespace {

std::vector<constellation::Satellite> make_sats(int count) {
  std::vector<constellation::Satellite> sats(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    sats[static_cast<std::size_t>(i)].elements =
        orbit::ClassicalElements::circular(550e3, 53.0, 10.0 * i, 20.0 * i);
  }
  return sats;
}

Party named(const char* name) {
  Party p;
  p.name = name;
  return p;
}

TEST(Consortium, AddPartyAssignsIds) {
  Consortium c;
  EXPECT_EQ(c.add_party(named("Taiwan")), 0u);
  EXPECT_EQ(c.add_party(named("Korea")), 1u);
  EXPECT_EQ(c.parties().size(), 2u);
  EXPECT_EQ(c.parties()[1].name, "Korea");
  EXPECT_EQ(c.active_party_count(), 2u);
}

TEST(Consortium, ContributeStampsOwnership) {
  Consortium c;
  const PartyId taiwan = c.add_party(named("Taiwan"));
  const auto ids = c.contribute(taiwan, make_sats(5));
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(c.active_satellite_count(), 5u);
  for (const auto& sat : c.active_satellites()) {
    EXPECT_EQ(sat.owner_party, taiwan);
  }
}

TEST(Consortium, SatelliteIdsGloballyUnique) {
  Consortium c;
  const PartyId a = c.add_party(named("A"));
  const PartyId b = c.add_party(named("B"));
  const auto ids_a = c.contribute(a, make_sats(3));
  const auto ids_b = c.contribute(b, make_sats(3));
  for (auto ia : ids_a) {
    for (auto ib : ids_b) EXPECT_NE(ia, ib);
  }
}

TEST(Consortium, ContributeToUnknownPartyThrows) {
  Consortium c;
  EXPECT_THROW(c.contribute(0, make_sats(1)), std::out_of_range);
}

TEST(Consortium, StakeIsProportional) {
  Consortium c;
  const PartyId big = c.add_party(named("big"));
  const PartyId small = c.add_party(named("small"));
  c.contribute(big, make_sats(75));
  c.contribute(small, make_sats(25));
  EXPECT_DOUBLE_EQ(c.stake(big), 0.75);
  EXPECT_DOUBLE_EQ(c.stake(small), 0.25);
  EXPECT_DOUBLE_EQ(c.stake(big) + c.stake(small), 1.0);
}

TEST(Consortium, StakeOfEmptyConsortiumIsZero) {
  Consortium c;
  const PartyId p = c.add_party(named("p"));
  EXPECT_EQ(c.stake(p), 0.0);
}

TEST(Consortium, WithdrawRemovesOnlyThatParty) {
  Consortium c;
  const PartyId a = c.add_party(named("A"));
  const PartyId b = c.add_party(named("B"));
  c.contribute(a, make_sats(10));
  c.contribute(b, make_sats(4));

  EXPECT_EQ(c.withdraw_party(a), 10u);
  EXPECT_EQ(c.active_satellite_count(), 4u);
  EXPECT_EQ(c.party_satellite_count(a), 0u);
  EXPECT_EQ(c.party_satellite_count(b), 4u);
  EXPECT_FALSE(c.parties()[a].active);
  EXPECT_TRUE(c.parties()[b].active);
  EXPECT_EQ(c.active_party_count(), 1u);
  // No single party can shut down the whole constellation.
  EXPECT_GT(c.active_satellite_count(), 0u);
}

TEST(Consortium, WithdrawIsIdempotent) {
  Consortium c;
  const PartyId a = c.add_party(named("A"));
  c.contribute(a, make_sats(3));
  EXPECT_EQ(c.withdraw_party(a), 3u);
  EXPECT_EQ(c.withdraw_party(a), 0u);
}

TEST(Consortium, CannotContributeAfterWithdrawal) {
  Consortium c;
  const PartyId a = c.add_party(named("A"));
  c.contribute(a, make_sats(1));
  c.withdraw_party(a);
  EXPECT_THROW(c.contribute(a, make_sats(1)), std::logic_error);
}

TEST(Consortium, FailSatellite) {
  Consortium c;
  const PartyId a = c.add_party(named("A"));
  const auto ids = c.contribute(a, make_sats(3));
  EXPECT_TRUE(c.fail_satellite(ids[1]));
  EXPECT_EQ(c.active_satellite_count(), 2u);
  EXPECT_FALSE(c.fail_satellite(ids[1]));  // already failed
  EXPECT_FALSE(c.fail_satellite(9999));    // unknown
  // The party stays active after a satellite failure.
  EXPECT_TRUE(c.parties()[a].active);
}

TEST(Consortium, LargestParty) {
  Consortium c;
  EXPECT_EQ(c.largest_party(), Consortium::kInvalidParty);
  const PartyId a = c.add_party(named("A"));
  const PartyId b = c.add_party(named("B"));
  c.contribute(a, make_sats(2));
  c.contribute(b, make_sats(7));
  EXPECT_EQ(c.largest_party(), b);
  c.withdraw_party(b);
  EXPECT_EQ(c.largest_party(), a);
}

TEST(Consortium, PartySatellitesFiltersCorrectly) {
  Consortium c;
  const PartyId a = c.add_party(named("A"));
  const PartyId b = c.add_party(named("B"));
  c.contribute(a, make_sats(2));
  c.contribute(b, make_sats(3));
  EXPECT_EQ(c.party_satellites(a).size(), 2u);
  EXPECT_EQ(c.party_satellites(b).size(), 3u);
  for (const auto& sat : c.party_satellites(b)) EXPECT_EQ(sat.owner_party, b);
}

TEST(Consortium, ProportionalDegradationInvariant) {
  // The paper's §3 robustness property at the membership level: a party's
  // withdrawal removes exactly stake-share of the satellites.
  Consortium c;
  std::vector<PartyId> parties;
  for (int i = 0; i < 11; ++i) parties.push_back(c.add_party(named("p")));
  for (PartyId p : parties) c.contribute(p, make_sats(91));

  const double stake = c.stake(parties[4]);
  const std::size_t before = c.active_satellite_count();
  const std::size_t removed = c.withdraw_party(parties[4]);
  EXPECT_NEAR(static_cast<double>(removed) / static_cast<double>(before), stake, 1e-12);
}

TEST(Consortium, QuarantineLifecycle) {
  Consortium c;
  const PartyId a = c.add_party(named("a"));
  const PartyId b = c.add_party(named("b"));
  c.contribute(a, make_sats(4));
  c.contribute(b, make_sats(4));
  EXPECT_EQ(c.party_status(a), PartyStatus::kActive);

  c.quarantine_party(a);
  EXPECT_EQ(c.party_status(a), PartyStatus::kQuarantined);
  EXPECT_EQ(c.party_status(b), PartyStatus::kActive);
  // Quarantine keeps the satellites in the active set (own-fleet service
  // continues); only the spare-commons standing changes.
  EXPECT_EQ(c.active_satellite_count(), 8u);
  EXPECT_EQ(c.spare_exclusion_mask(), (std::vector<std::uint8_t>{1, 0}));

  c.quarantine_party(a);  // idempotent
  EXPECT_EQ(c.party_status(a), PartyStatus::kQuarantined);

  c.reinstate_party(a);
  EXPECT_EQ(c.party_status(a), PartyStatus::kActive);
  EXPECT_EQ(c.spare_exclusion_mask(), (std::vector<std::uint8_t>{0, 0}));
}

TEST(Consortium, QuarantineTransitionsValidated) {
  Consortium c;
  const PartyId a = c.add_party(named("a"));
  c.contribute(a, make_sats(2));

  EXPECT_THROW(c.reinstate_party(a), std::logic_error);  // not quarantined
  (void)c.withdraw_party(a);
  EXPECT_EQ(c.party_status(a), PartyStatus::kWithdrawn);
  EXPECT_THROW(c.quarantine_party(a), std::logic_error);  // already gone
  EXPECT_EQ(c.spare_exclusion_mask(), std::vector<std::uint8_t>{1});
  EXPECT_THROW((void)c.party_status(9), std::out_of_range);
}

TEST(Consortium, ExpelledPartyStatusIsWithdrawn) {
  Consortium c;
  const PartyId a = c.add_party(named("a"));
  c.contribute(a, make_sats(2));
  c.quarantine_party(a);
  (void)c.withdraw_party(a);  // expulsion = withdrawal from quarantine
  EXPECT_EQ(c.party_status(a), PartyStatus::kWithdrawn);
  EXPECT_EQ(c.active_satellite_count(), 0u);
}

TEST(Consortium, SlashAmountValidatesInputs) {
  EXPECT_DOUBLE_EQ(Consortium::slash_amount(100.0, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(Consortium::slash_amount(0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Consortium::slash_amount(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Consortium::slash_amount(100.0, 1.0), 100.0);
  EXPECT_THROW((void)Consortium::slash_amount(-1.0, 0.5), ValidationError);
  EXPECT_THROW((void)Consortium::slash_amount(100.0, -0.1), ValidationError);
  EXPECT_THROW((void)Consortium::slash_amount(100.0, 1.5), ValidationError);
}

TEST(Consortium, PartyStatusToString) {
  EXPECT_STREQ(to_string(PartyStatus::kActive), "active");
  EXPECT_STREQ(to_string(PartyStatus::kQuarantined), "quarantined");
  EXPECT_STREQ(to_string(PartyStatus::kWithdrawn), "withdrawn");
}

}  // namespace
}  // namespace mpleo::core
