#include "core/market.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::core {
namespace {

struct MarketFixture {
  Ledger ledger;
  AccountId provider_a;
  AccountId provider_b;
  AccountId consumer;

  MarketFixture() {
    ledger.mint(1000.0);
    provider_a = ledger.open_account("provider-a");
    provider_b = ledger.open_account("provider-b");
    consumer = ledger.open_account("consumer");
    EXPECT_TRUE(ledger.reward(consumer, 500.0));
  }
};

TEST(Market, SimpleMatchAtMidpoint) {
  MarketFixture fx;
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 10.0, 4.0});
  market.post_bid({2, fx.consumer, 10.0, 6.0});
  const ClearingResult result = market.clear(fx.ledger);

  ASSERT_EQ(result.trades.size(), 1u);
  const Trade& trade = result.trades.front();
  EXPECT_TRUE(trade.settled);
  EXPECT_DOUBLE_EQ(trade.quantity_gb, 10.0);
  EXPECT_DOUBLE_EQ(trade.price_per_gb, 5.0);  // midpoint of 4 and 6
  EXPECT_DOUBLE_EQ(result.cleared_gb, 10.0);
  EXPECT_DOUBLE_EQ(result.cleared_value, 50.0);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.provider_a), 50.0);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.consumer), 450.0);
}

TEST(Market, NoCrossNoTrade) {
  MarketFixture fx;
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 10.0, 8.0});
  market.post_bid({2, fx.consumer, 10.0, 5.0});  // bid below ask
  const ClearingResult result = market.clear(fx.ledger);
  EXPECT_TRUE(result.trades.empty());
  EXPECT_DOUBLE_EQ(result.unmatched_demand_gb, 10.0);
  EXPECT_DOUBLE_EQ(result.unmatched_supply_gb, 10.0);
}

TEST(Market, PricePriorityMatching) {
  MarketFixture fx;
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 5.0, 6.0});   // expensive
  market.post_ask({1, fx.provider_b, 5.0, 2.0});   // cheap — should fill first
  market.post_bid({2, fx.consumer, 5.0, 7.0});
  const ClearingResult result = market.clear(fx.ledger);
  ASSERT_EQ(result.trades.size(), 1u);
  EXPECT_EQ(result.trades.front().provider_party, 1u);
  EXPECT_DOUBLE_EQ(result.unmatched_supply_gb, 5.0);  // expensive ask unfilled
}

TEST(Market, PartialFillsAcrossAsks) {
  MarketFixture fx;
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 4.0, 3.0});
  market.post_ask({1, fx.provider_b, 4.0, 4.0});
  market.post_bid({2, fx.consumer, 6.0, 5.0});
  const ClearingResult result = market.clear(fx.ledger);
  ASSERT_EQ(result.trades.size(), 2u);
  EXPECT_DOUBLE_EQ(result.cleared_gb, 6.0);
  EXPECT_DOUBLE_EQ(result.trades[0].quantity_gb, 4.0);
  EXPECT_DOUBLE_EQ(result.trades[1].quantity_gb, 2.0);
  EXPECT_DOUBLE_EQ(result.unmatched_supply_gb, 2.0);
}

TEST(Market, MultipleBidsHighestFirst) {
  MarketFixture fx;
  const AccountId consumer2 = fx.ledger.open_account("consumer2");
  ASSERT_TRUE(fx.ledger.reward(consumer2, 100.0));
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 5.0, 2.0});
  market.post_bid({2, fx.consumer, 5.0, 3.0});
  market.post_bid({3, consumer2, 5.0, 9.0});  // higher limit wins the scarce supply
  const ClearingResult result = market.clear(fx.ledger);
  ASSERT_EQ(result.trades.size(), 1u);
  EXPECT_EQ(result.trades.front().consumer_party, 3u);
  EXPECT_DOUBLE_EQ(result.unmatched_demand_gb, 5.0);
}

TEST(Market, InsufficientFundsRecordedAsUnsettled) {
  MarketFixture fx;
  const AccountId broke = fx.ledger.open_account("broke");
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 10.0, 4.0});
  market.post_bid({5, broke, 10.0, 6.0});
  const ClearingResult result = market.clear(fx.ledger);
  ASSERT_EQ(result.trades.size(), 1u);
  EXPECT_FALSE(result.trades.front().settled);
  EXPECT_DOUBLE_EQ(result.cleared_gb, 0.0);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.provider_a), 0.0);
}

TEST(Market, ClearEmptiesBook) {
  MarketFixture fx;
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 1.0, 1.0});
  (void)market.clear(fx.ledger);
  EXPECT_TRUE(market.asks().empty());
  EXPECT_TRUE(market.bids().empty());
  const ClearingResult again = market.clear(fx.ledger);
  EXPECT_TRUE(again.trades.empty());
}

TEST(Market, AveragePriceQuantityWeighted) {
  MarketFixture fx;
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 4.0, 2.0});
  market.post_ask({1, fx.provider_b, 4.0, 6.0});
  market.post_bid({2, fx.consumer, 8.0, 6.0});
  const ClearingResult result = market.clear(fx.ledger);
  // Trades at (2+6)/2 = 4 and (6+6)/2 = 6; each 4 GB.
  EXPECT_DOUBLE_EQ(result.average_price(), 5.0);
}

TEST(Market, EmptyExclusionSpanIsBitIdentical) {
  MarketFixture fx;
  MarketFixture fx2;
  CapacityMarket market;
  CapacityMarket market2;
  for (CapacityMarket* m : {&market, &market2}) {
    m->post_ask({0, fx.provider_a, 4.0, 2.0});
    m->post_ask({1, fx.provider_b, 4.0, 6.0});
    m->post_bid({2, fx.consumer, 8.0, 6.0});
  }
  const ClearingResult plain = market.clear(fx.ledger);
  const ClearingResult guarded = market2.clear(fx2.ledger, {});
  ASSERT_EQ(plain.trades.size(), guarded.trades.size());
  EXPECT_EQ(plain.cleared_gb, guarded.cleared_gb);
  EXPECT_EQ(plain.cleared_value, guarded.cleared_value);
  EXPECT_EQ(fx.ledger, fx2.ledger);
}

TEST(Market, ExcludedProviderAsksGoUnmatched) {
  MarketFixture fx;
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 5.0, 2.0});  // cheapest, but quarantined
  market.post_ask({1, fx.provider_b, 5.0, 4.0});
  market.post_bid({2, fx.consumer, 5.0, 6.0});
  const std::vector<std::uint8_t> excluded{1, 0, 0};
  const ClearingResult result = market.clear(fx.ledger, excluded);
  ASSERT_EQ(result.trades.size(), 1u);
  EXPECT_EQ(result.trades.front().provider_party, 1u);
  // The pulled ask surfaces as unmatched supply rather than vanishing.
  EXPECT_DOUBLE_EQ(result.unmatched_supply_gb, 5.0);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.provider_a), 0.0);
}

TEST(Market, ExcludedConsumerBidsGoUnmatched) {
  MarketFixture fx;
  CapacityMarket market;
  market.post_ask({0, fx.provider_a, 5.0, 2.0});
  market.post_bid({2, fx.consumer, 5.0, 9.0});  // quarantined party 2
  const std::vector<std::uint8_t> excluded{0, 0, 1};
  const ClearingResult result = market.clear(fx.ledger, excluded);
  EXPECT_TRUE(result.trades.empty());
  EXPECT_DOUBLE_EQ(result.unmatched_demand_gb, 5.0);
  EXPECT_DOUBLE_EQ(result.unmatched_supply_gb, 5.0);
  // Parties beyond the span stay eligible: the same book trades once the
  // mask no longer reaches party 2.
  market.post_ask({0, fx.provider_a, 5.0, 2.0});
  market.post_bid({2, fx.consumer, 5.0, 9.0});
  const std::vector<std::uint8_t> short_mask{0, 0};
  EXPECT_EQ(market.clear(fx.ledger, short_mask).trades.size(), 1u);
}

TEST(Market, RejectsNegativeInputs) {
  CapacityMarket market;
  EXPECT_THROW(market.post_ask({0, 0, -1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(market.post_bid({0, 0, 1.0, -1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
