#include "core/adversary_sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/run_context.hpp"

namespace mpleo::core {
namespace {

// Smallest workload that still exercises every stage: 4 parties, one short
// epoch, three sweep points.
AdversarySweepConfig tiny_config() {
  AdversarySweepConfig config;
  config.byzantine_fractions = {0.0, 0.25, 0.5};
  config.parties = 4;
  config.satellites_per_party = 3;
  config.terminals_per_party = 2;
  config.stations_per_party = 1;
  config.epochs = 2;
  config.epoch_duration_s = 2.0 * 3600.0;
  config.step_s = 300.0;
  return config;
}

TEST(AdversarySweep, ReportsEveryPointWithMonotonePayoff) {
  sim::RunContext context;
  const std::vector<AdversarySweepPoint> points =
      adversary_sweep(tiny_config(), context);
  ASSERT_EQ(points.size(), 3u);

  // Point 0 is the adversary-free baseline.
  EXPECT_EQ(points[0].byzantine_parties, 0u);
  EXPECT_EQ(points[0].fraud_injected, 0u);
  EXPECT_EQ(points[0].fraud_detected, 0u);
  EXPECT_EQ(points[0].quarantined_parties + points[0].expelled_parties, 0u);
  EXPECT_GT(points[0].honest_core_welfare, 0.0);

  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].byzantine_fraction,
                     tiny_config().byzantine_fractions[i]);
    EXPECT_GE(points[i].fraud_detected, points[i].fraud_injected) << "point " << i;
    if (i > 0) {
      EXPECT_GE(points[i].byzantine_parties, points[i - 1].byzantine_parties);
      EXPECT_LE(points[i].honest_core_payoff,
                points[i - 1].honest_core_payoff + 1e-9)
          << "payoff not monotone at point " << i;
    }
  }
  // Byzantine behavior was actually injected at the deepest point.
  EXPECT_GT(points.back().fraud_injected, 0u);

  EXPECT_EQ(context.metrics().counter_value("adversary_sweep.points"), 3u);
}

TEST(AdversarySweep, DeterministicAcrossRuns) {
  sim::RunContext a;
  sim::RunContext b;
  const std::vector<AdversarySweepPoint> first = adversary_sweep(tiny_config(), a);
  const std::vector<AdversarySweepPoint> second = adversary_sweep(tiny_config(), b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].fraud_injected, second[i].fraud_injected);
    EXPECT_EQ(first[i].fraud_detected, second[i].fraud_detected);
    EXPECT_EQ(first[i].quarantined_parties, second[i].quarantined_parties);
    EXPECT_DOUBLE_EQ(first[i].honest_core_payoff, second[i].honest_core_payoff);
    EXPECT_DOUBLE_EQ(first[i].mean_honest_balance, second[i].mean_honest_balance);
  }
}

TEST(AdversarySweep, ValidatesConfig) {
  sim::RunContext context;
  AdversarySweepConfig config = tiny_config();
  config.parties = 0;
  EXPECT_THROW((void)adversary_sweep(config, context), std::invalid_argument);

  config = tiny_config();
  config.byzantine_fractions = {0.5, 0.25};  // must be non-decreasing
  EXPECT_THROW((void)adversary_sweep(config, context), std::invalid_argument);

  config = tiny_config();
  config.stations_per_party = 5;  // more stations than terminal anchors
  EXPECT_THROW((void)adversary_sweep(config, context), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
