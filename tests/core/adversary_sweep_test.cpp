#include "core/adversary_sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/run_context.hpp"

namespace mpleo::core {
namespace {

// Smallest workload that still exercises every stage: 4 parties, one short
// epoch, three sweep points.
AdversarySweepConfig tiny_config() {
  AdversarySweepConfig config;
  config.byzantine_fractions = {0.0, 0.25, 0.5};
  config.parties = 4;
  config.satellites_per_party = 3;
  config.terminals_per_party = 2;
  config.stations_per_party = 1;
  config.epochs = 2;
  config.epoch_duration_s = 2.0 * 3600.0;
  config.step_s = 300.0;
  return config;
}

TEST(AdversarySweep, ReportsEveryPointWithMonotonePayoff) {
  sim::RunContext context;
  const std::vector<AdversarySweepPoint> points =
      adversary_sweep(tiny_config(), context);
  ASSERT_EQ(points.size(), 3u);

  // Point 0 is the adversary-free baseline.
  EXPECT_EQ(points[0].byzantine_parties, 0u);
  EXPECT_EQ(points[0].fraud_injected, 0u);
  EXPECT_EQ(points[0].fraud_detected, 0u);
  EXPECT_EQ(points[0].quarantined_parties + points[0].expelled_parties, 0u);
  EXPECT_GT(points[0].honest_core_welfare, 0.0);

  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].byzantine_fraction,
                     tiny_config().byzantine_fractions[i]);
    EXPECT_GE(points[i].fraud_detected, points[i].fraud_injected) << "point " << i;
    if (i > 0) {
      EXPECT_GE(points[i].byzantine_parties, points[i - 1].byzantine_parties);
      EXPECT_LE(points[i].honest_core_payoff,
                points[i - 1].honest_core_payoff + 1e-9)
          << "payoff not monotone at point " << i;
    }
  }
  // Byzantine behavior was actually injected at the deepest point.
  EXPECT_GT(points.back().fraud_injected, 0u);

  EXPECT_EQ(context.metrics().counter_value("adversary_sweep.points"), 3u);
}

TEST(AdversarySweep, DeterministicAcrossRuns) {
  sim::RunContext a;
  sim::RunContext b;
  const std::vector<AdversarySweepPoint> first = adversary_sweep(tiny_config(), a);
  const std::vector<AdversarySweepPoint> second = adversary_sweep(tiny_config(), b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].fraud_injected, second[i].fraud_injected);
    EXPECT_EQ(first[i].fraud_detected, second[i].fraud_detected);
    EXPECT_EQ(first[i].quarantined_parties, second[i].quarantined_parties);
    EXPECT_DOUBLE_EQ(first[i].honest_core_payoff, second[i].honest_core_payoff);
    EXPECT_DOUBLE_EQ(first[i].mean_honest_balance, second[i].mean_honest_balance);
  }
}

TEST(AdversarySweep, ValidatesConfig) {
  sim::RunContext context;
  AdversarySweepConfig config = tiny_config();
  config.parties = 0;
  EXPECT_THROW((void)adversary_sweep(config, context), std::invalid_argument);

  config = tiny_config();
  config.byzantine_fractions = {0.5, 0.25};  // must be non-decreasing
  EXPECT_THROW((void)adversary_sweep(config, context), std::invalid_argument);

  config = tiny_config();
  config.stations_per_party = 5;  // more stations than terminal anchors
  EXPECT_THROW((void)adversary_sweep(config, context), std::invalid_argument);
}

RfSweepConfig tiny_rf_config() {
  RfSweepConfig rf;
  rf.doppler_trials = 16;
  rf.jammer_fractions = {0.0, 0.5};
  return rf;
}

TEST(RfAdversarySweep, DetectsGatedForgeriesAndSparesHonestTracks) {
  sim::RunContext context;
  const RfSweepResult result =
      rf_adversary_sweep(tiny_config(), tiny_rf_config(), context);

  // One point per forgery sophistication level, ladder order.
  ASSERT_EQ(result.doppler.size(), 4u);
  EXPECT_EQ(result.doppler[0].level, rf::ForgeryLevel::kFlatTone);
  EXPECT_EQ(result.doppler[3].level, rf::ForgeryLevel::kEphemerisExact);
  for (const RfDopplerPoint& p : result.doppler) {
    EXPECT_EQ(p.gated, rf::detectable(p.level));
    EXPECT_EQ(p.forged_submitted, 16u);
    EXPECT_EQ(p.honest_submitted, 16u);
    // The acceptance gate in miniature: every gated level fully detected,
    // zero honest tracks flagged anywhere.
    if (p.gated) {
      EXPECT_EQ(p.forged_rejected, p.forged_submitted) << rf::to_string(p.level);
      EXPECT_DOUBLE_EQ(p.detection_rate, 1.0);
    }
    EXPECT_EQ(p.honest_flagged, 0u) << rf::to_string(p.level);
  }
  // The blind spot stays blind: an ephemeris-exact forger passes the fit.
  EXPECT_EQ(result.doppler[3].forged_rejected, 0u);

  // Jamming axis: the 0-fraction anchor is undegraded; jammers bleed
  // capacity monotonically and every one of them is attributed.
  ASSERT_EQ(result.jamming.size(), 2u);
  EXPECT_EQ(result.jamming[0].jamming_parties, 0u);
  EXPECT_DOUBLE_EQ(result.jamming[0].honest_welfare, 1.0);
  EXPECT_EQ(result.jamming[0].violations_detected, 0u);
  // With nobody jamming the scheduler never engages the RF accounting at
  // all (the bit-identity contract), so the anchor reports no RF capacity.
  EXPECT_DOUBLE_EQ(result.jamming[0].capacity_nominal_bps, 0.0);
  EXPECT_DOUBLE_EQ(result.jamming[0].capacity_realized_bps, 0.0);
  EXPECT_EQ(result.jamming[1].jamming_parties, 2u);
  EXPECT_GT(result.jamming[1].capacity_nominal_bps, 0.0);
  EXPECT_LT(result.jamming[1].capacity_realized_bps,
            result.jamming[1].capacity_nominal_bps);
  EXPECT_LT(result.jamming[1].honest_welfare, 1.0);
  EXPECT_GE(result.jamming[1].violations_detected,
            result.jamming[1].jamming_parties);

  EXPECT_EQ(context.metrics().counter_value("rf_sweep.forged_submitted"), 4u * 16u);
  EXPECT_EQ(context.metrics().counter_value("rf_sweep.honest_flagged"), 0u);
  EXPECT_EQ(context.metrics().counter_value("rf_sweep.jamming_points"), 2u);
}

TEST(RfAdversarySweep, DeterministicAcrossRuns) {
  sim::RunContext a;
  sim::RunContext b;
  const RfSweepResult first = rf_adversary_sweep(tiny_config(), tiny_rf_config(), a);
  const RfSweepResult second = rf_adversary_sweep(tiny_config(), tiny_rf_config(), b);
  ASSERT_EQ(first.doppler.size(), second.doppler.size());
  for (std::size_t i = 0; i < first.doppler.size(); ++i) {
    EXPECT_EQ(first.doppler[i].forged_rejected, second.doppler[i].forged_rejected);
    EXPECT_EQ(first.doppler[i].honest_flagged, second.doppler[i].honest_flagged);
  }
  ASSERT_EQ(first.jamming.size(), second.jamming.size());
  for (std::size_t i = 0; i < first.jamming.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.jamming[i].capacity_realized_bps,
                     second.jamming[i].capacity_realized_bps);
    EXPECT_EQ(first.jamming[i].violations_detected,
              second.jamming[i].violations_detected);
  }
}

TEST(RfAdversarySweep, ValidatesRfConfig) {
  sim::RunContext context;
  RfSweepConfig rf = tiny_rf_config();
  rf.doppler_trials = 0;
  EXPECT_THROW((void)rf_adversary_sweep(tiny_config(), rf, context),
               std::invalid_argument);

  rf = tiny_rf_config();
  rf.doppler.rms_tolerance_hz = -1.0;
  EXPECT_THROW((void)rf_adversary_sweep(tiny_config(), rf, context),
               std::invalid_argument);

  rf = tiny_rf_config();
  rf.jammer_fractions = {0.5, 0.25};  // must be non-decreasing
  EXPECT_THROW((void)rf_adversary_sweep(tiny_config(), rf, context),
               std::invalid_argument);

  rf = tiny_rf_config();
  rf.jammer_fractions = {1.5};  // not a fraction
  EXPECT_THROW((void)rf_adversary_sweep(tiny_config(), rf, context),
               std::invalid_argument);

  rf = tiny_rf_config();
  rf.spectrum.channel_bandwidth_hz = -1.0;
  EXPECT_THROW((void)rf_adversary_sweep(tiny_config(), rf, context),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
