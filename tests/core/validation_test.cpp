// The unified structured-validation surface: every config struct's
// validate() returns std::vector<core::ConfigIssue>, the subsystem issue
// types are thin aliases of it, and format/throw behave identically for
// every component.
#include "core/validation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/scheduler.hpp"
#include "orbit/tle.hpp"
#include "rf/validation.hpp"
#include "sim/scenario.hpp"

namespace mpleo {
namespace {

TEST(ConfigIssue, AliasesShareOneType) {
  // The subsystem issue names are aliases, not parallel types: an issue
  // from any layer can land in one damage report.
  static_assert(std::is_same_v<rf::RfConfigIssue, core::ConfigIssue>);
  static_assert(std::is_same_v<orbit::TleFieldIssue, core::ConfigIssue>);

  std::vector<core::ConfigIssue> report;
  report.push_back({"rf", "chip_rate_hz", "must be positive"});
  report.push_back({"orbit.tle", "line1", "checksum mismatch"});
  report.push_back({"sim.scenario", "step_s", "must be > 0"});
  EXPECT_TRUE(core::has_errors(report));
  EXPECT_EQ(report[0].component, "rf");
  EXPECT_EQ(report[1].component, "orbit.tle");
}

TEST(ConfigIssue, SeverityDefaultsToError) {
  const core::ConfigIssue issue{"net.scheduler", "beams", "bad"};
  EXPECT_EQ(issue.severity, core::IssueSeverity::kError);
  EXPECT_STREQ(core::to_string(core::IssueSeverity::kError), "error");
  EXPECT_STREQ(core::to_string(core::IssueSeverity::kWarning), "warning");
}

TEST(ConfigIssue, WarningsAloneAreNotErrors) {
  std::vector<core::ConfigIssue> issues;
  issues.push_back(
      {"sim.scenario", "runs", "large run count", core::IssueSeverity::kWarning});
  EXPECT_FALSE(core::has_errors(issues));
  EXPECT_NO_THROW(core::throw_if_invalid("ctx", issues));
  issues.push_back({"sim.scenario", "step_s", "must be > 0"});
  EXPECT_TRUE(core::has_errors(issues));
  EXPECT_THROW(core::throw_if_invalid("ctx", issues), std::invalid_argument);
}

TEST(ConfigIssue, FormatJoinsEveryIssue) {
  EXPECT_EQ(core::format_issues("DopplerModel", {}), "");
  std::vector<core::ConfigIssue> issues;
  issues.push_back({"rf", "carrier_hz", "must be finite and positive"});
  issues.push_back({"rf", "chip_rate_hz", "must be positive"});
  const std::string msg = core::format_issues("DopplerModel", issues);
  EXPECT_NE(msg.find("DopplerModel: 2 invalid field(s)"), std::string::npos);
  EXPECT_NE(msg.find("  carrier_hz: must be finite and positive"), std::string::npos);
  EXPECT_NE(msg.find("  chip_rate_hz: must be positive"), std::string::npos);
}

TEST(ConfigIssue, ThrowCarriesFormattedMessage) {
  std::vector<core::ConfigIssue> issues;
  issues.push_back({"net.scheduler", "beams_per_satellite", "must be >= 1"});
  try {
    core::throw_if_invalid("BentPipeScheduler", issues);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("beams_per_satellite"), std::string::npos);
  }
}

TEST(SchedulerConfigValidate, ReportsEveryBadField) {
  net::SchedulerConfig config;
  EXPECT_TRUE(config.validate().empty());

  config.beams_per_satellite = 0;
  config.stream_chunk_steps = 3;  // not a power of two
  config.spare_withheld_fraction = {1.5};
  const std::vector<core::ConfigIssue> issues = config.validate();
  EXPECT_EQ(issues.size(), 3u);
  for (const core::ConfigIssue& issue : issues) {
    EXPECT_EQ(issue.component, "net.scheduler");
  }
  EXPECT_THROW(
      net::BentPipeScheduler(config, {}, {}, {}),
      std::invalid_argument);
}

TEST(ScenarioValidate, MegaPresetNeedsWorkloadSizes) {
  sim::Scenario scenario;
  EXPECT_TRUE(scenario.validate().empty());

  scenario.apply_scale(sim::ScalePreset::kMegaSmoke);
  EXPECT_TRUE(scenario.validate().empty());

  scenario.terminal_count = 0;  // preset sizes wiped out by hand
  const std::vector<core::ConfigIssue> issues = scenario.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].component, "sim.scenario");
  EXPECT_EQ(issues[0].field, "terminal_count");
}

TEST(ScenarioValidate, CollectsEveryBadField) {
  sim::Scenario scenario;
  scenario.runs = 0;
  scenario.step_s = 0.0;
  scenario.elevation_mask_deg = 95.0;
  scenario.adversary_fraction = -0.5;
  const std::vector<core::ConfigIssue> issues = scenario.validate();
  EXPECT_EQ(issues.size(), 4u);
  EXPECT_TRUE(core::has_errors(issues));
}

}  // namespace
}  // namespace mpleo
