#include "core/party.hpp"

#include <gtest/gtest.h>

namespace mpleo::core {
namespace {

TEST(Party, DefaultsAreSane) {
  const Party p;
  EXPECT_EQ(p.kind, PartyKind::kCountry);
  EXPECT_EQ(p.objective, Objective::kRegionalCoverage);
  EXPECT_TRUE(p.active);
}

TEST(Party, KindNames) {
  EXPECT_STREQ(to_string(PartyKind::kCountry), "country");
  EXPECT_STREQ(to_string(PartyKind::kCompany), "company");
}

TEST(Party, ObjectiveNames) {
  EXPECT_STREQ(to_string(Objective::kGlobalCoverage), "global-coverage");
  EXPECT_STREQ(to_string(Objective::kRegionalCoverage), "regional-coverage");
  EXPECT_STREQ(to_string(Objective::kProfit), "profit");
}

}  // namespace
}  // namespace mpleo::core
