#include "core/proof_of_coverage.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "orbit/geodesy.hpp"
#include "orbit/propagator.hpp"

namespace mpleo::core {
namespace {

// A scenario where geometry is under our control: an equatorial satellite and
// a verifier at the sub-satellite point at epoch.
struct PocFixture {
  ProofOfCoverage poc{ProofOfCoverage::Config{}};
  constellation::Satellite satellite;
  std::uint64_t key = 0;
  std::uint32_t overhead_verifier = 0;
  std::uint32_t far_verifier = 0;
  orbit::TimePoint epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

  PocFixture() {
    satellite.id = 7;
    satellite.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);
    satellite.epoch = epoch;
    key = poc.register_satellite(satellite, /*consortium_seed=*/1234);

    // Sub-satellite point at epoch: propagate and convert.
    const orbit::KeplerianPropagator prop(satellite.elements, epoch);
    const auto ecef = orbit::eci_to_ecef(prop.state_at(epoch).position, epoch);
    const orbit::Geodetic below = orbit::ecef_to_geodetic(ecef);
    overhead_verifier =
        poc.register_verifier({below.latitude_rad, below.longitude_rad, 0.0});
    // Antipodal verifier can never see the satellite.
    far_verifier = poc.register_verifier(
        orbit::Geodetic::from_degrees(-60.0, below.longitude_rad > 0 ? -120.0 : 120.0));
  }
};

TEST(ProofOfCoverage, ValidReceiptVerifies) {
  PocFixture fx;
  const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
      fx.satellite.id, fx.key, fx.overhead_verifier, fx.epoch, /*nonce=*/42);
  EXPECT_EQ(fx.poc.verify(receipt), ReceiptVerdict::kValid);
}

TEST(ProofOfCoverage, ForgedDigestRejected) {
  PocFixture fx;
  CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
      fx.satellite.id, fx.key, fx.overhead_verifier, fx.epoch, 42);
  receipt.digest ^= 1;
  EXPECT_EQ(fx.poc.verify(receipt), ReceiptVerdict::kBadDigest);
}

TEST(ProofOfCoverage, WrongKeyRejected) {
  PocFixture fx;
  const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
      fx.satellite.id, fx.key ^ 0xDEAD, fx.overhead_verifier, fx.epoch, 42);
  EXPECT_EQ(fx.poc.verify(receipt), ReceiptVerdict::kBadDigest);
}

TEST(ProofOfCoverage, NonceBoundToDigest) {
  PocFixture fx;
  CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
      fx.satellite.id, fx.key, fx.overhead_verifier, fx.epoch, 42);
  receipt.nonce = 43;  // replay with altered nonce
  EXPECT_EQ(fx.poc.verify(receipt), ReceiptVerdict::kBadDigest);
}

TEST(ProofOfCoverage, GeometryRejectsCoverageLies) {
  // A cryptographically valid receipt claiming coverage where the satellite
  // is not overhead must fail: rewards only for real coverage (§3.2).
  PocFixture fx;
  const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
      fx.satellite.id, fx.key, fx.far_verifier, fx.epoch, 42);
  EXPECT_EQ(fx.poc.verify(receipt), ReceiptVerdict::kNotOverhead);
}

TEST(ProofOfCoverage, UnknownSatelliteAndVerifier) {
  PocFixture fx;
  CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
      999, fx.key, fx.overhead_verifier, fx.epoch, 42);
  EXPECT_EQ(fx.poc.verify(receipt), ReceiptVerdict::kUnknownSatellite);

  receipt = ProofOfCoverage::answer_challenge(fx.satellite.id, fx.key, 77, fx.epoch, 42);
  EXPECT_EQ(fx.poc.verify(receipt), ReceiptVerdict::kUnknownVerifier);
}

TEST(ProofOfCoverage, RewardPaidOnlyWhenValid) {
  PocFixture fx;
  Ledger ledger;
  ledger.mint(10.0);
  const AccountId owner = ledger.open_account("owner");

  const CoverageReceipt good = ProofOfCoverage::answer_challenge(
      fx.satellite.id, fx.key, fx.overhead_verifier, fx.epoch, 1);
  EXPECT_EQ(fx.poc.verify_and_reward(good, ledger, owner), ReceiptVerdict::kValid);
  EXPECT_DOUBLE_EQ(ledger.balance(owner), fx.poc.config().reward_per_receipt);

  CoverageReceipt bad = good;
  bad.digest ^= 1;
  EXPECT_EQ(fx.poc.verify_and_reward(bad, ledger, owner), ReceiptVerdict::kBadDigest);
  EXPECT_DOUBLE_EQ(ledger.balance(owner), fx.poc.config().reward_per_receipt);
}

TEST(ProofOfCoverage, DigestIsDeterministicAndKeyed) {
  const auto d1 = ProofOfCoverage::digest(1, 2, 3, 4.5, 6);
  const auto d2 = ProofOfCoverage::digest(1, 2, 3, 4.5, 6);
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, ProofOfCoverage::digest(2, 2, 3, 4.5, 6));  // key
  EXPECT_NE(d1, ProofOfCoverage::digest(1, 9, 3, 4.5, 6));  // satellite
  EXPECT_NE(d1, ProofOfCoverage::digest(1, 2, 9, 4.5, 6));  // verifier
  EXPECT_NE(d1, ProofOfCoverage::digest(1, 2, 3, 9.5, 6));  // time
  EXPECT_NE(d1, ProofOfCoverage::digest(1, 2, 3, 4.5, 9));  // nonce
}

TEST(ProofOfCoverage, KeysDifferAcrossSatellitesAndSeeds) {
  ProofOfCoverage poc{ProofOfCoverage::Config{}};
  constellation::Satellite a, b;
  a.id = 1;
  b.id = 2;
  const auto ka = poc.register_satellite(a, 7);
  const auto kb = poc.register_satellite(b, 7);
  EXPECT_NE(ka, kb);
  ProofOfCoverage poc2{ProofOfCoverage::Config{}};
  EXPECT_NE(poc2.register_satellite(a, 8), ka);
}

TEST(ProofOfCoverage, ToStringCoversAllVerdicts) {
  EXPECT_STREQ(to_string(ReceiptVerdict::kValid), "valid");
  EXPECT_STREQ(to_string(ReceiptVerdict::kBadDigest), "bad-digest");
  EXPECT_STREQ(to_string(ReceiptVerdict::kNotOverhead), "not-overhead");
  EXPECT_STREQ(to_string(ReceiptVerdict::kUnknownSatellite), "unknown-satellite");
  EXPECT_STREQ(to_string(ReceiptVerdict::kUnknownVerifier), "unknown-verifier");
  EXPECT_STREQ(to_string(ReceiptVerdict::kDuplicate), "duplicate");
}

TEST(ProofOfCoverage, ContentHashCoversEveryField) {
  CoverageReceipt receipt;
  receipt.satellite = 7;
  receipt.verifier = 3;
  receipt.time = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  receipt.nonce = 42;
  receipt.digest = 0xABCD;
  const std::uint64_t base = receipt.content_hash();
  EXPECT_EQ(base, receipt.content_hash());  // deterministic

  CoverageReceipt mutated = receipt;
  mutated.satellite = 8;
  EXPECT_NE(mutated.content_hash(), base);
  mutated = receipt;
  mutated.verifier = 4;
  EXPECT_NE(mutated.content_hash(), base);
  mutated = receipt;
  mutated.time = orbit::TimePoint::from_iso8601("2024-11-18T00:00:01Z");
  EXPECT_NE(mutated.content_hash(), base);
  mutated = receipt;
  mutated.nonce = 43;
  EXPECT_NE(mutated.content_hash(), base);
  mutated = receipt;
  mutated.digest = 0xABCE;
  EXPECT_NE(mutated.content_hash(), base);
}

TEST(ProofOfCoverage, ResubmittedReceiptVerdictsDuplicate) {
  // The inflation attack: a once-valid receipt resubmitted verbatim must not
  // double-pay — the ledger's content-hash guard verdicts it kDuplicate.
  PocFixture fx;
  Ledger ledger;
  ledger.mint(10.0);
  const AccountId owner = ledger.open_account("owner");

  const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
      fx.satellite.id, fx.key, fx.overhead_verifier, fx.epoch, 5);
  EXPECT_EQ(fx.poc.verify_and_reward(receipt, ledger, owner), ReceiptVerdict::kValid);
  EXPECT_EQ(fx.poc.verify_and_reward(receipt, ledger, owner),
            ReceiptVerdict::kDuplicate);
  EXPECT_DOUBLE_EQ(ledger.balance(owner), fx.poc.config().reward_per_receipt);

  // A fresh nonce is a fresh receipt: next overhead pass still pays.
  const CoverageReceipt fresh = ProofOfCoverage::answer_challenge(
      fx.satellite.id, fx.key, fx.overhead_verifier, fx.epoch, 6);
  EXPECT_EQ(fx.poc.verify_and_reward(fresh, ledger, owner), ReceiptVerdict::kValid);
  EXPECT_DOUBLE_EQ(ledger.balance(owner), 2.0 * fx.poc.config().reward_per_receipt);
}

TEST(ProofOfCoverage, OverheadStepsPlanValidChallenges) {
  PocFixture fx;
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(fx.epoch, 86400.0, 60.0);

  const cov::StepMask overhead =
      fx.poc.overhead_steps(fx.satellite.id, fx.overhead_verifier, grid);
  ASSERT_GT(overhead.count(), 0u);
  // The sub-satellite verifier sees the satellite at epoch (step 0), and a
  // receipt timestamped at any planned step clears the geometry check.
  EXPECT_TRUE(overhead.test(0));
  for (std::size_t step = 0; step < grid.count; ++step) {
    if (!overhead.test(step)) continue;
    const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
        fx.satellite.id, fx.key, fx.overhead_verifier, grid.at(step), /*nonce=*/99);
    EXPECT_EQ(fx.poc.verify(receipt), ReceiptVerdict::kValid) << "step " << step;
  }

  // The antipodal verifier never sees it.
  EXPECT_EQ(fx.poc.overhead_steps(fx.satellite.id, fx.far_verifier, grid).count(), 0u);

  EXPECT_THROW((void)fx.poc.overhead_steps(/*satellite=*/999, fx.overhead_verifier, grid),
               std::invalid_argument);
  EXPECT_THROW((void)fx.poc.overhead_steps(fx.satellite.id, /*verifier=*/99, grid),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
