#include "core/allocation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::core {
namespace {

// Builds a usage aggregate where party 1 consumed spare capacity that
// parties 0 and 2 provided (2:1 split of provided seconds).
net::ScheduleResult sample_usage() {
  net::ScheduleResult usage;
  usage.per_party.resize(3);
  usage.per_party[1].spare_used_seconds = 600.0;             // 10 minutes
  usage.per_party[1].bytes_received_from_others = 2e9;       // 2 GB
  usage.per_party[0].spare_provided_seconds = 400.0;
  usage.per_party[0].bytes_carried_for_others = 1.4e9;
  usage.per_party[2].spare_provided_seconds = 200.0;
  usage.per_party[2].bytes_carried_for_others = 0.6e9;
  return usage;
}

struct Accounts {
  Ledger ledger;
  std::vector<AccountId> ids;
};

Accounts funded_accounts(double initial = 1000.0) {
  Accounts a;
  a.ledger.mint(3 * initial);
  for (int i = 0; i < 3; ++i) {
    a.ids.push_back(a.ledger.open_account("party" + std::to_string(i)));
    EXPECT_TRUE(a.ledger.reward(a.ids.back(), initial));
  }
  return a;
}

TEST(Settlement, ConsumerPaysProvidersProportionally) {
  Accounts accounts = funded_accounts();
  SettlementConfig cfg;
  cfg.pricing.tokens_per_gb = 8.0;
  cfg.pricing.tokens_per_minute = 0.5;

  const SettlementReport report =
      settle(sample_usage(), accounts.ids, cfg, accounts.ledger);

  // Owed: 2 GB * 8 + 10 min * 0.5 = 21 tokens.
  EXPECT_NEAR(report.per_party[1].paid, 21.0, 1e-9);
  // Split 400:200 across providers 0 and 2.
  EXPECT_NEAR(report.per_party[0].earned, 14.0, 1e-9);
  EXPECT_NEAR(report.per_party[2].earned, 7.0, 1e-9);
  EXPECT_NEAR(report.total_cleared, 21.0, 1e-9);
  EXPECT_EQ(report.failed_transfers, 0u);

  // Ledger reflects the payments.
  EXPECT_NEAR(accounts.ledger.balance(accounts.ids[1]), 1000.0 - 21.0, 1e-9);
  EXPECT_NEAR(accounts.ledger.balance(accounts.ids[0]), 1014.0, 1e-9);
  EXPECT_NEAR(accounts.ledger.sum_of_balances(), accounts.ledger.total_minted(), 1e-9);
}

TEST(Settlement, MoreSatellitesEarnMore) {
  // The paper's §3.2 claim, as an accounting fact: the provider with more
  // spare-provided time earns strictly more.
  Accounts accounts = funded_accounts();
  SettlementConfig cfg;
  const SettlementReport report =
      settle(sample_usage(), accounts.ids, cfg, accounts.ledger);
  EXPECT_GT(report.per_party[0].earned, report.per_party[2].earned);
}

TEST(Settlement, NoProvidersMeansNothingCleared) {
  Accounts accounts = funded_accounts();
  net::ScheduleResult usage;
  usage.per_party.resize(3);
  usage.per_party[1].spare_used_seconds = 100.0;  // demand but nobody provided
  SettlementConfig cfg;
  const SettlementReport report = settle(usage, accounts.ids, cfg, accounts.ledger);
  EXPECT_EQ(report.total_cleared, 0.0);
}

TEST(Settlement, InsufficientFundsRecordedNotThrown) {
  Accounts accounts = funded_accounts(0.0);  // nobody has tokens
  SettlementConfig cfg;
  const SettlementReport report =
      settle(sample_usage(), accounts.ids, cfg, accounts.ledger);
  EXPECT_EQ(report.total_cleared, 0.0);
  EXPECT_GT(report.failed_transfers, 0u);
}

TEST(Settlement, DynamicMultiplierApplied) {
  Accounts accounts = funded_accounts();
  net::ScheduleResult usage = sample_usage();
  // Fully served spare demand -> utilization 1.0 -> multiplier above 1.
  SettlementConfig cfg;
  cfg.dynamic = true;
  cfg.dynamic_config.base = cfg.pricing;
  cfg.dynamic_config.target_utilization = 0.5;
  cfg.dynamic_config.sensitivity = 1.0;
  const SettlementReport report = settle(usage, accounts.ids, cfg, accounts.ledger);
  EXPECT_NEAR(report.utilization, 1.0, 1e-12);
  EXPECT_NEAR(report.price_multiplier, 1.5, 1e-12);
  EXPECT_NEAR(report.per_party[1].paid, 21.0 * 1.5, 1e-9);
}

TEST(Settlement, UtilizationCountsUnserved) {
  Accounts accounts = funded_accounts();
  net::ScheduleResult usage = sample_usage();
  usage.per_party[1].unserved_terminal_seconds = 600.0;  // half the demand unmet
  SettlementConfig cfg;
  const SettlementReport report = settle(usage, accounts.ids, cfg, accounts.ledger);
  EXPECT_NEAR(report.utilization, 0.5, 1e-12);
}

TEST(Settlement, ArityMismatchThrows) {
  Accounts accounts = funded_accounts();
  net::ScheduleResult usage;
  usage.per_party.resize(2);
  SettlementConfig cfg;
  EXPECT_THROW((void)settle(usage, accounts.ids, cfg, accounts.ledger),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
