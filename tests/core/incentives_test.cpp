#include "core/incentives.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "constellation/shell.hpp"
#include "coverage/engine.hpp"

namespace mpleo::core {
namespace {

TEST(Incentives, MultipliersScaleWithDeficit) {
  IncentiveConfig cfg;
  cfg.base_rate = 1.0;
  cfg.hole_boost = 4.0;
  cfg.gamma = 1.0;
  const std::vector<double> coverage{1.0, 0.5, 0.0};
  const auto multipliers = reward_multipliers(coverage, cfg);
  ASSERT_EQ(multipliers.size(), 3u);
  EXPECT_DOUBLE_EQ(multipliers[0], 1.0);  // fully covered: base rate
  EXPECT_DOUBLE_EQ(multipliers[1], 3.0);  // half covered
  EXPECT_DOUBLE_EQ(multipliers[2], 5.0);  // hole: base * (1 + boost)
}

TEST(Incentives, GammaConcentratesOnDeepHoles) {
  IncentiveConfig linear;
  IncentiveConfig quadratic;
  quadratic.gamma = 2.0;
  const std::vector<double> coverage{0.5};
  EXPECT_GT(reward_multipliers(coverage, linear)[0],
            reward_multipliers(coverage, quadratic)[0]);
}

TEST(Incentives, InvalidConfigThrows) {
  IncentiveConfig cfg;
  cfg.gamma = 0.0;
  EXPECT_THROW(reward_multipliers(std::vector<double>{0.5}, cfg), std::invalid_argument);
  cfg.gamma = 1.0;
  cfg.base_rate = -1.0;
  EXPECT_THROW(reward_multipliers(std::vector<double>{0.5}, cfg), std::invalid_argument);
}

TEST(Incentives, CoverageClampedToUnitRange) {
  IncentiveConfig cfg;
  const auto multipliers =
      reward_multipliers(std::vector<double>{1.4, -0.2}, cfg);
  EXPECT_DOUBLE_EQ(multipliers[0], cfg.base_rate);  // over-covered -> no boost
  EXPECT_DOUBLE_EQ(multipliers[1], cfg.base_rate * (1.0 + cfg.hole_boost));
}

TEST(Incentives, SatelliteOverHolesEarnsMore) {
  // Incentive/robustness alignment (§3.2-3.3): with holes at high latitude,
  // a polar satellite out-earns an equatorial one.
  const orbit::TimeGrid time_grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 6.0 * 3600.0, 120.0);
  const cov::CoverageEngine engine(time_grid, 25.0);
  const cov::EarthGrid grid(20.0);

  // Synthetic deficit: equatorial band fully covered, high latitudes empty.
  std::vector<double> coverage(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double lat = std::abs(grid.cells()[i].center.latitude_rad);
    coverage[i] = lat < 0.5 ? 1.0 : 0.0;  // ~28 deg boundary
  }
  const auto multipliers = reward_multipliers(coverage, IncentiveConfig{});

  constellation::Satellite polar;
  polar.elements = orbit::ClassicalElements::circular(550e3, 90.0, 0.0, 0.0);
  polar.epoch = time_grid.start;
  constellation::Satellite equatorial;
  equatorial.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);
  equatorial.epoch = time_grid.start;

  const double polar_rate = expected_reward_rate(engine, grid, multipliers, polar);
  const double equatorial_rate =
      expected_reward_rate(engine, grid, multipliers, equatorial);
  EXPECT_GT(polar_rate, equatorial_rate);
}

TEST(Incentives, RewardRateArityMismatchThrows) {
  const orbit::TimeGrid time_grid = orbit::TimeGrid::over_duration(
      orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 3600.0, 120.0);
  const cov::CoverageEngine engine(time_grid, 25.0);
  const cov::EarthGrid grid(30.0);
  const std::vector<double> wrong(grid.size() + 1, 1.0);
  constellation::Satellite sat;
  sat.epoch = time_grid.start;
  EXPECT_THROW((void)expected_reward_rate(engine, grid, wrong, sat),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
