// Campaign behaviour through the RunContext entry point (a serial,
// pool-less context); pool-size identity is pinned by
// run_context_identity_test.cpp.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "constellation/shell.hpp"
#include "sim/run_context.hpp"

namespace mpleo::core {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

struct CampaignFixture : public ::testing::Test {
  CampaignFixture() {
    Party a;
    a.name = "A";
    Party b;
    b.name = "B";
    party_a = consortium.add_party(a);
    party_b = consortium.add_party(b);
    consortium.contribute(party_a,
                          constellation::single_plane(550e3, 53.0, 0.0, 8, kEpoch));
    consortium.contribute(party_b,
                          constellation::single_plane(550e3, 53.0, 90.0, 4, kEpoch, 10.0));

    auto terminal = [](double lat, double lon, std::uint32_t party,
                       net::TerminalId id) {
      net::Terminal t;
      t.id = id;
      t.location = orbit::Geodetic::from_degrees(lat, lon);
      t.owner_party = party;
      t.radio = net::default_user_terminal();
      return t;
    };
    auto station = [](double lat, double lon, std::uint32_t party,
                      net::GroundStationId id) {
      net::GroundStation gs;
      gs.id = id;
      gs.location = orbit::Geodetic::from_degrees(lat, lon);
      gs.owner_party = party;
      gs.radio = net::default_ground_station();
      return gs;
    };
    terminals = {terminal(25.0, 121.5, party_a, 0), terminal(37.5, 127.0, party_b, 1)};
    stations = {station(24.8, 121.2, party_a, 0), station(37.3, 126.8, party_b, 1)};

    config.epoch_duration_s = 6.0 * 3600.0;  // short epochs keep tests fast
    config.step_s = 180.0;
  }

  Consortium consortium;
  PartyId party_a = 0, party_b = 0;
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  CampaignConfig config;
  sim::RunContext context;  // serial: no pool, default metrics/trace
};

TEST_F(CampaignFixture, BootstrapGrantsIssued) {
  const Campaign campaign(std::move(consortium), terminals, stations, config, 7);
  EXPECT_DOUBLE_EQ(campaign.ledger().balance(campaign.account_of(party_a)),
                   config.bootstrap_grant);
  EXPECT_DOUBLE_EQ(campaign.ledger().balance(campaign.account_of(party_b)),
                   config.bootstrap_grant);
}

TEST_F(CampaignFixture, EpochAdvancesClockAndCounters) {
  Campaign campaign(std::move(consortium), terminals, stations, config, 7);
  const EpochReport r0 = campaign.run_epoch(context);
  EXPECT_EQ(r0.epoch, 0u);
  EXPECT_EQ(r0.window_start.julian_date(), config.start.julian_date());
  const EpochReport r1 = campaign.run_epoch(context);
  EXPECT_EQ(r1.epoch, 1u);
  EXPECT_NEAR(r1.window_start.seconds_since(r0.window_start), config.epoch_duration_s,
              1e-6);
  EXPECT_EQ(campaign.epochs_run(), 2u);
}

TEST_F(CampaignFixture, LedgerConservedAcrossEpochs) {
  Campaign campaign(std::move(consortium), terminals, stations, config, 7);
  for (int e = 0; e < 3; ++e) {
    (void)campaign.run_epoch(context);
    EXPECT_NEAR(campaign.ledger().sum_of_balances(), campaign.ledger().total_minted(),
                1e-6);
  }
}

TEST_F(CampaignFixture, EmissionDistributedByStake) {
  Campaign campaign(std::move(consortium), terminals, stations, config, 7);
  const EpochReport report = campaign.run_epoch(context);
  EXPECT_GT(report.emission_minted, 0.0);
  // Party A contributed 8 of 12 satellites -> 2/3 stake. PoC rewards and
  // settlement also move balances, so check the emission part dominates:
  // A's balance grows at least as much as B's.
  EXPECT_GE(report.balances[party_a], report.balances[party_b]);
}

TEST_F(CampaignFixture, ServiceHappensAndIsAccounted) {
  Campaign campaign(std::move(consortium), terminals, stations, config, 7);
  const EpochReport report = campaign.run_epoch(context);
  ASSERT_EQ(report.usage.size(), 2u);
  EXPECT_GT(report.total_served_seconds, 0.0);
  EXPECT_NEAR(report.total_served_seconds + report.total_unserved_seconds,
              2.0 * (config.epoch_duration_s + config.step_s), 2.0 * config.step_s);
  EXPECT_GT(report.service_fairness, 0.0);
  EXPECT_LE(report.service_fairness, 1.0);
  EXPECT_EQ(report.active_satellites, 12u);
}

TEST_F(CampaignFixture, PocChallengesRunAndMostlyReject) {
  // Random (satellite, time) pairs rarely coincide with an overhead pass,
  // so most receipts must be rejected by geometry — and all are counted.
  Campaign campaign(std::move(consortium), terminals, stations, config, 7);
  const EpochReport report = campaign.run_epoch(context);
  EXPECT_EQ(report.poc_valid + report.poc_rejected,
            terminals.size() * config.poc_challenges_per_party_per_epoch);
  EXPECT_GE(report.poc_rejected, report.poc_valid);
}

TEST_F(CampaignFixture, WithdrawalShrinksNextEpoch) {
  Campaign campaign(std::move(consortium), terminals, stations, config, 7);
  const EpochReport before = campaign.run_epoch(context);
  EXPECT_EQ(campaign.withdraw_party(party_b), 4u);
  const EpochReport after = campaign.run_epoch(context);
  EXPECT_EQ(after.active_satellites, 8u);
  EXPECT_LT(after.active_satellites, before.active_satellites);
  // Party B's terminal now rides spare capacity only; the network still
  // serves someone across the following day (no total shutdown). A single
  // 6-hour epoch can legitimately contain no pass, so accumulate a day.
  double served = after.total_served_seconds;
  for (int e = 0; e < 3; ++e) served += campaign.run_epoch(context).total_served_seconds;
  EXPECT_GT(served, 0.0);
}

TEST_F(CampaignFixture, EmissionDecaysAcrossHalvings) {
  config.emission.epochs_per_halving = 2;
  Campaign campaign(std::move(consortium), terminals, stations, config, 7);
  const double e0 = campaign.run_epoch(context).emission_minted;
  (void)campaign.run_epoch(context);
  const double e2 = campaign.run_epoch(context).emission_minted;
  EXPECT_DOUBLE_EQ(e2, e0 * config.emission.decay);
}

TEST_F(CampaignFixture, InvalidOwnersRejected) {
  terminals[0].owner_party = 9;
  EXPECT_THROW(Campaign(std::move(consortium), terminals, stations, config, 7),
               std::invalid_argument);
}

TEST(Campaign, RequiresParties) {
  Consortium empty;
  EXPECT_THROW(Campaign(std::move(empty), {}, {}, CampaignConfig{}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
