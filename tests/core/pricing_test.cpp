#include "core/pricing.hpp"

#include <gtest/gtest.h>

namespace mpleo::core {
namespace {

TEST(StaticPricing, LinearInUsage) {
  StaticPricing p;
  p.tokens_per_gb = 8.0;
  p.tokens_per_minute = 0.5;
  EXPECT_DOUBLE_EQ(p.price_for(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.price_for(1e9, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(p.price_for(0.0, 120.0), 1.0);
  EXPECT_DOUBLE_EQ(p.price_for(2e9, 60.0), 16.5);
  // Additivity.
  EXPECT_DOUBLE_EQ(p.price_for(1e9, 30.0) + p.price_for(1e9, 30.0), p.price_for(2e9, 60.0));
}

DynamicPricing::Config default_config() {
  DynamicPricing::Config cfg;
  cfg.base.tokens_per_gb = 10.0;
  cfg.base.tokens_per_minute = 0.0;
  cfg.target_utilization = 0.6;
  cfg.sensitivity = 2.0;
  cfg.min_multiplier = 0.25;
  cfg.max_multiplier = 4.0;
  return cfg;
}

TEST(DynamicPricing, UnityAtTargetUtilization) {
  const DynamicPricing pricing(default_config());
  EXPECT_DOUBLE_EQ(pricing.multiplier(0.6), 1.0);
}

TEST(DynamicPricing, ScarcityRaisesPrice) {
  const DynamicPricing pricing(default_config());
  EXPECT_GT(pricing.multiplier(0.9), 1.0);
  EXPECT_NEAR(pricing.multiplier(0.9), 1.6, 1e-12);
}

TEST(DynamicPricing, SlackLowersPrice) {
  const DynamicPricing pricing(default_config());
  EXPECT_LT(pricing.multiplier(0.2), 1.0);
  EXPECT_NEAR(pricing.multiplier(0.2), 0.25, 0.06);  // clamped near the floor
}

TEST(DynamicPricing, ClampsToBounds) {
  const DynamicPricing pricing(default_config());
  EXPECT_DOUBLE_EQ(pricing.multiplier(0.0), 0.25);
  EXPECT_DOUBLE_EQ(pricing.multiplier(5.0), 4.0);
}

TEST(DynamicPricing, MultiplierIsMonotone) {
  const DynamicPricing pricing(default_config());
  double previous = 0.0;
  for (double u = 0.0; u <= 1.0; u += 0.05) {
    const double m = pricing.multiplier(u);
    EXPECT_GE(m, previous);
    previous = m;
  }
}

TEST(DynamicPricing, PriceForScalesBase) {
  const DynamicPricing pricing(default_config());
  // At target utilization, identical to the static price.
  EXPECT_DOUBLE_EQ(pricing.price_for(1e9, 0.0, 0.6), 10.0);
  EXPECT_DOUBLE_EQ(pricing.price_for(1e9, 0.0, 0.9), 16.0);
}

}  // namespace
}  // namespace mpleo::core
