#include "core/sla.hpp"

#include <gtest/gtest.h>

namespace mpleo::core {
namespace {

cov::CoverageStats stats_of(double covered_fraction, double max_gap_s) {
  cov::CoverageStats stats;
  stats.covered_fraction = covered_fraction;
  stats.max_gap_seconds = max_gap_s;
  return stats;
}

TEST(Sla, CompliantServicePassesAllClauses) {
  SlaTerms terms;
  terms.min_coverage_fraction = 0.95;
  terms.max_gap_seconds = 3600.0;
  const SlaReport report = evaluate_sla(terms, stats_of(0.97, 1200.0));
  EXPECT_TRUE(report.compliant);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.total_penalty, 0.0);
}

TEST(Sla, CoverageShortfallViolates) {
  SlaTerms terms;
  terms.min_coverage_fraction = 0.95;
  terms.penalty_per_violation = 25.0;
  const SlaReport report = evaluate_sla(terms, stats_of(0.90, 0.0));
  EXPECT_FALSE(report.compliant);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].clause, SlaClause::kCoverageFraction);
  EXPECT_DOUBLE_EQ(report.violations[0].required, 0.95);
  EXPECT_DOUBLE_EQ(report.violations[0].delivered, 0.90);
  EXPECT_DOUBLE_EQ(report.total_penalty, 25.0);
}

TEST(Sla, GapAndCoverageStackPenalties) {
  SlaTerms terms;
  terms.min_coverage_fraction = 0.99;
  terms.max_gap_seconds = 600.0;
  terms.penalty_per_violation = 10.0;
  const SlaReport report = evaluate_sla(terms, stats_of(0.5, 7200.0));
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_DOUBLE_EQ(report.total_penalty, 20.0);
}

TEST(Sla, ServedFractionClause) {
  SlaTerms terms;
  terms.min_coverage_fraction = 0.0;
  terms.max_gap_seconds = 1e9;
  terms.min_served_fraction = 0.5;
  net::PartyUsage usage;
  usage.own_link_seconds = 1000.0;
  usage.spare_used_seconds = 2000.0;
  // 3000 served of 10000 -> 30% < 50%.
  const SlaReport failing = evaluate_sla(terms, stats_of(1.0, 0.0), usage, 10000.0);
  ASSERT_EQ(failing.violations.size(), 1u);
  EXPECT_EQ(failing.violations[0].clause, SlaClause::kServedFraction);
  EXPECT_NEAR(failing.violations[0].delivered, 0.3, 1e-12);
  // 3000 of 5000 -> 60% passes.
  const SlaReport passing = evaluate_sla(terms, stats_of(1.0, 0.0), usage, 5000.0);
  EXPECT_TRUE(passing.compliant);
}

TEST(Sla, PenaltySettlesOnLedger) {
  Ledger ledger;
  ledger.mint(100.0);
  const AccountId provider = ledger.open_account("provider");
  const AccountId customer = ledger.open_account("customer");
  ASSERT_TRUE(ledger.reward(provider, 100.0));

  SlaTerms terms;
  terms.penalty_per_violation = 30.0;
  const SlaReport report = evaluate_sla(terms, stats_of(0.0, 1e9));
  ASSERT_FALSE(report.compliant);
  EXPECT_TRUE(settle_sla_penalty(report, ledger, provider, customer));
  EXPECT_DOUBLE_EQ(ledger.balance(customer), report.total_penalty);
  EXPECT_NEAR(ledger.sum_of_balances(), ledger.total_minted(), 1e-9);
}

TEST(Sla, InsolventProviderReportsFailure) {
  Ledger ledger;
  const AccountId provider = ledger.open_account("broke");
  const AccountId customer = ledger.open_account("customer");
  SlaTerms terms;
  const SlaReport report = evaluate_sla(terms, stats_of(0.0, 1e9));
  EXPECT_FALSE(settle_sla_penalty(report, ledger, provider, customer));
  EXPECT_DOUBLE_EQ(ledger.balance(customer), 0.0);
}

TEST(Sla, CompliantReportSettlesAsNoop) {
  Ledger ledger;
  const AccountId a = ledger.open_account("a");
  const AccountId b = ledger.open_account("b");
  SlaReport report;  // compliant, zero penalty
  EXPECT_TRUE(settle_sla_penalty(report, ledger, a, b));
}

TEST(Sla, ClauseNames) {
  EXPECT_STREQ(to_string(SlaClause::kCoverageFraction), "coverage-fraction");
  EXPECT_STREQ(to_string(SlaClause::kMaxGap), "max-gap");
  EXPECT_STREQ(to_string(SlaClause::kServedFraction), "served-fraction");
}

}  // namespace
}  // namespace mpleo::core
