#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mpleo::core {
namespace {

TEST(CostModel, CapexArithmetic) {
  CostModel model;
  model.satellite_unit_cost = 0.5e6;
  model.launch_cost_per_satellite = 1.0e6;
  model.ground_station_capex = 0.5e6;
  EXPECT_DOUBLE_EQ(model.constellation_capex(100, 4), 100 * 1.5e6 + 4 * 0.5e6);
  EXPECT_DOUBLE_EQ(model.constellation_capex(0, 0), 0.0);
}

TEST(CostModel, LifetimeAddsOpex) {
  CostModel model;
  model.annual_opex_per_satellite = 0.1e6;
  model.satellite_lifetime_years = 5.0;
  const double capex = model.constellation_capex(10, 1);
  EXPECT_DOUBLE_EQ(model.lifetime_cost(10, 1), capex + 10 * 0.1e6 * 5.0);
}

TEST(CostModel, MegaConstellationLandsInPaperRange) {
  // The paper quotes $10-30B for a fully operational LEO network. Price a
  // 12000-satellite build at somewhat higher per-unit costs (early-production
  // economics) plus 100 gateways.
  CostModel model;
  model.satellite_unit_cost = 1.0e6;
  model.launch_cost_per_satellite = 1.2e6;
  const double capex = model.constellation_capex(12000, 100);
  EXPECT_GT(capex, 10e9);
  EXPECT_LT(capex, 30e9);
}

TEST(CostModel, CostPerCoveredHour) {
  CostModel model;
  const double full = model.cost_per_covered_hour(100, 2, 1.0);
  const double half = model.cost_per_covered_hour(100, 2, 0.5);
  EXPECT_NEAR(half, 2.0 * full, 1e-6);
  EXPECT_THROW((void)model.cost_per_covered_hour(100, 2, 0.0), std::invalid_argument);
  EXPECT_THROW((void)model.cost_per_covered_hour(100, 2, 1.5), std::invalid_argument);
}

TEST(CostModel, SharingAdvantageRatio) {
  // §2's headline: 50 contributed satellites buy the coverage of a 1000-sat
  // sovereign constellation — a ~20x cost advantage.
  CostModel model;
  const SharingAdvantage advantage = sharing_advantage(model, 1000, 50, 2);
  EXPECT_GT(advantage.cost_ratio, 15.0);
  EXPECT_LT(advantage.cost_ratio, 25.0);
  EXPECT_GT(advantage.sovereign_lifetime_cost, advantage.shared_lifetime_cost);
}

TEST(CostModel, ZeroContributionYieldsZeroRatio) {
  CostModel model;
  model.ground_station_capex = 0.0;
  const SharingAdvantage advantage = sharing_advantage(model, 100, 0, 0);
  EXPECT_EQ(advantage.cost_ratio, 0.0);
}

}  // namespace
}  // namespace mpleo::core
