// core::chaos_sweep: the centralized-vs-decentralized replay harness behind
// bench/chaos_sweep. Pins the acceptance criteria directly: the empty-book
// identity flag holds, spare-grant hysteresis strictly reduces flap counts
// on the storm profile, and under a party-withdrawal shock the decentralized
// consortium's worst-window availability beats the centralized operator's
// (which collapses to exactly zero while its whole fleet is gone).
#include "core/chaos_sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/run_context.hpp"

namespace mpleo::core {
namespace {

ChaosSweepConfig quick_config() {
  ChaosSweepConfig config;
  config.duration_s = 2.0 * 3600.0;  // the bench's --quick window
  config.slo_window_steps = 15;
  config.profiles = {fault::EventProfile::kStorm, fault::EventProfile::kWithdrawal};
  config.policy.enabled = true;
  config.policy.spare_hysteresis_margin = 0.15;
  config.policy.backoff_initial_steps = 2;
  config.policy.backoff_multiplier = 2.0;
  config.policy.backoff_max_steps = 16;
  config.policy.backoff_clean_horizon_steps = 8;
  return config;
}

TEST(ChaosSweep, ReplaysProfilesWithIdentityAndHysteresisGates) {
  const ChaosSweepConfig config = quick_config();
  sim::RunContext context;
  const ChaosSweepResult result = chaos_sweep(config, context);

  // Cells in profile order, decentralized before centralized.
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].profile, fault::EventProfile::kStorm);
  EXPECT_TRUE(result.cells[0].decentralized);
  EXPECT_EQ(result.cells[1].profile, fault::EventProfile::kStorm);
  EXPECT_FALSE(result.cells[1].decentralized);
  EXPECT_EQ(result.cells[2].profile, fault::EventProfile::kWithdrawal);
  for (const ChaosCell& cell : result.cells) {
    EXPECT_EQ(cell.slo.window_steps, config.slo_window_steps);
    EXPECT_TRUE(std::isfinite(cell.slo.availability));
    EXPECT_GE(cell.slo.availability, 0.0);
    EXPECT_LE(cell.slo.availability, 1.0);
    EXPECT_TRUE(std::isfinite(cell.slo.worst_window_availability));
    EXPECT_TRUE(std::isfinite(cell.mean_recovery_s));
    EXPECT_TRUE(std::isfinite(cell.max_recovery_s));
  }
  // The storm actually bites: the decentralized storm cell loses service
  // somewhere (otherwise every comparison below is vacuous).
  EXPECT_LT(result.cells[0].slo.availability, 1.0);

  // Acceptance: empty book + disabled policy replays bit-identically.
  EXPECT_TRUE(result.empty_book_identity);

  // Acceptance: hysteresis strictly reduces grant flapping on the storm.
  EXPECT_LT(result.storm_flaps_hysteresis_on, result.storm_flaps_hysteresis_off);
  EXPECT_GT(result.storm_flaps_hysteresis_off, 0u);

  // Acceptance: a party-withdrawal shock is a total loss for the centralized
  // operator (worst window exactly zero while its whole fleet is gone) but
  // only a quarter-fleet loss for the consortium.
  // (The comparison is the worst window, not mean availability: a single
  // party owning every station clears more total traffic in calm stretches,
  // but its floor under the shock is a hard zero.)
  const ChaosCell& dec = result.cells[2];
  const ChaosCell& cen = result.cells[3];
  EXPECT_DOUBLE_EQ(cen.slo.worst_window_availability, 0.0);
  EXPECT_GT(dec.slo.worst_window_availability, 0.0);

  EXPECT_EQ(context.metrics().counter_value("chaos_sweep.cells"), 4u);
  EXPECT_GT(context.metrics().counter_value("chaos_sweep.events"), 0u);
}

TEST(ChaosSweep, ValidatesConfig) {
  sim::RunContext context;
  ChaosSweepConfig bad = quick_config();
  bad.profiles = {fault::EventProfile::kOff};
  EXPECT_THROW((void)chaos_sweep(bad, context), std::invalid_argument);

  bad = quick_config();
  bad.slo_window_steps = 0;
  EXPECT_THROW((void)chaos_sweep(bad, context), std::invalid_argument);

  bad = quick_config();
  bad.duration_s = -1.0;
  EXPECT_THROW((void)chaos_sweep(bad, context), std::invalid_argument);

  bad = quick_config();
  bad.policy.backoff_multiplier = 0.0;  // policy issues merge into the report
  EXPECT_THROW((void)chaos_sweep(bad, context), std::invalid_argument);

  bad = quick_config();
  bad.profiles.clear();
  EXPECT_THROW((void)chaos_sweep(bad, context), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::core
