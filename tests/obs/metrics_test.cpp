// MetricsRegistry contracts: handle registration, null-safety, shard-merged
// snapshots, JSON rendering, reset, and cross-thread accumulation.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace mpleo::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  const Counter c = registry.counter("events");
  c.add();
  c.add(41);
  EXPECT_EQ(registry.counter_value("events"), 42u);
}

TEST(Metrics, SameNameSameMetric) {
  MetricsRegistry registry;
  registry.counter("hits").add(1);
  registry.counter("hits").add(2);
  EXPECT_EQ(registry.counter_value("hits"), 3u);
}

TEST(Metrics, UnregisteredCounterReadsZero) {
  const MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("never"), 0u);
}

TEST(Metrics, NullHandlesIgnoreUpdates) {
  const Counter counter;
  const Gauge gauge;
  const Histogram histogram;
  EXPECT_FALSE(static_cast<bool>(counter));
  EXPECT_FALSE(static_cast<bool>(gauge));
  EXPECT_FALSE(static_cast<bool>(histogram));
  counter.add(7);       // must not crash
  gauge.set(1.0);
  histogram.observe(2.0);
  ScopedTimer timer{Histogram{}};
  EXPECT_GE(timer.stop(), 0.0);
}

TEST(Metrics, CrossKindNameCollisionThrows) {
  MetricsRegistry registry;
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("x"), std::invalid_argument);
}

TEST(Metrics, GaugeLastWriteWins) {
  MetricsRegistry registry;
  const Gauge g = registry.gauge("threads");
  g.set(4.0);
  g.set(8.0);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "threads");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 8.0);
}

TEST(Metrics, HistogramBucketsUseLessOrEqualSemantics) {
  MetricsRegistry registry;
  const Histogram h = registry.histogram("sizes", {1.0, 10.0, 100.0});
  h.observe(1.0);    // == bound -> first bucket (le semantics)
  h.observe(5.0);    // (1, 10]
  h.observe(10.0);   // == bound -> second bucket
  h.observe(1000.0); // past every bound -> +inf overflow
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hist = snap.histograms[0].second;
  EXPECT_EQ(hist.count, 4u);
  EXPECT_DOUBLE_EQ(hist.sum, 1016.0);
  EXPECT_DOUBLE_EQ(hist.min, 1.0);
  EXPECT_DOUBLE_EQ(hist.max, 1000.0);
  ASSERT_EQ(hist.upper_bounds.size(), 3u);
  ASSERT_EQ(hist.bucket_counts.size(), 4u);
  EXPECT_EQ(hist.bucket_counts[0], 1u);
  EXPECT_EQ(hist.bucket_counts[1], 2u);
  EXPECT_EQ(hist.bucket_counts[2], 0u);
  EXPECT_EQ(hist.bucket_counts[3], 1u);
}

TEST(Metrics, EmptyHistogramSnapshot) {
  MetricsRegistry registry;
  (void)registry.histogram("idle");
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hist = snap.histograms[0].second;
  EXPECT_EQ(hist.count, 0u);
  EXPECT_DOUBLE_EQ(hist.min, 0.0);
  EXPECT_DOUBLE_EQ(hist.max, 0.0);
  std::uint64_t total = 0;
  for (const std::uint64_t b : hist.bucket_counts) total += b;
  EXPECT_EQ(total, 0u);
}

TEST(Metrics, ScopedTimerRecordsOnce) {
  MetricsRegistry registry;
  {
    ScopedTimer timer(registry.histogram("lap_seconds"));
    const double elapsed = timer.stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_EQ(timer.stop(), 0.0);  // second stop is a no-op
  }  // destructor after stop() must not double-record
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(Metrics, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("zebra").add(1);
  registry.counter("aardvark").add(1);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "aardvark");
  EXPECT_EQ(snap.counters[1].first, "zebra");
}

TEST(Metrics, EmptyAndReset) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.counter("n").add(5);
  registry.gauge("g").set(3.0);
  EXPECT_FALSE(registry.empty());
  registry.reset();
  EXPECT_FALSE(registry.empty());  // names stay registered
  EXPECT_EQ(registry.counter_value("n"), 0u);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
}

TEST(Metrics, ToJsonEmptyRegistry) {
  const MetricsRegistry registry;
  EXPECT_EQ(registry.to_json(),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}");
}

TEST(Metrics, ToJsonRendersEveryKind) {
  MetricsRegistry registry;
  registry.counter("sched.steps").add(1440);
  registry.gauge("sched.threads").set(4.0);
  registry.histogram("occupancy", {2.0}).observe(1.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"sched.steps\": 1440"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sched.threads\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\": 2, \"count\": 1}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\": \"inf\", \"count\": 0}"), std::string::npos) << json;
}

TEST(Metrics, ToJsonBaseIndentPrefixesContinuationLines) {
  MetricsRegistry registry;
  registry.counter("a").add(1);
  const std::string json = registry.to_json(4);
  EXPECT_EQ(json.rfind("{", 0), 0u);  // first line unindented
  EXPECT_NE(json.find("\n      \"counters\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\n    }"), std::string::npos) << json;
}

TEST(Metrics, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(Metrics, DefaultBoundsAreStrictlyIncreasing) {
  for (const std::vector<double>& bounds :
       {MetricsRegistry::default_seconds_bounds(), MetricsRegistry::default_count_bounds()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(Metrics, ConcurrentAddsMergeExactly) {
  MetricsRegistry registry;
  const Counter c = registry.counter("hits");
  const Histogram h = registry.histogram("values", {10.0, 100.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(static_cast<double>((t + i) % 128));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter_value("hits"), kThreads * kPerThread);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hist = snap.histograms[0].second;
  EXPECT_EQ(hist.count, kThreads * kPerThread);
  std::uint64_t total = 0;
  for (const std::uint64_t b : hist.bucket_counts) total += b;
  EXPECT_EQ(total, hist.count);
}

TEST(Metrics, PoolWorkersShareOneRegistry) {
  // parallel_for returning is the quiescence point the snapshot contract
  // requires; the merged counter must be exact for any worker count.
  MetricsRegistry registry;
  const Counter c = registry.counter("iterations");
  util::ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::size_t) { c.add(1); });
  EXPECT_EQ(registry.counter_value("iterations"), 1000u);
}

}  // namespace
}  // namespace mpleo::obs
