// The Doppler-track fit stage of the receipt audit against real proof-of-
// coverage geometry: honest tracks (true curve + measurement noise) always
// credit, fabricated tracks at every gated sophistication level verdict
// kRfImplausible before touching the ledger, and the disabled stage leaves
// the auditor bit-identical to the pre-RF path.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "adversary/audit.hpp"
#include "core/proof_of_coverage.hpp"
#include "coverage/doppler.hpp"
#include "obs/metrics.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/propagator.hpp"
#include "rf/doppler.hpp"
#include "util/units.hpp"

namespace mpleo::adversary {
namespace {

using core::CoverageReceipt;
using core::ProofOfCoverage;
using core::ReceiptVerdict;

// Same controlled geometry as the audit tests: an equatorial satellite with
// one verifier at its sub-satellite point and one it can never see.
struct DopplerAuditFixture {
  ProofOfCoverage poc{ProofOfCoverage::Config{}};
  constellation::Satellite satellite;
  std::uint64_t key = 0;
  std::uint32_t overhead_verifier = 0;
  std::uint32_t far_verifier = 0;
  orbit::TimePoint epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  core::Ledger ledger;
  core::AccountId owner = 0;
  AuditConfig audit;
  util::Xoshiro256PlusPlus rng{20241118};

  DopplerAuditFixture() {
    satellite.id = 7;
    satellite.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);
    satellite.epoch = epoch;
    key = poc.register_satellite(satellite, /*consortium_seed=*/1234);
    const orbit::KeplerianPropagator prop(satellite.elements, epoch);
    const auto ecef = orbit::eci_to_ecef(prop.state_at(epoch).position, epoch);
    const orbit::Geodetic below = orbit::ecef_to_geodetic(ecef);
    overhead_verifier =
        poc.register_verifier({below.latitude_rad, below.longitude_rad, 0.0});
    far_verifier = poc.register_verifier(
        orbit::Geodetic::from_degrees(-60.0, below.longitude_rad > 0 ? -120.0 : 120.0));
    ledger.mint(100.0);
    owner = ledger.open_account("party-0");
    audit.doppler.enabled = true;
  }

  [[nodiscard]] ReceiptAuditor make_auditor() {
    ReceiptAuditor auditor(audit, /*party_count=*/2);
    auditor.set_audit_grid(orbit::TimeGrid::over_duration(epoch, 3600.0, 60.0));
    return auditor;
  }

  [[nodiscard]] CoverageReceipt receipt(std::uint32_t verifier,
                                        std::uint64_t nonce) const {
    return ProofOfCoverage::answer_challenge(satellite.id, key, verifier, epoch, nonce);
  }

  // The ephemeris-predicted curve for a claim, in observation form.
  [[nodiscard]] rf::DopplerObservation predicted_track(
      const CoverageReceipt& claim) const {
    rf::DopplerObservation obs;
    obs.carrier_hz = audit.doppler.carrier_hz;
    for (const ProofOfCoverage::DopplerPoint& point : poc.doppler_track(
             claim.satellite, claim.verifier, claim.time, audit.doppler.carrier_hz,
             audit.doppler.sample_offsets_s())) {
      obs.offsets_s.push_back(point.offset_s);
      obs.doppler_hz.push_back(point.doppler_hz);
    }
    return obs;
  }

  // What an honest verifier measures: the true curve plus receiver noise.
  [[nodiscard]] rf::DopplerObservation honest_track(const CoverageReceipt& claim) {
    rf::DopplerObservation obs = predicted_track(claim);
    obs.doppler_hz = rf::observe_doppler_track(
        obs.doppler_hz, audit.doppler.measurement_noise_hz, rng);
    return obs;
  }

  // What a `level` forger fabricates for the same claim.
  [[nodiscard]] rf::DopplerObservation forged_track(const CoverageReceipt& claim,
                                                    rf::ForgeryLevel level) {
    rf::DopplerObservation obs = predicted_track(claim);
    const double altitude_m =
        satellite.elements.semi_major_axis_m - util::kEarthMeanRadiusM;
    obs.doppler_hz = rf::forge_doppler_track(
        level, obs.doppler_hz,
        cov::max_doppler_bound_hz(altitude_m, audit.doppler.carrier_hz), rng);
    return obs;
  }
};

TEST(DopplerAudit, HonestTrackCreditsAndCountsAsChecked) {
  DopplerAuditFixture fx;
  ReceiptAuditor auditor = fx.make_auditor();
  const CoverageReceipt claim = fx.receipt(fx.overhead_verifier, 1);
  const rf::DopplerObservation track = fx.honest_track(claim);
  ASSERT_GE(track.offsets_s.size(), fx.audit.doppler.min_track_samples)
      << "fixture pass too short to be conclusive";
  EXPECT_EQ(auditor.audit_and_credit(fx.poc, claim, 0, fx.ledger, fx.owner,
                                     ReceiptProvenance::kChallenge, &track),
            ReceiptVerdict::kValid);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.owner), fx.poc.config().reward_per_receipt);
  const PartyAuditStats& stats = auditor.stats(0);
  EXPECT_EQ(stats.doppler_checked, 1u);
  EXPECT_EQ(stats.rf_doppler_rejections, 0u);
  EXPECT_EQ(stats.fraud_total(), 0u);
}

TEST(DopplerAudit, EveryGatedForgeryLevelIsRejectedBeforeTheLedger) {
  DopplerAuditFixture fx;
  ReceiptAuditor auditor = fx.make_auditor();
  std::uint64_t nonce = 10;
  for (const rf::ForgeryLevel level :
       {rf::ForgeryLevel::kFlatTone, rf::ForgeryLevel::kLinearRamp,
        rf::ForgeryLevel::kTimeMirrored}) {
    const CoverageReceipt claim = fx.receipt(fx.overhead_verifier, nonce++);
    const rf::DopplerObservation track = fx.forged_track(claim, level);
    EXPECT_EQ(auditor.audit_and_credit(fx.poc, claim, 0, fx.ledger, fx.owner,
                                       ReceiptProvenance::kSubmission, &track),
              ReceiptVerdict::kRfImplausible)
        << rf::to_string(level);
  }
  // None of the forgeries earned a token, and each is fraud evidence.
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.owner), 0.0);
  EXPECT_EQ(auditor.stats(0).rf_doppler_rejections, 3u);
  EXPECT_EQ(auditor.stats(0).fraud_total(), 3u);
}

TEST(DopplerAudit, EphemerisExactForgeryIsTheDocumentedBlindSpot) {
  DopplerAuditFixture fx;
  ReceiptAuditor auditor = fx.make_auditor();
  const CoverageReceipt claim = fx.receipt(fx.overhead_verifier, 20);
  const rf::DopplerObservation track =
      fx.forged_track(claim, rf::ForgeryLevel::kEphemerisExact);
  // A forger that ran the true ephemeris passes by construction.
  EXPECT_EQ(auditor.audit_and_credit(fx.poc, claim, 0, fx.ledger, fx.owner,
                                     ReceiptProvenance::kSubmission, &track),
            ReceiptVerdict::kValid);
}

TEST(DopplerAudit, MissingTrackOnAMeasurablePassIsImplausible) {
  DopplerAuditFixture fx;
  ReceiptAuditor auditor = fx.make_auditor();
  const CoverageReceipt claim = fx.receipt(fx.overhead_verifier, 30);
  EXPECT_EQ(auditor.audit_and_credit(fx.poc, claim, 0, fx.ledger, fx.owner,
                                     ReceiptProvenance::kSubmission, nullptr),
            ReceiptVerdict::kRfImplausible);
  // A truncated track (fewer points than min_track_samples) is just as bad.
  rf::DopplerObservation stub = fx.honest_track(fx.receipt(fx.overhead_verifier, 31));
  stub.offsets_s.resize(2);
  stub.doppler_hz.resize(2);
  EXPECT_EQ(auditor.audit_and_credit(fx.poc, fx.receipt(fx.overhead_verifier, 31), 0,
                                     fx.ledger, fx.owner,
                                     ReceiptProvenance::kSubmission, &stub),
            ReceiptVerdict::kRfImplausible);
  EXPECT_EQ(auditor.stats(0).rf_doppler_rejections, 2u);
}

TEST(DopplerAudit, ShortPredictedWindowIsInconclusiveAndAccepts) {
  DopplerAuditFixture fx;
  // Spacing so wide that at most a couple of offsets land inside the pass:
  // the predicted track cannot pin a curve shape, so the claim falls through
  // to the geometric verdict even with no measured track at all. This is the
  // zero-honest-flags guarantee for edge-of-pass contacts.
  fx.audit.doppler.sample_spacing_s = 600.0;
  ReceiptAuditor auditor = fx.make_auditor();
  const CoverageReceipt claim = fx.receipt(fx.overhead_verifier, 40);
  ASSERT_LT(fx.predicted_track(claim).offsets_s.size(),
            fx.audit.doppler.min_track_samples)
      << "fixture pass unexpectedly long";
  EXPECT_EQ(auditor.audit_and_credit(fx.poc, claim, 0, fx.ledger, fx.owner,
                                     ReceiptProvenance::kSubmission, nullptr),
            ReceiptVerdict::kValid);
  EXPECT_EQ(auditor.stats(0).doppler_checked, 0u);
  EXPECT_EQ(auditor.stats(0).fraud_total(), 0u);
}

TEST(DopplerAudit, GeometryMissStillWinsOverTheDopplerStage) {
  // The Doppler stage only runs on geometrically valid claims: a receipt for
  // a verifier the satellite can never see stays kNotOverhead.
  DopplerAuditFixture fx;
  ReceiptAuditor auditor = fx.make_auditor();
  const CoverageReceipt lie = fx.receipt(fx.far_verifier, 50);
  EXPECT_EQ(auditor.audit_and_credit(fx.poc, lie, 0, fx.ledger, fx.owner,
                                     ReceiptProvenance::kSubmission, nullptr),
            ReceiptVerdict::kNotOverhead);
  EXPECT_EQ(auditor.stats(0).doppler_checked, 0u);
}

TEST(DopplerAudit, DisabledStageIgnoresTracksEntirely) {
  DopplerAuditFixture fx;
  fx.audit.doppler.enabled = false;
  ReceiptAuditor auditor = fx.make_auditor();
  const CoverageReceipt claim = fx.receipt(fx.overhead_verifier, 60);
  // Even a wildly wrong track changes nothing when the stage is off — the
  // audit path is bit-identical to the pre-RF auditor.
  const rf::DopplerObservation bogus =
      fx.forged_track(claim, rf::ForgeryLevel::kFlatTone);
  EXPECT_EQ(auditor.audit_and_credit(fx.poc, claim, 0, fx.ledger, fx.owner,
                                     ReceiptProvenance::kSubmission, &bogus),
            ReceiptVerdict::kValid);
  EXPECT_EQ(auditor.stats(0).doppler_checked, 0u);
  EXPECT_EQ(auditor.stats(0).rf_doppler_rejections, 0u);
}

TEST(DopplerAudit, RejectionsFeedMetricsAndFraudCounters) {
  obs::MetricsRegistry metrics;
  DopplerAuditFixture fx;
  ReceiptAuditor auditor = fx.make_auditor();
  auditor.set_metrics(&metrics);
  const CoverageReceipt claim = fx.receipt(fx.overhead_verifier, 70);
  const rf::DopplerObservation track =
      fx.forged_track(claim, rf::ForgeryLevel::kFlatTone);
  (void)auditor.audit_and_credit(fx.poc, claim, 0, fx.ledger, fx.owner,
                                 ReceiptProvenance::kSubmission, &track);
  EXPECT_EQ(metrics.counter_value("audit.rf_doppler_rejections"), 1u);
  EXPECT_EQ(metrics.counter_value("audit.fraud_detected"), 1u);
}

TEST(DopplerAudit, InterferenceViolationsCountAsFraudEvidence) {
  DopplerAuditFixture fx;
  ReceiptAuditor auditor = fx.make_auditor();
  auditor.record_interference_violations(/*party=*/1, /*events=*/3,
                                         /*total_inr=*/0.5);
  EXPECT_EQ(auditor.stats(1).rf_interference_violations, 3u);
  EXPECT_EQ(auditor.stats(1).fraud_total(), 3u);
  EXPECT_EQ(auditor.totals().rf_interference_violations, 3u);
}

TEST(DopplerAudit, ConstructorRejectsInvalidDopplerConfig) {
  AuditConfig bad;
  bad.doppler.enabled = true;
  bad.doppler.rms_tolerance_hz = -1.0;
  bad.doppler.carrier_hz = 0.0;
  try {
    ReceiptAuditor auditor(bad, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Every invalid field is named, TleFieldIssue-style.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("doppler.rms_tolerance_hz"), std::string::npos) << msg;
    EXPECT_NE(msg.find("doppler.carrier_hz"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace mpleo::adversary
