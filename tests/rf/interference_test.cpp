#include "rf/interference.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rf/spectrum_plan.hpp"

namespace mpleo::rf {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

bool has_issue(const std::vector<RfConfigIssue>& issues, const std::string& field) {
  return std::any_of(issues.begin(), issues.end(),
                     [&](const RfConfigIssue& i) { return i.field == field; });
}

TEST(SpectrumConfig, DefaultsValidate) {
  EXPECT_TRUE(SpectrumConfig{}.validate().empty());
}

TEST(SpectrumConfig, RejectsEmptyBandPlan) {
  SpectrumConfig cfg;
  cfg.band.downlink_hi_hz = cfg.band.downlink_lo_hz;  // zero-width segment
  EXPECT_TRUE(has_issue(cfg.validate(), "spectrum.band.downlink_hi_hz"));

  cfg = SpectrumConfig{};
  cfg.band.uplink_hi_hz = cfg.band.uplink_lo_hz - 1.0e6;  // inverted
  EXPECT_TRUE(has_issue(cfg.validate(), "spectrum.band.uplink_hi_hz"));
}

TEST(SpectrumConfig, RejectsEdgesOutsideAllocations) {
  SpectrumConfig cfg;
  cfg.band.downlink_lo_hz = 0.2e9;  // below the 1 GHz floor
  EXPECT_TRUE(has_issue(cfg.validate(), "spectrum.band.downlink_lo_hz"));

  cfg = SpectrumConfig{};
  cfg.band.uplink_hi_hz = 250.0e9;  // above the 100 GHz ceiling
  EXPECT_TRUE(has_issue(cfg.validate(), "spectrum.band.uplink_hi_hz"));

  cfg = SpectrumConfig{};
  cfg.band.downlink_lo_hz = kNan;
  EXPECT_TRUE(has_issue(cfg.validate(), "spectrum.band.downlink_lo_hz"));
}

TEST(SpectrumConfig, RejectsBadKnobs) {
  SpectrumConfig cfg;
  cfg.channel_bandwidth_hz = 0.0;
  EXPECT_TRUE(has_issue(cfg.validate(), "spectrum.channel_bandwidth_hz"));

  cfg = SpectrumConfig{};
  cfg.off_axis_discrimination_db = -3.0;
  EXPECT_TRUE(has_issue(cfg.validate(), "spectrum.off_axis_discrimination_db"));

  cfg = SpectrumConfig{};
  cfg.jammer_power_boost_db = kNan;
  EXPECT_TRUE(has_issue(cfg.validate(), "spectrum.jammer_power_boost_db"));
}

TEST(SpectrumPlan, EqualPartitionIsDisjointAndInsideTheBand) {
  const SpectrumConfig cfg;
  const SpectrumPlan plan = SpectrumPlan::equal_partition(cfg, 8);
  ASSERT_EQ(plan.party_count(), 8u);
  for (std::uint32_t p = 0; p < 8; ++p) {
    const PartyChannel& ch = plan.channel(p);
    EXPECT_GT(ch.bandwidth_hz, 0.0);
    EXPECT_LE(ch.bandwidth_hz, cfg.channel_bandwidth_hz);
    EXPECT_GE(ch.lo_hz(), cfg.band.downlink_lo_hz);
    EXPECT_LE(ch.hi_hz(), cfg.band.downlink_hi_hz);
    for (std::uint32_t q = 0; q < 8; ++q) {
      EXPECT_DOUBLE_EQ(plan.overlap_fraction(p, q), p == q ? 1.0 : 0.0)
          << "channels " << p << " and " << q;
    }
  }
  // Parties beyond the plan own no spectrum.
  EXPECT_DOUBLE_EQ(plan.channel(99).bandwidth_hz, 0.0);
  EXPECT_DOUBLE_EQ(plan.overlap_fraction(0, 99), 0.0);
}

TEST(SpectrumPlan, PartitionShrinksChannelsWhenTheBandIsFull) {
  SpectrumConfig cfg;  // 2 GHz downlink segment
  cfg.channel_bandwidth_hz = 500.0e6;
  const SpectrumPlan plan = SpectrumPlan::equal_partition(cfg, 16);
  // 16 parties cannot each get 500 MHz of 2 GHz: slots cap the width.
  EXPECT_DOUBLE_EQ(plan.channel(0).bandwidth_hz, 2.0e9 / 16.0);
}

TEST(SpectrumPlan, RejectsInvalidConfigAndZeroParties) {
  SpectrumConfig bad;
  bad.channel_bandwidth_hz = -1.0;
  EXPECT_THROW((void)SpectrumPlan::equal_partition(bad, 4), std::invalid_argument);
  EXPECT_THROW((void)SpectrumPlan::equal_partition(SpectrumConfig{}, 0),
               std::invalid_argument);
  try {
    (void)SpectrumPlan::equal_partition(bad, 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spectrum.channel_bandwidth_hz"),
              std::string::npos);
  }
}

TEST(InterferenceEnvironment, OnPlanPartiesCoupleNothing) {
  const SpectrumConfig cfg;
  const SpectrumPlan plan = SpectrumPlan::equal_partition(cfg, 4);
  const InterferenceEnvironment env(cfg, plan, {}, {});
  EXPECT_FALSE(env.any_interferer());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(env.jams(i));
    EXPECT_FALSE(env.squats(i));
    for (std::uint32_t v = 0; v < 4; ++v) {
      EXPECT_DOUBLE_EQ(env.coupling(i, v), 0.0);
      EXPECT_FALSE(env.violates_plan(i, v));
    }
  }
}

TEST(InterferenceEnvironment, JammerCouplesBoostedIntoEveryVictim) {
  const SpectrumConfig cfg;  // 12 dB discrimination, 10 dB jammer boost
  const SpectrumPlan plan = SpectrumPlan::equal_partition(cfg, 4);
  const InterferenceEnvironment env(cfg, plan, {true, false, false, false},
                                    {false, false, true, false});
  EXPECT_TRUE(env.any_interferer());
  EXPECT_TRUE(env.jams(0));
  EXPECT_TRUE(env.squats(2));

  const double discrimination = std::pow(10.0, -12.0 / 10.0);
  const double boost = std::pow(10.0, 10.0 / 10.0);
  for (std::uint32_t v = 1; v < 4; ++v) {
    EXPECT_NEAR(env.coupling(0, v), discrimination * boost, 1e-12);
    EXPECT_TRUE(env.violates_plan(0, v));
  }
  // The squatter radiates the whole band at nominal power: no boost.
  EXPECT_NEAR(env.coupling(2, 1), discrimination, 1e-12);
  EXPECT_TRUE(env.violates_plan(2, 1));
  // Self-coupling is always zero and never a violation.
  EXPECT_DOUBLE_EQ(env.coupling(0, 0), 0.0);
  EXPECT_FALSE(env.violates_plan(0, 0));
  // The honest party couples into nobody.
  EXPECT_DOUBLE_EQ(env.coupling(1, 0), 0.0);
  EXPECT_FALSE(env.violates_plan(1, 0));
  // Out-of-range parties read as silent.
  EXPECT_DOUBLE_EQ(env.coupling(9, 0), 0.0);
  EXPECT_FALSE(env.jams(9));
}

TEST(InterferenceEnvironment, ShortMasksArePaddedFalse) {
  const SpectrumConfig cfg;
  const SpectrumPlan plan = SpectrumPlan::equal_partition(cfg, 4);
  const InterferenceEnvironment env(cfg, plan, {true}, {});
  EXPECT_TRUE(env.jams(0));
  EXPECT_FALSE(env.jams(3));
  EXPECT_TRUE(env.any_interferer());
  EXPECT_DOUBLE_EQ(env.reference_bandwidth_hz(), cfg.channel_bandwidth_hz);
}

TEST(InterferenceEnvironment, RejectsInvalidConfig) {
  SpectrumConfig bad;
  bad.jammer_power_boost_db = -1.0;
  const SpectrumPlan plan = SpectrumPlan::equal_partition(SpectrumConfig{}, 4);
  EXPECT_THROW(InterferenceEnvironment(bad, plan, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::rf
