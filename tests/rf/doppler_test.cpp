#include "rf/doppler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mpleo::rf {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool has_issue(const std::vector<RfConfigIssue>& issues, const std::string& field) {
  return std::any_of(issues.begin(), issues.end(),
                     [&](const RfConfigIssue& i) { return i.field == field; });
}

TEST(DopplerAuditConfig, DefaultsValidate) {
  EXPECT_TRUE(DopplerAuditConfig{}.validate().empty());
}

TEST(DopplerAuditConfig, RejectsBadRmsTolerance) {
  DopplerAuditConfig cfg;
  cfg.rms_tolerance_hz = -1.0;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.rms_tolerance_hz"));
  cfg.rms_tolerance_hz = 0.0;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.rms_tolerance_hz"));
  cfg.rms_tolerance_hz = kNan;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.rms_tolerance_hz"));
}

TEST(DopplerAuditConfig, RejectsCarrierOutsideAllocations) {
  DopplerAuditConfig cfg;
  cfg.carrier_hz = 0.5e9;  // below the 1 GHz floor
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.carrier_hz"));
  cfg.carrier_hz = 150.0e9;  // above the 100 GHz ceiling
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.carrier_hz"));
  cfg.carrier_hz = kInf;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.carrier_hz"));
  cfg.carrier_hz = 11.7e9;
  EXPECT_FALSE(has_issue(cfg.validate(), "doppler.carrier_hz"));
}

TEST(DopplerAuditConfig, RejectsBadTrackShape) {
  DopplerAuditConfig cfg;
  cfg.track_samples = 1;  // cannot pin a curve shape
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.track_samples"));

  cfg = DopplerAuditConfig{};
  cfg.min_track_samples = 1;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.min_track_samples"));
  cfg.min_track_samples = cfg.track_samples + 1;  // more than the track holds
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.min_track_samples"));
}

TEST(DopplerAuditConfig, RejectsBadSpacingAndNoise) {
  DopplerAuditConfig cfg;
  cfg.sample_spacing_s = 0.0;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.sample_spacing_s"));
  cfg.sample_spacing_s = kNan;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.sample_spacing_s"));

  cfg = DopplerAuditConfig{};
  cfg.measurement_noise_hz = -5.0;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.measurement_noise_hz"));
  cfg.measurement_noise_hz = kInf;
  EXPECT_TRUE(has_issue(cfg.validate(), "doppler.measurement_noise_hz"));
  cfg.measurement_noise_hz = 0.0;  // a perfect receiver is allowed
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(DopplerAuditConfig, CollectsEveryIssueNotJustTheFirst) {
  DopplerAuditConfig cfg;
  cfg.rms_tolerance_hz = -1.0;
  cfg.carrier_hz = 0.0;
  cfg.sample_spacing_s = -2.0;
  const std::vector<RfConfigIssue> issues = cfg.validate();
  EXPECT_EQ(issues.size(), 3u);
  EXPECT_TRUE(has_issue(issues, "doppler.rms_tolerance_hz"));
  EXPECT_TRUE(has_issue(issues, "doppler.carrier_hz"));
  EXPECT_TRUE(has_issue(issues, "doppler.sample_spacing_s"));
}

TEST(DopplerAuditConfig, FormatAndThrowMirrorTleIssueStyle) {
  EXPECT_EQ(format_issues("ctx", {}), "");
  DopplerAuditConfig cfg;
  cfg.rms_tolerance_hz = kNan;
  const std::string msg = format_issues("rf::test", cfg.validate());
  EXPECT_NE(msg.find("rf::test: 1 invalid field(s)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("doppler.rms_tolerance_hz"), std::string::npos) << msg;

  EXPECT_NO_THROW(throw_if_invalid("rf::test", {}));
  try {
    throw_if_invalid("rf::test", cfg.validate());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("doppler.rms_tolerance_hz"),
              std::string::npos);
  }
}

TEST(DopplerAuditConfig, SampleOffsetsAreSymmetricAroundTheClaim) {
  DopplerAuditConfig cfg;  // 9 samples, 30 s spacing
  const std::vector<double> offsets = cfg.sample_offsets_s();
  ASSERT_EQ(offsets.size(), cfg.track_samples);
  EXPECT_DOUBLE_EQ(offsets.front(), -120.0);
  EXPECT_DOUBLE_EQ(offsets[4], 0.0);
  EXPECT_DOUBLE_EQ(offsets.back(), 120.0);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_DOUBLE_EQ(offsets[i], -offsets[offsets.size() - 1 - i]);
  }
}

TEST(TrackFit, EmptyTracksFitTrivially) {
  const TrackFit fit = fit_doppler_track({}, {});
  EXPECT_EQ(fit.samples, 0u);
  EXPECT_DOUBLE_EQ(fit.offset_hz, 0.0);
  EXPECT_DOUBLE_EQ(fit.rms_hz, 0.0);
}

TEST(TrackFit, ConstantOffsetIsRemovedEntirely) {
  // A pure oscillator offset must leave zero residual: the forger gets the
  // constant term for free, only the curve SHAPE is evidence.
  const std::vector<double> predicted = {1000.0, 500.0, 0.0, -500.0, -1000.0};
  std::vector<double> measured = predicted;
  for (double& f : measured) f += 12345.0;
  const TrackFit fit = fit_doppler_track(measured, predicted);
  EXPECT_EQ(fit.samples, 5u);
  EXPECT_NEAR(fit.offset_hz, 12345.0, 1e-9);
  EXPECT_NEAR(fit.rms_hz, 0.0, 1e-9);
}

TEST(TrackFit, ShapeMismatchSurvivesOffsetRemoval) {
  // Time-mirroring the curve flips the slope: same magnitudes, huge RMS.
  const std::vector<double> predicted = {1000.0, 500.0, 0.0, -500.0, -1000.0};
  std::vector<double> mirrored(predicted.rbegin(), predicted.rend());
  const TrackFit fit = fit_doppler_track(mirrored, predicted);
  EXPECT_NEAR(fit.offset_hz, 0.0, 1e-9);
  EXPECT_GT(fit.rms_hz, 500.0);
}

TEST(ForgeryLevel, NamesAndDetectionEnvelope) {
  EXPECT_STREQ(to_string(ForgeryLevel::kFlatTone), "flat_tone");
  EXPECT_STREQ(to_string(ForgeryLevel::kLinearRamp), "linear_ramp");
  EXPECT_STREQ(to_string(ForgeryLevel::kTimeMirrored), "time_mirrored");
  EXPECT_STREQ(to_string(ForgeryLevel::kEphemerisExact), "ephemeris_exact");
  EXPECT_TRUE(detectable(ForgeryLevel::kFlatTone));
  EXPECT_TRUE(detectable(ForgeryLevel::kLinearRamp));
  EXPECT_TRUE(detectable(ForgeryLevel::kTimeMirrored));
  // The documented blind spot: a forger running the true ephemeris passes.
  EXPECT_FALSE(detectable(ForgeryLevel::kEphemerisExact));
}

TEST(ForgeDopplerTrack, LadderShapesMatchTheirSophistication) {
  const std::vector<double> truth = {20000.0, 10000.0, 0.0, -10000.0, -20000.0};
  const double bound = 270000.0;
  util::Xoshiro256PlusPlus rng(99);

  const std::vector<double> flat =
      forge_doppler_track(ForgeryLevel::kFlatTone, truth, bound, rng);
  ASSERT_EQ(flat.size(), truth.size());
  for (const double f : flat) {
    EXPECT_DOUBLE_EQ(f, flat.front());  // zero slope
    EXPECT_LE(std::fabs(f), bound);
  }

  const std::vector<double> ramp =
      forge_doppler_track(ForgeryLevel::kLinearRamp, truth, bound, rng);
  ASSERT_EQ(ramp.size(), truth.size());
  EXPECT_GT(ramp.front(), 0.0);  // descends from positive to negative
  EXPECT_LT(ramp.back(), 0.0);
  for (std::size_t i = 1; i < ramp.size(); ++i) EXPECT_LT(ramp[i], ramp[i - 1]);

  const std::vector<double> mirrored =
      forge_doppler_track(ForgeryLevel::kTimeMirrored, truth, bound, rng);
  ASSERT_EQ(mirrored.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_DOUBLE_EQ(mirrored[i], truth[truth.size() - 1 - i]);
  }

  const std::vector<double> exact =
      forge_doppler_track(ForgeryLevel::kEphemerisExact, truth, bound, rng);
  ASSERT_EQ(exact.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(exact[i], truth[i], 100.0);  // true curve + small jitter
  }
  EXPECT_TRUE(forge_doppler_track(ForgeryLevel::kFlatTone, {}, bound, rng).empty());
}

TEST(ObserveDopplerTrack, AddsBoundedNoiseAroundTheTruth) {
  const std::vector<double> predicted = {1000.0, 0.0, -1000.0};
  util::Xoshiro256PlusPlus rng(7);
  const std::vector<double> noiseless = observe_doppler_track(predicted, 0.0, rng);
  ASSERT_EQ(noiseless.size(), predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    EXPECT_DOUBLE_EQ(noiseless[i], predicted[i]);
  }
  const std::vector<double> noisy = observe_doppler_track(predicted, 25.0, rng);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    EXPECT_NEAR(noisy[i], predicted[i], 250.0);  // 10 sigma
  }
}

}  // namespace
}  // namespace mpleo::rf
