#include "orbit/ephemeris.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "orbit/geodesy.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

TimeGrid small_grid() {
  return TimeGrid::over_duration(TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 3600.0,
                                 60.0);
}

TEST(GmstTable, MatchesDirectEvaluation) {
  const TimeGrid grid = small_grid();
  const GmstTable table = GmstTable::for_grid(grid);
  ASSERT_EQ(table.size(), grid.count);
  for (std::size_t i = 0; i < grid.count; i += 13) {
    const double g = gmst_rad(grid.at(i));
    EXPECT_NEAR(table.cos_gmst[i], std::cos(g), 1e-12);
    EXPECT_NEAR(table.sin_gmst[i], std::sin(g), 1e-12);
  }
}

TEST(EcefPositions, MatchesManualTransform) {
  const TimeGrid grid = small_grid();
  const ClassicalElements coe = ClassicalElements::circular(550e3, 53.0, 45.0, 10.0);
  const KeplerianPropagator prop(coe, grid.start);

  const std::vector<util::Vec3> positions = ecef_positions(prop, grid);
  ASSERT_EQ(positions.size(), grid.count);

  for (std::size_t i = 0; i < grid.count; i += 7) {
    const StateVector s = prop.state_at(grid.at(i));
    const util::Vec3 expected = eci_to_ecef(s.position, grid.at(i));
    EXPECT_NEAR(positions[i].x, expected.x, 1e-3);
    EXPECT_NEAR(positions[i].y, expected.y, 1e-3);
    EXPECT_NEAR(positions[i].z, expected.z, 1e-3);
  }
}

TEST(EcefPositions, RadiusStaysAtOrbitAltitude) {
  const TimeGrid grid = small_grid();
  const ClassicalElements coe = ClassicalElements::circular(550e3, 53.0, 0.0, 0.0);
  const KeplerianPropagator prop(coe, grid.start);
  for (const util::Vec3& p : ecef_positions(prop, grid)) {
    EXPECT_NEAR(p.norm(), util::kEarthMeanRadiusM + 550e3, 50.0);
  }
}

TEST(EcefPositions, SharedGmstTableEquivalent) {
  const TimeGrid grid = small_grid();
  const GmstTable table = GmstTable::for_grid(grid);
  const ClassicalElements coe = ClassicalElements::circular(550e3, 70.0, 120.0, 200.0);
  const KeplerianPropagator prop(coe, grid.start);
  const auto with_table = ecef_positions(prop, grid, table);
  const auto without = ecef_positions(prop, grid);
  ASSERT_EQ(with_table.size(), without.size());
  for (std::size_t i = 0; i < with_table.size(); ++i) {
    EXPECT_NEAR(with_table[i].x, without[i].x, 1e-9);
  }
}

}  // namespace
}  // namespace mpleo::orbit
