// Unit tests for the from-scratch SGP4 backend: the Spacetrack Report #3
// verification satellite, physical-state sanity, the analytic velocity
// against a finite difference, and the facade's deep-space fallback.
#include "orbit/sgp4.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "orbit/backend.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/tle.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

// The classic SGP4 test satellite from Spacetrack Report #3 (and Vallado's
// "Revisiting Spacetrack Report #3" verification set). Checksums are
// recomputed so the test pins field content, not transcription.
Tle spacetrack_test_tle() {
  std::string line1 =
      "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    80";
  std::string line2 =
      "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1050";
  line1[68] = static_cast<char>('0' + tle_checksum(line1));
  line2[68] = static_cast<char>('0' + tle_checksum(line2));
  const TleParseResult result = parse_tle("", line1, line2);
  EXPECT_TRUE(result.ok) << result.error;
  return result.tle;
}

Tle circular_leo_tle() {
  ClassicalElements coe;
  coe.semi_major_axis_m = util::kEarthMeanRadiusM + 550e3;
  coe.eccentricity = 0.001;
  coe.inclination_rad = util::deg_to_rad(53.0);
  coe.raan_rad = 1.0;
  coe.arg_perigee_rad = 0.5;
  coe.mean_anomaly_rad = 2.0;
  return Tle::from_elements(coe, TimePoint::from_iso8601("2024-11-18T00:00:00Z"),
                            43013, "LEO-TEST");
}

Tle geo_tle() {
  Tle tle = circular_leo_tle();
  tle.mean_motion_rev_per_day = 1.0027;  // ~1436 min period: deep space
  return tle;
}

TEST(Sgp4, MatchesSpacetrackVerificationCaseAtEpoch) {
  const Sgp4Propagator prop(spacetrack_test_tle());
  // Reference TEME position at tsince = 0 from Vallado's "Revisiting
  // Spacetrack Report #3" verification tables (WGS-72), km:
  // (2328.96975262, -5995.22051338, 1719.97297192).
  const StateVector state = prop.state_at_offset(0.0);
  EXPECT_NEAR(state.position.x, 2328.96975262e3, 5.0);
  EXPECT_NEAR(state.position.y, -5995.22051338e3, 5.0);
  EXPECT_NEAR(state.position.z, 1719.97297192e3, 5.0);
}

TEST(Sgp4, MatchesSpacetrackVerificationCaseAfterSixHours) {
  const Sgp4Propagator prop(spacetrack_test_tle());
  // Reference TEME position at tsince = 360 min (km):
  // (2456.10705566, -6071.93853760, 1222.89727783). Drag terms integrated
  // over six hours leave ~half a metre of spread between published
  // implementations; 10 m bounds it comfortably.
  const StateVector state = prop.state_at_offset(360.0 * 60.0);
  EXPECT_NEAR(state.position.x, 2456.10705566e3, 10.0);
  EXPECT_NEAR(state.position.y, -6071.93853760e3, 10.0);
  EXPECT_NEAR(state.position.z, 1222.89727783e3, 10.0);
}

TEST(Sgp4, LeoStateIsPhysicallySane) {
  const Sgp4Propagator prop(circular_leo_tle());
  for (const double dt : {0.0, 600.0, 3600.0, 6 * 3600.0, 86400.0}) {
    const StateVector state = prop.state_at_offset(dt);
    const double radius = state.position.norm();
    const double speed = state.velocity.norm();
    EXPECT_GT(radius, util::kEarthMeanRadiusM + 450e3) << "dt=" << dt;
    EXPECT_LT(radius, util::kEarthMeanRadiusM + 650e3) << "dt=" << dt;
    EXPECT_GT(speed, 7.4e3) << "dt=" << dt;
    EXPECT_LT(speed, 7.8e3) << "dt=" << dt;
  }
}

TEST(Sgp4, VelocityMatchesFiniteDifferenceOfPosition) {
  const Sgp4Propagator prop(spacetrack_test_tle());
  // SGP4's velocity is the analytic derivative of the periodic series with
  // the slowly-varying coefficients held fixed, so it deviates from the
  // exact finite difference by O(1e-5) relative — bound it at 0.5 m/s
  // against a ~7.5 km/s orbital speed.
  const double h = 0.5;  // seconds
  for (const double dt : {120.0, 3600.0, 40000.0}) {
    const StateVector state = prop.state_at_offset(dt);
    const Vec3 ahead = prop.position_eci_at_offset(dt + h);
    const Vec3 behind = prop.position_eci_at_offset(dt - h);
    EXPECT_NEAR(state.velocity.x, (ahead.x - behind.x) / (2.0 * h), 0.5);
    EXPECT_NEAR(state.velocity.y, (ahead.y - behind.y) / (2.0 * h), 0.5);
    EXPECT_NEAR(state.velocity.z, (ahead.z - behind.z) / (2.0 * h), 0.5);
  }
}

TEST(Sgp4, StateAtAgreesWithOffsetForm) {
  const Sgp4Propagator prop(circular_leo_tle());
  const double dt = 5400.0;
  const TimePoint t = prop.epoch().plus_seconds(dt);
  const StateVector via_time = prop.state_at(t);
  const StateVector via_offset = prop.state_at_offset(dt);
  EXPECT_NEAR(via_time.position.x, via_offset.position.x, 1e-3);
  EXPECT_NEAR(via_time.position.y, via_offset.position.y, 1e-3);
  EXPECT_NEAR(via_time.position.z, via_offset.position.z, 1e-3);
}

TEST(Sgp4, SupportsNearEarthRejectsDeepSpace) {
  EXPECT_TRUE(Sgp4Propagator::supports(spacetrack_test_tle()));
  EXPECT_TRUE(Sgp4Propagator::supports(circular_leo_tle()));
  EXPECT_FALSE(Sgp4Propagator::supports(geo_tle()));
}

TEST(Sgp4, ConstructorThrowsOnDeepSpaceOrbit) {
  EXPECT_THROW(Sgp4Propagator{geo_tle()}, std::invalid_argument);
}

TEST(Sgp4, DecayedOrbitThrowsDomainError) {
  Tle tle = circular_leo_tle();
  tle.mean_motion_rev_per_day = 16.4;  // ~230 km altitude
  tle.eccentricity = 0.01;
  tle.bstar = 0.5;  // absurd drag so the elements leave range quickly
  const Sgp4Propagator prop(tle);
  EXPECT_THROW((void)prop.state_at_offset(50.0 * 86400.0), std::domain_error);
}

TEST(Sgp4, SemiMajorAxisRecoversLeoAltitude) {
  const Sgp4Propagator prop(circular_leo_tle());
  // Un-Kozai recovery shifts a from the Keplerian value by well under 2 km.
  EXPECT_NEAR(prop.semi_major_axis_m(), util::kEarthMeanRadiusM + 550e3, 2e3);
}

TEST(Sgp4, MakePropagatorFallsBackToJ2ForDeepSpace) {
  EphemerisSpec spec = EphemerisSpec::from_tle(geo_tle());
  ASSERT_EQ(spec.backend, PropagatorBackend::kSgp4);
  const AnyPropagator prop = make_propagator(spec);
  EXPECT_EQ(prop.backend(), PropagatorBackend::kJ2Analytic);
}

TEST(Sgp4, MakePropagatorUsesSgp4ForNearEarth) {
  const EphemerisSpec spec = EphemerisSpec::from_tle(circular_leo_tle());
  const AnyPropagator prop = make_propagator(spec);
  EXPECT_EQ(prop.backend(), PropagatorBackend::kSgp4);
  ASSERT_NE(prop.sgp4(), nullptr);
}

TEST(Sgp4, BackendNamesRoundTrip) {
  EXPECT_STREQ(to_string(PropagatorBackend::kJ2Analytic), "j2_analytic");
  EXPECT_STREQ(to_string(PropagatorBackend::kSgp4), "sgp4");
  EXPECT_EQ(propagator_backend_from_string("sgp4"), PropagatorBackend::kSgp4);
  EXPECT_EQ(propagator_backend_from_string("j2"), PropagatorBackend::kJ2Analytic);
  EXPECT_EQ(propagator_backend_from_string("j2_analytic"),
            PropagatorBackend::kJ2Analytic);
  EXPECT_THROW((void)propagator_backend_from_string("sgp8"), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::orbit
