#include "orbit/kepler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

TEST(Kepler, CircularOrbitIsIdentity) {
  for (double m : {0.0, 0.5, 3.0, 6.0}) {
    EXPECT_NEAR(solve_kepler(m, 0.0), m, 1e-14);
  }
}

TEST(Kepler, KnownSolution) {
  // Vallado example 2-1: M = 235.4 deg, e = 0.4 -> E = 220.512074767 deg.
  const double m = util::deg_to_rad(235.4);
  const double e = 0.4;
  const double E = solve_kepler(m, e);
  EXPECT_NEAR(util::rad_to_deg(util::wrap_two_pi(E)), 220.512074767, 1e-6);
}

TEST(Kepler, ZeroMeanAnomaly) {
  EXPECT_NEAR(solve_kepler(0.0, 0.7), 0.0, 1e-12);
}

TEST(Kepler, SymmetryAboutZero) {
  const double e = 0.3;
  const double m = 1.1;
  EXPECT_NEAR(solve_kepler(-m, e), -solve_kepler(m, e), 1e-11);
}

TEST(Kepler, PreservesBranch) {
  // M outside [-pi, pi] should return E in the same winding.
  const double e = 0.1;
  const double m = 3.0 * util::kTwoPi + 0.5;
  const double E = solve_kepler(m, e);
  EXPECT_NEAR(E - e * std::sin(E), m, 1e-11);
  EXPECT_GT(E, 3.0 * util::kTwoPi - util::kPi);
}

TEST(AnomalyConversions, CircularIdentity) {
  for (double E : {0.0, 1.0, 3.0, 5.5}) {
    EXPECT_NEAR(true_from_eccentric(E, 0.0), E, 1e-12);
    EXPECT_NEAR(eccentric_from_true(E, 0.0), E, 1e-12);
    EXPECT_NEAR(mean_from_eccentric(E, 0.0), E, 1e-12);
  }
}

TEST(AnomalyConversions, PerigeeApogeeFixedPoints) {
  const double e = 0.6;
  EXPECT_NEAR(true_from_eccentric(0.0, e), 0.0, 1e-12);
  EXPECT_NEAR(true_from_eccentric(util::kPi, e), util::kPi, 1e-9);
}

TEST(AnomalyConversions, TrueLeadsEccentricFirstHalf) {
  // Between perigee and apogee the true anomaly is ahead of E for e > 0.
  const double e = 0.4;
  for (double E : {0.3, 1.0, 2.0, 3.0}) {
    EXPECT_GE(true_from_eccentric(E, e), E);
  }
}

struct KeplerCase {
  double mean_anomaly;
  double eccentricity;
};

class KeplerSolveSweep : public ::testing::TestWithParam<KeplerCase> {};

TEST_P(KeplerSolveSweep, ResidualBelowTolerance) {
  const auto [m, e] = GetParam();
  const double E = solve_kepler(m, e);
  EXPECT_NEAR(E - e * std::sin(E), m, 1e-10) << "M=" << m << " e=" << e;
}

TEST_P(KeplerSolveSweep, AnomalyChainRoundTrips) {
  const auto [m, e] = GetParam();
  const double E = solve_kepler(m, e);
  const double nu = true_from_eccentric(E, e);
  const double E_back = eccentric_from_true(nu, e);
  const double m_back = mean_from_eccentric(E_back, e);
  EXPECT_NEAR(m_back, m, 1e-9) << "M=" << m << " e=" << e;
}

std::vector<KeplerCase> kepler_cases() {
  std::vector<KeplerCase> cases;
  for (double e : {0.0, 1e-4, 0.01, 0.1, 0.3, 0.6, 0.8, 0.95, 0.99}) {
    for (double m_deg = -350.0; m_deg <= 350.0; m_deg += 50.0) {
      cases.push_back({util::deg_to_rad(m_deg), e});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KeplerSolveSweep, ::testing::ValuesIn(kepler_cases()));

}  // namespace
}  // namespace mpleo::orbit
