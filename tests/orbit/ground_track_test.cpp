#include "orbit/ground_track.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

const TimePoint kEpoch = TimePoint::from_iso8601("2024-11-18T00:00:00Z");

TEST(GroundTrack, EquatorialOrbitStaysOnEquator) {
  const KeplerianPropagator prop(ClassicalElements::circular(550e3, 0.0, 0.0, 0.0),
                                 kEpoch);
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 6000.0, 60.0);
  for (const GroundTrackPoint& p : ground_track(prop, grid)) {
    EXPECT_NEAR(p.point.latitude_rad, 0.0, 1e-6);
    EXPECT_EQ(p.point.altitude_m, 0.0);
  }
}

TEST(GroundTrack, LatitudeBoundedByInclination) {
  const double incl_deg = 53.0;
  const KeplerianPropagator prop(
      ClassicalElements::circular(550e3, incl_deg, 20.0, 0.0), kEpoch);
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  double max_lat = 0.0;
  for (const GroundTrackPoint& p : ground_track(prop, grid)) {
    max_lat = std::max(max_lat, std::fabs(p.point.latitude_rad));
  }
  // Reaches close to the inclination but never exceeds it (geodetic latitude
  // can overshoot geocentric by up to ~0.2 deg on the ellipsoid).
  EXPECT_LE(util::rad_to_deg(max_lat), incl_deg + 0.25);
  EXPECT_GE(util::rad_to_deg(max_lat), incl_deg - 1.0);
}

TEST(GroundTrack, TrackLengthMatchesGrid) {
  const KeplerianPropagator prop(ClassicalElements::circular(550e3, 53.0, 0.0, 0.0),
                                 kEpoch);
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 3600.0, 30.0);
  const auto track = ground_track(prop, grid);
  ASSERT_EQ(track.size(), grid.count);
  EXPECT_DOUBLE_EQ(track.front().offset_seconds, 0.0);
  EXPECT_DOUBLE_EQ(track.back().offset_seconds,
                   grid.step_seconds * static_cast<double>(grid.count - 1));
}

TEST(GroundTrack, WestwardShiftPerOrbit) {
  // 550 km orbit (95.7 min period): Earth turns ~24 deg underneath per
  // revolution, plus ~0.3 deg from J2 nodal regression — Fig. 1a's
  // "different path on Earth during each orbit".
  const KeplerianPropagator prop(ClassicalElements::circular(550e3, 53.0, 0.0, 0.0),
                                 kEpoch);
  const double shift = ground_track_shift_per_orbit_deg(prop);
  EXPECT_NEAR(shift, 24.3, 0.5);
}

TEST(GroundTrack, ShiftObservedInSimulation) {
  // Measure the longitude of two consecutive ascending equator crossings.
  const KeplerianPropagator prop(ClassicalElements::circular(550e3, 53.0, 40.0, 0.0),
                                 kEpoch);
  const TimeGrid grid = TimeGrid::over_duration(kEpoch, 4.0 * 6000.0, 5.0);
  const auto track = ground_track(prop, grid);

  std::vector<double> crossing_lons;
  for (std::size_t i = 1; i < track.size(); ++i) {
    if (track[i - 1].point.latitude_rad < 0.0 && track[i].point.latitude_rad >= 0.0) {
      crossing_lons.push_back(track[i].point.longitude_rad);
    }
  }
  ASSERT_GE(crossing_lons.size(), 2u);
  const double measured_shift_deg = util::rad_to_deg(
      util::wrap_pi(crossing_lons[0] - crossing_lons[1]));
  EXPECT_NEAR(measured_shift_deg, ground_track_shift_per_orbit_deg(prop), 0.5);
}

TEST(GroundTrack, MaxLatitudeForRetrogradeOrbits) {
  ClassicalElements sso = ClassicalElements::circular(560e3, 97.6, 0.0, 0.0);
  EXPECT_NEAR(util::rad_to_deg(max_track_latitude_rad(sso)), 82.4, 1e-9);
  ClassicalElements prograde = ClassicalElements::circular(550e3, 53.0, 0.0, 0.0);
  EXPECT_NEAR(util::rad_to_deg(max_track_latitude_rad(prograde)), 53.0, 1e-9);
}

}  // namespace
}  // namespace mpleo::orbit
