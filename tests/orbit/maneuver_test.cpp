#include "orbit/maneuver.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

constexpr double kLeoRadius = 6371008.8 + 550e3;
constexpr double kGeoRadius = 42164e3;

TEST(Maneuver, CircularVelocityKnownValues) {
  // 550 km LEO ~ 7.59 km/s; GEO ~ 3.07 km/s.
  EXPECT_NEAR(circular_velocity(kLeoRadius), 7585.0, 15.0);
  EXPECT_NEAR(circular_velocity(kGeoRadius), 3075.0, 10.0);
  EXPECT_THROW((void)circular_velocity(100.0), std::invalid_argument);
}

TEST(Maneuver, HohmannLeoToGeoTextbookValue) {
  // LEO (550 km) -> GEO total delta-v ~ 3.8 km/s (the canonical ~3.9 is
  // quoted from a 300 km parking orbit; higher start = slightly cheaper).
  const double dv = hohmann_delta_v(kLeoRadius, kGeoRadius);
  EXPECT_NEAR(dv, 3800.0, 60.0);
  // Order independence and zero at equality.
  EXPECT_DOUBLE_EQ(dv, hohmann_delta_v(kGeoRadius, kLeoRadius));
  EXPECT_EQ(hohmann_delta_v(kLeoRadius, kLeoRadius), 0.0);
}

TEST(Maneuver, HohmannTransferTimeLeoToGeo) {
  // ~5.3 hours for the LEO->GEO half ellipse.
  EXPECT_NEAR(hohmann_transfer_time(kLeoRadius, kGeoRadius) / 3600.0, 5.25, 0.15);
}

TEST(Maneuver, SmallAltitudeChangesAreCheap) {
  // 550 -> 575 km: a few m/s x ~13. Rule of thumb ~0.5 m/s per km at LEO.
  const double dv = hohmann_delta_v(kLeoRadius, kLeoRadius + 25e3);
  EXPECT_NEAR(dv, 13.7, 1.0);
}

TEST(Maneuver, PlaneChangeIsExpensive) {
  // Fig 4c's best coverage factor (10 deg inclination change) costs
  // 2 v sin(5 deg) ~ 1.32 km/s at LEO — far beyond the altitude/phase moves.
  const double dv = plane_change_delta_v(kLeoRadius, util::deg_to_rad(10.0));
  EXPECT_NEAR(dv, 1322.0, 20.0);
  EXPECT_EQ(plane_change_delta_v(kLeoRadius, 0.0), 0.0);
  // Symmetric in sign.
  EXPECT_DOUBLE_EQ(plane_change_delta_v(kLeoRadius, util::deg_to_rad(-10.0)),
                   plane_change_delta_v(kLeoRadius, util::deg_to_rad(10.0)));
}

TEST(Maneuver, PhasingDriftDirectionAndDuration) {
  // Drop 20 km to drift ahead 30 deg: lower orbit is faster.
  const double t = phasing_time(kLeoRadius, util::deg_to_rad(30.0), 20e3);
  EXPECT_GT(t, 0.0);
  // Relative rate ~ 1.5 n (dh/r) per orbit => tens of orbits.
  EXPECT_GT(t / 5700.0, 5.0);
  EXPECT_LT(t / 5700.0, 50.0);
  // Wrong direction is rejected.
  EXPECT_THROW((void)phasing_time(kLeoRadius, util::deg_to_rad(30.0), -20e3),
               std::invalid_argument);
  EXPECT_THROW((void)phasing_time(kLeoRadius, 0.0, 20e3), std::invalid_argument);
}

TEST(Maneuver, PhasingDeltaVEntersAndExits) {
  const double dv = phasing_delta_v(kLeoRadius, 20e3);
  EXPECT_NEAR(dv, 2.0 * hohmann_delta_v(kLeoRadius, kLeoRadius - 20e3), 1e-9);
  EXPECT_GT(dv, 0.0);
  EXPECT_LT(dv, 50.0);  // phasing is cheap, as §3.3 deployment assumes
}

TEST(Maneuver, DeorbitBurnMagnitude) {
  // 550 km -> 50 km perigee disposal: ~145 m/s.
  const double dv = deorbit_delta_v(kLeoRadius, 6371008.8 + 50e3);
  EXPECT_NEAR(dv, 145.0, 15.0);
  EXPECT_THROW((void)deorbit_delta_v(kLeoRadius, kLeoRadius + 1.0),
               std::invalid_argument);
}

TEST(Maneuver, CostOrderingMatchesFig4cIntuition) {
  // The coverage-best slot (new inclination) is the delta-v-worst move;
  // phase changes are cheapest. This asymmetry is why incremental
  // deployments launch into new planes instead of maneuvering into them.
  const double incl = plane_change_delta_v(kLeoRadius, util::deg_to_rad(10.0));
  const double alt = hohmann_delta_v(kLeoRadius, kLeoRadius + 25e3);
  const double phase = phasing_delta_v(kLeoRadius, 20e3);
  EXPECT_GT(incl, 10.0 * alt);
  EXPECT_GT(incl, 10.0 * phase);
}

}  // namespace
}  // namespace mpleo::orbit
