#include "orbit/conjunction.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

const TimePoint kEpoch = TimePoint::from_iso8601("2024-11-18T00:00:00Z");

constellation::Satellite sat_at(double alt, double incl, double raan, double phase) {
  constellation::Satellite sat;
  sat.elements = ClassicalElements::circular(alt, incl, raan, phase);
  sat.epoch = kEpoch;
  return sat;
}

TimeGrid orbit_grid(double step = 10.0) {
  return TimeGrid::over_duration(kEpoch, 6000.0, step);  // ~one orbit
}

TEST(ClosestApproach, CoplanarSeparationIsChordDistance) {
  // Same circular orbit, 30 deg apart in phase: separation is constant at
  // 2 r sin(15 deg).
  const auto a = sat_at(550e3, 53.0, 0.0, 0.0);
  const auto b = sat_at(550e3, 53.0, 0.0, 30.0);
  const CloseApproach approach = closest_approach(a, b, orbit_grid());
  const double r = util::kEarthMeanRadiusM + 550e3;
  EXPECT_NEAR(approach.min_distance_m, 2.0 * r * std::sin(util::deg_to_rad(15.0)),
              2e3);
}

TEST(ClosestApproach, CrossingPlanesAtSharedNodeCollide) {
  // Worst-case crossing geometry: satellite A at its ascending node meets
  // satellite B (RAAN 180 deg away) at B's descending node — the same point
  // in space, reached simultaneously, with crossing velocities. This is the
  // conjunction class operators actually screen for.
  const auto a = sat_at(550e3, 53.0, 0.0, 0.0);
  const auto b = sat_at(550e3, 53.0, 180.0, 180.0);
  const CloseApproach approach = closest_approach(a, b, orbit_grid(1.0));
  EXPECT_LT(approach.min_distance_m, 20e3);
  EXPECT_GE(approach.offset_seconds, 0.0);
}

TEST(ClosestApproach, AltitudeSeparationIsFloor) {
  // 30 km of altitude separation: minimum distance never drops below it.
  const auto a = sat_at(550e3, 53.0, 0.0, 0.0);
  const auto b = sat_at(580e3, 53.0, 40.0, 77.0);
  const CloseApproach approach = closest_approach(a, b, orbit_grid(1.0));
  EXPECT_GE(approach.min_distance_m, 29e3);
}

TEST(ScreenConjunctions, FindsOnlyPairsBelowThreshold) {
  std::vector<constellation::Satellite> sats{
      sat_at(550e3, 53.0, 0.0, 0.0),
      sat_at(550e3, 53.0, 0.0, 1.0),    // ~120 km ahead, same plane
      sat_at(550e3, 53.0, 0.0, 180.0),  // opposite side
  };
  const auto hits = screen_conjunctions(sats, orbit_grid(), 200e3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].satellite_a, 0u);
  EXPECT_EQ(hits[0].satellite_b, 1u);
  EXPECT_LT(hits[0].min_distance_m, 130e3);
}

TEST(ScreenConjunctions, SortedAscendingByDistance) {
  std::vector<constellation::Satellite> sats{
      sat_at(550e3, 53.0, 0.0, 0.0), sat_at(550e3, 53.0, 0.0, 2.0),
      sat_at(550e3, 53.0, 0.0, 1.0)};
  const auto hits = screen_conjunctions(sats, orbit_grid(), 500e3);
  ASSERT_GE(hits.size(), 2u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i].min_distance_m, hits[i - 1].min_distance_m);
  }
}

TEST(ScreenConjunctions, RejectsNonPositiveThreshold) {
  EXPECT_THROW((void)screen_conjunctions({}, orbit_grid(), 0.0), std::invalid_argument);
}

TEST(Occupancy, CountsPerBand) {
  std::vector<constellation::Satellite> sats{
      sat_at(545e3, 53.0, 0.0, 0.0), sat_at(548e3, 53.0, 10.0, 0.0),
      sat_at(560e3, 53.0, 0.0, 0.0), sat_at(1205e3, 87.9, 0.0, 0.0)};
  const auto occupancy = altitude_occupancy(sats, 10e3);
  EXPECT_EQ(occupancy.at(540e3), 2u);
  EXPECT_EQ(occupancy.at(560e3), 1u);
  EXPECT_EQ(occupancy.at(1200e3), 1u);
  EXPECT_EQ(occupancy.size(), 3u);
}

TEST(Occupancy, CrowdingIndex) {
  std::map<double, std::size_t> occupancy{{540e3, 8}, {550e3, 2}};
  EXPECT_DOUBLE_EQ(crowding_index(occupancy), 5.0);
  EXPECT_EQ(crowding_index({}), 0.0);
}

TEST(Occupancy, RejectsBadBandWidth) {
  EXPECT_THROW(altitude_occupancy({}, -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace mpleo::orbit
