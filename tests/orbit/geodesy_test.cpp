#include "orbit/geodesy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

using util::Vec3;

TEST(Geodesy, EquatorPrimeMeridian) {
  const Vec3 p = geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0));
  EXPECT_NEAR(p.x, util::kEarthEquatorialRadiusM, 1e-6);
  EXPECT_NEAR(p.y, 0.0, 1e-6);
  EXPECT_NEAR(p.z, 0.0, 1e-6);
}

TEST(Geodesy, NorthPole) {
  const Vec3 p = geodetic_to_ecef(Geodetic::from_degrees(90.0, 0.0, 0.0));
  EXPECT_NEAR(p.x, 0.0, 1e-6);
  EXPECT_NEAR(p.y, 0.0, 1e-6);
  // Polar radius b = a(1-f) ~ 6356752.3 m.
  EXPECT_NEAR(p.z, 6356752.3142, 1e-3);
}

TEST(Geodesy, AltitudeAddsAlongNormal) {
  const Vec3 ground = geodetic_to_ecef(Geodetic::from_degrees(45.0, 10.0, 0.0));
  const Vec3 high = geodetic_to_ecef(Geodetic::from_degrees(45.0, 10.0, 1000.0));
  EXPECT_NEAR((high - ground).norm(), 1000.0, 1e-6);
}

TEST(Geodesy, EcefToGeodeticKnownPoint) {
  // Taipei.
  const Geodetic in = Geodetic::from_degrees(25.0330, 121.5654, 50.0);
  const Geodetic out = ecef_to_geodetic(geodetic_to_ecef(in));
  EXPECT_NEAR(out.latitude_rad, in.latitude_rad, 1e-9);
  EXPECT_NEAR(out.longitude_rad, in.longitude_rad, 1e-12);
  EXPECT_NEAR(out.altitude_m, in.altitude_m, 1e-4);
}

TEST(Geodesy, EciEcefRoundTrip) {
  const Vec3 eci{7000e3, -1234e3, 3456e3};
  const double gmst = 1.234;
  const Vec3 back = ecef_to_eci(eci_to_ecef(eci, gmst), gmst);
  EXPECT_NEAR(back.x, eci.x, 1e-6);
  EXPECT_NEAR(back.y, eci.y, 1e-6);
  EXPECT_NEAR(back.z, eci.z, 1e-6);
}

TEST(Geodesy, EciEcefPreservesNormAndZ) {
  const Vec3 eci{6500e3, 2000e3, -1500e3};
  const Vec3 ecef = eci_to_ecef(eci, 0.777);
  EXPECT_NEAR(ecef.norm(), eci.norm(), 1e-6);
  EXPECT_DOUBLE_EQ(ecef.z, eci.z);
}

TEST(Geodesy, ZeroGmstIsIdentity) {
  const Vec3 eci{1.0, 2.0, 3.0};
  const Vec3 ecef = eci_to_ecef(eci, 0.0);
  EXPECT_DOUBLE_EQ(ecef.x, eci.x);
  EXPECT_DOUBLE_EQ(ecef.y, eci.y);
}

TEST(Topocentric, ZenithTarget) {
  const Geodetic site = Geodetic::from_degrees(25.0, 121.5, 0.0);
  const TopocentricFrame frame(site);
  // A point 550 km along the local up vector.
  const Vec3 target = frame.origin_ecef() + 550e3 * frame.up();
  EXPECT_NEAR(frame.elevation_rad(target), util::kPi / 2.0, 1e-9);
  EXPECT_NEAR(frame.range_m(target), 550e3, 1e-6);
  EXPECT_TRUE(frame.visible_above(target, std::sin(util::deg_to_rad(89.0))));
}

TEST(Topocentric, HorizonTarget) {
  const Geodetic site = Geodetic::from_degrees(0.0, 0.0, 0.0);
  const TopocentricFrame frame(site);
  const Vec3 target = frame.origin_ecef() + 1000e3 * frame.north();
  EXPECT_NEAR(frame.elevation_rad(target), 0.0, 1e-9);
  EXPECT_NEAR(frame.azimuth_rad(target), 0.0, 1e-9);
}

TEST(Topocentric, AzimuthQuadrants) {
  const TopocentricFrame frame(Geodetic::from_degrees(10.0, 20.0, 0.0));
  const Vec3 east_target = frame.origin_ecef() + 100e3 * frame.east();
  EXPECT_NEAR(frame.azimuth_rad(east_target), util::kPi / 2.0, 1e-9);
  const Vec3 south_target = frame.origin_ecef() - 100e3 * frame.north();
  EXPECT_NEAR(frame.azimuth_rad(south_target), util::kPi, 1e-9);
  const Vec3 west_target = frame.origin_ecef() - 100e3 * frame.east();
  EXPECT_NEAR(frame.azimuth_rad(west_target), 3.0 * util::kPi / 2.0, 1e-9);
}

TEST(Topocentric, BelowHorizonNotVisible) {
  const TopocentricFrame frame(Geodetic::from_degrees(40.0, -75.0, 0.0));
  const Vec3 below = frame.origin_ecef() - 100e3 * frame.up();
  EXPECT_LT(frame.elevation_rad(below), 0.0);
  EXPECT_FALSE(frame.visible_above(below, 0.0));
}

TEST(Topocentric, VisibleAboveMatchesElevation) {
  const TopocentricFrame frame(Geodetic::from_degrees(25.0, 121.5, 0.0));
  util::Xoshiro256PlusPlus rng(3);
  const double mask_deg = 25.0;
  const double sin_mask = std::sin(util::deg_to_rad(mask_deg));
  for (int i = 0; i < 200; ++i) {
    // Random targets in a shell 300-1500 km above the site's tangent plane.
    const Vec3 dir = Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
    const Vec3 target = frame.origin_ecef() + rng.uniform(300e3, 1500e3) * dir;
    const bool by_elevation =
        frame.elevation_rad(target) >= util::deg_to_rad(mask_deg) - 1e-12;
    EXPECT_EQ(frame.visible_above(target, sin_mask), by_elevation);
  }
}

TEST(Topocentric, BasisIsOrthonormal) {
  const TopocentricFrame frame(Geodetic::from_degrees(-33.5, 151.0, 100.0));
  EXPECT_NEAR(frame.up().norm(), 1.0, 1e-12);
  EXPECT_NEAR(frame.east().norm(), 1.0, 1e-12);
  EXPECT_NEAR(frame.north().norm(), 1.0, 1e-12);
  EXPECT_NEAR(dot(frame.up(), frame.east()), 0.0, 1e-12);
  EXPECT_NEAR(dot(frame.up(), frame.north()), 0.0, 1e-12);
  EXPECT_NEAR(dot(frame.east(), frame.north()), 0.0, 1e-12);
}

class GeodeticRoundTripSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(GeodeticRoundTripSweep, EcefRoundTrips) {
  const auto [lat, lon, alt] = GetParam();
  const Geodetic in = Geodetic::from_degrees(lat, lon, alt);
  const Geodetic out = ecef_to_geodetic(geodetic_to_ecef(in));
  EXPECT_NEAR(out.latitude_rad, in.latitude_rad, 1e-9);
  EXPECT_NEAR(out.altitude_m, in.altitude_m, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeodeticRoundTripSweep,
                         ::testing::Combine(::testing::Values(-80.0, -45.0, 0.0, 30.0, 60.0,
                                                              89.0),
                                            ::testing::Values(-179.0, -30.0, 0.0, 121.5),
                                            ::testing::Values(0.0, 550e3)));

}  // namespace
}  // namespace mpleo::orbit
