#include "orbit/tle.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

// The canonical ISS TLE used in SGP4 documentation.
const char* kIssLine1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
const char* kIssLine2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

TEST(TleChecksum, MatchesKnownLines) {
  EXPECT_EQ(tle_checksum(kIssLine1), 7);
  EXPECT_EQ(tle_checksum(kIssLine2), 7);
}

TEST(TleParse, IssFields) {
  const TleParseResult result = parse_tle("ISS (ZARYA)", kIssLine1, kIssLine2);
  ASSERT_TRUE(result.ok) << result.error;
  const Tle& tle = result.tle;
  EXPECT_EQ(tle.name, "ISS (ZARYA)");
  EXPECT_EQ(tle.catalog_number, 25544);
  EXPECT_EQ(tle.classification, 'U');
  EXPECT_EQ(tle.intl_designator, "98067A");
  EXPECT_NEAR(tle.inclination_deg, 51.6416, 1e-9);
  EXPECT_NEAR(tle.raan_deg, 247.4627, 1e-9);
  EXPECT_NEAR(tle.eccentricity, 0.0006703, 1e-10);
  EXPECT_NEAR(tle.arg_perigee_deg, 130.5360, 1e-9);
  EXPECT_NEAR(tle.mean_anomaly_deg, 325.0288, 1e-9);
  EXPECT_NEAR(tle.mean_motion_rev_per_day, 15.72125391, 1e-7);
  EXPECT_NEAR(tle.bstar, -0.11606e-4, 1e-10);
  EXPECT_NEAR(tle.mean_motion_dot, -0.00002182, 1e-10);
  // Epoch: 2008 day 264.51782528 (Sept 20).
  const CivilTime epoch = tle.epoch.to_civil();
  EXPECT_EQ(epoch.year, 2008);
  EXPECT_EQ(epoch.month, 9);
  EXPECT_EQ(epoch.day, 20);
}

TEST(TleParse, RejectsBadChecksum) {
  std::string corrupted(kIssLine1);
  corrupted[68] = '0';
  const TleParseResult result = parse_tle("", corrupted, kIssLine2);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("checksum"), std::string::npos);
}

TEST(TleParse, RejectsShortLines) {
  EXPECT_FALSE(parse_tle("", "1 25544U", kIssLine2).ok);
  EXPECT_FALSE(parse_tle("", kIssLine1, "2 25544").ok);
}

TEST(TleParse, RejectsSwappedLines) {
  EXPECT_FALSE(parse_tle("", kIssLine2, kIssLine1).ok);
}

TEST(TleParse, RejectsMismatchedCatalogNumbers) {
  // A valid line 2 for a different satellite (recompute checksum).
  std::string other(kIssLine2);
  other[2] = '3';  // 35544
  other[68] = static_cast<char>('0' + tle_checksum(other));
  const TleParseResult result = parse_tle("", kIssLine1, other);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("catalog"), std::string::npos);
}

TEST(TleFormat, RoundTripsThroughParser) {
  const TleParseResult parsed = parse_tle("ISS (ZARYA)", kIssLine1, kIssLine2);
  ASSERT_TRUE(parsed.ok);
  const TleLines lines = format_tle(parsed.tle);
  ASSERT_EQ(lines.line1.size(), 69u);
  ASSERT_EQ(lines.line2.size(), 69u);

  const TleParseResult reparsed = parse_tle("ISS (ZARYA)", lines.line1, lines.line2);
  ASSERT_TRUE(reparsed.ok) << reparsed.error << "\n" << lines.line1 << "\n" << lines.line2;
  EXPECT_EQ(reparsed.tle.catalog_number, parsed.tle.catalog_number);
  EXPECT_NEAR(reparsed.tle.inclination_deg, parsed.tle.inclination_deg, 1e-4);
  EXPECT_NEAR(reparsed.tle.raan_deg, parsed.tle.raan_deg, 1e-4);
  EXPECT_NEAR(reparsed.tle.eccentricity, parsed.tle.eccentricity, 1e-7);
  EXPECT_NEAR(reparsed.tle.mean_motion_rev_per_day, parsed.tle.mean_motion_rev_per_day,
              1e-7);
  EXPECT_NEAR(reparsed.tle.epoch.julian_date(), parsed.tle.epoch.julian_date(), 1e-7);
  EXPECT_NEAR(reparsed.tle.bstar, parsed.tle.bstar, 1e-9);
}

TEST(TleElements, MeanMotionToSemiMajorAxis) {
  const TleParseResult parsed = parse_tle("", kIssLine1, kIssLine2);
  ASSERT_TRUE(parsed.ok);
  const ClassicalElements coe = parsed.tle.to_elements();
  // ISS altitude ~350 km in 2008 -> a ~ 6730 km.
  EXPECT_NEAR(coe.semi_major_axis_m / 1000.0, 6730.0, 15.0);
  EXPECT_NEAR(util::rad_to_deg(coe.inclination_rad), 51.6416, 1e-6);
}

TEST(TleElements, FromElementsRoundTrip) {
  const ClassicalElements coe = ClassicalElements::circular(550e3, 53.0, 123.0, 77.0);
  const TimePoint epoch = TimePoint::from_iso8601("2024-11-18T06:30:00Z");
  const Tle tle = Tle::from_elements(coe, epoch, 90001, "MPLEO-TEST");

  const ClassicalElements back = tle.to_elements();
  EXPECT_NEAR(back.semi_major_axis_m, coe.semi_major_axis_m, 1.0);
  EXPECT_NEAR(back.inclination_rad, coe.inclination_rad, 1e-9);
  EXPECT_NEAR(back.raan_rad, coe.raan_rad, 1e-9);
  EXPECT_NEAR(back.mean_anomaly_rad, coe.mean_anomaly_rad, 1e-9);

  // And the formatted lines parse back cleanly.
  const TleLines lines = format_tle(tle);
  const TleParseResult reparsed = parse_tle(tle.name, lines.line1, lines.line2);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  EXPECT_EQ(reparsed.tle.catalog_number, 90001);
  EXPECT_NEAR(reparsed.tle.epoch.julian_date(), epoch.julian_date(), 1e-7);
}

TEST(TleParse, ZeroPaddedBstarParsesAsZero) {
  // Build a TLE with bstar zero and verify symmetric handling.
  const Tle tle = Tle::from_elements(ClassicalElements::circular(550e3, 53.0, 0.0, 0.0),
                                     TimePoint::from_iso8601("2024-01-01T00:00:00Z"), 1);
  const TleLines lines = format_tle(tle);
  const TleParseResult reparsed = parse_tle("", lines.line1, lines.line2);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  EXPECT_EQ(reparsed.tle.bstar, 0.0);
}

TEST(TleCatalog, ParsesThreeLineFormat) {
  const Tle a = Tle::from_elements(ClassicalElements::circular(550e3, 53.0, 10.0, 20.0),
                                   TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 1,
                                   "SAT-A");
  const Tle b = Tle::from_elements(ClassicalElements::circular(560e3, 97.6, 30.0, 40.0),
                                   TimePoint::from_iso8601("2024-11-18T00:00:00Z"), 2,
                                   "SAT-B");
  const std::string text = format_tle_catalog({a, b});
  const TleCatalog catalog = parse_tle_catalog(text);
  EXPECT_TRUE(catalog.errors.empty());
  ASSERT_EQ(catalog.entries.size(), 2u);
  EXPECT_EQ(catalog.entries[0].name, "SAT-A");
  EXPECT_EQ(catalog.entries[1].name, "SAT-B");
  EXPECT_EQ(catalog.entries[1].catalog_number, 2);
}

TEST(TleCatalog, ParsesTwoLineFormatWithoutNames) {
  const std::string text = std::string(kIssLine1) + "\n" + kIssLine2 + "\n";
  const TleCatalog catalog = parse_tle_catalog(text);
  ASSERT_EQ(catalog.entries.size(), 1u);
  EXPECT_TRUE(catalog.entries[0].name.empty());
  EXPECT_EQ(catalog.entries[0].catalog_number, 25544);
}

TEST(TleCatalog, StripsZeroPrefixNameLines) {
  const std::string text =
      std::string("0 ISS (ZARYA)\n") + kIssLine1 + "\n" + kIssLine2 + "\n";
  const TleCatalog catalog = parse_tle_catalog(text);
  ASSERT_EQ(catalog.entries.size(), 1u);
  EXPECT_EQ(catalog.entries[0].name, "ISS (ZARYA)");
}

TEST(TleCatalog, SkipsDamagedRecordsAndContinues) {
  std::string corrupted(kIssLine1);
  corrupted[68] = '0';  // break the checksum
  const std::string text = std::string("BAD\n") + corrupted + "\n" + kIssLine2 +
                           "\nGOOD\n" + kIssLine1 + "\n" + kIssLine2 + "\n";
  const TleCatalog catalog = parse_tle_catalog(text);
  ASSERT_EQ(catalog.entries.size(), 1u);
  EXPECT_EQ(catalog.entries[0].name, "GOOD");
  ASSERT_EQ(catalog.errors.size(), 1u);
  EXPECT_NE(catalog.errors[0].find("checksum"), std::string::npos);
}

TEST(TleCatalog, ToleratesCrLfAndBlankLines) {
  const std::string text = std::string("ISS\r\n") + kIssLine1 + "\r\n" + kIssLine2 +
                           "\r\n\r\n";
  const TleCatalog catalog = parse_tle_catalog(text);
  ASSERT_EQ(catalog.entries.size(), 1u) << (catalog.errors.empty() ? "" : catalog.errors[0]);
  EXPECT_EQ(catalog.entries[0].name, "ISS");
}

TEST(TleCatalog, DanglingLineOneReported) {
  const TleCatalog catalog = parse_tle_catalog(std::string(kIssLine1) + "\n");
  EXPECT_TRUE(catalog.entries.empty());
  ASSERT_EQ(catalog.errors.size(), 1u);
}

TEST(TleCatalog, EmptyInputIsEmptyCatalog) {
  const TleCatalog catalog = parse_tle_catalog("");
  EXPECT_TRUE(catalog.entries.empty());
  EXPECT_TRUE(catalog.errors.empty());
}

// Overwrites TLE columns [start_col, start_col+text.size()) (1-based) and
// recomputes the checksum, so validation tests exercise the field checks
// rather than tripping the checksum guard.
std::string with_field(const std::string& line, std::size_t start_col,
                       const std::string& text) {
  std::string out = line;
  out.replace(start_col - 1, text.size(), text);
  out[68] = static_cast<char>('0' + tle_checksum(out));
  return out;
}

bool has_issue_for(const TleParseResult& result, const std::string& field) {
  for (const TleFieldIssue& issue : result.issues) {
    if (issue.field == field) return true;
  }
  return false;
}

TEST(TleValidation, RejectsOutOfRangeInclination) {
  const std::string bad = with_field(kIssLine2, 9, "191.6416");
  const TleParseResult result = parse_tle("", kIssLine1, bad);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_issue_for(result, "inclination_deg")) << result.error;
}

TEST(TleValidation, RejectsOutOfRangeMeanMotion) {
  // 25 rev/day: no bound orbit above the surface revolves that fast.
  const std::string bad = with_field(kIssLine2, 53, "25.72125391");
  const TleParseResult result = parse_tle("", kIssLine1, bad);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_issue_for(result, "mean_motion")) << result.error;
}

TEST(TleValidation, RejectsOutOfRangeRaan) {
  const std::string bad = with_field(kIssLine2, 18, "367.4627");
  const TleParseResult result = parse_tle("", kIssLine1, bad);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_issue_for(result, "raan_deg")) << result.error;
}

TEST(TleValidation, RejectsUnparsableNumericFieldByName) {
  const std::string bad = with_field(kIssLine2, 35, "xxxxxxxx");  // arg of perigee
  const TleParseResult result = parse_tle("", kIssLine1, bad);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_issue_for(result, "arg_perigee_deg")) << result.error;
  EXPECT_NE(result.error.find("arg_perigee_deg"), std::string::npos);
}

TEST(TleValidation, CollectsEveryIssueNotJustTheFirst) {
  std::string bad = with_field(kIssLine2, 9, "191.6416");
  bad = with_field(bad, 53, "25.72125391");
  const TleParseResult result = parse_tle("", kIssLine1, bad);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_issue_for(result, "inclination_deg")) << result.error;
  EXPECT_TRUE(has_issue_for(result, "mean_motion")) << result.error;
  EXPECT_GE(result.issues.size(), 2u);
}

TEST(TleValidation, ChecksumIssueIsStructured) {
  std::string corrupted(kIssLine1);
  corrupted[68] = '0';
  const TleParseResult result = parse_tle("", corrupted, kIssLine2);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_issue_for(result, "line1.checksum")) << result.error;
}

TEST(TleValidation, ValidLineHasNoIssues) {
  const TleParseResult result = parse_tle("", kIssLine1, kIssLine2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.issues.empty());
  EXPECT_TRUE(result.error.empty());
}

}  // namespace
}  // namespace mpleo::orbit
