#include "orbit/elements.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

TEST(Elements, CircularConstructor) {
  const ClassicalElements coe = ClassicalElements::circular(550e3, 53.0, 120.0, 45.0);
  EXPECT_NEAR(coe.semi_major_axis_m, util::kEarthMeanRadiusM + 550e3, 1e-6);
  EXPECT_EQ(coe.eccentricity, 0.0);
  EXPECT_NEAR(util::rad_to_deg(coe.inclination_rad), 53.0, 1e-12);
  EXPECT_NEAR(util::rad_to_deg(coe.raan_rad), 120.0, 1e-12);
  EXPECT_NEAR(util::rad_to_deg(coe.mean_anomaly_rad), 45.0, 1e-12);
}

TEST(Elements, PeriodOfLeoOrbit) {
  // ~550 km circular orbit: period ~ 95.6 minutes.
  const ClassicalElements coe = ClassicalElements::circular(550e3, 53.0, 0.0, 0.0);
  EXPECT_NEAR(coe.period_seconds() / 60.0, 95.6, 0.3);
}

TEST(Elements, PerigeeApogeeAltitudes) {
  ClassicalElements coe;
  coe.semi_major_axis_m = 7000e3;
  coe.eccentricity = 0.01;
  EXPECT_NEAR(coe.perigee_altitude_m(), 7000e3 * 0.99 - util::kEarthMeanRadiusM, 1.0);
  EXPECT_NEAR(coe.apogee_altitude_m(), 7000e3 * 1.01 - util::kEarthMeanRadiusM, 1.0);
}

TEST(ElementsToState, CircularEquatorialAtPerigee) {
  ClassicalElements coe;
  coe.semi_major_axis_m = 7000e3;
  coe.eccentricity = 0.0;
  coe.inclination_rad = 0.0;
  coe.raan_rad = 0.0;
  coe.arg_perigee_rad = 0.0;
  coe.mean_anomaly_rad = 0.0;
  const StateVector s = elements_to_state(coe);
  EXPECT_NEAR(s.position.x, 7000e3, 1e-3);
  EXPECT_NEAR(s.position.y, 0.0, 1e-3);
  EXPECT_NEAR(s.position.z, 0.0, 1e-3);
  // Circular speed = sqrt(mu/a).
  EXPECT_NEAR(s.velocity.norm(), std::sqrt(util::kMuEarth / 7000e3), 1e-6);
  EXPECT_NEAR(s.velocity.y, s.velocity.norm(), 1e-6);  // prograde along +y
}

TEST(ElementsToState, RadiusMatchesConicEquation) {
  ClassicalElements coe;
  coe.semi_major_axis_m = 7200e3;
  coe.eccentricity = 0.05;
  coe.inclination_rad = util::deg_to_rad(53.0);
  coe.raan_rad = util::deg_to_rad(40.0);
  coe.arg_perigee_rad = util::deg_to_rad(30.0);
  coe.mean_anomaly_rad = 0.0;  // at perigee
  const StateVector s = elements_to_state(coe);
  EXPECT_NEAR(s.position.norm(), coe.semi_major_axis_m * (1.0 - coe.eccentricity), 1e-3);
}

TEST(ElementsToState, InclinationBoundsZ) {
  const ClassicalElements coe = ClassicalElements::circular(550e3, 53.0, 10.0, 77.0);
  const StateVector s = elements_to_state(coe);
  const double max_z = s.position.norm() * std::sin(coe.inclination_rad);
  EXPECT_LE(std::fabs(s.position.z), max_z + 1.0);
}

TEST(ElementsToState, VisVivaEnergyHolds) {
  ClassicalElements coe;
  coe.semi_major_axis_m = 6928e3;
  coe.eccentricity = 0.12;
  coe.inclination_rad = util::deg_to_rad(97.6);
  coe.raan_rad = 1.0;
  coe.arg_perigee_rad = 2.0;
  coe.mean_anomaly_rad = 2.5;
  const StateVector s = elements_to_state(coe);
  const double energy = s.velocity.norm_squared() / 2.0 - util::kMuEarth / s.position.norm();
  EXPECT_NEAR(energy, -util::kMuEarth / (2.0 * coe.semi_major_axis_m), 1e-3);
}

TEST(StateToElements, RecoversKnownCircular) {
  const ClassicalElements in = ClassicalElements::circular(550e3, 53.0, 100.0, 200.0);
  const ClassicalElements out = state_to_elements(elements_to_state(in));
  EXPECT_NEAR(out.semi_major_axis_m, in.semi_major_axis_m, 1e-3);
  EXPECT_NEAR(out.eccentricity, 0.0, 1e-9);
  EXPECT_NEAR(out.inclination_rad, in.inclination_rad, 1e-9);
  EXPECT_NEAR(out.raan_rad, in.raan_rad, 1e-9);
}

struct RoundTripCase {
  double a, e, i_deg, raan_deg, argp_deg, m_deg;
};

class StateRoundTripSweep : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(StateRoundTripSweep, StateSurvivesElementRoundTrip) {
  const auto p = GetParam();
  ClassicalElements coe;
  coe.semi_major_axis_m = p.a;
  coe.eccentricity = p.e;
  coe.inclination_rad = util::deg_to_rad(p.i_deg);
  coe.raan_rad = util::deg_to_rad(p.raan_deg);
  coe.arg_perigee_rad = util::deg_to_rad(p.argp_deg);
  coe.mean_anomaly_rad = util::deg_to_rad(p.m_deg);

  const StateVector s1 = elements_to_state(coe);
  const ClassicalElements back = state_to_elements(s1);
  const StateVector s2 = elements_to_state(back);

  const double pos_tol = 1e-4 * s1.position.norm();
  EXPECT_NEAR(s2.position.x, s1.position.x, pos_tol);
  EXPECT_NEAR(s2.position.y, s1.position.y, pos_tol);
  EXPECT_NEAR(s2.position.z, s1.position.z, pos_tol);
  const double vel_tol = 1e-4 * s1.velocity.norm();
  EXPECT_NEAR(s2.velocity.x, s1.velocity.x, vel_tol);
  EXPECT_NEAR(s2.velocity.y, s1.velocity.y, vel_tol);
  EXPECT_NEAR(s2.velocity.z, s1.velocity.z, vel_tol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StateRoundTripSweep,
    ::testing::Values(RoundTripCase{6928e3, 0.0, 53.0, 10.0, 0.0, 45.0},
                      RoundTripCase{6928e3, 0.001, 53.0, 350.0, 90.0, 180.0},
                      RoundTripCase{7150e3, 0.1, 97.6, 200.0, 270.0, 300.0},
                      RoundTripCase{6900e3, 0.0, 0.0, 0.0, 0.0, 120.0},    // equatorial circular
                      RoundTripCase{7000e3, 0.05, 0.0, 0.0, 45.0, 30.0},   // equatorial elliptic
                      RoundTripCase{7000e3, 0.0, 90.0, 60.0, 0.0, 250.0},  // polar circular
                      RoundTripCase{26560e3, 0.6, 63.4, 120.0, 270.0, 10.0}  // Molniya-like
                      ));

}  // namespace
}  // namespace mpleo::orbit
