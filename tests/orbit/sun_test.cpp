#include "orbit/sun.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

TEST(Sun, DirectionIsUnitVector) {
  for (const char* iso : {"2024-03-20T00:00:00Z", "2024-06-20T12:00:00Z",
                          "2024-11-18T00:00:00Z"}) {
    const util::Vec3 s = sun_direction_eci(TimePoint::from_iso8601(iso));
    EXPECT_NEAR(s.norm(), 1.0, 1e-9);
  }
}

TEST(Sun, EquinoxDeclinationNearZero) {
  // Around the March 2024 equinox (Mar 20 ~03:06 UTC) the solar declination
  // crosses zero.
  const util::Vec3 s = sun_direction_eci(TimePoint::from_iso8601("2024-03-20T03:00:00Z"));
  EXPECT_NEAR(util::rad_to_deg(std::asin(s.z)), 0.0, 0.2);
}

TEST(Sun, SolsticeDeclinationExtremes) {
  const util::Vec3 june =
      sun_direction_eci(TimePoint::from_iso8601("2024-06-20T21:00:00Z"));
  EXPECT_NEAR(util::rad_to_deg(std::asin(june.z)), 23.44, 0.1);
  const util::Vec3 december =
      sun_direction_eci(TimePoint::from_iso8601("2024-12-21T09:00:00Z"));
  EXPECT_NEAR(util::rad_to_deg(std::asin(december.z)), -23.44, 0.1);
}

TEST(Eclipse, SunSideNeverEclipsed) {
  const util::Vec3 sun{1.0, 0.0, 0.0};
  EXPECT_FALSE(is_eclipsed({7000e3, 0.0, 0.0}, sun));
  EXPECT_FALSE(is_eclipsed({7000e3, 3000e3, 0.0}, sun));
}

TEST(Eclipse, AntiSolarPointIsEclipsed) {
  const util::Vec3 sun{1.0, 0.0, 0.0};
  EXPECT_TRUE(is_eclipsed({-7000e3, 0.0, 0.0}, sun));
  // Inside the cylinder laterally.
  EXPECT_TRUE(is_eclipsed({-7000e3, 5000e3, 0.0}, sun));
  // Outside the cylinder (lateral offset > Earth radius).
  EXPECT_FALSE(is_eclipsed({-7000e3, 7000e3, 0.0}, sun));
}

TEST(Eclipse, TerminatorPlaneBoundary) {
  const util::Vec3 sun{0.0, 0.0, 1.0};
  // Exactly on the terminator plane counts as sunlit.
  EXPECT_FALSE(is_eclipsed({7000e3, 0.0, 0.0}, sun));
}

TEST(SunlitFraction, LeoOrbitRoughlyTwoThirdsSunlit) {
  // A 550 km LEO spends roughly 60-70% of each orbit in sunlight.
  const TimePoint epoch = TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const KeplerianPropagator prop(
      ClassicalElements::circular(550e3, 53.0, 40.0, 0.0), epoch);
  const TimeGrid grid = TimeGrid::over_duration(epoch, 86400.0, 60.0);
  const double sunlit = sunlit_fraction(prop, grid);
  EXPECT_GT(sunlit, 0.55);
  EXPECT_LT(sunlit, 0.85);
}

TEST(SunlitFraction, DawnDuskSsoMostlySunlit) {
  // A dawn-dusk sun-synchronous orbit rides the terminator and is sunlit
  // almost continuously — more than a mid-inclination orbit.
  const TimePoint epoch = TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const TimeGrid grid = TimeGrid::over_duration(epoch, 86400.0, 60.0);
  const KeplerianPropagator mid(
      ClassicalElements::circular(550e3, 53.0, 40.0, 0.0), epoch);
  // Sweep RAAN to find the most-sunlit SSO plane (dawn-dusk geometry
  // depends on where the sun is at this epoch).
  double best = 0.0;
  for (double raan = 0.0; raan < 360.0; raan += 30.0) {
    const KeplerianPropagator sso(
        ClassicalElements::circular(560e3, 97.6, raan, 0.0), epoch);
    best = std::max(best, sunlit_fraction(sso, grid));
  }
  EXPECT_GT(best, sunlit_fraction(mid, grid));
  EXPECT_GT(best, 0.9);
}

TEST(SunlitFraction, EmptyGridIsZero) {
  const TimePoint epoch;
  const KeplerianPropagator prop(ClassicalElements::circular(550e3, 53.0, 0.0, 0.0),
                                 epoch);
  EXPECT_EQ(sunlit_fraction(prop, TimeGrid{}), 0.0);
}

}  // namespace
}  // namespace mpleo::orbit
