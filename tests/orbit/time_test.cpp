#include "orbit/time.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

TEST(TimePoint, J2000CivilConversion) {
  // J2000.0 = 2000-01-01 12:00:00 TT ~ JD 2451545.0.
  const TimePoint t = TimePoint::from_civil({2000, 1, 1, 12, 0, 0.0});
  EXPECT_DOUBLE_EQ(t.julian_date(), 2451545.0);
}

TEST(TimePoint, KnownJulianDates) {
  // Vallado example: 1996-10-26 14:20:00 -> JD 2450383.09722222.
  const TimePoint t = TimePoint::from_civil({1996, 10, 26, 14, 20, 0.0});
  EXPECT_NEAR(t.julian_date(), 2450383.09722222, 1e-7);
}

TEST(TimePoint, CivilRoundTrip) {
  const CivilTime in{2024, 11, 18, 7, 45, 30.25};
  const TimePoint t = TimePoint::from_civil(in);
  const CivilTime out = t.to_civil();
  EXPECT_EQ(out.year, in.year);
  EXPECT_EQ(out.month, in.month);
  EXPECT_EQ(out.day, in.day);
  EXPECT_EQ(out.hour, in.hour);
  EXPECT_EQ(out.minute, in.minute);
  EXPECT_NEAR(out.second, in.second, 1e-4);
}

TEST(TimePoint, RejectsInvalidCivil) {
  EXPECT_THROW(TimePoint::from_civil({2024, 13, 1, 0, 0, 0.0}), std::invalid_argument);
  EXPECT_THROW(TimePoint::from_civil({2024, 0, 1, 0, 0, 0.0}), std::invalid_argument);
  EXPECT_THROW(TimePoint::from_civil({1400, 1, 1, 0, 0, 0.0}), std::invalid_argument);
}

TEST(TimePoint, Iso8601ParseAndFormat) {
  const TimePoint t = TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const CivilTime c = t.to_civil();
  EXPECT_EQ(c.year, 2024);
  EXPECT_EQ(c.month, 11);
  EXPECT_EQ(c.day, 18);
  EXPECT_EQ(c.hour, 0);
  EXPECT_EQ(t.to_iso8601(), "2024-11-18T00:00:00.000Z");
  EXPECT_THROW(TimePoint::from_iso8601("not a date"), std::invalid_argument);
}

TEST(TimePoint, Iso8601DateOnly) {
  const TimePoint t = TimePoint::from_iso8601("2024-03-05");
  const CivilTime c = t.to_civil();
  EXPECT_EQ(c.day, 5);
  EXPECT_EQ(c.hour, 0);
}

TEST(TimePoint, ArithmeticAndComparison) {
  const TimePoint a = TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const TimePoint b = a.plus_seconds(3600.0);
  EXPECT_NEAR(b.seconds_since(a), 3600.0, 1e-6);
  EXPECT_NEAR(a.seconds_since(b), -3600.0, 1e-6);
  EXPECT_LT(a, b);
  EXPECT_NEAR(a.plus_days(1.0).seconds_since(a), 86400.0, 1e-5);
}

TEST(Gmst, J2000Value) {
  // GMST at J2000.0 epoch is 280.46061837 deg.
  const TimePoint t = TimePoint::from_julian_date(2451545.0);
  EXPECT_NEAR(util::rad_to_deg(gmst_rad(t)), 280.46061837, 1e-6);
}

TEST(Gmst, AdvancesAtSiderealRate) {
  const TimePoint t0 = TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const double g0 = gmst_rad(t0);
  const double g1 = gmst_rad(t0.plus_seconds(3600.0));
  double dg = g1 - g0;
  if (dg < 0.0) dg += util::kTwoPi;
  // One hour of sidereal rotation: ~15.041 deg.
  EXPECT_NEAR(util::rad_to_deg(dg), 15.0410686, 1e-3);
}

TEST(Gmst, FullSiderealDayWrapsAround) {
  const TimePoint t0 = TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const double sidereal_day = 86164.0905;
  const double g0 = gmst_rad(t0);
  const double g1 = gmst_rad(t0.plus_seconds(sidereal_day));
  EXPECT_NEAR(g0, g1, 1e-4);
}

TEST(TimeGrid, OverDuration) {
  const TimePoint start = TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const TimeGrid grid = TimeGrid::over_duration(start, 600.0, 60.0);
  EXPECT_EQ(grid.count, 11u);  // inclusive endpoints at step resolution
  EXPECT_NEAR(grid.at(10).seconds_since(start), 600.0, 1e-6);
  EXPECT_NEAR(grid.duration_seconds(), 660.0, 1e-9);
}

TEST(TimeGrid, RejectsBadInputs) {
  const TimePoint start;
  EXPECT_THROW(TimeGrid::over_duration(start, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(TimeGrid::over_duration(start, -1.0, 60.0), std::invalid_argument);
}

class CivilRoundTripSweep : public ::testing::TestWithParam<CivilTime> {};

TEST_P(CivilRoundTripSweep, RoundTrips) {
  const CivilTime in = GetParam();
  const CivilTime out = TimePoint::from_civil(in).to_civil();
  EXPECT_EQ(out.year, in.year);
  EXPECT_EQ(out.month, in.month);
  EXPECT_EQ(out.day, in.day);
  EXPECT_EQ(out.hour, in.hour);
  EXPECT_EQ(out.minute, in.minute);
  EXPECT_NEAR(out.second, in.second, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Dates, CivilRoundTripSweep,
    ::testing::Values(CivilTime{1999, 12, 31, 23, 59, 59.0}, CivilTime{2000, 2, 29, 0, 0, 0.0},
                      CivilTime{2024, 2, 29, 12, 0, 0.0},   // leap day
                      CivilTime{2024, 11, 18, 0, 0, 0.0},   // paper epoch
                      CivilTime{2100, 1, 1, 6, 30, 15.5},   // 2100 is not a leap year
                      CivilTime{1957, 10, 4, 19, 28, 34.0}  // Sputnik
                      ));

}  // namespace
}  // namespace mpleo::orbit
