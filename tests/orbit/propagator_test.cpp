#include "orbit/propagator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

ClassicalElements leo_orbit() { return ClassicalElements::circular(550e3, 53.0, 30.0, 0.0); }

TEST(TwoBody, StateAtEpochMatchesElements) {
  const ClassicalElements coe = leo_orbit();
  const KeplerianPropagator prop(coe, TimePoint{}, Perturbation::kNone);
  const StateVector direct = elements_to_state(coe);
  const StateVector propagated = prop.state_at_offset(0.0);
  EXPECT_NEAR(propagated.position.x, direct.position.x, 1e-6);
  EXPECT_NEAR(propagated.position.y, direct.position.y, 1e-6);
  EXPECT_NEAR(propagated.position.z, direct.position.z, 1e-6);
}

TEST(TwoBody, ReturnsAfterOnePeriod) {
  const ClassicalElements coe = leo_orbit();
  const KeplerianPropagator prop(coe, TimePoint{}, Perturbation::kNone);
  const StateVector s0 = prop.state_at_offset(0.0);
  const StateVector s1 = prop.state_at_offset(coe.period_seconds());
  EXPECT_NEAR((s1.position - s0.position).norm(), 0.0, 1.0);
}

TEST(TwoBody, EnergyConservedAcrossWeek) {
  ClassicalElements coe = leo_orbit();
  coe.eccentricity = 0.02;
  const KeplerianPropagator prop(coe, TimePoint{}, Perturbation::kNone);
  const double expected = -util::kMuEarth / (2.0 * coe.semi_major_axis_m);
  for (double dt = 0.0; dt <= 7.0 * 86400.0; dt += 86400.0 / 3.0) {
    const StateVector s = prop.state_at_offset(dt);
    const double energy =
        s.velocity.norm_squared() / 2.0 - util::kMuEarth / s.position.norm();
    EXPECT_NEAR(energy, expected, std::fabs(expected) * 1e-9);
  }
}

TEST(TwoBody, AngularMomentumDirectionFixed) {
  const ClassicalElements coe = leo_orbit();
  const KeplerianPropagator prop(coe, TimePoint{}, Perturbation::kNone);
  const StateVector s0 = prop.state_at_offset(0.0);
  const util::Vec3 h0 = cross(s0.position, s0.velocity).normalized();
  for (double dt : {1000.0, 40000.0, 300000.0}) {
    const StateVector s = prop.state_at_offset(dt);
    const util::Vec3 h = cross(s.position, s.velocity).normalized();
    EXPECT_NEAR(dot(h, h0), 1.0, 1e-12);
  }
}

TEST(J2, RatesZeroUnderNoPerturbation) {
  const KeplerianPropagator prop(leo_orbit(), TimePoint{}, Perturbation::kNone);
  EXPECT_EQ(prop.raan_rate(), 0.0);
  EXPECT_EQ(prop.arg_perigee_rate(), 0.0);
}

TEST(J2, NodalRegressionForProgradeOrbit) {
  // Prograde (i < 90 deg): RAAN drifts westward (negative rate).
  const KeplerianPropagator prop(leo_orbit(), TimePoint{});
  EXPECT_LT(prop.raan_rate(), 0.0);
  // Starlink-like orbit: about -5 deg/day.
  const double deg_per_day = util::rad_to_deg(prop.raan_rate()) * 86400.0;
  EXPECT_NEAR(deg_per_day, -5.0, 0.6);
}

TEST(J2, NodalPrecessionForRetrogradeOrbit) {
  // Sun-synchronous (i = 97.6 deg): RAAN advances eastward ~ +1 deg/day.
  const ClassicalElements coe = ClassicalElements::circular(560e3, 97.6, 0.0, 0.0);
  const KeplerianPropagator prop(coe, TimePoint{});
  const double deg_per_day = util::rad_to_deg(prop.raan_rate()) * 86400.0;
  EXPECT_NEAR(deg_per_day, 0.985, 0.1);
}

TEST(J2, PolarOrbitHasNoRegression) {
  const ClassicalElements coe = ClassicalElements::circular(550e3, 90.0, 0.0, 0.0);
  const KeplerianPropagator prop(coe, TimePoint{});
  EXPECT_NEAR(prop.raan_rate(), 0.0, 1e-15);
}

TEST(J2, ElementsDriftLinearly) {
  const KeplerianPropagator prop(leo_orbit(), TimePoint{});
  const double dt = 86400.0;
  const ClassicalElements at_day = prop.elements_at_offset(dt);
  EXPECT_NEAR(at_day.raan_rad,
              util::wrap_two_pi(leo_orbit().raan_rad + prop.raan_rate() * dt), 1e-12);
  // Shape is unchanged (secular J2 only affects angles).
  EXPECT_EQ(at_day.semi_major_axis_m, leo_orbit().semi_major_axis_m);
  EXPECT_EQ(at_day.eccentricity, leo_orbit().eccentricity);
  EXPECT_EQ(at_day.inclination_rad, leo_orbit().inclination_rad);
}

TEST(J2, AltitudePreservedOverWeek) {
  const KeplerianPropagator prop(leo_orbit(), TimePoint{});
  for (double dt : {0.0, 86400.0, 7.0 * 86400.0}) {
    const StateVector s = prop.state_at_offset(dt);
    EXPECT_NEAR(s.position.norm(), util::kEarthMeanRadiusM + 550e3, 100.0);
  }
}

TEST(Propagator, StateAtUsesEpoch) {
  const TimePoint epoch = TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  const KeplerianPropagator prop(leo_orbit(), epoch);
  const StateVector a = prop.state_at(epoch.plus_seconds(1234.0));
  const StateVector b = prop.state_at_offset(1234.0);
  EXPECT_NEAR(a.position.x, b.position.x, 1e-9);
}

TEST(Propagator, NegativeOffsetPropagatesBackwards) {
  const KeplerianPropagator prop(leo_orbit(), TimePoint{}, Perturbation::kNone);
  const StateVector back = prop.state_at_offset(-300.0);
  const StateVector forward = prop.state_at_offset(300.0);
  // Mirror symmetry across the epoch plane for circular orbit.
  EXPECT_NEAR(back.position.norm(), forward.position.norm(), 1e-3);
}

class InclinationSweep : public ::testing::TestWithParam<double> {};

TEST_P(InclinationSweep, RaanRateSignFollowsCosineOfInclination) {
  const double incl = GetParam();
  const ClassicalElements coe = ClassicalElements::circular(550e3, incl, 0.0, 0.0);
  const KeplerianPropagator prop(coe, TimePoint{});
  const double cos_i = std::cos(util::deg_to_rad(incl));
  if (cos_i > 1e-6) {
    EXPECT_LT(prop.raan_rate(), 0.0);
  } else if (cos_i < -1e-6) {
    EXPECT_GT(prop.raan_rate(), 0.0);
  }
  // Mean anomaly rate stays close to the Keplerian mean motion.
  EXPECT_NEAR(prop.mean_anomaly_rate(), coe.mean_motion_rad_per_sec(),
              coe.mean_motion_rad_per_sec() * 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, InclinationSweep,
                         ::testing::Values(0.0, 28.5, 43.0, 53.0, 70.0, 90.0, 97.6, 116.6));

}  // namespace
}  // namespace mpleo::orbit
