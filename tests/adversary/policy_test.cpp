#include "adversary/policy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/validation.hpp"
#include "sim/scenario.hpp"

namespace mpleo::adversary {
namespace {

const std::vector<Behavior> kFullMix = mix_for_mode(sim::AdversaryMode::kMixed);

TEST(BehaviorBook, DefaultAndZeroFractionAreEmpty) {
  EXPECT_TRUE(BehaviorBook().empty());
  EXPECT_TRUE(BehaviorBook::sample(8, 0.0, kFullMix, 1.0, 4, 7).empty());
  EXPECT_TRUE(BehaviorBook::sample(8, 0.5, {}, 1.0, 4, 7).empty());  // empty mix

  const BehaviorBook armed = BehaviorBook::sample(8, 0.5, kFullMix, 1.0, 4, 7);
  EXPECT_FALSE(armed.empty());
  EXPECT_EQ(armed.byzantine_count(), 4u);
}

TEST(BehaviorBook, PartiesBeyondTheBookAreHonest) {
  const BehaviorBook book = BehaviorBook::sample(4, 1.0, kFullMix, 1.0, 4, 7);
  EXPECT_TRUE(book.policy(99).honest());
}

TEST(BehaviorBook, ByzantineCountRoundsFromFraction) {
  EXPECT_EQ(BehaviorBook::sample(8, 0.125, kFullMix, 1.0, 4, 7).byzantine_count(), 1u);
  EXPECT_EQ(BehaviorBook::sample(8, 0.5, kFullMix, 1.0, 4, 7).byzantine_count(), 4u);
  EXPECT_EQ(BehaviorBook::sample(8, 1.0, kFullMix, 1.0, 4, 7).byzantine_count(), 8u);
}

TEST(BehaviorBook, CrnNestingAcrossFractions) {
  // Byzantine sets sampled at increasing fractions from one seed must be
  // nested, with each shared party keeping the same policy — the invariant
  // the adversary sweep's monotonicity is built on.
  const std::vector<double> fractions = {0.125, 0.25, 0.375, 0.5, 1.0};
  constexpr std::size_t kParties = 16;
  std::vector<std::uint8_t> previous(kParties, 0);
  BehaviorBook previous_book;
  for (const double fraction : fractions) {
    const BehaviorBook book =
        BehaviorBook::sample(kParties, fraction, kFullMix, 1.0, 4, 1042);
    const std::vector<std::uint8_t> mask = book.byzantine_mask();
    for (core::PartyId p = 0; p < kParties; ++p) {
      if (previous[p] == 0) continue;
      EXPECT_EQ(mask[p], 1) << "party " << p << " left the set at f=" << fraction;
      EXPECT_EQ(book.policy(p).behavior, previous_book.policy(p).behavior)
          << "party " << p << " changed behavior at f=" << fraction;
    }
    previous = mask;
    previous_book = book;
  }
}

TEST(BehaviorBook, StreamIndependentOfFraction) {
  const BehaviorBook shallow = BehaviorBook::sample(8, 0.125, kFullMix, 1.0, 4, 1042);
  const BehaviorBook deep = BehaviorBook::sample(8, 1.0, kFullMix, 1.0, 4, 1042);
  for (core::PartyId p = 0; p < 8; ++p) {
    for (std::size_t epoch = 0; epoch < 3; ++epoch) {
      util::Xoshiro256PlusPlus a = shallow.stream(p, epoch);
      util::Xoshiro256PlusPlus b = deep.stream(p, epoch);
      EXPECT_EQ(a.next(), b.next()) << "party " << p << " epoch " << epoch;
    }
  }
  // ...but distinct across parties and epochs.
  util::Xoshiro256PlusPlus p0 = deep.stream(0, 0);
  util::Xoshiro256PlusPlus p1 = deep.stream(1, 0);
  util::Xoshiro256PlusPlus e1 = deep.stream(0, 1);
  const std::uint64_t base = p0.next();
  EXPECT_NE(base, p1.next());
  EXPECT_NE(base, e1.next());
}

TEST(BehaviorBook, WithheldFractionsShapeContract) {
  EXPECT_TRUE(BehaviorBook().withheld_fractions(8).empty());

  const std::vector<Behavior> withhold_only = {Behavior::kWithholdCapacity};
  const BehaviorBook book = BehaviorBook::sample(8, 0.25, withhold_only, 1.0, 4, 7);
  const std::vector<double> fractions = book.withheld_fractions(8);
  ASSERT_EQ(fractions.size(), 8u);
  std::size_t nonzero = 0;
  for (core::PartyId p = 0; p < 8; ++p) {
    if (fractions[p] > 0.0) {
      ++nonzero;
      EXPECT_FALSE(book.policy(p).honest());
      EXPECT_DOUBLE_EQ(fractions[p], book.policy(p).withheld_fraction());
    }
  }
  EXPECT_EQ(nonzero, 2u);
}

TEST(PartyPolicy, IntensityScalesWithholdingAndInflation) {
  PartyPolicy policy;
  policy.behavior = Behavior::kWithholdCapacity;
  policy.intensity = 1.0;
  EXPECT_DOUBLE_EQ(policy.withheld_fraction(), 0.5);
  policy.intensity = 4.0;
  EXPECT_DOUBLE_EQ(policy.withheld_fraction(), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(policy.sla_inflation(), 5.0);

  policy.behavior = Behavior::kForgeReceipts;  // non-withholders reserve nothing
  EXPECT_DOUBLE_EQ(policy.withheld_fraction(), 0.0);
}

TEST(BehaviorBook, ColludersPairIntoCoalitions) {
  const std::vector<Behavior> collude_only = {Behavior::kCollude};
  const BehaviorBook book = BehaviorBook::sample(8, 0.5, collude_only, 1.0, 4, 7);
  for (core::PartyId p = 0; p < 8; ++p) {
    const PartyPolicy& policy = book.policy(p);
    if (policy.behavior != Behavior::kCollude) continue;
    EXPECT_NE(policy.coalition, PartyPolicy::kNoCoalition);
    const std::vector<core::PartyId> partners = book.coalition_of(p);
    EXPECT_GE(partners.size(), 1u);
    EXPECT_LE(partners.size(), 2u);
    for (const core::PartyId partner : partners) {
      EXPECT_EQ(book.policy(partner).coalition, policy.coalition);
    }
  }
  // A solo (honest) party's coalition is just itself.
  for (core::PartyId p = 0; p < 8; ++p) {
    if (!book.policy(p).honest()) continue;
    EXPECT_EQ(book.coalition_of(p), std::vector<core::PartyId>{p});
  }
}

TEST(BehaviorBook, ValidatesInputs) {
  EXPECT_THROW((void)BehaviorBook::sample(8, -0.1, kFullMix, 1.0, 4, 7),
               core::ValidationError);
  EXPECT_THROW((void)BehaviorBook::sample(8, 1.1, kFullMix, 1.0, 4, 7),
               core::ValidationError);
  EXPECT_THROW((void)BehaviorBook::sample(8, 0.5, kFullMix, -1.0, 4, 7),
               core::ValidationError);

  PartyPolicy bad;
  bad.intensity = -2.0;
  EXPECT_THROW(BehaviorBook({bad}), core::ValidationError);
}

TEST(MixForMode, CoversEveryMode) {
  EXPECT_TRUE(mix_for_mode(sim::AdversaryMode::kOff).empty());
  EXPECT_EQ(mix_for_mode(sim::AdversaryMode::kForge),
            std::vector<Behavior>{Behavior::kForgeReceipts});
  EXPECT_EQ(mix_for_mode(sim::AdversaryMode::kInflate),
            std::vector<Behavior>{Behavior::kInflateReceipts});
  EXPECT_EQ(mix_for_mode(sim::AdversaryMode::kWithhold),
            std::vector<Behavior>{Behavior::kWithholdCapacity});
  EXPECT_EQ(mix_for_mode(sim::AdversaryMode::kMisreport),
            std::vector<Behavior>{Behavior::kMisreportSla});
  EXPECT_EQ(mix_for_mode(sim::AdversaryMode::kCollude),
            std::vector<Behavior>{Behavior::kCollude});
  EXPECT_EQ(mix_for_mode(sim::AdversaryMode::kMixed).size(), 5u);
}

TEST(Behavior, ToStringCoversAllBehaviors) {
  EXPECT_STREQ(to_string(Behavior::kHonest), "honest");
  EXPECT_STREQ(to_string(Behavior::kForgeReceipts), "forge_receipts");
  EXPECT_STREQ(to_string(Behavior::kInflateReceipts), "inflate_receipts");
  EXPECT_STREQ(to_string(Behavior::kWithholdCapacity), "withhold_capacity");
  EXPECT_STREQ(to_string(Behavior::kMisreportSla), "misreport_sla");
  EXPECT_STREQ(to_string(Behavior::kCollude), "collude");
}

}  // namespace
}  // namespace mpleo::adversary
