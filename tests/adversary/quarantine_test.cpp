#include "adversary/quarantine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/validation.hpp"
#include "obs/metrics.hpp"

namespace mpleo::adversary {
namespace {

// Drives the trust ladder with synthetic fraud evidence: each
// audit_sla_claim overclaim is exactly one fraud event, so tests control the
// per-epoch evidence stream without orbital geometry.
struct QuarantineFixture {
  QuarantineConfig config;
  core::Consortium consortium;
  core::Ledger ledger;
  std::vector<core::AccountId> accounts;
  ReceiptAuditor auditor{AuditConfig{}, /*party_count=*/2};
  core::ReputationTracker reputation{2};

  QuarantineFixture() {
    config.suspect_threshold = 1;
    config.quarantine_threshold = 4;
    config.expel_after_quarantined_epochs = 2;
    config.reinstate_after_clean_epochs = 2;
    config.stake_slash_fraction = 0.5;
    for (int p = 0; p < 2; ++p) {
      core::Party party;
      party.name = "party-" + std::to_string(p);
      (void)consortium.add_party(party);
      accounts.push_back(ledger.open_account(party.name));
    }
    ledger.mint(200.0);
    EXPECT_TRUE(ledger.transfer(core::Ledger::kTreasury, accounts[0], 80.0, "stake"));
    EXPECT_TRUE(ledger.transfer(core::Ledger::kTreasury, accounts[1], 80.0, "stake"));
  }

  void inject_fraud(core::PartyId party, std::uint64_t events) {
    for (std::uint64_t i = 0; i < events; ++i) {
      ASSERT_TRUE(auditor.audit_sla_claim(party, 1000.0, 1.0));
    }
  }

  void observe(QuarantineManager& manager, std::size_t epoch) {
    manager.observe_epoch(epoch, auditor, ledger, accounts, consortium, &reputation);
  }
};

TEST(QuarantineManager, CleanPartiesStayTrusted) {
  QuarantineFixture fx;
  QuarantineManager manager(fx.config, 2);
  for (std::size_t epoch = 0; epoch < 3; ++epoch) fx.observe(manager, epoch);
  EXPECT_EQ(manager.state(0), TrustState::kTrusted);
  EXPECT_EQ(manager.state(1), TrustState::kTrusted);
  EXPECT_EQ(manager.spare_exclusion(), (std::vector<std::uint8_t>{0, 0}));
  EXPECT_DOUBLE_EQ(manager.total_slashed(), 0.0);
}

TEST(QuarantineManager, FreshEvidenceSuspects) {
  QuarantineFixture fx;
  QuarantineManager manager(fx.config, 2);
  fx.inject_fraud(0, 1);
  fx.observe(manager, 0);
  EXPECT_EQ(manager.state(0), TrustState::kSuspected);
  EXPECT_EQ(manager.state(1), TrustState::kTrusted);
  EXPECT_EQ(manager.record(0).first_fraud_epoch, 0u);
  // Suspicion alone does not sanction.
  EXPECT_EQ(fx.consortium.party_status(0), core::PartyStatus::kActive);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.accounts[0]), 80.0);
}

TEST(QuarantineManager, CumulativeEvidenceQuarantinesAndSlashes) {
  QuarantineFixture fx;
  obs::MetricsRegistry metrics;
  QuarantineManager manager(fx.config, 2, &metrics);
  fx.inject_fraud(0, 1);
  fx.observe(manager, 0);  // suspected
  fx.inject_fraud(0, 3);   // cumulative 4 >= threshold
  fx.observe(manager, 1);

  EXPECT_EQ(manager.state(0), TrustState::kQuarantined);
  EXPECT_EQ(fx.consortium.party_status(0), core::PartyStatus::kQuarantined);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.accounts[0]), 40.0);  // 50% slashed
  EXPECT_DOUBLE_EQ(manager.total_slashed(), 40.0);
  EXPECT_DOUBLE_EQ(manager.record(0).slashed_total, 40.0);
  EXPECT_EQ(manager.quarantined_count(), 1u);
  EXPECT_EQ(manager.spare_exclusion(), (std::vector<std::uint8_t>{1, 0}));
  // First evidence epoch 0, quarantined epoch 1.
  EXPECT_DOUBLE_EQ(manager.mean_detection_epochs(), 1.0);
  EXPECT_EQ(metrics.counter_value("quarantine.quarantined"), 1u);
  // The slash moved value, never destroyed it.
  EXPECT_DOUBLE_EQ(fx.ledger.sum_of_balances(), fx.ledger.total_minted());
}

TEST(QuarantineManager, BurstEvidenceQuarantinesInOneEpoch) {
  QuarantineFixture fx;
  QuarantineManager manager(fx.config, 2);
  fx.inject_fraud(0, 5);  // >= quarantine_threshold at once
  fx.observe(manager, 0);
  EXPECT_EQ(manager.state(0), TrustState::kQuarantined);
  EXPECT_DOUBLE_EQ(manager.mean_detection_epochs(), 0.0);
}

TEST(QuarantineManager, PersistentFraudExpels) {
  QuarantineFixture fx;
  QuarantineManager manager(fx.config, 2);
  fx.inject_fraud(0, 4);
  fx.observe(manager, 0);  // quarantined
  fx.inject_fraud(0, 1);
  fx.observe(manager, 1);  // fraud epoch 1 of 2 while quarantined
  EXPECT_EQ(manager.state(0), TrustState::kQuarantined);
  fx.inject_fraud(0, 1);
  fx.observe(manager, 2);  // fraud epoch 2 -> expelled

  EXPECT_EQ(manager.state(0), TrustState::kExpelled);
  EXPECT_EQ(fx.consortium.party_status(0), core::PartyStatus::kWithdrawn);
  EXPECT_EQ(manager.expelled_count(), 1u);
  EXPECT_EQ(manager.quarantined_count(), 0u);
  // Terminal: further clean epochs never reinstate.
  for (std::size_t epoch = 3; epoch < 8; ++epoch) fx.observe(manager, epoch);
  EXPECT_EQ(manager.state(0), TrustState::kExpelled);
}

TEST(QuarantineManager, CleanQuarantineReinstatesOnProbation) {
  QuarantineFixture fx;
  QuarantineManager manager(fx.config, 2);
  fx.inject_fraud(0, 4);
  fx.observe(manager, 0);  // quarantined
  fx.observe(manager, 1);  // clean 1 of 2
  EXPECT_EQ(manager.state(0), TrustState::kQuarantined);
  fx.observe(manager, 2);  // clean 2 -> reinstated

  EXPECT_EQ(manager.state(0), TrustState::kSuspected);  // probation, not absolution
  EXPECT_EQ(fx.consortium.party_status(0), core::PartyStatus::kActive);
  EXPECT_EQ(manager.record(0).fraud_seen, 0u);  // evidence counter reset

  // A relapse must re-run the full escalation from the reset counter.
  fx.inject_fraud(0, 1);
  fx.observe(manager, 3);
  EXPECT_EQ(manager.state(0), TrustState::kSuspected);
  fx.inject_fraud(0, 3);
  fx.observe(manager, 4);
  EXPECT_EQ(manager.state(0), TrustState::kQuarantined);
}

TEST(QuarantineManager, FraudPenalisesReputation) {
  QuarantineFixture fx;
  QuarantineManager manager(fx.config, 2);
  const double before = fx.reputation.score(0);
  fx.inject_fraud(0, 2);
  fx.observe(manager, 0);
  EXPECT_LT(fx.reputation.score(0), before);
  EXPECT_DOUBLE_EQ(fx.reputation.score(1), before);
}

TEST(QuarantineManager, ValidatesConfigAndBounds) {
  QuarantineConfig bad;
  bad.stake_slash_fraction = 1.5;
  EXPECT_THROW(QuarantineManager(bad, 2), core::ValidationError);

  QuarantineManager manager(QuarantineConfig{}, 2);
  EXPECT_THROW((void)manager.state(99), std::out_of_range);
}

TEST(TrustState, ToStringCoversAllStates) {
  EXPECT_STREQ(to_string(TrustState::kTrusted), "trusted");
  EXPECT_STREQ(to_string(TrustState::kSuspected), "suspected");
  EXPECT_STREQ(to_string(TrustState::kQuarantined), "quarantined");
  EXPECT_STREQ(to_string(TrustState::kExpelled), "expelled");
}

}  // namespace
}  // namespace mpleo::adversary
