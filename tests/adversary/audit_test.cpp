#include "adversary/audit.hpp"

#include <gtest/gtest.h>

#include "core/proof_of_coverage.hpp"
#include "core/validation.hpp"
#include "obs/metrics.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/propagator.hpp"

namespace mpleo::adversary {
namespace {

using core::CoverageReceipt;
using core::ProofOfCoverage;
using core::ReceiptVerdict;

// Same controlled geometry as the proof-of-coverage tests: an equatorial
// satellite with one verifier at its sub-satellite point and one it can
// never see.
struct AuditFixture {
  ProofOfCoverage poc{ProofOfCoverage::Config{}};
  constellation::Satellite satellite;
  std::uint64_t key = 0;
  std::uint32_t overhead_verifier = 0;
  std::uint32_t far_verifier = 0;
  orbit::TimePoint epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  core::Ledger ledger;
  core::AccountId owner = 0;
  ReceiptAuditor auditor{AuditConfig{}, /*party_count=*/2};

  AuditFixture() {
    satellite.id = 7;
    satellite.elements = orbit::ClassicalElements::circular(550e3, 0.0, 0.0, 0.0);
    satellite.epoch = epoch;
    key = poc.register_satellite(satellite, /*consortium_seed=*/1234);
    const orbit::KeplerianPropagator prop(satellite.elements, epoch);
    const auto ecef = orbit::eci_to_ecef(prop.state_at(epoch).position, epoch);
    const orbit::Geodetic below = orbit::ecef_to_geodetic(ecef);
    overhead_verifier =
        poc.register_verifier({below.latitude_rad, below.longitude_rad, 0.0});
    far_verifier = poc.register_verifier(
        orbit::Geodetic::from_degrees(-60.0, below.longitude_rad > 0 ? -120.0 : 120.0));
    ledger.mint(100.0);
    owner = ledger.open_account("party-0");
    auditor.set_audit_grid(orbit::TimeGrid::over_duration(epoch, 3600.0, 60.0));
  }

  [[nodiscard]] CoverageReceipt receipt(std::uint32_t verifier,
                                        std::uint64_t nonce) const {
    return ProofOfCoverage::answer_challenge(satellite.id, key, verifier, epoch, nonce);
  }
};

TEST(ReceiptAuditor, ValidReceiptCreditsThroughLedger) {
  AuditFixture fx;
  const ReceiptVerdict verdict = fx.auditor.audit_and_credit(
      fx.poc, fx.receipt(fx.overhead_verifier, 1), /*owner_party=*/0, fx.ledger,
      fx.owner);
  EXPECT_EQ(verdict, ReceiptVerdict::kValid);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.owner), fx.poc.config().reward_per_receipt);
  const PartyAuditStats& stats = fx.auditor.stats(0);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.credited, 1u);
  EXPECT_EQ(stats.fraud_total(), 0u);
}

TEST(ReceiptAuditor, ForgedDigestIsFraudUnderEitherProvenance) {
  AuditFixture fx;
  CoverageReceipt forged = fx.receipt(fx.overhead_verifier, 2);
  forged.digest ^= 1;
  EXPECT_EQ(fx.auditor.audit_and_credit(fx.poc, forged, 0, fx.ledger, fx.owner,
                                        ReceiptProvenance::kChallenge),
            ReceiptVerdict::kBadDigest);
  EXPECT_EQ(fx.auditor.audit_and_credit(fx.poc, forged, 0, fx.ledger, fx.owner,
                                        ReceiptProvenance::kSubmission),
            ReceiptVerdict::kBadDigest);
  EXPECT_EQ(fx.auditor.stats(0).rejected_digest, 2u);
  EXPECT_EQ(fx.auditor.stats(0).fraud_total(), 2u);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.owner), 0.0);
}

TEST(ReceiptAuditor, GeometryMissFraudOnlyWhenUnsolicited) {
  // A challenge answered at an unlucky time is the verifier's mistimed ping;
  // the SAME receipt as a party-initiated submission is a coverage lie.
  AuditFixture fx;
  const CoverageReceipt lie = fx.receipt(fx.far_verifier, 3);
  EXPECT_EQ(fx.auditor.audit_and_credit(fx.poc, lie, 0, fx.ledger, fx.owner,
                                        ReceiptProvenance::kChallenge),
            ReceiptVerdict::kNotOverhead);
  EXPECT_EQ(fx.auditor.stats(0).fraud_total(), 0u);

  EXPECT_EQ(fx.auditor.audit_and_credit(fx.poc, lie, 0, fx.ledger, fx.owner,
                                        ReceiptProvenance::kSubmission),
            ReceiptVerdict::kNotOverhead);
  const PartyAuditStats& stats = fx.auditor.stats(0);
  EXPECT_EQ(stats.rejected_geometry, 2u);
  EXPECT_EQ(stats.unsolicited_geometry, 1u);
  EXPECT_EQ(stats.fraud_total(), 1u);
}

TEST(ReceiptAuditor, ResubmissionIsDuplicateFraud) {
  AuditFixture fx;
  const CoverageReceipt receipt = fx.receipt(fx.overhead_verifier, 4);
  EXPECT_EQ(fx.auditor.audit_and_credit(fx.poc, receipt, 0, fx.ledger, fx.owner),
            ReceiptVerdict::kValid);
  EXPECT_EQ(fx.auditor.audit_and_credit(fx.poc, receipt, 0, fx.ledger, fx.owner,
                                        ReceiptProvenance::kSubmission),
            ReceiptVerdict::kDuplicate);
  EXPECT_DOUBLE_EQ(fx.ledger.balance(fx.owner), fx.poc.config().reward_per_receipt);
  EXPECT_EQ(fx.auditor.stats(0).rejected_duplicate, 1u);
  EXPECT_EQ(fx.auditor.stats(0).fraud_total(), 1u);
}

TEST(ReceiptAuditor, PrescreenFlagsImpossibleClaims) {
  AuditFixture fx;
  (void)fx.auditor.audit_and_credit(fx.poc, fx.receipt(fx.far_verifier, 5), 0,
                                    fx.ledger, fx.owner,
                                    ReceiptProvenance::kSubmission);
  EXPECT_GE(fx.auditor.stats(0).prescreen_flagged, 1u);
  // Prescreen and exact geometry agreed here: both said not-overhead.
  EXPECT_EQ(fx.auditor.stats(0).prescreen_mismatches, 0u);
}

TEST(ReceiptAuditor, StatsAttributedPerParty) {
  AuditFixture fx;
  CoverageReceipt forged = fx.receipt(fx.overhead_verifier, 6);
  forged.digest ^= 1;
  (void)fx.auditor.audit_and_credit(fx.poc, forged, /*owner_party=*/1, fx.ledger,
                                    fx.owner);
  EXPECT_EQ(fx.auditor.stats(0).submitted, 0u);
  EXPECT_EQ(fx.auditor.stats(1).submitted, 1u);
  EXPECT_EQ(fx.auditor.stats(1).fraud_total(), 1u);
  EXPECT_EQ(fx.auditor.totals().submitted, 1u);
}

TEST(ReceiptAuditor, SlaClaimsCheckedAgainstGroundTruth) {
  AuditFixture fx;
  EXPECT_FALSE(fx.auditor.audit_sla_claim(0, 100.0, 100.0));
  EXPECT_FALSE(fx.auditor.audit_sla_claim(0, 104.0, 100.0));  // within tolerance
  EXPECT_TRUE(fx.auditor.audit_sla_claim(0, 120.0, 100.0));
  EXPECT_EQ(fx.auditor.stats(0).sla_misreports, 1u);
  EXPECT_EQ(fx.auditor.stats(0).fraud_total(), 1u);
}

TEST(ReceiptAuditor, MetricsInstrumentationCounts) {
  obs::MetricsRegistry metrics;
  AuditFixture fx;
  fx.auditor.set_metrics(&metrics);
  (void)fx.auditor.audit_and_credit(fx.poc, fx.receipt(fx.overhead_verifier, 7), 0,
                                    fx.ledger, fx.owner);
  CoverageReceipt forged = fx.receipt(fx.overhead_verifier, 8);
  forged.digest ^= 1;
  (void)fx.auditor.audit_and_credit(fx.poc, forged, 0, fx.ledger, fx.owner);
  EXPECT_EQ(metrics.counter_value("audit.receipts_submitted"), 2u);
  EXPECT_EQ(metrics.counter_value("audit.receipts_credited"), 1u);
  EXPECT_EQ(metrics.counter_value("audit.fraud_detected"), 1u);
}

TEST(ReceiptAuditor, ValidatesConfigAndPartyBounds) {
  AuditConfig bad;
  bad.sla_tolerance = -0.1;
  EXPECT_THROW(ReceiptAuditor(bad, 2), core::ValidationError);

  AuditFixture fx;
  EXPECT_THROW((void)fx.auditor.stats(99), std::out_of_range);
}

}  // namespace
}  // namespace mpleo::adversary
