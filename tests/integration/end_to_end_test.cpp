// Integration tests: the full MP-LEO stack — consortium membership,
// bent-pipe scheduling, settlement, proof-of-coverage, withdrawal — wired
// together the way the examples and benches use it.
#include <gtest/gtest.h>

#include <numeric>

#include "core/mpleo.hpp"

namespace mpleo {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

class MpLeoStack : public ::testing::Test {
 protected:
  MpLeoStack() {
    // Two parties: Taiwan contributes a 12-sat shell slice, KoreaISP 6 sats
    // in a different plane.
    core::Party taiwan;
    taiwan.name = "Taiwan";
    taiwan.kind = core::PartyKind::kCountry;
    taiwan.home_region = orbit::Geodetic::from_degrees(25.03, 121.56);
    taiwan_ = consortium_.add_party(taiwan);

    core::Party korea;
    korea.name = "KoreaISP";
    korea.kind = core::PartyKind::kCompany;
    korea.objective = core::Objective::kProfit;
    korea.home_region = orbit::Geodetic::from_degrees(37.57, 126.98);
    korea_ = consortium_.add_party(korea);

    consortium_.contribute(taiwan_,
                           constellation::single_plane(550e3, 53.0, 0.0, 12, kEpoch));
    consortium_.contribute(korea_,
                           constellation::single_plane(550e3, 53.0, 90.0, 6, kEpoch, 15.0));
  }

  core::Consortium consortium_;
  core::PartyId taiwan_ = 0;
  core::PartyId korea_ = 0;
};

TEST_F(MpLeoStack, StakesReflectContributions) {
  EXPECT_EQ(consortium_.active_satellite_count(), 18u);
  EXPECT_NEAR(consortium_.stake(taiwan_), 12.0 / 18.0, 1e-12);
  EXPECT_NEAR(consortium_.stake(korea_), 6.0 / 18.0, 1e-12);
  EXPECT_EQ(consortium_.largest_party(), taiwan_);
}

TEST_F(MpLeoStack, ScheduleSettleAndAudit) {
  // Terminals and ground stations for both parties near their home regions.
  std::vector<net::Terminal> terminals;
  net::Terminal t0;
  t0.id = 0;
  t0.location = orbit::Geodetic::from_degrees(25.0, 121.5);
  t0.owner_party = taiwan_;
  t0.radio = net::default_user_terminal();
  terminals.push_back(t0);
  net::Terminal t1 = t0;
  t1.id = 1;
  t1.location = orbit::Geodetic::from_degrees(37.5, 127.0);
  t1.owner_party = korea_;
  terminals.push_back(t1);

  std::vector<net::GroundStation> stations;
  net::GroundStation g0;
  g0.id = 0;
  g0.location = orbit::Geodetic::from_degrees(24.8, 121.0);
  g0.owner_party = taiwan_;
  g0.radio = net::default_ground_station();
  stations.push_back(g0);
  net::GroundStation g1 = g0;
  g1.id = 1;
  g1.location = orbit::Geodetic::from_degrees(37.4, 127.1);
  g1.owner_party = korea_;
  stations.push_back(g1);

  const net::BentPipeScheduler scheduler(net::SchedulerConfig{},
                                         consortium_.active_satellites(), terminals,
                                         stations);
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 120.0);
  const net::ScheduleResult usage = scheduler.run(grid, consortium_.parties().size());

  // Both parties got some service across a day.
  const auto& taiwan_usage = usage.per_party[taiwan_];
  const auto& korea_usage = usage.per_party[korea_];
  EXPECT_GT(taiwan_usage.own_link_seconds + taiwan_usage.spare_used_seconds, 0.0);
  EXPECT_GT(korea_usage.own_link_seconds + korea_usage.spare_used_seconds, 0.0);

  // Settle through the ledger.
  core::Ledger ledger;
  ledger.mint(10000.0);
  std::vector<core::AccountId> accounts;
  for (const core::Party& p : consortium_.parties()) {
    accounts.push_back(ledger.open_account(p.name));
    ASSERT_TRUE(ledger.reward(accounts.back(), 1000.0));
  }
  core::SettlementConfig cfg;
  const core::SettlementReport report = settle(usage, accounts, cfg, ledger);
  EXPECT_EQ(report.failed_transfers, 0u);

  // Payments conserve tokens.
  EXPECT_NEAR(ledger.sum_of_balances(), ledger.total_minted(), 1e-6);

  // Whoever used spare capacity paid; whoever provided it earned.
  for (std::size_t p = 0; p < usage.per_party.size(); ++p) {
    if (usage.per_party[p].spare_used_seconds > 0.0) {
      EXPECT_GT(report.per_party[p].paid, 0.0) << "party " << p;
    }
    if (usage.per_party[p].spare_provided_seconds > 0.0 && report.total_cleared > 0.0) {
      EXPECT_GT(report.per_party[p].earned, 0.0) << "party " << p;
    }
  }
}

TEST_F(MpLeoStack, WithdrawalDegradesProportionallyNotTotally) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 120.0);
  const cov::CoverageEngine engine(grid, 25.0);
  const auto sites = cov::sites_from_cities(cov::paper_cities());

  const double before =
      engine.weighted_coverage_seconds(consortium_.active_satellites(), sites);
  consortium_.withdraw_party(korea_);
  const double after =
      engine.weighted_coverage_seconds(consortium_.active_satellites(), sites);

  EXPECT_GT(before, 0.0);
  EXPECT_LE(after, before);
  // Robustness: the network survives the exit (coverage does not collapse
  // below the remaining stake share of the original).
  EXPECT_GT(after, 0.3 * before);
}

TEST_F(MpLeoStack, ProofOfCoverageEarnsOnlyForRealCoverage) {
  core::ProofOfCoverage poc{core::ProofOfCoverage::Config{}};
  core::Ledger ledger;
  ledger.mint(100.0);
  const core::AccountId owner = ledger.open_account("Taiwan");

  const auto sats = consortium_.party_satellites(taiwan_);
  const auto key = poc.register_satellite(sats.front(), 42);

  // Verifier directly under the satellite at epoch.
  const orbit::KeplerianPropagator prop(sats.front().elements, sats.front().epoch);
  const auto ecef = orbit::eci_to_ecef(prop.state_at(kEpoch).position, kEpoch);
  const auto below = orbit::ecef_to_geodetic(ecef);
  const auto verifier =
      poc.register_verifier({below.latitude_rad, below.longitude_rad, 0.0});

  const auto receipt =
      core::ProofOfCoverage::answer_challenge(sats.front().id, key, verifier, kEpoch, 99);
  EXPECT_EQ(poc.verify_and_reward(receipt, ledger, owner),
            core::ReceiptVerdict::kValid);
  EXPECT_GT(ledger.balance(owner), 0.0);

  // Six hours later the satellite is elsewhere; the same claim must fail.
  const auto stale = core::ProofOfCoverage::answer_challenge(
      sats.front().id, key, verifier, kEpoch.plus_seconds(6 * 3600.0), 100);
  EXPECT_EQ(poc.verify(stale), core::ReceiptVerdict::kNotOverhead);
}

TEST_F(MpLeoStack, MarketClearsSpareCapacityBetweenParties) {
  core::Ledger ledger;
  ledger.mint(1000.0);
  const auto taiwan_acct = ledger.open_account("Taiwan");
  const auto korea_acct = ledger.open_account("KoreaISP");
  ASSERT_TRUE(ledger.reward(korea_acct, 400.0));

  core::CapacityMarket market;
  // Taiwan (more satellites) offers spare capacity; Korea buys.
  market.post_ask({taiwan_, taiwan_acct, 50.0, 3.0});
  market.post_bid({korea_, korea_acct, 20.0, 5.0});
  const core::ClearingResult result = market.clear(ledger);

  ASSERT_EQ(result.trades.size(), 1u);
  EXPECT_TRUE(result.trades.front().settled);
  EXPECT_DOUBLE_EQ(result.cleared_gb, 20.0);
  EXPECT_DOUBLE_EQ(ledger.balance(taiwan_acct), 20.0 * 4.0);
  EXPECT_DOUBLE_EQ(result.unmatched_supply_gb, 30.0);
}

TEST(EndToEnd, TlePipelineFeedsCoverageEngine) {
  // Elements -> TLE text -> parse -> coverage, as a real deployment would
  // ingest a published catalog.
  const auto coe = orbit::ClassicalElements::circular(550e3, 53.0, 120.0, 40.0);
  const orbit::Tle tle = orbit::Tle::from_elements(coe, kEpoch, 70001, "MPLEO-1");
  const orbit::TleLines lines = orbit::format_tle(tle);
  const orbit::TleParseResult parsed = orbit::parse_tle("MPLEO-1", lines.line1, lines.line2);
  ASSERT_TRUE(parsed.ok) << parsed.error;

  constellation::Satellite sat;
  sat.name = parsed.tle.name;
  sat.elements = parsed.tle.to_elements();
  sat.epoch = parsed.tle.epoch;

  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);

  // Compare coverage from the TLE round-trip against the original elements.
  constellation::Satellite original;
  original.elements = coe;
  original.epoch = kEpoch;
  const orbit::TopocentricFrame taipei_frame(cov::taipei().location);
  const auto mask_tle = engine.visibility_mask(sat, taipei_frame);
  const auto mask_orig = engine.visibility_mask(original, taipei_frame);
  // TLE fields quantise elements slightly; pass structure must agree within
  // a couple of steps per pass.
  const auto diff = static_cast<double>(mask_tle.count()) -
                    static_cast<double>(mask_orig.count());
  EXPECT_LE(std::abs(diff), 6.0);
  EXPECT_GT(mask_orig.count(), 0u);
}

}  // namespace
}  // namespace mpleo
