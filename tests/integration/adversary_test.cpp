// Byzantine-robustness integration: the acceptance contracts of the
// adversary subsystem against the full campaign stack.
//
//   * Bit-identity: arming with an empty BehaviorBook leaves the campaign
//     bit-identical to never arming — same ledger entries, same allocations,
//     same scheduler output (the adversary analogue of
//     FaultTimeline::empty()).
//   * Detection: with a pinned seed, audited fraud evidence is at least the
//     injected fraud — no Byzantine submission slips through un-verdicted.
//   * Sanctions bite: a quarantined party draws zero spare capacity and is
//     withheld from emission until reinstated.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "constellation/shell.hpp"
#include "core/campaign.hpp"
#include "sim/run_context.hpp"

namespace mpleo::core {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

const std::vector<adversary::Behavior> kFullMix =
    adversary::mix_for_mode(sim::AdversaryMode::kMixed);

// Four parties so a 0.5 Byzantine fraction arms two of them; geometry and
// epochs mirror the campaign suite (6 h epochs, 180 s steps keep it fast).
struct AdversaryCampaignFixture : public ::testing::Test {
  AdversaryCampaignFixture() {
    for (std::uint32_t p = 0; p < 4; ++p) {
      Party party;
      party.name = std::string("party-") + static_cast<char>('A' + p);
      parties.push_back(consortium.add_party(party));
      consortium.contribute(
          parties.back(),
          constellation::single_plane(550e3 + 10e3 * p, 53.0, 90.0 * p, 4, kEpoch,
                                      10.0 * p));
    }
    const double lats[] = {25.0, 37.5, -33.9, 51.5};
    const double lons[] = {121.5, 127.0, 18.4, -0.1};
    for (std::uint32_t p = 0; p < 4; ++p) {
      net::Terminal t;
      t.id = static_cast<net::TerminalId>(p);
      t.location = orbit::Geodetic::from_degrees(lats[p], lons[p]);
      t.owner_party = p;
      t.radio = net::default_user_terminal();
      terminals.push_back(t);
      net::GroundStation gs;
      gs.id = static_cast<net::GroundStationId>(p);
      gs.location = orbit::Geodetic::from_degrees(lats[p] - 0.2, lons[p] - 0.3);
      gs.owner_party = p;
      gs.radio = net::default_ground_station();
      stations.push_back(gs);
    }
    config.epoch_duration_s = 6.0 * 3600.0;
    config.step_s = 180.0;
  }

  [[nodiscard]] Campaign make_campaign(std::uint64_t seed = 7) {
    Consortium copy = consortium;
    return Campaign(std::move(copy), terminals, stations, config, seed);
  }

  Consortium consortium;
  std::vector<PartyId> parties;
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  CampaignConfig config;
};

TEST_F(AdversaryCampaignFixture, EmptyBookIsBitIdenticalToUnarmed) {
  sim::RunContext context;
  Campaign plain = make_campaign();
  Campaign armed = make_campaign();
  armed.arm_adversaries(adversary::BehaviorBook());
  ASSERT_TRUE(armed.armed());

  for (int e = 0; e < 2; ++e) {
    const EpochReport rp = plain.run_epoch(context);
    const EpochReport ra = armed.run_epoch(context);
    // Scheduler output, settlement, PoC verdicts and balances all identical.
    EXPECT_EQ(rp.usage, ra.usage);
    EXPECT_EQ(rp.balances, ra.balances);
    EXPECT_EQ(rp.poc_valid, ra.poc_valid);
    EXPECT_EQ(rp.poc_rejected, ra.poc_rejected);
    EXPECT_DOUBLE_EQ(rp.total_served_seconds, ra.total_served_seconds);
    EXPECT_DOUBLE_EQ(rp.emission_minted, ra.emission_minted);
    // The armed report carries a (all-quiet) summary; the plain one none.
    EXPECT_FALSE(rp.adversary.has_value());
    ASSERT_TRUE(ra.adversary.has_value());
    EXPECT_EQ(*ra.adversary, AdversaryEpochSummary{});
  }
  // The strongest check: every ledger entry, bit for bit.
  EXPECT_EQ(plain.ledger(), armed.ledger());
}

TEST_F(AdversaryCampaignFixture, ZeroFractionSampleIsAlsoIdentical) {
  sim::RunContext context;
  Campaign plain = make_campaign();
  Campaign armed = make_campaign();
  armed.arm_adversaries(
      adversary::BehaviorBook::sample(4, 0.0, kFullMix, 1.0, 4, 1042));
  (void)plain.run_epoch(context);
  (void)armed.run_epoch(context);
  EXPECT_EQ(plain.ledger(), armed.ledger());
}

TEST_F(AdversaryCampaignFixture, DetectionCoversInjectionAtPinnedSeed) {
  sim::RunContext context;
  Campaign campaign = make_campaign(/*seed=*/1042);
  campaign.arm_adversaries(
      adversary::BehaviorBook::sample(4, 0.5, kFullMix, 1.0, 6, 1042));

  std::size_t injected = 0;
  std::size_t detected = 0;
  for (int e = 0; e < 3; ++e) {
    const EpochReport report = campaign.run_epoch(context);
    ASSERT_TRUE(report.adversary.has_value());
    injected += report.adversary->receipts_injected +
                report.adversary->misreports_injected;
    detected += report.adversary->fraud_detected;
    EXPECT_EQ(report.adversary->misreports_detected,
              report.adversary->misreports_injected);
  }
  EXPECT_GT(injected, 0u);
  EXPECT_GE(detected, injected);
  EXPECT_EQ(campaign.auditor().totals().fraud_total(), detected);
}

TEST_F(AdversaryCampaignFixture, ForgersGetQuarantinedAndLoseSpareAccess) {
  sim::RunContext context;
  Campaign campaign = make_campaign(/*seed=*/1042);
  adversary::QuarantineConfig quarantine;
  quarantine.quarantine_threshold = 4;  // one forging epoch (6 receipts) trips it
  quarantine.reinstate_after_clean_epochs = 100;  // keep them locked out
  const std::vector<adversary::Behavior> forge_only = {
      adversary::Behavior::kForgeReceipts};
  campaign.arm_adversaries(
      adversary::BehaviorBook::sample(4, 0.5, forge_only, 1.0, 6, 1042),
      adversary::AuditConfig{}, quarantine);

  const EpochReport first = campaign.run_epoch(context);
  ASSERT_TRUE(first.adversary.has_value());
  EXPECT_EQ(first.adversary->quarantined_parties, 2u);
  EXPECT_GT(first.adversary->slashed_total, 0.0);

  // From the next epoch on, sanctioned parties draw nothing from the spare
  // commons and feed nothing into it (graceful, not punitive: own-fleet
  // service continues).
  for (int e = 0; e < 3; ++e) {
    const EpochReport report = campaign.run_epoch(context);
    for (PartyId party = 0; party < 4; ++party) {
      if (campaign.quarantine().state(party) == adversary::TrustState::kTrusted) {
        continue;
      }
      EXPECT_DOUBLE_EQ(report.usage[party].spare_used_seconds, 0.0)
          << "party " << party << " epoch " << report.epoch;
      EXPECT_DOUBLE_EQ(report.usage[party].spare_provided_seconds, 0.0)
          << "party " << party << " epoch " << report.epoch;
    }
  }
  // Fraud moved tokens to the treasury, never destroyed them.
  EXPECT_NEAR(campaign.ledger().sum_of_balances(), campaign.ledger().total_minted(),
              1e-6);
}

TEST_F(AdversaryCampaignFixture, QuarantinedPartiesWithheldFromEmission) {
  sim::RunContext context;
  // No spot checks: the only token flows left for a quarantined party are
  // emission (withheld) and spare settlement (excluded), so its balance
  // cannot rise.
  config.poc_challenges_per_party_per_epoch = 0;
  Campaign campaign = make_campaign(/*seed=*/1042);
  adversary::QuarantineConfig quarantine;
  quarantine.quarantine_threshold = 1;
  quarantine.reinstate_after_clean_epochs = 100;
  const std::vector<adversary::Behavior> forge_only = {
      adversary::Behavior::kForgeReceipts};
  campaign.arm_adversaries(
      adversary::BehaviorBook::sample(4, 0.25, forge_only, 1.0, 6, 1042),
      adversary::AuditConfig{}, quarantine);

  (void)campaign.run_epoch(context);  // quarantine lands here
  PartyId sanctioned = 0;
  bool found = false;
  for (PartyId party = 0; party < 4; ++party) {
    if (campaign.quarantine().state(party) == adversary::TrustState::kQuarantined) {
      sanctioned = party;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  // The sanctioned party's balance can only fall (settlement debits) while
  // quarantined: no emission, no PoC rewards reach a party whose standing is
  // not kActive.
  const double before = campaign.ledger().balance(campaign.account_of(sanctioned));
  const EpochReport report = campaign.run_epoch(context);
  EXPECT_GT(report.emission_minted, 0.0);
  EXPECT_LE(campaign.ledger().balance(campaign.account_of(sanctioned)), before);
}

TEST_F(AdversaryCampaignFixture, AccessorsThrowWhenUnarmed) {
  Campaign campaign = make_campaign();
  EXPECT_FALSE(campaign.armed());
  EXPECT_THROW((void)campaign.behavior_book(), std::logic_error);
  EXPECT_THROW((void)campaign.auditor(), std::logic_error);
  EXPECT_THROW((void)campaign.quarantine(), std::logic_error);
  EXPECT_THROW((void)campaign.adversary_reputation(), std::logic_error);
}

TEST_F(AdversaryCampaignFixture, ArmRfRequiresAnArmedCampaign) {
  Campaign campaign = make_campaign();
  EXPECT_FALSE(campaign.rf_armed());
  EXPECT_EQ(campaign.rf_environment(), nullptr);
  EXPECT_THROW(campaign.arm_rf(rf::SpectrumConfig{}), std::logic_error);

  campaign.arm_adversaries(adversary::BehaviorBook());
  rf::SpectrumConfig bad;
  bad.channel_bandwidth_hz = -1.0;
  EXPECT_THROW(campaign.arm_rf(bad), std::invalid_argument);

  campaign.arm_rf(rf::SpectrumConfig{});
  EXPECT_TRUE(campaign.rf_armed());
  ASSERT_NE(campaign.rf_environment(), nullptr);
  // An all-honest book has nothing to jam with: the scheduler never sees the
  // environment.
  EXPECT_FALSE(campaign.rf_environment()->any_interferer());
}

TEST_F(AdversaryCampaignFixture, RfOverEmptyBookIsBitIdenticalToPlain) {
  // Arming the RF layer over a book with no jammer or squatter must leave
  // every epoch bit-identical to the never-armed campaign: the spectrum
  // partition is disjoint, so the clean path never engages.
  sim::RunContext context;
  Campaign plain = make_campaign();
  Campaign armed = make_campaign();
  armed.arm_adversaries(adversary::BehaviorBook());
  armed.arm_rf(rf::SpectrumConfig{});
  for (int e = 0; e < 2; ++e) {
    const EpochReport rp = plain.run_epoch(context);
    const EpochReport ra = armed.run_epoch(context);
    EXPECT_EQ(rp.usage, ra.usage);
    EXPECT_EQ(rp.balances, ra.balances);
    ASSERT_TRUE(ra.adversary.has_value());
    EXPECT_EQ(*ra.adversary, AdversaryEpochSummary{});
  }
  EXPECT_EQ(plain.ledger(), armed.ledger());
}

TEST_F(AdversaryCampaignFixture, ArmRfWithoutRfBehaviorsPerturbsNothing) {
  // The full classic mix holds no jamming or squatting party, so the same
  // book runs identically with and without the RF layer armed (the Doppler
  // audit stage stays off by default).
  sim::RunContext context;
  Campaign classic = make_campaign(/*seed=*/1042);
  Campaign with_rf = make_campaign(/*seed=*/1042);
  classic.arm_adversaries(
      adversary::BehaviorBook::sample(4, 0.5, kFullMix, 1.0, 6, 1042));
  with_rf.arm_adversaries(
      adversary::BehaviorBook::sample(4, 0.5, kFullMix, 1.0, 6, 1042));
  with_rf.arm_rf(rf::SpectrumConfig{});
  EXPECT_FALSE(with_rf.rf_environment()->any_interferer());
  for (int e = 0; e < 2; ++e) {
    const EpochReport rc = classic.run_epoch(context);
    const EpochReport rr = with_rf.run_epoch(context);
    EXPECT_EQ(rc.usage, rr.usage);
    EXPECT_EQ(rc.balances, rr.balances);
    ASSERT_TRUE(rr.adversary.has_value());
    EXPECT_EQ(rc.adversary->fraud_detected, rr.adversary->fraud_detected);
    EXPECT_EQ(rr.adversary->rf_forgeries_injected, 0u);
    EXPECT_EQ(rr.adversary->rf_interference_violations, 0u);
  }
  EXPECT_EQ(classic.ledger(), with_rf.ledger());
}

TEST_F(AdversaryCampaignFixture, JammingDegradesCapacityAndGetsAttributed) {
  sim::RunContext context;
  Campaign campaign = make_campaign(/*seed=*/1042);
  adversary::QuarantineConfig quarantine;
  quarantine.quarantine_threshold = 2;  // one jamming epoch (2 events) trips it
  quarantine.reinstate_after_clean_epochs = 100;
  const std::vector<adversary::Behavior> jam_only = {adversary::Behavior::kJamming};
  campaign.arm_adversaries(
      adversary::BehaviorBook::sample(4, 0.5, jam_only, 1.0, 6, 1042),
      adversary::AuditConfig{}, quarantine);
  campaign.arm_rf(rf::SpectrumConfig{});
  ASSERT_TRUE(campaign.rf_environment()->any_interferer());

  const EpochReport report = campaign.run_epoch(context);
  ASSERT_TRUE(report.adversary.has_value());
  // Interference bled granted capacity and the plan violations were
  // attributed as fraud evidence (2 events per jamming party per epoch).
  EXPECT_GT(report.adversary->rf_nominal_bps, 0.0);
  EXPECT_GT(report.adversary->rf_capacity_lost_bps, 0.0);
  EXPECT_LT(report.adversary->rf_capacity_lost_bps, report.adversary->rf_nominal_bps);
  EXPECT_EQ(report.adversary->rf_interference_violations, 4u);
  EXPECT_EQ(campaign.auditor().totals().rf_interference_violations, 4u);
  // Continuous emission is attributable: both jammers are sanctioned already.
  EXPECT_EQ(report.adversary->quarantined_parties, 2u);
  EXPECT_GT(report.adversary->slashed_total, 0.0);
}

TEST_F(AdversaryCampaignFixture, DopplerAuditRejectsRfForgeriesNotHonestTraffic) {
  sim::RunContext context;
  Campaign campaign = make_campaign(/*seed=*/1042);
  adversary::AuditConfig audit;
  audit.doppler.enabled = true;
  const std::vector<adversary::Behavior> forge_only = {
      adversary::Behavior::kForgeReceipts};
  campaign.arm_adversaries(
      adversary::BehaviorBook::sample(4, 0.5, forge_only, 1.0, 6, 1042), audit);
  campaign.arm_rf(rf::SpectrumConfig{}, rf::ForgeryLevel::kFlatTone);

  std::size_t rf_forged = 0;
  std::size_t rf_rejected = 0;
  std::size_t poc_valid = 0;
  for (int e = 0; e < 3; ++e) {
    const EpochReport report = campaign.run_epoch(context);
    ASSERT_TRUE(report.adversary.has_value());
    rf_forged += report.adversary->rf_forgeries_injected;
    rf_rejected += report.adversary->rf_doppler_rejections;
    poc_valid += report.poc_valid;
  }
  // Forgers with ephemeris access picked overhead steps — geometry passes,
  // only the fabricated track gives them away.
  EXPECT_GT(rf_forged, 0u);
  // Every fabricated track was rejected and no honest receipt was flagged:
  // rejections match forgeries exactly.
  EXPECT_EQ(rf_rejected, rf_forged);
  EXPECT_EQ(campaign.auditor().totals().rf_doppler_rejections, rf_forged);
  // Honest challenge receipts kept crediting with their noisy-but-true
  // tracks, and more tracks were checked than forged (honest ones too).
  EXPECT_GT(poc_valid, 0u);
  EXPECT_GT(campaign.auditor().totals().doppler_checked, rf_forged);
}

}  // namespace
}  // namespace mpleo::core
