// RunContext API acceptance: driving every subsystem through a
// sim::RunContext must be bit-identical for any pool size — a serial
// (pool-less) context, a pooled one and the reference paths all produce
// the same ScheduleResult down to link ordering, the same coverage masks,
// the same SLA reports, the same campaign epochs and resilience points —
// with the metrics/trace recording observing but never perturbing.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/robustness.hpp"
#include "core/sla.hpp"
#include "coverage/engine.hpp"
#include "fault/timeline.hpp"
#include "net/scheduler.hpp"
#include "orbit/geodesy.hpp"
#include "sim/run_context.hpp"
#include "util/thread_pool.hpp"

namespace mpleo {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

orbit::TimeGrid test_grid() {
  // 2 hours at 60 s: enough rises/sets to exercise own-link, spare and
  // detach paths, and enough steps to cross a StepMask word boundary.
  return orbit::TimeGrid::over_duration(kEpoch, 7200.0, 60.0);
}

struct Fleet {
  net::SchedulerConfig config;
  std::vector<constellation::Satellite> satellites;
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  std::size_t party_count = 3;
};

Fleet make_fleet() {
  Fleet f;
  f.config.beams_per_satellite = 2;
  f.config.reacquisition_backoff_steps = 2;
  for (std::size_t i = 0; i < 15; ++i) {
    constellation::Satellite sat;
    sat.id = static_cast<constellation::SatelliteId>(i);
    sat.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    sat.elements = orbit::ClassicalElements::circular(
        540e3 + 15e3 * static_cast<double>(i % 3), 53.0,
        24.0 * static_cast<double>(i), 36.0 * static_cast<double>(i));
    sat.epoch = kEpoch;
    f.satellites.push_back(sat);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    net::Terminal t;
    t.id = static_cast<net::TerminalId>(i);
    t.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    t.location = orbit::Geodetic::from_degrees(
        -40.0 + 11.0 * static_cast<double>(i), 5.0 + 9.0 * static_cast<double>(i));
    t.radio = net::default_user_terminal();
    t.demand_bps = 40e6;
    f.terminals.push_back(t);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    net::GroundStation gs;
    gs.id = static_cast<net::GroundStationId>(i);
    gs.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    gs.location = orbit::Geodetic::from_degrees(
        -30.0 + 14.0 * static_cast<double>(i), 8.0 + 13.0 * static_cast<double>(i));
    gs.radio = net::default_ground_station();
    f.stations.push_back(gs);
  }
  return f;
}

fault::FaultTimeline make_faults(const orbit::TimeGrid& grid, const Fleet& fleet) {
  fault::FaultTimeline faults(grid, fleet.satellites.size(), fleet.stations.size());
  const double span = grid.duration_seconds();
  for (std::size_t si = 0; si < fleet.satellites.size(); si += 2) {
    const double start = 0.05 * span * static_cast<double>(si % 5);
    faults.add_satellite_outage(si, start, start + 0.25 * span);
  }
  for (std::size_t si = 1; si < fleet.satellites.size(); si += 3) {
    faults.add_transponder_degradation(si, 0.1 * span, 0.6 * span, 0.5);
  }
  faults.add_station_outage(1, 0.2 * span, 0.7 * span);
  return faults;
}

TEST(RunContextIdentity, SchedulerMatchesLegacyAndReference) {
  const Fleet f = make_fleet();
  const net::BentPipeScheduler scheduler(f.config, f.satellites, f.terminals,
                                         f.stations);
  const orbit::TimeGrid grid = test_grid();

  const net::ScheduleResult reference =
      scheduler.run_reference(grid, f.party_count, nullptr, /*keep_steps=*/true);
  const net::ScheduleResult legacy =
      scheduler.run(grid, f.party_count, /*keep_steps=*/true);

  sim::RunContext serial_context;
  const net::ScheduleResult via_serial =
      scheduler.run(grid, f.party_count, serial_context, /*keep_steps=*/true);
  EXPECT_TRUE(via_serial == legacy);
  EXPECT_TRUE(via_serial == reference);
  EXPECT_FALSE(serial_context.metrics().empty());
  EXPECT_EQ(serial_context.metrics().counter_value("sched.steps"), grid.count);

  sim::Scenario pooled_scenario;
  pooled_scenario.threads = 3;
  sim::RunContext pooled_context(pooled_scenario);
  const net::ScheduleResult via_pooled =
      scheduler.run(grid, f.party_count, pooled_context, /*keep_steps=*/true);
  EXPECT_TRUE(via_pooled == reference);
}

TEST(RunContextIdentity, FaultedSchedulerMatchesLegacyAndReference) {
  const Fleet f = make_fleet();
  const net::BentPipeScheduler scheduler(f.config, f.satellites, f.terminals,
                                         f.stations);
  const orbit::TimeGrid grid = test_grid();
  const fault::FaultTimeline faults = make_faults(grid, f);

  const net::ScheduleResult reference =
      scheduler.run_reference(grid, f.party_count, &faults, /*keep_steps=*/true);
  const net::ScheduleResult legacy =
      scheduler.run(grid, f.party_count, &faults, /*keep_steps=*/true);
  EXPECT_TRUE(legacy == reference);

  sim::Scenario scenario;
  scenario.threads = 2;
  sim::RunContext context(scenario);
  context.use_faults(&faults);
  const net::ScheduleResult via_context =
      scheduler.run(grid, f.party_count, context, /*keep_steps=*/true);
  EXPECT_TRUE(via_context == reference);
  EXPECT_EQ(context.metrics().counter_value("sched.failure_forced_detaches"),
            reference.failure_forced_detaches);
}

TEST(RunContextIdentity, CoverageCacheMasksMatchForAnyContext) {
  const Fleet f = make_fleet();
  const cov::CoverageEngine engine(test_grid(), 25.0);
  const std::vector<cov::GroundSite> sites = {
      {"a", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(10.0, 10.0)), 1.0},
      {"b", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(-20.0, 40.0)), 2.0},
      {"c", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(48.0, -3.0)), 1.0}};

  cov::VisibilityCache lazy(engine, f.satellites, sites);  // serial, on demand
  cov::VisibilityCache eager(engine, f.satellites, sites);
  sim::Scenario scenario;
  scenario.threads = 3;
  sim::RunContext context(scenario);
  eager.precompute_all(context);

  EXPECT_EQ(context.metrics().counter_value("cov.masks_filled"),
            f.satellites.size() * sites.size());
  for (std::size_t s = 0; s < f.satellites.size(); ++s) {
    for (std::size_t j = 0; j < sites.size(); ++j) {
      EXPECT_TRUE(lazy.mask(s, j) == eager.mask(s, j)) << "sat " << s << " site " << j;
    }
  }
}

TEST(RunContextIdentity, EphemeridesMatchForAnyContext) {
  const Fleet f = make_fleet();
  const cov::CoverageEngine engine(test_grid(), 25.0);
  const std::vector<cov::GroundSite> sites = {
      {"a", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(10.0, 10.0)), 1.0}};

  const orbit::EphemerisSet plain = engine.ephemerides(f.satellites);
  sim::Scenario scenario;
  scenario.threads = 2;
  sim::RunContext context(scenario);
  const orbit::EphemerisSet via_context = engine.ephemerides(f.satellites, context);

  EXPECT_EQ(context.metrics().counter_value("cov.ephemeris_tables"),
            f.satellites.size());
  for (std::size_t i = 0; i < f.satellites.size(); ++i) {
    const auto masks_plain = engine.visibility_masks(plain.table(i), sites);
    const auto masks_ctx = engine.visibility_masks(via_context.table(i), sites);
    ASSERT_EQ(masks_plain.size(), masks_ctx.size());
    for (std::size_t j = 0; j < masks_plain.size(); ++j) {
      EXPECT_TRUE(masks_plain[j] == masks_ctx[j]) << "sat " << i;
    }
  }
}

TEST(RunContextIdentity, SlaReportMatchesForAnyContext) {
  const Fleet f = make_fleet();
  const cov::CoverageEngine engine(test_grid(), 25.0);
  const std::vector<cov::GroundSite> sites = {
      {"a", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(10.0, 10.0)), 1.0}};
  cov::VisibilityCache serial_cache(engine, f.satellites, sites);
  cov::VisibilityCache pooled_cache(engine, f.satellites, sites);
  const std::vector<std::size_t> fleet_idx = {0, 1, 2, 3, 4, 5, 6};
  const fault::FaultTimeline faults = make_faults(engine.grid(), f);

  core::SlaTerms terms;
  terms.min_coverage_fraction = 0.5;
  terms.max_gap_seconds = 600.0;
  terms.penalty_per_violation = 25.0;

  // Serial context fills the cache lazily; pooled context precomputes the
  // masks in parallel first. The reports must match bit for bit.
  sim::RunContext serial_context;
  serial_context.use_faults(&faults);
  const core::SlaReport legacy =
      core::evaluate_sla(terms, serial_cache, fleet_idx, 0, serial_context);

  sim::Scenario pooled_scenario;
  pooled_scenario.threads = 2;
  sim::RunContext context(pooled_scenario);
  context.use_faults(&faults);
  const core::SlaReport via_context =
      core::evaluate_sla(terms, pooled_cache, fleet_idx, 0, context);

  EXPECT_EQ(via_context.compliant, legacy.compliant);
  EXPECT_EQ(via_context.total_penalty, legacy.total_penalty);
  ASSERT_EQ(via_context.violations.size(), legacy.violations.size());
  for (std::size_t i = 0; i < legacy.violations.size(); ++i) {
    EXPECT_EQ(via_context.violations[i].clause, legacy.violations[i].clause);
    EXPECT_EQ(via_context.violations[i].required, legacy.violations[i].required);
    EXPECT_EQ(via_context.violations[i].delivered, legacy.violations[i].delivered);
  }
  EXPECT_EQ(context.metrics().counter_value("sla.evaluations"), 1u);
  EXPECT_EQ(context.metrics().counter_value("sla.violations"),
            legacy.violations.size());
}

TEST(RunContextIdentity, ResilienceSweepMatchesLegacyOverload) {
  const Fleet f = make_fleet();
  const cov::CoverageEngine engine(test_grid(), 25.0);
  const std::vector<cov::GroundSite> sites = {
      {"a", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(10.0, 10.0)), 1.0},
      {"b", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(-20.0, 40.0)), 1.0}};
  cov::VisibilityCache legacy_cache(engine, f.satellites, sites);
  cov::VisibilityCache context_cache(engine, f.satellites, sites);
  const std::vector<std::size_t> fleet_idx = {0, 1, 2, 3, 4, 5, 6, 7};

  core::ResilienceConfig config;
  config.failure_rates_per_sat_day = {0.0, 1.0, 4.0};
  config.runs = 3;
  config.seed = 7;

  util::ThreadPool pool(2);
  const std::vector<core::ResiliencePoint> legacy =
      core::resilience_sweep(legacy_cache, fleet_idx, config, &pool);

  sim::Scenario scenario;
  scenario.threads = 3;  // deliberately a different pool size
  sim::RunContext context(scenario);
  const std::vector<core::ResiliencePoint> via_context =
      core::resilience_sweep(context_cache, fleet_idx, config, context);

  ASSERT_EQ(via_context.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(via_context[i].mean_coverage_fraction, legacy[i].mean_coverage_fraction);
    EXPECT_EQ(via_context[i].mean_served_fraction, legacy[i].mean_served_fraction);
    EXPECT_EQ(via_context[i].mean_worst_gap_seconds, legacy[i].mean_worst_gap_seconds);
  }
  EXPECT_EQ(context.metrics().counter_value("resilience.points"), legacy.size());
  EXPECT_EQ(context.metrics().counter_value("resilience.runs"),
            legacy.size() * config.runs);
}

core::Campaign make_campaign() {
  core::Consortium consortium;
  core::Party a;
  a.name = "A";
  core::Party b;
  b.name = "B";
  const core::PartyId pa = consortium.add_party(a);
  const core::PartyId pb = consortium.add_party(b);
  consortium.contribute(pa, constellation::single_plane(550e3, 53.0, 0.0, 8, kEpoch));
  consortium.contribute(pb,
                        constellation::single_plane(550e3, 53.0, 90.0, 4, kEpoch, 10.0));

  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  for (std::uint32_t p = 0; p < 2; ++p) {
    net::Terminal t;
    t.id = p;
    t.owner_party = p;
    t.location = orbit::Geodetic::from_degrees(10.0 + 20.0 * p, 15.0 + 30.0 * p);
    t.radio = net::default_user_terminal();
    terminals.push_back(t);
    net::GroundStation gs;
    gs.id = p;
    gs.owner_party = p;
    gs.location = orbit::Geodetic::from_degrees(12.0 + 20.0 * p, 13.0 + 30.0 * p);
    gs.radio = net::default_ground_station();
    stations.push_back(gs);
  }
  core::CampaignConfig config;
  config.start = kEpoch;
  config.epoch_duration_s = 6.0 * 3600.0;
  config.step_s = 300.0;
  return core::Campaign(std::move(consortium), terminals, stations, config, 42);
}

TEST(RunContextIdentity, CampaignEpochMatchesForAnyPoolSize) {
  core::Campaign serial_campaign = make_campaign();
  core::Campaign context_campaign = make_campaign();
  sim::RunContext serial_context;  // no pool
  sim::Scenario scenario;
  scenario.threads = 2;
  sim::RunContext context(scenario);

  for (int epoch = 0; epoch < 2; ++epoch) {
    const core::EpochReport legacy = serial_campaign.run_epoch(serial_context);
    const core::EpochReport via_context = context_campaign.run_epoch(context);
    EXPECT_EQ(via_context.epoch, legacy.epoch);
    EXPECT_EQ(via_context.total_served_seconds, legacy.total_served_seconds);
    EXPECT_EQ(via_context.total_unserved_seconds, legacy.total_unserved_seconds);
    EXPECT_EQ(via_context.service_fairness, legacy.service_fairness);
    EXPECT_EQ(via_context.settlement.total_cleared, legacy.settlement.total_cleared);
    EXPECT_EQ(via_context.emission_minted, legacy.emission_minted);
    EXPECT_EQ(via_context.poc_valid, legacy.poc_valid);
    EXPECT_EQ(via_context.poc_rejected, legacy.poc_rejected);
    EXPECT_EQ(via_context.balances, legacy.balances);
    EXPECT_EQ(via_context.active_satellites, legacy.active_satellites);
  }
  EXPECT_EQ(context.metrics().counter_value("campaign.epochs"), 2u);
  EXPECT_EQ(context.trace().count("campaign"), 2u);
}

}  // namespace
}  // namespace mpleo
