// Integration tests for the §4 open-question prototypes working together:
// incentives steering placement toward holes, reputation feeding scheduler
// priority, DTN bootstrap economics, and ISL-vs-gateway substitution.
#include <gtest/gtest.h>

#include <numeric>

#include "core/mpleo.hpp"

namespace mpleo {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

TEST(OpenQuestions, IncentiveFieldAgreesWithPlacementOptimizer) {
  // The §3.2/3.3 alignment as an executable statement: the slot the greedy
  // placement optimizer picks for coverage is also among the top earners
  // under hole-weighted rewards.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 300.0);
  const cov::CoverageEngine engine(grid, 25.0);

  // Base: a single 53-deg plane -> holes at high latitude and away from the
  // plane's longitude band.
  const auto base = constellation::single_plane(550e3, 53.0, 0.0, 8, kEpoch);

  const cov::EarthGrid earth(15.0);
  const auto coverage = cov::cell_coverage(engine, earth, base);
  const auto multipliers = core::reward_multipliers(coverage, core::IncentiveConfig{});

  // Candidates: a few inclination/raan variants.
  constellation::SlotGrid slot_grid;
  slot_grid.raan_values_deg = {0.0, 90.0, 180.0};
  slot_grid.phase_values_deg = {0.0, 180.0};
  slot_grid.inclination_values_deg = {53.0, 97.6};
  slot_grid.altitude_values_m = {550e3};
  const auto slots = constellation::enumerate_slots(slot_grid);

  const auto sites = cov::sites_from_cities(cov::paper_cities());
  const core::PlacementOptimizer optimizer(engine, sites);
  const auto evals = optimizer.evaluate(base, slots, kEpoch);

  // Rank slots by coverage gain and by expected reward; top coverage pick
  // must land in the upper half of the reward ranking (they are different
  // objectives — population-weighted vs area-weighted — but §3.3 claims they
  // correlate).
  std::size_t best_cov = 0;
  for (std::size_t i = 1; i < evals.size(); ++i) {
    if (evals[i].gained_weighted_seconds > evals[best_cov].gained_weighted_seconds) {
      best_cov = i;
    }
  }
  std::vector<double> rewards(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    constellation::Satellite probe;
    probe.elements = slots[i].elements;
    probe.epoch = kEpoch;
    rewards[i] = core::expected_reward_rate(engine, earth, multipliers, probe);
  }
  std::size_t better_reward_count = 0;
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    if (rewards[i] > rewards[best_cov]) ++better_reward_count;
  }
  EXPECT_LE(better_reward_count, rewards.size() / 2);
}

TEST(OpenQuestions, ReputationFeedsSchedulerPriority) {
  // A party that forges proof-of-coverage receipts loses spare-capacity
  // priority to an honest competitor.
  core::ReputationTracker reputation(3);
  for (int i = 0; i < 10; ++i) {
    reputation.record_poc(1, false);  // party 1 caught forging
    reputation.record_poc(2, true);   // party 2 honest
  }

  net::SchedulerConfig cfg;
  cfg.beams_per_satellite = 1;
  cfg.spare_priority_by_party = {reputation.priority_weight(0),
                                 reputation.priority_weight(1),
                                 reputation.priority_weight(2)};

  constellation::Satellite provider;
  provider.owner_party = 0;
  net::Terminal cheat_terminal;
  cheat_terminal.id = 0;
  cheat_terminal.location = orbit::Geodetic::from_degrees(10.0, 20.0);
  cheat_terminal.owner_party = 1;
  cheat_terminal.radio = net::default_user_terminal();
  net::Terminal honest_terminal = cheat_terminal;
  honest_terminal.id = 1;
  honest_terminal.location = orbit::Geodetic::from_degrees(10.3, 20.3);
  honest_terminal.owner_party = 2;

  auto station_for = [](std::uint32_t party, net::GroundStationId id) {
    net::GroundStation gs;
    gs.id = id;
    gs.location = orbit::Geodetic::from_degrees(10.5, 20.5);
    gs.owner_party = party;
    gs.radio = net::default_ground_station();
    return gs;
  };

  const net::BentPipeScheduler scheduler(
      cfg, {provider}, {cheat_terminal, honest_terminal},
      {station_for(1, 0), station_for(2, 1)});
  const std::vector<util::Vec3> positions{orbit::geodetic_to_ecef(
      orbit::Geodetic::from_degrees(10.2, 20.2, 550e3))};
  const net::StepSchedule schedule = scheduler.schedule_step(positions, 0);
  ASSERT_EQ(schedule.links.size(), 1u);
  EXPECT_EQ(schedule.links.front().terminal_index, 1u);  // honest party wins
}

TEST(OpenQuestions, DtnRevenueScalesWithEmissionAndDelivery) {
  // Bootstrap economics end-to-end: a sparse fleet's DTN deliveries earn
  // early-epoch emission; the treasury conserves.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 2.0 * 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 10.0);
  const auto fleet = constellation::single_plane(550e3, 97.6, 30.0, 6, kEpoch);

  const std::vector<cov::GroundSite> endpoints{
      {"src", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(69.6, 18.9)), 1.0},
      {"dst", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(59.9, 10.7)), 1.0}};
  cov::StepMask up(grid.count), down(grid.count);
  for (const auto& sat : fleet) {
    const auto masks = engine.visibility_masks(sat, endpoints);
    up |= masks[0];
    down |= masks[1];
  }
  const core::DtnStats stats = core::dtn_stats(up, down, grid.step_seconds);
  ASSERT_GT(stats.delivered, 0u);
  EXPECT_LT(stats.p95_latency_s, 86400.0);  // deliveries within a day at 97.6 deg

  core::Ledger ledger;
  core::EmissionSchedule emission;
  const core::AccountId operator_account = ledger.open_account("operator");
  const double revenue_per_message = 0.001;
  const double epoch0 = emission.epoch_reward(0);
  ledger.mint(epoch0, "epoch 0");
  ASSERT_TRUE(ledger.reward(operator_account,
                            std::min(epoch0, revenue_per_message *
                                                 static_cast<double>(stats.delivered)),
                            "dtn delivery rewards"));
  EXPECT_GT(ledger.balance(operator_account), 0.0);
  EXPECT_NEAR(ledger.sum_of_balances(), ledger.total_minted(), 1e-9);
}

TEST(OpenQuestions, GovernanceGuardsSharedSatelliteThroughCampaignLifecycle) {
  // A 2-of-3 council controls a shared satellite. During a withdrawal the
  // leaving party alone still cannot deorbit it.
  core::QuorumPolicy policy;
  policy.council = {0, 1, 2};
  policy.required = 2;
  core::CommandAuthority authority(policy, 99);

  const auto cmd = authority.propose(42, core::CommandAction::kDeorbit);
  // The withdrawing party (0) tries alone.
  EXPECT_EQ(authority.approve(cmd, core::CommandAuthority::sign(
                                       cmd, 42, core::CommandAction::kDeorbit, 0,
                                       authority.party_key(0))),
            core::CommandStatus::kPending);
  // A second council member must consent.
  EXPECT_EQ(authority.approve(cmd, core::CommandAuthority::sign(
                                       cmd, 42, core::CommandAction::kDeorbit, 2,
                                       authority.party_key(2))),
            core::CommandStatus::kAuthorized);
}

TEST(OpenQuestions, IslsReduceRequiredGateways) {
  // Quantified §4 trade: with ISLs (2 hops), a single remote gateway serves
  // a terminal at least as well as bent-pipe does with the same gateway —
  // and at least as well as fewer hops.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 6.0 * 3600.0, 300.0);
  const cov::CoverageEngine engine(grid, 25.0);
  const auto sats = constellation::single_plane(550e3, 0.0, 0.0, 24, kEpoch);
  const orbit::TopocentricFrame terminal(orbit::Geodetic::from_degrees(0.0, 100.0));
  const std::vector<cov::GroundSite> gateway{
      {"gw", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(0.0, 0.0)), 1.0}};

  std::size_t previous = 0;
  for (const int hops : {0, 2, 6}) {
    net::IslConfig cfg;
    cfg.max_hops = hops;
    const std::size_t covered =
        net::isl_coverage_mask(engine, sats, terminal, gateway, cfg).count();
    EXPECT_GE(covered, previous);
    previous = covered;
  }
  EXPECT_GT(previous, 0u);  // 6 hops bridge 100 deg of longitude
}

TEST(OpenQuestions, ConjunctionScreeningDrivesCheapAvoidance) {
  // §1's sustainability pipeline end-to-end: screen a crowded shell for
  // close approaches, then price the avoidance maneuver — a small altitude
  // offset costs a few m/s, far below the deorbit or plane-change budget.
  const orbit::TimeGrid screen_grid =
      orbit::TimeGrid::over_duration(kEpoch, 6000.0, 5.0);

  // Two operators deconflicted by only 500 m of altitude at the same
  // inclination — the sovereign-constellation crowding case.
  std::vector<constellation::Satellite> shell;
  auto plane_a = constellation::single_plane(550e3, 53.0, 0.0, 6, kEpoch);
  auto plane_b = constellation::single_plane(550.5e3, 53.0, 180.0, 6, kEpoch, 180.0);
  shell.insert(shell.end(), plane_a.begin(), plane_a.end());
  shell.insert(shell.end(), plane_b.begin(), plane_b.end());

  const auto hits = orbit::screen_conjunctions(shell, screen_grid, 25e3);
  ASSERT_FALSE(hits.empty());  // node crossings at ~500 m separation

  // Avoidance: raise one party by 5 km. The burn is cheap...
  const double avoid_dv =
      orbit::hohmann_delta_v(util::kEarthMeanRadiusM + 550e3,
                             util::kEarthMeanRadiusM + 555e3);
  EXPECT_LT(avoid_dv, 5.0);  // m/s
  // ...and it clears the screening threshold used above.
  auto raised = plane_b;
  for (auto& sat : raised) sat.elements.semi_major_axis_m += 25e3 + 5e3;
  std::vector<constellation::Satellite> fixed = plane_a;
  fixed.insert(fixed.end(), raised.begin(), raised.end());
  // Re-id to keep screening indices meaningful.
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    fixed[i].id = static_cast<constellation::SatelliteId>(i);
  }
  const auto hits_after = orbit::screen_conjunctions(fixed, screen_grid, 25e3);
  // Cross-party approaches are gone; only same-plane neighbours could
  // remain, and those are 60 deg apart (thousands of km).
  EXPECT_TRUE(hits_after.empty());
}

TEST(OpenQuestions, SlaPenaltiesFlowIntoSettlementEconomy) {
  // QoS terms, coverage measurement, and the token ledger close the loop.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 300.0);
  const cov::CoverageEngine engine(grid, 25.0);
  const auto sparse_fleet = constellation::single_plane(550e3, 53.0, 0.0, 4, kEpoch);

  const orbit::TopocentricFrame taipei_frame(cov::taipei().location);
  const cov::CoverageStats delivered =
      engine.stats(engine.coverage_mask(sparse_fleet, taipei_frame));

  core::SlaTerms premium;
  premium.min_coverage_fraction = 0.95;  // a 4-sat plane cannot deliver this
  premium.max_gap_seconds = 900.0;
  premium.penalty_per_violation = 40.0;
  const core::SlaReport report = core::evaluate_sla(premium, delivered);
  ASSERT_FALSE(report.compliant);

  core::Ledger ledger;
  ledger.mint(500.0);
  const core::AccountId provider = ledger.open_account("provider");
  const core::AccountId customer = ledger.open_account("customer");
  ASSERT_TRUE(ledger.reward(provider, 200.0));
  ASSERT_TRUE(core::settle_sla_penalty(report, ledger, provider, customer));
  EXPECT_DOUBLE_EQ(ledger.balance(customer), report.total_penalty);
  EXPECT_NEAR(ledger.sum_of_balances(), ledger.total_minted(), 1e-9);
}

}  // namespace
}  // namespace mpleo
