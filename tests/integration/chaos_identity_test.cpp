// Chaos-layer identity acceptance: an EMPTY fault::EventBook compiled onto a
// timeline plus a DISABLED net::DegradationPolicy must leave every consumer
// bit-identical to the pre-chaos outputs — scheduler links for every
// VisibilityMode and pool size (run, run_reference, serial and pooled
// contexts), SLA reports, and the per-party outage evidence the reputation/
// receipt layers consume. This is the contract that lets the chaos subsystem
// ride in the default build without perturbing a single existing result.
#include <gtest/gtest.h>

#include "core/sla.hpp"
#include "coverage/engine.hpp"
#include "fault/event_book.hpp"
#include "net/scheduler.hpp"
#include "orbit/geodesy.hpp"
#include "sim/run_context.hpp"

namespace mpleo {
namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

orbit::TimeGrid test_grid() {
  return orbit::TimeGrid::over_duration(kEpoch, 7200.0, 60.0);
}

struct Fleet {
  net::SchedulerConfig config;
  std::vector<constellation::Satellite> satellites;
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  std::size_t party_count = 3;
};

Fleet make_fleet() {
  Fleet f;
  f.config.beams_per_satellite = 2;
  for (std::size_t i = 0; i < 15; ++i) {
    constellation::Satellite sat;
    sat.id = static_cast<constellation::SatelliteId>(i);
    sat.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    sat.elements = orbit::ClassicalElements::circular(
        540e3 + 15e3 * static_cast<double>(i % 3), 53.0,
        24.0 * static_cast<double>(i), 36.0 * static_cast<double>(i));
    sat.epoch = kEpoch;
    f.satellites.push_back(sat);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    net::Terminal t;
    t.id = static_cast<net::TerminalId>(i);
    t.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    t.location = orbit::Geodetic::from_degrees(
        -40.0 + 11.0 * static_cast<double>(i), 5.0 + 9.0 * static_cast<double>(i));
    t.radio = net::default_user_terminal();
    t.demand_bps = 40e6;
    f.terminals.push_back(t);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    net::GroundStation gs;
    gs.id = static_cast<net::GroundStationId>(i);
    gs.owner_party = static_cast<std::uint32_t>(i % f.party_count);
    gs.location = orbit::Geodetic::from_degrees(
        -30.0 + 14.0 * static_cast<double>(i), 8.0 + 13.0 * static_cast<double>(i));
    gs.radio = net::default_ground_station();
    f.stations.push_back(gs);
  }
  return f;
}

TEST(ChaosIdentity, EmptyBookAndDisabledPolicyMatchEveryModeAndPoolSize) {
  const Fleet f = make_fleet();
  const orbit::TimeGrid grid = test_grid();

  const fault::EventBook empty_book(2042);
  const fault::FaultTimeline timeline =
      empty_book.compile(grid, f.satellites, f.stations);
  EXPECT_TRUE(timeline.empty());

  for (const net::VisibilityMode mode :
       {net::VisibilityMode::kAuto, net::VisibilityMode::kPairMasks,
        net::VisibilityMode::kFootprintStream}) {
    net::SchedulerConfig config = f.config;
    config.visibility_mode = mode;
    // The disabled policy deliberately carries every knob, so enabled=false
    // alone must neutralize the whole layer.
    config.degradation.enabled = false;
    config.degradation.party_tier = {0, 1, 2};
    config.degradation.shed_below = {0.0, 0.9};
    config.degradation.spare_hysteresis_margin = 0.4;
    config.degradation.backoff_initial_steps = 4;

    net::SchedulerConfig pristine = f.config;
    pristine.visibility_mode = mode;
    const net::BentPipeScheduler before(pristine, f.satellites, f.terminals,
                                        f.stations);
    const net::BentPipeScheduler after(config, f.satellites, f.terminals,
                                       f.stations);

    const net::ScheduleResult baseline =
        before.run(grid, f.party_count, /*keep_steps=*/true);
    // Empty timeline pointer vs no timeline at all, run vs run_reference.
    EXPECT_TRUE(after.run(grid, f.party_count, &timeline, true) == baseline)
        << "mode " << static_cast<int>(mode);
    EXPECT_TRUE(after.run(grid, f.party_count, nullptr, true) == baseline)
        << "mode " << static_cast<int>(mode);
    EXPECT_TRUE(after.run_reference(grid, f.party_count, &timeline, true) ==
                baseline)
        << "mode " << static_cast<int>(mode);

    // Pool sizes: serial context and two pooled widths, timeline attached.
    for (const unsigned threads : {0u, 2u, 3u}) {
      sim::Scenario scenario;
      scenario.threads = static_cast<int>(threads);
      sim::RunContext context(scenario);
      context.use_faults(&timeline);
      EXPECT_TRUE(after.run(grid, f.party_count, context, true) == baseline)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
    }
  }
}

TEST(ChaosIdentity, SlaReportUnchangedByEmptyBookTimeline) {
  const Fleet f = make_fleet();
  const cov::CoverageEngine engine(test_grid(), 25.0);
  const std::vector<cov::GroundSite> sites = {
      {"a", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(10.0, 10.0)), 1.0},
      {"b", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(-20.0, 40.0)), 2.0}};
  cov::VisibilityCache plain_cache(engine, f.satellites, sites);
  cov::VisibilityCache chaos_cache(engine, f.satellites, sites);
  const std::vector<std::size_t> fleet_idx = {0, 1, 2, 3, 4, 5, 6};

  core::SlaTerms terms;
  terms.min_coverage_fraction = 0.5;
  terms.max_gap_seconds = 600.0;
  terms.penalty_per_violation = 25.0;

  sim::RunContext plain_context;
  const core::SlaReport before =
      core::evaluate_sla(terms, plain_cache, fleet_idx, 0, plain_context);

  const fault::EventBook empty_book(7);
  const fault::FaultTimeline timeline =
      empty_book.compile(engine.grid(), f.satellites, f.stations);
  sim::RunContext chaos_context;
  chaos_context.use_faults(&timeline);
  const core::SlaReport after =
      core::evaluate_sla(terms, chaos_cache, fleet_idx, 0, chaos_context);

  EXPECT_EQ(after.compliant, before.compliant);
  EXPECT_EQ(after.total_penalty, before.total_penalty);
  ASSERT_EQ(after.violations.size(), before.violations.size());
  for (std::size_t i = 0; i < before.violations.size(); ++i) {
    EXPECT_EQ(after.violations[i].clause, before.violations[i].clause);
    EXPECT_EQ(after.violations[i].delivered, before.violations[i].delivered);
  }
}

TEST(ChaosIdentity, EmptyBookProducesNoOutageEvidence) {
  // The reputation / receipt layers read outage_seconds_by_party as fault
  // evidence; an empty book must contribute exactly none.
  const Fleet f = make_fleet();
  const fault::EventBook empty_book(7);
  const fault::FaultTimeline timeline =
      empty_book.compile(test_grid(), f.satellites, f.stations);
  std::vector<std::uint32_t> sat_owner;
  std::vector<std::uint32_t> gs_owner;
  for (const constellation::Satellite& sat : f.satellites) {
    sat_owner.push_back(sat.owner_party);
  }
  for (const net::GroundStation& gs : f.stations) gs_owner.push_back(gs.owner_party);
  const std::vector<double> evidence =
      timeline.outage_seconds_by_party(sat_owner, gs_owner, f.party_count);
  ASSERT_EQ(evidence.size(), f.party_count);
  for (const double seconds : evidence) EXPECT_DOUBLE_EQ(seconds, 0.0);
  EXPECT_TRUE(timeline.events().empty());
}

}  // namespace
}  // namespace mpleo
