#!/usr/bin/env python3
"""Gate perf_simulator speedups against the committed baseline.

Usage:
    check_perf_regression.py --baseline BENCH_perf_simulator.json \
                             --current  BENCH_current.json [--tolerance 0.2]

Absolute seconds are machine-dependent, so the gate compares *speedups*
(scalar reference vs optimized path on the same box, same run): the current
speedup of every section present in both reports must be at least
(1 - tolerance) x the baseline speedup, and every bit-identity flag must be
true. Exits non-zero on any regression, so CI can fail the build.
"""

import argparse
import json
import sys

# (section, subsection) pairs whose "speedup" field is gated.
SPEEDUPS = [
    ("ephemeris_compare", "batched_serial"),
    ("ephemeris_compare", "batched_pooled"),
    ("scheduler_compare", "pipelined_serial"),
    ("scheduler_compare", "pipelined_pooled"),
]

# (section, flag) pairs that must be true in the current report.
IDENTITY_FLAGS = [
    ("ephemeris_compare", "masks_identical"),
    ("scheduler_compare", "bit_identical"),
    ("scheduler_compare", "faulted_bit_identical"),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup drop (default 0.2)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    for section, flag in IDENTITY_FLAGS:
        if section not in current:
            continue
        if current[section].get(flag) is not True:
            failures.append(f"{section}.{flag} is not true in {args.current}")

    for section, sub in SPEEDUPS:
        if section not in baseline or section not in current:
            continue
        base = baseline[section][sub]["speedup"]
        cur = current[section][sub]["speedup"]
        floor = (1.0 - args.tolerance) * base
        status = "OK " if cur >= floor else "REGRESSED"
        print(f"{status} {section}.{sub}: current {cur:.2f}x vs baseline "
              f"{base:.2f}x (floor {floor:.2f}x)")
        if cur < floor:
            failures.append(
                f"{section}.{sub} regressed: {cur:.2f}x < {floor:.2f}x "
                f"({(1.0 - args.tolerance) * 100:.0f}% of baseline {base:.2f}x)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
