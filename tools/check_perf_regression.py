#!/usr/bin/env python3
"""Gate perf_simulator speedups against the committed baseline.

Usage:
    check_perf_regression.py --baseline BENCH_perf_simulator.json \
                             --current  BENCH_current.json [--tolerance 0.2]
    check_perf_regression.py --adversary-sweep BENCH_adversary_sweep.json
    check_perf_regression.py --mega BENCH_mega.json
    check_perf_regression.py --chaos BENCH_chaos_sweep.json

Absolute seconds are machine-dependent, so the gate compares *speedups*
(scalar reference vs optimized path on the same box, same run): the current
speedup of every section present in both reports must be at least
(1 - tolerance) x the baseline speedup, and every bit-identity flag must be
true. Exits non-zero on any regression, so CI can fail the build.

When the current report carries a backend_compare section (perf_simulator
--backends), it is schema-checked and gated absolutely: the lane-batched J2
fill must clear 4x the pre-refactor 1.5e7 sat-steps/sec kernel baseline on
AVX2 machines, its bit-identity flag must be true, and the SGP4-vs-J2
cross-backend position error must sit inside the envelope the report
declares (and above 1 m, proving SGP4 did not silently fall back to J2).

When the current report carries a scheduler_compare section it must also
carry the "obs" metrics section perf_simulator emits from its RunContext,
and that section must be schema-valid: integer counters >= 0, histograms
whose bucket counts sum to their count over non-decreasing "le" bounds
ending in "inf", and the scheduler metric names the pipeline is known to
record. A perf run that silently stopped observing is a regression too.

When the current report carries a mega_scale section (perf_simulator
--scale=mega or --scale=mega-smoke) it is gated absolutely: throughput must
clear a loose terminal-steps/sec floor and peak RSS must stay under the
scale's ceiling — the bounded-memory acceptance criterion of the 30k x 1M
streaming pipeline. --mega FILE runs the same gate standalone (no baseline),
which is how CI checks the smoke run it just produced.

--chaos FILE validates a BENCH_chaos_sweep.json report absolutely (no
baseline): the report's own gate flags (empty_book_identity,
availability_gate, slo_finite) must be true, every cell's availability and
worst-window availability must be finite and inside [0, 1] (a NaN that
leaked through the bench's own finiteness check is caught here too), cells
must come in (decentralized, centralized) pairs per profile on the same
seed, the decentralized worst-window availability must be at least the
centralized one on every withdrawal-bearing profile AND strictly positive
there (the consortium keeps a floor where the single operator collapses to
zero), and spare-grant hysteresis must not increase storm flap counts.

--adversary-sweep validates a BENCH_adversary_sweep.json report instead:
the sweep's byzantine fractions must start at 0 and be strictly increasing,
every point must detect at least as much fraud as it injected, the honest-core
payoff must be non-increasing in the byzantine fraction (the robustness
contract the sweep is built to certify), and the report's own gate flags must
be true. The report's "rf" section is required and gated too: the Doppler-fit
audit must reject >= 99% of forged tracks at every detectable sophistication
level while flagging zero honest receipts (ephemeris_exact is the documented
blind spot and is exempt), jamming welfare must be non-increasing in the
jammer fraction, and every jamming party must yield at least one attributed
spectrum-plan violation (detection >= injection for continuous emitters). No
baseline is needed — the properties are absolute, not relative.
"""

import argparse
import json
import math
import sys

# (section, subsection) pairs whose "speedup" field is gated.
SPEEDUPS = [
    ("ephemeris_compare", "batched_serial"),
    ("ephemeris_compare", "batched_pooled"),
    ("scheduler_compare", "pipelined_serial"),
    ("scheduler_compare", "pipelined_pooled"),
    ("backend_compare", "j2_batched"),
]

# (section, flag) pairs that must be true in the current report.
IDENTITY_FLAGS = [
    ("ephemeris_compare", "masks_identical"),
    ("scheduler_compare", "bit_identical"),
    ("scheduler_compare", "faulted_bit_identical"),
    ("scheduler_compare", "streamed_bit_identical"),
    ("backend_compare", "batched_bit_identical"),
]

# Absolute gates for the mega_scale section (perf_simulator --scale=mega or
# --scale=mega-smoke). Throughput floors are deliberately loose — an order of
# magnitude under a healthy single-threaded run — so they catch the pipeline
# falling off an algorithmic cliff (accidental O(sats x terminals) scans,
# unbounded staging), not machine-to-machine noise. The RSS ceilings are the
# actual acceptance criterion: 30k x 1M must stream through bounded memory.
MEGA_TPS_FLOOR_FULL = 8e4       # terminal-steps/sec at >= 500k terminals
MEGA_TPS_FLOOR_SMOKE = 2e5      # terminal-steps/sec below that
MEGA_RSS_CEILING_FULL = 24e9    # bytes, --scale=mega
MEGA_RSS_CEILING_SMOKE = 4e9    # bytes, --scale=mega-smoke
# Wall-clock ceilings: the acceptance criterion says the day-long 30k x 1M
# run *completes*, so the gate pins "completes in bounded time" too. Both are
# generous multiples of a healthy single-core run — they catch the pipeline
# regressing to an overnight job, not machine-to-machine noise.
MEGA_WALL_CEILING_FULL = 43_200.0   # seconds (12 h), --scale=mega
MEGA_WALL_CEILING_SMOKE = 1_800.0   # seconds, --scale=mega-smoke

# Absolute floor for the SIMD lane-batched J2 fill when the report ran on an
# AVX2 machine: >= 4x the 1.5e7 sat-steps/sec pre-refactor kernel baseline.
BATCHED_BASELINE_SAT_STEPS_PER_SEC = 1.5e7
BATCHED_SPEEDUP_FLOOR = 4.0

# Metric names the scheduler pipeline is known to record; their absence
# means the obs plumbing came unhooked.
REQUIRED_OBS_COUNTERS = [
    "sched.candidates",
    "sched.beam_rejections",
    "sched.failure_forced_detaches",
    "sched.links_granted",
    "sched.steps",
]
REQUIRED_OBS_HISTOGRAMS = [
    "sched.run_seconds",
    "sched.phase1_chunk_seconds",
    "sched.candidates_per_step",
]


def is_uint(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_backend_compare(section) -> list:
    """Schema + gates for the per-backend throughput report (empty = valid)."""
    problems = []
    if not isinstance(section, dict):
        return ["backend_compare section is not an object"]

    workload = section.get("workload")
    if not isinstance(workload, dict) or not is_uint(workload.get("satellites")) \
            or not is_uint(workload.get("steps")):
        problems.append("backend_compare.workload missing satellites/steps")
    if section.get("simd") not in ("avx2", "scalar"):
        problems.append(f"backend_compare.simd is {section.get('simd')!r}, "
                        f"expected \"avx2\" or \"scalar\"")

    for name in ("j2_scalar", "j2_batched", "sgp4"):
        entry = section.get(name)
        if not isinstance(entry, dict) or not is_number(entry.get("seconds")) \
                or not is_number(entry.get("sat_steps_per_sec")) \
                or entry.get("sat_steps_per_sec") <= 0:
            problems.append(f"backend_compare.{name} missing seconds/"
                            f"sat_steps_per_sec")

    cross = section.get("cross_backend")
    if not isinstance(cross, dict) or not is_number(cross.get("max_error_m")) \
            or not is_number(cross.get("envelope_m")):
        problems.append("backend_compare.cross_backend missing "
                        "max_error_m/envelope_m")
    else:
        if cross.get("within_envelope") is not True:
            problems.append("backend_compare.cross_backend.within_envelope "
                            "is not true")
        if cross["max_error_m"] >= cross["envelope_m"]:
            problems.append(
                f"backend_compare cross-backend error {cross['max_error_m']:.1f} m "
                f"exceeds the documented envelope {cross['envelope_m']:.1f} m")
        if cross["max_error_m"] <= 1.0:
            problems.append(
                "backend_compare cross-backend error <= 1 m: SGP4 output is "
                "indistinguishable from J2, the backend likely fell back")
    if problems:
        return problems

    # Throughput gate, only meaningful when the SIMD kernel actually ran.
    if section["simd"] == "avx2":
        floor = BATCHED_SPEEDUP_FLOOR * BATCHED_BASELINE_SAT_STEPS_PER_SEC
        thr = section["j2_batched"]["sat_steps_per_sec"]
        status = "OK " if thr >= floor else "REGRESSED"
        print(f"{status} backend_compare.j2_batched: {thr:.3e} sat-steps/s "
              f"(floor {floor:.3e} = {BATCHED_SPEEDUP_FLOOR:.0f}x baseline)")
        if thr < floor:
            problems.append(
                f"backend_compare.j2_batched throughput {thr:.3e} below the "
                f"{BATCHED_SPEEDUP_FLOOR:.0f}x-over-baseline floor {floor:.3e}")
    return problems


def validate_obs(obs) -> list:
    """Returns a list of schema-violation strings (empty = valid)."""
    problems = []
    if not isinstance(obs, dict):
        return ["obs section is not an object"]
    for kind in ("counters", "gauges", "histograms"):
        if not isinstance(obs.get(kind), dict):
            problems.append(f"obs.{kind} missing or not an object")
    if problems:
        return problems

    for name, value in obs["counters"].items():
        if not is_uint(value):
            problems.append(f"obs.counters.{name} is not a non-negative integer")
    for name, value in obs["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"obs.gauges.{name} is not a number")

    for name, hist in obs["histograms"].items():
        if not isinstance(hist, dict):
            problems.append(f"obs.histograms.{name} is not an object")
            continue
        if not is_uint(hist.get("count")):
            problems.append(f"obs.histograms.{name}.count is not a non-negative integer")
            continue
        buckets = hist.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            problems.append(f"obs.histograms.{name}.buckets missing or empty")
            continue
        total = 0
        prev_bound = None
        for i, bucket in enumerate(buckets):
            le = bucket.get("le") if isinstance(bucket, dict) else None
            count = bucket.get("count") if isinstance(bucket, dict) else None
            if not is_uint(count):
                problems.append(f"obs.histograms.{name}.buckets[{i}].count invalid")
                break
            total += count
            last = i == len(buckets) - 1
            if last:
                if le != "inf":
                    problems.append(
                        f"obs.histograms.{name} last bucket le is {le!r}, not \"inf\"")
            else:
                if not isinstance(le, (int, float)) or isinstance(le, bool):
                    problems.append(
                        f"obs.histograms.{name}.buckets[{i}].le is not a number")
                    break
                if prev_bound is not None and le <= prev_bound:
                    problems.append(
                        f"obs.histograms.{name} bucket bounds not increasing at [{i}]")
                    break
                prev_bound = le
        else:
            if total != hist["count"]:
                problems.append(
                    f"obs.histograms.{name} bucket counts sum to {total}, "
                    f"count says {hist['count']}")
        if hist["count"] > 0:
            for field in ("sum", "min", "max"):
                value = hist.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"obs.histograms.{name}.{field} is not a number")

    for name in REQUIRED_OBS_COUNTERS:
        if name not in obs["counters"]:
            problems.append(f"obs.counters missing required metric {name}")
    for name in REQUIRED_OBS_HISTOGRAMS:
        if name not in obs["histograms"]:
            problems.append(f"obs.histograms missing required metric {name}")
    return problems


def validate_mega_scale(section) -> list:
    """Schema + absolute gates for the mega_scale section (empty = valid)."""
    problems = []
    if not isinstance(section, dict):
        return ["mega_scale section is not an object"]

    workload = section.get("workload")
    if not isinstance(workload, dict):
        return ["mega_scale.workload missing or not an object"]
    for field in ("satellites", "terminals", "stations", "parties", "steps"):
        if not is_uint(workload.get(field)) or workload.get(field) == 0:
            problems.append(f"mega_scale.workload.{field} missing or not a "
                            f"positive integer")
    scale = workload.get("scale")
    if scale not in ("mega", "mega-smoke"):
        problems.append(f"mega_scale.workload.scale is {scale!r}, expected "
                        f"\"mega\" or \"mega-smoke\"")
    for field in ("seconds", "terminal_steps_per_sec", "links_granted"):
        if not is_number(section.get(field)) or section.get(field) <= 0:
            problems.append(f"mega_scale.{field} missing or not positive")
    if not is_uint(section.get("peak_rss_bytes")):
        problems.append("mega_scale.peak_rss_bytes missing or invalid")
    stream = section.get("stream")
    if not isinstance(stream, dict) or not is_uint(stream.get("chunk_steps")) \
            or not is_uint(stream.get("slots")) \
            or not is_uint(stream.get("candidate_cap")):
        problems.append("mega_scale.stream missing chunk_steps/slots/candidate_cap")
    if section.get("bit_identical") is not True:
        problems.append("mega_scale.bit_identical is not true (the sub-fleet "
                        "stream-vs-pair-mask identity check failed or is missing)")
    if problems:
        return problems

    full = workload["terminals"] >= 500_000
    tps_floor = MEGA_TPS_FLOOR_FULL if full else MEGA_TPS_FLOOR_SMOKE
    rss_ceiling = (MEGA_RSS_CEILING_FULL if scale == "mega"
                   else MEGA_RSS_CEILING_SMOKE)
    tps = section["terminal_steps_per_sec"]
    rss = section["peak_rss_bytes"]

    status = "OK " if tps >= tps_floor else "REGRESSED"
    print(f"{status} mega_scale[{scale}] throughput: {tps:.3e} "
          f"terminal-steps/s (floor {tps_floor:.1e})")
    if tps < tps_floor:
        problems.append(f"mega_scale throughput {tps:.3e} terminal-steps/s "
                        f"below the {tps_floor:.1e} floor")

    # peak_rss_bytes may be 0 where getrusage is unavailable; only gate when
    # the run actually measured it.
    if rss > 0:
        status = "OK " if rss <= rss_ceiling else "REGRESSED"
        print(f"{status} mega_scale[{scale}] peak RSS: {rss / 1e9:.2f} GB "
              f"(ceiling {rss_ceiling / 1e9:.0f} GB)")
        if rss > rss_ceiling:
            problems.append(f"mega_scale peak RSS {rss / 1e9:.2f} GB exceeds "
                            f"the {rss_ceiling / 1e9:.0f} GB ceiling")

    wall = section["seconds"]
    wall_ceiling = (MEGA_WALL_CEILING_FULL if scale == "mega"
                    else MEGA_WALL_CEILING_SMOKE)
    status = "OK " if wall <= wall_ceiling else "REGRESSED"
    print(f"{status} mega_scale[{scale}] wall clock: {wall:.1f} s "
          f"(ceiling {wall_ceiling:.0f} s)")
    if wall > wall_ceiling:
        problems.append(f"mega_scale wall clock {wall:.1f} s exceeds the "
                        f"{wall_ceiling:.0f} s ceiling")
    return problems


# Chaos-sweep cell schema: field -> (type, is a [0, 1] fraction).
CHAOS_CELL_FIELDS = {
    "profile": (str, False),
    "topology": (str, False),
    "availability": (float, True),
    "worst_window_availability": (float, True),
    "grant_flaps": (int, False),
    "failure_forced_detaches": (int, False),
    "recoveries": (int, False),
    "mean_recovery_seconds": (float, False),
    "max_recovery_seconds": (float, False),
    "unrecovered_terminals": (int, False),
    "shed_terminal_steps": (int, False),
}

CHAOS_PROFILES = {"storm", "blackout", "withdrawal", "debris", "mixed"}
CHAOS_WITHDRAWAL_BEARING = {"withdrawal", "mixed"}


def check_chaos(path: str) -> list:
    """Returns a list of failure strings (empty = report passes the gate)."""
    with open(path) as f:
        report = json.load(f)
    failures = []

    workload = report.get("workload")
    if not isinstance(workload, dict):
        failures.append("workload section missing or not an object")
    else:
        for field in ("duration_seconds", "step_seconds", "event_intensity"):
            if not is_number(workload.get(field)) or workload.get(field) <= 0:
                failures.append(f"workload.{field} missing or not positive")
        if not is_uint(workload.get("event_seed")):
            failures.append("workload.event_seed missing or invalid")
        if not is_uint(workload.get("slo_window_steps")) \
                or workload.get("slo_window_steps") == 0:
            failures.append("workload.slo_window_steps missing or zero")

    cells = report.get("cells")
    if not isinstance(cells, list) or not cells:
        failures.append("cells missing or empty")
        return failures

    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            failures.append(f"cells[{i}] is not an object")
            continue
        for field, (kind, fraction) in CHAOS_CELL_FIELDS.items():
            value = cell.get(field)
            if kind is str:
                if not isinstance(value, str):
                    failures.append(f"cells[{i}].{field} is not a string")
                continue
            if kind is int and not is_uint(value):
                failures.append(f"cells[{i}].{field} is not a non-negative integer")
                continue
            if kind is float:
                # json.load happily parses NaN/Infinity literals, so the
                # finiteness of every SLO number is gated here, not just by
                # the bench's own slo_finite flag.
                if not is_number(value) or not math.isfinite(value) or value < 0.0:
                    failures.append(f"cells[{i}].{field} is not a finite "
                                    f"non-negative number")
                    continue
                if fraction and value > 1.0:
                    failures.append(f"cells[{i}].{field} = {value} is outside [0, 1]")
    if failures:
        return failures

    # Cells come in (decentralized, centralized) pairs per profile.
    if len(cells) % 2 != 0:
        failures.append(f"cells has {len(cells)} entries, expected "
                        f"(decentralized, centralized) pairs")
        return failures
    for i in range(0, len(cells), 2):
        dec, cen = cells[i], cells[i + 1]
        profile = dec["profile"]
        if profile not in CHAOS_PROFILES:
            failures.append(f"cells[{i}].profile {profile!r} is not a known "
                            f"chaos profile")
            continue
        if cen["profile"] != profile:
            failures.append(f"cells[{i + 1}].profile {cen['profile']!r} does "
                            f"not pair with {profile!r}")
            continue
        if dec["topology"] != "decentralized" or cen["topology"] != "centralized":
            failures.append(f"cells[{i}..{i + 1}] topologies are "
                            f"({dec['topology']!r}, {cen['topology']!r}), "
                            f"expected (decentralized, centralized)")
            continue
        status = "OK "
        if profile in CHAOS_WITHDRAWAL_BEARING:
            # The decentralized consortium must keep a service floor where
            # the centralized operator's worst window collapses to zero.
            if dec["worst_window_availability"] < cen["worst_window_availability"]:
                status = "REGRESSED"
                failures.append(
                    f"{profile}: decentralized worst-window availability "
                    f"{dec['worst_window_availability']:.4f} below centralized "
                    f"{cen['worst_window_availability']:.4f}")
            if dec["worst_window_availability"] <= 0.0:
                status = "REGRESSED"
                failures.append(
                    f"{profile}: decentralized worst-window availability is "
                    f"zero — the consortium lost its whole-fleet floor")
        print(f"{status} chaos {profile}: worst-window dec "
              f"{dec['worst_window_availability']:.4f} vs cen "
              f"{cen['worst_window_availability']:.4f}, availability dec "
              f"{dec['availability']:.4f} vs cen {cen['availability']:.4f}")

    if not any(cells[i]["profile"] in CHAOS_WITHDRAWAL_BEARING
               for i in range(0, len(cells), 2)):
        failures.append("no withdrawal-bearing profile in the sweep — the "
                        "centralized-vs-decentralized gate never ran")

    for flag in ("empty_book_identity", "availability_gate", "slo_finite"):
        if report.get(flag) is not True:
            failures.append(f"report flag {flag} is not true")

    flaps_on = report.get("storm_flaps_hysteresis_on")
    flaps_off = report.get("storm_flaps_hysteresis_off")
    if not is_uint(flaps_on) or not is_uint(flaps_off):
        failures.append("storm_flaps_hysteresis_on/off missing or invalid")
    else:
        status = "OK " if flaps_on <= flaps_off else "REGRESSED"
        print(f"{status} chaos hysteresis: {flaps_on} storm flaps on vs "
              f"{flaps_off} off")
        if flaps_on > flaps_off:
            failures.append(f"spare-grant hysteresis increased storm flaps: "
                            f"{flaps_on} on vs {flaps_off} off")
        if flaps_off > 0 and flaps_on >= flaps_off:
            failures.append(f"spare-grant hysteresis did not reduce storm "
                            f"flaps: {flaps_on} on vs {flaps_off} off")
    return failures


def check_mega(path: str) -> list:
    """Standalone gate for a report carrying a mega_scale section."""
    with open(path) as f:
        report = json.load(f)
    if "mega_scale" not in report:
        return [f"no mega_scale section in {path}"]
    return validate_mega_scale(report["mega_scale"])


# Fields every adversary-sweep point must carry, with (type check, floor).
SWEEP_POINT_FIELDS = {
    "byzantine_fraction": float,
    "byzantine_parties": int,
    "fraud_injected": int,
    "fraud_detected": int,
    "quarantined_parties": int,
    "expelled_parties": int,
    "mean_detection_epochs": float,
    "total_slashed": float,
    "honest_core_welfare": float,
    "honest_core_payoff": float,
    "mean_honest_balance": float,
}

# Honest payoff may wiggle by numerical noise, never by economics.
PAYOFF_MONOTONE_TOLERANCE = 1e-9

# Doppler-fit audit floor: fraction of forged tracks the fit must reject at
# every detectable (gated) sophistication level.
RF_DETECTION_FLOOR = 0.99

# Forgery ladder the doppler axis must report, in sophistication order;
# ephemeris_exact is the documented blind spot (gated must be false there).
RF_FORGERY_LEVELS = ["flat_tone", "linear_ramp", "time_mirrored", "ephemeris_exact"]

RF_DOPPLER_FIELDS = {
    "level": str,
    "gated": bool,
    "forged_submitted": int,
    "forged_rejected": int,
    "honest_submitted": int,
    "honest_flagged": int,
    "detection_rate": float,
}

RF_JAMMING_FIELDS = {
    "jammer_fraction": float,
    "jamming_parties": int,
    "capacity_nominal_bps": float,
    "capacity_realized_bps": float,
    "honest_welfare": float,
    "violations_detected": int,
    "quarantined_parties": int,
    "expelled_parties": int,
    "total_slashed": float,
}


def check_rf_section(rf) -> list:
    """Schema + gates for the RF section of an adversary-sweep report."""
    failures = []
    if not isinstance(rf, dict):
        return ["rf section missing or not an object (RF-grounded audit "
                "results are required)"]
    if not is_uint(rf.get("doppler_trials")) or rf.get("doppler_trials") == 0:
        failures.append("rf.doppler_trials missing or not a positive integer")

    doppler = rf.get("doppler")
    if not isinstance(doppler, list) or not doppler:
        failures.append("rf.doppler missing or empty")
    else:
        levels = []
        for i, point in enumerate(doppler):
            if not isinstance(point, dict):
                failures.append(f"rf.doppler[{i}] is not an object")
                continue
            for field, kind in RF_DOPPLER_FIELDS.items():
                value = point.get(field)
                if kind is int and not is_uint(value):
                    failures.append(
                        f"rf.doppler[{i}].{field} is not a non-negative integer")
                elif kind is float and (not is_number(value) or value < 0.0):
                    failures.append(
                        f"rf.doppler[{i}].{field} is not a non-negative number")
                elif kind is bool and not isinstance(value, bool):
                    failures.append(f"rf.doppler[{i}].{field} is not a boolean")
                elif kind is str and not isinstance(value, str):
                    failures.append(f"rf.doppler[{i}].{field} is not a string")
            if failures:
                continue
            levels.append(point["level"])
            status = "OK "
            if point["gated"] and point["detection_rate"] < RF_DETECTION_FLOOR:
                status = "MISSED"
                failures.append(
                    f"rf.doppler[{i}] ({point['level']}): detection rate "
                    f"{point['detection_rate']:.4f} below the "
                    f"{RF_DETECTION_FLOOR:.2f} floor")
            if point["honest_flagged"] != 0:
                status = "MISSED"
                failures.append(
                    f"rf.doppler[{i}] ({point['level']}): flagged "
                    f"{point['honest_flagged']} honest receipts (must be 0)")
            print(f"{status} rf doppler {point['level']}: "
                  f"rejected {point['forged_rejected']}/"
                  f"{point['forged_submitted']} forged, flagged "
                  f"{point['honest_flagged']}/{point['honest_submitted']} honest")
        if levels and levels != RF_FORGERY_LEVELS:
            failures.append(f"rf.doppler levels are {levels}, expected the "
                            f"full ladder {RF_FORGERY_LEVELS}")

    jamming = rf.get("jamming")
    if not isinstance(jamming, list) or not jamming:
        failures.append("rf.jamming missing or empty")
    else:
        schema_ok = True
        for i, point in enumerate(jamming):
            if not isinstance(point, dict):
                failures.append(f"rf.jamming[{i}] is not an object")
                schema_ok = False
                continue
            for field, kind in RF_JAMMING_FIELDS.items():
                value = point.get(field)
                if kind is int and not is_uint(value):
                    failures.append(
                        f"rf.jamming[{i}].{field} is not a non-negative integer")
                    schema_ok = False
                elif kind is float and (not is_number(value) or value < 0.0):
                    failures.append(
                        f"rf.jamming[{i}].{field} is not a non-negative number")
                    schema_ok = False
        if schema_ok:
            if jamming[0]["jammer_fraction"] != 0.0:
                failures.append("rf.jamming[0].jammer_fraction is not 0 "
                                "(the sweep must anchor on the clean baseline)")
            for i, point in enumerate(jamming):
                if i > 0:
                    if point["jammer_fraction"] <= jamming[i - 1]["jammer_fraction"]:
                        failures.append(
                            f"rf.jamming fractions not strictly increasing at [{i}]")
                    if (point["honest_welfare"] >
                            jamming[i - 1]["honest_welfare"] +
                            PAYOFF_MONOTONE_TOLERANCE):
                        failures.append(
                            f"rf.jamming[{i}]: honest_welfare "
                            f"{point['honest_welfare']:.6f} rose above "
                            f"{jamming[i - 1]['honest_welfare']:.6f} as the "
                            f"jammer fraction grew")
                # Detection >= injection for continuous emitters: every
                # jamming party must yield at least one attributed violation.
                detected = point["violations_detected"]
                jammers = point["jamming_parties"]
                status = "OK " if detected >= jammers else "MISSED"
                print(f"{status} rf jamming f={point['jammer_fraction']:.3f}: "
                      f"{detected} violations / {jammers} jammers, "
                      f"honest welfare {point['honest_welfare']:.4f}")
                if detected < jammers:
                    failures.append(
                        f"rf.jamming[{i}]: {detected} violations detected < "
                        f"{jammers} jamming parties")

    for flag in ("rf_detection_gate", "rf_honest_clean", "rf_welfare_monotone",
                 "rf_violations_detected"):
        if rf.get(flag) is not True:
            failures.append(f"rf flag {flag} is not true")
    return failures


def check_adversary_sweep(path: str) -> list:
    """Returns a list of failure strings (empty = report passes the gate)."""
    with open(path) as f:
        report = json.load(f)
    failures = []

    workload = report.get("workload")
    if not isinstance(workload, dict):
        failures.append("workload section missing or not an object")
    else:
        for field in ("parties", "satellites", "terminals", "stations",
                      "epochs", "seed"):
            if not is_uint(workload.get(field)) or workload.get(field) == 0:
                failures.append(f"workload.{field} missing or not a positive integer")

    points = report.get("points")
    if not isinstance(points, list) or not points:
        failures.append("points missing or empty")
        return failures

    for i, point in enumerate(points):
        if not isinstance(point, dict):
            failures.append(f"points[{i}] is not an object")
            continue
        for field, kind in SWEEP_POINT_FIELDS.items():
            value = point.get(field)
            numeric = (isinstance(value, (int, float))
                       and not isinstance(value, bool))
            if kind is int and not is_uint(value):
                failures.append(f"points[{i}].{field} is not a non-negative integer")
            elif kind is float and (not numeric or value < 0.0):
                failures.append(f"points[{i}].{field} is not a non-negative number")
    if failures:
        return failures

    if points[0]["byzantine_fraction"] != 0.0:
        failures.append("points[0].byzantine_fraction is not 0 "
                        "(the sweep must anchor on the honest baseline)")
    for i in range(1, len(points)):
        if points[i]["byzantine_fraction"] <= points[i - 1]["byzantine_fraction"]:
            failures.append(f"byzantine fractions not strictly increasing at "
                            f"points[{i}]")

    for i, point in enumerate(points):
        injected = point["fraud_injected"]
        detected = point["fraud_detected"]
        status = "OK " if detected >= injected else "MISSED"
        print(f"{status} f={point['byzantine_fraction']:.3f}: "
              f"detected {detected} / injected {injected}, "
              f"honest payoff {point['honest_core_payoff']:.2f}")
        if detected < injected:
            failures.append(f"points[{i}]: audit detected {detected} < "
                            f"injected {injected}")
        if i > 0:
            prev = points[i - 1]["honest_core_payoff"]
            if point["honest_core_payoff"] > prev + PAYOFF_MONOTONE_TOLERANCE:
                failures.append(
                    f"points[{i}]: honest_core_payoff "
                    f"{point['honest_core_payoff']:.6f} rose above "
                    f"{prev:.6f} as the byzantine fraction grew")

    for flag in ("honest_payoff_monotone", "fraud_detected_ge_injected"):
        if report.get(flag) is not True:
            failures.append(f"report flag {flag} is not true")

    failures.extend(check_rf_section(report.get("rf")))
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup drop (default 0.2)")
    parser.add_argument("--adversary-sweep", metavar="FILE",
                        help="validate a BENCH_adversary_sweep.json report "
                             "(no baseline needed)")
    parser.add_argument("--mega", metavar="FILE",
                        help="validate the mega_scale section of a perf "
                             "report absolutely (no baseline needed)")
    parser.add_argument("--chaos", metavar="FILE",
                        help="validate a BENCH_chaos_sweep.json report "
                             "(no baseline needed)")
    args = parser.parse_args()

    if args.adversary_sweep:
        failures = check_adversary_sweep(args.adversary_sweep)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("adversary sweep check passed")
        if not (args.baseline and args.current) and not args.mega \
                and not args.chaos:
            return 0

    if args.chaos:
        failures = check_chaos(args.chaos)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("chaos sweep check passed")
        if not (args.baseline and args.current) and not args.mega:
            return 0

    if args.mega:
        failures = check_mega(args.mega)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("mega scale check passed")
        if not (args.baseline and args.current):
            return 0

    if not (args.baseline and args.current):
        parser.error("--baseline and --current are required unless "
                     "--adversary-sweep, --mega or --chaos is given")

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    for section, flag in IDENTITY_FLAGS:
        if section not in current:
            continue
        if current[section].get(flag) is not True:
            failures.append(f"{section}.{flag} is not true in {args.current}")

    if "backend_compare" in current:
        backend_problems = validate_backend_compare(current["backend_compare"])
        failures.extend(backend_problems)
        if not backend_problems:
            cross = current["backend_compare"]["cross_backend"]
            print(f"OK  backend_compare schema-valid (sgp4-vs-j2 max error "
                  f"{cross['max_error_m'] / 1e3:.1f} km, envelope "
                  f"{cross['envelope_m'] / 1e3:.0f} km)")

    if "mega_scale" in current:
        mega_problems = validate_mega_scale(current["mega_scale"])
        failures.extend(mega_problems)

    if "scheduler_compare" in current:
        if "obs" not in current:
            failures.append(f"scheduler_compare present but no obs section in "
                            f"{args.current}")
        else:
            obs_problems = validate_obs(current["obs"])
            failures.extend(obs_problems)
            if not obs_problems:
                n_counters = len(current["obs"]["counters"])
                n_hists = len(current["obs"]["histograms"])
                print(f"OK  obs section schema-valid "
                      f"({n_counters} counters, {n_hists} histograms)")

    for section, sub in SPEEDUPS:
        if section not in baseline or section not in current:
            continue
        base = baseline[section][sub]["speedup"]
        cur = current[section][sub]["speedup"]
        floor = (1.0 - args.tolerance) * base
        status = "OK " if cur >= floor else "REGRESSED"
        print(f"{status} {section}.{sub}: current {cur:.2f}x vs baseline "
              f"{base:.2f}x (floor {floor:.2f}x)")
        if cur < floor:
            failures.append(
                f"{section}.{sub} regressed: {cur:.2f}x < {floor:.2f}x "
                f"({(1.0 - args.tolerance) * 100:.0f}% of baseline {base:.2f}x)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
