// Global coverage map and incentive field: renders an ASCII map of where a
// constellation provides service, finds the worst coverage holes, and shows
// the §3.2 hole-weighted reward multipliers that steer the next launches.
//
//   ./coverage_map [--days=1 --step=300]
#include <cstdio>

#include "core/mpleo.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(argc, argv,
                                   sim::ScenarioBuilder()
                                       .duration_seconds(86400.0)
                                       .step_seconds(300.0)
                                       .build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n\n", sim::describe(scenario).c_str());

  // A 200-satellite sample of the Starlink catalog (an early MP-LEO).
  const auto catalog = constellation::build_starlink_catalog(scenario.epoch);
  util::Xoshiro256PlusPlus rng(scenario.seed);
  const auto sats = constellation::sample_satellites(catalog, 200, rng);

  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);
  const cov::EarthGrid grid(6.0);
  std::printf("computing coverage of %zu satellites over %zu grid cells...\n\n",
              sats.size(), grid.size());
  const std::vector<double> fractions = cov::cell_coverage(engine, grid, sats);

  std::printf("time-averaged coverage map ('#'>=90%%, '+'>=60%%, '-'>=30%%, '.'>0):\n\n");
  std::fputs(cov::ascii_coverage_map(grid, fractions).c_str(), stdout);

  std::printf("\nglobal area-weighted coverage: %s\n",
              util::Table::pct(cov::global_coverage_fraction(grid, fractions)).c_str());

  std::printf("\nworst coverage holes:\n");
  for (std::size_t cell : cov::worst_cells(fractions, 5)) {
    const auto& center = grid.cells()[cell].center;
    std::printf("  lat %+6.1f lon %+7.1f : covered %s\n",
                util::rad_to_deg(center.latitude_rad),
                util::rad_to_deg(center.longitude_rad),
                util::Table::pct(fractions[cell]).c_str());
  }

  // The incentive field: what operating one more satellite earns, by orbit.
  const auto multipliers = core::reward_multipliers(fractions, core::IncentiveConfig{});
  std::printf("\nexpected reward rate (tokens/hour) of one added satellite:\n");
  for (const double incl : {0.0, 43.0, 53.0, 70.0, 97.6}) {
    constellation::Satellite probe;
    probe.elements = orbit::ClassicalElements::circular(550e3, incl, 30.0, 0.0);
    probe.epoch = scenario.epoch;
    const double rate = core::expected_reward_rate(engine, grid, multipliers, probe);
    std::printf("  inclination %5.1f deg : %.4f\n", incl, rate);
  }
  std::printf("\nthe best-paying inclination is the one whose ground track dwells\n"
              "in the under-covered bands of the map above (for this 53-degree-\n"
              "heavy sample, the equatorial gap) — rewards follow coverage holes,\n"
              "which is the paper's §3.2/§3.3 incentive alignment.\n");
  return 0;
}
