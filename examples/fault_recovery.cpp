// Failure with recovery: Figure 5 revisited as a *transient* event (§3.4).
//
// The paper's withdrawal experiment removes half the constellation forever.
// Here the same half merely fails — party B's fleet goes dark for six hours
// and comes back — and the fault layer closes the loop economically:
//
//   1. the coverage curve dips during the outage and recovers after it,
//   2. a sim::SimEngine interleaves the fail/repair edges with an hourly
//      health poll (SimEngine::every),
//   3. the outage blows through the SLA's maximum-gap clause and the penalty
//      settles on the token ledger,
//   4. the reputation tracker ingests each party's outage seconds, so the
//      unreliable party's spare-capacity priority erodes.
//
//   ./fault_recovery [--step=60 --mask=25]
#include <algorithm>
#include <cstdio>

#include "core/mpleo.hpp"
#include "sim/engine.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(argc, argv,
                                   sim::ScenarioBuilder()
                                       .duration_seconds(86400.0)
                                       .step_seconds(60.0)
                                       .build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n\n", sim::describe(scenario).c_str());

  // Two parties contributing interleaved planes of one 48-satellite shell.
  constellation::WalkerShell shell;
  shell.label = "MP";
  shell.plane_count = 6;
  shell.sats_per_plane = 8;
  shell.phasing_factor = 1;
  std::vector<constellation::Satellite> sats = shell.build(scenario.epoch);
  std::vector<std::size_t> fleet_all, fleet_b;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    sats[i].owner_party = static_cast<std::uint32_t>(i % 2);
    fleet_all.push_back(i);
    if (sats[i].owner_party == 1) fleet_b.push_back(i);
  }

  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);
  const std::vector<cov::GroundSite> sites = cov::sites_from_cities(cov::paper_cities());
  cov::VisibilityCache cache(engine, sats, sites);
  sim::RunContext context(scenario);
  cache.precompute_all(context);

  // Party B's fleet fails at t=6h and is repaired at t=12h.
  const double fail_s = 6.0 * 3600.0;
  const double repair_s = 12.0 * 3600.0;
  fault::FaultTimeline faults(engine.grid(), sats.size(), 0);
  for (std::size_t i : fleet_b) faults.add_satellite_outage(i, fail_s, repair_s);

  // 1. The Fig-5 curve, but with a right-hand side: coverage per 2 h bucket.
  std::printf("weighted coverage per 2h bucket (outage %s .. %s):\n",
              util::Table::duration(fail_s).c_str(),
              util::Table::duration(repair_s).c_str());
  const std::size_t steps = engine.grid().count;
  const std::size_t bucket_steps = static_cast<std::size_t>(7200.0 / scenario.step_s);
  std::vector<cov::StepMask> healthy_masks, faulted_masks;
  for (std::size_t j = 0; j < sites.size(); ++j) {
    healthy_masks.push_back(cache.union_mask(fleet_all, j));
    faulted_masks.push_back(cache.union_mask(fleet_all, j, &faults));
  }
  for (std::size_t b = 0; b * bucket_steps < steps; ++b) {
    const std::size_t lo = b * bucket_steps;
    const std::size_t hi = std::min(steps, lo + bucket_steps);
    double healthy = 0.0, faulted = 0.0;
    for (std::size_t j = 0; j < sites.size(); ++j) {
      std::size_t h = 0, f = 0;
      for (std::size_t k = lo; k < hi; ++k) {
        h += healthy_masks[j].test(k) ? 1u : 0u;
        f += faulted_masks[j].test(k) ? 1u : 0u;
      }
      const double denom = static_cast<double>(hi - lo);
      healthy += cache.site_weight(j) * static_cast<double>(h) / denom;
      faulted += cache.site_weight(j) * static_cast<double>(f) / denom;
    }
    std::printf("  %5s  healthy %5.1f%%  faulted %5.1f%%  %s\n",
                util::Table::duration(static_cast<double>(lo) * scenario.step_s).c_str(),
                healthy * 100.0, faulted * 100.0,
                faulted + 1e-9 < healthy ? "<-- degraded" : "");
  }

  // 2. Discrete-event view: fail/repair edges interleaved with an hourly poll.
  sim::SimEngine sim;
  std::size_t down = 0, fail_edges = 0, repair_edges = 0;
  for (const fault::FaultEvent& ev : faults.events()) {
    sim.at(ev.time_s, [&, ev] {
      if (ev.failed) {
        ++down;
        ++fail_edges;
      } else {
        --down;
        ++repair_edges;
      }
    });
  }
  std::vector<std::size_t> hourly;
  sim.every(3600.0, scenario.duration_s, [&] { hourly.push_back(down); });
  sim.run_until(scenario.duration_s);
  std::printf("\nsim: %zu fail edges, %zu repair edges; satellites down at each hour:\n  ",
              fail_edges, repair_edges);
  for (std::size_t n : hourly) std::printf("%zu ", n);
  std::printf("\n");

  // 3. SLA: party B sells coverage of one city backed by its own fleet. The
  // terms are calibrated to what healthy geometry delivers, so only the
  // injected outage can break them.
  const std::size_t site = 0;
  const cov::CoverageStats healthy_b = engine.stats(cache.union_mask(fleet_b, site));
  core::SlaTerms terms;
  terms.name = sites[site].name + "-coverage";
  terms.min_coverage_fraction = 0.9 * healthy_b.covered_fraction;
  terms.max_gap_seconds = std::max(7200.0, 1.5 * healthy_b.max_gap_seconds);
  terms.penalty_per_violation = 40.0;
  const core::SlaReport before = core::evaluate_sla(terms, healthy_b);
  context.use_faults(&faults);
  const core::SlaReport after =
      core::evaluate_sla(terms, cache, fleet_b, site, context);
  std::printf("\nSLA \"%s\" (min coverage %.1f%%, max gap %s):\n", terms.name.c_str(),
              terms.min_coverage_fraction * 100.0,
              util::Table::duration(terms.max_gap_seconds).c_str());
  std::printf("  healthy: %s\n", before.compliant ? "compliant" : "VIOLATED");
  std::printf("  faulted: %s", after.compliant ? "compliant" : "VIOLATED");
  for (const core::SlaViolation& v : after.violations) {
    std::printf("  [%s required %.3g delivered %.3g]", core::to_string(v.clause),
                v.required, v.delivered);
  }
  std::printf("\n");

  core::Ledger ledger;
  const core::AccountId provider = ledger.open_account("party-B");
  const core::AccountId customer = ledger.open_account("customer");
  ledger.mint(1000.0);
  if (!ledger.reward(provider, 200.0, "service escrow")) return 1;
  if (!core::settle_sla_penalty(after, ledger, provider, customer)) {
    std::printf("  provider could not cover the penalty\n");
  }
  std::printf("  penalty %.1f settled: party-B %.1f, customer %.1f tokens\n",
              after.total_penalty, ledger.balance(provider), ledger.balance(customer));

  // 4. Reputation: downtime erodes the faulty party's spare-capacity weight.
  std::vector<std::uint32_t> owners;
  for (const constellation::Satellite& s : sats) owners.push_back(s.owner_party);
  const std::vector<double> outage_s = faults.outage_seconds_by_party(owners, {}, 2);
  core::ReputationTracker reputation(2);
  for (core::PartyId p = 0; p < 2; ++p) {
    reputation.record_outage(p, outage_s[p]);
  }
  std::printf("\nreputation after the outage epoch:\n");
  for (core::PartyId p = 0; p < 2; ++p) {
    std::printf("  party %c: %6.1f asset-hours down, score %.3f, spare priority %.3f\n",
                p == 0 ? 'A' : 'B', outage_s[p] / 3600.0, reputation.score(p),
                reputation.priority_weight(p));
  }

  std::printf("\nobs: %llu SLA evaluation(s), %llu violation(s) on the run context\n",
              static_cast<unsigned long long>(
                  context.metrics().counter_value("sla.evaluations")),
              static_cast<unsigned long long>(
                  context.metrics().counter_value("sla.violations")));
  return 0;
}
