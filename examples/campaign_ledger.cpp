// A week in the life of an MP-LEO consortium, via the core::Campaign facade:
// daily epochs of scheduling, settlement, proof-of-coverage and token
// emission — with the largest party rage-quitting on day 4 and the network
// degrading proportionally instead of dying (§3.4).
//
//   ./campaign_ledger [--step=180]
#include <cstdio>

#include "core/mpleo.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(argc, argv,
                                   sim::ScenarioBuilder().step_seconds(180.0).build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // Three parties of uneven size.
  core::Consortium consortium;
  struct Founder {
    const char* name;
    double lat, lon;
    int sats;
    double raan;
  };
  const Founder founders[] = {
      {"MegaCorp", 37.77, -122.42, 12, 0.0},
      {"Taiwan", 25.03, 121.56, 6, 120.0},
      {"Kenya", -1.29, 36.82, 4, 240.0},
  };
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  for (std::size_t i = 0; i < std::size(founders); ++i) {
    const Founder& f = founders[i];
    core::Party party;
    party.name = f.name;
    party.home_region = orbit::Geodetic::from_degrees(f.lat, f.lon);
    const auto id = consortium.add_party(party);
    consortium.contribute(id, constellation::single_plane(550e3, 53.0, f.raan, f.sats,
                                                          scenario.epoch, f.raan / 5.0));

    net::Terminal t;
    t.id = static_cast<net::TerminalId>(i);
    t.location = party.home_region;
    t.owner_party = id;
    t.radio = net::default_user_terminal();
    terminals.push_back(t);
    net::GroundStation gs;
    gs.id = static_cast<net::GroundStationId>(i);
    gs.location = orbit::Geodetic::from_degrees(f.lat + 0.5, f.lon - 0.5);
    gs.owner_party = id;
    gs.radio = net::default_ground_station();
    stations.push_back(gs);
  }

  core::CampaignConfig config;
  config.start = scenario.epoch;
  config.step_s = scenario.step_s;
  config.settlement.dynamic = true;
  core::Campaign campaign(std::move(consortium), terminals, stations, config,
                          scenario.seed);
  sim::RunContext context(scenario);

  std::printf("campaign: 7 daily epochs; MegaCorp (largest) withdraws before day 4\n\n");
  util::Table table({"day", "sats", "served", "unserved", "fairness", "cleared",
                     "poc ok/rej", "MegaCorp", "Taiwan", "Kenya"});
  for (int day = 1; day <= 7; ++day) {
    if (day == 4) {
      const std::size_t removed = campaign.withdraw_party(0);
      std::printf("!! MegaCorp withdraws %zu satellites at the start of day 4\n\n",
                  removed);
    }
    const core::EpochReport r = campaign.run_epoch(context);
    table.add_row({std::to_string(day), std::to_string(r.active_satellites),
                   util::Table::duration(r.total_served_seconds),
                   util::Table::duration(r.total_unserved_seconds),
                   util::Table::num(r.service_fairness, 2),
                   util::Table::num(r.settlement.total_cleared, 1),
                   std::to_string(r.poc_valid) + "/" + std::to_string(r.poc_rejected),
                   util::Table::num(r.balances[0], 1),
                   util::Table::num(r.balances[1], 1),
                   util::Table::num(r.balances[2], 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nafter the largest party leaves, service shrinks but continues —\n"
              "remaining parties keep earning; the ledger conserves: sum=%.1f of\n"
              "%.1f minted.\n",
              campaign.ledger().sum_of_balances(), campaign.ledger().total_minted());

  std::printf("\nrun context observed %llu epochs; campaign trace:\n%s",
              static_cast<unsigned long long>(
                  context.metrics().counter_value("campaign.epochs")),
              context.trace().to_string().c_str());
  return 0;
}
