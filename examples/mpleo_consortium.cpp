// Full MP-LEO consortium walkthrough: four parties contribute satellites,
// terminals ride each other's spare capacity through transparent bent-pipes,
// usage settles on the token ledger, proof-of-coverage receipts earn
// rewards, leftover capacity clears on the open market — and then one party
// withdraws mid-simulation and the constellation degrades gracefully.
//
//   ./mpleo_consortium [--days=1 --step=120]
#include <cstdio>

#include "core/mpleo.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

using namespace mpleo;

namespace {

net::Terminal terminal_at(double lat, double lon, core::PartyId party,
                          net::TerminalId id) {
  net::Terminal t;
  t.id = id;
  t.name = "T" + std::to_string(id);
  t.location = orbit::Geodetic::from_degrees(lat, lon);
  t.owner_party = party;
  t.radio = net::default_user_terminal();
  return t;
}

net::GroundStation station_at(double lat, double lon, core::PartyId party,
                              net::GroundStationId id) {
  net::GroundStation gs;
  gs.id = id;
  gs.name = "G" + std::to_string(id);
  gs.location = orbit::Geodetic::from_degrees(lat, lon);
  gs.owner_party = party;
  gs.radio = net::default_ground_station();
  return gs;
}

}  // namespace

int main(int argc, char** argv) {
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(argc, argv,
                                   sim::ScenarioBuilder()
                                       .duration_seconds(86400.0)
                                       .step_seconds(120.0)
                                       .build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n\n", sim::describe(scenario).c_str());

  // --- 1. Membership --------------------------------------------------------
  core::Consortium consortium;
  struct Member {
    const char* name;
    core::PartyKind kind;
    double lat, lon;
    int sats;
    double raan;
  };
  const Member members[] = {
      {"Taiwan", core::PartyKind::kCountry, 25.03, 121.56, 10, 0.0},
      {"KoreaISP", core::PartyKind::kCompany, 37.57, 126.98, 8, 60.0},
      {"BrazilTel", core::PartyKind::kCompany, -23.55, -46.63, 6, 120.0},
      {"Nigeria", core::PartyKind::kCountry, 6.52, 3.38, 4, 240.0},
  };
  for (const Member& m : members) {
    core::Party party;
    party.name = m.name;
    party.kind = m.kind;
    party.home_region = orbit::Geodetic::from_degrees(m.lat, m.lon);
    const core::PartyId id = consortium.add_party(party);
    consortium.contribute(id, constellation::single_plane(
                                  550e3, 53.0, m.raan, m.sats, scenario.epoch,
                                  m.raan / 3.0));
  }
  std::printf("consortium: %zu parties, %zu satellites\n",
              consortium.parties().size(), consortium.active_satellite_count());
  for (const core::Party& p : consortium.parties()) {
    std::printf("  %-10s %-8s stake %5.1f%%\n", p.name.c_str(), to_string(p.kind),
                100.0 * consortium.stake(p.id));
  }

  // --- 2. Ground segment (own + one rented GSaaS teleport each) -------------
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  const net::GsaasInventory teleports = net::GsaasInventory::global_default();
  for (std::size_t i = 0; i < std::size(members); ++i) {
    const Member& m = members[i];
    const auto party = static_cast<core::PartyId>(i);
    terminals.push_back(terminal_at(m.lat, m.lon, party,
                                    static_cast<net::TerminalId>(i)));
    stations.push_back(station_at(m.lat + 0.4, m.lon - 0.4, party,
                                  static_cast<net::GroundStationId>(i)));
    // Rent the cheapest teleport within 3000 km (§3.1's GSaaS path).
    if (const auto rented = teleports.cheapest_near(
            orbit::Geodetic::from_degrees(m.lat, m.lon), 3000e3)) {
      net::GroundStation gs = rented->station;
      gs.owner_party = party;
      stations.push_back(gs);
      std::printf("  %-10s rents %s at %.1f tokens/min\n", m.name,
                  gs.name.c_str(), rented->price_per_minute);
    }
  }

  // --- 3. Spectrum ----------------------------------------------------------
  net::ChannelTable channels(net::standard_band_plans()[1]);  // Ku band
  for (std::size_t i = 0; i < std::size(members); ++i) {
    const auto grant = channels.grant(62.5e6, static_cast<std::uint32_t>(i));
    if (grant) {
      std::printf("  %-10s granted Ku channel #%u (uplink %.4f GHz)\n",
                  members[i].name, grant->id, grant->uplink_center_hz / 1e9);
    }
  }

  // --- 4. A day of bent-pipe scheduling -------------------------------------
  const net::BentPipeScheduler scheduler(net::SchedulerConfig{},
                                         consortium.active_satellites(), terminals,
                                         stations);
  sim::RunContext context(scenario);
  const net::ScheduleResult usage =
      scheduler.run(scenario.grid(), consortium.parties().size(), context);

  std::printf("\nusage over %s:\n",
              util::Table::duration(scenario.grid().duration_seconds()).c_str());
  util::Table usage_table({"party", "own link", "spare used", "spare provided",
                           "unserved"});
  for (std::size_t p = 0; p < usage.per_party.size(); ++p) {
    const net::PartyUsage& u = usage.per_party[p];
    usage_table.add_row({consortium.parties()[p].name,
                         util::Table::duration(u.own_link_seconds),
                         util::Table::duration(u.spare_used_seconds),
                         util::Table::duration(u.spare_provided_seconds),
                         util::Table::duration(u.unserved_terminal_seconds)});
  }
  std::fputs(usage_table.to_string().c_str(), stdout);

  // --- 5. Settlement on the ledger ------------------------------------------
  core::Ledger ledger;
  ledger.mint(4000.0, "genesis");
  std::vector<core::AccountId> accounts;
  for (const core::Party& p : consortium.parties()) {
    accounts.push_back(ledger.open_account(p.name));
    (void)ledger.reward(accounts.back(), 800.0, "bootstrap grant");
  }
  core::SettlementConfig settle_cfg;
  settle_cfg.dynamic = true;
  settle_cfg.dynamic_config.base = settle_cfg.pricing;
  const core::SettlementReport settlement = settle(usage, accounts, settle_cfg, ledger);
  std::printf("\nsettlement: %.2f tokens cleared, utilization %.0f%%, price x%.2f\n",
              settlement.total_cleared, settlement.utilization * 100.0,
              settlement.price_multiplier);

  // --- 6. Proof-of-coverage spot checks --------------------------------------
  core::ProofOfCoverage poc{core::ProofOfCoverage::Config{}};
  sim::TraceRecorder trace;
  const auto sats = consortium.active_satellites();
  std::vector<std::uint64_t> keys;
  keys.reserve(sats.size());
  for (const auto& sat : sats) keys.push_back(poc.register_satellite(sat, scenario.seed));
  // A verifier under each party's home region pings whatever passes overhead.
  std::size_t valid = 0, rejected = 0;
  for (const Member& m : members) {
    const auto verifier =
        poc.register_verifier(orbit::Geodetic::from_degrees(m.lat, m.lon));
    for (std::size_t s = 0; s < sats.size(); ++s) {
      for (int hour = 0; hour < 24; hour += 6) {
        const auto t = scenario.epoch.plus_seconds(hour * 3600.0);
        const auto receipt = core::ProofOfCoverage::answer_challenge(
            sats[s].id, keys[s], verifier, t, static_cast<std::uint64_t>(hour));
        const auto verdict =
            poc.verify_and_reward(receipt, ledger, accounts[sats[s].owner_party]);
        if (verdict == core::ReceiptVerdict::kValid) {
          ++valid;
          trace.record(hour * 3600.0, "poc",
                       sats[s].name + " verified over " + m.name);
        } else {
          ++rejected;
        }
      }
    }
  }
  std::printf("proof-of-coverage: %zu receipts valid, %zu rejected (not overhead)\n",
              valid, rejected);

  // --- 7. Market for tomorrow's spare capacity -------------------------------
  core::CapacityMarket market;
  for (std::size_t p = 0; p < accounts.size(); ++p) {
    const double spare_gb = usage.per_party[p].spare_provided_seconds / 60.0;
    if (spare_gb > 0.0) {
      market.post_ask({static_cast<std::uint32_t>(p), accounts[p], spare_gb, 3.0});
    }
    const double need_gb = usage.per_party[p].unserved_terminal_seconds / 120.0;
    if (need_gb > 0.0) {
      market.post_bid({static_cast<std::uint32_t>(p), accounts[p], need_gb, 6.0});
    }
  }
  const core::ClearingResult cleared = market.clear(ledger);
  std::printf("market: %.1f GB cleared at avg %.2f tokens/GB (%zu trades)\n",
              cleared.cleared_gb, cleared.average_price(), cleared.trades.size());

  // --- 8. Withdrawal drill ----------------------------------------------------
  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);
  const auto sites = cov::sites_from_cities(cov::paper_cities());
  const double before =
      engine.weighted_coverage_seconds(consortium.active_satellites(), sites);
  const core::PartyId biggest = consortium.largest_party();
  const std::string biggest_name = consortium.parties()[biggest].name;
  const double stake = consortium.stake(biggest);
  consortium.withdraw_party(biggest);
  const double after =
      engine.weighted_coverage_seconds(consortium.active_satellites(), sites);
  std::printf("\nwithdrawal drill: %s (stake %.0f%%) exits\n", biggest_name.c_str(),
              stake * 100.0);
  std::printf("  weighted coverage %s -> %s (%.1f%% drop; network survives)\n",
              util::Table::duration(before).c_str(),
              util::Table::duration(after).c_str(), 100.0 * (before - after) / before);

  std::printf("\nfinal balances:\n");
  for (std::size_t p = 0; p < accounts.size(); ++p) {
    std::printf("  %-10s %8.2f tokens\n", ledger.account_name(accounts[p]).c_str(),
                ledger.balance(accounts[p]));
  }
  return 0;
}
