// Incremental deployment planner (§3.3): given today's constellation, where
// should the next k satellites go? Runs the greedy gap-filling optimizer and
// prints a launch plan with the marginal population-weighted coverage each
// slot buys — the quantity a revenue-seeking MP-LEO participant maximizes.
//
//   ./gap_filling_planner [--days=2 --step=120]
#include <cstdio>

#include "core/mpleo.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(argc, argv,
                                   sim::ScenarioBuilder()
                                       .duration_days(2.0)
                                       .step_seconds(120.0)
                                       .build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n\n", sim::describe(scenario).c_str());

  // Today's constellation: two sparse planes (an early MP-LEO deployment).
  std::vector<constellation::Satellite> base =
      constellation::single_plane(550e3, 53.0, 0.0, 5, scenario.epoch);
  const auto second = constellation::single_plane(550e3, 53.0, 90.0, 3, scenario.epoch,
                                                  20.0, 100);
  base.insert(base.end(), second.begin(), second.end());

  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);
  const auto sites = cov::sites_from_cities(cov::paper_cities());
  const core::PlacementOptimizer optimizer(engine, sites);

  const double window = engine.grid().duration_seconds();
  const double before = engine.weighted_coverage_seconds(base, sites);
  std::printf("current constellation: %zu satellites, weighted coverage %s (%.1f%%)\n\n",
              base.size(), util::Table::duration(before).c_str(),
              100.0 * before / window);

  // Candidate slots: the coarse LEO grid (12 RAAN x 12 phase x 4 incl x 3 alt).
  const auto slots = constellation::enumerate_slots(constellation::SlotGrid::coarse_leo());
  std::printf("searching %zu candidate slots for the next 5 launches...\n\n",
              slots.size());

  const auto picks = optimizer.plan_incremental(base, slots, scenario.epoch, 5);

  util::Table plan({"launch #", "orbital slot", "marginal gain", "cumulative coverage"});
  double cumulative = before;
  int launch = 1;
  for (const auto& pick : picks) {
    cumulative += pick.gained_weighted_seconds;
    plan.add_row({std::to_string(launch++), pick.slot.label,
                  util::Table::duration(pick.gained_weighted_seconds),
                  util::Table::pct(cumulative / window)});
  }
  std::fputs(plan.to_string().c_str(), stdout);

  std::printf(
      "\nnote how the planner spreads slots across planes/inclinations instead\n"
      "of clustering near existing satellites — the incentive alignment the\n"
      "paper's §3.3 argues makes MP-LEO constellations naturally robust.\n");
  return 0;
}
