// Quickstart: build a Walker constellation, compute coverage for a city,
// and inspect satellite passes — the five-minute tour of the library.
//
//   ./quickstart [--days=1 --step=60 --mask=25]
#include <cstdio>

#include "core/mpleo.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  // 1. Describe the evaluation window (defaults: paper epoch, 1 week, 60 s).
  sim::Scenario scenario;
  try {
    // one day is plenty for a demo
    scenario = sim::parse_scenario(
        argc, argv, sim::ScenarioBuilder().duration_seconds(86400.0).build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n\n", sim::describe(scenario).c_str());

  // 2. Build a small Walker-delta shell: 8 planes x 8 satellites at 550 km.
  constellation::WalkerShell shell;
  shell.label = "DEMO";
  shell.altitude_m = 550e3;
  shell.inclination_deg = 53.0;
  shell.plane_count = 8;
  shell.sats_per_plane = 8;
  shell.phasing_factor = 3;
  const std::vector<constellation::Satellite> sats = shell.build(scenario.epoch);
  std::printf("built %zu satellites (%s...)\n\n", sats.size(), sats.front().name.c_str());

  // 3. Coverage of Taipei across the window. The engine propagates with the
  // scenario's backend (--propagator=sgp4 switches every consumer below).
  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg,
                                   scenario.propagator);
  const orbit::TopocentricFrame taipei_frame(cov::taipei().location);
  const cov::StepMask mask = engine.coverage_mask(sats, taipei_frame);
  std::fputs(cov::site_report("Taipei", engine.stats(mask)).c_str(), stdout);

  // 4. The first few passes of one satellite, from its shared ephemeris.
  std::printf("\nfirst passes of %s over Taipei:\n", sats.front().name.c_str());
  const auto passes = cov::find_passes(engine.ephemeris(sats.front()), taipei_frame,
                                       engine.grid(), scenario.elevation_mask_deg);
  std::size_t shown = 0;
  for (const cov::Pass& p : passes) {
    std::printf("  +%7.0fs for %4.0fs, peak elevation %4.1f deg\n", p.start_offset_s,
                p.duration_s(), util::rad_to_deg(p.max_elevation_rad));
    if (++shown == 5) break;
  }
  if (passes.empty()) std::printf("  (none in this window)\n");

  // 5. Population-weighted global coverage over the paper's 21 cities.
  const auto sites = cov::sites_from_cities(cov::paper_cities());
  const double weighted = engine.weighted_coverage_seconds(sats, sites);
  std::printf("\npopulation-weighted coverage: %s of %s (%.1f%%)\n",
              util::Table::duration(weighted).c_str(),
              util::Table::duration(engine.grid().duration_seconds()).c_str(),
              100.0 * weighted / engine.grid().duration_seconds());

  // 6. Emit the first satellite as a TLE (interoperability with other tools).
  const orbit::Tle tle =
      orbit::Tle::from_elements(sats.front().elements, scenario.epoch, 90001,
                                sats.front().name);
  const orbit::TleLines lines = orbit::format_tle(tle);
  std::printf("\nTLE of %s:\n%s\n%s\n", sats.front().name.c_str(), lines.line1.c_str(),
              lines.line2.c_str());
  return 0;
}
