// The paper's motivating scenario (§1-§2): Taiwan wants trusted satellite
// connectivity. Compare:
//   (a) a sovereign constellation — how many satellites must Taiwan launch
//       alone to cover Taipei, and how idle are they?
//   (b) MP-LEO participation — contribute 50 satellites to a shared
//       1000-satellite constellation and get coverage "worth over 1000
//       satellites by trading off spare capacity" (§2).
//
//   ./taiwan_sovereign [--days=2 --runs=5]
#include <cstdio>

#include "core/mpleo.hpp"
#include "util/stats.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(
        argc, argv, sim::ScenarioBuilder().duration_days(2.0).runs(5).build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n\n", sim::describe(scenario).c_str());

  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);
  const auto catalog = constellation::build_starlink_catalog(scenario.epoch);
  const std::vector<cov::GroundSite> taipei{cov::GroundSite::from_city(cov::taipei())};
  cov::VisibilityCache cache(engine, catalog, taipei);
  util::Xoshiro256PlusPlus rng(scenario.seed);

  // --- (a) Sovereign deployment sweep -------------------------------------
  std::printf("(a) sovereign constellation for Taipei only\n");
  util::Table sovereign({"satellites launched", "Taipei uncovered %", "longest outage",
                         "mean satellite idle %"});
  for (const std::size_t n : {50UL, 100UL, 250UL, 500UL, 1000UL}) {
    util::RunningStats uncovered, gap, idle;
    for (std::size_t run = 0; run < scenario.runs; ++run) {
      util::Xoshiro256PlusPlus run_rng = rng.split(n + run * 17);
      const auto indices = constellation::sample_indices(catalog.size(), n, run_rng);
      const auto stats = engine.stats(cache.union_mask(indices, 0));
      uncovered.add(1.0 - stats.covered_fraction);
      gap.add(stats.max_gap_seconds);
      // Idle time of the first few sampled satellites (serving Taipei only).
      for (std::size_t k = 0; k < std::min<std::size_t>(10, indices.size()); ++k) {
        idle.add(1.0 - cache.mask(indices[k], 0).fraction());
      }
    }
    sovereign.add_row({std::to_string(n), util::Table::pct(uncovered.mean()),
                       util::Table::duration(gap.mean()),
                       util::Table::pct(idle.mean())});
  }
  std::fputs(sovereign.to_string().c_str(), stdout);

  // --- (b) MP-LEO participation --------------------------------------------
  std::printf("\n(b) contribute 50 satellites to a shared 1000-sat MP-LEO\n");
  util::RunningStats shared_uncovered, own_only_uncovered;
  for (std::size_t run = 0; run < scenario.runs; ++run) {
    util::Xoshiro256PlusPlus run_rng = rng.split(0xBEEF + run);
    const auto pool = constellation::sample_indices(catalog.size(), 1000, run_rng);
    const std::vector<std::size_t> own(pool.begin(), pool.begin() + 50);
    own_only_uncovered.add(1.0 - cache.union_mask(own, 0).fraction());
    shared_uncovered.add(1.0 - cache.union_mask(pool, 0).fraction());
  }
  util::Table mpleo_table({"strategy", "Taipei uncovered %", "satellites funded"});
  mpleo_table.add_row({"own 50 satellites, no sharing",
                       util::Table::pct(own_only_uncovered.mean()), "50"});
  mpleo_table.add_row({"50 contributed to shared 1000",
                       util::Table::pct(shared_uncovered.mean()), "50"});
  std::fputs(mpleo_table.to_string().c_str(), stdout);

  std::printf("\nMP-LEO participation buys coverage worth a ~1000-satellite\n"
              "constellation for a 50-satellite investment (paper §2), because\n"
              "the contributed satellites' idle capacity (see column 4 above)\n"
              "serves other regions in exchange.\n");
  return 0;
}
