// Ground-segment operations: what a software-defined ground station (§3.1's
// GSaaS model, §4's open-source receiver question) needs from the library —
// pass predictions, a contact plan, Doppler tracking profiles, handover
// rates, and a TLE export for interoperability with existing SDR tooling.
//
//   ./ground_station_ops [--days=1 --step=30]
#include <cstdio>

#include "core/mpleo.hpp"
#include "coverage/contact_plan.hpp"
#include "net/handover.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(argc, argv,
                                   sim::ScenarioBuilder()
                                       .duration_seconds(86400.0)
                                       .step_seconds(30.0)
                                       .build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n\n", sim::describe(scenario).c_str());

  // The operator's fleet: a 16-satellite slice of an MP-LEO.
  constellation::WalkerShell shell;
  shell.label = "OPS";
  shell.plane_count = 4;
  shell.sats_per_plane = 4;
  shell.phasing_factor = 1;
  const auto sats = shell.build(scenario.epoch);

  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);
  const std::vector<cov::GroundSite> station{
      {"Taipei-GS", orbit::TopocentricFrame(cov::taipei().location), 1.0}};

  // 1. Contact plan for the day.
  const auto contacts = cov::build_contact_plan(engine, sats, station);
  std::printf("contact plan: %zu contacts, %.1f min total\n", contacts.size(),
              cov::total_contact_seconds(contacts, "Taipei-GS") / 60.0);
  std::printf("first contacts:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, contacts.size()); ++i) {
    std::printf("  sat %2u  +%6.0fs .. +%6.0fs (%3.0fs)\n", contacts[i].satellite,
                contacts[i].start_offset_s, contacts[i].end_offset_s,
                contacts[i].duration_s());
  }
  std::printf("(full plan exportable as CSV: cov::contact_plan_csv)\n\n");

  // 2. Doppler tracking profile of the first contact's satellite.
  if (!contacts.empty()) {
    const auto& first = contacts.front();
    const auto& sat = sats[first.satellite];
    const auto profile = cov::doppler_profile(sat, station[0].frame, engine.grid(),
                                              scenario.elevation_mask_deg, 11.7e9);
    double max_shift = 0.0, max_rate = 0.0;
    for (const cov::DopplerSample& s : profile) {
      max_shift = std::max(max_shift, std::abs(s.doppler_shift_hz));
      max_rate = std::max(max_rate, std::abs(s.range_rate_m_per_s));
    }
    std::printf("Doppler (Ku downlink 11.7 GHz) across %zu visible samples:\n",
                profile.size());
    std::printf("  worst shift %.1f kHz (acquisition bound %.1f kHz), peak range rate "
                "%.2f km/s\n\n",
                max_shift / 1e3, cov::max_doppler_bound_hz(550e3, 11.7e9) / 1e3,
                max_rate / 1e3);
  }

  // 3. Handover behaviour of a user terminal under max-elevation selection.
  const auto timeline =
      net::serving_satellite_timeline(engine, sats, station[0].frame);
  const auto handovers = net::handover_stats(timeline, scenario.step_s);
  std::printf("terminal handover profile (max-elevation policy):\n");
  std::printf("  connected %.1f%% of the day, %zu handovers (%.1f per connected hour),\n"
              "  mean dwell %.0fs, %zu outages\n\n",
              handovers.connected_fraction * 100.0, handovers.handover_count,
              handovers.handovers_per_hour, handovers.mean_dwell_seconds,
              handovers.outage_count);

  // 4. TLE catalog export for external SDR/tracking tools.
  std::vector<orbit::Tle> tles;
  for (const auto& sat : sats) {
    tles.push_back(orbit::Tle::from_elements(sat.elements, sat.epoch,
                                             9000 + static_cast<int>(sat.id), sat.name));
  }
  const std::string catalog_text = orbit::format_tle_catalog(tles);
  const orbit::TleCatalog reparsed = orbit::parse_tle_catalog(catalog_text);
  std::printf("TLE catalog export: %zu records (%zu parse errors on re-ingest)\n",
              reparsed.entries.size(), reparsed.errors.size());
  std::printf("%s", catalog_text.substr(0, 3 * 72).c_str());
  return 0;
}
