// Bootstrapping an MP-LEO with delay-tolerant IoT service (§4).
//
// An early consortium with just a handful of satellites cannot offer
// broadband, but it CAN sell store-and-forward data collection: sensors in
// remote regions uplink when a satellite passes, the satellite delivers at
// the next gateway pass, and early contributors earn emission-weighted
// token rewards plus multi-party-governed satellite control.
//
//   ./iot_dtn [--days=7 --step=60]
#include <cstdio>

#include "core/mpleo.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(argc, argv, sim::ScenarioBuilder().build());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n\n", sim::describe(scenario).c_str());

  // Two founding parties contribute four satellites each, in different
  // planes — the §3.3 spread-out placement.
  core::Consortium consortium;
  core::Party a;
  a.name = "ArcticData";
  a.kind = core::PartyKind::kCompany;
  core::Party b;
  b.name = "AmazonasNet";
  b.kind = core::PartyKind::kCompany;
  const auto party_a = consortium.add_party(a);
  const auto party_b = consortium.add_party(b);
  consortium.contribute(party_a,
                        constellation::single_plane(550e3, 97.6, 0.0, 4, scenario.epoch));
  consortium.contribute(party_b,
                        constellation::single_plane(550e3, 53.0, 90.0, 4, scenario.epoch));
  const auto sats = consortium.active_satellites();
  std::printf("founding constellation: %zu satellites from %zu parties\n\n", sats.size(),
              consortium.parties().size());

  // IoT collection routes: remote sensor -> gateway city.
  struct Route {
    const char* name;
    double src_lat, src_lon;
    double dst_lat, dst_lon;
  };
  const Route routes[] = {
      {"Svalbard research -> Oslo", 78.2, 15.6, 59.9, 10.7},
      {"Amazon sensors -> Sao Paulo", -3.1, -60.0, -23.55, -46.63},
      {"Outback telemetry -> Melbourne", -23.7, 133.9, -37.81, 144.96},
  };

  const cov::CoverageEngine engine(scenario.grid(), 10.0);  // IoT mask: 10 deg
  util::Table table({"route", "delivered %", "mean latency", "p95 latency"});
  for (const Route& route : routes) {
    const std::vector<cov::GroundSite> endpoints{
        {"src",
         orbit::TopocentricFrame(orbit::Geodetic::from_degrees(route.src_lat,
                                                               route.src_lon)),
         1.0},
        {"dst",
         orbit::TopocentricFrame(orbit::Geodetic::from_degrees(route.dst_lat,
                                                               route.dst_lon)),
         1.0}};
    cov::StepMask up(engine.grid().count), down(engine.grid().count);
    for (const auto& sat : sats) {
      const auto masks = engine.visibility_masks(sat, endpoints);
      up |= masks[0];
      down |= masks[1];
    }
    const core::DtnStats stats = core::dtn_stats(up, down, scenario.step_s);
    const double total = static_cast<double>(stats.delivered + stats.stranded);
    table.add_row({route.name,
                   util::Table::pct(total > 0 ? stats.delivered / total : 0.0),
                   util::Table::duration(stats.mean_latency_s),
                   util::Table::duration(stats.p95_latency_s)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Early-adopter rewards: epoch 0 contributors split the richest emission.
  core::EmissionSchedule emission;
  core::Ledger ledger;
  const auto acct_a = ledger.open_account("ArcticData");
  const auto acct_b = ledger.open_account("AmazonasNet");
  for (std::size_t epoch = 0; epoch < 12; ++epoch) {
    const double minted = emission.epoch_reward(epoch);
    ledger.mint(minted, "epoch emission");
    // Split by stake (equal here: 4 sats each).
    (void)ledger.reward(acct_a, minted * consortium.stake(party_a), "epoch reward");
    (void)ledger.reward(acct_b, minted * consortium.stake(party_b), "epoch reward");
  }
  std::printf("\nfirst-year emission: %s tokens to each founder (of %.0f total supply)\n",
              util::Table::num(ledger.balance(acct_a), 0).c_str(),
              emission.total_supply());

  // Multi-party control: deorbiting a shared satellite takes both founders.
  core::QuorumPolicy policy;
  policy.council = {party_a, party_b};
  policy.required = 2;
  core::CommandAuthority authority(policy, scenario.seed);
  const auto cmd = authority.propose(sats.front().id, core::CommandAction::kDeorbit);
  auto status = authority.approve(
      cmd, core::CommandAuthority::sign(cmd, sats.front().id,
                                        core::CommandAction::kDeorbit, party_a,
                                        authority.party_key(party_a)));
  std::printf("\ndeorbit request by one founder alone: %s\n",
              status == core::CommandStatus::kAuthorized ? "EXECUTED" : "held for quorum");
  status = authority.approve(
      cmd, core::CommandAuthority::sign(cmd, sats.front().id,
                                        core::CommandAction::kDeorbit, party_b,
                                        authority.party_key(party_b)));
  std::printf("after the second founder approves: %s\n",
              status == core::CommandStatus::kAuthorized ? "EXECUTED" : "held for quorum");
  return 0;
}
