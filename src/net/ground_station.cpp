#include "net/ground_station.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/units.hpp"

namespace mpleo::net {

double great_circle_distance_m(const orbit::Geodetic& a, const orbit::Geodetic& b) noexcept {
  // Haversine on the mean sphere.
  const double dlat = b.latitude_rad - a.latitude_rad;
  const double dlon = b.longitude_rad - a.longitude_rad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h =
      s1 * s1 + std::cos(a.latitude_rad) * std::cos(b.latitude_rad) * s2 * s2;
  return 2.0 * util::kEarthMeanRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

void GsaasInventory::add_listing(TeleportListing listing) {
  listings_.push_back(std::move(listing));
}

std::optional<TeleportListing> GsaasInventory::cheapest_near(const orbit::Geodetic& near,
                                                             double max_distance_m) const {
  std::optional<TeleportListing> best;
  double best_price = std::numeric_limits<double>::infinity();
  for (const TeleportListing& listing : listings_) {
    const double d = great_circle_distance_m(near, listing.station.location);
    if (d <= max_distance_m && listing.price_per_minute < best_price) {
      best = listing;
      best_price = listing.price_per_minute;
    }
  }
  return best;
}

GsaasInventory GsaasInventory::global_default() {
  GsaasInventory inv;
  GroundStationId next_id = 1000;
  auto add = [&](const char* name, double lat, double lon, double price) {
    GroundStation gs;
    gs.id = next_id++;
    gs.name = name;
    gs.location = orbit::Geodetic::from_degrees(lat, lon);
    gs.antenna_count = 4;
    inv.add_listing({gs, price});
  };
  // Representative commercial teleport locations.
  add("Teleport-Oregon", 45.6, -121.2, 2.5);
  add("Teleport-Ohio", 40.1, -83.1, 2.5);
  add("Teleport-Ireland", 53.4, -6.3, 3.0);
  add("Teleport-Bahrain", 26.1, 50.6, 3.5);
  add("Teleport-CapeTown", -33.9, 18.6, 3.5);
  add("Teleport-Singapore", 1.35, 103.8, 3.0);
  add("Teleport-Seoul", 37.4, 127.1, 3.0);
  add("Teleport-Sydney", -33.9, 151.2, 3.0);
  add("Teleport-SaoPaulo", -23.5, -46.6, 3.5);
  add("Teleport-Hawaii", 21.3, -157.8, 4.0);
  add("Teleport-Stockholm", 59.3, 18.1, 3.0);
  add("Teleport-PuntaArenas", -53.2, -70.9, 4.5);
  return inv;
}

}  // namespace mpleo::net
