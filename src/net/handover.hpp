// Handover analysis: how often a terminal must switch satellites under a
// max-elevation selection policy. LEO terminals re-point every few minutes —
// a key operational difference from GEO and an input to the §4 open-source
// terminal design question.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "constellation/shell.hpp"
#include "coverage/engine.hpp"
#include "orbit/geodesy.hpp"

namespace mpleo::util {
class ThreadPool;
}
namespace mpleo::fault {
class FaultTimeline;
}

namespace mpleo::net {

struct HandoverStats {
  std::size_t handover_count = 0;       // satellite switches while connected
  std::size_t outage_count = 0;         // transitions into no-satellite gaps
  double connected_fraction = 0.0;
  double mean_dwell_seconds = 0.0;      // mean time on one satellite
  double handovers_per_hour = 0.0;      // normalised over connected time
  // Fault attribution (zero without a timeline): transitions whose previous
  // serving satellite failed at the switch step, as opposed to ordinary
  // elevation-driven handovers.
  std::size_t failure_handover_count = 0;  // subset of handover_count
  std::size_t failure_outage_count = 0;    // subset of outage_count
};

// Per-step serving-satellite selection: the visible satellite with the
// highest elevation; kNoSatellite when none is visible. Positions come from
// the shared ephemeris tables (filled in parallel when a pool is given).
inline constexpr std::uint32_t kNoSatellite = 0xFFFFFFFFu;
[[nodiscard]] std::vector<std::uint32_t> serving_satellite_timeline(
    const cov::CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    const orbit::TopocentricFrame& terminal, util::ThreadPool* pool = nullptr);

// Fault-aware selection: satellites the timeline marks out at a step are
// not eligible to serve (fault asset index == span index). An empty
// timeline yields a timeline bit-identical to the overload above.
[[nodiscard]] std::vector<std::uint32_t> serving_satellite_timeline(
    const cov::CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    const orbit::TopocentricFrame& terminal, const fault::FaultTimeline& faults,
    util::ThreadPool* pool = nullptr);

// Aggregates the timeline into handover statistics. With a fault timeline,
// transitions caused by the previous satellite failing are additionally
// counted as failure-forced; a nullptr leaves those counters zero and every
// other field unchanged.
[[nodiscard]] HandoverStats handover_stats(std::span<const std::uint32_t> timeline,
                                           double step_seconds,
                                           const fault::FaultTimeline* faults = nullptr);

}  // namespace mpleo::net
