// Fluid FIFO queue model for the packet-level (regenerative) bent-pipe
// variant (§4): offered load vs link capacity per step, with a finite
// buffer. Produces the delay/backlog/drop numbers that distinguish "the
// link closes" from "the service is usable".
#pragma once

#include <span>

namespace mpleo::net {

struct QueueConfig {
  double buffer_bytes = 64e6;  // on-board / gateway buffer
};

struct QueueStats {
  double offered_bytes = 0.0;
  double delivered_bytes = 0.0;
  double dropped_bytes = 0.0;
  double max_backlog_bytes = 0.0;
  // Time-averaged queueing delay (Little's law: mean backlog / mean
  // delivered rate); 0 when nothing was delivered.
  double mean_delay_s = 0.0;

  [[nodiscard]] double delivery_fraction() const noexcept {
    return offered_bytes > 0.0 ? delivered_bytes / offered_bytes : 0.0;
  }
};

// Simulates a work-conserving FIFO over a step grid. offered_bps[i] enters
// the queue during step i; up to capacity_bps[i] drains. Arrivals beyond the
// buffer are dropped. Arities must match; step_seconds > 0.
[[nodiscard]] QueueStats simulate_fifo_queue(std::span<const double> offered_bps,
                                             std::span<const double> capacity_bps,
                                             double step_seconds,
                                             const QueueConfig& config = {});

}  // namespace mpleo::net
