// Spectrum band plans and channelisation (§4 "Spectrum access").
//
// MP-LEO delegates spectrum management to terminals and ground stations (the
// satellite only repeats), but participants still have to pick
// non-conflicting channels inside the primary satellite bands. This module
// models the X/Ku/Ka allocations and a first-fit channel assigner with a
// conflict check.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mpleo::net {

enum class Band { kX, kKu, kKa };

[[nodiscard]] const char* band_name(Band band) noexcept;

// Frequency range of a band segment, Hz.
struct BandPlan {
  Band band = Band::kKu;
  double uplink_lo_hz = 14.0e9;
  double uplink_hi_hz = 14.5e9;
  double downlink_lo_hz = 10.7e9;
  double downlink_hi_hz = 12.7e9;
};

// ITU-style allocations for the primary satellite bands the paper names.
[[nodiscard]] const std::vector<BandPlan>& standard_band_plans();

struct Channel {
  std::uint32_t id = 0;
  Band band = Band::kKu;
  double uplink_center_hz = 0.0;
  double downlink_center_hz = 0.0;
  double bandwidth_hz = 62.5e6;
  std::uint32_t owner_party = 0;
};

// Tracks channel grants inside one band plan; rejects overlapping grants.
class ChannelTable {
 public:
  explicit ChannelTable(BandPlan plan) : plan_(plan) {}

  // Grants the next free channel of `bandwidth_hz` to `party`; nullopt when
  // the band is exhausted.
  [[nodiscard]] std::optional<Channel> grant(double bandwidth_hz, std::uint32_t party);

  // Releases a previously granted channel id; returns false if unknown.
  bool release(std::uint32_t channel_id);

  [[nodiscard]] const std::vector<Channel>& grants() const noexcept { return grants_; }
  [[nodiscard]] const BandPlan& plan() const noexcept { return plan_; }

  // True if two channels overlap in either direction.
  [[nodiscard]] static bool conflicts(const Channel& a, const Channel& b) noexcept;

 private:
  BandPlan plan_;
  std::vector<Channel> grants_;
  std::uint32_t next_id_ = 1;
};

}  // namespace mpleo::net
