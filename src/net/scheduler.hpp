// Per-step bent-pipe link scheduling.
//
// A terminal is servable at a step iff some satellite is simultaneously
// visible to the terminal AND to a ground station of the terminal's party
// (transparent bent-pipe needs both legs up at once — no ISLs, §3.1).
// Satellites have a finite beam count; beams are granted owner-first, and
// whatever remains is *spare capacity* offered to other parties — the core
// sharing mechanism of MP-LEO. The aggregate accounting this produces (who
// carried whose traffic for how long) is what core/ledger bills from.
//
// run() executes a two-phase pipeline:
//   Phase 1 (parallel over step chunks): propagate every satellite once
//   through the shared ephemeris kernel, cull (satellite, terminal) and
//   (satellite, station) pairs with the coverage engine's conservative
//   zenith-cone prefilter into StepMask bitmaps, and precompute per-step
//   candidate lists — for each visible (terminal, satellite) pair the best
//   same-party station with its end-to-end relay capacity. Link budgets are
//   evaluated only for triples whose terminal leg AND some party station leg
//   are simultaneously up (a word-level AND of pair masks), and each leg is
//   computed once per pair instead of once per triple.
//   Phase 2 (sequential, cheap): sweep steps in order consuming the
//   candidate lists for beam allocation, spare-priority ordering,
//   failure-forced detach, and re-acquisition backoff bookkeeping.
// The result is bit-identical to run_reference — the retained scalar
// per-triple scan — on both the faulted and unfaulted paths.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "constellation/shell.hpp"
#include "core/validation.hpp"
#include "net/bent_pipe.hpp"
#include "net/degradation.hpp"
#include "net/ground_station.hpp"
#include "net/terminal.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/time.hpp"
#include "rf/interference.hpp"

namespace mpleo::fault {
class FaultTimeline;
}
namespace mpleo::obs {
class MetricsRegistry;
}
namespace mpleo::sim {
class RunContext;
}
namespace mpleo::util {
class ThreadPool;
}

namespace mpleo::net {

// How phase 1 discovers (terminal, satellite) visibility.
enum class VisibilityMode {
  // Pick per run: pair masks while they fit a memory budget, the footprint
  // stream beyond it (mega-constellation fleets).
  kAuto,
  // Classic: one packed visibility mask per (satellite, terminal) pair,
  // filled by the conservative zenith-cone cull, pruned pair-by-pair with
  // the latitude-band reachability test. Exact, and the fastest option while
  // the masks fit in memory.
  kPairMasks,
  // Mega-scale: no terminal pair masks at all. Each chunk streams every
  // satellite's footprint cap through a cov::FootprintIndex over the
  // terminals, re-testing survivors exactly — same candidates, same order,
  // O(sites-in-footprint) instead of O(terminals) per satellite-step.
  kFootprintStream,
};

struct SchedulerConfig {
  double elevation_mask_deg = 25.0;
  int beams_per_satellite = 8;
  RelayMode relay_mode = RelayMode::kTransparent;
  TransponderConfig transponder = default_transponder();
  // Optional per-party priority weights (e.g. core::ReputationTracker
  // priority_weight) applied to SPARE-capacity contention only: terminals of
  // higher-weight parties are offered leftover beams first. Own-satellite
  // service is unaffected — a party can never be locked out of its own
  // satellites. Empty = FIFO by terminal index (all equal). Weights must be
  // finite and non-negative, and a non-empty vector must cover every party
  // index used by the terminals and owned satellites (validated at
  // construction).
  std::vector<double> spare_priority_by_party;
  // Steps a terminal stays detached after a failure-forced detach (its
  // serving satellite or station went down under it) before it may
  // re-attach — the re-pointing / re-ranging delay that gives outages tails
  // instead of free instant handovers. 0 = instant re-acquisition.
  std::size_t reacquisition_backoff_steps = 0;
  // Spare-capacity governance, both empty by default (bit-identical to the
  // ungoverned scheduler):
  //  * spare_exclude_party[p] != 0 bars party p from the spare commons in
  //    BOTH directions — its terminals take no spare capacity and its
  //    satellites offer none (the quarantine sanction). Own-satellite
  //    service is untouched: graceful degradation, never a blackout.
  //    Parties beyond the vector are not excluded.
  //  * spare_withheld_fraction[p] reserves ceil(beams * fraction) beams of
  //    every party-p satellite for p's own traffic — a withholding
  //    adversary hoarding capacity it nominally contributes. Entries must
  //    be finite fractions in [0, 1] (validated at construction); parties
  //    beyond the vector withhold nothing.
  std::vector<std::uint8_t> spare_exclude_party;
  std::vector<double> spare_withheld_fraction;
  // Co-channel interference environment (non-owning; must outlive the
  // scheduler's runs). Null by default — and with a null or interferer-free
  // environment every run is bit-identical to the pre-RF scheduler. When
  // armed with active jammers/squatters, link SELECTION is unchanged (beam
  // grants run on nominal capacities), but each granted link's capacity is
  // degraded post-grant by the aggregate interference-to-noise at the victim
  // terminal, and the accounting lands in ScheduleResult::rf.
  const rf::InterferenceEnvironment* rf = nullptr;
  // Orbit propagation backend for the shared ephemeris fill. One knob for
  // every run path — run(), run(context) and run_reference() all propagate
  // through it, so the pipeline/reference bit-identity contract holds for
  // either backend. Scenario-driven callers copy scenario.propagator here
  // (see sim::parse_scenario's --propagator= flag).
  orbit::PropagatorBackend propagator_backend = orbit::PropagatorBackend::kJ2Analytic;
  // Phase-1 visibility discovery (see VisibilityMode). Every mode produces
  // bit-identical schedules when max_candidates_per_terminal is 0.
  VisibilityMode visibility_mode = VisibilityMode::kAuto;
  // Steps per phase-1 chunk. Must be a power of two in [1, 64] so a chunk
  // never straddles a mask word. Smaller chunks shrink the streaming
  // pipeline's in-flight memory (the mega preset runs 8); 64 keeps the
  // historical one-word-per-chunk behaviour. Chunk size never changes the
  // result — candidates are a per-step pure function of geometry.
  std::size_t stream_chunk_steps = 64;
  // In-flight chunk slots for the phase-1 -> phase-2 streaming pipeline.
  // 0 = auto (scaled to the pool, smaller under kFootprintStream where a
  // slot's candidate buffers are the dominant allocation). The slot count
  // never changes the result — phase 2 consumes chunks strictly in order.
  std::size_t stream_slots = 0;
  // Per-terminal candidate cap, applied per step at phase-1 emission: keep
  // the top-K own-satellite and top-K spare candidates by capacity (ties to
  // the lower satellite index). 0 = unbounded (exact, bit-identical to
  // run_reference). A positive cap bounds candidate memory at mega scale —
  // deterministic for any pool/slot/chunk configuration, but approximate
  // under beam contention (a terminal whose top-K satellites are all beam-
  // exhausted goes unserved even if satellite K+1 had a beam). Max 64.
  std::size_t max_candidates_per_terminal = 0;
  // Graceful-degradation policy (net/degradation.hpp): priority-tiered load
  // shedding under capacity collapse, sticky spare grants (hysteresis), and
  // bounded exponential re-acquisition backoff, plus SLO observation. A
  // default-constructed (disabled) policy is bit-identical to the pre-policy
  // scheduler on every run path; slo_window_steps > 0 only adds
  // ScheduleResult::slo, never changes links.
  DegradationPolicy degradation;

  // Collects every invalid field as a unified core::ConfigIssue (component
  // "net.scheduler"); empty means the config is usable. The scheduler
  // constructor throws std::invalid_argument joining these; checks that need
  // the fleet (owner coverage of the spare-priority vector) stay in the
  // constructor.
  [[nodiscard]] std::vector<core::ConfigIssue> validate() const;
};

// One granted link at one step.
struct LinkAssignment {
  std::size_t terminal_index = 0;
  std::size_t satellite_index = 0;
  std::size_t station_index = 0;
  double capacity_bps = 0.0;
  // True when the satellite's owner differs from the terminal's owner, i.e.
  // the link rides spare capacity.
  bool spare = false;

  friend bool operator==(const LinkAssignment&, const LinkAssignment&) = default;
};

struct StepSchedule {
  std::size_t step = 0;
  std::vector<LinkAssignment> links;
  std::vector<std::size_t> unserved_terminals;

  friend bool operator==(const StepSchedule&, const StepSchedule&) = default;
};

// Aggregates over a whole grid run, per party.
struct PartyUsage {
  double own_link_seconds = 0.0;     // party terminals on party satellites
  double spare_used_seconds = 0.0;   // party terminals on others' satellites
  double spare_provided_seconds = 0.0;  // party satellites serving others
  double bytes_carried_for_others = 0.0;
  double bytes_received_from_others = 0.0;
  double unserved_terminal_seconds = 0.0;

  friend bool operator==(const PartyUsage&, const PartyUsage&) = default;
};

struct ScheduleResult {
  std::vector<StepSchedule> steps;        // optionally retained (see config)
  std::vector<PartyUsage> per_party;      // indexed by party id
  double total_served_seconds = 0.0;
  double total_unserved_seconds = 0.0;
  // Fault accounting (zero on the no-fault path): links dropped because the
  // serving satellite or station failed, and terminal-seconds spent waiting
  // out the re-acquisition backoff after such a drop.
  std::size_t failure_forced_detaches = 0;
  double reacquisition_wait_seconds = 0.0;
  // RF accounting, engaged only when the config carries an interference
  // environment with at least one active jammer/squatter (so RF-clean runs
  // compare equal to pre-RF results).
  std::optional<rf::RfLinkStats> rf;
  // SLO accounting, engaged only when config.degradation.slo_window_steps
  // > 0 (so SLO-silent runs compare equal to pre-SLO results). Identical
  // between run() and run_reference() like everything else here.
  std::optional<SloStats> slo;

  friend bool operator==(const ScheduleResult&, const ScheduleResult&) = default;
};

class BentPipeScheduler {
 public:
  BentPipeScheduler(SchedulerConfig config, std::vector<constellation::Satellite> satellites,
                    std::vector<Terminal> terminals, std::vector<GroundStation> stations);

  // Schedules one step given precomputed satellite ECEF positions (one entry
  // per satellite, same order as construction).
  [[nodiscard]] StepSchedule schedule_step(std::span<const util::Vec3> satellite_ecef,
                                           std::size_t step) const;

  // Fault- and backoff-aware step: faulted satellites and stations are
  // skipped, degraded satellites offer fewer beams, and terminals flagged in
  // `blocked_terminals` (byte per terminal; re-acquisition backoff or policy
  // shedding) go straight to unserved. `sticky_prev_satellite` (one entry
  // per terminal, 0xFFFFFFFF = none) with a positive `sticky_margin` makes
  // the spare pass keep a terminal's previous satellite unless a competitor
  // beats it by more than the margin (spare-reallocation hysteresis).
  // nullptr/empty faults, no blocked flags and no sticky state are
  // bit-identical to the plain overload.
  [[nodiscard]] StepSchedule schedule_step(
      std::span<const util::Vec3> satellite_ecef, std::size_t step,
      const fault::FaultTimeline* faults,
      std::span<const std::uint8_t> blocked_terminals = {},
      std::span<const std::uint32_t> sticky_prev_satellite = {},
      double sticky_margin = 0.0) const;

  // Runs the whole grid through the two-phase pipeline and aggregates
  // per-party usage. `party_count` sizes the aggregate vector;
  // terminals/satellites with owner >= party_count are rejected. Set
  // keep_steps to retain the per-step link lists. With a pool, phase 1
  // (ephemerides, pair masks, candidate lists) runs parallel over step
  // chunks; the result is bit-identical for any pool size, including none.
  [[nodiscard]] ScheduleResult run(const orbit::TimeGrid& grid, std::size_t party_count,
                                   bool keep_steps = false,
                                   util::ThreadPool* pool = nullptr) const;

  // RunContext entry point — the preferred API. The context supplies the
  // pool, the (optional) fault timeline and the metrics registry in one
  // argument; phase timings (propagate / cull / chunk fill / wave drain),
  // candidate-list occupancy, beam-allocation rejections and fault-forced
  // detaches land in context.metrics() under the "sched." prefix. The
  // returned ScheduleResult is bit-identical to
  //   run(grid, party_count, context.faults(), keep_steps, context.pool())
  // for any context, and to the old default-argument run() for a
  // default-constructed context.
  [[nodiscard]] ScheduleResult run(const orbit::TimeGrid& grid, std::size_t party_count,
                                   sim::RunContext& context, bool keep_steps = false) const;

  // Degraded-operations run: `faults` gates per-step asset health, and a
  // terminal whose serving satellite or station fails enters a
  // `reacquisition_backoff_steps`-step hold before it may re-attach. With a
  // nullptr or empty timeline the result is bit-identical to the plain run.
  [[nodiscard]] ScheduleResult run(const orbit::TimeGrid& grid, std::size_t party_count,
                                   const fault::FaultTimeline* faults,
                                   bool keep_steps = false,
                                   util::ThreadPool* pool = nullptr) const;

  // The scalar reference: the original per-step, per-triple scan (via
  // schedule_step), kept as the correctness oracle the pipeline is validated
  // against. Satellite positions come from the same shared ephemeris tables
  // as run(), so the two are bit-identical down to link ordering — faulted
  // and unfaulted. Serial and slow; prefer run().
  [[nodiscard]] ScheduleResult run_reference(const orbit::TimeGrid& grid,
                                             std::size_t party_count,
                                             const fault::FaultTimeline* faults = nullptr,
                                             bool keep_steps = false) const;

  [[nodiscard]] const std::vector<constellation::Satellite>& satellites() const noexcept {
    return satellites_;
  }
  [[nodiscard]] const std::vector<Terminal>& terminals() const noexcept { return terminals_; }
  [[nodiscard]] const std::vector<GroundStation>& stations() const noexcept {
    return stations_;
  }

 private:
  void validate_owners(std::size_t party_count) const;
  [[nodiscard]] orbit::EphemerisSet ephemerides(const orbit::TimeGrid& grid,
                                                util::ThreadPool* pool) const;
  // The one pipeline body behind every run() overload; a null registry
  // disables instrumentation entirely (the metric handles become no-ops).
  [[nodiscard]] ScheduleResult run_impl(const orbit::TimeGrid& grid, std::size_t party_count,
                                        const fault::FaultTimeline* faults, bool keep_steps,
                                        util::ThreadPool* pool,
                                        obs::MetricsRegistry* metrics) const;

  SchedulerConfig config_;
  std::vector<constellation::Satellite> satellites_;
  std::vector<Terminal> terminals_;
  std::vector<GroundStation> stations_;
  std::vector<orbit::TopocentricFrame> terminal_frames_;
  std::vector<orbit::TopocentricFrame> station_frames_;
  // Spare-pass service order: by configured party priority (descending),
  // stable by terminal index. Step-invariant, so built once at construction.
  // Own-pass order stays index order.
  std::vector<std::size_t> spare_order_;
  // Per-satellite beams reserved from the spare pass (withholding); all-zero
  // when spare_withheld_fraction is empty, keeping the spare beam check
  // exactly the historical `beams_left > 0`.
  std::vector<int> spare_reserved_;
  double sin_mask_ = 0.0;
};

}  // namespace mpleo::net
