// Graceful-degradation policy for the bent-pipe scheduler (§3.4).
//
// Under correlated shocks (fault::EventBook) the raw scheduler fails
// abruptly: every terminal contends for the surviving beams, spare grants
// flap as storm-degraded capacity oscillates across beam boundaries, and a
// mass outage triggers a thundering herd of simultaneous re-acquisitions.
// DegradationPolicy adds three mitigations, each OFF by default so a
// default-constructed policy is bit-identical to the pre-policy scheduler:
//
//  * Priority-tiered load shedding: when the fleet's healthy-beam fraction
//    collapses below a tier's threshold, terminals of parties mapped to that
//    tier are shed (deliberately unserved) so higher tiers keep service.
//  * Sticky spare grants (hysteresis): a terminal re-uses last step's spare
//    satellite unless a competitor beats it by a capacity margin, so grants
//    do not flap during storm edges.
//  * Bounded exponential re-acquisition backoff: consecutive failure-forced
//    detaches back off initial * multiplier^(n-1) steps, capped, resetting
//    after a clean horizon — spreading the re-acquisition herd after mass
//    outages (extends PR 2's constant reacquisition_backoff_steps).
//
// SLO observation (SloStats) is orthogonal: slo_window_steps > 0 makes runs
// carry per-party availability, worst-window availability, time-to-recover
// samples, shed counters and grant-flap counts — it never changes links.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/validation.hpp"
#include "net/terminal.hpp"

namespace mpleo::net {

struct StepSchedule;

struct DegradationPolicy {
  // Master switch for the behavioral knobs (shedding, hysteresis,
  // exponential backoff). false = bit-identical to the pre-policy scheduler
  // regardless of the other fields.
  bool enabled = false;

  // party_tier[p] is party p's shedding tier (0 = most important, shed
  // last); parties beyond the vector are tier 0. shed_below[k] is the
  // healthy-beam fraction below which tier-k terminals are shed; tiers
  // beyond the vector use the last entry, an empty vector never sheds.
  // Healthy-beam fraction = sum over satellites of degraded_beam_count /
  // (satellite_count * beams_per_satellite), 1.0 on the no-fault path.
  std::vector<std::uint32_t> party_tier;
  std::vector<double> shed_below;

  // Sticky spare grants: keep last step's spare satellite unless an
  // alternative offers more than (1 + margin) x its capacity. <= 0 disables
  // (every spare grant re-resolved from scratch, the historical behavior).
  double spare_hysteresis_margin = 0.0;

  // Bounded exponential re-acquisition backoff; 0 initial steps = use the
  // scheduler's constant reacquisition_backoff_steps (PR 2 behavior).
  std::size_t backoff_initial_steps = 0;
  double backoff_multiplier = 2.0;
  std::size_t backoff_max_steps = 64;
  // Steps without a failure-forced detach after which the consecutive-
  // failure count resets to zero.
  std::size_t backoff_clean_horizon_steps = 16;

  // SLO observation window (steps) for worst-window availability; > 0
  // engages ScheduleResult::slo. Purely observational: never changes links,
  // and works with enabled == false.
  std::size_t slo_window_steps = 0;

  // Component "net.scheduler.degradation".
  [[nodiscard]] std::vector<core::ConfigIssue> validate() const;

  // The shedding threshold for a party under this policy (0 = never shed).
  [[nodiscard]] double shed_threshold(std::uint32_t party) const noexcept;
};

// Per-terminal bounded exponential backoff state machine, extracted so the
// property tests can drive it directly: on_failure() returns the hold for
// the n-th consecutive failure — monotone non-decreasing in n and capped at
// max_steps — and a clean_horizon of failure-free steps resets n.
class ReacquisitionBackoff {
 public:
  ReacquisitionBackoff() = default;
  ReacquisitionBackoff(std::size_t initial_steps, double multiplier,
                       std::size_t max_steps, std::size_t clean_horizon_steps) noexcept
      : initial_(initial_steps),
        multiplier_(multiplier),
        max_(max_steps),
        horizon_(clean_horizon_steps) {}

  // Registers a failure-forced detach; returns the backoff hold in steps.
  std::size_t on_failure() noexcept;
  // Registers one step without a failure for this terminal.
  void on_clean_step() noexcept;

  [[nodiscard]] std::size_t consecutive_failures() const noexcept {
    return consecutive_;
  }

 private:
  std::size_t initial_ = 0;
  double multiplier_ = 2.0;
  std::size_t max_ = 64;
  std::size_t horizon_ = 16;
  std::size_t consecutive_ = 0;
  std::size_t clean_streak_ = 0;
};

// SLO aggregates of one scheduler run, engaged by slo_window_steps > 0.
struct SloStats {
  std::size_t window_steps = 0;
  // served / (served + unserved) terminal-seconds; parties without
  // terminals report 1.0 (no demand, nothing missed).
  std::vector<double> availability_by_party;
  std::vector<double> shed_seconds_by_party;
  double availability = 0.0;
  // Minimum over every `window_steps`-wide sliding window of the mean
  // per-step served-terminal fraction.
  double worst_window_availability = 1.0;
  // Grant transitions: links whose terminal was served by a different
  // satellite the previous step (service gaps reset the comparison).
  std::uint64_t grant_flaps = 0;
  std::uint64_t shed_terminal_steps = 0;
  // Completed failure-detach -> next-served durations, in seconds, in
  // detach order; terminals still unrecovered at the end are counted apart.
  std::vector<double> recovery_seconds;
  std::size_t unrecovered_terminals = 0;

  friend bool operator==(const SloStats&, const SloStats&) = default;
};

// Streaming accumulator behind SloStats, stepped identically by run() and
// run_reference() so the SLO section obeys the same bit-identity contract
// as the links themselves.
class SloAccumulator {
 public:
  SloAccumulator() = default;  // disengaged
  SloAccumulator(std::size_t party_count, std::size_t terminal_count,
                 std::size_t window_steps, double dt_step);

  [[nodiscard]] bool engaged() const noexcept { return window_steps_ > 0; }

  void on_failure_detach(std::size_t terminal, std::size_t step);
  void on_shed(std::uint32_t party);
  void record_step(const StepSchedule& schedule, std::span<const Terminal> terminals);

  [[nodiscard]] SloStats finish() const;

 private:
  static constexpr std::size_t kNoDetach = static_cast<std::size_t>(-1);
  static constexpr std::uint32_t kNoSat = 0xFFFFFFFFu;

  std::size_t window_steps_ = 0;
  double dt_step_ = 0.0;
  std::size_t terminal_count_ = 0;
  std::vector<double> served_seconds_by_party_;
  std::vector<double> unserved_seconds_by_party_;
  std::vector<double> shed_seconds_by_party_;
  std::uint64_t shed_terminal_steps_ = 0;
  std::uint64_t grant_flaps_ = 0;
  std::vector<std::uint32_t> prev_satellite_;
  std::vector<std::size_t> detach_step_;
  std::vector<double> recovery_seconds_;
  std::vector<double> step_served_fraction_;
};

}  // namespace mpleo::net
