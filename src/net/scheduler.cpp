#include "net/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "coverage/footprint_index.hpp"
#include "coverage/packed_masks.hpp"
#include "coverage/step_mask.hpp"
#include "coverage/visibility_cull.hpp"
#include "fault/timeline.hpp"
#include "obs/metrics.hpp"
#include "sim/run_context.hpp"
#include "util/stream_queue.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mpleo::net {
namespace {

// Pair-mask storage budget for VisibilityMode::kAuto: below this the classic
// per-(satellite, terminal) masks are built (fastest while they fit), above
// it phase 1 switches to the footprint stream, whose memory does not scale
// with satellites x terminals.
constexpr std::size_t kPairMaskBudgetBytes = std::size_t{1} << 30;

// One precomputed service option: for a (terminal, satellite) pair visible at
// a step, the best (highest end-to-end capacity, lowest index on ties) healthy
// same-party station and the resulting capacity. Beam contention is NOT
// resolved here — that is phase 2's job — so candidates depend only on
// geometry and faults, never on scheduling state, and chunks can be built in
// parallel in any order.
struct Candidate {
  std::uint32_t terminal = 0;
  std::uint32_t satellite = 0;
  std::uint32_t station = 0;
  double capacity_bps = 0.0;
};

// Candidates of one step, terminal-major with satellites ascending inside
// each terminal (the reference scan order), plus per-terminal offsets:
// terminal ti owns cands[offsets[ti] .. offsets[ti + 1]).
struct StepCandidates {
  std::vector<Candidate> cands;
  std::vector<std::uint32_t> offsets;

  // `reserve_hint` is the running high-water mark of per-step candidate
  // counts, so steady-state chunks emit into pre-sized vectors instead of
  // regrowing through the same doubling ladder every chunk.
  void reset(std::size_t terminal_count, std::size_t reserve_hint) {
    cands.clear();
    if (cands.capacity() < reserve_hint) cands.reserve(reserve_hint);
    offsets.assign(terminal_count + 1, 0);
  }
};

// Lock-free running maximum (no std::atomic::fetch_max in C++20).
void atomic_max(std::atomic<std::size_t>& target, std::size_t value) noexcept {
  std::size_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// The 64-step mask word bits covering steps [chunk_begin, chunk_begin +
// count). stream_chunk_steps is a validated power of two <= 64, so a chunk
// never straddles a word; sub-word chunks shift and mask.
std::uint64_t chunk_word(std::span<const std::uint64_t> words,
                         std::size_t chunk_begin, std::size_t count) noexcept {
  const std::uint64_t bits = words[chunk_begin >> 6] >> (chunk_begin & 63);
  return count >= 64 ? bits : bits & ((std::uint64_t{1} << count) - 1);
}

// A downlink leg toward one station, cached per (satellite, step) so the
// satellite->station leg is computed once instead of once per terminal. Only
// the values relay_capacity_bps reads are kept; shannon_bps stays zero in
// transparent mode, where the combine never looks at it.
struct StationBudget {
  std::uint32_t station = 0;
  double snr_linear = 0.0;
  double shannon_bps = 0.0;
};

// Read-only phase-1 inputs (all shared across chunk workers).
struct PipelineContext {
  const SchedulerConfig& config;
  std::span<const constellation::Satellite> satellites;
  std::span<const Terminal> terminals;
  std::span<const GroundStation> stations;
  std::span<const orbit::TopocentricFrame> terminal_frames;
  std::span<const orbit::TopocentricFrame> station_frames;
  const orbit::EphemerisSet& ephemerides;
  // Pair visibility in slab-packed word storage, outage-subtracted for
  // stations: mask si * terminals.size() + ti, mask si * stations.size() + gi.
  const cov::PackedMasks* terminal_vis = nullptr;
  const cov::PackedMasks* station_vis = nullptr;
  // party * satellites.size() + si: steps where satellite si can reach at
  // least one healthy station of `party` — the word that gates all uplink
  // work for that party's terminals.
  const cov::PackedMasks* party_avail = nullptr;
  // Range-independent hop pieces, hoisted once per run: uplink_hops[ti] is
  // terminal ti -> transponder receive, downlink_hops[gi] is transponder
  // transmit -> station gi.
  std::span<const HopEvaluator> uplink_hops;
  std::span<const HopEvaluator> downlink_hops;
  // Per-hop Shannon terms are only consumed by the regenerative combine.
  bool regenerative = false;
  // Per-step candidate-count high-water mark, shared across chunk workers
  // for the reserve hint and reported as a gauge at the end of the run.
  std::atomic<std::size_t>* step_high_water = nullptr;
};

// Per-slot scratch for fill_chunk, reused across the chunks a stream slot
// processes so the (step, satellite) downlink lists keep their capacity
// instead of reallocating tens of thousands of small vectors per chunk.
struct FillScratch {
  std::vector<std::vector<StationBudget>> downlinks;

  void reset(std::size_t slots) {
    if (downlinks.size() < slots) downlinks.resize(slots);
    for (std::size_t i = 0; i < slots; ++i) downlinks[i].clear();
  }
};

// Builds the candidate lists of steps [chunk_begin, chunk_begin + count) into
// out[0..count). Pure function of the context — no scheduling state.
void fill_chunk(const PipelineContext& ctx, std::size_t chunk_begin, std::size_t count,
                std::span<StepCandidates> out, FillScratch& scratch) {
  const std::size_t sat_count = ctx.satellites.size();
  const std::size_t term_count = ctx.terminals.size();
  const std::size_t station_count = ctx.stations.size();

  const std::size_t hint = ctx.step_high_water->load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < count; ++b) out[b].reset(term_count, hint);

  // Downlink legs first: one budget per (satellite, station, step) with both
  // the pair visible and the station healthy. Station order inside each
  // (step, satellite) list stays ascending — the reference tie-break order.
  scratch.reset(count * sat_count);
  std::vector<std::vector<StationBudget>>& downlinks = scratch.downlinks;
  for (std::size_t si = 0; si < sat_count; ++si) {
    const orbit::EphemerisTable& table = ctx.ephemerides.table(si);
    for (std::size_t gi = 0; gi < station_count; ++gi) {
      std::uint64_t bits = chunk_word(ctx.station_vis->words(si * station_count + gi),
                                      chunk_begin, count);
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t step = chunk_begin + b;
        const util::Vec3 pos = table.position_ecef(step);
        const double snr =
            ctx.downlink_hops[gi].snr_linear(ctx.station_frames[gi].range_m(pos));
        downlinks[b * sat_count + si].push_back(
            {static_cast<std::uint32_t>(gi), snr,
             ctx.regenerative ? ctx.downlink_hops[gi].shannon_bps(snr) : 0.0});
      }
    }
  }

  // Uplink legs + combine, gated so a terminal-satellite budget is computed
  // only at steps where the pair is visible AND the terminal's party has a
  // reachable station through that satellite (one word-AND per pair-chunk).
  for (std::size_t ti = 0; ti < term_count; ++ti) {
    const Terminal& term = ctx.terminals[ti];
    const std::uint32_t party = term.owner_party;
    for (std::size_t si = 0; si < sat_count; ++si) {
      std::uint64_t bits =
          chunk_word(ctx.terminal_vis->words(si * term_count + ti), chunk_begin, count) &
          chunk_word(ctx.party_avail->words(party * sat_count + si), chunk_begin, count);
      if (bits == 0) continue;
      const orbit::EphemerisTable& table = ctx.ephemerides.table(si);
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t step = chunk_begin + b;
        const util::Vec3 pos = table.position_ecef(step);
        const double up_snr =
            ctx.uplink_hops[ti].snr_linear(ctx.terminal_frames[ti].range_m(pos));
        const double up_shannon =
            ctx.regenerative ? ctx.uplink_hops[ti].shannon_bps(up_snr) : 0.0;
        double best_capacity = 0.0;
        std::uint32_t best_gs = 0;
        bool found = false;
        for (const StationBudget& sb : downlinks[b * sat_count + si]) {
          if (ctx.stations[sb.station].owner_party != party) continue;
          const double capacity =
              relay_capacity_bps(up_snr, up_shannon, sb.snr_linear, sb.shannon_bps,
                                 ctx.config.transponder,
                                 ctx.stations[sb.station].radio, ctx.config.relay_mode);
          if (capacity > best_capacity) {
            best_capacity = capacity;
            best_gs = sb.station;
            found = true;
          }
        }
        if (found) {
          out[b].cands.push_back({static_cast<std::uint32_t>(ti),
                                  static_cast<std::uint32_t>(si), best_gs,
                                  best_capacity});
        }
      }
    }
    for (std::size_t b = 0; b < count; ++b) {
      out[b].offsets[ti + 1] = static_cast<std::uint32_t>(out[b].cands.size());
    }
  }
  for (std::size_t b = 0; b < count; ++b) {
    atomic_max(*ctx.step_high_water, out[b].cands.size());
  }
}

// Read-only inputs of the footprint-stream (direct) fill: no terminal pair
// masks exist; visibility is discovered per (satellite, step) through the
// spatial index and re-tested exactly.
struct DirectContext {
  const SchedulerConfig& config;
  std::span<const constellation::Satellite> satellites;
  std::span<const Terminal> terminals;
  std::span<const GroundStation> stations;
  std::span<const orbit::TopocentricFrame> terminal_frames;
  std::span<const orbit::TopocentricFrame> station_frames;
  const orbit::EphemerisSet& ephemerides;
  const cov::FootprintIndex* index = nullptr;
  // Orbital-shell shards (contiguous, ascending) and one conservative
  // footprint cone per shard from the shard's radius extremes.
  std::span<const constellation::ShellShard> shards;
  std::span<const cov::FootprintCone> shard_cones;
  const cov::PackedMasks* station_vis = nullptr;
  const cov::PackedMasks* party_avail = nullptr;
  std::span<const HopEvaluator> uplink_hops;
  std::span<const HopEvaluator> downlink_hops;
  bool regenerative = false;
  double sin_mask = 0.0;
  // max_candidates_per_terminal (0 = exact).
  std::size_t cap = 0;
  std::atomic<std::size_t>* step_high_water = nullptr;
  // (satellite, terminal, step) visits skipped by the index — the pruning
  // counter surfaced as sched.index_pruned_pairs.
  std::atomic<std::uint64_t>* pruned_pairs = nullptr;
};

struct DirectScratch {
  std::vector<std::vector<StationBudget>> downlinks;   // per step-in-chunk
  std::vector<util::Vec3> positions;                   // per step-in-chunk
  std::vector<cov::FootprintIndex::Range> ranges;
  // Exact mode: per-step emission in (satellite-ascending, site-bucket)
  // order, counting-sorted into terminal-major afterwards.
  std::vector<std::vector<Candidate>> emitted;
  std::vector<std::uint32_t> cursors;
  // Capped mode: per-(step, terminal) blocks of 2*cap slots — own-satellite
  // top-K in the front half, spare top-K in the back half, each kept sorted
  // by capacity descending (stable: earlier = lower satellite index).
  std::vector<Candidate> blocks;
  std::vector<std::uint8_t> own_count;
  std::vector<std::uint8_t> spare_count;
};

// Keeps region[0..n) the top-`cap` candidates by capacity (descending,
// stable so the earlier — lower-satellite — entry wins ties).
void top_k_insert(Candidate* region, std::uint8_t& n, std::size_t cap,
                  const Candidate& cand) {
  if (n >= cap && !(cand.capacity_bps > region[cap - 1].capacity_bps)) return;
  std::size_t pos = n < cap ? n : cap - 1;
  while (pos > 0 && region[pos - 1].capacity_bps < cand.capacity_bps) {
    region[pos] = region[pos - 1];
    --pos;
  }
  region[pos] = cand;
  if (n < cap) ++n;
}

// The footprint-stream chunk fill. Emission is satellite-major (shards
// ascending, satellites ascending inside each shard); the per-step counting
// sort at the end restores the exact terminal-major / satellite-ascending
// candidate order of fill_chunk, so with cap == 0 the output is bit-identical
// to the pair-mask path: the index + cone only prune (conservative superset
// of exact visibility), survivors run the same visible_above and the same
// hop arithmetic on the same table positions.
void fill_chunk_direct(const DirectContext& ctx, std::size_t chunk_begin,
                       std::size_t count, std::span<StepCandidates> out,
                       DirectScratch& scratch) {
  const std::size_t sat_count = ctx.satellites.size();
  const std::size_t term_count = ctx.terminals.size();
  const std::size_t station_count = ctx.stations.size();
  const std::size_t cap = ctx.cap;

  const std::size_t hint = ctx.step_high_water->load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < count; ++b) out[b].reset(term_count, hint);

  if (scratch.downlinks.size() < count) scratch.downlinks.resize(count);
  scratch.positions.resize(count);
  if (cap == 0) {
    if (scratch.emitted.size() < count) scratch.emitted.resize(count);
    for (std::size_t b = 0; b < count; ++b) scratch.emitted[b].clear();
  } else {
    scratch.blocks.resize(count * term_count * 2 * cap);
    scratch.own_count.assign(count * term_count, 0);
    scratch.spare_count.assign(count * term_count, 0);
  }

  const std::span<const double> ux = ctx.index->unit_x();
  const std::span<const double> uy = ctx.index->unit_y();
  const std::span<const double> uz = ctx.index->unit_z();
  const std::span<const std::uint32_t> ids = ctx.index->site_ids();

  std::uint64_t pruned = 0;
  for (std::size_t shard_i = 0; shard_i < ctx.shards.size(); ++shard_i) {
    const constellation::ShellShard& shard = ctx.shards[shard_i];
    const cov::FootprintCone& cone = ctx.shard_cones[shard_i];
    for (std::size_t si = shard.begin; si < shard.end; ++si) {
      const orbit::EphemerisTable& table = ctx.ephemerides.table(si);

      // Downlink budgets for this satellite over the chunk, station order
      // ascending (the reference tie-break order).
      for (std::size_t b = 0; b < count; ++b) scratch.downlinks[b].clear();
      std::uint64_t any_station = 0;
      for (std::size_t gi = 0; gi < station_count; ++gi) {
        std::uint64_t bits = chunk_word(
            ctx.station_vis->words(si * station_count + gi), chunk_begin, count);
        any_station |= bits;
        while (bits != 0) {
          const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
          bits &= bits - 1;
          const std::size_t step = chunk_begin + b;
          const util::Vec3 pos = table.position_ecef(step);
          const double snr =
              ctx.downlink_hops[gi].snr_linear(ctx.station_frames[gi].range_m(pos));
          scratch.downlinks[b].push_back(
              {static_cast<std::uint32_t>(gi), snr,
               ctx.regenerative ? ctx.downlink_hops[gi].shannon_bps(snr) : 0.0});
        }
      }
      // No reachable station anywhere in the chunk: no candidate can form
      // (party_avail is the union of these legs), skip the terminal scan.
      if (any_station == 0) continue;

      for (std::size_t b = 0; b < count; ++b) {
        if (scratch.downlinks[b].empty()) continue;
        const std::size_t step = chunk_begin + b;
        const util::Vec3 pos = table.position_ecef(step);
        scratch.ranges.clear();
        ctx.index->query_cap(pos, cone.psi_rad, scratch.ranges);

        std::size_t visited = 0;
        for (const cov::FootprintIndex::Range& range : scratch.ranges) {
          visited += range.end - range.begin;
          for (std::uint32_t j = range.begin; j < range.end; ++j) {
            // Conservative cone dot test, then the exact elevation test —
            // identical accept set to the culler-filled pair mask bit.
            if (ux[j] * pos.x + uy[j] * pos.y + uz[j] * pos.z < cone.dot_threshold) {
              continue;
            }
            const std::uint32_t ti = ids[j];
            const std::uint32_t party = ctx.terminals[ti].owner_party;
            if (!ctx.party_avail->test(party * sat_count + si, step)) continue;
            if (!ctx.terminal_frames[ti].visible_above(pos, ctx.sin_mask)) continue;

            const double up_snr =
                ctx.uplink_hops[ti].snr_linear(ctx.terminal_frames[ti].range_m(pos));
            const double up_shannon =
                ctx.regenerative ? ctx.uplink_hops[ti].shannon_bps(up_snr) : 0.0;
            double best_capacity = 0.0;
            std::uint32_t best_gs = 0;
            bool found = false;
            for (const StationBudget& sb : scratch.downlinks[b]) {
              if (ctx.stations[sb.station].owner_party != party) continue;
              const double capacity = relay_capacity_bps(
                  up_snr, up_shannon, sb.snr_linear, sb.shannon_bps,
                  ctx.config.transponder, ctx.stations[sb.station].radio,
                  ctx.config.relay_mode);
              if (capacity > best_capacity) {
                best_capacity = capacity;
                best_gs = sb.station;
                found = true;
              }
            }
            if (!found) continue;
            const Candidate cand{ti, static_cast<std::uint32_t>(si), best_gs,
                                 best_capacity};
            if (cap == 0) {
              scratch.emitted[b].push_back(cand);
            } else {
              const std::size_t idx = b * term_count + ti;
              const bool spare = ctx.satellites[si].owner_party != party;
              Candidate* region =
                  scratch.blocks.data() + idx * 2 * cap + (spare ? cap : 0);
              top_k_insert(region,
                           spare ? scratch.spare_count[idx] : scratch.own_count[idx],
                           cap, cand);
            }
          }
        }
        pruned += term_count - visited;
      }
    }
  }

  if (cap == 0) {
    // Counting sort per step: stable by terminal, so within a terminal the
    // satellite-ascending emission order is preserved — exactly the
    // pair-mask path's CSR.
    scratch.cursors.resize(term_count);
    for (std::size_t b = 0; b < count; ++b) {
      StepCandidates& sc = out[b];
      const std::vector<Candidate>& em = scratch.emitted[b];
      for (const Candidate& cand : em) ++sc.offsets[cand.terminal + 1];
      for (std::size_t ti = 0; ti < term_count; ++ti) {
        sc.offsets[ti + 1] += sc.offsets[ti];
        scratch.cursors[ti] = sc.offsets[ti];
      }
      sc.cands.resize(em.size());
      for (const Candidate& cand : em) {
        sc.cands[scratch.cursors[cand.terminal]++] = cand;
      }
    }
  } else {
    // Merge each terminal's own/spare top-K blocks back into satellite-
    // ascending order (the canonical candidate order phase 2's strict-max
    // tie-break expects).
    Candidate merged[128];  // cap <= 64 validated => 2 * cap <= 128
    for (std::size_t b = 0; b < count; ++b) {
      StepCandidates& sc = out[b];
      const std::size_t row = b * term_count;
      for (std::size_t ti = 0; ti < term_count; ++ti) {
        const std::size_t idx = row + ti;
        const std::size_t n_own = scratch.own_count[idx];
        const std::size_t n_spare = scratch.spare_count[idx];
        const std::size_t n = n_own + n_spare;
        if (n != 0) {
          const Candidate* block = scratch.blocks.data() + idx * 2 * cap;
          std::copy_n(block, n_own, merged);
          std::copy_n(block + cap, n_spare, merged + n_own);
          std::sort(merged, merged + n,
                    [](const Candidate& a, const Candidate& b_) {
                      return a.satellite < b_.satellite;
                    });
          sc.cands.insert(sc.cands.end(), merged, merged + n);
        }
        sc.offsets[ti + 1] = static_cast<std::uint32_t>(sc.cands.size());
      }
    }
  }

  for (std::size_t b = 0; b < count; ++b) {
    atomic_max(*ctx.step_high_water, out[b].cands.size());
  }
  ctx.pruned_pairs->fetch_add(pruned, std::memory_order_relaxed);
}

// Phase-2 inputs: the step-invariant scheduling state.
struct ConsumeContext {
  const SchedulerConfig& config;
  std::span<const constellation::Satellite> satellites;
  std::span<const Terminal> terminals;
  std::span<const std::size_t> spare_order;
  // Per-satellite beams reserved from the spare pass (withholding).
  std::span<const int> spare_reserved;
};

// Per-run phase-2 scratch: beam counters and the served bitmap are assigned
// (not reallocated) every step — at a million terminals the per-step
// allocations the old code made would dominate the sequential phase.
struct ConsumeScratch {
  std::vector<int> beams_left;
  std::vector<std::uint8_t> served;
};

// Spare-commons ban check shared by both phase-2 implementations: parties
// beyond the exclusion vector are not excluded, so an empty vector bans
// no one (and constellation::Satellite::kUnowned can never index in).
bool spare_excluded(const SchedulerConfig& config, std::uint32_t party) noexcept {
  return party < config.spare_exclude_party.size() &&
         config.spare_exclude_party[party] != 0;
}

// Sequentially allocates beams for one step from its candidate list. Mirrors
// schedule_step exactly: same two passes, same strict-> maximisation, same
// tie-breaks — a candidate list entry stands in for the (si, best-station)
// column of the reference's joint scan, so the selected links and their
// order are bit-identical. `beam_rejections` (nullable) counts candidates
// skipped because their satellite had no beam left — the contention signal
// the obs layer reports.
StepSchedule consume_step(const ConsumeContext& ctx, const StepCandidates& sc,
                          std::size_t step, const fault::FaultTimeline* faults,
                          std::span<const std::uint8_t> blocked_terminals,
                          ConsumeScratch& scratch, std::uint64_t* beam_rejections,
                          std::uint64_t* withheld_rejections,
                          std::span<const std::uint32_t> sticky_prev = {},
                          double sticky_margin = 0.0) {
  StepSchedule schedule;
  schedule.step = step;

  const bool faulted = faults != nullptr && !faults->empty();
  std::vector<int>& beams_left = scratch.beams_left;
  beams_left.assign(ctx.satellites.size(), ctx.config.beams_per_satellite);
  if (faulted) {
    for (std::size_t si = 0; si < ctx.satellites.size(); ++si) {
      beams_left[si] = faults->degraded_beam_count(si, step, ctx.config.beams_per_satellite);
    }
  }

  std::vector<std::uint8_t>& served = scratch.served;
  served.assign(ctx.terminals.size(), 0);
  for (const bool spare_pass : {false, true}) {
    for (std::size_t order_index = 0; order_index < ctx.terminals.size(); ++order_index) {
      const std::size_t ti = spare_pass ? ctx.spare_order[order_index] : order_index;
      if (ti < blocked_terminals.size() && blocked_terminals[ti] != 0) continue;
      if (served[ti] != 0) continue;

      const std::uint32_t party = ctx.terminals[ti].owner_party;
      // A spare-banned party's terminals take nothing from the commons; its
      // own pass already ran untouched.
      if (spare_pass && spare_excluded(ctx.config, party)) continue;
      // Sticky spare grants (hysteresis): remember last step's satellite if
      // it is still a feasible spare candidate, and keep it unless some
      // competitor beats it by more than the margin.
      const std::uint32_t sticky_sat =
          spare_pass && sticky_margin > 0.0 && ti < sticky_prev.size()
              ? sticky_prev[ti]
              : 0xFFFFFFFFu;
      double sticky_capacity = 0.0;
      std::size_t sticky_gs = 0;
      bool sticky_found = false;
      double best_capacity = 0.0;
      std::size_t best_sat = 0, best_gs = 0;
      bool found = false;
      for (std::uint32_t k = sc.offsets[ti]; k < sc.offsets[ti + 1]; ++k) {
        const Candidate& cand = sc.cands[k];
        if (spare_pass &&
            spare_excluded(ctx.config, ctx.satellites[cand.satellite].owner_party)) {
          continue;  // quarantined capacity is not on offer
        }
        const int spare_floor = spare_pass ? ctx.spare_reserved[cand.satellite] : 0;
        if (beams_left[cand.satellite] <= spare_floor) {
          if (beams_left[cand.satellite] <= 0) {
            if (beam_rejections != nullptr) ++*beam_rejections;
          } else if (withheld_rejections != nullptr) {
            ++*withheld_rejections;
          }
          continue;
        }
        const bool own = ctx.satellites[cand.satellite].owner_party == party;
        if (own == spare_pass) continue;  // pass 0: own only; pass 1: spare only
        if (cand.satellite == sticky_sat) {
          sticky_capacity = cand.capacity_bps;
          sticky_gs = cand.station;
          sticky_found = true;
        }
        if (cand.capacity_bps > best_capacity) {
          best_capacity = cand.capacity_bps;
          best_sat = cand.satellite;
          best_gs = cand.station;
          found = true;
        }
      }
      if (sticky_found && best_sat != sticky_sat &&
          !(best_capacity > sticky_capacity * (1.0 + sticky_margin))) {
        best_capacity = sticky_capacity;
        best_sat = sticky_sat;
        best_gs = sticky_gs;
      }
      if (found) {
        --beams_left[best_sat];
        served[ti] = 1;
        schedule.links.push_back({ti, best_sat, best_gs, best_capacity,
                                  ctx.satellites[best_sat].owner_party != party});
      }
    }
  }

  for (std::size_t ti = 0; ti < ctx.terminals.size(); ++ti) {
    if (served[ti] == 0) schedule.unserved_terminals.push_back(ti);
  }
  return schedule;
}

// Degraded-operations state shared by run and run_reference: who served each
// terminal last step, and how long each terminal still sits in
// re-acquisition backoff. All of it stays inert (and the sweep bit-identical
// to the no-fault path) when faults are null or empty.
struct DetachState {
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  std::vector<std::uint32_t> prev_satellite;
  std::vector<std::uint32_t> prev_station;
  std::vector<std::size_t> backoff_remaining;
  std::vector<std::uint8_t> blocked;
  // Engaged only by DegradationPolicy::backoff_initial_steps > 0; otherwise
  // the constant reacquisition_backoff_steps hold applies (PR 2 behavior).
  std::vector<ReacquisitionBackoff> machines;

  explicit DetachState(std::size_t terminal_count)
      : prev_satellite(terminal_count, kNone),
        prev_station(terminal_count, kNone),
        backoff_remaining(terminal_count, 0),
        blocked(terminal_count, 0) {}

  void configure(const DegradationPolicy& policy) {
    if (policy.enabled && policy.backoff_initial_steps > 0) {
      machines.assign(blocked.size(),
                      ReacquisitionBackoff(policy.backoff_initial_steps,
                                           policy.backoff_multiplier,
                                           policy.backoff_max_steps,
                                           policy.backoff_clean_horizon_steps));
    }
  }

  // A terminal whose serving satellite or station just went down is
  // failure-force-detached: it must re-acquire, which costs
  // reacquisition_backoff_steps of no service (or the policy's exponential
  // hold when engaged). Elevation-driven loss (the satellite flying out of
  // view) stays a free handover.
  void pre_step(const fault::FaultTimeline& faults, std::size_t step,
                std::size_t backoff_steps, double dt_step, ScheduleResult& result,
                SloAccumulator* slo = nullptr) {
    for (std::size_t ti = 0; ti < blocked.size(); ++ti) {
      if (prev_satellite[ti] != kNone &&
          (!faults.satellite_available(prev_satellite[ti], step) ||
           (prev_station[ti] != kNone &&
            !faults.station_available(prev_station[ti], step)))) {
        ++result.failure_forced_detaches;
        const std::size_t hold =
            machines.empty() ? backoff_steps : machines[ti].on_failure();
        backoff_remaining[ti] = std::max(backoff_remaining[ti], hold);
        prev_satellite[ti] = kNone;
        prev_station[ti] = kNone;
        if (slo != nullptr) slo->on_failure_detach(ti, step);
      } else if (!machines.empty()) {
        machines[ti].on_clean_step();
      }
      blocked[ti] = backoff_remaining[ti] > 0 ? 1 : 0;
      if (blocked[ti]) result.reacquisition_wait_seconds += dt_step;
    }
  }

  void post_step(const StepSchedule& schedule) {
    for (std::size_t ti = 0; ti < blocked.size(); ++ti) {
      if (backoff_remaining[ti] > 0) --backoff_remaining[ti];
      prev_satellite[ti] = kNone;
      prev_station[ti] = kNone;
    }
    for (const LinkAssignment& link : schedule.links) {
      prev_satellite[link.terminal_index] =
          static_cast<std::uint32_t>(link.satellite_index);
      prev_station[link.terminal_index] =
          static_cast<std::uint32_t>(link.station_index);
    }
  }
};

// One run's degradation-policy + SLO driver, shared verbatim by run() and
// run_reference() so both paths step the policy identically and the
// disabled-policy/no-SLO configuration stays bit-identical to the pre-policy
// scheduler (the blocked span handed to the step scheduler is exactly the
// historical one unless shedding actually fires).
struct PolicyDriver {
  const SchedulerConfig& config;
  std::span<const constellation::Satellite> satellites;
  std::span<const Terminal> terminals;
  const fault::FaultTimeline* faults;
  bool faulted = false;
  bool shedding = false;
  bool sticky = false;
  DetachState detach;
  SloAccumulator slo;
  std::vector<std::uint8_t> shed_blocked;  // detach.blocked | shed flags
  std::uint64_t shed_terminal_steps = 0;

  PolicyDriver(const SchedulerConfig& cfg,
               std::span<const constellation::Satellite> sats,
               std::span<const Terminal> terms, const fault::FaultTimeline* f,
               std::size_t party_count, double dt_step)
      : config(cfg),
        satellites(sats),
        terminals(terms),
        faults(f),
        detach(terms.size()) {
    faulted = f != nullptr && !f->empty();
    const DegradationPolicy& policy = cfg.degradation;
    shedding = policy.enabled && faulted && !policy.shed_below.empty();
    sticky = policy.enabled && policy.spare_hysteresis_margin > 0.0;
    if (policy.slo_window_steps > 0) {
      slo = SloAccumulator(party_count, terms.size(), policy.slo_window_steps,
                           dt_step);
    }
    if (shedding) shed_blocked.resize(terms.size(), 0);
    detach.configure(policy);
  }

  // Detach bookkeeping plus load shedding for `step`; returns the blocked
  // span the step scheduler must honor (empty when nothing can block).
  std::span<const std::uint8_t> pre_step(std::size_t step, double dt_step,
                                         ScheduleResult& result) {
    if (!faulted) return {};
    detach.pre_step(*faults, step, config.reacquisition_backoff_steps, dt_step,
                    result, slo.engaged() ? &slo : nullptr);
    if (!shedding) return detach.blocked;
    // Healthy-beam fraction across the fleet at this step; a tier whose
    // threshold exceeds it is deliberately unserved so better tiers keep the
    // surviving capacity.
    const int nominal = config.beams_per_satellite;
    double healthy = 0.0;
    for (std::size_t si = 0; si < satellites.size(); ++si) {
      healthy += static_cast<double>(faults->degraded_beam_count(
          si, step, nominal));
    }
    const double denom =
        static_cast<double>(satellites.size()) * static_cast<double>(nominal);
    const double fraction = denom > 0.0 ? healthy / denom : 1.0;
    for (std::size_t ti = 0; ti < terminals.size(); ++ti) {
      std::uint8_t block = detach.blocked[ti];
      if (block == 0 &&
          fraction < config.degradation.shed_threshold(terminals[ti].owner_party)) {
        block = 1;
        ++shed_terminal_steps;
        if (slo.engaged()) slo.on_shed(terminals[ti].owner_party);
      }
      shed_blocked[ti] = block;
    }
    return shed_blocked;
  }

  [[nodiscard]] std::span<const std::uint32_t> sticky_prev() const {
    return sticky ? std::span<const std::uint32_t>(detach.prev_satellite)
                  : std::span<const std::uint32_t>{};
  }
  [[nodiscard]] double sticky_margin() const {
    return sticky ? config.degradation.spare_hysteresis_margin : 0.0;
  }

  void post_step(const StepSchedule& schedule) {
    // Sticky grants need last step's satellites even on fault-free runs;
    // with no faults and no hysteresis this bookkeeping is skipped exactly
    // as before.
    if (faulted || sticky) detach.post_step(schedule);
    if (slo.engaged()) slo.record_step(schedule, terminals);
  }

  void finish(ScheduleResult& result) {
    if (slo.engaged()) result.slo = slo.finish();
  }
};

// Post-grant RF degradation (config.rf armed with active interferers). Link
// SELECTION already happened on nominal capacities — beam grants and their
// ordering are untouched, so growing the jam set can only degrade honest
// capacity, never reshuffle grants (the CRN sweep monotonicity carries
// through). Each granted link maps its nominal capacity to an effective SNR
// over the plan's reference bandwidth, divides by one plus the aggregate
// interference-to-noise of every plan-violating emission in view of the
// victim terminal, and maps back; capacity is only overwritten when some
// interference actually arrived (INR > 0), keeping clean links bit-identical
// through the Shannon round-trip's rounding.
void apply_rf_step(const rf::InterferenceEnvironment& env,
                   std::span<const util::Vec3> positions,
                   std::span<const Terminal> terminals,
                   std::span<const constellation::Satellite> satellites,
                   std::span<const orbit::TopocentricFrame> terminal_frames,
                   std::span<const HopEvaluator> jam_hops, double sin_mask,
                   StepSchedule& schedule, rf::RfLinkStats& stats) {
  const double band = env.reference_bandwidth_hz();
  for (LinkAssignment& link : schedule.links) {
    const std::size_t ti = link.terminal_index;
    const std::uint32_t victim = terminals[ti].owner_party;
    const double nominal = link.capacity_bps;
    double inr_total = 0.0;
    // Owner-attributed continuous emission: every satellite of a jamming or
    // squatting party radiates off-plan whenever it is above the victim's
    // horizon (a bent pipe repeats constantly), at the transponder's
    // transmit EIRP scaled by the environment's coupling factor.
    for (std::size_t si = 0; si < satellites.size(); ++si) {
      const std::uint32_t owner = satellites[si].owner_party;
      if (owner == constellation::Satellite::kUnowned) continue;
      if (!env.jams(owner) && !env.squats(owner)) continue;
      const double coupling = env.coupling(owner, victim);
      if (coupling <= 0.0) continue;
      const util::Vec3& pos = positions[si];
      if (!terminal_frames[ti].visible_above(pos, sin_mask)) continue;
      const double inr =
          coupling * jam_hops[ti].snr_linear(terminal_frames[ti].range_m(pos));
      inr_total += inr;
      stats.violation_inr_by_party[owner] += inr;
    }
    double realized = nominal;
    if (inr_total > 0.0) {
      const double snr_eff = std::exp2(nominal / band) - 1.0;
      realized = band * std::log2(1.0 + snr_eff / (1.0 + inr_total));
      link.capacity_bps = realized;
      ++stats.degraded_links;
    }
    stats.nominal_bps_by_party[victim] += nominal;
    stats.realized_bps_by_party[victim] += realized;
    stats.nominal_bps_total += nominal;
    stats.realized_bps_total += realized;
  }
}

// Folds one step's schedule into the per-party aggregates.
void accumulate_step(const StepSchedule& schedule, std::span<const Terminal> terminals,
                     std::span<const constellation::Satellite> satellites, double dt_step,
                     ScheduleResult& result) {
  for (const LinkAssignment& link : schedule.links) {
    const std::uint32_t term_party = terminals[link.terminal_index].owner_party;
    const std::uint32_t sat_party = satellites[link.satellite_index].owner_party;
    const double throughput_bytes =
        std::min(link.capacity_bps, terminals[link.terminal_index].demand_bps) *
        dt_step / 8.0;
    if (link.spare) {
      result.per_party[term_party].spare_used_seconds += dt_step;
      result.per_party[term_party].bytes_received_from_others += throughput_bytes;
      if (sat_party != constellation::Satellite::kUnowned) {
        result.per_party[sat_party].spare_provided_seconds += dt_step;
        result.per_party[sat_party].bytes_carried_for_others += throughput_bytes;
      }
    } else {
      result.per_party[term_party].own_link_seconds += dt_step;
    }
    result.total_served_seconds += dt_step;
  }
  for (std::size_t ti : schedule.unserved_terminals) {
    result.per_party[terminals[ti].owner_party].unserved_terminal_seconds += dt_step;
    result.total_unserved_seconds += dt_step;
  }
}

// Metric handles for one run(), registered up front so the hot loops never
// touch the registry's name tables. All handles are null-safe no-ops when no
// registry is attached, so the uninstrumented overloads pay only dead
// branches on null pointers.
struct RunMetrics {
  obs::Histogram run_seconds;           // whole pipeline, one observation
  obs::Histogram propagate_seconds;     // shared ephemeris kernel
  obs::Histogram cull_seconds;          // pair masks + outages + party_avail
  obs::Histogram chunk_seconds;         // per phase-1 chunk (worker threads)
  obs::Histogram drain_seconds;         // per phase-2 chunk drain
  obs::Histogram candidates_per_step;   // candidate-list occupancy
  obs::Counter candidates;              // candidates emitted by phase 1
  obs::Counter cull_masks;              // pair masks filled by the culler
  obs::Counter cull_visible_steps;      // set bits across the pair masks
  obs::Counter index_pruned_pairs;      // pair visits skipped by the spatial index
  obs::Counter beam_rejections;         // candidates skipped: no beam left
  obs::Counter withheld_rejections;     // spare candidates skipped: beams withheld
  obs::Counter links_granted;
  obs::Counter steps;
  obs::Counter failure_forced_detaches;
  obs::Counter shed_terminal_steps;    // terminals shed by the degradation policy
  obs::Counter grant_flaps;            // SLO-tracked serving-satellite changes
  obs::Gauge stream_slots;
  obs::Gauge candidate_high_water;      // max per-step candidate count seen
  obs::Gauge threads;

  static RunMetrics attach(obs::MetricsRegistry* registry) {
    RunMetrics m;
    if (registry == nullptr) return m;
    m.run_seconds = registry->histogram("sched.run_seconds");
    m.propagate_seconds = registry->histogram("sched.propagate_seconds");
    m.cull_seconds = registry->histogram("sched.cull_seconds");
    m.chunk_seconds = registry->histogram("sched.phase1_chunk_seconds");
    m.drain_seconds = registry->histogram("sched.phase2_drain_seconds");
    m.candidates_per_step = registry->histogram(
        "sched.candidates_per_step", obs::MetricsRegistry::default_count_bounds());
    m.candidates = registry->counter("sched.candidates");
    m.cull_masks = registry->counter("sched.cull_masks");
    m.cull_visible_steps = registry->counter("sched.cull_visible_steps");
    m.index_pruned_pairs = registry->counter("sched.index_pruned_pairs");
    m.beam_rejections = registry->counter("sched.beam_rejections");
    m.withheld_rejections = registry->counter("sched.spare_withheld_rejections");
    m.links_granted = registry->counter("sched.links_granted");
    m.steps = registry->counter("sched.steps");
    m.failure_forced_detaches = registry->counter("sched.failure_forced_detaches");
    m.shed_terminal_steps = registry->counter("sched.shed_terminal_steps");
    m.grant_flaps = registry->counter("sched.grant_flaps");
    m.stream_slots = registry->gauge("sched.stream_slots");
    m.candidate_high_water = registry->gauge("sched.candidate_high_water");
    m.threads = registry->gauge("sched.threads");
    return m;
  }
};

}  // namespace

std::vector<core::ConfigIssue> SchedulerConfig::validate() const {
  std::vector<core::ConfigIssue> issues;
  const auto add = [&issues](const char* field, std::string message) {
    issues.push_back({"net.scheduler", field, std::move(message)});
  };
  if (!std::isfinite(elevation_mask_deg)) {
    add("elevation_mask_deg", "must be finite");
  }
  if (beams_per_satellite <= 0) {
    add("beams_per_satellite",
        "must be > 0, got " + std::to_string(beams_per_satellite));
  }
  if (stream_chunk_steps == 0 || stream_chunk_steps > 64 ||
      (stream_chunk_steps & (stream_chunk_steps - 1)) != 0) {
    add("stream_chunk_steps", "must be a power of two in [1, 64], got " +
                                  std::to_string(stream_chunk_steps));
  }
  if (max_candidates_per_terminal > 64) {
    add("max_candidates_per_terminal",
        "must be <= 64, got " + std::to_string(max_candidates_per_terminal));
  }
  for (const double weight : spare_priority_by_party) {
    if (!std::isfinite(weight) || weight < 0.0) {
      add("spare_priority_by_party", "weights must be finite and >= 0");
      break;
    }
  }
  for (const double fraction : spare_withheld_fraction) {
    if (!std::isfinite(fraction) || fraction < 0.0 || fraction > 1.0) {
      add("spare_withheld_fraction", "entries must be in [0, 1]");
      break;
    }
  }
  for (core::ConfigIssue& issue : degradation.validate()) {
    issues.push_back(std::move(issue));
  }
  return issues;
}

BentPipeScheduler::BentPipeScheduler(SchedulerConfig config,
                                     std::vector<constellation::Satellite> satellites,
                                     std::vector<Terminal> terminals,
                                     std::vector<GroundStation> stations)
    : config_(config),
      satellites_(std::move(satellites)),
      terminals_(std::move(terminals)),
      stations_(std::move(stations)),
      sin_mask_(std::sin(util::deg_to_rad(config.elevation_mask_deg))) {
  core::throw_if_invalid("BentPipeScheduler", config_.validate());
  if (!config_.spare_priority_by_party.empty()) {
    // A non-empty weight vector must cover every party index in play;
    // otherwise spare contention silently zero-weights (or worse, indexes
    // past) the uncovered parties.
    const std::size_t covered = config_.spare_priority_by_party.size();
    for (const Terminal& t : terminals_) {
      if (t.owner_party >= covered) {
        throw std::invalid_argument(
            "BentPipeScheduler: spare_priority_by_party does not cover terminal owner");
      }
    }
    for (const constellation::Satellite& s : satellites_) {
      if (s.owner_party != constellation::Satellite::kUnowned &&
          s.owner_party >= covered) {
        throw std::invalid_argument(
            "BentPipeScheduler: spare_priority_by_party does not cover satellite owner");
      }
    }
  }
  // Withheld beams, resolved per satellite once: ceil(nominal * fraction),
  // never the full beam count spilled past nominal. All-zero when the config
  // vector is empty — the spare beam check stays the historical `> 0`.
  spare_reserved_.assign(satellites_.size(), 0);
  if (!config_.spare_withheld_fraction.empty()) {
    for (std::size_t si = 0; si < satellites_.size(); ++si) {
      const std::uint32_t owner = satellites_[si].owner_party;
      if (owner >= config_.spare_withheld_fraction.size()) continue;
      const double fraction = config_.spare_withheld_fraction[owner];
      spare_reserved_[si] = std::min(
          config_.beams_per_satellite,
          static_cast<int>(std::ceil(fraction * config_.beams_per_satellite)));
    }
  }

  terminal_frames_.reserve(terminals_.size());
  for (const Terminal& t : terminals_) terminal_frames_.emplace_back(t.location);
  station_frames_.reserve(stations_.size());
  for (const GroundStation& gs : stations_) station_frames_.emplace_back(gs.location);

  spare_order_.resize(terminals_.size());
  for (std::size_t i = 0; i < spare_order_.size(); ++i) spare_order_[i] = i;
  if (!config_.spare_priority_by_party.empty()) {
    std::stable_sort(spare_order_.begin(), spare_order_.end(),
                     [this](std::size_t a, std::size_t b) {
                       const auto& weights = config_.spare_priority_by_party;
                       auto weight_of = [&weights](const Terminal& t) {
                         return t.owner_party < weights.size()
                                    ? weights[t.owner_party]
                                    : 0.0;
                       };
                       return weight_of(terminals_[a]) > weight_of(terminals_[b]);
                     });
  }
}

StepSchedule BentPipeScheduler::schedule_step(std::span<const util::Vec3> satellite_ecef,
                                              std::size_t step) const {
  return schedule_step(satellite_ecef, step, nullptr);
}

StepSchedule BentPipeScheduler::schedule_step(
    std::span<const util::Vec3> satellite_ecef, std::size_t step,
    const fault::FaultTimeline* faults,
    std::span<const std::uint8_t> blocked_terminals,
    std::span<const std::uint32_t> sticky_prev_satellite,
    double sticky_margin) const {
  StepSchedule schedule;
  schedule.step = step;

  const bool faulted = faults != nullptr && !faults->empty();
  std::vector<int> beams_left(satellites_.size(), config_.beams_per_satellite);
  if (faulted) {
    for (std::size_t si = 0; si < satellites_.size(); ++si) {
      beams_left[si] = faults->degraded_beam_count(si, step, config_.beams_per_satellite);
    }
  }

  // Two passes: own-satellite links first (owner priority), then spare
  // capacity on anyone's satellite. Terminals served in the first pass are
  // tracked in a flat bitmap (not a scan over the links granted so far).
  std::vector<std::uint8_t> served(terminals_.size(), 0);
  for (const bool spare_pass : {false, true}) {
    for (std::size_t order_index = 0; order_index < terminals_.size(); ++order_index) {
      const std::size_t ti = spare_pass ? spare_order_[order_index] : order_index;
      // Terminals waiting out a re-acquisition backoff take no service.
      if (ti < blocked_terminals.size() && blocked_terminals[ti] != 0) continue;
      if (served[ti] != 0) continue;

      const Terminal& term = terminals_[ti];
      // Spare-commons ban: same rule as the pipelined consume_step.
      if (spare_pass && spare_excluded(config_, term.owner_party)) continue;
      const orbit::TopocentricFrame& term_frame = terminal_frames_[ti];

      // Best (highest end-to-end capacity) feasible satellite+station pair.
      double best_capacity = 0.0;
      std::size_t best_sat = 0, best_gs = 0;
      bool found = false;
      // Sticky spare grants: same hysteresis rule as the pipelined
      // consume_step — remember last step's satellite if still feasible.
      const std::uint32_t sticky_sat =
          spare_pass && sticky_margin > 0.0 && ti < sticky_prev_satellite.size()
              ? sticky_prev_satellite[ti]
              : 0xFFFFFFFFu;
      double sticky_capacity = 0.0;
      std::size_t sticky_gs = 0;
      bool sticky_found = false;

      for (std::size_t si = 0; si < satellites_.size(); ++si) {
        if (spare_pass && spare_excluded(config_, satellites_[si].owner_party)) continue;
        if (beams_left[si] <= (spare_pass ? spare_reserved_[si] : 0)) continue;
        const bool own = satellites_[si].owner_party == term.owner_party;
        if (own == spare_pass) continue;  // pass 0: own only; pass 1: spare only
        const util::Vec3& sat_pos = satellite_ecef[si];
        if (!term_frame.visible_above(sat_pos, sin_mask_)) continue;

        for (std::size_t gi = 0; gi < stations_.size(); ++gi) {
          if (stations_[gi].owner_party != term.owner_party) continue;
          if (faulted && !faults->station_available(gi, step)) continue;
          if (!station_frames_[gi].visible_above(sat_pos, sin_mask_)) continue;

          const double up = term_frame.range_m(sat_pos);
          const double down = station_frames_[gi].range_m(sat_pos);
          const RelayBudget budget = compute_relay(term.radio, config_.transponder,
                                                   stations_[gi].radio, up, down,
                                                   config_.relay_mode);
          if (si == sticky_sat && budget.end_to_end_capacity_bps > sticky_capacity) {
            sticky_capacity = budget.end_to_end_capacity_bps;
            sticky_gs = gi;
            sticky_found = true;
          }
          if (budget.end_to_end_capacity_bps > best_capacity) {
            best_capacity = budget.end_to_end_capacity_bps;
            best_sat = si;
            best_gs = gi;
            found = true;
          }
        }
      }

      if (sticky_found && best_sat != sticky_sat &&
          !(best_capacity > sticky_capacity * (1.0 + sticky_margin))) {
        best_capacity = sticky_capacity;
        best_sat = sticky_sat;
        best_gs = sticky_gs;
      }

      if (found) {
        --beams_left[best_sat];
        served[ti] = 1;
        schedule.links.push_back({ti, best_sat, best_gs, best_capacity,
                                  satellites_[best_sat].owner_party != term.owner_party});
      }
    }
  }

  for (std::size_t ti = 0; ti < terminals_.size(); ++ti) {
    if (served[ti] == 0) schedule.unserved_terminals.push_back(ti);
  }
  return schedule;
}

void BentPipeScheduler::validate_owners(std::size_t party_count) const {
  for (const Terminal& t : terminals_) {
    if (t.owner_party >= party_count) {
      throw std::invalid_argument("BentPipeScheduler::run: terminal owner out of range");
    }
  }
  for (const constellation::Satellite& s : satellites_) {
    if (s.owner_party != constellation::Satellite::kUnowned && s.owner_party >= party_count) {
      throw std::invalid_argument("BentPipeScheduler::run: satellite owner out of range");
    }
  }
}

orbit::EphemerisSet BentPipeScheduler::ephemerides(const orbit::TimeGrid& grid,
                                                   util::ThreadPool* pool) const {
  std::vector<orbit::EphemerisSpec> specs;
  specs.reserve(satellites_.size());
  for (const constellation::Satellite& s : satellites_) {
    orbit::EphemerisSpec spec{s.elements, s.epoch, orbit::Perturbation::kJ2Secular};
    spec.backend = config_.propagator_backend;
    specs.push_back(std::move(spec));
  }
  return orbit::EphemerisSet::compute(specs, grid, pool);
}

ScheduleResult BentPipeScheduler::run(const orbit::TimeGrid& grid, std::size_t party_count,
                                      bool keep_steps, util::ThreadPool* pool) const {
  return run_impl(grid, party_count, nullptr, keep_steps, pool, nullptr);
}

ScheduleResult BentPipeScheduler::run(const orbit::TimeGrid& grid, std::size_t party_count,
                                      const fault::FaultTimeline* faults, bool keep_steps,
                                      util::ThreadPool* pool) const {
  return run_impl(grid, party_count, faults, keep_steps, pool, nullptr);
}

ScheduleResult BentPipeScheduler::run(const orbit::TimeGrid& grid, std::size_t party_count,
                                      sim::RunContext& context, bool keep_steps) const {
  return run_impl(grid, party_count, context.faults(), keep_steps, context.pool(),
                  &context.metrics());
}

ScheduleResult BentPipeScheduler::run_impl(const orbit::TimeGrid& grid,
                                           std::size_t party_count,
                                           const fault::FaultTimeline* faults,
                                           bool keep_steps, util::ThreadPool* pool,
                                           obs::MetricsRegistry* metrics) const {
  validate_owners(party_count);
  const RunMetrics rm = RunMetrics::attach(metrics);
  obs::ScopedTimer run_timer(rm.run_seconds);

  ScheduleResult result;
  result.per_party.resize(party_count);
  const std::size_t step_total = grid.count;
  if (step_total == 0) return result;

  const std::size_t sat_count = satellites_.size();
  const std::size_t term_count = terminals_.size();
  const std::size_t station_count = stations_.size();
  const bool faulted = faults != nullptr && !faults->empty();

  // Every satellite propagated once through the shared ephemeris kernel;
  // both phases (and run_reference) read positions from these tables.
  const orbit::EphemerisSet eph = [&] {
    obs::ScopedTimer propagate_timer(rm.propagate_seconds);
    return ephemerides(grid, pool);
  }();

  // Resolve the visibility mode: pair masks while the (satellite, terminal)
  // mask array fits the budget, footprint stream beyond it.
  const std::size_t mask_words = (step_total + 63) / 64;
  VisibilityMode mode = config_.visibility_mode;
  if (mode == VisibilityMode::kAuto) {
    const std::size_t pair_bytes = sat_count * term_count * mask_words * 8;
    mode = pair_bytes > kPairMaskBudgetBytes ? VisibilityMode::kFootprintStream
                                             : VisibilityMode::kPairMasks;
  }
  const bool direct = mode == VisibilityMode::kFootprintStream;

  obs::ScopedTimer cull_timer(rm.cull_seconds);

  // Latitude-band pruning data: a conservative per-satellite footprint cone
  // (the culler's own derivation with the fleet-wide minimum site radius
  // substituted, so it can only be wider than any per-site cone) plus each
  // table's latitude reach. A (satellite, site) pair whose latitude bands
  // cannot intersect provably has an all-zero mask, so the cull fill is
  // skipped outright — same bits, no work.
  double site_r_min = 0.0;
  {
    bool first = true;
    for (const orbit::TopocentricFrame& f : terminal_frames_) {
      const double r = f.origin_ecef().norm();
      site_r_min = first ? r : std::min(site_r_min, r);
      first = false;
    }
    for (const orbit::TopocentricFrame& f : station_frames_) {
      const double r = f.origin_ecef().norm();
      site_r_min = first ? r : std::min(site_r_min, r);
      first = false;
    }
  }
  std::vector<double> sat_psi(sat_count, 0.0);
  std::vector<double> sat_max_sin_lat(sat_count, 1.0);
  for (std::size_t si = 0; si < sat_count; ++si) {
    const orbit::EphemerisTable& table = eph.table(si);
    sat_psi[si] = cov::FootprintCone::make(table.min_radius_m(), table.max_radius_m(),
                                           site_r_min, config_.elevation_mask_deg)
                      .psi_rad;
    sat_max_sin_lat[si] = cov::max_abs_sin_latitude(table);
  }
  std::vector<double> station_sin_lat(station_count, 0.0);
  for (std::size_t gi = 0; gi < station_count; ++gi) {
    const util::Vec3& o = station_frames_[gi].origin_ecef();
    const double r = o.norm();
    station_sin_lat[gi] = r > 0.0 ? o.z / r : 0.0;
  }

  // Pair visibility masks through the coverage cull, packed into slab
  // storage. The cull only skips work — each set bit passed the exact
  // visible_above test the reference runs — so a mask word is precisely 64
  // reference visibility answers.
  const cov::VisibilityCuller culler(grid, config_.elevation_mask_deg);
  const cov::CullCounters cull_counters{rm.cull_masks, rm.cull_visible_steps};
  std::atomic<std::uint64_t> pruned_pairs{0};

  cov::PackedMasks station_vis(sat_count * station_count, step_total);
  cov::PackedMasks terminal_vis;
  if (!direct) {
    terminal_vis = cov::PackedMasks(sat_count * term_count, step_total);
  }
  std::vector<double> terminal_sin_lat;
  if (!direct) {
    terminal_sin_lat.resize(term_count);
    for (std::size_t ti = 0; ti < term_count; ++ti) {
      const util::Vec3& o = terminal_frames_[ti].origin_ecef();
      const double r = o.norm();
      terminal_sin_lat[ti] = r > 0.0 ? o.z / r : 0.0;
    }
  }
  const auto fill_pair_masks = [&](std::size_t si) {
    const orbit::EphemerisTable& table = eph.table(si);
    std::uint64_t local_pruned = 0;
    if (!direct) {
      for (std::size_t ti = 0; ti < term_count; ++ti) {
        if (!cov::latitude_reachable(sat_max_sin_lat[si], sat_psi[si],
                                     terminal_sin_lat[ti])) {
          ++local_pruned;
          continue;
        }
        culler.fill(table, terminal_frames_[ti],
                    terminal_vis.words(si * term_count + ti), cull_counters);
      }
    }
    for (std::size_t gi = 0; gi < station_count; ++gi) {
      if (!cov::latitude_reachable(sat_max_sin_lat[si], sat_psi[si],
                                   station_sin_lat[gi])) {
        ++local_pruned;
        continue;
      }
      culler.fill(table, station_frames_[gi],
                  station_vis.words(si * station_count + gi), cull_counters);
    }
    pruned_pairs.fetch_add(local_pruned, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->parallel_for(sat_count, fill_pair_masks);
  } else {
    for (std::size_t si = 0; si < sat_count; ++si) fill_pair_masks(si);
  }

  // Station outages come off the pair masks up front, so phase 1 never
  // offers a downed station. Steps at or beyond the timeline's own grid
  // report healthy (the station_available contract).
  if (faulted) {
    for (std::size_t gi = 0; gi < station_count; ++gi) {
      const cov::StepMask* outage = faults->station_outage_steps(gi);
      if (outage == nullptr) continue;
      cov::StepMask clipped(step_total);
      const std::size_t limit = std::min(step_total, outage->step_count());
      for (std::size_t step = 0; step < limit; ++step) {
        if (outage->test(step)) clipped.set(step);
      }
      for (std::size_t si = 0; si < sat_count; ++si) {
        station_vis.subtract(si * station_count + gi, clipped);
      }
    }
  }

  // Per-(party, satellite) availability: the union of the party's healthy
  // station legs through that satellite. Stations owned by parties outside
  // [0, party_count) can never match a (validated) terminal owner, so they
  // contribute to no mask — exactly the reference's owner filter.
  cov::PackedMasks party_avail(party_count * sat_count, step_total);
  for (std::size_t gi = 0; gi < station_count; ++gi) {
    const std::uint32_t party = stations_[gi].owner_party;
    if (party >= party_count) continue;
    for (std::size_t si = 0; si < sat_count; ++si) {
      const std::span<std::uint64_t> dst = party_avail.words(party * sat_count + si);
      const std::span<const std::uint64_t> src =
          station_vis.words(si * station_count + gi);
      for (std::size_t w = 0; w < dst.size(); ++w) dst[w] |= src[w];
    }
  }

  // Footprint-stream inputs: the terminal spatial index, the shell shards
  // and one conservative cone per shard.
  cov::FootprintIndex footprint_index;
  std::vector<constellation::ShellShard> shards;
  std::vector<cov::FootprintCone> shard_cones;
  if (direct) {
    footprint_index = cov::FootprintIndex(terminal_frames_);
    shards = constellation::shell_partition(satellites_);
    shard_cones.reserve(shards.size());
    for (const constellation::ShellShard& shard : shards) {
      double r_min = 0.0, r_max = 0.0;
      for (std::size_t si = shard.begin; si < shard.end; ++si) {
        const orbit::EphemerisTable& table = eph.table(si);
        if (si == shard.begin) {
          r_min = table.min_radius_m();
          r_max = table.max_radius_m();
        } else {
          r_min = std::min(r_min, table.min_radius_m());
          r_max = std::max(r_max, table.max_radius_m());
        }
      }
      shard_cones.push_back(cov::FootprintCone::make(
          r_min, r_max, footprint_index.min_site_radius_m(),
          config_.elevation_mask_deg));
    }
  }
  cull_timer.stop();

  std::vector<HopEvaluator> uplink_hops;
  uplink_hops.reserve(term_count);
  for (const Terminal& terminal : terminals_) {
    uplink_hops.push_back(HopEvaluator::make(terminal.radio, config_.transponder.receive));
  }
  std::vector<HopEvaluator> downlink_hops;
  downlink_hops.reserve(station_count);
  for (const GroundStation& station : stations_) {
    downlink_hops.push_back(HopEvaluator::make(config_.transponder.transmit, station.radio));
  }

  std::atomic<std::size_t> step_high_water{0};
  const bool regenerative = config_.relay_mode == RelayMode::kRegenerative;
  const PipelineContext ctx{config_,        satellites_,      terminals_,
                            stations_,      terminal_frames_, station_frames_,
                            eph,            &terminal_vis,    &station_vis,
                            &party_avail,   uplink_hops,      downlink_hops,
                            regenerative,   &step_high_water};
  const DirectContext dctx{config_,
                           satellites_,
                           terminals_,
                           stations_,
                           terminal_frames_,
                           station_frames_,
                           eph,
                           &footprint_index,
                           shards,
                           shard_cones,
                           &station_vis,
                           &party_avail,
                           uplink_hops,
                           downlink_hops,
                           regenerative,
                           sin_mask_,
                           config_.max_candidates_per_terminal,
                           &step_high_water,
                           &pruned_pairs};
  const ConsumeContext cctx{config_, satellites_, terminals_, spare_order_,
                            spare_reserved_};

  // Streaming pipeline: producer chunks publish in step order through a
  // bounded ring of slots; the sequential grant phase consumes each chunk
  // the moment it lands and frees the slot for chunk + slots. Peak candidate
  // memory is `slots` chunks regardless of horizon, and the consumption
  // order (strictly chunk 0, 1, 2, ...) makes the result bit-identical for
  // any pool size, slot count, or chunk size.
  const std::size_t chunk_steps = config_.stream_chunk_steps;
  const std::size_t chunk_total = (step_total + chunk_steps - 1) / chunk_steps;
  std::size_t slots;
  if (config_.stream_slots > 0) {
    slots = config_.stream_slots;
  } else if (direct) {
    // A slot's staging buffers scale with terminals; keep few in flight.
    slots = pool != nullptr
                ? std::max<std::size_t>(2, std::min<std::size_t>(pool->thread_count(), 4))
                : 2;
  } else {
    slots = pool != nullptr ? std::max<std::size_t>(2 * pool->thread_count(), 8)
                            : std::size_t{4};
  }
  slots = std::max<std::size_t>(1, std::min(slots, chunk_total));
  std::vector<std::vector<StepCandidates>> buffers(slots);
  std::vector<FillScratch> fill_scratch(direct ? 0 : slots);
  std::vector<DirectScratch> direct_scratch(direct ? slots : 0);

  // RF interference is applied post-grant, symmetrically with run_reference.
  const bool rf_active = config_.rf != nullptr && config_.rf->any_interferer();
  std::vector<HopEvaluator> jam_hops;
  std::vector<util::Vec3> rf_positions;
  if (rf_active) {
    result.rf.emplace();
    result.rf->nominal_bps_by_party.assign(party_count, 0.0);
    result.rf->realized_bps_by_party.assign(party_count, 0.0);
    result.rf->violation_inr_by_party.assign(party_count, 0.0);
    jam_hops.reserve(term_count);
    for (const Terminal& terminal : terminals_) {
      jam_hops.push_back(HopEvaluator::make(config_.transponder.transmit, terminal.radio));
    }
    rf_positions.resize(sat_count);
  }

  const double dt_step = grid.step_seconds;
  PolicyDriver policy(config_, satellites_, terminals_, faults, party_count,
                      dt_step);
  ConsumeScratch consume_scratch;
  rm.stream_slots.set(static_cast<double>(slots));
  rm.threads.set(static_cast<double>(pool != nullptr ? pool->thread_count() : 1));
  std::uint64_t beam_rejections = 0;
  std::uint64_t withheld_rejections = 0;
  std::uint64_t links_granted = 0;

  const auto produce = [&](std::size_t chunk, std::size_t slot) {
    obs::ScopedTimer chunk_timer(rm.chunk_seconds);
    const std::size_t begin = chunk * chunk_steps;
    const std::size_t count = std::min(chunk_steps, step_total - begin);
    buffers[slot].resize(count);
    if (direct) {
      fill_chunk_direct(dctx, begin, count, buffers[slot], direct_scratch[slot]);
    } else {
      fill_chunk(ctx, begin, count, buffers[slot], fill_scratch[slot]);
    }
    std::uint64_t emitted = 0;
    for (const StepCandidates& sc : buffers[slot]) emitted += sc.cands.size();
    rm.candidates.add(emitted);
  };

  const auto consume = [&](std::size_t chunk, std::size_t slot) {
    obs::ScopedTimer drain_timer(rm.drain_seconds);
    const std::size_t begin = chunk * chunk_steps;
    for (std::size_t b = 0; b < buffers[slot].size(); ++b) {
      const std::size_t step = begin + b;
      rm.candidates_per_step.observe(static_cast<double>(buffers[slot][b].cands.size()));
      const std::span<const std::uint8_t> blocked =
          policy.pre_step(step, dt_step, result);
      StepSchedule schedule = consume_step(
          cctx, buffers[slot][b], step, faults, blocked, consume_scratch,
          metrics != nullptr ? &beam_rejections : nullptr,
          metrics != nullptr ? &withheld_rejections : nullptr,
          policy.sticky_prev(), policy.sticky_margin());
      policy.post_step(schedule);
      if (rf_active) {
        for (std::size_t si = 0; si < sat_count; ++si) {
          rf_positions[si] = eph.table(si).position_ecef(step);
        }
        apply_rf_step(*config_.rf, rf_positions, terminals_, satellites_,
                      terminal_frames_, jam_hops, sin_mask_, schedule, *result.rf);
      }
      accumulate_step(schedule, terminals_, satellites_, dt_step, result);
      links_granted += schedule.links.size();
      if (keep_steps) result.steps.push_back(std::move(schedule));
    }
  };

  util::stream_chunks(pool, chunk_total, slots, produce, consume);

  policy.finish(result);
  rm.shed_terminal_steps.add(policy.shed_terminal_steps);
  if (result.slo.has_value()) rm.grant_flaps.add(result.slo->grant_flaps);
  rm.steps.add(step_total);
  rm.beam_rejections.add(beam_rejections);
  rm.withheld_rejections.add(withheld_rejections);
  rm.links_granted.add(links_granted);
  rm.failure_forced_detaches.add(result.failure_forced_detaches);
  rm.index_pruned_pairs.add(pruned_pairs.load(std::memory_order_relaxed));
  rm.candidate_high_water.set(
      static_cast<double>(step_high_water.load(std::memory_order_relaxed)));
  return result;
}

ScheduleResult BentPipeScheduler::run_reference(const orbit::TimeGrid& grid,
                                                std::size_t party_count,
                                                const fault::FaultTimeline* faults,
                                                bool keep_steps) const {
  validate_owners(party_count);

  ScheduleResult result;
  result.per_party.resize(party_count);
  if (grid.count == 0) return result;

  // Same shared ephemeris tables as run(): the two paths see bit-identical
  // satellite positions, which is what makes full-result bit-identity
  // possible at all.
  const orbit::EphemerisSet eph = ephemerides(grid, nullptr);

  std::vector<util::Vec3> positions(satellites_.size());
  const double dt_step = grid.step_seconds;
  PolicyDriver policy(config_, satellites_, terminals_, faults, party_count,
                      dt_step);

  const bool rf_active = config_.rf != nullptr && config_.rf->any_interferer();
  std::vector<HopEvaluator> jam_hops;
  if (rf_active) {
    result.rf.emplace();
    result.rf->nominal_bps_by_party.assign(party_count, 0.0);
    result.rf->realized_bps_by_party.assign(party_count, 0.0);
    result.rf->violation_inr_by_party.assign(party_count, 0.0);
    jam_hops.reserve(terminals_.size());
    for (const Terminal& terminal : terminals_) {
      jam_hops.push_back(HopEvaluator::make(config_.transponder.transmit, terminal.radio));
    }
  }

  for (std::size_t step = 0; step < grid.count; ++step) {
    for (std::size_t si = 0; si < satellites_.size(); ++si) {
      positions[si] = eph.table(si).position_ecef(step);
    }

    const std::span<const std::uint8_t> blocked =
        policy.pre_step(step, dt_step, result);
    StepSchedule schedule = schedule_step(positions, step, faults, blocked,
                                          policy.sticky_prev(), policy.sticky_margin());
    policy.post_step(schedule);
    if (rf_active) {
      apply_rf_step(*config_.rf, positions, terminals_, satellites_, terminal_frames_,
                    jam_hops, sin_mask_, schedule, *result.rf);
    }
    accumulate_step(schedule, terminals_, satellites_, dt_step, result);
    if (keep_steps) result.steps.push_back(std::move(schedule));
  }
  policy.finish(result);
  return result;
}

}  // namespace mpleo::net
