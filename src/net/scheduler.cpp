#include "net/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fault/timeline.hpp"
#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace mpleo::net {

BentPipeScheduler::BentPipeScheduler(SchedulerConfig config,
                                     std::vector<constellation::Satellite> satellites,
                                     std::vector<Terminal> terminals,
                                     std::vector<GroundStation> stations)
    : config_(config),
      satellites_(std::move(satellites)),
      terminals_(std::move(terminals)),
      stations_(std::move(stations)),
      sin_mask_(std::sin(util::deg_to_rad(config.elevation_mask_deg))) {
  if (config_.beams_per_satellite <= 0) {
    throw std::invalid_argument("BentPipeScheduler: beams_per_satellite must be > 0");
  }
  for (const double weight : config_.spare_priority_by_party) {
    if (!std::isfinite(weight) || weight < 0.0) {
      throw std::invalid_argument(
          "BentPipeScheduler: spare priority weights must be finite and >= 0");
    }
  }
  if (!config_.spare_priority_by_party.empty()) {
    // A non-empty weight vector must cover every party index in play;
    // otherwise spare contention silently zero-weights (or worse, indexes
    // past) the uncovered parties.
    const std::size_t covered = config_.spare_priority_by_party.size();
    for (const Terminal& t : terminals_) {
      if (t.owner_party >= covered) {
        throw std::invalid_argument(
            "BentPipeScheduler: spare_priority_by_party does not cover terminal owner");
      }
    }
    for (const constellation::Satellite& s : satellites_) {
      if (s.owner_party != constellation::Satellite::kUnowned &&
          s.owner_party >= covered) {
        throw std::invalid_argument(
            "BentPipeScheduler: spare_priority_by_party does not cover satellite owner");
      }
    }
  }
  terminal_frames_.reserve(terminals_.size());
  for (const Terminal& t : terminals_) terminal_frames_.emplace_back(t.location);
  station_frames_.reserve(stations_.size());
  for (const GroundStation& gs : stations_) station_frames_.emplace_back(gs.location);
}

StepSchedule BentPipeScheduler::schedule_step(std::span<const util::Vec3> satellite_ecef,
                                              std::size_t step) const {
  return schedule_step(satellite_ecef, step, nullptr);
}

StepSchedule BentPipeScheduler::schedule_step(
    std::span<const util::Vec3> satellite_ecef, std::size_t step,
    const fault::FaultTimeline* faults,
    std::span<const std::uint8_t> blocked_terminals) const {
  StepSchedule schedule;
  schedule.step = step;

  const bool faulted = faults != nullptr && !faults->empty();
  std::vector<int> beams_left(satellites_.size(), config_.beams_per_satellite);
  if (faulted) {
    for (std::size_t si = 0; si < satellites_.size(); ++si) {
      beams_left[si] = faults->degraded_beam_count(si, step, config_.beams_per_satellite);
    }
  }

  // Spare-pass service order: by configured party priority (descending),
  // stable by terminal index. Own-pass order stays index order.
  std::vector<std::size_t> spare_order(terminals_.size());
  for (std::size_t i = 0; i < spare_order.size(); ++i) spare_order[i] = i;
  if (!config_.spare_priority_by_party.empty()) {
    std::stable_sort(spare_order.begin(), spare_order.end(),
                     [this](std::size_t a, std::size_t b) {
                       const auto& weights = config_.spare_priority_by_party;
                       auto weight_of = [&weights](const Terminal& t) {
                         return t.owner_party < weights.size()
                                    ? weights[t.owner_party]
                                    : 0.0;
                       };
                       return weight_of(terminals_[a]) > weight_of(terminals_[b]);
                     });
  }

  // Two passes: own-satellite links first (owner priority), then spare
  // capacity on anyone's satellite.
  for (const bool spare_pass : {false, true}) {
    for (std::size_t order_index = 0; order_index < terminals_.size(); ++order_index) {
      const std::size_t ti = spare_pass ? spare_order[order_index] : order_index;
      // Terminals waiting out a re-acquisition backoff take no service.
      if (ti < blocked_terminals.size() && blocked_terminals[ti] != 0) continue;
      // Skip terminals already served in the first pass.
      const bool already = std::any_of(
          schedule.links.begin(), schedule.links.end(),
          [ti](const LinkAssignment& l) { return l.terminal_index == ti; });
      if (already) continue;

      const Terminal& term = terminals_[ti];
      const orbit::TopocentricFrame& term_frame = terminal_frames_[ti];

      // Best (highest end-to-end capacity) feasible satellite+station pair.
      double best_capacity = 0.0;
      std::size_t best_sat = 0, best_gs = 0;
      bool found = false;

      for (std::size_t si = 0; si < satellites_.size(); ++si) {
        if (beams_left[si] <= 0) continue;
        const bool own = satellites_[si].owner_party == term.owner_party;
        if (own == spare_pass) continue;  // pass 0: own only; pass 1: spare only
        const util::Vec3& sat_pos = satellite_ecef[si];
        if (!term_frame.visible_above(sat_pos, sin_mask_)) continue;

        for (std::size_t gi = 0; gi < stations_.size(); ++gi) {
          if (stations_[gi].owner_party != term.owner_party) continue;
          if (faulted && !faults->station_available(gi, step)) continue;
          if (!station_frames_[gi].visible_above(sat_pos, sin_mask_)) continue;

          const double up = term_frame.range_m(sat_pos);
          const double down = station_frames_[gi].range_m(sat_pos);
          const RelayBudget budget = compute_relay(term.radio, config_.transponder,
                                                   stations_[gi].radio, up, down,
                                                   config_.relay_mode);
          if (budget.end_to_end_capacity_bps > best_capacity) {
            best_capacity = budget.end_to_end_capacity_bps;
            best_sat = si;
            best_gs = gi;
            found = true;
          }
        }
      }

      if (found) {
        --beams_left[best_sat];
        schedule.links.push_back({ti, best_sat, best_gs, best_capacity,
                                  satellites_[best_sat].owner_party != term.owner_party});
      }
    }
  }

  for (std::size_t ti = 0; ti < terminals_.size(); ++ti) {
    const bool served = std::any_of(
        schedule.links.begin(), schedule.links.end(),
        [ti](const LinkAssignment& l) { return l.terminal_index == ti; });
    if (!served) schedule.unserved_terminals.push_back(ti);
  }
  return schedule;
}

ScheduleResult BentPipeScheduler::run(const orbit::TimeGrid& grid, std::size_t party_count,
                                      bool keep_steps) const {
  return run(grid, party_count, nullptr, keep_steps);
}

ScheduleResult BentPipeScheduler::run(const orbit::TimeGrid& grid, std::size_t party_count,
                                      const fault::FaultTimeline* faults,
                                      bool keep_steps) const {
  for (const Terminal& t : terminals_) {
    if (t.owner_party >= party_count) {
      throw std::invalid_argument("BentPipeScheduler::run: terminal owner out of range");
    }
  }
  for (const constellation::Satellite& s : satellites_) {
    if (s.owner_party != constellation::Satellite::kUnowned && s.owner_party >= party_count) {
      throw std::invalid_argument("BentPipeScheduler::run: satellite owner out of range");
    }
  }

  ScheduleResult result;
  result.per_party.resize(party_count);

  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);
  std::vector<orbit::KeplerianPropagator> props;
  props.reserve(satellites_.size());
  for (const constellation::Satellite& s : satellites_) {
    props.emplace_back(s.elements, s.epoch);
  }

  std::vector<util::Vec3> positions(satellites_.size());
  const double dt_step = grid.step_seconds;

  // Degraded-operations state: who served each terminal last step, and how
  // long each terminal still sits in re-acquisition backoff. All of it stays
  // inert (and the loop bit-identical to the no-fault path) when `faults` is
  // null or empty.
  const bool faulted = faults != nullptr && !faults->empty();
  constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  std::vector<std::uint32_t> prev_satellite(terminals_.size(), kNone);
  std::vector<std::uint32_t> prev_station(terminals_.size(), kNone);
  std::vector<std::size_t> backoff_remaining(terminals_.size(), 0);
  std::vector<std::uint8_t> blocked(terminals_.size(), 0);

  for (std::size_t step = 0; step < grid.count; ++step) {
    for (std::size_t si = 0; si < satellites_.size(); ++si) {
      const double dt = grid.at(step).seconds_since(satellites_[si].epoch);
      const util::Vec3 eci = props[si].position_eci_at_offset(dt);
      const double c = gmst.cos_gmst[step];
      const double s = gmst.sin_gmst[step];
      positions[si] = {c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
    }

    if (faulted) {
      // A terminal whose serving satellite or station just went down is
      // failure-force-detached: it must re-acquire, which costs
      // reacquisition_backoff_steps of no service. Elevation-driven loss
      // (the satellite flying out of view) stays a free handover.
      for (std::size_t ti = 0; ti < terminals_.size(); ++ti) {
        if (prev_satellite[ti] != kNone &&
            (!faults->satellite_available(prev_satellite[ti], step) ||
             (prev_station[ti] != kNone &&
              !faults->station_available(prev_station[ti], step)))) {
          ++result.failure_forced_detaches;
          backoff_remaining[ti] =
              std::max(backoff_remaining[ti], config_.reacquisition_backoff_steps);
          prev_satellite[ti] = kNone;
          prev_station[ti] = kNone;
        }
        blocked[ti] = backoff_remaining[ti] > 0 ? 1 : 0;
        if (blocked[ti]) result.reacquisition_wait_seconds += dt_step;
      }
    }

    StepSchedule schedule =
        faulted ? schedule_step(positions, step, faults, blocked)
                : schedule_step(positions, step);

    if (faulted) {
      for (std::size_t ti = 0; ti < terminals_.size(); ++ti) {
        if (backoff_remaining[ti] > 0) --backoff_remaining[ti];
        prev_satellite[ti] = kNone;
        prev_station[ti] = kNone;
      }
      for (const LinkAssignment& link : schedule.links) {
        prev_satellite[link.terminal_index] =
            static_cast<std::uint32_t>(link.satellite_index);
        prev_station[link.terminal_index] =
            static_cast<std::uint32_t>(link.station_index);
      }
    }

    for (const LinkAssignment& link : schedule.links) {
      const std::uint32_t term_party = terminals_[link.terminal_index].owner_party;
      const std::uint32_t sat_party = satellites_[link.satellite_index].owner_party;
      const double throughput_bytes =
          std::min(link.capacity_bps, terminals_[link.terminal_index].demand_bps) *
          dt_step / 8.0;
      if (link.spare) {
        result.per_party[term_party].spare_used_seconds += dt_step;
        result.per_party[term_party].bytes_received_from_others += throughput_bytes;
        if (sat_party != constellation::Satellite::kUnowned) {
          result.per_party[sat_party].spare_provided_seconds += dt_step;
          result.per_party[sat_party].bytes_carried_for_others += throughput_bytes;
        }
      } else {
        result.per_party[term_party].own_link_seconds += dt_step;
      }
      result.total_served_seconds += dt_step;
    }
    for (std::size_t ti : schedule.unserved_terminals) {
      result.per_party[terminals_[ti].owner_party].unserved_terminal_seconds += dt_step;
      result.total_unserved_seconds += dt_step;
    }

    if (keep_steps) result.steps.push_back(std::move(schedule));
  }
  return result;
}

}  // namespace mpleo::net
