// Inter-satellite links (§4 "Bent-pipe architectures and ISLs").
//
// The paper's base design omits ISLs: a terminal is served only when one
// satellite simultaneously sees it and a ground station. This module
// implements the future-work variant: satellites form a laser mesh (up to
// `max_links_per_satellite` links within `max_range_m`), and a terminal is
// covered when any visible satellite is within `max_hops` of a satellite
// that sees a gateway. `bench/ablate_isl` quantifies how many ground
// stations ISLs can replace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "constellation/shell.hpp"
#include "coverage/engine.hpp"
#include "coverage/step_mask.hpp"
#include "util/vec3.hpp"

namespace mpleo::util {
class ThreadPool;
}

namespace mpleo::net {

struct IslConfig {
  double max_range_m = 3000e3;     // laser terminal reach
  int max_links_per_satellite = 4; // typical: 2 in-plane + 2 cross-plane
  int max_hops = 3;                // relay budget per packet
};

// The ISL mesh at one instant, built from satellite ECEF/ECI positions
// (any common frame works — only pairwise distances matter).
class IslTopology {
 public:
  [[nodiscard]] static IslTopology build(std::span<const util::Vec3> positions,
                                         const IslConfig& config);

  [[nodiscard]] std::size_t satellite_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(std::size_t sat) const {
    return adjacency_.at(sat);
  }
  [[nodiscard]] std::size_t link_count() const noexcept;

  static constexpr int kUnreachable = -1;
  // BFS hop distance from the given source satellites (0 for sources);
  // kUnreachable where no path exists.
  [[nodiscard]] std::vector<int> hops_from(std::span<const std::size_t> sources) const;

 private:
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

// Coverage of one terminal when satellites may relay over ISLs: at each
// step the terminal is covered iff some satellite above its mask is within
// config.max_hops of a satellite above any gateway's mask.
// With config.max_hops == 0 this degenerates to the bent-pipe rule.
// Positions and visibility come from the shared ephemeris tables (filled in
// parallel across satellites when a pool is given); the per-step mesh is
// only built on steps where both a terminal-visible and a gateway-visible
// satellite exist.
[[nodiscard]] cov::StepMask isl_coverage_mask(
    const cov::CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    const orbit::TopocentricFrame& terminal,
    std::span<const cov::GroundSite> gateways, const IslConfig& config,
    util::ThreadPool* pool = nullptr);

}  // namespace mpleo::net
