#include "net/traffic.hpp"

#include <cmath>

#include "util/units.hpp"

namespace mpleo::net {

double local_solar_hour(const orbit::TimePoint& utc, double longitude_rad) noexcept {
  const orbit::CivilTime civil = utc.to_civil();
  const double utc_hours = civil.hour + civil.minute / 60.0 + civil.second / 3600.0;
  double local = utc_hours + util::rad_to_deg(longitude_rad) / 15.0;
  local = std::fmod(local, 24.0);
  if (local < 0.0) local += 24.0;
  return local;
}

double diurnal_demand_bps(const DiurnalProfile& profile, const orbit::TimePoint& t,
                          double longitude_rad) noexcept {
  const double hour = local_solar_hour(t, longitude_rad);
  // Circular distance to the peak hour, in [0, 12].
  double dh = std::fabs(hour - profile.peak_local_hour);
  dh = std::min(dh, 24.0 - dh);
  const double sigma = profile.spread_hours;
  const double bump = std::exp(-(dh * dh) / (2.0 * sigma * sigma));
  return profile.base_bps + (profile.peak_bps - profile.base_bps) * bump;
}

double city_demand_bps(const DiurnalProfile& profile, const cov::City& city,
                       const orbit::TimePoint& t) noexcept {
  const double per_terminal =
      diurnal_demand_bps(profile, t, city.location.longitude_rad);
  return per_terminal * (city.population / 1e6);
}

}  // namespace mpleo::net
