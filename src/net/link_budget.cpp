#include "net/link_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::net {

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }
double linear_to_db(double linear) noexcept { return 10.0 * std::log10(linear); }

double free_space_path_loss_db(double distance_m, double frequency_hz) {
  if (!(distance_m > 0.0) || !(frequency_hz > 0.0)) {
    throw std::invalid_argument("free_space_path_loss_db: non-positive input");
  }
  const double ratio =
      4.0 * util::kPi * distance_m * frequency_hz / util::kSpeedOfLightMPerSec;
  return 20.0 * std::log10(ratio);
}

double shannon_capacity_bps(double snr_linear, double bandwidth_hz) {
  if (snr_linear < 0.0 || bandwidth_hz <= 0.0) {
    throw std::invalid_argument("shannon_capacity_bps: invalid input");
  }
  return bandwidth_hz * std::log2(1.0 + snr_linear);
}

LinkBudget compute_link(const RadioConfig& tx, const RadioConfig& rx, double distance_m) {
  LinkBudget budget;
  budget.eirp_dbw = tx.eirp_dbw();
  budget.path_loss_db = free_space_path_loss_db(distance_m, tx.frequency_hz);
  budget.received_power_dbw = budget.eirp_dbw - budget.path_loss_db + rx.receive_gain_dbi -
                              tx.misc_losses_db;
  // N = k * T * B.
  budget.noise_power_dbw = linear_to_db(util::kBoltzmannJPerK * rx.system_noise_temp_k *
                                        rx.bandwidth_hz);
  budget.snr_db = budget.received_power_dbw - budget.noise_power_dbw;
  budget.snr_linear = db_to_linear(budget.snr_db);
  budget.shannon_capacity_bps = shannon_capacity_bps(budget.snr_linear, rx.bandwidth_hz);
  return budget;
}

HopEvaluator HopEvaluator::make(const RadioConfig& tx, const RadioConfig& rx) {
  HopEvaluator hop;
  hop.eirp_dbw = tx.eirp_dbw();
  hop.receive_gain_dbi = rx.receive_gain_dbi;
  hop.misc_losses_db = tx.misc_losses_db;
  hop.noise_power_dbw = linear_to_db(util::kBoltzmannJPerK * rx.system_noise_temp_k *
                                     rx.bandwidth_hz);
  hop.frequency_hz = tx.frequency_hz;
  hop.bandwidth_hz = rx.bandwidth_hz;
  return hop;
}

double HopEvaluator::snr_linear(double distance_m) const {
  // Same expression, same evaluation order as compute_link: any reassociation
  // here would break the scheduler's bit-identity contract.
  const double path_loss_db = free_space_path_loss_db(distance_m, frequency_hz);
  const double received_power_dbw =
      eirp_dbw - path_loss_db + receive_gain_dbi - misc_losses_db;
  return db_to_linear(received_power_dbw - noise_power_dbw);
}

}  // namespace mpleo::net
