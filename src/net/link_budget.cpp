#include "net/link_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::net {

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }
double linear_to_db(double linear) noexcept { return 10.0 * std::log10(linear); }

double free_space_path_loss_db(double distance_m, double frequency_hz) {
  if (!(distance_m > 0.0) || !(frequency_hz > 0.0)) {
    throw std::invalid_argument("free_space_path_loss_db: non-positive input");
  }
  const double ratio =
      4.0 * util::kPi * distance_m * frequency_hz / util::kSpeedOfLightMPerSec;
  return 20.0 * std::log10(ratio);
}

double shannon_capacity_bps(double snr_linear, double bandwidth_hz) {
  if (snr_linear < 0.0 || bandwidth_hz <= 0.0) {
    throw std::invalid_argument("shannon_capacity_bps: invalid input");
  }
  return bandwidth_hz * std::log2(1.0 + snr_linear);
}

LinkBudget compute_link(const RadioConfig& tx, const RadioConfig& rx, double distance_m) {
  LinkBudget budget;
  budget.eirp_dbw = tx.eirp_dbw();
  budget.path_loss_db = free_space_path_loss_db(distance_m, tx.frequency_hz);
  budget.received_power_dbw = budget.eirp_dbw - budget.path_loss_db + rx.receive_gain_dbi -
                              tx.misc_losses_db;
  // N = k * T * B.
  budget.noise_power_dbw = linear_to_db(util::kBoltzmannJPerK * rx.system_noise_temp_k *
                                        rx.bandwidth_hz);
  budget.snr_db = budget.received_power_dbw - budget.noise_power_dbw;
  budget.snr_linear = db_to_linear(budget.snr_db);
  budget.shannon_capacity_bps = shannon_capacity_bps(budget.snr_linear, rx.bandwidth_hz);
  return budget;
}

}  // namespace mpleo::net
