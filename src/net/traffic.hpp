// Offered-load models. Broadband demand is strongly diurnal — peaking in
// the local evening — which matters for MP-LEO because a satellite's spare
// capacity over region A coincides with peak demand in region B a few time
// zones away. The market/settlement examples use this to generate demand.
#pragma once

#include "coverage/cities.hpp"
#include "orbit/time.hpp"

namespace mpleo::net {

struct DiurnalProfile {
  double base_bps = 20e6;       // overnight floor per terminal
  double peak_bps = 100e6;      // local-evening peak per terminal
  double peak_local_hour = 20.0;  // 8 pm local solar time
  // Width (hours) of the evening bulge; larger = flatter profile.
  double spread_hours = 5.0;
};

// Local mean solar time (hours, [0, 24)) at a longitude for a UTC instant.
[[nodiscard]] double local_solar_hour(const orbit::TimePoint& utc,
                                      double longitude_rad) noexcept;

// Demand of one terminal at `longitude_rad` at UTC time `t`: a Gaussian
// bump (in circular hour distance) on top of the base load.
[[nodiscard]] double diurnal_demand_bps(const DiurnalProfile& profile,
                                        const orbit::TimePoint& t,
                                        double longitude_rad) noexcept;

// Population-scaled city demand: profile demand times (population / 1e6)
// terminals-equivalent. Used to weight market bids per region.
[[nodiscard]] double city_demand_bps(const DiurnalProfile& profile,
                                     const cov::City& city,
                                     const orbit::TimePoint& t) noexcept;

}  // namespace mpleo::net
