#include "net/degradation.hpp"

#include <algorithm>
#include <cmath>

#include "net/scheduler.hpp"

namespace mpleo::net {

std::vector<core::ConfigIssue> DegradationPolicy::validate() const {
  std::vector<core::ConfigIssue> issues;
  const auto add = [&issues](const char* field, std::string message) {
    issues.push_back({"net.scheduler.degradation", field, std::move(message)});
  };
  for (const double threshold : shed_below) {
    if (!std::isfinite(threshold) || threshold < 0.0 || threshold > 1.0) {
      add("shed_below", "thresholds must be fractions in [0, 1]");
      break;
    }
  }
  for (std::size_t k = 1; k < shed_below.size(); ++k) {
    if (shed_below[k] < shed_below[k - 1]) {
      add("shed_below",
          "thresholds must be non-decreasing by tier (higher tier sheds first)");
      break;
    }
  }
  if (!std::isfinite(spare_hysteresis_margin) || spare_hysteresis_margin < 0.0) {
    add("spare_hysteresis_margin",
        "must be finite and >= 0, got " + std::to_string(spare_hysteresis_margin));
  }
  if (!(backoff_multiplier >= 1.0) || !std::isfinite(backoff_multiplier)) {
    add("backoff_multiplier",
        "must be finite and >= 1, got " + std::to_string(backoff_multiplier));
  }
  if (backoff_initial_steps > backoff_max_steps) {
    add("backoff_max_steps", "must be >= backoff_initial_steps");
  }
  return issues;
}

double DegradationPolicy::shed_threshold(std::uint32_t party) const noexcept {
  if (shed_below.empty()) return 0.0;
  const std::size_t tier = party < party_tier.size() ? party_tier[party] : 0;
  return shed_below[std::min(tier, shed_below.size() - 1)];
}

std::size_t ReacquisitionBackoff::on_failure() noexcept {
  clean_streak_ = 0;
  ++consecutive_;
  if (initial_ == 0) return 0;
  // initial * multiplier^(n-1), saturating at max_ without overflow.
  double steps = static_cast<double>(initial_);
  for (std::size_t i = 1; i < consecutive_ && steps < static_cast<double>(max_); ++i) {
    steps *= multiplier_;
  }
  return std::min<std::size_t>(max_, static_cast<std::size_t>(std::ceil(steps)));
}

void ReacquisitionBackoff::on_clean_step() noexcept {
  if (consecutive_ == 0) return;
  ++clean_streak_;
  if (clean_streak_ >= horizon_) {
    consecutive_ = 0;
    clean_streak_ = 0;
  }
}

SloAccumulator::SloAccumulator(std::size_t party_count, std::size_t terminal_count,
                               std::size_t window_steps, double dt_step)
    : window_steps_(std::max<std::size_t>(1, window_steps)),
      dt_step_(dt_step),
      terminal_count_(terminal_count),
      served_seconds_by_party_(party_count, 0.0),
      unserved_seconds_by_party_(party_count, 0.0),
      shed_seconds_by_party_(party_count, 0.0),
      prev_satellite_(terminal_count, kNoSat),
      detach_step_(terminal_count, kNoDetach) {}

void SloAccumulator::on_failure_detach(std::size_t terminal, std::size_t step) {
  if (terminal >= detach_step_.size()) return;
  // A terminal already recovering keeps its first detach step — the recovery
  // clock measures the whole outage episode, not the latest aftershock.
  if (detach_step_[terminal] == kNoDetach) detach_step_[terminal] = step;
}

void SloAccumulator::on_shed(std::uint32_t party) {
  ++shed_terminal_steps_;
  if (party < shed_seconds_by_party_.size()) {
    shed_seconds_by_party_[party] += dt_step_;
  }
}

void SloAccumulator::record_step(const StepSchedule& schedule,
                                 std::span<const Terminal> terminals) {
  for (const LinkAssignment& link : schedule.links) {
    const std::size_t ti = link.terminal_index;
    const std::uint32_t party = terminals[ti].owner_party;
    if (party < served_seconds_by_party_.size()) {
      served_seconds_by_party_[party] += dt_step_;
    }
    const std::uint32_t sat = static_cast<std::uint32_t>(link.satellite_index);
    if (prev_satellite_[ti] != kNoSat && prev_satellite_[ti] != sat) ++grant_flaps_;
    if (detach_step_[ti] != kNoDetach) {
      recovery_seconds_.push_back(
          static_cast<double>(schedule.step - detach_step_[ti]) * dt_step_);
      detach_step_[ti] = kNoDetach;
    }
  }
  for (const std::size_t ti : schedule.unserved_terminals) {
    const std::uint32_t party = terminals[ti].owner_party;
    if (party < unserved_seconds_by_party_.size()) {
      unserved_seconds_by_party_[party] += dt_step_;
    }
  }
  // Serving-satellite memory for the flap count: a gap resets comparison.
  std::vector<std::uint32_t>& prev = prev_satellite_;
  for (const std::size_t ti : schedule.unserved_terminals) prev[ti] = kNoSat;
  for (const LinkAssignment& link : schedule.links) {
    prev[link.terminal_index] = static_cast<std::uint32_t>(link.satellite_index);
  }
  step_served_fraction_.push_back(
      terminal_count_ == 0 ? 1.0
                           : static_cast<double>(schedule.links.size()) /
                                 static_cast<double>(terminal_count_));
}

SloStats SloAccumulator::finish() const {
  SloStats stats;
  stats.window_steps = window_steps_;
  stats.shed_seconds_by_party = shed_seconds_by_party_;
  stats.shed_terminal_steps = shed_terminal_steps_;
  stats.grant_flaps = grant_flaps_;
  stats.recovery_seconds = recovery_seconds_;
  stats.availability_by_party.resize(served_seconds_by_party_.size(), 1.0);
  double served_total = 0.0;
  double unserved_total = 0.0;
  for (std::size_t p = 0; p < served_seconds_by_party_.size(); ++p) {
    const double demand = served_seconds_by_party_[p] + unserved_seconds_by_party_[p];
    stats.availability_by_party[p] =
        demand > 0.0 ? served_seconds_by_party_[p] / demand : 1.0;
    served_total += served_seconds_by_party_[p];
    unserved_total += unserved_seconds_by_party_[p];
  }
  const double demand_total = served_total + unserved_total;
  stats.availability = demand_total > 0.0 ? served_total / demand_total : 1.0;
  for (const std::size_t step : detach_step_) {
    if (step != kNoDetach) ++stats.unrecovered_terminals;
  }
  // Worst sliding window of the per-step served fraction, via prefix sums.
  const std::size_t steps = step_served_fraction_.size();
  if (steps > 0) {
    const std::size_t window = std::min(window_steps_, steps);
    std::vector<double> prefix(steps + 1, 0.0);
    for (std::size_t k = 0; k < steps; ++k) {
      prefix[k + 1] = prefix[k] + step_served_fraction_[k];
    }
    double worst = 1.0;
    for (std::size_t begin = 0; begin + window <= steps; ++begin) {
      worst = std::min(worst, (prefix[begin + window] - prefix[begin]) /
                                  static_cast<double>(window));
    }
    stats.worst_window_availability = worst;
  }
  return stats;
}

}  // namespace mpleo::net
