#include "net/power.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpleo::net {

PowerTimelineResult simulate_power(const PowerConfig& config, const cov::StepMask& sunlit,
                                   const cov::StepMask& transmit_request,
                                   double step_seconds) {
  if (sunlit.step_count() != transmit_request.step_count()) {
    throw std::invalid_argument("simulate_power: mask arity mismatch");
  }
  if (step_seconds <= 0.0 || config.battery_capacity_wh <= 0.0 ||
      config.max_depth_of_discharge <= 0.0 || config.max_depth_of_discharge > 1.0) {
    throw std::invalid_argument("simulate_power: invalid config");
  }

  const std::size_t steps = sunlit.step_count();
  const double hours_per_step = step_seconds / 3600.0;
  const double floor_wh =
      config.battery_capacity_wh * (1.0 - config.max_depth_of_discharge);

  PowerTimelineResult result;
  result.transmitted = cov::StepMask(steps);
  result.charge_wh.resize(steps);

  double charge =
      std::clamp(config.initial_charge_fraction, 0.0, 1.0) * config.battery_capacity_wh;
  result.min_charge_wh = charge;

  for (std::size_t i = 0; i < steps; ++i) {
    const double generation_w = sunlit.test(i) ? config.solar_panel_w : 0.0;
    const bool wants_tx = transmit_request.test(i);

    // Would transmitting this step violate the depth-of-discharge floor?
    double load_w = config.bus_load_w + (wants_tx ? config.transponder_load_w : 0.0);
    double next = charge + (generation_w - load_w) * hours_per_step;
    bool transmit = wants_tx;
    if (wants_tx && next < floor_wh) {
      transmit = false;
      ++result.denied_steps;
      load_w = config.bus_load_w;
      next = charge + (generation_w - load_w) * hours_per_step;
    }

    charge = std::clamp(next, 0.0, config.battery_capacity_wh);
    if (transmit) result.transmitted.set(i);
    result.charge_wh[i] = charge;
    result.min_charge_wh = std::min(result.min_charge_wh, charge);
  }
  return result;
}

double sustainable_transmit_duty(const PowerConfig& config, double sunlit_fraction) {
  // Energy balance: generation >= bus + duty * transponder.
  const double surplus_w =
      config.solar_panel_w * std::clamp(sunlit_fraction, 0.0, 1.0) - config.bus_load_w;
  if (surplus_w <= 0.0) return 0.0;
  return std::min(1.0, surplus_w / config.transponder_load_w);
}

}  // namespace mpleo::net
