#include "net/spectrum.hpp"

#include <cmath>

namespace mpleo::net {

const char* band_name(Band band) noexcept {
  switch (band) {
    case Band::kX: return "X";
    case Band::kKu: return "Ku";
    case Band::kKa: return "Ka";
  }
  return "?";
}

const std::vector<BandPlan>& standard_band_plans() {
  static const std::vector<BandPlan> plans = {
      {Band::kX, 7.9e9, 8.4e9, 7.25e9, 7.75e9},
      {Band::kKu, 14.0e9, 14.5e9, 10.7e9, 12.7e9},
      {Band::kKa, 27.5e9, 30.0e9, 17.7e9, 20.2e9},
  };
  return plans;
}

bool ChannelTable::conflicts(const Channel& a, const Channel& b) noexcept {
  auto overlap = [](double ca, double wa, double cb, double wb) {
    return std::fabs(ca - cb) < (wa + wb) / 2.0;
  };
  return overlap(a.uplink_center_hz, a.bandwidth_hz, b.uplink_center_hz, b.bandwidth_hz) ||
         overlap(a.downlink_center_hz, a.bandwidth_hz, b.downlink_center_hz,
                 b.bandwidth_hz);
}

std::optional<Channel> ChannelTable::grant(double bandwidth_hz, std::uint32_t party) {
  if (bandwidth_hz <= 0.0) return std::nullopt;
  // First-fit scan across the uplink segment; the downlink channel is placed
  // at the same offset inside the downlink segment.
  const double up_span = plan_.uplink_hi_hz - plan_.uplink_lo_hz;
  const double down_span = plan_.downlink_hi_hz - plan_.downlink_lo_hz;
  if (bandwidth_hz > up_span || bandwidth_hz > down_span) return std::nullopt;

  for (double offset = 0.0; offset + bandwidth_hz <= up_span && offset + bandwidth_hz <= down_span;
       offset += bandwidth_hz) {
    Channel candidate;
    candidate.band = plan_.band;
    candidate.uplink_center_hz = plan_.uplink_lo_hz + offset + bandwidth_hz / 2.0;
    candidate.downlink_center_hz = plan_.downlink_lo_hz + offset + bandwidth_hz / 2.0;
    candidate.bandwidth_hz = bandwidth_hz;
    candidate.owner_party = party;

    bool clash = false;
    for (const Channel& existing : grants_) {
      if (conflicts(candidate, existing)) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      candidate.id = next_id_++;
      grants_.push_back(candidate);
      return candidate;
    }
  }
  return std::nullopt;
}

bool ChannelTable::release(std::uint32_t channel_id) {
  const auto before = grants_.size();
  std::erase_if(grants_, [channel_id](const Channel& ch) { return ch.id == channel_id; });
  return grants_.size() != before;
}

}  // namespace mpleo::net
