// User terminals: the customer edge of a bent-pipe satellite network.
#pragma once

#include <cstdint>
#include <string>

#include "net/link_budget.hpp"
#include "orbit/geodesy.hpp"

namespace mpleo::net {

using TerminalId = std::uint32_t;

struct Terminal {
  TerminalId id = 0;
  std::string name;
  orbit::Geodetic location;
  std::uint32_t owner_party = 0;   // index into the consortium's party list
  RadioConfig radio;               // RF chain of the terminal
  double demand_bps = 50e6;        // offered load

  // Precomputed frame for visibility tests.
  [[nodiscard]] orbit::TopocentricFrame frame() const {
    return orbit::TopocentricFrame(location);
  }
};

}  // namespace mpleo::net
