#include "net/queueing.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpleo::net {

QueueStats simulate_fifo_queue(std::span<const double> offered_bps,
                               std::span<const double> capacity_bps,
                               double step_seconds, const QueueConfig& config) {
  if (offered_bps.size() != capacity_bps.size()) {
    throw std::invalid_argument("simulate_fifo_queue: arity mismatch");
  }
  if (step_seconds <= 0.0 || config.buffer_bytes < 0.0) {
    throw std::invalid_argument("simulate_fifo_queue: invalid config");
  }

  QueueStats stats;
  double backlog = 0.0;
  double backlog_time_integral = 0.0;  // bytes * seconds

  for (std::size_t i = 0; i < offered_bps.size(); ++i) {
    const double arriving = std::max(0.0, offered_bps[i]) * step_seconds / 8.0;
    stats.offered_bytes += arriving;

    // Serve first (the backlog at the start of the step plus what arrives,
    // up to this step's capacity), then enforce the buffer on what remains.
    const double service = std::max(0.0, capacity_bps[i]) * step_seconds / 8.0;
    const double in_system = backlog + arriving;
    const double served = std::min(in_system, service);
    stats.delivered_bytes += served;

    double remaining = in_system - served;
    if (remaining > config.buffer_bytes) {
      stats.dropped_bytes += remaining - config.buffer_bytes;
      remaining = config.buffer_bytes;
    }
    backlog = remaining;
    stats.max_backlog_bytes = std::max(stats.max_backlog_bytes, backlog);
    backlog_time_integral += backlog * step_seconds;
  }

  if (stats.delivered_bytes > 0.0) {
    const double window =
        step_seconds * static_cast<double>(offered_bps.size());
    const double mean_backlog = backlog_time_integral / window;
    const double mean_rate = stats.delivered_bytes / window;  // bytes/s
    stats.mean_delay_s = mean_rate > 0.0 ? mean_backlog / mean_rate : 0.0;
  }
  return stats;
}

}  // namespace mpleo::net
