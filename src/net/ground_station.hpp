// Ground stations and ground-station-as-a-service (GSaaS) inventory (§3.1).
//
// In MP-LEO each participant's terminals connect to that participant's own
// (owned or rented) ground stations; the satellite only repeats RF between
// them. The GSaaS inventory models renting slots at shared teleports, the
// way AWS Ground Station / Azure Orbital lease antenna time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/link_budget.hpp"
#include "orbit/geodesy.hpp"

namespace mpleo::net {

using GroundStationId = std::uint32_t;

struct GroundStation {
  GroundStationId id = 0;
  std::string name;
  orbit::Geodetic location;
  std::uint32_t owner_party = 0;
  RadioConfig radio;
  // Concurrent satellite links this site can terminate (antenna count).
  int antenna_count = 2;

  [[nodiscard]] orbit::TopocentricFrame frame() const {
    return orbit::TopocentricFrame(location);
  }
};

// A rentable GSaaS teleport: fixed site, per-minute price, finite antennas.
struct TeleportListing {
  GroundStation station;
  double price_per_minute = 3.0;  // in ledger tokens
};

// Inventory of rentable teleports; parties lease stations near their service
// regions instead of building their own (the paper's "purely software-defined
// ground segment" deployment path).
class GsaasInventory {
 public:
  void add_listing(TeleportListing listing);

  [[nodiscard]] const std::vector<TeleportListing>& listings() const noexcept {
    return listings_;
  }

  // Cheapest listing within `max_distance_m` great-circle distance of
  // `near`; nullopt when none qualifies.
  [[nodiscard]] std::optional<TeleportListing> cheapest_near(const orbit::Geodetic& near,
                                                             double max_distance_m) const;

  // A small built-in global teleport inventory (one per continent region).
  [[nodiscard]] static GsaasInventory global_default();

 private:
  std::vector<TeleportListing> listings_;
};

// Great-circle distance between two geodetic points on the mean sphere.
[[nodiscard]] double great_circle_distance_m(const orbit::Geodetic& a,
                                             const orbit::Geodetic& b) noexcept;

}  // namespace mpleo::net
