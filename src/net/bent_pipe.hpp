// Bent-pipe relay models (§3.1 and §4 of the paper).
//
// Transparent mode: the satellite is a pure RF repeater — it re-amplifies the
// uplink waveform (noise included) onto the downlink, so the end-to-end SNR
// cascades: 1/SNR_total = 1/SNR_up + 1/SNR_down. The satellite never decodes,
// which is what gives MP-LEO its privacy/protocol-agnosticism properties.
//
// Regenerative mode: the satellite decodes and re-encodes (packet-level);
// end-to-end capacity is min(uplink, downlink) and uplink noise does not
// propagate. This is the §4 "bent-pipe variants" alternative.
#pragma once

#include "net/link_budget.hpp"

namespace mpleo::net {

enum class RelayMode {
  kTransparent,   // RF repeater (MP-LEO default)
  kRegenerative,  // decode-and-forward
};

struct RelayBudget {
  LinkBudget uplink;
  LinkBudget downlink;
  double end_to_end_snr_linear = 0.0;
  double end_to_end_snr_db = 0.0;
  double end_to_end_capacity_bps = 0.0;
  RelayMode mode = RelayMode::kTransparent;
};

// Satellite transponder parameters for the relay hop.
struct TransponderConfig {
  RadioConfig receive;   // satellite receive chain (uplink side)
  RadioConfig transmit;  // satellite transmit chain (downlink side)
};

// Computes the end-to-end budget terminal -> satellite -> ground station.
// `uplink_distance_m` and `downlink_distance_m` are slant ranges.
[[nodiscard]] RelayBudget compute_relay(const RadioConfig& terminal,
                                        const TransponderConfig& satellite,
                                        const RadioConfig& ground_station,
                                        double uplink_distance_m,
                                        double downlink_distance_m, RelayMode mode);

// Cascades two already-computed hop budgets into the end-to-end relay
// budget. compute_relay is exactly compute_link on each hop followed by this
// combine, so callers that reuse per-hop budgets across many pairings (the
// pipelined scheduler computes each uplink once per terminal-satellite pair
// and each downlink once per satellite-station pair) obtain capacities
// bit-identical to calling compute_relay per triple.
[[nodiscard]] RelayBudget combine_relay(const LinkBudget& uplink, const LinkBudget& downlink,
                                        const TransponderConfig& satellite,
                                        const RadioConfig& ground_station, RelayMode mode);

// The capacity component of combine_relay alone — the scheduler's selection
// metric — skipping the dB conversion of the combined SNR.
[[nodiscard]] double relay_capacity_bps(const LinkBudget& uplink, const LinkBudget& downlink,
                                        const TransponderConfig& satellite,
                                        const RadioConfig& ground_station, RelayMode mode);

// Same combine on raw per-hop values (snr_linear always; the per-hop Shannon
// capacities are read only in regenerative mode, so transparent-mode callers
// may pass zeros). This is the form the pipelined scheduler feeds from
// HopEvaluator legs; the LinkBudget overload delegates here, keeping the
// arithmetic — and therefore bit-identity with compute_relay — in one place.
[[nodiscard]] double relay_capacity_bps(double uplink_snr_linear, double uplink_shannon_bps,
                                        double downlink_snr_linear,
                                        double downlink_shannon_bps,
                                        const TransponderConfig& satellite,
                                        const RadioConfig& ground_station, RelayMode mode);

// Default radio chains modelled on published Ku-band LEO terminal/gateway
// characteristics; useful for examples and benches.
[[nodiscard]] RadioConfig default_user_terminal();
[[nodiscard]] TransponderConfig default_transponder();
[[nodiscard]] RadioConfig default_ground_station();

}  // namespace mpleo::net
