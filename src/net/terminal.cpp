#include "net/terminal.hpp"

// Terminal is a value type; behaviour lives in the scheduler. This TU exists
// so the module has a home for future out-of-line members.
