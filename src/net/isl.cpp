#include "net/isl.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "orbit/ephemeris.hpp"
#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace mpleo::net {

IslTopology IslTopology::build(std::span<const util::Vec3> positions,
                               const IslConfig& config) {
  if (config.max_links_per_satellite < 0 || config.max_range_m <= 0.0) {
    throw std::invalid_argument("IslTopology::build: invalid config");
  }
  const std::size_t n = positions.size();
  IslTopology topo;
  topo.adjacency_.resize(n);

  const double range2 = config.max_range_m * config.max_range_m;
  // Candidate neighbours per satellite: (distance^2, index), keep nearest k.
  struct Candidate {
    double dist2;
    std::uint32_t index;
  };
  std::vector<std::vector<Candidate>> candidates(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d2 = (positions[i] - positions[j]).norm_squared();
      if (d2 <= range2) {
        candidates[i].push_back({d2, static_cast<std::uint32_t>(j)});
        candidates[j].push_back({d2, static_cast<std::uint32_t>(i)});
      }
    }
  }

  const auto k = static_cast<std::size_t>(config.max_links_per_satellite);
  for (std::size_t i = 0; i < n; ++i) {
    auto& cands = candidates[i];
    if (cands.size() > k) {
      std::partial_sort(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(k),
                        cands.end(),
                        [](const Candidate& a, const Candidate& b) {
                          return a.dist2 < b.dist2;
                        });
      cands.resize(k);
    }
  }
  // A link exists when both ends keep each other (mutual selection), which
  // also enforces the per-satellite terminal budget symmetrically.
  for (std::size_t i = 0; i < n; ++i) {
    for (const Candidate& c : candidates[i]) {
      if (c.index > i) continue;  // handle each unordered pair once (j < i)
      const auto& back = candidates[c.index];
      const bool mutual = std::any_of(back.begin(), back.end(), [i](const Candidate& b) {
        return b.index == static_cast<std::uint32_t>(i);
      });
      if (mutual) {
        topo.adjacency_[i].push_back(c.index);
        topo.adjacency_[c.index].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  return topo;
}

std::size_t IslTopology::link_count() const noexcept {
  std::size_t degree_sum = 0;
  for (const auto& neighbors : adjacency_) degree_sum += neighbors.size();
  return degree_sum / 2;
}

std::vector<int> IslTopology::hops_from(std::span<const std::size_t> sources) const {
  std::vector<int> hops(adjacency_.size(), kUnreachable);
  std::queue<std::size_t> frontier;
  for (std::size_t s : sources) {
    if (s < hops.size() && hops[s] == kUnreachable) {
      hops[s] = 0;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::uint32_t v : adjacency_[u]) {
      if (hops[v] == kUnreachable) {
        hops[v] = hops[u] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

cov::StepMask isl_coverage_mask(const cov::CoverageEngine& engine,
                                std::span<const constellation::Satellite> satellites,
                                const orbit::TopocentricFrame& terminal,
                                std::span<const cov::GroundSite> gateways,
                                const IslConfig& config) {
  const orbit::TimeGrid& grid = engine.grid();
  const double sin_mask = std::sin(util::deg_to_rad(engine.elevation_mask_deg()));
  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);

  std::vector<orbit::KeplerianPropagator> props;
  props.reserve(satellites.size());
  for (const constellation::Satellite& sat : satellites) {
    props.emplace_back(sat.elements, sat.epoch);
  }

  cov::StepMask covered(grid.count);
  std::vector<util::Vec3> positions(satellites.size());
  std::vector<std::size_t> gateway_visible;
  std::vector<std::size_t> terminal_visible;

  for (std::size_t step = 0; step < grid.count; ++step) {
    for (std::size_t s = 0; s < satellites.size(); ++s) {
      const double dt = grid.at(step).seconds_since(satellites[s].epoch);
      const util::Vec3 eci = props[s].position_eci_at_offset(dt);
      const double c = gmst.cos_gmst[step];
      const double sn = gmst.sin_gmst[step];
      positions[s] = {c * eci.x + sn * eci.y, -sn * eci.x + c * eci.y, eci.z};
    }

    terminal_visible.clear();
    gateway_visible.clear();
    for (std::size_t s = 0; s < satellites.size(); ++s) {
      if (terminal.visible_above(positions[s], sin_mask)) terminal_visible.push_back(s);
      for (const cov::GroundSite& gw : gateways) {
        if (gw.frame.visible_above(positions[s], sin_mask)) {
          gateway_visible.push_back(s);
          break;
        }
      }
    }
    if (terminal_visible.empty() || gateway_visible.empty()) continue;

    const IslTopology topo = IslTopology::build(positions, config);
    const std::vector<int> hops = topo.hops_from(gateway_visible);
    for (std::size_t s : terminal_visible) {
      if (hops[s] != IslTopology::kUnreachable && hops[s] <= config.max_hops) {
        covered.set(step);
        break;
      }
    }
  }
  return covered;
}

}  // namespace mpleo::net
