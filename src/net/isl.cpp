#include "net/isl.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "orbit/ephemeris.hpp"

namespace mpleo::net {

IslTopology IslTopology::build(std::span<const util::Vec3> positions,
                               const IslConfig& config) {
  if (config.max_links_per_satellite < 0 || config.max_range_m <= 0.0) {
    throw std::invalid_argument("IslTopology::build: invalid config");
  }
  const std::size_t n = positions.size();
  IslTopology topo;
  topo.adjacency_.resize(n);

  const double range2 = config.max_range_m * config.max_range_m;
  // Candidate neighbours per satellite: (distance^2, index), keep nearest k.
  struct Candidate {
    double dist2;
    std::uint32_t index;
  };
  std::vector<std::vector<Candidate>> candidates(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d2 = (positions[i] - positions[j]).norm_squared();
      if (d2 <= range2) {
        candidates[i].push_back({d2, static_cast<std::uint32_t>(j)});
        candidates[j].push_back({d2, static_cast<std::uint32_t>(i)});
      }
    }
  }

  const auto k = static_cast<std::size_t>(config.max_links_per_satellite);
  for (std::size_t i = 0; i < n; ++i) {
    auto& cands = candidates[i];
    if (cands.size() > k) {
      std::partial_sort(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(k),
                        cands.end(),
                        [](const Candidate& a, const Candidate& b) {
                          return a.dist2 < b.dist2;
                        });
      cands.resize(k);
    }
  }
  // A link exists when both ends keep each other (mutual selection), which
  // also enforces the per-satellite terminal budget symmetrically.
  for (std::size_t i = 0; i < n; ++i) {
    for (const Candidate& c : candidates[i]) {
      if (c.index > i) continue;  // handle each unordered pair once (j < i)
      const auto& back = candidates[c.index];
      const bool mutual = std::any_of(back.begin(), back.end(), [i](const Candidate& b) {
        return b.index == static_cast<std::uint32_t>(i);
      });
      if (mutual) {
        topo.adjacency_[i].push_back(c.index);
        topo.adjacency_[c.index].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  return topo;
}

std::size_t IslTopology::link_count() const noexcept {
  std::size_t degree_sum = 0;
  for (const auto& neighbors : adjacency_) degree_sum += neighbors.size();
  return degree_sum / 2;
}

std::vector<int> IslTopology::hops_from(std::span<const std::size_t> sources) const {
  std::vector<int> hops(adjacency_.size(), kUnreachable);
  std::queue<std::size_t> frontier;
  for (std::size_t s : sources) {
    if (s < hops.size() && hops[s] == kUnreachable) {
      hops[s] = 0;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::uint32_t v : adjacency_[u]) {
      if (hops[v] == kUnreachable) {
        hops[v] = hops[u] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

cov::StepMask isl_coverage_mask(const cov::CoverageEngine& engine,
                                std::span<const constellation::Satellite> satellites,
                                const orbit::TopocentricFrame& terminal,
                                std::span<const cov::GroundSite> gateways,
                                const IslConfig& config, util::ThreadPool* pool) {
  const orbit::TimeGrid& grid = engine.grid();
  const std::size_t n = satellites.size();
  const orbit::EphemerisSet ephemerides = engine.ephemerides(satellites, pool);

  // Per-satellite visibility timelines from the shared tables: terminal
  // visibility and the union over all gateways.
  const cov::GroundSite terminal_site{"terminal", terminal, 1.0};
  std::vector<cov::StepMask> terminal_masks(n);
  std::vector<cov::StepMask> gateway_masks(n);
  cov::StepMask any_terminal(grid.count);
  cov::StepMask any_gateway(grid.count);
  for (std::size_t s = 0; s < n; ++s) {
    terminal_masks[s] =
        engine
            .visibility_masks(ephemerides.table(s),
                              std::span<const cov::GroundSite>(&terminal_site, 1))
            .front();
    const std::vector<cov::StepMask> per_gateway =
        engine.visibility_masks(ephemerides.table(s), gateways);
    cov::StepMask gw_union(grid.count);
    for (const cov::StepMask& mask : per_gateway) gw_union |= mask;
    any_terminal |= terminal_masks[s];
    any_gateway |= gw_union;
    gateway_masks[s] = std::move(gw_union);
  }

  // Only steps with both a terminal-visible and a gateway-visible satellite
  // can be covered; everything else skips the O(n^2) mesh build.
  cov::StepMask candidate_steps = any_terminal & any_gateway;

  cov::StepMask covered(grid.count);
  std::vector<util::Vec3> positions(n);
  std::vector<std::size_t> gateway_visible;
  std::vector<std::size_t> terminal_visible;

  for (std::size_t step = 0; step < grid.count; ++step) {
    if (!candidate_steps.test(step)) continue;

    terminal_visible.clear();
    gateway_visible.clear();
    for (std::size_t s = 0; s < n; ++s) {
      positions[s] = ephemerides.table(s).position_ecef(step);
      if (terminal_masks[s].test(step)) terminal_visible.push_back(s);
      if (gateway_masks[s].test(step)) gateway_visible.push_back(s);
    }

    const IslTopology topo = IslTopology::build(positions, config);
    const std::vector<int> hops = topo.hops_from(gateway_visible);
    for (std::size_t s : terminal_visible) {
      if (hops[s] != IslTopology::kUnreachable && hops[s] <= config.max_hops) {
        covered.set(step);
        break;
      }
    }
  }
  return covered;
}

}  // namespace mpleo::net
