// RF link budgets for satellite links: free-space path loss, received
// carrier-to-noise, and Shannon capacity. All gains/losses in dB, powers in
// dBW, frequencies in Hz, distances in metres.
#pragma once

namespace mpleo::net {

[[nodiscard]] double db_to_linear(double db) noexcept;
[[nodiscard]] double linear_to_db(double linear) noexcept;

// Free-space path loss in dB. Preconditions: distance_m > 0, frequency_hz > 0.
[[nodiscard]] double free_space_path_loss_db(double distance_m, double frequency_hz);

// One end of a link.
struct RadioConfig {
  double transmit_power_dbw = 10.0;   // PA output
  double transmit_gain_dbi = 30.0;    // antenna gain
  double receive_gain_dbi = 30.0;
  double system_noise_temp_k = 300.0; // receiver system noise temperature
  double bandwidth_hz = 250e6;
  double frequency_hz = 14.0e9;       // Ku-band uplink default
  double misc_losses_db = 2.0;        // pointing, atmosphere, implementation

  [[nodiscard]] double eirp_dbw() const noexcept {
    return transmit_power_dbw + transmit_gain_dbi;
  }
};

// A computed one-hop budget.
struct LinkBudget {
  double eirp_dbw = 0.0;
  double path_loss_db = 0.0;
  double received_power_dbw = 0.0;
  double noise_power_dbw = 0.0;
  double snr_db = 0.0;
  double snr_linear = 0.0;
  // Shannon capacity over the configured bandwidth, bit/s.
  double shannon_capacity_bps = 0.0;
};

// Computes the budget of a single hop from `tx` (its transmit side) to `rx`
// (its receive side) across `distance_m` at tx.frequency_hz.
[[nodiscard]] LinkBudget compute_link(const RadioConfig& tx, const RadioConfig& rx,
                                      double distance_m);

// Shannon capacity for an SNR given in linear units over `bandwidth_hz`.
[[nodiscard]] double shannon_capacity_bps(double snr_linear, double bandwidth_hz);

// Range-independent pieces of one hop, hoisted so a caller evaluating the
// same (tx, rx) pair across many slant ranges — the pipelined scheduler does
// this for every terminal-satellite and satellite-station pair — skips the
// EIRP and noise-power work per call. snr_linear() replays compute_link's
// expression over the hoisted values in the same order, so its result (and
// shannon_bps over it) is bit-identical to the corresponding compute_link
// field.
struct HopEvaluator {
  double eirp_dbw = 0.0;
  double receive_gain_dbi = 0.0;
  double misc_losses_db = 0.0;
  double noise_power_dbw = 0.0;
  double frequency_hz = 0.0;    // tx side: sets the path loss
  double bandwidth_hz = 0.0;    // rx side: sets the Shannon capacity

  [[nodiscard]] static HopEvaluator make(const RadioConfig& tx, const RadioConfig& rx);

  // == compute_link(tx, rx, distance_m).snr_linear, bit for bit.
  [[nodiscard]] double snr_linear(double distance_m) const;

  // == compute_link(tx, rx, distance_m).shannon_capacity_bps when fed the
  // snr_linear() of the same distance.
  [[nodiscard]] double shannon_bps(double snr_linear_value) const {
    return shannon_capacity_bps(snr_linear_value, bandwidth_hz);
  }
};

}  // namespace mpleo::net
