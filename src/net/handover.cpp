#include "net/handover.hpp"

#include <cmath>

#include "orbit/ephemeris.hpp"
#include "util/units.hpp"

namespace mpleo::net {

std::vector<std::uint32_t> serving_satellite_timeline(
    const cov::CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    const orbit::TopocentricFrame& terminal, util::ThreadPool* pool) {
  const orbit::TimeGrid& grid = engine.grid();
  const double mask_rad = util::deg_to_rad(engine.elevation_mask_deg());
  const orbit::EphemerisSet ephemerides = engine.ephemerides(satellites, pool);

  std::vector<std::uint32_t> timeline(grid.count, kNoSatellite);
  for (std::size_t step = 0; step < grid.count; ++step) {
    double best_elevation = mask_rad;
    for (std::size_t si = 0; si < satellites.size(); ++si) {
      const double elevation =
          terminal.elevation_rad(ephemerides.table(si).position_ecef(step));
      if (elevation >= best_elevation) {
        best_elevation = elevation;
        timeline[step] = static_cast<std::uint32_t>(si);
      }
    }
  }
  return timeline;
}

HandoverStats handover_stats(std::span<const std::uint32_t> timeline,
                             double step_seconds) {
  HandoverStats stats;
  if (timeline.empty()) return stats;

  std::size_t connected_steps = 0;
  std::size_t dwell_segments = 0;
  std::uint32_t previous = kNoSatellite;
  for (std::uint32_t serving : timeline) {
    if (serving != kNoSatellite) {
      ++connected_steps;
      if (previous == kNoSatellite) {
        ++dwell_segments;  // (re)acquisition starts a dwell
      } else if (serving != previous) {
        ++stats.handover_count;
        ++dwell_segments;
      }
    } else if (previous != kNoSatellite) {
      ++stats.outage_count;
    }
    previous = serving;
  }

  stats.connected_fraction =
      static_cast<double>(connected_steps) / static_cast<double>(timeline.size());
  const double connected_seconds = static_cast<double>(connected_steps) * step_seconds;
  if (dwell_segments > 0) {
    stats.mean_dwell_seconds = connected_seconds / static_cast<double>(dwell_segments);
  }
  if (connected_seconds > 0.0) {
    stats.handovers_per_hour =
        static_cast<double>(stats.handover_count) / (connected_seconds / 3600.0);
  }
  return stats;
}

}  // namespace mpleo::net
