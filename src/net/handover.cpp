#include "net/handover.hpp"

#include <cmath>

#include "orbit/ephemeris.hpp"
#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace mpleo::net {

std::vector<std::uint32_t> serving_satellite_timeline(
    const cov::CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    const orbit::TopocentricFrame& terminal) {
  const orbit::TimeGrid& grid = engine.grid();
  const double mask_rad = util::deg_to_rad(engine.elevation_mask_deg());
  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);

  std::vector<orbit::KeplerianPropagator> props;
  props.reserve(satellites.size());
  for (const constellation::Satellite& sat : satellites) {
    props.emplace_back(sat.elements, sat.epoch);
  }

  std::vector<std::uint32_t> timeline(grid.count, kNoSatellite);
  for (std::size_t step = 0; step < grid.count; ++step) {
    double best_elevation = mask_rad;
    for (std::size_t si = 0; si < satellites.size(); ++si) {
      const double dt = grid.at(step).seconds_since(satellites[si].epoch);
      const util::Vec3 eci = props[si].position_eci_at_offset(dt);
      const double c = gmst.cos_gmst[step];
      const double s = gmst.sin_gmst[step];
      const util::Vec3 ecef{c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
      const double elevation = terminal.elevation_rad(ecef);
      if (elevation >= best_elevation) {
        best_elevation = elevation;
        timeline[step] = static_cast<std::uint32_t>(si);
      }
    }
  }
  return timeline;
}

HandoverStats handover_stats(std::span<const std::uint32_t> timeline,
                             double step_seconds) {
  HandoverStats stats;
  if (timeline.empty()) return stats;

  std::size_t connected_steps = 0;
  std::size_t dwell_segments = 0;
  std::uint32_t previous = kNoSatellite;
  for (std::uint32_t serving : timeline) {
    if (serving != kNoSatellite) {
      ++connected_steps;
      if (previous == kNoSatellite) {
        ++dwell_segments;  // (re)acquisition starts a dwell
      } else if (serving != previous) {
        ++stats.handover_count;
        ++dwell_segments;
      }
    } else if (previous != kNoSatellite) {
      ++stats.outage_count;
    }
    previous = serving;
  }

  stats.connected_fraction =
      static_cast<double>(connected_steps) / static_cast<double>(timeline.size());
  const double connected_seconds = static_cast<double>(connected_steps) * step_seconds;
  if (dwell_segments > 0) {
    stats.mean_dwell_seconds = connected_seconds / static_cast<double>(dwell_segments);
  }
  if (connected_seconds > 0.0) {
    stats.handovers_per_hour =
        static_cast<double>(stats.handover_count) / (connected_seconds / 3600.0);
  }
  return stats;
}

}  // namespace mpleo::net
