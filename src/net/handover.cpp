#include "net/handover.hpp"

#include <cmath>

#include "fault/timeline.hpp"
#include "orbit/ephemeris.hpp"
#include "util/units.hpp"

namespace mpleo::net {
namespace {

std::vector<std::uint32_t> build_timeline(
    const cov::CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    const orbit::TopocentricFrame& terminal, const fault::FaultTimeline* faults,
    util::ThreadPool* pool) {
  const orbit::TimeGrid& grid = engine.grid();
  const double mask_rad = util::deg_to_rad(engine.elevation_mask_deg());
  const orbit::EphemerisSet ephemerides = engine.ephemerides(satellites, pool);
  const bool faulted = faults != nullptr && !faults->empty();

  std::vector<std::uint32_t> timeline(grid.count, kNoSatellite);
  for (std::size_t step = 0; step < grid.count; ++step) {
    double best_elevation = mask_rad;
    for (std::size_t si = 0; si < satellites.size(); ++si) {
      if (faulted && !faults->satellite_available(si, step)) continue;
      const double elevation =
          terminal.elevation_rad(ephemerides.table(si).position_ecef(step));
      if (elevation >= best_elevation) {
        best_elevation = elevation;
        timeline[step] = static_cast<std::uint32_t>(si);
      }
    }
  }
  return timeline;
}

}  // namespace

std::vector<std::uint32_t> serving_satellite_timeline(
    const cov::CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    const orbit::TopocentricFrame& terminal, util::ThreadPool* pool) {
  return build_timeline(engine, satellites, terminal, nullptr, pool);
}

std::vector<std::uint32_t> serving_satellite_timeline(
    const cov::CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    const orbit::TopocentricFrame& terminal, const fault::FaultTimeline& faults,
    util::ThreadPool* pool) {
  return build_timeline(engine, satellites, terminal, &faults, pool);
}

HandoverStats handover_stats(std::span<const std::uint32_t> timeline,
                             double step_seconds, const fault::FaultTimeline* faults) {
  HandoverStats stats;
  if (timeline.empty()) return stats;

  const bool faulted = faults != nullptr && !faults->empty();
  std::size_t connected_steps = 0;
  std::size_t dwell_segments = 0;
  std::uint32_t previous = kNoSatellite;
  for (std::size_t step = 0; step < timeline.size(); ++step) {
    const std::uint32_t serving = timeline[step];
    // A transition away from a satellite that is down *now* was forced by
    // the failure; losing a healthy satellite is ordinary orbital motion.
    const bool previous_failed =
        faulted && previous != kNoSatellite &&
        !faults->satellite_available(previous, step);
    if (serving != kNoSatellite) {
      ++connected_steps;
      if (previous == kNoSatellite) {
        ++dwell_segments;  // (re)acquisition starts a dwell
      } else if (serving != previous) {
        ++stats.handover_count;
        ++dwell_segments;
        if (previous_failed) ++stats.failure_handover_count;
      }
    } else if (previous != kNoSatellite) {
      ++stats.outage_count;
      if (previous_failed) ++stats.failure_outage_count;
    }
    previous = serving;
  }

  stats.connected_fraction =
      static_cast<double>(connected_steps) / static_cast<double>(timeline.size());
  const double connected_seconds = static_cast<double>(connected_steps) * step_seconds;
  if (dwell_segments > 0) {
    stats.mean_dwell_seconds = connected_seconds / static_cast<double>(dwell_segments);
  }
  if (connected_seconds > 0.0) {
    stats.handovers_per_hour =
        static_cast<double>(stats.handover_count) / (connected_seconds / 3600.0);
  }
  return stats;
}

}  // namespace mpleo::net
