#include "net/bent_pipe.hpp"

#include <algorithm>

namespace mpleo::net {

RelayBudget compute_relay(const RadioConfig& terminal, const TransponderConfig& satellite,
                          const RadioConfig& ground_station, double uplink_distance_m,
                          double downlink_distance_m, RelayMode mode) {
  return combine_relay(compute_link(terminal, satellite.receive, uplink_distance_m),
                       compute_link(satellite.transmit, ground_station, downlink_distance_m),
                       satellite, ground_station, mode);
}

RelayBudget combine_relay(const LinkBudget& uplink, const LinkBudget& downlink,
                          const TransponderConfig& satellite,
                          const RadioConfig& ground_station, RelayMode mode) {
  RelayBudget budget;
  budget.mode = mode;
  budget.uplink = uplink;
  budget.downlink = downlink;

  const double snr_up = uplink.snr_linear;
  const double snr_down = downlink.snr_linear;

  if (mode == RelayMode::kTransparent) {
    // Noise from the uplink is re-amplified onto the downlink:
    // 1/SNR = 1/SNR_up + 1/SNR_down (+ 1/(SNR_up*SNR_down), negligible).
    const double inv = 1.0 / snr_up + 1.0 / snr_down;
    budget.end_to_end_snr_linear = inv > 0.0 ? 1.0 / inv : 0.0;
    budget.end_to_end_capacity_bps = shannon_capacity_bps(
        budget.end_to_end_snr_linear,
        std::min(satellite.receive.bandwidth_hz, ground_station.bandwidth_hz));
  } else {
    // Regenerative: each hop decodes independently; the pipe is the weaker hop.
    budget.end_to_end_snr_linear = std::min(snr_up, snr_down);
    budget.end_to_end_capacity_bps =
        std::min(uplink.shannon_capacity_bps, downlink.shannon_capacity_bps);
  }
  budget.end_to_end_snr_db = linear_to_db(budget.end_to_end_snr_linear);
  return budget;
}

double relay_capacity_bps(const LinkBudget& uplink, const LinkBudget& downlink,
                          const TransponderConfig& satellite,
                          const RadioConfig& ground_station, RelayMode mode) {
  return relay_capacity_bps(uplink.snr_linear, uplink.shannon_capacity_bps,
                            downlink.snr_linear, downlink.shannon_capacity_bps, satellite,
                            ground_station, mode);
}

double relay_capacity_bps(double uplink_snr_linear, double uplink_shannon_bps,
                          double downlink_snr_linear, double downlink_shannon_bps,
                          const TransponderConfig& satellite,
                          const RadioConfig& ground_station, RelayMode mode) {
  if (mode == RelayMode::kTransparent) {
    const double inv = 1.0 / uplink_snr_linear + 1.0 / downlink_snr_linear;
    return shannon_capacity_bps(
        inv > 0.0 ? 1.0 / inv : 0.0,
        std::min(satellite.receive.bandwidth_hz, ground_station.bandwidth_hz));
  }
  return std::min(uplink_shannon_bps, downlink_shannon_bps);
}

RadioConfig default_user_terminal() {
  RadioConfig cfg;
  cfg.transmit_power_dbw = 3.0;    // ~2 W flat panel
  cfg.transmit_gain_dbi = 33.0;
  cfg.receive_gain_dbi = 33.0;
  cfg.system_noise_temp_k = 350.0;
  cfg.bandwidth_hz = 62.5e6;
  cfg.frequency_hz = 14.0e9;       // Ku uplink
  cfg.misc_losses_db = 2.0;
  return cfg;
}

TransponderConfig default_transponder() {
  TransponderConfig cfg;
  cfg.receive.transmit_power_dbw = 0.0;  // unused on the receive chain
  cfg.receive.receive_gain_dbi = 37.0;
  cfg.receive.system_noise_temp_k = 550.0;
  cfg.receive.bandwidth_hz = 62.5e6;
  cfg.receive.frequency_hz = 14.0e9;

  cfg.transmit.transmit_power_dbw = 14.0;  // ~25 W downlink PA
  cfg.transmit.transmit_gain_dbi = 37.0;
  cfg.transmit.bandwidth_hz = 62.5e6;
  cfg.transmit.frequency_hz = 11.7e9;      // Ku downlink
  cfg.transmit.misc_losses_db = 2.0;
  return cfg;
}

RadioConfig default_ground_station() {
  RadioConfig cfg;
  cfg.transmit_power_dbw = 17.0;
  cfg.transmit_gain_dbi = 45.0;
  cfg.receive_gain_dbi = 45.0;    // ~1.8 m dish at Ku
  cfg.system_noise_temp_k = 150.0;
  cfg.bandwidth_hz = 62.5e6;
  cfg.frequency_hz = 11.7e9;
  cfg.misc_losses_db = 1.5;
  return cfg;
}

}  // namespace mpleo::net
