// Satellite power/energy model: solar charging when sunlit, constant bus
// load, transponder draw when transmitting, battery with depth-of-discharge
// limits. Determines how much of a satellite's nominal spare capacity is
// actually sellable — the physical ceiling under MP-LEO's §3.2 incentives.
#pragma once

#include <cstddef>
#include <vector>

#include "coverage/step_mask.hpp"

namespace mpleo::net {

struct PowerConfig {
  double solar_panel_w = 400.0;        // generation when sunlit
  double bus_load_w = 120.0;           // always-on avionics
  double transponder_load_w = 180.0;   // additional draw while relaying
  double battery_capacity_wh = 600.0;
  double max_depth_of_discharge = 0.8; // usable fraction of the battery
  double initial_charge_fraction = 1.0;
};

struct PowerTimelineResult {
  // Steps at which the transponder actually ran (requested AND power ok).
  cov::StepMask transmitted;
  // Battery state of charge (Wh) at the END of each step.
  std::vector<double> charge_wh;
  std::size_t denied_steps = 0;   // transmit requests refused to protect DoD
  double min_charge_wh = 0.0;
};

// Simulates the battery over a step grid. `sunlit[i]` says whether the
// panels generate at step i; `transmit_request[i]` whether the scheduler
// wants the transponder on. A request is denied when serving it would push
// the battery below (1 - max_depth_of_discharge) * capacity.
[[nodiscard]] PowerTimelineResult simulate_power(const PowerConfig& config,
                                                 const cov::StepMask& sunlit,
                                                 const cov::StepMask& transmit_request,
                                                 double step_seconds);

// Long-run duty-cycle bound: the fraction of time the transponder can run
// given average sunlit fraction (energy balance, ignoring battery size).
[[nodiscard]] double sustainable_transmit_duty(const PowerConfig& config,
                                               double sunlit_fraction);

}  // namespace mpleo::net
