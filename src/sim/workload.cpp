#include "sim/workload.hpp"

#include "constellation/population.hpp"
#include "constellation/starlink.hpp"
#include "core/validation.hpp"

namespace mpleo::sim {
namespace {

// Fixed site seeds: the mega workload is a *benchmark*, so every run (CI
// smoke, acceptance run, regression bisects) must schedule the same sites.
constexpr std::uint32_t kTerminalSeed = 0x6d656761u;  // "mega"
constexpr std::uint32_t kStationSeed = 0x67737173u;   // "gsqs"

Workload build_mega(const Scenario& scenario) {
  Workload w;
  w.satellites = constellation::build_starlink_gen2_catalog(scenario.epoch);
  if (scenario.scale == ScalePreset::kMegaSmoke && w.satellites.size() > 3000) {
    w.satellites.resize(3000);
  }
  for (std::size_t i = 0; i < w.satellites.size(); ++i) {
    w.satellites[i].owner_party = static_cast<std::uint32_t>(i % w.party_count);
  }

  // Terminals and stations follow the population grid (city-weighted with an
  // area-uniform floor), so candidate density concentrates where the paper's
  // demand does instead of spreading uniformly over the oceans.
  const constellation::PopulationSampler sampler;
  const std::vector<orbit::Geodetic> terminal_sites =
      sampler.sample(scenario.terminal_count, kTerminalSeed);
  const std::vector<orbit::Geodetic> station_sites =
      sampler.sample(scenario.station_count, kStationSeed);

  w.terminals.resize(scenario.terminal_count);
  for (std::uint32_t i = 0; i < scenario.terminal_count; ++i) {
    w.terminals[i].id = i;
    w.terminals[i].owner_party = i % static_cast<std::uint32_t>(w.party_count);
    w.terminals[i].location = terminal_sites[i];
    w.terminals[i].radio = net::default_user_terminal();
    w.terminals[i].demand_bps = 50e6;
  }
  w.stations.resize(scenario.station_count);
  for (std::uint32_t i = 0; i < scenario.station_count; ++i) {
    w.stations[i].id = i;
    w.stations[i].owner_party = i % static_cast<std::uint32_t>(w.party_count);
    w.stations[i].location = station_sites[i];
    w.stations[i].radio = net::default_ground_station();
  }

  // The mega streaming preset: footprint-stream visibility, small chunks and
  // few slots to bound staging memory, top-4 candidates per terminal.
  w.scheduler.visibility_mode = net::VisibilityMode::kFootprintStream;
  w.scheduler.stream_chunk_steps = 8;
  w.scheduler.stream_slots = 2;
  w.scheduler.max_candidates_per_terminal = 4;
  return w;
}

Workload build_reference(const Scenario& scenario) {
  Workload w;
  constellation::WalkerShell shell;
  shell.plane_count = 25;
  shell.sats_per_plane = 20;
  w.satellites = shell.build(scenario.epoch);
  for (std::size_t i = 0; i < w.satellites.size(); ++i) {
    w.satellites[i].owner_party = static_cast<std::uint32_t>(i % w.party_count);
  }

  w.terminals.reserve(200);
  for (std::uint32_t i = 0; i < 200; ++i) {
    net::Terminal t;
    t.id = i;
    t.owner_party = i % static_cast<std::uint32_t>(w.party_count);
    t.location = orbit::Geodetic::from_degrees(
        -52.0 + 104.0 * static_cast<double>(i % 20) / 19.0,
        -180.0 + 360.0 * static_cast<double>(i / 20) / 10.0);
    t.radio = net::default_user_terminal();
    t.demand_bps = 50e6;
    w.terminals.push_back(t);
  }
  w.stations.reserve(20);
  for (std::uint32_t i = 0; i < 20; ++i) {
    net::GroundStation gs;
    gs.id = i;
    gs.owner_party = i % static_cast<std::uint32_t>(w.party_count);
    gs.location = orbit::Geodetic::from_degrees(
        -48.0 + 96.0 * static_cast<double>(i % 5) / 4.0,
        -170.0 + 360.0 * static_cast<double>(i / 5) / 4.0);
    gs.radio = net::default_ground_station();
    w.stations.push_back(gs);
  }
  return w;
}

}  // namespace

Workload build_workload(const Scenario& scenario) {
  core::throw_if_invalid("sim::build_workload", scenario.validate());
  switch (scenario.scale) {
    case ScalePreset::kMega:
    case ScalePreset::kMegaSmoke:
      return build_mega(scenario);
    case ScalePreset::kReference:
      break;
  }
  return build_reference(scenario);
}

fault::FaultTimeline build_event_timeline(const Scenario& scenario,
                                          const Workload& workload) {
  const orbit::TimeGrid grid = scenario.grid();
  const fault::EventBook book = fault::EventBook::preset(
      scenario.events, grid.duration_seconds(), scenario.event_seed,
      scenario.event_intensity);
  return book.compile(grid, workload.satellites, workload.stations);
}

}  // namespace mpleo::sim
