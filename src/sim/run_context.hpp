// The simulator's single entry-point facade: one RunContext owns everything
// a run needs — the Scenario, the worker pool, the (optional) fault
// timeline, the trace recorder and the metrics registry — so subsystem APIs
// take `sim::RunContext&` instead of growing tails of optional parameters.
//
// Contract: a default-constructed RunContext (serial, no faults) drives
// every subsystem bit-identically to the pre-RunContext default-argument
// calls — same ScheduleResult down to link ordering, same coverage masks.
// The pool only changes wall-clock time (all parallel fills in this codebase
// are pool-size invariant), faults flow to exactly the same parameters the
// old overloads exposed, and metrics/tracing observe without perturbing.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "fault/timeline.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/trace.hpp"
#include "util/thread_pool.hpp"

namespace mpleo::sim {

class RunContext {
 public:
  // Sizes the pool from scenario.threads: 1 (the default) runs serial with
  // no pool at all, 0 sizes to the hardware concurrency, N spins up N
  // threads (workers + caller).
  RunContext() : RunContext(Scenario{}) {}
  explicit RunContext(Scenario scenario);
  ~RunContext();

  // Non-copyable and non-movable: subsystems hold references across a run,
  // and the owned pool's workers must never outlive a moved-from shell.
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] orbit::TimeGrid grid() const { return scenario_.grid(); }

  // The pool driving parallel phases; nullptr means serial.
  [[nodiscard]] util::ThreadPool* pool() const noexcept { return pool_; }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return pool_ != nullptr ? pool_->thread_count() : 1;
  }
  // Replaces the pool with an owned one of `count` threads (1 = serial,
  // 0 = hardware concurrency), or borrows an external pool (nullptr =
  // serial). Borrowed pools must outlive every run driven through this
  // context.
  RunContext& use_threads(std::size_t count);
  RunContext& use_pool(util::ThreadPool* pool);

  // The fault timeline every faultable subsystem sees; nullptr = healthy.
  // Passing by value hands ownership to the context; passing a pointer
  // borrows (the timeline must outlive the runs).
  [[nodiscard]] const fault::FaultTimeline* faults() const noexcept {
    return borrowed_faults_ != nullptr ? borrowed_faults_
                                       : (owned_faults_ ? &*owned_faults_ : nullptr);
  }
  RunContext& use_faults(fault::FaultTimeline timeline);
  RunContext& use_faults(const fault::FaultTimeline* timeline);
  RunContext& clear_faults();

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }

 private:
  Scenario scenario_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
  std::optional<fault::FaultTimeline> owned_faults_;
  const fault::FaultTimeline* borrowed_faults_ = nullptr;
  TraceRecorder trace_;
  obs::MetricsRegistry metrics_;
};

}  // namespace mpleo::sim
