// Scenario -> concrete workload: the one place the scale presets turn into
// satellites, terminals, stations and a scheduler config. Before this,
// every bench hand-rolled its own catalog and site loops; the mega-scale
// acceptance run, the CI smoke and any example wanting "the Gen2 workload"
// now all build it from a Scenario (typically via ScenarioBuilder +
// ScalePreset), so the workload definition cannot drift between them.
#pragma once

#include <cstddef>
#include <vector>

#include "constellation/shell.hpp"
#include "net/ground_station.hpp"
#include "net/scheduler.hpp"
#include "net/terminal.hpp"
#include "sim/scenario.hpp"

namespace mpleo::sim {

// A fully-specified scheduler workload. `scheduler` carries the preset's
// streaming knobs (footprint-stream mode, chunk/slot sizing, candidate cap
// for the mega presets; defaults for reference scale).
struct Workload {
  std::vector<constellation::Satellite> satellites;
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  std::size_t party_count = 4;
  net::SchedulerConfig scheduler;
};

// Builds the workload for scenario.scale:
//
//  * kMega / kMegaSmoke — the synthetic Gen2-scale Starlink catalog
//    (29,520 satellites; the smoke preset truncates to 3,000) serving
//    scenario.terminal_count population-gridded terminals and
//    scenario.station_count stations (constellation::PopulationSampler,
//    fixed seeds so every run sees the same sites), with the
//    footprint-stream scheduler preset (8-step chunks, 2 slots, top-4
//    candidate cap).
//  * kReference — the 500-satellite Walker shell x 200 grid-spread
//    terminals x 20 stations workload the scheduler-compare bench has
//    always used, with a default scheduler config.
//
// Satellite/terminal/station owners round-robin over party_count (4).
// Throws std::invalid_argument (unified ConfigIssue report) when the
// scenario is invalid.
[[nodiscard]] Workload build_workload(const Scenario& scenario);

// Compiles the scenario's correlated-failure event profile (Scenario::events,
// seeded by event_seed, scaled by event_intensity) against the workload's
// fleet into a FaultTimeline on the scenario grid. kOff returns an empty
// timeline — every consumer stays bit-identical to the event-free path.
[[nodiscard]] fault::FaultTimeline build_event_timeline(const Scenario& scenario,
                                                        const Workload& workload);

}  // namespace mpleo::sim
