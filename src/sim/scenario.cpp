#include "sim/scenario.hpp"

#include <cstdlib>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace mpleo::sim {
namespace {

bool consume_prefix(std::string_view& arg, std::string_view prefix) {
  if (arg.substr(0, prefix.size()) != prefix) return false;
  arg.remove_prefix(prefix.size());
  return true;
}

double to_double(std::string_view value, const char* flag) {
  char* end = nullptr;
  const std::string buffer(value);
  const double parsed = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str() || *end != '\0') {
    throw std::invalid_argument(std::string("invalid numeric value for ") + flag);
  }
  return parsed;
}

orbit::PropagatorBackend parse_backend(std::string_view value) {
  try {
    return orbit::propagator_backend_from_string(value);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("invalid value for --propagator=: " +
                                std::string(e.what()) + "\nvalid flags:\n" + flag_help());
  }
}

AdversaryMode parse_adversary_mode(std::string_view value) {
  if (value == "off") return AdversaryMode::kOff;
  if (value == "forge") return AdversaryMode::kForge;
  if (value == "inflate") return AdversaryMode::kInflate;
  if (value == "withhold") return AdversaryMode::kWithhold;
  if (value == "misreport") return AdversaryMode::kMisreport;
  if (value == "collude") return AdversaryMode::kCollude;
  if (value == "mixed") return AdversaryMode::kMixed;
  if (value == "jamming") return AdversaryMode::kJamming;
  if (value == "spectrum_squat") return AdversaryMode::kSpectrumSquat;
  throw std::invalid_argument(
      "invalid value for --adversary=: '" + std::string(value) +
      "' (valid: off, forge, inflate, withhold, misreport, collude, mixed, jamming, "
      "spectrum_squat)\nvalid flags:\n" +
      flag_help());
}

fault::EventProfile parse_events(std::string_view value) {
  if (const std::optional<fault::EventProfile> profile =
          fault::event_profile_from_string(value)) {
    return *profile;
  }
  throw std::invalid_argument(
      "invalid value for --events=: '" + std::string(value) +
      "' (valid: off, storm, blackout, withdrawal, debris, mixed)\nvalid flags:\n" +
      flag_help());
}

ScalePreset parse_scale(std::string_view value) {
  if (value == "reference") return ScalePreset::kReference;
  if (value == "mega") return ScalePreset::kMega;
  if (value == "mega-smoke") return ScalePreset::kMegaSmoke;
  throw std::invalid_argument("invalid value for --scale=: '" + std::string(value) +
                              "' (valid: reference, mega, mega-smoke)\nvalid flags:\n" +
                              flag_help());
}

bool parse_on_off(std::string_view value, const char* flag) {
  if (value == "on") return true;
  if (value == "off") return false;
  throw std::invalid_argument("invalid value for " + std::string(flag) + "=: '" +
                              std::string(value) + "' (valid: on, off)\nvalid flags:\n" +
                              flag_help());
}

// The single source of truth for the flag set: the parser dispatches on it
// and unknown-flag errors / flag_help() render it, so the two can never
// drift apart.
struct FlagSpec {
  std::string_view name;  // including the trailing '=' for valued flags
  std::string_view help;
  void (*apply)(Scenario&, std::string_view value);
};

constexpr FlagSpec kFlags[] = {
    {"--runs=", "Monte-Carlo runs (default 20; the paper uses 100)",
     [](Scenario& s, std::string_view v) {
       s.runs = static_cast<std::size_t>(to_double(v, "--runs"));
     }},
    {"--step=", "time step in seconds (default 60)",
     [](Scenario& s, std::string_view v) { s.step_s = to_double(v, "--step"); }},
    {"--mask=", "elevation mask in degrees (default 25)",
     [](Scenario& s, std::string_view v) {
       s.elevation_mask_deg = to_double(v, "--mask");
     }},
    {"--seed=", "RNG seed (default 42)",
     [](Scenario& s, std::string_view v) {
       s.seed = static_cast<std::uint64_t>(to_double(v, "--seed"));
     }},
    {"--days=", "evaluation window in days (default 7)",
     [](Scenario& s, std::string_view v) {
       s.duration_s = to_double(v, "--days") * 86400.0;
     }},
    {"--epoch=", "ISO-8601 scenario epoch (default 2024-11-18T00:00:00Z)",
     [](Scenario& s, std::string_view v) {
       s.epoch = orbit::TimePoint::from_iso8601(std::string(v));
     }},
    {"--threads=", "RunContext pool threads: 1 = serial, 0 = all hardware (default 1)",
     [](Scenario& s, std::string_view v) {
       s.threads = static_cast<std::size_t>(to_double(v, "--threads"));
     }},
    {"--full", "paper fidelity: 100 runs",
     [](Scenario& s, std::string_view) { s.apply_full_fidelity(); }},
    {"--quick", "smoke settings: 5 runs, 2 days, 120 s step",
     [](Scenario& s, std::string_view) {
       s.runs = 5;
       s.duration_s = 2.0 * 86400.0;
       s.step_s = 120.0;
     }},
    {"--no-gen2", "drop the Starlink Gen2 shells from the catalog",
     [](Scenario& s, std::string_view) { s.include_gen2_catalog = false; }},
    {"--propagator=",
     "orbit propagation backend: j2_analytic|sgp4 (default j2_analytic)",
     [](Scenario& s, std::string_view v) { s.propagator = parse_backend(v); }},
    {"--adversary=",
     "Byzantine behavior mode: off|forge|inflate|withhold|misreport|collude|mixed|"
     "jamming|spectrum_squat (default off)",
     [](Scenario& s, std::string_view v) { s.adversary_mode = parse_adversary_mode(v); }},
    {"--adversary-fraction=", "fraction of parties turned Byzantine, in [0,1] (default 0.25)",
     [](Scenario& s, std::string_view v) {
       s.adversary_fraction = to_double(v, "--adversary-fraction");
     }},
    {"--adversary-intensity=", "Byzantine behavior strength, >= 0 (default 1)",
     [](Scenario& s, std::string_view v) {
       s.adversary_intensity = to_double(v, "--adversary-intensity");
     }},
    {"--adversary-seed=", "seed for the Byzantine behavior book (default 1042)",
     [](Scenario& s, std::string_view v) {
       s.adversary_seed = static_cast<std::uint64_t>(to_double(v, "--adversary-seed"));
     }},
    {"--scale=",
     "workload scale preset: reference|mega|mega-smoke (default reference; mega pins "
     "the 30k-sat x 1M-terminal 1-day workload)",
     [](Scenario& s, std::string_view v) { s.apply_scale(parse_scale(v)); }},
    {"--events=",
     "correlated-failure event profile: off|storm|blackout|withdrawal|debris|mixed "
     "(default off)",
     [](Scenario& s, std::string_view v) { s.events = parse_events(v); }},
    {"--event-seed=", "seed for the correlated-failure event book (default 2042)",
     [](Scenario& s, std::string_view v) {
       s.event_seed = static_cast<std::uint64_t>(to_double(v, "--event-seed"));
     }},
    {"--event-intensity=", "correlated-failure event strength, >= 0 (default 1)",
     [](Scenario& s, std::string_view v) {
       s.event_intensity = to_double(v, "--event-intensity");
     }},
    {"--rf=", "spectrum plan + co-channel interference model: on|off (default off)",
     [](Scenario& s, std::string_view v) { s.rf = parse_on_off(v, "--rf"); }},
    {"--audit-doppler=", "Doppler-track fit stage of the receipt audit: on|off (default off)",
     [](Scenario& s, std::string_view v) {
       s.audit_doppler = parse_on_off(v, "--audit-doppler");
     }},
};

}  // namespace

std::string flag_help() {
  std::ostringstream os;
  for (const FlagSpec& flag : std::span(kFlags)) {
    os << "  " << flag.name << (flag.name.back() == '=' ? "N" : " ") << "  " << flag.help
       << '\n';
  }
  return os.str();
}

std::vector<core::ConfigIssue> Scenario::validate() const {
  std::vector<core::ConfigIssue> issues;
  const auto add = [&issues](const char* field, std::string message) {
    issues.push_back({"sim.scenario", field, std::move(message)});
  };
  if (runs == 0) add("runs", "must be >= 1");
  if (!(step_s > 0.0) || step_s > 1e300) {
    add("step_s", "must be finite and > 0, got " + std::to_string(step_s));
  }
  if (!(duration_s > 0.0) || duration_s > 1e300) {
    add("duration_s", "must be finite and > 0, got " + std::to_string(duration_s));
  }
  if (!(elevation_mask_deg >= 0.0) || !(elevation_mask_deg < 90.0)) {
    add("elevation_mask_deg",
        "must be in [0, 90), got " + std::to_string(elevation_mask_deg));
  }
  if (!(adversary_fraction >= 0.0) || !(adversary_fraction <= 1.0)) {
    add("adversary_fraction",
        "must be a fraction in [0, 1], got " + std::to_string(adversary_fraction));
  }
  if (!(adversary_intensity >= 0.0) || adversary_intensity > 1e300) {
    add("adversary_intensity",
        "must be finite and >= 0, got " + std::to_string(adversary_intensity));
  }
  if (scale != ScalePreset::kReference) {
    if (terminal_count == 0) add("terminal_count", "must be > 0 under a mega scale preset");
    if (station_count == 0) add("station_count", "must be > 0 under a mega scale preset");
  }
  if (!(event_intensity >= 0.0) || event_intensity > 1e300) {
    add("event_intensity",
        "must be finite and >= 0, got " + std::to_string(event_intensity));
  }
  return issues;
}

ScenarioBuilder& ScenarioBuilder::epoch(orbit::TimePoint value) {
  scenario_.epoch = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::epoch_iso8601(const std::string& value) {
  scenario_.epoch = orbit::TimePoint::from_iso8601(value);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::duration_days(double value) {
  scenario_.duration_s = value * 86400.0;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::duration_seconds(double value) {
  scenario_.duration_s = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::step_seconds(double value) {
  scenario_.step_s = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::elevation_mask_deg(double value) {
  scenario_.elevation_mask_deg = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::runs(std::size_t value) {
  scenario_.runs = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t value) {
  scenario_.seed = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::threads(std::size_t value) {
  scenario_.threads = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::include_gen2(bool value) {
  scenario_.include_gen2_catalog = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::propagator(orbit::PropagatorBackend value) {
  scenario_.propagator = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::adversary(AdversaryMode value) {
  scenario_.adversary_mode = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::adversary_fraction(double value) {
  scenario_.adversary_fraction = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::adversary_intensity(double value) {
  scenario_.adversary_intensity = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::adversary_seed(std::uint64_t value) {
  scenario_.adversary_seed = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::rf(bool value) {
  scenario_.rf = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::audit_doppler(bool value) {
  scenario_.audit_doppler = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::events(fault::EventProfile value) {
  scenario_.events = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::event_seed(std::uint64_t value) {
  scenario_.event_seed = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::event_intensity(double value) {
  scenario_.event_intensity = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::scale(ScalePreset value) {
  scenario_.apply_scale(value);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::terminal_count(std::size_t value) {
  scenario_.terminal_count = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::station_count(std::size_t value) {
  scenario_.station_count = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::full_fidelity() {
  scenario_.apply_full_fidelity();
  return *this;
}
ScenarioBuilder& ScenarioBuilder::quick() {
  scenario_.runs = 5;
  scenario_.duration_s = 2.0 * 86400.0;
  scenario_.step_s = 120.0;
  return *this;
}

std::vector<core::ConfigIssue> ScenarioBuilder::issues() const {
  return scenario_.validate();
}

Scenario ScenarioBuilder::build() const {
  core::throw_if_invalid("sim::Scenario", scenario_.validate());
  return scenario_;
}

Scenario parse_scenario(int argc, const char* const* argv, Scenario defaults) {
  ScenarioBuilder builder(std::move(defaults));
  for (int i = 1; i < argc; ++i) {
    const std::string_view raw(argv[i]);
    bool matched = false;
    for (const FlagSpec& flag : std::span(kFlags)) {
      if (flag.name.back() == '=') {
        std::string_view value = raw;
        if (!consume_prefix(value, flag.name)) continue;
        flag.apply(builder.scenario(), value);
      } else {
        if (raw != flag.name) continue;
        flag.apply(builder.scenario(), {});
      }
      matched = true;
      break;
    }
    if (!matched) {
      throw std::invalid_argument("unknown flag: " + std::string(raw) + "\nvalid flags:\n" +
                                  flag_help());
    }
  }
  return builder.build();
}

const char* to_string(ScalePreset preset) noexcept {
  switch (preset) {
    case ScalePreset::kReference: return "reference";
    case ScalePreset::kMegaSmoke: return "mega-smoke";
    case ScalePreset::kMega: return "mega";
  }
  return "unknown";
}

const char* to_string(AdversaryMode mode) noexcept {
  switch (mode) {
    case AdversaryMode::kOff: return "off";
    case AdversaryMode::kForge: return "forge";
    case AdversaryMode::kInflate: return "inflate";
    case AdversaryMode::kWithhold: return "withhold";
    case AdversaryMode::kMisreport: return "misreport";
    case AdversaryMode::kCollude: return "collude";
    case AdversaryMode::kMixed: return "mixed";
    case AdversaryMode::kJamming: return "jamming";
    case AdversaryMode::kSpectrumSquat: return "spectrum_squat";
  }
  return "unknown";
}

std::string describe(const Scenario& scenario) {
  std::ostringstream os;
  os << "epoch=" << scenario.epoch.to_iso8601() << " window=" << scenario.duration_s / 86400.0
     << "d step=" << scenario.step_s << "s mask=" << scenario.elevation_mask_deg
     << "deg runs=" << scenario.runs << " seed=" << scenario.seed;
  if (scenario.threads != 1) {
    os << " threads=";
    if (scenario.threads == 0) {
      os << "hw";
    } else {
      os << scenario.threads;
    }
  }
  if (scenario.propagator != orbit::PropagatorBackend::kJ2Analytic) {
    os << " propagator=" << orbit::to_string(scenario.propagator);
  }
  if (scenario.adversary_mode != AdversaryMode::kOff) {
    os << " adversary=" << to_string(scenario.adversary_mode)
       << " fraction=" << scenario.adversary_fraction
       << " intensity=" << scenario.adversary_intensity;
  }
  if (scenario.rf) os << " rf=on";
  if (scenario.audit_doppler) os << " audit-doppler=on";
  if (scenario.events != fault::EventProfile::kOff) {
    os << " events=" << fault::to_string(scenario.events)
       << " event-seed=" << scenario.event_seed
       << " event-intensity=" << scenario.event_intensity;
  }
  if (scenario.scale != ScalePreset::kReference) {
    os << " scale=" << to_string(scenario.scale) << " terminals=" << scenario.terminal_count
       << " stations=" << scenario.station_count;
  }
  return os.str();
}

}  // namespace mpleo::sim
