#include "sim/scenario.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace mpleo::sim {
namespace {

bool consume_prefix(std::string_view& arg, std::string_view prefix) {
  if (arg.substr(0, prefix.size()) != prefix) return false;
  arg.remove_prefix(prefix.size());
  return true;
}

double to_double(std::string_view value, const char* flag) {
  char* end = nullptr;
  const std::string buffer(value);
  const double parsed = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str() || *end != '\0') {
    throw std::invalid_argument(std::string("invalid numeric value for ") + flag);
  }
  return parsed;
}

}  // namespace

Scenario parse_scenario(int argc, const char* const* argv, Scenario defaults) {
  Scenario scenario = defaults;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--full") {
      scenario.apply_full_fidelity();
    } else if (arg == "--quick") {
      scenario.runs = 5;
      scenario.duration_s = 2.0 * 86400.0;
      scenario.step_s = 120.0;
    } else if (arg == "--no-gen2") {
      scenario.include_gen2_catalog = false;
    } else if (consume_prefix(arg, "--runs=")) {
      scenario.runs = static_cast<std::size_t>(to_double(arg, "--runs"));
    } else if (consume_prefix(arg, "--step=")) {
      scenario.step_s = to_double(arg, "--step");
    } else if (consume_prefix(arg, "--mask=")) {
      scenario.elevation_mask_deg = to_double(arg, "--mask");
    } else if (consume_prefix(arg, "--seed=")) {
      scenario.seed = static_cast<std::uint64_t>(to_double(arg, "--seed"));
    } else if (consume_prefix(arg, "--days=")) {
      scenario.duration_s = to_double(arg, "--days") * 86400.0;
    } else if (consume_prefix(arg, "--epoch=")) {
      scenario.epoch = orbit::TimePoint::from_iso8601(std::string(arg));
    } else {
      throw std::invalid_argument("unknown flag: " + std::string(argv[i]) +
                                  " (supported: --runs= --step= --mask= --seed= --days= "
                                  "--epoch= --full --quick --no-gen2)");
    }
  }
  if (scenario.runs == 0) throw std::invalid_argument("--runs must be >= 1");
  if (scenario.step_s <= 0.0) throw std::invalid_argument("--step must be > 0");
  if (scenario.duration_s <= 0.0) throw std::invalid_argument("--days must be > 0");
  return scenario;
}

std::string describe(const Scenario& scenario) {
  std::ostringstream os;
  os << "epoch=" << scenario.epoch.to_iso8601() << " window=" << scenario.duration_s / 86400.0
     << "d step=" << scenario.step_s << "s mask=" << scenario.elevation_mask_deg
     << "deg runs=" << scenario.runs << " seed=" << scenario.seed;
  return os.str();
}

}  // namespace mpleo::sim
