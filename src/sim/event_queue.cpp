#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace mpleo::sim {

void EventQueue::schedule(double time_s, EventCallback callback) {
  if (!callback) throw std::invalid_argument("EventQueue::schedule: null callback");
  heap_.push(Entry{time_s, next_sequence_++, std::move(callback)});
}

double EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: queue empty");
  return heap_.top().time;
}

double EventQueue::run_next() {
  if (heap_.empty()) throw std::logic_error("EventQueue::run_next: queue empty");
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle (std::function copy) and pop first.
  Entry entry = heap_.top();
  heap_.pop();
  entry.callback();
  return entry.time;
}

void EventQueue::clear() {
  heap_ = {};
  next_sequence_ = 0;
}

}  // namespace mpleo::sim
