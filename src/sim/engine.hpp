// Simulation engine: a clock driving the event queue, with periodic-task
// support. Used by the market/withdrawal examples where discrete events
// (party exits, price updates, proof-of-coverage challenges) are interleaved
// with the stepped coverage timeline.
#pragma once

#include "sim/event_queue.hpp"

namespace mpleo::sim {

class SimEngine {
 public:
  [[nodiscard]] double now() const noexcept { return now_s_; }

  // Schedules at an absolute time (>= now) or after a relative delay.
  void at(double time_s, EventCallback callback);
  void after(double delay_s, EventCallback callback);
  // Schedules `callback` every `period_s` starting at now + period_s until
  // `until_s` (exclusive).
  void every(double period_s, double until_s, const EventCallback& callback);

  // Runs events until the queue is empty or the next event is past `end_s`.
  // The clock finishes at min(end_s, last event time).
  void run_until(double end_s);

  // Drains everything.
  void run_all();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  EventQueue queue_;
  double now_s_ = 0.0;
};

}  // namespace mpleo::sim
