#include "sim/trace.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "obs/metrics.hpp"

namespace mpleo::sim {

void TraceRecorder::record(double time_s, std::string category, std::string message) {
  events_.push_back({time_s, std::move(category), std::move(message)});
}

std::vector<TraceEvent> TraceRecorder::by_category(const std::string& category) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

std::size_t TraceRecorder::count(const std::string& category) const noexcept {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.category == category) ++n;
  }
  return n;
}

std::string TraceRecorder::to_string() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << "t=" << e.time_s << "s [" << e.category << "] " << e.message << '\n';
  }
  return os.str();
}

std::string TraceRecorder::to_json(std::size_t base_indent) const {
  const std::string pad(base_indent, ' ');
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << pad << "  \"event_count\": " << events_.size() << ",\n";
  os << pad << "  \"events\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    os << (i == 0 ? "\n" : ",\n") << pad << "    {\"time_s\": " << e.time_s
       << ", \"category\": \"" << obs::json_escape(e.category) << "\", \"message\": \""
       << obs::json_escape(e.message) << "\"}";
  }
  os << (events_.empty() ? "" : "\n" + pad + "  ") << "]\n";
  os << pad << "}";
  return os.str();
}

}  // namespace mpleo::sim
