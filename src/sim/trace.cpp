#include "sim/trace.hpp"

#include <sstream>

namespace mpleo::sim {

void TraceRecorder::record(double time_s, std::string category, std::string message) {
  events_.push_back({time_s, std::move(category), std::move(message)});
}

std::vector<TraceEvent> TraceRecorder::by_category(const std::string& category) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

std::size_t TraceRecorder::count(const std::string& category) const noexcept {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.category == category) ++n;
  }
  return n;
}

std::string TraceRecorder::to_string() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << "t=" << e.time_s << "s [" << e.category << "] " << e.message << '\n';
  }
  return os.str();
}

}  // namespace mpleo::sim
