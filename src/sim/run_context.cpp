#include "sim/run_context.hpp"

namespace mpleo::sim {

RunContext::RunContext(Scenario scenario) : scenario_(std::move(scenario)) {
  if (scenario_.threads != 1) {
    owned_pool_ = std::make_unique<util::ThreadPool>(scenario_.threads);
    pool_ = owned_pool_.get();
  }
}

RunContext::~RunContext() = default;

RunContext& RunContext::use_threads(std::size_t count) {
  scenario_.threads = count;
  owned_pool_.reset();
  pool_ = nullptr;
  if (count != 1) {
    owned_pool_ = std::make_unique<util::ThreadPool>(count);
    pool_ = owned_pool_.get();
  }
  return *this;
}

RunContext& RunContext::use_pool(util::ThreadPool* pool) {
  owned_pool_.reset();
  pool_ = pool;
  return *this;
}

RunContext& RunContext::use_faults(fault::FaultTimeline timeline) {
  owned_faults_ = std::move(timeline);
  borrowed_faults_ = nullptr;
  return *this;
}

RunContext& RunContext::use_faults(const fault::FaultTimeline* timeline) {
  borrowed_faults_ = timeline;
  owned_faults_.reset();
  return *this;
}

RunContext& RunContext::clear_faults() {
  owned_faults_.reset();
  borrowed_faults_ = nullptr;
  return *this;
}

}  // namespace mpleo::sim
