// Discrete-event queue: time-ordered callbacks with FIFO tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mpleo::sim {

using EventCallback = std::function<void()>;

class EventQueue {
 public:
  // Schedules `callback` at absolute simulation time `time_s`.
  // Events at equal times fire in scheduling order.
  void schedule(double time_s, EventCallback callback);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  // Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] double next_time() const;

  // Pops and runs the earliest event; returns its time. Precondition: !empty().
  double run_next();

  void clear();

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;
    EventCallback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace mpleo::sim
