// Experiment scenario configuration shared by every bench: the evaluation
// window, time step, elevation mask, Monte-Carlo run count and seed — plus a
// tiny --key=value command-line parser so all bench binaries speak the same
// flags (--runs, --step, --mask, --seed, --days, --full).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/validation.hpp"
#include "fault/event_book.hpp"
#include "orbit/backend.hpp"
#include "orbit/time.hpp"

namespace mpleo::sim {

// Which Byzantine behavior mix an adversary-aware bench arms (see
// adversary::BehaviorBook). kOff is the exact adversary-free code path.
enum class AdversaryMode : std::uint8_t {
  kOff,
  kForge,      // forged proof-of-coverage receipts
  kInflate,    // duplicate resubmission of credited receipts
  kWithhold,   // capacity withheld from the spare commons
  kMisreport,  // inflated SLA claims at settlement
  kCollude,    // coalition receipt forgery
  kMixed,      // round-robin over all of the above
  // RF misbehavior (not part of kMixed — these degrade the physical layer
  // instead of forging claims, so they get their own sweep axis):
  kJamming,       // boosted wideband interference across the shared band
  kSpectrumSquat, // transmission outside the assigned channel at nominal power
};

[[nodiscard]] const char* to_string(AdversaryMode mode) noexcept;

// Workload scale presets (--scale=). kReference leaves the driving bench in
// charge of workload sizes (the historical behavior). The mega presets pin
// the mega-constellation scale-out workload: the synthetic Gen2-scale
// Starlink catalog served population-gridded terminals over one day at 60 s
// steps through the footprint-stream scheduler (see sim::build_workload).
enum class ScalePreset : std::uint8_t {
  kReference,  // bench-defined workload sizes
  kMegaSmoke,  // 3k satellites x 50k terminals — CI-sized mega path
  kMega,       // 29,520 satellites x 1M terminals — the acceptance run
};

[[nodiscard]] const char* to_string(ScalePreset preset) noexcept;

struct Scenario {
  orbit::TimePoint epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  double duration_s = 7.0 * 86400.0;  // the paper's one-week window
  double step_s = 60.0;
  double elevation_mask_deg = 25.0;
  std::size_t runs = 20;     // paper uses 100; see --full
  std::uint64_t seed = 42;
  bool include_gen2_catalog = true;
  // Worker threads for the RunContext pool: 1 (default) = serial, 0 = all
  // hardware threads, N = N threads. Results are bit-identical for any
  // value; only wall-clock time changes.
  std::size_t threads = 1;
  // Byzantine-party knobs (adversary-aware benches only; kOff leaves every
  // consumer bit-identical to the adversary-free path). The fraction is the
  // share of parties turned Byzantine, validated to [0, 1]; intensity scales
  // behavior strength and must be >= 0.
  AdversaryMode adversary_mode = AdversaryMode::kOff;
  double adversary_fraction = 0.25;
  double adversary_intensity = 1.0;
  std::uint64_t adversary_seed = 1042;
  // RF layer knobs (both default off — an RF-disabled run is bit-identical
  // to the pre-RF code path). `rf` arms the spectrum plan and co-channel
  // interference model in adversary-aware benches; `audit_doppler` arms the
  // Doppler-track fit stage of the receipt audit.
  bool rf = false;
  bool audit_doppler = false;
  // Orbit propagation backend for every ephemeris consumer reached through
  // RunContext (coverage, scheduler, proof-of-coverage). The default is the
  // fast analytic model; sgp4 trades throughput for TLE-grade fidelity.
  orbit::PropagatorBackend propagator = orbit::PropagatorBackend::kJ2Analytic;
  // Workload scale (see ScalePreset). apply_scale() pins the mega presets'
  // window, step and workload sizes; terminal/station counts are consumed by
  // sim::build_workload and ignored under kReference (where benches size
  // their own workloads, terminal_count 0 = "bench decides").
  ScalePreset scale = ScalePreset::kReference;
  std::size_t terminal_count = 0;
  std::size_t station_count = 0;
  // Correlated-failure events (fault::EventBook presets). kOff leaves every
  // consumer bit-identical to the event-free path; any other profile seeds
  // the preset book scaled by `event_intensity` (>= 0, 1 = nominal) from
  // `event_seed`, compiled onto the run's FaultTimeline (see
  // sim::build_event_timeline).
  fault::EventProfile events = fault::EventProfile::kOff;
  std::uint64_t event_seed = 2042;
  double event_intensity = 1.0;

  [[nodiscard]] orbit::TimeGrid grid() const {
    return orbit::TimeGrid::over_duration(epoch, duration_s, step_s);
  }

  // The paper's full fidelity (100 runs); benches default lighter so the
  // whole suite runs in minutes.
  void apply_full_fidelity() noexcept { runs = 100; }

  // Applies a scale preset: the mega presets pin the 1-day / 60 s window and
  // the workload sizes sim::build_workload consumes; kReference restores
  // bench-defined sizing (without touching window or step).
  void apply_scale(ScalePreset preset) noexcept {
    scale = preset;
    if (preset == ScalePreset::kReference) {
      terminal_count = 0;
      station_count = 0;
      return;
    }
    duration_s = 86400.0;
    step_s = 60.0;
    terminal_count = preset == ScalePreset::kMega ? 1'000'000 : 50'000;
    station_count = 128;
  }

  // Collects every invalid field as a unified core::ConfigIssue (component
  // "sim.scenario"); empty means runnable. parse_scenario and
  // ScenarioBuilder::build both throw std::invalid_argument joining these.
  [[nodiscard]] std::vector<core::ConfigIssue> validate() const;
};

// Fluent programmatic construction of a Scenario. Examples and tests used to
// mutate Scenario's public fields in whatever order; the builder names every
// knob, keeps call sites order-independent, and funnels construction through
// the same unified validation the flag parser uses: build() throws
// std::invalid_argument joining every core::ConfigIssue, issues() returns
// them for callers that want to report instead of throw.
//
//   sim::Scenario s = sim::ScenarioBuilder()
//                         .duration_days(1.0)
//                         .step_seconds(60.0)
//                         .threads(0)
//                         .scale(sim::ScalePreset::kMegaSmoke)
//                         .build();
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  // Seeds every knob from an existing scenario (the flag parser's entry).
  explicit ScenarioBuilder(Scenario base) : scenario_(std::move(base)) {}

  ScenarioBuilder& epoch(orbit::TimePoint value);
  ScenarioBuilder& epoch_iso8601(const std::string& value);
  ScenarioBuilder& duration_days(double value);
  ScenarioBuilder& duration_seconds(double value);
  ScenarioBuilder& step_seconds(double value);
  ScenarioBuilder& elevation_mask_deg(double value);
  ScenarioBuilder& runs(std::size_t value);
  ScenarioBuilder& seed(std::uint64_t value);
  ScenarioBuilder& threads(std::size_t value);
  ScenarioBuilder& include_gen2(bool value);
  ScenarioBuilder& propagator(orbit::PropagatorBackend value);
  ScenarioBuilder& adversary(AdversaryMode value);
  ScenarioBuilder& adversary_fraction(double value);
  ScenarioBuilder& adversary_intensity(double value);
  ScenarioBuilder& adversary_seed(std::uint64_t value);
  ScenarioBuilder& rf(bool value);
  ScenarioBuilder& audit_doppler(bool value);
  ScenarioBuilder& events(fault::EventProfile value);
  ScenarioBuilder& event_seed(std::uint64_t value);
  ScenarioBuilder& event_intensity(double value);
  // Applies the preset immediately (Scenario::apply_scale), so later calls
  // can still override individual fields it pinned.
  ScenarioBuilder& scale(ScalePreset value);
  ScenarioBuilder& terminal_count(std::size_t value);
  ScenarioBuilder& station_count(std::size_t value);
  ScenarioBuilder& full_fidelity();
  ScenarioBuilder& quick();

  // The unified validation report for the current state (empty = buildable).
  [[nodiscard]] std::vector<core::ConfigIssue> issues() const;
  // Returns the validated scenario; throws std::invalid_argument joining
  // every error-severity issue.
  [[nodiscard]] Scenario build() const;
  // The in-progress scenario, mutable — the flag parser applies FlagSpec
  // actions straight onto it so flags and builder share one code path.
  [[nodiscard]] Scenario& scenario() noexcept { return scenario_; }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }

 private:
  Scenario scenario_;
};

// Parses flags of the form --runs=100 --step=30 --mask=25 --seed=7 --days=7
// --threads=4 --scale=mega --full (100 runs) --quick (5 runs, 2 days, 120 s).
// Unknown flags throw with a message listing every valid flag (see
// flag_help()). A thin front-end over ScenarioBuilder: flags mutate the
// builder's scenario and the result is ScenarioBuilder::build(), so command
// lines and programmatic construction report errors through the same
// unified core::ConfigIssue path. `defaults` seeds the initial values.
[[nodiscard]] Scenario parse_scenario(int argc, const char* const* argv,
                                      Scenario defaults = {});

// One "--flag  description" line per supported flag — the text unknown-flag
// errors carry, reusable by drivers printing usage.
[[nodiscard]] std::string flag_help();

// Renders the scenario as a one-line header benches print above tables.
[[nodiscard]] std::string describe(const Scenario& scenario);

}  // namespace mpleo::sim
