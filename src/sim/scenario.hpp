// Experiment scenario configuration shared by every bench: the evaluation
// window, time step, elevation mask, Monte-Carlo run count and seed — plus a
// tiny --key=value command-line parser so all bench binaries speak the same
// flags (--runs, --step, --mask, --seed, --days, --full).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orbit/backend.hpp"
#include "orbit/time.hpp"

namespace mpleo::sim {

// Which Byzantine behavior mix an adversary-aware bench arms (see
// adversary::BehaviorBook). kOff is the exact adversary-free code path.
enum class AdversaryMode : std::uint8_t {
  kOff,
  kForge,      // forged proof-of-coverage receipts
  kInflate,    // duplicate resubmission of credited receipts
  kWithhold,   // capacity withheld from the spare commons
  kMisreport,  // inflated SLA claims at settlement
  kCollude,    // coalition receipt forgery
  kMixed,      // round-robin over all of the above
  // RF misbehavior (not part of kMixed — these degrade the physical layer
  // instead of forging claims, so they get their own sweep axis):
  kJamming,       // boosted wideband interference across the shared band
  kSpectrumSquat, // transmission outside the assigned channel at nominal power
};

[[nodiscard]] const char* to_string(AdversaryMode mode) noexcept;

struct Scenario {
  orbit::TimePoint epoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  double duration_s = 7.0 * 86400.0;  // the paper's one-week window
  double step_s = 60.0;
  double elevation_mask_deg = 25.0;
  std::size_t runs = 20;     // paper uses 100; see --full
  std::uint64_t seed = 42;
  bool include_gen2_catalog = true;
  // Worker threads for the RunContext pool: 1 (default) = serial, 0 = all
  // hardware threads, N = N threads. Results are bit-identical for any
  // value; only wall-clock time changes.
  std::size_t threads = 1;
  // Byzantine-party knobs (adversary-aware benches only; kOff leaves every
  // consumer bit-identical to the adversary-free path). The fraction is the
  // share of parties turned Byzantine, validated to [0, 1]; intensity scales
  // behavior strength and must be >= 0.
  AdversaryMode adversary_mode = AdversaryMode::kOff;
  double adversary_fraction = 0.25;
  double adversary_intensity = 1.0;
  std::uint64_t adversary_seed = 1042;
  // RF layer knobs (both default off — an RF-disabled run is bit-identical
  // to the pre-RF code path). `rf` arms the spectrum plan and co-channel
  // interference model in adversary-aware benches; `audit_doppler` arms the
  // Doppler-track fit stage of the receipt audit.
  bool rf = false;
  bool audit_doppler = false;
  // Orbit propagation backend for every ephemeris consumer reached through
  // RunContext (coverage, scheduler, proof-of-coverage). The default is the
  // fast analytic model; sgp4 trades throughput for TLE-grade fidelity.
  orbit::PropagatorBackend propagator = orbit::PropagatorBackend::kJ2Analytic;

  [[nodiscard]] orbit::TimeGrid grid() const {
    return orbit::TimeGrid::over_duration(epoch, duration_s, step_s);
  }

  // The paper's full fidelity (100 runs); benches default lighter so the
  // whole suite runs in minutes.
  void apply_full_fidelity() noexcept { runs = 100; }
};

// Parses flags of the form --runs=100 --step=30 --mask=25 --seed=7 --days=7
// --threads=4 --full (100 runs) --quick (5 runs, 2 days, 120 s). Unknown
// flags throw with a message listing every valid flag (see flag_help()).
// Returns the scenario; `defaults` seeds the initial values.
[[nodiscard]] Scenario parse_scenario(int argc, const char* const* argv,
                                      Scenario defaults = {});

// One "--flag  description" line per supported flag — the text unknown-flag
// errors carry, reusable by drivers printing usage.
[[nodiscard]] std::string flag_help();

// Renders the scenario as a one-line header benches print above tables.
[[nodiscard]] std::string describe(const Scenario& scenario);

}  // namespace mpleo::sim
