// Structured trace recording for simulation runs: benches and examples use
// it to explain *why* a number came out (which party withdrew when, which
// proofs failed, ...).
#pragma once

#include <string>
#include <vector>

namespace mpleo::sim {

struct TraceEvent {
  double time_s = 0.0;
  std::string category;  // e.g. "withdrawal", "poc", "market"
  std::string message;
};

class TraceRecorder {
 public:
  void record(double time_s, std::string category, std::string message);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::vector<TraceEvent> by_category(const std::string& category) const;
  [[nodiscard]] std::size_t count(const std::string& category) const noexcept;

  // Renders "t=123.0s [category] message" lines.
  [[nodiscard]] std::string to_string() const;

  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace mpleo::sim
