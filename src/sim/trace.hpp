// Structured trace recording for simulation runs: benches and examples use
// it to explain *why* a number came out (which party withdrew when, which
// proofs failed, ...).
#pragma once

#include <string>
#include <vector>

namespace mpleo::sim {

struct TraceEvent {
  double time_s = 0.0;
  std::string category;  // e.g. "withdrawal", "poc", "market"
  std::string message;
};

class TraceRecorder {
 public:
  void record(double time_s, std::string category, std::string message);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::vector<TraceEvent> by_category(const std::string& category) const;
  [[nodiscard]] std::size_t count(const std::string& category) const noexcept;

  // Renders "t=123.0s [category] message" lines.
  [[nodiscard]] std::string to_string() const;

  // Renders {"event_count": N, "events": [{"time_s": ..., "category": ...,
  // "message": ...}, ...]} with the same two-space indentation and string
  // escaping as obs::MetricsRegistry::to_json, so trace and metrics sections
  // embed side by side in one report. Lines after the first are prefixed by
  // `base_indent` spaces.
  [[nodiscard]] std::string to_json(std::size_t base_indent = 0) const;

  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace mpleo::sim
