#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpleo::sim {

void SimEngine::at(double time_s, EventCallback callback) {
  if (time_s < now_s_) throw std::invalid_argument("SimEngine::at: time in the past");
  queue_.schedule(time_s, std::move(callback));
}

void SimEngine::after(double delay_s, EventCallback callback) {
  if (delay_s < 0.0) throw std::invalid_argument("SimEngine::after: negative delay");
  queue_.schedule(now_s_ + delay_s, std::move(callback));
}

void SimEngine::every(double period_s, double until_s, const EventCallback& callback) {
  if (period_s <= 0.0) throw std::invalid_argument("SimEngine::every: period must be > 0");
  // Each firing is now + k * period, not an accumulated t += period: the
  // accumulated form drifts by one ulp per firing, which over multi-day
  // horizons walks periodic tasks (fault/repair polls, price updates) off
  // the step grid and can even change the firing count near until_s.
  for (std::uint64_t k = 1;; ++k) {
    const double t = now_s_ + period_s * static_cast<double>(k);
    if (t >= until_s) break;
    queue_.schedule(t, callback);
  }
}

void SimEngine::run_until(double end_s) {
  while (!queue_.empty() && queue_.next_time() <= end_s) {
    // Advance the clock *before* dispatching so the event observes now() ==
    // its own timestamp (and relative scheduling from inside events works).
    now_s_ = queue_.next_time();
    (void)queue_.run_next();
  }
  now_s_ = std::max(now_s_, end_s);
}

void SimEngine::run_all() {
  while (!queue_.empty()) {
    now_s_ = queue_.next_time();
    (void)queue_.run_next();
  }
}

}  // namespace mpleo::sim
