#include "constellation/shell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::constellation {

std::vector<Satellite> WalkerShell::build(orbit::TimePoint epoch,
                                          SatelliteId first_id) const {
  if (plane_count <= 0 || sats_per_plane <= 0) {
    throw std::invalid_argument("WalkerShell: plane_count and sats_per_plane must be > 0");
  }
  if (phasing_factor < 0 || phasing_factor >= plane_count) {
    throw std::invalid_argument("WalkerShell: phasing factor out of [0, plane_count)");
  }
  if (!(raan_spread_deg > 0.0) || raan_spread_deg > 360.0) {
    throw std::invalid_argument("WalkerShell: raan spread must be in (0, 360]");
  }

  std::vector<Satellite> sats;
  sats.reserve(static_cast<std::size_t>(total_count()));
  const double raan_step = raan_spread_deg / plane_count;
  const double phase_step = 360.0 / sats_per_plane;
  // Walker-delta relative phasing between adjacent planes: F * 360 / T.
  const double plane_phase_step =
      static_cast<double>(phasing_factor) * 360.0 / static_cast<double>(total_count());

  SatelliteId id = first_id;
  for (int plane = 0; plane < plane_count; ++plane) {
    const double raan = raan_offset_deg + raan_step * plane;
    for (int slot = 0; slot < sats_per_plane; ++slot) {
      const double phase = phase_offset_deg + phase_step * slot + plane_phase_step * plane;
      Satellite sat;
      sat.id = id++;
      sat.name = label + "-P" + std::to_string(plane) + "S" + std::to_string(slot);
      sat.elements =
          orbit::ClassicalElements::circular(altitude_m, inclination_deg, raan, phase);
      sat.epoch = epoch;
      sats.push_back(std::move(sat));
    }
  }
  return sats;
}

std::vector<ShellShard> shell_partition(std::span<const Satellite> satellites,
                                        double semi_major_axis_tol_m,
                                        double inclination_tol_deg) {
  std::vector<ShellShard> shards;
  const double incl_tol_rad = util::deg_to_rad(std::max(0.0, inclination_tol_deg));
  const double sma_tol = std::max(0.0, semi_major_axis_tol_m);
  std::size_t begin = 0;
  while (begin < satellites.size()) {
    const orbit::ClassicalElements& head = satellites[begin].elements;
    std::size_t end = begin + 1;
    while (end < satellites.size()) {
      const orbit::ClassicalElements& e = satellites[end].elements;
      if (std::abs(e.semi_major_axis_m - head.semi_major_axis_m) > sma_tol ||
          std::abs(e.inclination_rad - head.inclination_rad) > incl_tol_rad) {
        break;
      }
      ++end;
    }
    shards.push_back({begin, end, head.semi_major_axis_m, head.inclination_rad});
    begin = end;
  }
  return shards;
}

std::vector<Satellite> single_plane(double altitude_m, double inclination_deg,
                                    double raan_deg, int count, orbit::TimePoint epoch,
                                    double phase_offset_deg, SatelliteId first_id) {
  if (count <= 0) throw std::invalid_argument("single_plane: count must be > 0");
  std::vector<Satellite> sats;
  sats.reserve(static_cast<std::size_t>(count));
  const double phase_step = 360.0 / count;
  for (int slot = 0; slot < count; ++slot) {
    Satellite sat;
    sat.id = first_id + static_cast<SatelliteId>(slot);
    sat.name = "PLANE-S" + std::to_string(slot);
    sat.elements = orbit::ClassicalElements::circular(
        altitude_m, inclination_deg, raan_deg, phase_offset_deg + phase_step * slot);
    sat.epoch = epoch;
    sats.push_back(std::move(sat));
  }
  return sats;
}

}  // namespace mpleo::constellation
