// Population-gridded terminal sampling.
//
// Mega-scale workloads need millions of user terminals whose geography looks
// like demand, not like a uniform sphere: terminals cluster around the
// paper's metro areas and thin out over oceans and poles. PopulationSampler
// builds a latitude-band / longitude-cell density grid (the cov::EarthGrid
// equal-area scheme), splats city populations onto it with a linear falloff,
// mixes in an area-weighted uniform floor so no inhabited latitude is empty,
// and then draws deterministic site locations from the resulting discrete
// distribution — same seed, same terminals, regardless of how many are drawn
// by whom.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coverage/cities.hpp"
#include "orbit/geodesy.hpp"
#include "util/rng.hpp"

namespace mpleo::constellation {

struct PopulationSamplerConfig {
  // Density-grid resolution; cells are ~band_height_deg on a side at the
  // equator and shrink in longitude with cos(latitude).
  double band_height_deg = 4.0;
  // Terminals are confined to |latitude| <= max_latitude_deg (nobody lives
  // on the ice caps, and LEO broadband shells barely reach them).
  double max_latitude_deg = 70.0;
  // Each city's population is splatted over cells within this great-circle
  // radius with a linear falloff (full weight at the centre, zero at the
  // edge).
  double city_radius_deg = 6.0;
  // Fraction of total mass spread area-uniformly over all cells, so oceans
  // and rural bands get a trickle of terminals instead of exactly zero.
  double uniform_floor_fraction = 0.05;
};

class PopulationSampler {
 public:
  // Builds the density grid from `cities` (defaults to the paper's 21-city
  // list when empty). Throws std::invalid_argument on out-of-range config.
  explicit PopulationSampler(PopulationSamplerConfig config = {},
                             std::span<const cov::City> cities = {});

  [[nodiscard]] std::size_t cell_count() const noexcept { return cdf_.size(); }

  // Draws one site: picks a cell from the population CDF, then an area-
  // uniform point inside it. Deterministic in the RNG stream.
  [[nodiscard]] orbit::Geodetic sample(util::Xoshiro256PlusPlus& rng) const;

  // Draws `count` sites from a fresh stream seeded with `seed` — the bulk
  // entry point the mega bench uses. Same seed + count => same sites.
  [[nodiscard]] std::vector<orbit::Geodetic> sample(std::size_t count,
                                                    std::uint64_t seed) const;

  // Probability mass of the cell containing (lat, lon) — exposed so tests
  // can assert city concentration without re-deriving the grid.
  [[nodiscard]] double cell_mass(double lat_rad, double lon_rad) const noexcept;

 private:
  struct Cell {
    float sin_lat_lo = 0.0F;
    float sin_lat_hi = 0.0F;
    float lon_lo = 0.0F;
    float lon_width = 0.0F;
  };

  [[nodiscard]] std::size_t cell_index(double lat_rad, double lon_rad) const noexcept;

  PopulationSamplerConfig config_;
  std::vector<std::uint32_t> band_cell_begin_;  // flat cell table, per band
  double band_height_rad_ = 0.0;
  double lat_min_rad_ = 0.0;
  std::size_t band_count_ = 0;
  std::vector<Cell> cells_;
  std::vector<double> cdf_;  // inclusive prefix sums of cell mass, ends at 1
};

}  // namespace mpleo::constellation
