#include "constellation/population.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::constellation {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

[[nodiscard]] double wrap_lon(double lon) {
  lon = std::fmod(lon, kTwoPi);
  if (lon < 0.0) lon += kTwoPi;
  return lon;
}

// Great-circle central angle between two (lat, lon) points.
[[nodiscard]] double central_angle(double lat_a, double lon_a, double lat_b,
                                   double lon_b) {
  const double c = std::sin(lat_a) * std::sin(lat_b) +
                   std::cos(lat_a) * std::cos(lat_b) * std::cos(lon_a - lon_b);
  return std::acos(std::clamp(c, -1.0, 1.0));
}

}  // namespace

PopulationSampler::PopulationSampler(PopulationSamplerConfig config,
                                     std::span<const cov::City> cities)
    : config_(config) {
  if (!(config_.band_height_deg > 0.0) || config_.band_height_deg > 90.0) {
    throw std::invalid_argument("PopulationSampler: band_height_deg out of (0, 90]");
  }
  if (!(config_.max_latitude_deg > 0.0) || config_.max_latitude_deg > 90.0) {
    throw std::invalid_argument("PopulationSampler: max_latitude_deg out of (0, 90]");
  }
  if (!(config_.city_radius_deg > 0.0) || config_.city_radius_deg > 90.0) {
    throw std::invalid_argument("PopulationSampler: city_radius_deg out of (0, 90]");
  }
  if (!(config_.uniform_floor_fraction >= 0.0) ||
      config_.uniform_floor_fraction > 1.0) {
    throw std::invalid_argument(
        "PopulationSampler: uniform_floor_fraction out of [0, 1]");
  }
  const std::vector<cov::City>& default_cities = cov::paper_cities();
  if (cities.empty()) cities = default_cities;

  band_height_rad_ = util::deg_to_rad(config_.band_height_deg);
  const double lat_max = util::deg_to_rad(config_.max_latitude_deg);
  lat_min_rad_ = -lat_max;
  band_count_ = static_cast<std::size_t>(
      std::max(1.0, std::ceil(2.0 * lat_max / band_height_rad_)));

  // Lay out the cells: equal-area bands, cos-scaled cell counts.
  const double base_cells = std::ceil(kTwoPi / band_height_rad_);
  band_cell_begin_.assign(band_count_ + 1, 0);
  for (std::size_t b = 0; b < band_count_; ++b) {
    const double lo = lat_min_rad_ + static_cast<double>(b) * band_height_rad_;
    const double hi = std::min(lo + band_height_rad_, lat_max);
    const double center = 0.5 * (lo + hi);
    const auto cells = static_cast<std::uint32_t>(
        std::max(1.0, std::round(base_cells * std::cos(center))));
    band_cell_begin_[b + 1] = band_cell_begin_[b] + cells;
  }
  const std::size_t total = band_cell_begin_[band_count_];
  cells_.resize(total);
  std::vector<double> mass(total, 0.0);
  std::vector<double> area(total, 0.0);
  double area_total = 0.0;
  for (std::size_t b = 0; b < band_count_; ++b) {
    const double lo = lat_min_rad_ + static_cast<double>(b) * band_height_rad_;
    const double hi = std::min(lo + band_height_rad_, lat_max);
    const std::uint32_t cells_b = band_cell_begin_[b + 1] - band_cell_begin_[b];
    const double width = kTwoPi / static_cast<double>(cells_b);
    const double cell_area = (std::sin(hi) - std::sin(lo)) * width;  // sphere area
    for (std::uint32_t c = 0; c < cells_b; ++c) {
      Cell& cell = cells_[band_cell_begin_[b] + c];
      cell.sin_lat_lo = static_cast<float>(std::sin(lo));
      cell.sin_lat_hi = static_cast<float>(std::sin(hi));
      cell.lon_lo = static_cast<float>(static_cast<double>(c) * width);
      cell.lon_width = static_cast<float>(width);
      area[band_cell_begin_[b] + c] = cell_area;
      area_total += cell_area;
    }
  }

  // Splat each city onto nearby cells with a linear falloff in great-circle
  // distance; population scales the splat.
  const double radius = util::deg_to_rad(config_.city_radius_deg);
  double city_total = 0.0;
  for (const cov::City& city : cities) {
    if (!(city.population > 0.0)) continue;
    const double c_lat = city.location.latitude_rad;
    const double c_lon = wrap_lon(city.location.longitude_rad);
    for (std::size_t b = 0; b < band_count_; ++b) {
      const double lo = lat_min_rad_ + static_cast<double>(b) * band_height_rad_;
      const double hi = std::min(lo + band_height_rad_, lat_max);
      const double band_center = 0.5 * (lo + hi);
      if (std::abs(band_center - c_lat) > radius + band_height_rad_) continue;
      const std::uint32_t cells_b = band_cell_begin_[b + 1] - band_cell_begin_[b];
      const double width = kTwoPi / static_cast<double>(cells_b);
      for (std::uint32_t c = 0; c < cells_b; ++c) {
        const double cell_lon = (static_cast<double>(c) + 0.5) * width;
        const double d = central_angle(band_center, cell_lon, c_lat, c_lon);
        if (d >= radius) continue;
        const double w = city.population * (1.0 - d / radius);
        mass[band_cell_begin_[b] + c] += w;
        city_total += w;
      }
    }
  }

  // Mix: (1 - floor) of the mass follows the cities, `floor` is spread
  // area-uniformly. With no city mass at all (e.g. cities outside the
  // latitude belt), everything falls back to area-uniform.
  double floor_fraction = config_.uniform_floor_fraction;
  if (!(city_total > 0.0)) floor_fraction = 1.0;
  double total_mass = 0.0;
  for (std::size_t i = 0; i < total; ++i) {
    const double city_part =
        city_total > 0.0 ? (1.0 - floor_fraction) * mass[i] / city_total : 0.0;
    const double floor_part = floor_fraction * area[i] / area_total;
    mass[i] = city_part + floor_part;
    total_mass += mass[i];
  }

  cdf_.resize(total);
  double acc = 0.0;
  for (std::size_t i = 0; i < total; ++i) {
    acc += mass[i] / total_mass;
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;
}

orbit::Geodetic PopulationSampler::sample(util::Xoshiro256PlusPlus& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cdf_.begin()), cdf_.size() - 1);
  const Cell& cell = cells_[idx];
  // Area-uniform point in the cell: uniform in sin(lat) and in longitude.
  const double s =
      rng.uniform(static_cast<double>(cell.sin_lat_lo), static_cast<double>(cell.sin_lat_hi));
  const double lon =
      static_cast<double>(cell.lon_lo) + rng.uniform() * static_cast<double>(cell.lon_width);
  orbit::Geodetic g;
  g.latitude_rad = std::asin(std::clamp(s, -1.0, 1.0));
  g.longitude_rad = lon > kPi ? lon - kTwoPi : lon;  // back to (-pi, pi]
  g.altitude_m = 0.0;
  return g;
}

std::vector<orbit::Geodetic> PopulationSampler::sample(std::size_t count,
                                                       std::uint64_t seed) const {
  util::Xoshiro256PlusPlus rng(seed);
  std::vector<orbit::Geodetic> sites;
  sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) sites.push_back(sample(rng));
  return sites;
}

std::size_t PopulationSampler::cell_index(double lat_rad, double lon_rad) const noexcept {
  const double shifted = (lat_rad - lat_min_rad_) / band_height_rad_;
  const auto b = static_cast<std::size_t>(std::clamp(
      static_cast<long>(std::floor(shifted)), 0L, static_cast<long>(band_count_) - 1L));
  const std::uint32_t cells_b = band_cell_begin_[b + 1] - band_cell_begin_[b];
  const double width = kTwoPi / static_cast<double>(cells_b);
  auto c = static_cast<std::uint32_t>(wrap_lon(lon_rad) / width);
  c = std::min(c, cells_b - 1);
  return band_cell_begin_[b] + c;
}

double PopulationSampler::cell_mass(double lat_rad, double lon_rad) const noexcept {
  const std::size_t idx = cell_index(lat_rad, lon_rad);
  return idx == 0 ? cdf_[0] : cdf_[idx] - cdf_[idx - 1];
}

}  // namespace mpleo::constellation
