#include "constellation/designer.hpp"

#include <cstdio>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::constellation {
namespace {

std::string fmt_label(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

}  // namespace

std::vector<CandidateSlot> phase_offset_candidates(const orbit::ClassicalElements& reference,
                                                   const std::vector<double>& offsets_deg) {
  std::vector<CandidateSlot> slots;
  slots.reserve(offsets_deg.size());
  for (double offset : offsets_deg) {
    orbit::ClassicalElements coe = reference;
    coe.mean_anomaly_rad =
        util::wrap_two_pi(coe.mean_anomaly_rad + util::deg_to_rad(offset));
    slots.push_back({fmt_label("phase%+.1fdeg", offset), coe});
  }
  return slots;
}

std::vector<CandidateSlot> factor_candidates(const orbit::ClassicalElements& reference,
                                             double new_inclination_deg,
                                             double altitude_delta_m,
                                             double phase_delta_deg) {
  std::vector<CandidateSlot> slots;

  orbit::ClassicalElements incl = reference;
  incl.inclination_rad = util::deg_to_rad(new_inclination_deg);
  slots.push_back({fmt_label("inclination=%.1fdeg", new_inclination_deg), incl});

  orbit::ClassicalElements alt = reference;
  alt.semi_major_axis_m += altitude_delta_m;
  slots.push_back(
      {fmt_label("altitude%+.0fkm", altitude_delta_m / 1000.0), alt});

  orbit::ClassicalElements phase = reference;
  phase.mean_anomaly_rad =
      util::wrap_two_pi(phase.mean_anomaly_rad + util::deg_to_rad(phase_delta_deg));
  slots.push_back({fmt_label("phase%+.1fdeg", phase_delta_deg), phase});

  return slots;
}

SlotGrid SlotGrid::coarse_leo() {
  SlotGrid grid;
  for (double raan = 0.0; raan < 360.0; raan += 30.0) grid.raan_values_deg.push_back(raan);
  for (double phase = 0.0; phase < 360.0; phase += 30.0) {
    grid.phase_values_deg.push_back(phase);
  }
  grid.inclination_values_deg = {43.0, 53.0, 70.0, 97.6};
  grid.altitude_values_m = {525e3, 550e3, 570e3};
  return grid;
}

std::vector<CandidateSlot> enumerate_slots(const SlotGrid& grid) {
  std::vector<CandidateSlot> slots;
  slots.reserve(grid.raan_values_deg.size() * grid.phase_values_deg.size() *
                grid.inclination_values_deg.size() * grid.altitude_values_m.size());
  for (double incl : grid.inclination_values_deg) {
    for (double alt : grid.altitude_values_m) {
      for (double raan : grid.raan_values_deg) {
        for (double phase : grid.phase_values_deg) {
          char buf[96];
          std::snprintf(buf, sizeof buf, "i%.1f/h%.0fkm/raan%.0f/ph%.0f", incl, alt / 1000.0,
                        raan, phase);
          slots.push_back(
              {buf, orbit::ClassicalElements::circular(alt, incl, raan, phase)});
        }
      }
    }
  }
  return slots;
}

}  // namespace mpleo::constellation
