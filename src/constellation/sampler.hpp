// Random sampling of satellites from a catalog — the Monte-Carlo primitive
// behind the paper's Figures 2, 4a, 5 and 6 ("in each run, we randomly
// sample satellites from the Starlink network").
#pragma once

#include <span>
#include <vector>

#include "constellation/shell.hpp"
#include "util/rng.hpp"

namespace mpleo::constellation {

// Draws `count` distinct satellites uniformly from `catalog`.
// Precondition: count <= catalog.size().
[[nodiscard]] std::vector<Satellite> sample_satellites(std::span<const Satellite> catalog,
                                                       std::size_t count,
                                                       util::Xoshiro256PlusPlus& rng);

// Index-only variant (cheaper when the caller keeps the catalog around).
[[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t catalog_size,
                                                      std::size_t count,
                                                      util::Xoshiro256PlusPlus& rng);

// Gathers catalog entries by index.
[[nodiscard]] std::vector<Satellite> gather(std::span<const Satellite> catalog,
                                            std::span<const std::size_t> indices);

}  // namespace mpleo::constellation
