// Candidate-slot generation for incremental constellation design (§3.3).
//
// The paper's placement question is: given an existing constellation, where
// should the next satellite go? These helpers enumerate the candidate orbital
// slots the paper's Fig. 4b/4c sweep over, plus a general grid generator the
// greedy placement optimizer (core/placement) searches.
#pragma once

#include <string>
#include <vector>

#include "constellation/shell.hpp"

namespace mpleo::constellation {

// A labelled candidate orbit for one additional satellite.
struct CandidateSlot {
  std::string label;
  orbit::ClassicalElements elements;
};

// Fig. 4b: candidates at in-plane phase offsets (degrees) from a reference
// satellite, keeping every other element fixed.
[[nodiscard]] std::vector<CandidateSlot> phase_offset_candidates(
    const orbit::ClassicalElements& reference, const std::vector<double>& offsets_deg);

// Fig. 4c: the three candidate categories compared by the paper, relative to
// a reference orbit —
//   "inclination" : inclination changed to `new_inclination_deg`;
//   "altitude"    : altitude changed by `altitude_delta_m`, same plane/phase;
//   "phase"       : in-plane phase shifted by `phase_delta_deg`.
[[nodiscard]] std::vector<CandidateSlot> factor_candidates(
    const orbit::ClassicalElements& reference, double new_inclination_deg,
    double altitude_delta_m, double phase_delta_deg);

// General search grid: the cross product of RAAN values, phase values, and
// (inclination, altitude) options. Used by the greedy gap-filling planner.
struct SlotGrid {
  std::vector<double> raan_values_deg;
  std::vector<double> phase_values_deg;
  std::vector<double> inclination_values_deg;
  std::vector<double> altitude_values_m;

  // A coarse default grid suitable for LEO broadband shells.
  [[nodiscard]] static SlotGrid coarse_leo();
};

[[nodiscard]] std::vector<CandidateSlot> enumerate_slots(const SlotGrid& grid);

}  // namespace mpleo::constellation
