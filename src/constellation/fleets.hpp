// The other broadband fleets the paper names (§1): OneWeb (polar Walker
// star) and Amazon Kuiper (three mid-inclination delta shells), plus a
// generic catalog builder shared with the Starlink module. Having multiple
// real constellation geometries lets benches ablate inclination mix — the
// Fig-4c effect at fleet scale.
#pragma once

#include <vector>

#include "constellation/shell.hpp"

namespace mpleo::constellation {

// OneWeb Phase 1: 588 satellites at 1200 km, 87.9 deg, 12 planes x 49
// (Walker star — planes spread over 180 deg).
[[nodiscard]] std::vector<WalkerShell> oneweb_shells();

// Kuiper (FCC 2020 authorization): 630 km/51.9 deg 34x34,
// 610 km/42 deg 36x36, 590 km/33 deg 28x28 — 3236 satellites.
[[nodiscard]] std::vector<WalkerShell> kuiper_shells();

struct CatalogOptions {
  double jitter_deg = 0.75;
  std::uint64_t jitter_seed = 0x57A2;
};

// Builds any shell list into a satellite catalog (ids contiguous from 0),
// with the same per-satellite RAAN/phase scatter the Starlink builder uses.
[[nodiscard]] std::vector<Satellite> build_catalog(const std::vector<WalkerShell>& shells,
                                                   orbit::TimePoint epoch,
                                                   const CatalogOptions& options = {});

}  // namespace mpleo::constellation
