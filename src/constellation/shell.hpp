// Constellation shells: the Walker-delta pattern that real broadband
// constellations (Starlink, Kuiper, OneWeb) are built from, plus the
// Satellite value type used throughout the library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "orbit/elements.hpp"
#include "orbit/time.hpp"

namespace mpleo::constellation {

using SatelliteId = std::uint32_t;

// A satellite as the rest of the library sees it: an id, a human-readable
// name, mean elements at an epoch, and (for MP-LEO) an owning-party index
// assigned later by core::Consortium (kUnowned until then).
struct Satellite {
  static constexpr std::uint32_t kUnowned = 0xFFFFFFFFu;

  SatelliteId id = 0;
  std::string name;
  orbit::ClassicalElements elements;
  orbit::TimePoint epoch;
  std::uint32_t owner_party = kUnowned;
};

// Walker shell: total_count satellites in plane_count equally spaced planes
// at a common inclination/altitude; phasing_factor F sets the inter-plane
// phase offset (Walker notation i:T/P/F). `raan_spread_deg` distinguishes
// the delta pattern (planes over 360°, typical for mid-inclination
// broadband shells) from the star pattern (planes over 180°, typical for
// polar constellations such as OneWeb/Iridium, where ascending and
// descending passes interleave).
struct WalkerShell {
  std::string label;
  double altitude_m = 550e3;
  double inclination_deg = 53.0;
  int plane_count = 72;
  int sats_per_plane = 22;
  int phasing_factor = 1;   // F in [0, plane_count)
  double raan_spread_deg = 360.0;  // 360 = Walker delta, 180 = Walker star
  double raan_offset_deg = 0.0;   // rotation of the whole shell
  double phase_offset_deg = 0.0;  // in-plane rotation of the whole shell

  [[nodiscard]] int total_count() const noexcept { return plane_count * sats_per_plane; }

  // Instantiates the shell's satellites with ids starting at `first_id`.
  [[nodiscard]] std::vector<Satellite> build(orbit::TimePoint epoch,
                                             SatelliteId first_id = 0) const;
};

// One orbital shell's worth of a satellite list: the contiguous index run
// [begin, end) sharing (within tolerance) a semi-major axis and inclination.
// Mega-scale consumers iterate shard-by-shard so per-shell bounds (radius
// extremes, footprint cones) are computed once per shard instead of once per
// satellite, and shard-local buffers keep memory proportional to a shell,
// not the fleet.
struct ShellShard {
  std::size_t begin = 0;
  std::size_t end = 0;
  double semi_major_axis_m = 0.0;
  double inclination_rad = 0.0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

// Partitions `satellites` into maximal contiguous runs whose elements stay
// within the given tolerances of the run's first satellite. Catalogs built
// shell-by-shell (WalkerShell::build, the Starlink presets) yield exactly one
// shard per shell; arbitrary orderings just yield more, smaller shards —
// never an incorrect one. Shards cover [0, size) without gaps.
[[nodiscard]] std::vector<ShellShard> shell_partition(
    std::span<const Satellite> satellites, double semi_major_axis_tol_m = 1e3,
    double inclination_tol_deg = 0.1);

// A single orbital plane of `count` satellites spaced uniformly in phase —
// the paper's Fig-4b/4c micro-constellations.
[[nodiscard]] std::vector<Satellite> single_plane(double altitude_m, double inclination_deg,
                                                  double raan_deg, int count,
                                                  orbit::TimePoint epoch,
                                                  double phase_offset_deg = 0.0,
                                                  SatelliteId first_id = 0);

}  // namespace mpleo::constellation
