#include "constellation/starlink.hpp"

#include "util/angles.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mpleo::constellation {

std::vector<WalkerShell> starlink_shells(bool include_gen2) {
  // SpaceX Gen-1 FCC filing (as modified 2021): five shells.
  std::vector<WalkerShell> shells = {
      {.label = "STARLINK-S1", .altitude_m = 550e3, .inclination_deg = 53.0,
       .plane_count = 72, .sats_per_plane = 22, .phasing_factor = 17},
      {.label = "STARLINK-S2", .altitude_m = 540e3, .inclination_deg = 53.2,
       .plane_count = 72, .sats_per_plane = 22, .phasing_factor = 17,
       .raan_offset_deg = 2.5, .phase_offset_deg = 7.0},
      {.label = "STARLINK-S3", .altitude_m = 570e3, .inclination_deg = 70.0,
       .plane_count = 36, .sats_per_plane = 20, .phasing_factor = 11},
      {.label = "STARLINK-S4", .altitude_m = 560e3, .inclination_deg = 97.6,
       .plane_count = 6, .sats_per_plane = 58, .phasing_factor = 1},
      {.label = "STARLINK-S5", .altitude_m = 560e3, .inclination_deg = 97.6,
       .plane_count = 4, .sats_per_plane = 43, .phasing_factor = 1,
       .raan_offset_deg = 45.0},
  };
  if (include_gen2) {
    // Gen-2 lead shell (the one being densified as of 2024).
    shells.push_back({.label = "STARLINK-G2", .altitude_m = 525e3,
                      .inclination_deg = 53.0, .plane_count = 28, .sats_per_plane = 60,
                      .phasing_factor = 13, .raan_offset_deg = 6.4,
                      .phase_offset_deg = 3.0});
  }
  return shells;
}

std::vector<WalkerShell> starlink_gen2_shells() {
  // SpaceX Gen-2 FCC grant (December 2022): three VLEO shells plus the
  // 525-535 km core and a near-polar shell — 29,520 satellites total.
  return {
      {.label = "STARLINK-G2-340", .altitude_m = 340e3, .inclination_deg = 53.0,
       .plane_count = 48, .sats_per_plane = 110, .phasing_factor = 19},
      {.label = "STARLINK-G2-345", .altitude_m = 345e3, .inclination_deg = 46.0,
       .plane_count = 48, .sats_per_plane = 110, .phasing_factor = 23,
       .raan_offset_deg = 1.9},
      {.label = "STARLINK-G2-350", .altitude_m = 350e3, .inclination_deg = 38.0,
       .plane_count = 48, .sats_per_plane = 110, .phasing_factor = 29,
       .raan_offset_deg = 3.8},
      {.label = "STARLINK-G2-360", .altitude_m = 360e3, .inclination_deg = 96.9,
       .plane_count = 30, .sats_per_plane = 120, .phasing_factor = 7},
      {.label = "STARLINK-G2-525", .altitude_m = 525e3, .inclination_deg = 53.0,
       .plane_count = 28, .sats_per_plane = 120, .phasing_factor = 13,
       .raan_offset_deg = 6.4, .phase_offset_deg = 3.0},
      {.label = "STARLINK-G2-530", .altitude_m = 530e3, .inclination_deg = 43.0,
       .plane_count = 28, .sats_per_plane = 120, .phasing_factor = 11,
       .raan_offset_deg = 4.2},
      {.label = "STARLINK-G2-535", .altitude_m = 535e3, .inclination_deg = 33.0,
       .plane_count = 28, .sats_per_plane = 120, .phasing_factor = 9,
       .raan_offset_deg = 2.1},
  };
}

namespace {

std::vector<Satellite> build_jittered(std::vector<WalkerShell> shells,
                                      orbit::TimePoint epoch,
                                      const StarlinkCatalogOptions& options) {
  std::vector<Satellite> catalog;
  util::Xoshiro256PlusPlus rng(options.jitter_seed);

  SatelliteId next_id = 0;
  for (const WalkerShell& shell : shells) {
    std::vector<Satellite> sats = shell.build(epoch, next_id);
    next_id += static_cast<SatelliteId>(sats.size());
    for (Satellite& sat : sats) {
      if (options.jitter_deg > 0.0) {
        const double dr = rng.uniform(-options.jitter_deg, options.jitter_deg);
        const double dp = rng.uniform(-options.jitter_deg, options.jitter_deg);
        sat.elements.raan_rad =
            util::wrap_two_pi(sat.elements.raan_rad + util::deg_to_rad(dr));
        sat.elements.mean_anomaly_rad =
            util::wrap_two_pi(sat.elements.mean_anomaly_rad + util::deg_to_rad(dp));
      }
      catalog.push_back(std::move(sat));
    }
  }
  return catalog;
}

}  // namespace

std::vector<Satellite> build_starlink_catalog(orbit::TimePoint epoch,
                                              const StarlinkCatalogOptions& options) {
  return build_jittered(starlink_shells(options.include_gen2), epoch, options);
}

std::vector<Satellite> build_starlink_gen2_catalog(
    orbit::TimePoint epoch, const StarlinkCatalogOptions& options) {
  return build_jittered(starlink_gen2_shells(), epoch, options);
}

}  // namespace mpleo::constellation
