// Synthetic Starlink-like catalog.
//
// The paper samples satellites "from the Starlink network". We rebuild that
// catalog from SpaceX's FCC-filed Gen-1 shell parameters (and optionally the
// Gen-2 525 km shell) as Walker-delta patterns — the distribution of
// inclinations, altitudes, planes, and phases is what the sampling
// experiments depend on, not any particular day's live TLEs.
#pragma once

#include <vector>

#include "constellation/shell.hpp"

namespace mpleo::constellation {

struct StarlinkCatalogOptions {
  bool include_gen2 = true;  // adds the 525 km 53° Gen-2 shell (~6k total)
  // Small per-satellite scatter applied to RAAN/phase (degrees, uniform
  // half-width) so the synthetic catalog is not perfectly gridded the way a
  // live catalog never is. 0 disables.
  double jitter_deg = 0.75;
  std::uint64_t jitter_seed = 0x57A2;
};

// The FCC-filed shells as WalkerShell descriptions.
[[nodiscard]] std::vector<WalkerShell> starlink_shells(bool include_gen2 = true);

// The full Gen-2 system from SpaceX's 2022 FCC grant: seven shells, 29,520
// satellites — the mega-constellation preset the --scale=mega bench and the
// shell-sharded scheduler paths are sized against. Shells are emitted in
// altitude-contiguous order so shell_partition recovers exactly seven shards.
[[nodiscard]] std::vector<WalkerShell> starlink_gen2_shells();

// Builds the full catalog at `epoch`. Satellite ids are contiguous from 0.
[[nodiscard]] std::vector<Satellite> build_starlink_catalog(
    orbit::TimePoint epoch, const StarlinkCatalogOptions& options = {});

// Builds the Gen-2-scale catalog (starlink_gen2_shells, ~29.5k satellites)
// with the same jitter scheme as build_starlink_catalog. Ids contiguous
// from 0, shell by shell.
[[nodiscard]] std::vector<Satellite> build_starlink_gen2_catalog(
    orbit::TimePoint epoch, const StarlinkCatalogOptions& options = {});

}  // namespace mpleo::constellation
