#include "constellation/sampler.hpp"

#include <stdexcept>

namespace mpleo::constellation {

std::vector<std::size_t> sample_indices(std::size_t catalog_size, std::size_t count,
                                        util::Xoshiro256PlusPlus& rng) {
  if (count > catalog_size) {
    throw std::invalid_argument("sample_indices: count exceeds catalog size");
  }
  return rng.sample_without_replacement(catalog_size, count);
}

std::vector<Satellite> gather(std::span<const Satellite> catalog,
                              std::span<const std::size_t> indices) {
  std::vector<Satellite> out;
  out.reserve(indices.size());
  for (std::size_t idx : indices) out.push_back(catalog[idx]);
  return out;
}

std::vector<Satellite> sample_satellites(std::span<const Satellite> catalog,
                                         std::size_t count,
                                         util::Xoshiro256PlusPlus& rng) {
  const std::vector<std::size_t> indices = sample_indices(catalog.size(), count, rng);
  return gather(catalog, indices);
}

}  // namespace mpleo::constellation
