#include "constellation/fleets.hpp"

#include "util/angles.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mpleo::constellation {

std::vector<WalkerShell> oneweb_shells() {
  return {{.label = "ONEWEB-P1",
           .altitude_m = 1200e3,
           .inclination_deg = 87.9,
           .plane_count = 12,
           .sats_per_plane = 49,
           .phasing_factor = 1,
           .raan_spread_deg = 180.0}};
}

std::vector<WalkerShell> kuiper_shells() {
  return {
      {.label = "KUIPER-S1", .altitude_m = 630e3, .inclination_deg = 51.9,
       .plane_count = 34, .sats_per_plane = 34, .phasing_factor = 7},
      {.label = "KUIPER-S2", .altitude_m = 610e3, .inclination_deg = 42.0,
       .plane_count = 36, .sats_per_plane = 36, .phasing_factor = 11,
       .raan_offset_deg = 3.0},
      {.label = "KUIPER-S3", .altitude_m = 590e3, .inclination_deg = 33.0,
       .plane_count = 28, .sats_per_plane = 28, .phasing_factor = 5,
       .raan_offset_deg = 6.0},
  };
}

std::vector<Satellite> build_catalog(const std::vector<WalkerShell>& shells,
                                     orbit::TimePoint epoch,
                                     const CatalogOptions& options) {
  std::vector<Satellite> catalog;
  util::Xoshiro256PlusPlus rng(options.jitter_seed);

  SatelliteId next_id = 0;
  for (const WalkerShell& shell : shells) {
    std::vector<Satellite> sats = shell.build(epoch, next_id);
    next_id += static_cast<SatelliteId>(sats.size());
    for (Satellite& sat : sats) {
      if (options.jitter_deg > 0.0) {
        const double dr = rng.uniform(-options.jitter_deg, options.jitter_deg);
        const double dp = rng.uniform(-options.jitter_deg, options.jitter_deg);
        sat.elements.raan_rad =
            util::wrap_two_pi(sat.elements.raan_rad + util::deg_to_rad(dr));
        sat.elements.mean_anomaly_rad =
            util::wrap_two_pi(sat.elements.mean_anomaly_rad + util::deg_to_rad(dp));
      }
      catalog.push_back(std::move(sat));
    }
  }
  return catalog;
}

}  // namespace mpleo::constellation
