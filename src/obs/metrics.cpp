#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mpleo::obs {
namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{0};
  return ++next;
}

std::string format_number(double value, std::ostringstream& scratch) {
  scratch.str({});
  scratch << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return scratch.str();
}

std::size_t find_or_append(std::vector<std::string>& names, std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  names.emplace_back(name);
  return names.size() - 1;
}

bool contains(const std::vector<std::string>& names, std::string_view name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

// One thread's private slice of every metric. A shard is written by exactly
// one thread; vectors grow lazily to the slot being touched, so shards stay
// tiny when a thread only ever updates a few metrics.
struct MetricsRegistry::Shard {
  struct Hist {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    // Bounds are copied from the registry on the shard's first observation
    // (under the registry lock) so later observes never touch shared state.
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (+inf overflow)
  };

  std::vector<std::uint64_t> counters;
  std::vector<Hist> histograms;
};

void Counter::add(std::uint64_t delta) const {
  if (registry_ != nullptr) registry_->counter_add(slot_, delta);
}

void Gauge::set(double value) const {
  if (registry_ != nullptr) registry_->gauge_set(slot_, value);
}

void Histogram::observe(double value) const {
  if (registry_ != nullptr) registry_->histogram_observe(slot_, value);
}

double ScopedTimer::stop() {
  if (stopped_) return 0.0;
  stopped_ = true;
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start_;
  histogram_.observe(elapsed.count());
  return elapsed.count();
}

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

Counter MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (contains(gauge_names_, name) || contains(histogram_names_, name)) {
    throw std::invalid_argument("MetricsRegistry: " + std::string(name) +
                                " already registered as a different kind");
  }
  return Counter(this, find_or_append(counter_names_, name));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (contains(counter_names_, name) || contains(histogram_names_, name)) {
    throw std::invalid_argument("MetricsRegistry: " + std::string(name) +
                                " already registered as a different kind");
  }
  const std::size_t slot = find_or_append(gauge_names_, name);
  if (gauge_values_.size() < gauge_names_.size()) gauge_values_.resize(gauge_names_.size(), 0.0);
  return Gauge(this, slot);
}

Histogram MetricsRegistry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  for (std::size_t i = 0; i + 1 < upper_bounds.size(); ++i) {
    if (!(upper_bounds[i] < upper_bounds[i + 1])) {
      throw std::invalid_argument("MetricsRegistry: histogram bounds must strictly increase");
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (contains(counter_names_, name) || contains(gauge_names_, name)) {
    throw std::invalid_argument("MetricsRegistry: " + std::string(name) +
                                " already registered as a different kind");
  }
  const std::size_t slot = find_or_append(histogram_names_, name);
  if (histogram_bounds_.size() < histogram_names_.size()) {
    histogram_bounds_.push_back(std::move(upper_bounds));
  }
  return Histogram(this, slot);
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, default_seconds_bounds());
}

bool MetricsRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_.empty() && gauge_names_.empty() && histogram_names_.empty();
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  struct CacheEntry {
    std::uint64_t registry_id;
    Shard* shard;
  };
  // Keyed by registry id, not address: ids are never reused, so entries for
  // destroyed registries simply never match again. Linear scan — a thread
  // touches few registries, and the hit is the very first entry in the
  // steady state.
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.registry_id == id_) return *entry.shard;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  cache.push_back({id_, shards_.back().get()});
  return *shards_.back();
}

void MetricsRegistry::counter_add(std::size_t slot, std::uint64_t delta) {
  Shard& shard = local_shard();
  if (shard.counters.size() <= slot) shard.counters.resize(slot + 1, 0);
  shard.counters[slot] += delta;
}

void MetricsRegistry::gauge_set(std::size_t slot, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauge_values_[slot] = value;
}

void MetricsRegistry::histogram_observe(std::size_t slot, double value) {
  Shard& shard = local_shard();
  if (shard.histograms.size() <= slot) shard.histograms.resize(slot + 1);
  Shard::Hist& hist = shard.histograms[slot];
  if (hist.buckets.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    hist.bounds = histogram_bounds_[slot];
    hist.buckets.assign(hist.bounds.size() + 1, 0);
  }
  if (hist.count == 0) {
    hist.min = value;
    hist.max = value;
  } else {
    hist.min = std::min(hist.min, value);
    hist.max = std::max(hist.max, value);
  }
  ++hist.count;
  hist.sum += value;
  // First bound >= value is the tightest "value <= bound" bucket;
  // bounds.size() is the +inf overflow.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(hist.bounds.begin(), hist.bounds.end(), value) - hist.bounds.begin());
  ++hist.buckets[bucket];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;

  snap.counters.reserve(counter_names_.size());
  for (std::size_t slot = 0; slot < counter_names_.size(); ++slot) {
    std::uint64_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (slot < shard->counters.size()) total += shard->counters[slot];
    }
    snap.counters.emplace_back(counter_names_[slot], total);
  }

  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t slot = 0; slot < gauge_names_.size(); ++slot) {
    snap.gauges.emplace_back(gauge_names_[slot], gauge_values_[slot]);
  }

  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t slot = 0; slot < histogram_names_.size(); ++slot) {
    HistogramSnapshot hist;
    hist.upper_bounds = histogram_bounds_[slot];
    hist.bucket_counts.assign(hist.upper_bounds.size() + 1, 0);
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (slot >= shard->histograms.size()) continue;
      const Shard::Hist& part = shard->histograms[slot];
      if (part.count == 0) continue;
      if (hist.count == 0) {
        hist.min = part.min;
        hist.max = part.max;
      } else {
        hist.min = std::min(hist.min, part.min);
        hist.max = std::max(hist.max, part.max);
      }
      hist.count += part.count;
      hist.sum += part.sum;
      for (std::size_t b = 0; b < part.buckets.size(); ++b) {
        hist.bucket_counts[b] += part.buckets[b];
      }
    }
    snap.histograms.emplace_back(histogram_names_[slot], std::move(hist));
  }

  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::string MetricsRegistry::to_json(std::size_t base_indent) const {
  const MetricsSnapshot snap = snapshot();
  const std::string pad(base_indent, ' ');
  std::ostringstream os;
  std::ostringstream scratch;

  os << "{\n";
  os << pad << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << pad << "    \"" << json_escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "" : "\n" + pad + "  ") << "},\n";

  os << pad << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << pad << "    \"" << json_escape(snap.gauges[i].first)
       << "\": " << format_number(snap.gauges[i].second, scratch);
  }
  os << (snap.gauges.empty() ? "" : "\n" + pad + "  ") << "},\n";

  os << pad << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& hist = snap.histograms[i].second;
    os << (i == 0 ? "\n" : ",\n") << pad << "    \"" << json_escape(snap.histograms[i].first)
       << "\": {\n";
    os << pad << "      \"count\": " << hist.count << ",\n";
    os << pad << "      \"sum\": " << format_number(hist.sum, scratch) << ",\n";
    os << pad << "      \"min\": " << format_number(hist.min, scratch) << ",\n";
    os << pad << "      \"max\": " << format_number(hist.max, scratch) << ",\n";
    os << pad << "      \"buckets\": [";
    for (std::size_t b = 0; b < hist.bucket_counts.size(); ++b) {
      os << (b == 0 ? "\n" : ",\n") << pad << "        {\"le\": ";
      if (b < hist.upper_bounds.size()) {
        os << format_number(hist.upper_bounds[b], scratch);
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << hist.bucket_counts[b] << "}";
    }
    os << "\n" << pad << "      ]\n";
    os << pad << "    }";
  }
  os << (snap.histograms.empty() ? "" : "\n" + pad + "  ") << "}\n";
  os << pad << "}";
  return os.str();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::fill(shard->counters.begin(), shard->counters.end(), 0);
    for (Shard::Hist& hist : shard->histograms) {
      hist.count = 0;
      hist.sum = 0.0;
      hist.min = 0.0;
      hist.max = 0.0;
      std::fill(hist.buckets.begin(), hist.buckets.end(), 0);
    }
  }
  std::fill(gauge_values_.begin(), gauge_values_.end(), 0.0);
}

std::vector<double> MetricsRegistry::default_seconds_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
}

std::vector<double> MetricsRegistry::default_count_bounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0, 65536.0};
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace mpleo::obs
