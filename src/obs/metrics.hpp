// Run observability: thread-safe counters, gauges, histograms and RAII
// scoped timers, cheap enough to live inside phase-1 worker chunks.
//
// Updates go to per-thread shards (registered lazily, found through a
// thread-local cache keyed by a process-unique registry id), so the hot path
// is a plain array write with no atomics and no locks. snapshot()/to_json()
// merge the shards; they must not run concurrently with add()/observe() —
// in practice every parallel producer in this codebase drains through
// util::ThreadPool::parallel_for, whose return gives the merge the required
// happens-before edge. Counters are integers and histogram bucket counts are
// integers, so a merged snapshot is bit-identical for any pool size; only
// wall-clock-valued observations (timers) vary run to run.
//
// Handles (Counter/Gauge/Histogram) are null-safe: a default-constructed
// handle ignores updates, so instrumented code paths need no branching when
// no registry is attached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mpleo::obs {

class MetricsRegistry;

// Monotonic event count. add() is safe from any thread.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) const;
  [[nodiscard]] explicit operator bool() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::size_t slot) : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::size_t slot_ = 0;
};

// Last-write-wins scalar (e.g. configured wave slots, thread count).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;
  [[nodiscard]] explicit operator bool() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::size_t slot) : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::size_t slot_ = 0;
};

// Bucketed distribution with exact count/min/max/sum. observe() is safe from
// any thread.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;
  [[nodiscard]] explicit operator bool() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::size_t slot) : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::size_t slot_ = 0;
};

// Times a scope with the steady clock and records the elapsed seconds into a
// histogram on destruction (or at stop()). A null histogram still measures
// but records nowhere, keeping call sites branch-free.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram) noexcept
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { (void)stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Records now instead of at scope exit; returns the elapsed seconds.
  // Subsequent calls (and the destructor) are no-ops returning 0.
  double stop();

 private:
  Histogram histogram_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

// Merged view of one histogram. bucket_counts[i] counts observations with
// value <= upper_bounds[i]; the final entry (no bound) is the +inf overflow
// bucket, so bucket_counts.size() == upper_bounds.size() + 1 and the bucket
// counts sum to `count`.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;
};

// Shard-merged state of every registered metric, name-sorted per kind.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration: returns a handle for `name`, creating the metric on first
  // use. Registering the same name under two different kinds throws.
  // Registration itself takes a lock — grab handles once per run, outside
  // the hot loops they instrument.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  // Histogram with explicit finite bucket upper bounds (strictly increasing;
  // a +inf overflow bucket is always appended).
  [[nodiscard]] Histogram histogram(std::string_view name, std::vector<double> upper_bounds);
  // Defaults to default_seconds_bounds() — the timer histogram.
  [[nodiscard]] Histogram histogram(std::string_view name);

  [[nodiscard]] bool empty() const;

  // Merges all per-thread shards. Callers must ensure no add()/observe() is
  // concurrently in flight (quiesce the pool first — parallel_for returning
  // is enough).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  // Convenience over snapshot() for tests and report printers: the merged
  // value of one counter (0 when never registered).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  // Renders the merged snapshot as a JSON object
  //   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  // with two-space indentation; every line after the first is prefixed by
  // `base_indent` spaces so the object can be embedded in a larger document.
  // Keys are name-sorted, so output is deterministic for deterministic
  // metric values.
  [[nodiscard]] std::string to_json(std::size_t base_indent = 0) const;

  // Zeroes every shard and gauge (metric names stay registered). Same
  // quiescence contract as snapshot().
  void reset();

  // Exponential seconds buckets for timer histograms: 1 us .. 100 s.
  [[nodiscard]] static std::vector<double> default_seconds_bounds();
  // Power-of-two-ish buckets for per-step occupancy counts: 1 .. 65536.
  [[nodiscard]] static std::vector<double> default_count_bounds();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;

  void counter_add(std::size_t slot, std::uint64_t delta);
  void gauge_set(std::size_t slot, double value);
  void histogram_observe(std::size_t slot, double value);
  [[nodiscard]] Shard& local_shard();

  // Process-unique id: the thread-local shard cache keys on it, so a cache
  // entry can never alias a destroyed registry that happened to be
  // reallocated at the same address.
  std::uint64_t id_ = 0;

  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauge_values_;
  std::vector<std::string> histogram_names_;
  std::vector<std::vector<double>> histogram_bounds_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

// Escapes `text` for embedding inside a JSON string literal (quotes,
// backslashes, control characters). Shared by obs::to_json and
// sim::TraceRecorder::to_json so every exporter speaks the same schema.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace mpleo::obs
