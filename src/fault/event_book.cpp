#include "fault/event_book.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace mpleo::fault {
namespace {

// Child-stream bases per event class, so event j of one class never shares a
// stream with event j of another and adding a storm never shifts a cascade.
constexpr std::uint64_t kStormStreamBase = 0x1000;
constexpr std::uint64_t kCascadeStreamBase = 0x3000;

void throw_event_issues(const char* context, std::vector<core::ConfigIssue> issues) {
  core::throw_if_invalid(context, issues);
}

std::vector<core::ConfigIssue> window_issues(double start_offset_s, double span_s,
                                             const char* span_field) {
  std::vector<core::ConfigIssue> issues;
  if (!(start_offset_s >= 0.0) || !std::isfinite(start_offset_s)) {
    issues.push_back({"fault.event_book", "start_offset_s",
                      "must be finite and >= 0, got " + std::to_string(start_offset_s)});
  }
  if (!(span_s > 0.0)) {
    issues.push_back({"fault.event_book", span_field,
                      "must be > 0, got " + std::to_string(span_s)});
  }
  return issues;
}

// Circular difference of two angles in radians, in [0, pi].
double circular_delta(double a_rad, double b_rad) noexcept {
  double d = std::fmod(std::fabs(a_rad - b_rad), 2.0 * util::kPi);
  return d > util::kPi ? 2.0 * util::kPi - d : d;
}

}  // namespace

const char* to_string(EventProfile profile) noexcept {
  switch (profile) {
    case EventProfile::kOff: return "off";
    case EventProfile::kStorm: return "storm";
    case EventProfile::kBlackout: return "blackout";
    case EventProfile::kWithdrawal: return "withdrawal";
    case EventProfile::kDebris: return "debris";
    case EventProfile::kMixed: return "mixed";
  }
  return "?";
}

std::optional<EventProfile> event_profile_from_string(std::string_view name) noexcept {
  if (name == "off") return EventProfile::kOff;
  if (name == "storm") return EventProfile::kStorm;
  if (name == "blackout") return EventProfile::kBlackout;
  if (name == "withdrawal" || name == "withdraw") return EventProfile::kWithdrawal;
  if (name == "debris") return EventProfile::kDebris;
  if (name == "mixed") return EventProfile::kMixed;
  return std::nullopt;
}

EventBook& EventBook::add_storm(const StormEvent& event) {
  std::vector<core::ConfigIssue> issues =
      window_issues(event.start_offset_s, event.mean_duration_s, "mean_duration_s");
  if (!(event.duration_jitter >= 0.0) || event.duration_jitter > 1.0) {
    issues.push_back({"fault.event_book", "duration_jitter",
                      "must be in [0, 1], got " + std::to_string(event.duration_jitter)});
  }
  if (!(event.capacity_factor > 0.0) || event.capacity_factor > 1.0) {
    issues.push_back({"fault.event_book", "capacity_factor",
                      "must be in (0, 1], got " + std::to_string(event.capacity_factor)});
  }
  if (!(event.outage_fraction >= 0.0) || event.outage_fraction > 1.0) {
    issues.push_back({"fault.event_book", "outage_fraction",
                      "must be in [0, 1], got " + std::to_string(event.outage_fraction)});
  }
  if (!(event.max_altitude_m >= event.min_altitude_m) ||
      !(event.max_inclination_deg >= event.min_inclination_deg)) {
    issues.push_back({"fault.event_book", "bands",
                      "altitude / inclination bands must have max >= min"});
  }
  throw_event_issues("fault::EventBook storm", std::move(issues));
  storms_.push_back(event);
  return *this;
}

EventBook& EventBook::add_blackout(const RegionalBlackoutEvent& event) {
  std::vector<core::ConfigIssue> issues =
      window_issues(event.start_offset_s, event.duration_s, "duration_s");
  if (!(event.radius_km > 0.0) || !std::isfinite(event.radius_km)) {
    issues.push_back({"fault.event_book", "radius_km",
                      "must be finite and > 0, got " + std::to_string(event.radius_km)});
  }
  if (!(std::fabs(event.center_latitude_deg) <= 90.0)) {
    issues.push_back({"fault.event_book", "center_latitude_deg",
                      "must be in [-90, 90], got " +
                          std::to_string(event.center_latitude_deg)});
  }
  throw_event_issues("fault::EventBook blackout", std::move(issues));
  blackouts_.push_back(event);
  return *this;
}

EventBook& EventBook::add_withdrawal(const PartyWithdrawalEvent& event) {
  std::vector<core::ConfigIssue> issues;
  if (!(event.start_offset_s >= 0.0) || !std::isfinite(event.start_offset_s)) {
    issues.push_back({"fault.event_book", "start_offset_s",
                      "must be finite and >= 0, got " +
                          std::to_string(event.start_offset_s)});
  }
  if (!(event.rejoin_offset_s > event.start_offset_s)) {
    issues.push_back({"fault.event_book", "rejoin_offset_s",
                      "must be > start (or infinity for no rejoin), got " +
                          std::to_string(event.rejoin_offset_s)});
  }
  throw_event_issues("fault::EventBook withdrawal", std::move(issues));
  withdrawals_.push_back(event);
  return *this;
}

EventBook& EventBook::add_debris_cascade(const DebrisCascadeEvent& event) {
  std::vector<core::ConfigIssue> issues = window_issues(
      event.start_offset_s, event.inter_loss_spacing_s, "inter_loss_spacing_s");
  if (event.loss_count == 0) {
    issues.push_back({"fault.event_book", "loss_count", "must be >= 1"});
  }
  throw_event_issues("fault::EventBook debris cascade", std::move(issues));
  cascades_.push_back(event);
  return *this;
}

bool EventBook::inside_circle(const orbit::Geodetic& site, double center_latitude_deg,
                              double center_longitude_deg, double radius_km) noexcept {
  const double lat1 = site.latitude_rad;
  const double lon1 = site.longitude_rad;
  const double lat2 = util::deg_to_rad(center_latitude_deg);
  const double lon2 = util::deg_to_rad(center_longitude_deg);
  const double sin_dlat = std::sin(0.5 * (lat2 - lat1));
  const double sin_dlon = std::sin(0.5 * (lon2 - lon1));
  const double a =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  const double distance_m =
      2.0 * util::kEarthMeanRadiusM * std::asin(std::min(1.0, std::sqrt(a)));
  return distance_m <= radius_km * 1000.0;
}

void EventBook::compile(FaultTimeline& timeline,
                        std::span<const constellation::Satellite> satellites,
                        std::span<const net::GroundStation> stations) const {
  if (empty()) return;
  const double window = timeline.grid().duration_seconds();
  const util::Xoshiro256PlusPlus base(seed_);

  // Space-weather storms: shell-altitude x inclination band targeting, one
  // child stream per (storm, satellite) so satellite i's draw never depends
  // on which other satellites sit in the band.
  for (std::size_t j = 0; j < storms_.size(); ++j) {
    const StormEvent& storm = storms_[j];
    if (storm.start_offset_s >= window) continue;
    const util::Xoshiro256PlusPlus storm_stream =
        base.split(kStormStreamBase + static_cast<std::uint64_t>(j));
    for (std::size_t si = 0; si < satellites.size(); ++si) {
      const orbit::ClassicalElements& el = satellites[si].elements;
      const double altitude_m = el.semi_major_axis_m - util::kEarthMeanRadiusM;
      const double inclination_deg = util::rad_to_deg(el.inclination_rad);
      if (altitude_m < storm.min_altitude_m || altitude_m > storm.max_altitude_m) {
        continue;
      }
      if (inclination_deg < storm.min_inclination_deg ||
          inclination_deg > storm.max_inclination_deg) {
        continue;
      }
      util::Xoshiro256PlusPlus sat_stream =
          storm_stream.split(static_cast<std::uint64_t>(si));
      const double u_duration = sat_stream.uniform();
      const double u_outage = sat_stream.uniform();
      const double duration =
          storm.mean_duration_s *
          (1.0 - 0.5 * storm.duration_jitter + storm.duration_jitter * u_duration);
      if (!(duration > 0.0)) continue;
      const double end = storm.start_offset_s + duration;
      if (u_outage < storm.outage_fraction) {
        timeline.add_satellite_outage(si, storm.start_offset_s, end);
      } else if (storm.capacity_factor < 1.0) {
        timeline.add_transponder_degradation(si, storm.start_offset_s, end,
                                             storm.capacity_factor);
      }
    }
  }

  // Regional blackouts: pure geo-predicate, no randomness.
  for (const RegionalBlackoutEvent& blackout : blackouts_) {
    if (blackout.start_offset_s >= window) continue;
    for (std::size_t gi = 0; gi < stations.size(); ++gi) {
      if (!inside_circle(stations[gi].location, blackout.center_latitude_deg,
                         blackout.center_longitude_deg, blackout.radius_km)) {
        continue;
      }
      timeline.add_station_outage(gi, blackout.start_offset_s,
                                  blackout.start_offset_s + blackout.duration_s);
    }
  }

  // Party withdrawals: ownership targeting, no randomness.
  for (const PartyWithdrawalEvent& withdrawal : withdrawals_) {
    if (withdrawal.start_offset_s >= window) continue;
    const double end = std::isfinite(withdrawal.rejoin_offset_s)
                           ? withdrawal.rejoin_offset_s
                           : window;
    if (!(end > withdrawal.start_offset_s)) continue;
    for (std::size_t si = 0; si < satellites.size(); ++si) {
      if (satellites[si].owner_party != withdrawal.party) continue;
      timeline.add_satellite_outage(si, withdrawal.start_offset_s, end);
    }
    if (withdrawal.include_stations) {
      for (std::size_t gi = 0; gi < stations.size(); ++gi) {
        if (stations[gi].owner_party != withdrawal.party) continue;
        timeline.add_station_outage(gi, withdrawal.start_offset_s, end);
      }
    }
  }

  // Debris cascades: seeded epicenter, losses ranked by orbital-element
  // proximity (same shell, nearby plane), staggered and permanent.
  for (std::size_t j = 0; j < cascades_.size(); ++j) {
    const DebrisCascadeEvent& cascade = cascades_[j];
    if (cascade.start_offset_s >= window || satellites.empty()) continue;
    util::Xoshiro256PlusPlus stream =
        base.split(kCascadeStreamBase + static_cast<std::uint64_t>(j));
    const std::size_t epicenter =
        static_cast<std::size_t>(stream.next() % satellites.size());
    const orbit::ClassicalElements& origin = satellites[epicenter].elements;
    std::vector<std::size_t> order(satellites.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<double> score(satellites.size(), 0.0);
    for (std::size_t si = 0; si < satellites.size(); ++si) {
      const orbit::ClassicalElements& el = satellites[si].elements;
      score[si] =
          std::fabs(el.semi_major_axis_m - origin.semi_major_axis_m) / 1e3 +
          util::rad_to_deg(circular_delta(el.inclination_rad, origin.inclination_rad)) *
              200.0 +
          util::rad_to_deg(circular_delta(el.raan_rad, origin.raan_rad)) * 5.0;
    }
    std::sort(order.begin(), order.end(), [&score](std::size_t a, std::size_t b) {
      if (score[a] != score[b]) return score[a] < score[b];
      return a < b;
    });
    const std::size_t losses = std::min(cascade.loss_count, satellites.size());
    for (std::size_t k = 0; k < losses; ++k) {
      const double loss_time =
          cascade.start_offset_s + static_cast<double>(k) * cascade.inter_loss_spacing_s;
      if (loss_time >= window) break;
      timeline.add_satellite_outage(order[k], loss_time, window);
    }
  }

  timeline.normalize();
}

FaultTimeline EventBook::compile(const orbit::TimeGrid& grid,
                                 std::span<const constellation::Satellite> satellites,
                                 std::span<const net::GroundStation> stations) const {
  FaultTimeline timeline(grid, satellites.size(), stations.size());
  compile(timeline, satellites, stations);
  return timeline;
}

EventBook EventBook::preset(EventProfile profile, double window_s, std::uint64_t seed,
                            double intensity) {
  if (!(window_s > 0.0) || !std::isfinite(window_s)) {
    throw std::invalid_argument("EventBook::preset: window_s must be finite and > 0");
  }
  core::require_non_negative(intensity, "EventBook::preset intensity");
  EventBook book(seed);
  const double w = window_s;
  const auto storm_at = [&](double start_frac, double duration_frac) {
    StormEvent storm;
    storm.start_offset_s = start_frac * w;
    storm.mean_duration_s = duration_frac * w;
    storm.capacity_factor = std::clamp(1.0 - 0.6 * intensity, 0.05, 1.0);
    storm.outage_fraction = std::min(1.0, 0.25 * intensity);
    return storm;
  };
  const auto blackout_at = [&](double start_frac, double duration_frac) {
    RegionalBlackoutEvent blackout;
    blackout.start_offset_s = start_frac * w;
    blackout.duration_s = duration_frac * w;
    blackout.center_latitude_deg = 40.7;  // US north-east: a populated region
    blackout.center_longitude_deg = -74.0;
    blackout.radius_km = std::max(100.0, 2500.0 * intensity);
    return blackout;
  };
  const auto withdrawal_at = [&](double start_frac, double rejoin_frac) {
    PartyWithdrawalEvent withdrawal;
    withdrawal.party = 0;
    withdrawal.start_offset_s = start_frac * w;
    withdrawal.rejoin_offset_s = rejoin_frac * w;
    return withdrawal;
  };
  const auto debris_at = [&](double start_frac) {
    DebrisCascadeEvent cascade;
    cascade.start_offset_s = start_frac * w;
    cascade.loss_count =
        std::max<std::size_t>(4, static_cast<std::size_t>(std::lround(8.0 * intensity)));
    cascade.inter_loss_spacing_s = std::max(1.0, 0.02 * w);
    return cascade;
  };
  switch (profile) {
    case EventProfile::kOff:
      break;
    case EventProfile::kStorm:
      book.add_storm(storm_at(0.2, 0.2));
      break;
    case EventProfile::kBlackout:
      book.add_blackout(blackout_at(0.25, 0.25));
      break;
    case EventProfile::kWithdrawal:
      book.add_withdrawal(withdrawal_at(0.35, 0.75));
      break;
    case EventProfile::kDebris:
      book.add_debris_cascade(debris_at(0.3));
      break;
    case EventProfile::kMixed:
      book.add_storm(storm_at(0.1, 0.15));
      book.add_blackout(blackout_at(0.3, 0.2));
      book.add_withdrawal(withdrawal_at(0.5, 0.8));
      book.add_debris_cascade(debris_at(0.65));
      break;
  }
  return book;
}

}  // namespace mpleo::fault
